package medsec_test

// The cmd/ hygiene lint: every lab CLI must follow the single-exit
// discipline so that deferred cleanup (CPU profiles, output files,
// metric manifests) actually runs on error paths. Concretely, for each
// main package under cmd/:
//
//   - no log.Fatal / log.Fatalf / log.Fatalln anywhere (they call
//     os.Exit, skipping defers);
//   - os.Exit may appear only inside func main (and fs.Parse-style
//     flag.ExitOnError sets are likewise forbidden — flag sets must use
//     ContinueOnError so parse errors return);
//   - a `func run(` entry point exists, returning error, so the
//     process has exactly one exit point in main;
//   - main installs cliutil.SignalContext, so SIGINT/SIGTERM cancel
//     campaigns through the normal error path (final checkpoints,
//     manifests and profiles still get written) instead of killing
//     the process mid-write.
//
// This is enforced structurally (go/ast, stdlib only) rather than by
// grep so comments and strings can mention the forbidden calls freely.

import (
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// cmdGoFiles returns every .go file under cmd/, keyed by its
// command directory.
func cmdGoFiles(t *testing.T) map[string][]string {
	t.Helper()
	dirs, err := os.ReadDir("cmd")
	if err != nil {
		t.Fatalf("reading cmd/: %v", err)
	}
	out := map[string][]string{}
	for _, d := range dirs {
		if !d.IsDir() {
			continue
		}
		glob := filepath.Join("cmd", d.Name(), "*.go")
		files, err := filepath.Glob(glob)
		if err != nil {
			t.Fatal(err)
		}
		if len(files) > 0 {
			out[d.Name()] = files
		}
	}
	if len(out) == 0 {
		t.Fatal("no command packages found under cmd/")
	}
	return out
}

// selCall matches a call expression of the form pkg.Name(...).
func selCall(call *ast.CallExpr, pkg, name string) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return false
	}
	return id.Name == pkg && sel.Sel.Name == name
}

func TestCmdSingleExitDiscipline(t *testing.T) {
	fset := token.NewFileSet()
	for cmd, files := range cmdGoFiles(t) {
		hasRun := false
		hasSignalCtx := false
		for _, path := range files {
			f, err := parser.ParseFile(fset, path, nil, 0)
			if err != nil {
				t.Fatalf("%s: %v", path, err)
			}
			for _, decl := range f.Decls {
				fn, ok := decl.(*ast.FuncDecl)
				if !ok || fn.Body == nil {
					continue
				}
				if fn.Name.Name == "run" && fn.Recv == nil {
					hasRun = true
					if fn.Type.Results == nil || len(fn.Type.Results.List) == 0 {
						t.Errorf("%s: func run must return error", fset.Position(fn.Pos()))
					}
				}
				inMain := fn.Name.Name == "main" && fn.Recv == nil
				ast.Inspect(fn.Body, func(n ast.Node) bool {
					call, ok := n.(*ast.CallExpr)
					if !ok {
						return true
					}
					pos := fset.Position(call.Pos())
					for _, fatal := range []string{"Fatal", "Fatalf", "Fatalln"} {
						if selCall(call, "log", fatal) {
							t.Errorf("%s: log.%s skips deferred cleanup; return an error instead", pos, fatal)
						}
					}
					if selCall(call, "os", "Exit") && !inMain {
						t.Errorf("%s: os.Exit outside func main; the CLIs have a single exit point", pos)
					}
					if inMain && selCall(call, "cliutil", "SignalContext") {
						hasSignalCtx = true
					}
					return true
				})
			}
			// flag.ExitOnError would exit mid-run on a bad flag,
			// bypassing deferred profile/manifest writers.
			src, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if strings.Contains(string(src), "flag.ExitOnError") {
				t.Errorf("%s: uses flag.ExitOnError; flag sets must use ContinueOnError", path)
			}
		}
		if !hasRun {
			t.Errorf("cmd/%s: no func run(...) error entry point", cmd)
		}
		if !hasSignalCtx {
			t.Errorf("cmd/%s: main does not install cliutil.SignalContext; SIGINT/SIGTERM must cancel gracefully", cmd)
		}
	}
}
