// Package profiling wires the standard pprof profiles into the repo's
// command-line labs. The campaign engine made acquisition throughput a
// first-class concern; these hooks are how hot-path regressions are
// localized (the README documents the workflow: run a lab with
// -cpuprofile, open the profile with `go tool pprof`, look for the
// field multiplication / MALU / probe-delivery frames).
package profiling

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Start begins a CPU profile (when cpuPath != "") and arranges for a
// heap profile (when memPath != ""). It returns a stop function that
// must run before process exit — typically `defer stop()` right after
// flag parsing — and finishes both profiles. Empty paths are no-ops,
// so callers can pass flag values through unconditionally.
func Start(cpuPath, memPath string) (stop func(), err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		cpuFile, err = os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("profiling: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("profiling: %w", err)
		}
	}
	return func() {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			cpuFile.Close()
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				fmt.Fprintf(os.Stderr, "profiling: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC() // materialize the steady-state live set
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "profiling: %v\n", err)
			}
		}
	}, nil
}
