// Package store is the durable, crash-safe campaign checkpoint store.
//
// A checkpoint file makes a long acquisition campaign survivable: the
// engine snapshots its streaming accumulators (internal/trace,
// internal/fault codecs) plus a provenance header at a configurable
// trace interval, and a later process resumes from the snapshot and
// produces output bit-identical to an uninterrupted run.
//
// # File format
//
//	offset 0   8-byte magic "MSCKPT01"
//	           header frame  (kind 32): JSON-encoded Header
//	           blob frames…  (kind 33): uint32 name length + name +
//	                         an inner frame owned by the state's own
//	                         codec (trace/fault kinds)
//
// Every frame reuses the trace package envelope — version byte, kind
// byte, uint32 length, CRC-32(IEEE) over header+payload — so each
// region of the file is independently integrity-checked. Write is
// atomic: temp file in the target directory, fsync, rename, fsync of
// the directory; a crash mid-checkpoint leaves the previous checkpoint
// intact, never a torn file.
//
// # Provenance
//
// The Header chains the checkpoint to the run's obs.Manifest
// provenance: tool, campaign kind, seed, git SHA, the resolved
// design.Point, and the consumed-trace watermark (or per-shard
// cursors). Resume refuses on any mismatch with a *MismatchError
// naming the offending field; corrupt files surface as *CorruptError,
// never a panic and never a silent partial resume.
package store

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"medsec/internal/trace"
)

// Magic identifies a checkpoint file (8 bytes, versioned).
const Magic = "MSCKPT01"

// Frame kinds used by this package (the trace envelope reserves
// kinds ≥ 16 for packages other than trace; fault uses 16–17).
const (
	KindHeader  byte = 32
	KindBlob    byte = 33
	KindTrailer byte = 34
)

// Header is the provenance record chaining a checkpoint to the run
// that wrote it — the same identity fields the obs.Manifest carries,
// plus the resume position.
type Header struct {
	// Tool and Kind name the producing command and campaign flavor
	// ("scalab", "tvla"); a checkpoint from one campaign type must
	// never seed another.
	Tool string `json:"tool"`
	Kind string `json:"kind"`
	// Seed is the campaign master seed; every derived stream (key
	// schedule, TRNG, measurement noise) follows from it.
	Seed uint64 `json:"seed"`
	// GitSHA records the code that produced the snapshot
	// (obs.GitSHA(): short SHA, "-dirty" suffix, or "unknown").
	GitSHA string `json:"git_sha"`
	// Point is the resolved design.Point JSON — the full operating
	// point. Resume compares it byte-for-byte: any knob drift between
	// the checkpointing and resuming invocation is refused.
	Point json.RawMessage `json:"point,omitempty"`
	// Watermark is the number of traces consumed on the serial path
	// (a strict prefix: indices [From, From+Watermark) are folded).
	Watermark int `json:"watermark"`
	// Cursors are the per-shard global cursors on the sharded path
	// (shard s has folded indices [lo_s, Cursors[s])); nil on the
	// serial path.
	Cursors []int `json:"cursors,omitempty"`
	// From/To/Shards pin the index range and requested shard count.
	// With Cursors present the sharding layout derives from all
	// three, so resume requires exact equality; on the serial path To
	// may grow — that is exactly the cross-process extend-campaign
	// case.
	From   int `json:"from"`
	To     int `json:"to"`
	Shards int `json:"shards,omitempty"`
	// Complete marks a checkpoint written after the campaign finished
	// (normally or by early-stop): the state is final, resume must
	// not re-enter the acquisition loop behind it.
	Complete bool `json:"complete,omitempty"`
}

// Checkpoint is one decoded checkpoint file: provenance plus the
// named accumulator blobs (each an inner frame owned by its own
// codec — trace.OnlineWelch, fault.SweepReport, …).
type Checkpoint struct {
	Header Header
	Blobs  map[string][]byte
}

// CorruptError reports a structurally invalid checkpoint file. It
// wraps the underlying cause (often trace.ErrCodec) for errors.Is.
type CorruptError struct {
	Path   string // file path, empty when decoding a byte slice
	Reason string
	Err    error
}

func (e *CorruptError) Error() string {
	p := e.Path
	if p == "" {
		p = "checkpoint"
	}
	if e.Err != nil {
		return fmt.Sprintf("store: %s: %s: %v", p, e.Reason, e.Err)
	}
	return fmt.Sprintf("store: %s: %s", p, e.Reason)
}

func (e *CorruptError) Unwrap() error { return e.Err }

// MismatchError reports a provenance field that differs between a
// checkpoint and the invocation trying to resume from it.
type MismatchError struct {
	Field string
	Want  string // the checkpoint's value
	Got   string // the resuming invocation's value
}

func (e *MismatchError) Error() string {
	return fmt.Sprintf("store: checkpoint provenance mismatch on %s: checkpoint has %s, this invocation has %s (refusing resume)",
		e.Field, e.Want, e.Got)
}

// Match verifies that cur — the Header the resuming invocation would
// itself write — describes the same campaign as h, returning a
// *MismatchError naming the first differing field. On the serial path
// (no Cursors) cur.To may exceed h.To: extending a finished or
// interrupted campaign by more traces is the supported cross-process
// ExtendCampaign; shrinking it is not.
func (h *Header) Match(cur Header) error {
	mismatch := func(field, want, got string) error {
		return &MismatchError{Field: field, Want: want, Got: got}
	}
	if h.Tool != cur.Tool {
		return mismatch("tool", h.Tool, cur.Tool)
	}
	if h.Kind != cur.Kind {
		return mismatch("kind", h.Kind, cur.Kind)
	}
	if h.Seed != cur.Seed {
		return mismatch("seed", fmt.Sprint(h.Seed), fmt.Sprint(cur.Seed))
	}
	if !jsonEqual(h.Point, cur.Point) {
		return mismatch("design point", compactJSON(h.Point), compactJSON(cur.Point))
	}
	if h.GitSHA != cur.GitSHA {
		return mismatch("git SHA", h.GitSHA, cur.GitSHA)
	}
	if h.From != cur.From {
		return mismatch("range start", fmt.Sprint(h.From), fmt.Sprint(cur.From))
	}
	if h.Shards != cur.Shards {
		return mismatch("shard count", fmt.Sprint(h.Shards), fmt.Sprint(cur.Shards))
	}
	if len(h.Cursors) > 0 {
		// Sharded layout: block bounds derive from (From, To, Shards),
		// so the range end must match exactly or the stored cursors
		// are meaningless.
		if h.To != cur.To {
			return mismatch("range end", fmt.Sprint(h.To), fmt.Sprint(cur.To))
		}
	} else if cur.To < h.To {
		return mismatch("range end", fmt.Sprint(h.To), fmt.Sprintf("%d (shrinking a campaign is not resumable)", cur.To))
	}
	return nil
}

// jsonEqual compares two JSON documents by compacted bytes (exact
// value comparison is overkill: both sides are produced by the same
// design.Point marshaler).
func jsonEqual(a, b json.RawMessage) bool {
	return compactJSON(a) == compactJSON(b)
}

func compactJSON(m json.RawMessage) string {
	if len(m) == 0 {
		return ""
	}
	var buf bytes.Buffer
	if err := json.Compact(&buf, m); err != nil {
		return string(m)
	}
	return buf.String()
}

// Encode serializes the checkpoint to its file bytes. Blob order is
// the sorted name order, so identical state always encodes to
// identical bytes.
func (c *Checkpoint) Encode() ([]byte, error) {
	hdr, err := json.Marshal(&c.Header)
	if err != nil {
		return nil, fmt.Errorf("store: encoding header: %w", err)
	}
	out := append([]byte(nil), Magic...)
	out = append(out, trace.EncodeFrame(KindHeader, hdr)...)
	names := make([]string, 0, len(c.Blobs))
	for name := range c.Blobs {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		p := make([]byte, 0, 4+len(name)+len(c.Blobs[name]))
		p = binary.LittleEndian.AppendUint32(p, uint32(len(name)))
		p = append(p, name...)
		p = append(p, c.Blobs[name]...)
		out = append(out, trace.EncodeFrame(KindBlob, p)...)
	}
	// The trailer marks end-of-file: a crash that tears the file at a
	// frame boundary would otherwise read as a valid checkpoint with
	// silently missing blobs.
	return append(out, trace.EncodeFrame(KindTrailer, nil)...), nil
}

// Decode parses checkpoint file bytes. Any structural problem —
// truncation, CRC mismatch, version or kind confusion, duplicate blob
// names, malformed header JSON — returns a *CorruptError.
func Decode(data []byte) (*Checkpoint, error) {
	corrupt := func(reason string, err error) (*Checkpoint, error) {
		return nil, &CorruptError{Reason: reason, Err: err}
	}
	if len(data) < len(Magic) || string(data[:len(Magic)]) != Magic {
		return corrupt("bad magic (not a checkpoint file)", nil)
	}
	rest := data[len(Magic):]

	frame, tail, kind, err := nextFrame(rest)
	if err != nil {
		return corrupt("reading header frame", err)
	}
	if kind != KindHeader {
		return corrupt(fmt.Sprintf("first frame has kind %d, want header", kind), nil)
	}
	payload, err := trace.DecodeFrame(frame, KindHeader)
	if err != nil {
		return corrupt("header frame", err)
	}
	ck := &Checkpoint{Blobs: map[string][]byte{}}
	dec := json.NewDecoder(bytes.NewReader(payload))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&ck.Header); err != nil {
		return corrupt("header JSON", fmt.Errorf("%w: %w", trace.ErrCodec, err))
	}
	if dec.More() {
		return corrupt("header JSON", fmt.Errorf("%w: trailing document", trace.ErrCodec))
	}
	if err := ck.Header.validate(); err != nil {
		return corrupt("header", err)
	}

	sawTrailer := false
	for rest = tail; len(rest) > 0; {
		frame, tail, kind, err = nextFrame(rest)
		if err != nil {
			return corrupt("reading blob frame", err)
		}
		if kind == KindTrailer {
			if _, err := trace.DecodeFrame(frame, KindTrailer); err != nil {
				return corrupt("trailer frame", err)
			}
			if len(tail) != 0 {
				return corrupt(fmt.Sprintf("%d bytes after the trailer", len(tail)), nil)
			}
			sawTrailer = true
			break
		}
		if kind != KindBlob {
			return corrupt(fmt.Sprintf("frame has kind %d, want blob", kind), nil)
		}
		payload, err := trace.DecodeFrame(frame, KindBlob)
		if err != nil {
			return corrupt("blob frame", err)
		}
		if len(payload) < 4 {
			return corrupt("blob frame payload truncated", trace.ErrCodec)
		}
		nameLen := int(binary.LittleEndian.Uint32(payload))
		if nameLen < 0 || 4+nameLen > len(payload) {
			return corrupt("blob name truncated", trace.ErrCodec)
		}
		name := string(payload[4 : 4+nameLen])
		if name == "" {
			return corrupt("blob with empty name", trace.ErrCodec)
		}
		if _, dup := ck.Blobs[name]; dup {
			return corrupt(fmt.Sprintf("duplicate blob %q", name), trace.ErrCodec)
		}
		ck.Blobs[name] = append([]byte(nil), payload[4+nameLen:]...)
		rest = tail
	}
	if !sawTrailer {
		return corrupt("missing trailer (file torn at a frame boundary)", nil)
	}
	return ck, nil
}

// validate rejects headers whose resume position is internally
// inconsistent — a corrupt but CRC-valid header must not drive the
// engine out of bounds.
func (h *Header) validate() error {
	if h.From > h.To {
		return fmt.Errorf("%w: range [%d,%d) inverted", trace.ErrCodec, h.From, h.To)
	}
	if h.Watermark < 0 || h.From+h.Watermark > h.To {
		return fmt.Errorf("%w: watermark %d outside range [%d,%d)", trace.ErrCodec, h.Watermark, h.From, h.To)
	}
	for s, c := range h.Cursors {
		if c < h.From || c > h.To {
			return fmt.Errorf("%w: shard %d cursor %d outside range [%d,%d)", trace.ErrCodec, s, c, h.From, h.To)
		}
	}
	return nil
}

// nextFrame splits one envelope frame off the front of data without
// validating its CRC (trace.DecodeFrame does that); it only needs the
// length to find the boundary.
func nextFrame(data []byte) (frame, tail []byte, kind byte, err error) {
	const headerLen = 6 // version + kind + uint32 length
	if len(data) < headerLen+4 {
		return nil, nil, 0, fmt.Errorf("%w: frame truncated at %d bytes", trace.ErrCodec, len(data))
	}
	l := binary.LittleEndian.Uint32(data[2:6])
	total := uint64(headerLen) + uint64(l) + 4
	if uint64(len(data)) < total {
		return nil, nil, 0, fmt.Errorf("%w: frame of %d bytes truncated at %d", trace.ErrCodec, total, len(data))
	}
	return data[:total], data[total:], data[1], nil
}

// Read loads and decodes a checkpoint file. I/O errors pass through
// (os.IsNotExist works); structural problems are *CorruptError with
// the path filled in.
func Read(path string) (*Checkpoint, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	ck, err := Decode(data)
	if err != nil {
		var ce *CorruptError
		if errors.As(err, &ce) {
			ce.Path = path
		}
		return nil, err
	}
	return ck, nil
}

// Write encodes the checkpoint and writes it atomically: a temp file
// in the target directory, fsync, rename over path, fsync of the
// directory. A crash at any point leaves either the old checkpoint or
// the new one — never a torn file.
func Write(path string, ck *Checkpoint) error {
	data, err := ck.Encode()
	if err != nil {
		return err
	}
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return fmt.Errorf("store: creating temp checkpoint: %w", err)
	}
	tmpName := tmp.Name()
	defer os.Remove(tmpName) // no-op after a successful rename
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return fmt.Errorf("store: writing checkpoint: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("store: syncing checkpoint: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("store: closing checkpoint: %w", err)
	}
	if err := os.Rename(tmpName, path); err != nil {
		return fmt.Errorf("store: publishing checkpoint: %w", err)
	}
	// Make the rename itself durable. Directory fsync is best-effort
	// on filesystems that refuse it; the rename is still atomic.
	if d, err := os.Open(dir); err == nil {
		d.Sync()
		d.Close()
	}
	return nil
}
