package store

import (
	"bytes"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"medsec/internal/trace"
)

func sampleCheckpoint(t *testing.T) *Checkpoint {
	t.Helper()
	w := trace.NewOnlineWelch()
	for i := 0; i < 6; i++ {
		s := []float64{float64(i), float64(i) * 0.5}
		var err error
		if i%2 == 0 {
			err = w.AddA(s)
		} else {
			err = w.AddB(s)
		}
		if err != nil {
			t.Fatal(err)
		}
	}
	blob, err := w.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	return &Checkpoint{
		Header: Header{
			Tool:      "scalab",
			Kind:      "tvla",
			Seed:      42,
			GitSHA:    "abc1234",
			Point:     json.RawMessage(`{"digit_size":4}`),
			Watermark: 6,
			From:      0,
			To:        40,
		},
		Blobs: map[string][]byte{"welch": blob, "aux": trace.EncodeFrame(200, []byte("x"))},
	}
}

func TestCheckpointRoundTrip(t *testing.T) {
	ck := sampleCheckpoint(t)
	path := filepath.Join(t.TempDir(), "sub.ckpt")
	if err := Write(path, ck); err != nil {
		t.Fatal(err)
	}
	got, err := Read(path)
	if err != nil {
		t.Fatal(err)
	}
	if !headerEqual(got.Header, ck.Header) {
		t.Fatalf("header drifted: %+v vs %+v", got.Header, ck.Header)
	}
	if len(got.Blobs) != 2 || !bytes.Equal(got.Blobs["welch"], ck.Blobs["welch"]) || !bytes.Equal(got.Blobs["aux"], ck.Blobs["aux"]) {
		t.Fatalf("blobs drifted: %v", got.Blobs)
	}
	var w trace.OnlineWelch
	if err := w.UnmarshalBinary(got.Blobs["welch"]); err != nil {
		t.Fatal(err)
	}
	if w.A.N() != 3 || w.B.N() != 3 {
		t.Fatalf("restored welch counts %d/%d", w.A.N(), w.B.N())
	}

	// Deterministic encoding: same state, same bytes.
	b1, _ := ck.Encode()
	b2, _ := got.Encode()
	if !bytes.Equal(b1, b2) {
		t.Fatal("re-encoding a decoded checkpoint changed the bytes")
	}
}

// headerEqual compares headers field-wise (Header contains a
// json.RawMessage slice, so == is not usable directly).
func headerEqual(a, b Header) bool {
	if len(a.Cursors) != len(b.Cursors) {
		return false
	}
	for i := range a.Cursors {
		if a.Cursors[i] != b.Cursors[i] {
			return false
		}
	}
	return a.Tool == b.Tool && a.Kind == b.Kind && a.Seed == b.Seed &&
		a.GitSHA == b.GitSHA && jsonEqual(a.Point, b.Point) &&
		a.Watermark == b.Watermark && a.From == b.From && a.To == b.To &&
		a.Shards == b.Shards && a.Complete == b.Complete
}

// TestWriteAtomicReplace: overwriting an existing checkpoint must
// leave no temp litter, and the new contents must fully replace the
// old ones.
func TestWriteAtomicReplace(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "camp.ckpt")
	ck := sampleCheckpoint(t)
	if err := Write(path, ck); err != nil {
		t.Fatal(err)
	}
	ck.Header.Watermark = 12
	if err := Write(path, ck); err != nil {
		t.Fatal(err)
	}
	got, err := Read(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Header.Watermark != 12 {
		t.Fatalf("watermark %d after rewrite", got.Header.Watermark)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("directory has %d entries after rewrites (temp file leaked?)", len(entries))
	}
}

func TestReadMissingFilePassesThroughOSError(t *testing.T) {
	_, err := Read(filepath.Join(t.TempDir(), "nope.ckpt"))
	if !os.IsNotExist(err) {
		t.Fatalf("missing file error %v is not os.IsNotExist", err)
	}
	var ce *CorruptError
	if errors.As(err, &ce) {
		t.Fatal("missing file misreported as corruption")
	}
}

// TestDecodeRejectsCorruption: truncations and single-bit flips over
// the whole file must surface as *CorruptError, never a panic or a
// silently wrong checkpoint.
func TestDecodeRejectsCorruption(t *testing.T) {
	data, err := sampleCheckpoint(t).Encode()
	if err != nil {
		t.Fatal(err)
	}
	check := func(mut []byte) {
		t.Helper()
		ck, err := Decode(mut)
		if err == nil {
			// A flip inside the header JSON can keep the JSON valid
			// only if it also kept the CRC valid — impossible for a
			// single flip. So any accepted mutation is a bug.
			t.Fatalf("corrupt checkpoint accepted: %+v", ck.Header)
		}
		var ce *CorruptError
		if !errors.As(err, &ce) {
			t.Fatalf("corruption returned %T %v, not *CorruptError", err, err)
		}
	}
	for l := 0; l < len(data); l++ {
		check(data[:l])
	}
	for i := 0; i < len(data); i++ {
		for bit := 0; bit < 8; bit++ {
			mut := append([]byte(nil), data...)
			mut[i] ^= 1 << bit
			check(mut)
		}
	}
	// Version-bumped header frame.
	mut := append([]byte(nil), data...)
	mut[len(Magic)] = 99
	check(mut)
	// Trailing garbage after the last frame.
	check(append(append([]byte(nil), data...), 0xEE))
}

func TestDecodeRejectsInconsistentHeaders(t *testing.T) {
	cases := []Header{
		{From: 10, To: 5},                        // inverted range
		{From: 0, To: 10, Watermark: 11},         // watermark past the end
		{From: 0, To: 10, Watermark: -1},         // negative watermark
		{From: 4, To: 10, Cursors: []int{2}},     // cursor before range
		{From: 0, To: 10, Cursors: []int{5, 11}}, // cursor past range
	}
	for _, h := range cases {
		ck := &Checkpoint{Header: h}
		data, err := ck.Encode()
		if err != nil {
			t.Fatal(err)
		}
		if _, err := Decode(data); err == nil {
			t.Fatalf("inconsistent header accepted: %+v", h)
		} else {
			var ce *CorruptError
			if !errors.As(err, &ce) {
				t.Fatalf("inconsistent header returned %T, not *CorruptError", err)
			}
		}
	}
}

func TestHeaderMatch(t *testing.T) {
	base := func() Header {
		return Header{
			Tool: "scalab", Kind: "tvla", Seed: 7, GitSHA: "abc",
			Point: json.RawMessage(`{"digit_size": 4}`),
			From:  0, To: 100, Shards: 0,
		}
	}
	h := base()
	if err := h.Match(base()); err != nil {
		t.Fatalf("identical headers mismatch: %v", err)
	}
	// JSON comparison is by compacted bytes: whitespace is immaterial.
	cur := base()
	cur.Point = json.RawMessage(`{"digit_size":4}`)
	if err := h.Match(cur); err != nil {
		t.Fatalf("whitespace-only point difference refused: %v", err)
	}
	// Serial extension: growing To is the cross-process extend case.
	cur = base()
	cur.To = 200
	if err := h.Match(cur); err != nil {
		t.Fatalf("serial extension refused: %v", err)
	}
	// Shrinking is not.
	cur = base()
	cur.To = 50
	wantMismatch(t, h.Match(cur), "range end")

	mutations := []struct {
		field string
		mut   func(*Header)
	}{
		{"tool", func(h *Header) { h.Tool = "sweeptab" }},
		{"kind", func(h *Header) { h.Kind = "dpa" }},
		{"seed", func(h *Header) { h.Seed = 8 }},
		{"git SHA", func(h *Header) { h.GitSHA = "def" }},
		{"design point", func(h *Header) { h.Point = json.RawMessage(`{"digit_size":8}`) }},
		{"range start", func(h *Header) { h.From = 2 }},
		{"shard count", func(h *Header) { h.Shards = 4 }},
	}
	for _, m := range mutations {
		cur := base()
		m.mut(&cur)
		wantMismatch(t, h.Match(cur), m.field)
	}

	// Sharded checkpoints refuse To drift in either direction.
	hs := base()
	hs.Shards = 4
	hs.Cursors = []int{25, 50, 75, 90}
	cur = base()
	cur.Shards = 4
	cur.To = 200
	wantMismatch(t, hs.Match(cur), "range end")
}

func wantMismatch(t *testing.T, err error, field string) {
	t.Helper()
	var me *MismatchError
	if !errors.As(err, &me) {
		t.Fatalf("got %v, want *MismatchError on %s", err, field)
	}
	if me.Field != field {
		t.Fatalf("mismatch named field %q, want %q", me.Field, field)
	}
}

// FuzzCheckpointDecode feeds arbitrary bytes to the checkpoint
// decoder: it must either decode cleanly or return a *CorruptError —
// no panics, no silent partial state. Runs in the CI fuzz-short job.
func FuzzCheckpointDecode(f *testing.F) {
	w := trace.NewOnlineWelch()
	w.AddA([]float64{1, 2})
	w.AddB([]float64{3, 4})
	blob, _ := w.MarshalBinary()
	valid, _ := (&Checkpoint{
		Header: Header{Tool: "scalab", Kind: "tvla", Seed: 1, From: 0, To: 8, Watermark: 2},
		Blobs:  map[string][]byte{"welch": blob},
	}).Encode()
	f.Add(valid)
	f.Add([]byte(Magic))
	f.Add([]byte{})
	// Truncations, bit flips and a version bump as corpus seeds.
	f.Add(valid[:len(valid)/2])
	flipped := append([]byte(nil), valid...)
	flipped[len(flipped)/3] ^= 0x10
	f.Add(flipped)
	bumped := append([]byte(nil), valid...)
	bumped[len(Magic)] = 2
	f.Add(bumped)

	f.Fuzz(func(t *testing.T, data []byte) {
		ck, err := Decode(data)
		if err != nil {
			var ce *CorruptError
			if !errors.As(err, &ce) {
				t.Fatalf("decoder returned %T %v, not *CorruptError", err, err)
			}
			return
		}
		// Accepted input must re-encode and re-decode stably, and any
		// welch blob must itself decode or report trace.ErrCodec.
		if _, err := ck.Encode(); err != nil {
			t.Fatalf("accepted checkpoint fails to re-encode: %v", err)
		}
		for _, b := range ck.Blobs {
			var w2 trace.OnlineWelch
			if err := w2.UnmarshalBinary(b); err != nil && !errors.Is(err, trace.ErrCodec) {
				t.Fatalf("blob decode returned %T %v, not trace.ErrCodec", err, err)
			}
		}
	})
}
