package tabular

import (
	"strings"
	"testing"
)

func TestRenderAlignment(t *testing.T) {
	tb := New("name", "value")
	tb.Row("short", 1)
	tb.Row("a-much-longer-name", 3.14159)
	out := tb.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("got %d lines", len(lines))
	}
	if !strings.HasPrefix(lines[0], "name") {
		t.Fatalf("header missing: %q", lines[0])
	}
	if !strings.Contains(lines[1], "----") {
		t.Fatalf("separator missing: %q", lines[1])
	}
	// Columns align: "value" column starts at the same offset in all
	// data rows.
	idx2 := strings.Index(lines[2], "1")
	idx3 := strings.Index(lines[3], "3.142")
	if idx2 != idx3 {
		t.Fatalf("columns misaligned: %d vs %d\n%s", idx2, idx3, out)
	}
}

func TestFloatFormatting(t *testing.T) {
	tb := New("v")
	tb.Row(50.400000001)
	if !strings.Contains(tb.String(), "50.4") {
		t.Fatalf("float not compacted: %s", tb.String())
	}
}

func TestRowStrings(t *testing.T) {
	tb := New("a", "b")
	tb.RowStrings("x", "y")
	if !strings.Contains(tb.String(), "x  y") {
		t.Fatalf("RowStrings broken: %q", tb.String())
	}
}

func TestShortRow(t *testing.T) {
	tb := New("a", "b", "c")
	tb.RowStrings("only")
	out := tb.String()
	if !strings.Contains(out, "only") {
		t.Fatal("short row dropped")
	}
}
