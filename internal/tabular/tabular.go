// Package tabular is a minimal fixed-width table writer used by the
// benchmark harness and command-line tools to print paper-style
// tables.
package tabular

import (
	"fmt"
	"io"
	"strings"
)

// Table accumulates rows and renders them with aligned columns.
type Table struct {
	header []string
	rows   [][]string
}

// New creates a table with the given column headers.
func New(header ...string) *Table {
	return &Table{header: header}
}

// Row appends a row; values are formatted with %v.
func (t *Table) Row(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.4g", v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.rows = append(t.rows, row)
}

// RowStrings appends a preformatted row.
func (t *Table) RowStrings(cells ...string) {
	t.rows = append(t.rows, cells)
}

// Render writes the table to w.
func (t *Table) Render(w io.Writer) {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(widths))
		for i := range widths {
			c := ""
			if i < len(cells) {
				c = cells[i]
			}
			parts[i] = pad(c, widths[i])
		}
		fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	line(t.header)
	sep := make([]string, len(widths))
	for i, wd := range widths {
		sep[i] = strings.Repeat("-", wd)
	}
	line(sep)
	for _, row := range t.rows {
		line(row)
	}
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// String renders to a string.
func (t *Table) String() string {
	var b strings.Builder
	t.Render(&b)
	return b.String()
}
