package design

import (
	"encoding/json"
	"strings"
	"testing"

	"medsec/internal/area"
)

func TestMaskingKnobValidation(t *testing.T) {
	p := Defaults()
	if p.Masking != MaskingNone {
		t.Fatalf("Defaults().Masking = %q, want %q", p.Masking, MaskingNone)
	}
	p.Masking = "boolean2"
	if err := p.Validate(); err == nil || !strings.Contains(err.Error(), "boolean2") {
		t.Fatalf("unknown Masking accepted (err=%v)", err)
	}
	p.Masking = MaskingBoolean1
	if err := p.Validate(); err != nil {
		t.Fatalf("boolean1 masking rejected: %v", err)
	}
}

func TestMicrocodeAtomicKnob(t *testing.T) {
	p := Defaults()
	p.Microcode = MicrocodeAtomic
	s, err := p.Build()
	if err != nil {
		t.Fatal(err)
	}
	key := s.DeviceKey(3)
	prog, err := s.ProgramFor(key)
	if err != nil {
		t.Fatal(err)
	}
	if prog == s.Ladder() {
		t.Fatal("atomic point returned the ladder microcode")
	}
	// The chip's fixed control store only holds the ladder.
	if _, err := s.Chip(); err == nil {
		t.Fatal("Chip() accepted the atomic microcode")
	}
	// Atomic microcode still computes the right point multiple: measure
	// runs it end to end under the meter.
	if _, err := s.MeasurePointMul(key, 5); err != nil {
		t.Fatal(err)
	}
}

func TestMaskedPointStack(t *testing.T) {
	p := Defaults()
	p.Masking = MaskingBoolean1
	s, err := p.Build()
	if err != nil {
		t.Fatal(err)
	}
	if !s.Masked() {
		t.Fatal("masked point's stack reports unmasked")
	}
	tgt, err := s.Target(s.DeviceKey(4))
	if err != nil {
		t.Fatal(err)
	}
	if !tgt.Masked {
		t.Fatal("masked point minted an unmasked sca target")
	}
	if _, err := s.Chip(); err == nil || !strings.Contains(err.Error(), "boolean1") {
		t.Fatalf("Chip() accepted a masked point (err=%v)", err)
	}

	// Area: the datapath pays the masking factor, the sequencer does
	// not.
	base := Defaults().MustBuild()
	if got, want := s.Area.RegFileGE, base.Area.RegFileGE*area.MaskingAreaFactor; got != want {
		t.Errorf("masked register file %v GE, want %v", got, want)
	}
	if s.Area.ControlGE != base.Area.ControlGE {
		t.Errorf("masking scaled the sequencer (%v vs %v GE)", s.Area.ControlGE, base.Area.ControlGE)
	}

	// Energy: both shares switch, so the measured point multiplication
	// costs strictly more than the unmasked one — and the result is the
	// real simulated overhead, identical cycle count included.
	key := s.DeviceKey(4)
	masked, err := s.MeasurePointMul(key, 5)
	if err != nil {
		t.Fatal(err)
	}
	plain, err := base.MeasurePointMul(key, 5)
	if err != nil {
		t.Fatal(err)
	}
	if masked.Cycles != plain.Cycles {
		t.Errorf("masking changed the cycle count: %d vs %d", masked.Cycles, plain.Cycles)
	}
	if masked.EnergyJ <= plain.EnergyJ {
		t.Errorf("masked point mul %v J not above unmasked %v J", masked.EnergyJ, plain.EnergyJ)
	}
}

func TestMaskingJSONOverlay(t *testing.T) {
	var p Point
	if err := json.Unmarshal([]byte(`{"masking":"boolean1","microcode":"atomic"}`), &p); err != nil {
		t.Fatal(err)
	}
	if p.Masking != MaskingBoolean1 || p.Microcode != MicrocodeAtomic {
		t.Fatalf("overlay decoded masking=%q microcode=%q", p.Masking, p.Microcode)
	}
	// Old grid files that never mention masking inherit the unmasked
	// default.
	var q Point
	if err := json.Unmarshal([]byte(`{"name":"legacy"}`), &q); err != nil {
		t.Fatal(err)
	}
	if q.Masking != MaskingNone {
		t.Fatalf("legacy point decoded masking=%q, want %q", q.Masking, MaskingNone)
	}
	if err := json.Unmarshal([]byte(`{"masking":"nope"}`), &p); err == nil {
		t.Fatal("invalid masking value decoded")
	}
}

func TestMaskingCacheIdentity(t *testing.T) {
	c := NewCache()
	p := Defaults()
	p.Masking = MaskingBoolean1
	s1, err := c.Build(p)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := c.Build(Defaults())
	if err != nil {
		t.Fatal(err)
	}
	if st := c.Stats(); st.Size != 2 {
		t.Fatalf("masked and unmasked points shared a build identity (cache size %d)", st.Size)
	}
	if !s1.Masked() || s2.Masked() {
		t.Fatal("cache specialization lost the masking knob")
	}
}
