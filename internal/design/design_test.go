package design

import (
	"math"
	"strings"
	"testing"

	"medsec/internal/area"
	"medsec/internal/link"
	"medsec/internal/power"
)

// The default point IS the paper's prototype: its power configuration
// must equal power.ProtectedChip bit for bit, or every golden output
// in the repo shifts.
func TestDefaultsMatchProtectedChip(t *testing.T) {
	st := Defaults().MustBuild()
	if got, want := st.Power, power.ProtectedChip(1); got != want {
		t.Fatalf("Defaults power config drifted from ProtectedChip(1):\n got %+v\nwant %+v", got, want)
	}
	if st.Curve.Name != "K-163" {
		t.Fatalf("default curve = %s, want K-163", st.Curve.Name)
	}
	if st.Timing.DigitSize != DefaultDigitSize {
		t.Fatalf("default digit = %d", st.Timing.DigitSize)
	}
}

// The hoisted flag defaults must agree with the packages they mirror;
// when link or power change their defaults this test points at the
// constant to update.
func TestDefaultsAgreeWithLayerPackages(t *testing.T) {
	arq := link.DefaultARQ()
	if DefaultARQMaxTries != arq.MaxTries || DefaultARQRetryBudget != arq.RetryBudget {
		t.Fatalf("ARQ defaults drifted: design says tries=%d budget=%d, link says tries=%d budget=%d",
			DefaultARQMaxTries, DefaultARQRetryBudget, arq.MaxTries, arq.RetryBudget)
	}
	st := Defaults().MustBuild()
	want := arq
	want.MaxTries, want.RetryBudget = DefaultARQMaxTries, DefaultARQRetryBudget
	if st.ARQ != want {
		t.Fatalf("built ARQ %+v != link default %+v", st.ARQ, want)
	}
	if DefaultClockHz != power.DefaultClockHz {
		t.Fatalf("clock constant drifted")
	}
}

func TestValidationNamesOffendingKnob(t *testing.T) {
	cases := []struct {
		mut  func(*Point)
		knob string
	}{
		{func(p *Point) { p.Channel = "plasma" }, "Channel"},
		{func(p *Point) { p.Channel = ChannelIID; p.Loss = 2 }, "Loss"},
		{func(p *Point) { p.Loss = 0.1 }, "Loss"}, // loss on a perfect channel
		{func(p *Point) { p.DistanceM = 0 }, "DistanceM"},
		{func(p *Point) { p.ARQMaxTries = 0 }, "ARQMaxTries"},
		{func(p *Point) { p.Curve = "P-256" }, "Curve"},
		{func(p *Point) { p.Microcode = "naf" }, "Microcode"},
		{func(p *Point) { p.DigitSize = 0 }, "DigitSize"},
		{func(p *Point) { p.DigitSize = 62 }, "DigitSize"},
		{func(p *Point) { p.ClockHz = 0 }, "ClockHz"},
		{func(p *Point) { p.VddV = -1 }, "VddV"},
		{func(p *Point) { p.Logic = "TTL" }, "Logic"},
		{func(p *Point) { p.ResidualImbalance = -0.1 }, "ResidualImbalance"},
		{func(p *Point) { p.NoiseSigma = -1 }, "NoiseSigma"},
		{func(p *Point) { p.Battery = "potato" }, "Battery"},
	}
	for _, tc := range cases {
		p := Defaults()
		tc.mut(&p)
		_, err := p.Build()
		if err == nil {
			t.Errorf("knob %s: bad point accepted", tc.knob)
			continue
		}
		if !strings.Contains(err.Error(), tc.knob) {
			t.Errorf("knob %s: error %q does not name it", tc.knob, err)
		}
	}
}

func TestChannelMapping(t *testing.T) {
	p := Defaults()
	p.Channel = ChannelIID
	p.Loss = 0.3
	if got, want := p.MustBuild().Channel, link.Lossy(0.3); got != want {
		t.Fatalf("iid channel = %+v, want %+v", got, want)
	}
	p.Channel = ChannelBursty
	if got, want := p.MustBuild().Channel, link.Bursty(0.3); got != want {
		t.Fatalf("bursty channel = %+v, want %+v", got, want)
	}
	if got := Defaults().MustBuild().Channel; got != link.Lossless() {
		t.Fatalf("perfect channel = %+v", got)
	}
}

// CMOS area must equal the historical flat estimate; protected logic
// styles scale only the datapath.
func TestAreaEstimate(t *testing.T) {
	g := area.DefaultGateModel()
	for _, d := range []int{1, 4, 16} {
		p := Defaults()
		p.DigitSize = d
		st := p.MustBuild()
		if got, want := st.Area.TotalGE(), g.ECCProcessorGE(d); math.Abs(got-want) > 1e-9 {
			t.Fatalf("d=%d CMOS area %f != ECCProcessorGE %f", d, got, want)
		}
	}
	p := Defaults()
	p.Logic = "WDDL"
	st := p.MustBuild()
	want := 3*(g.RegFileGE+g.MALUGE(4)) + g.ControlGE
	if math.Abs(st.Area.TotalGE()-want) > 1e-9 {
		t.Fatalf("WDDL area %f, want %f", st.Area.TotalGE(), want)
	}
	if st.Area.ControlGE != g.ControlGE {
		t.Fatalf("control block must not pay the style factor")
	}
}

func TestChipRejectsDoubleAndAdd(t *testing.T) {
	p := Defaults()
	p.Microcode = MicrocodeDoubleAndAdd
	st := p.MustBuild()
	if _, err := st.Chip(); err == nil || !strings.Contains(err.Error(), "Microcode") {
		t.Fatalf("chip on double-and-add: err=%v", err)
	}
	if _, err := st.Target(st.DeviceKey(1)); err == nil {
		t.Fatalf("target on double-and-add must error")
	}
	if _, err := st.ProgramFor(st.DeviceKey(1)); err != nil {
		t.Fatalf("double-and-add program: %v", err)
	}
}

func TestAuthSessionOnPerfectLink(t *testing.T) {
	st := Defaults().MustBuild()
	out, err := st.RunAuthSession(7, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Completed || out.Retries != 0 {
		t.Fatalf("perfect-link session: %+v", out)
	}
	if out.Ledger.PointMuls != 4 {
		t.Fatalf("device PMs = %d, want 4", out.Ledger.PointMuls)
	}
	if out.PhyTxBits <= out.Ledger.TxBits {
		t.Fatalf("PHY bill (%d) must exceed payload (%d): framing+ACKs", out.PhyTxBits, out.Ledger.TxBits)
	}
	// Same seed, same outcome — sweeps rely on it.
	out2, err := st.RunAuthSession(7, nil)
	if err != nil {
		t.Fatal(err)
	}
	if out != out2 {
		t.Fatalf("session not deterministic: %+v vs %+v", out, out2)
	}
}

// MixSeed is pinned: it is the historical linksim session mixer, and
// changing it silently re-rolls every linklab and designlab table.
func TestMixSeedPinned(t *testing.T) {
	if got := MixSeed(0, 0, 0); got != 0 {
		t.Fatalf("MixSeed(0,0,0) = %#x, want 0", got)
	}
	want := func(seed uint64, cell, rep int) uint64 {
		z := seed ^ (uint64(cell) << 32) ^ uint64(rep)
		z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
		z = (z ^ (z >> 27)) * 0x94D049BB133111EB
		return z ^ (z >> 31)
	}
	for _, tc := range []struct {
		seed      uint64
		cell, rep int
	}{{1, 0, 0}, {1, 3, 17}, {42, 7, 2}} {
		if got, w := MixSeed(tc.seed, tc.cell, tc.rep), want(tc.seed, tc.cell, tc.rep); got != w {
			t.Fatalf("MixSeed(%d,%d,%d) = %#x, want %#x", tc.seed, tc.cell, tc.rep, got, w)
		}
	}
}
