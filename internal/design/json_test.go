package design

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestPointJSONRoundTrip(t *testing.T) {
	p := Defaults()
	p.Name = "wddl-d8"
	p.DigitSize = 8
	p.Logic = "WDDL"
	p.Channel = ChannelBursty
	p.Loss = 0.25
	p.RPC = false
	data, err := json.Marshal(p)
	if err != nil {
		t.Fatal(err)
	}
	var back Point
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back != p {
		t.Fatalf("round trip changed the point:\n got %+v\nwant %+v", back, p)
	}
}

// A grid file states only the knobs it sweeps; the rest comes from
// Defaults().
func TestUnmarshalOverlaysDefaults(t *testing.T) {
	var p Point
	if err := json.Unmarshal([]byte(`{"digit_size": 16, "logic": "SABL"}`), &p); err != nil {
		t.Fatal(err)
	}
	want := Defaults()
	want.DigitSize = 16
	want.Logic = "SABL"
	if p != want {
		t.Fatalf("overlay decode:\n got %+v\nwant %+v", p, want)
	}
}

func TestUnmarshalRejectsBadKnobs(t *testing.T) {
	var p Point
	err := json.Unmarshal([]byte(`{"digit_size": 99}`), &p)
	if err == nil || !strings.Contains(err.Error(), "DigitSize") {
		t.Fatalf("out-of-range digit: err=%v", err)
	}
	err = json.Unmarshal([]byte(`{"digit_sze": 8}`), &p)
	if err == nil || !strings.Contains(err.Error(), "digit_sze") {
		t.Fatalf("typoed knob must be rejected, err=%v", err)
	}
}

func TestMarshalRefusesInvalidPoint(t *testing.T) {
	p := Defaults()
	p.Logic = "TTL"
	if _, err := json.Marshal(p); err == nil || !strings.Contains(err.Error(), "Logic") {
		t.Fatalf("marshal of invalid point: err=%v", err)
	}
}

func TestLoadGrid(t *testing.T) {
	path := filepath.Join(t.TempDir(), "grid.json")
	body := `[
  {"name": "base"},
  {"name": "fast", "digit_size": 16},
  {"name": "hard", "logic": "wddl", "rpc": true}
]`
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	pts, err := LoadGrid(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 3 || pts[1].DigitSize != 16 || pts[2].Logic != "wddl" {
		t.Fatalf("grid: %+v", pts)
	}
	// Every loaded point builds.
	for i, p := range pts {
		if _, err := p.Build(); err != nil {
			t.Fatalf("point %d: %v", i, err)
		}
	}
}

func TestLoadGridNamesOffendingIndex(t *testing.T) {
	path := filepath.Join(t.TempDir(), "grid.json")
	if err := os.WriteFile(path, []byte(`[{}, {"curve": "P-256"}]`), 0o644); err != nil {
		t.Fatal(err)
	}
	_, err := LoadGrid(path)
	if err == nil || !strings.Contains(err.Error(), "point 1") || !strings.Contains(err.Error(), "Curve") {
		t.Fatalf("err=%v", err)
	}
	if _, err := ParseGrid([]byte(`[]`)); err == nil {
		t.Fatal("empty grid accepted")
	}
	if _, err := ParseGrid([]byte(`{"digit_size": 4}`)); err == nil {
		t.Fatal("non-array grid accepted")
	}
}
