// Equivalence suite: design.Build must reproduce, bit for bit, the
// stacks the CLIs and examples used to wire by hand. Each test pins
// the pre-refactor behaviour — a golden trace hash for the lab
// targets, the exact linklab grid rows, the exact pacemaker and
// bansensor session-energy lines — so a drift anywhere in the design
// layer (seeds, power config, ARQ policy, radio pricing) fails here
// before it silently re-rolls every published table.
package design_test

import (
	"fmt"
	"hash/fnv"
	"math"
	"strings"
	"testing"

	"medsec/internal/coproc"
	"medsec/internal/design"
	"medsec/internal/ec"
	"medsec/internal/linksim"
	"medsec/internal/power"
	"medsec/internal/protocol"
	"medsec/internal/rng"
	"medsec/internal/sca"
	"medsec/internal/trace"
)

// traceHash is FNV-1a over the little-endian float64 bits of every
// sample of every trace, in order.
func traceHash(s *trace.Set) uint64 {
	h := fnv.New64a()
	var b [8]byte
	for _, tr := range s.Traces {
		for _, v := range tr.Samples {
			u := math.Float64bits(v)
			for i := 0; i < 8; i++ {
				b[i] = byte(u >> (8 * i))
			}
			h.Write(b[:])
		}
	}
	return h.Sum64()
}

// The scalab/dpalab/benchlab target mapping: a design point with
// bench noise, x-only traces and the historical TRNG stream must
// acquire the exact traces the hand-wired sca.NewTarget did. The
// hashes are pinned so the legacy reference and the design path
// cannot drift together unnoticed.
func TestTargetTraceEquivalence(t *testing.T) {
	golden := map[bool]uint64{
		true:  0xb3795160f7e368cd,
		false: 0xad70d47037b89bb4,
	}
	for _, rpc := range []bool{true, false} {
		// Legacy construction, verbatim from the pre-refactor CLIs.
		curve := ec.K163()
		key := sca.AlgorithmOneScalar(curve, rng.NewDRBG(1).Uint64)
		lab := power.ProtectedChip(1)
		lab.NoiseSigma = sca.LabNoiseSigma
		legacy := sca.NewTarget(curve, key, coproc.ProgramOptions{RPC: rpc, XOnly: true},
			coproc.DefaultTiming(), lab, 777)
		lc, err := legacy.AcquireCampaign(12, 160, 157, rng.NewDRBG(9).Uint64)
		if err != nil {
			t.Fatal(err)
		}

		// Design construction.
		p := design.Defaults()
		p.RPC = rpc
		p.XOnly = true
		p.TRNGSeed = 777
		p.NoiseSigma = design.LabNoiseSigma
		st, err := p.Build()
		if err != nil {
			t.Fatal(err)
		}
		tgt, err := st.Target(st.DeviceKey(1))
		if err != nil {
			t.Fatal(err)
		}
		dc, err := tgt.AcquireCampaign(12, 160, 157, rng.NewDRBG(9).Uint64)
		if err != nil {
			t.Fatal(err)
		}

		lh, dh := traceHash(lc.Set), traceHash(dc.Set)
		if lh != dh {
			t.Errorf("rpc=%v: design traces (%#x) != legacy traces (%#x)", rpc, dh, lh)
		}
		if dh != golden[rpc] {
			t.Errorf("rpc=%v: trace hash %#x != pinned golden %#x", rpc, dh, golden[rpc])
		}
	}
}

// The linklab default sweep at -reps 5 must render the exact grid
// rows the pre-refactor link wiring produced.
func TestLinklabGridRowEquivalence(t *testing.T) {
	pt := design.Defaults()
	pt.Channel = design.ChannelIID
	rep, err := linksim.Run(linksim.GridConfig{
		LossRates: []float64{0, 0.1, 0.3, 0.5},
		Distances: []float64{0.5, 2},
		Reps:      5,
		Point:     pt,
		Seed:      1,
	})
	if err != nil {
		t.Fatal(err)
	}
	want := []string{
		"   0.000     0.5    100.0%        0        0        63.63        95.64  -",
		"   0.100     0.5    100.0%        0        2        67.07       100.36  -",
		"   0.300     0.5    100.0%        6       12       132.86       196.24  -",
		"   0.500     0.5     60.0%        7        9       101.48       146.30  link-exhausted:2 ",
		"   0.000     2.0    100.0%        0        0        63.83        95.96  -",
		"   0.100     2.0    100.0%        1        3        76.00       112.65  -",
		"   0.300     2.0    100.0%        3        5        88.48       130.92  -",
		"   0.500     2.0     20.0%        9       11       138.11       199.90  link-exhausted:4 ",
	}
	got := strings.Split(strings.TrimRight(rep.Render(), "\n"), "\n")[1:] // drop header
	if len(got) != len(want) {
		t.Fatalf("grid rows = %d, want %d:\n%s", len(got), len(want), rep.Render())
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("row %d drifted:\n got %q\nwant %q", i, got[i], want[i])
		}
	}
}

// The pacemaker example's honest-session line: same chip seed, same
// party streams, same radio pricing — the exact published string.
func TestPacemakerSessionEquivalence(t *testing.T) {
	pt := design.Defaults()
	pt.Seed = 2026
	pt.TRNGSeed = 2026
	st, err := pt.Build()
	if err != nil {
		t.Fatal(err)
	}
	chip, err := st.Chip()
	if err != nil {
		t.Fatal(err)
	}
	src := rng.NewDRBG(99).Uint64
	mul := &protocol.SoftwareMultiplier{Curve: st.Curve, Rand: src}
	rdr, err := protocol.NewReader(st.Curve, mul, src)
	if err != nil {
		t.Fatal(err)
	}
	tag, err := protocol.NewTag(st.Curve, chip, src, rdr.Pub)
	if err != nil {
		t.Fatal(err)
	}
	rdr.Register(tag.Pub)
	res, err := protocol.RunMutualAuth(tag, rdr, true, false)
	if err != nil {
		t.Fatal(err)
	}
	sessionJ := st.Radio.LedgerEnergy(res.DeviceLedger, st.Point.DistanceM, st.Costs)
	got := fmt.Sprintf("device: %d PMs, %d bits TX -> %.1f uJ per session",
		res.DeviceLedger.PointMuls, res.DeviceLedger.TxBits, sessionJ*1e6)
	const want = "device: 4 PMs, 520 bits TX -> 63.7 uJ per session"
	if got != want {
		t.Fatalf("pacemaker session line drifted:\n got %q\nwant %q", got, want)
	}
}

// The bansensor example's morning-round row for the first sensor:
// chip seed 1000, tag stream 2000, first registration, one sealed
// telemetry record — the exact published energies.
func TestBansensorSessionEquivalence(t *testing.T) {
	base := design.Defaults().MustBuild()
	src := rng.NewDRBG(555).Uint64
	serverMul := &protocol.SoftwareMultiplier{Curve: base.Curve, Rand: src}
	server, err := protocol.NewReader(base.Curve, serverMul, src)
	if err != nil {
		t.Fatal(err)
	}
	p := design.Defaults()
	p.Seed = 1000
	p.TRNGSeed = 1000
	st, err := p.Build()
	if err != nil {
		t.Fatal(err)
	}
	chip, err := st.Chip()
	if err != nil {
		t.Fatal(err)
	}
	tag, err := protocol.NewTag(base.Curve, chip, rng.NewDRBG(2000).Uint64, server.Pub)
	if err != nil {
		t.Fatal(err)
	}
	server.Register(tag.Pub)
	chip.ResetMeters()

	tag.Ledger = protocol.Ledger{}
	res, err := protocol.RunMutualAuth(tag, server, true, false)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed {
		t.Fatalf("session aborted at %s", res.AbortStage)
	}
	var nonce [16]byte
	copy(nonce[:], "ecg-patch")
	led := res.DeviceLedger
	if _, err := protocol.Telemetry(res.SessionKey, nonce, []byte("HR=072;QRS=96ms"), &led); err != nil {
		t.Fatal(err)
	}
	e := base.Radio.LedgerEnergy(led, base.Point.DistanceM, base.Costs)
	got := fmt.Sprintf("%d %d %.1f %.1f", led.PointMuls, led.TxBits, e*1e6, chip.Total.EnergyJ*1e6)
	const want = "4 768 76.1 20.6"
	if got != want {
		t.Fatalf("bansensor ecg-patch row drifted: got %q, want %q (PMs, TxBits, session uJ, chip uJ)", got, want)
	}
}
