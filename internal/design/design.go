// Package design is the single construction point for the simulated
// medical-device stack. The paper's thesis is that security adds an
// extra design dimension spanning four layers — protocol, algorithm,
// architecture, circuit — and a Point captures one coordinate in that
// space: every knob the repo's layers expose, in one validated struct.
//
// Build() turns a Point into a Stack: the coproc timing model, the
// circuit-level power configuration, the lossy link and ARQ policy,
// the radio energy model, the battery spec and the gate-area estimate,
// plus constructors for the chip (core.Coprocessor), the side-channel
// target (sca.Target) and instrumented authentication sessions
// (protocol over link). Every cmd and example constructs its stack
// through this package, so a design-space explorer (cmd/designlab) can
// sweep grids of Points on the same code path the single-point tools
// use.
package design

import (
	"fmt"
	"strings"

	"medsec/internal/area"
	"medsec/internal/battery"
	"medsec/internal/coproc"
	"medsec/internal/core"
	"medsec/internal/ec"
	"medsec/internal/gf2m"
	"medsec/internal/link"
	"medsec/internal/modn"
	"medsec/internal/obs"
	"medsec/internal/power"
	"medsec/internal/protocol"
	"medsec/internal/radio"
	"medsec/internal/rng"
	"medsec/internal/sca"
)

// Channel profiles (protocol layer).
const (
	// ChannelPerfect is the lossless pre-link wire.
	ChannelPerfect = "perfect"
	// ChannelIID drops frames independently at the Loss rate.
	ChannelIID = "iid"
	// ChannelBursty adds a Gilbert–Elliott burst state on top of the
	// i.i.d. loss.
	ChannelBursty = "bursty"
)

// Microcode variants (algorithm layer).
const (
	// MicrocodeLadder is the Montgomery ladder (constant operation
	// flow; the paper's choice).
	MicrocodeLadder = "ladder"
	// MicrocodeDoubleAndAdd is the key-dependent strawman the timing
	// and SPA experiments attack.
	MicrocodeDoubleAndAdd = "double-and-add"
	// MicrocodeAtomic is the Giraud–Verneuil side-channel-atomic
	// double-and-add (arXiv:1002.4569): every ladder step executes the
	// same uniform instruction block, so SPA sees a single shape class
	// where MicrocodeDoubleAndAdd spells out the key bits.
	MicrocodeAtomic = "atomic"
)

// Masking countermeasures (architecture layer).
const (
	// MaskingNone runs the datapath on raw values.
	MaskingNone = "none"
	// MaskingBoolean1 enables first-order Boolean masking of the
	// datapath (coproc.CPU.Masked): every register and RAM word is
	// carried as two shares refreshed from the device TRNG, so
	// first-order statistics go flat and evaluation must move to the
	// second-order attacks (sca.TVLA2, centered-product CPA).
	MaskingBoolean1 = "boolean1"
)

// Battery specs (platform).
const (
	// BatteryPacemaker is the paper's 20 kJ pacemaker cell with a 1%
	// security budget.
	BatteryPacemaker = "pacemaker"
	// BatteryNone disables lifetime accounting (externally powered or
	// frequently recharged platforms).
	BatteryNone = "none"
)

// Shared defaults. These are THE values; cmds must take their flag
// defaults from here (enforced by the flag-drift lint in the repo
// root) instead of re-declaring literals that then diverge.
const (
	// DefaultDigitSize is the calibrated MALU digit width (d = 4).
	DefaultDigitSize = 4
	// DefaultClockHz is the prototype's 847.5 kHz clock.
	DefaultClockHz = power.DefaultClockHz
	// DefaultVdd is the prototype's 1.0 V core supply.
	DefaultVdd = 1.0
	// DefaultNoiseSigma is the chip's intrinsic measurement-noise
	// floor (fraction of nominal per-cycle energy).
	DefaultNoiseSigma = 0.03
	// LabNoiseSigma is the oscilloscope noise floor of the Fig. 4
	// white-box lab setup (see sca.LabNoiseSigma).
	LabNoiseSigma = sca.LabNoiseSigma
	// DefaultResidualImbalance is the paper's "slight unbalances are
	// still present in the layout".
	DefaultResidualImbalance = 0.004
	// DefaultDistanceM is the body-area link distance (radio.LocalRange).
	DefaultDistanceM = radio.LocalRange
	// DefaultARQMaxTries / DefaultARQRetryBudget mirror link.DefaultARQ().
	DefaultARQMaxTries    = 8
	DefaultARQRetryBudget = 64
	// DefaultLossGrid / DefaultDistGrid are the linklab sweep axes.
	DefaultLossGrid = "0,0.1,0.3,0.5"
	DefaultDistGrid = "0.5,2"
	// DefaultSweepLoss is the nominal ward-channel loss rate the
	// design-space sweeps evaluate sessions under.
	DefaultSweepLoss = 0.1
	// DefaultBitrateBps is the nominal body-area radio bitrate used to
	// convert PHY bits into air time for latency accounting.
	DefaultBitrateBps = 250e3
	// DefaultLanes is the lane-batched acquisition width (traces per
	// interpreter pass, sca.Target.Lanes). The benchlab lane sweep on
	// the reference host saturates by 8 lanes — decode/dispatch
	// amortization has flattened while the per-lane state still fits
	// the cache comfortably — and results are bit-identical at any
	// width, so the default sits at the saturation point.
	DefaultLanes = 8
	// DefaultCheckpointInterval is the number of acquired traces
	// between periodic campaign-checkpoint writes (the lab CLIs'
	// -checkpoint-interval flag): frequent enough that a killed
	// paper-scale campaign loses minutes, not hours, rare enough that
	// the atomic write-fsync-rename never shows up in the throughput
	// accounting.
	DefaultCheckpointInterval = 1000
)

// Point is one coordinate in the design space: every knob of the
// simulated stack, grouped by the paper's four layers. The zero value
// is not valid; start from Defaults().
type Point struct {
	// Name is an optional label for sweep output and manifests.
	Name string `json:"name,omitempty"`

	// Protocol layer.
	Channel     string  `json:"channel"`
	Loss        float64 `json:"loss"`
	DistanceM   float64 `json:"distance_m"`
	ARQMaxTries int     `json:"arq_max_tries"`
	// ARQRetryBudget caps cumulative retransmissions per session; 0
	// disables retries, negative means unbounded (link semantics).
	ARQRetryBudget int `json:"arq_retry_budget"`

	// Algorithm layer.
	Curve     string `json:"curve"`
	Microcode string `json:"microcode"`
	RPC       bool   `json:"rpc"`
	XOnly     bool   `json:"x_only"`

	// Architecture layer.
	DigitSize int     `json:"digit_size"`
	ClockHz   float64 `json:"clock_hz"`
	VddV      float64 `json:"vdd_v"`
	// Masking selects the datapath masking countermeasure: MaskingNone
	// or MaskingBoolean1. Masking changes no architectural value and no
	// cycle count — only the datapath's switching statistics (and its
	// area/energy bill).
	Masking string `json:"masking"`

	// Circuit layer.
	Logic              string  `json:"logic"`
	BalancedMux        bool    `json:"balanced_mux"`
	DataDepClockGating bool    `json:"data_dep_clock_gating"`
	InputIsolation     bool    `json:"input_isolation"`
	GlitchFree         bool    `json:"glitch_free"`
	ResidualImbalance  float64 `json:"residual_imbalance"`
	NoiseSigma         float64 `json:"noise_sigma"`

	// Platform.
	Battery string `json:"battery"`
	// Seed seeds the circuit noise generator; TRNGSeed seeds the
	// on-chip mask TRNG (and the sca trace schedule).
	Seed     uint64 `json:"seed"`
	TRNGSeed uint64 `json:"trng_seed"`
}

// Defaults returns the paper's prototype as a design point: protected
// CMOS at 847.5 kHz / 1 V, d = 4, Montgomery ladder with RPC, K-163,
// a perfect body-area link at 1 m, and the pacemaker cell. Its power
// configuration equals power.ProtectedChip(1) exactly.
func Defaults() Point {
	return Point{
		Channel:        ChannelPerfect,
		Loss:           0,
		DistanceM:      DefaultDistanceM,
		ARQMaxTries:    DefaultARQMaxTries,
		ARQRetryBudget: DefaultARQRetryBudget,

		Curve:     "K-163",
		Microcode: MicrocodeLadder,
		RPC:       true,
		XOnly:     false,

		DigitSize: DefaultDigitSize,
		ClockHz:   DefaultClockHz,
		VddV:      DefaultVdd,
		Masking:   MaskingNone,

		Logic:              "CMOS",
		BalancedMux:        true,
		DataDepClockGating: false,
		InputIsolation:     true,
		GlitchFree:         true,
		ResidualImbalance:  DefaultResidualImbalance,
		NoiseSigma:         DefaultNoiseSigma,

		Battery:  BatteryPacemaker,
		Seed:     1,
		TRNGSeed: 1,
	}
}

// maxDigitSize mirrors the coproc interpreter's bound (shift tables
// are stack arrays sized for d <= 61).
const maxDigitSize = 61

// Validate checks every knob and names the offending one in the
// error, so a bad grid file points at the exact field to fix.
func (p Point) Validate() error {
	if err := p.validateSpecialization(); err != nil {
		return err
	}
	if _, err := curveByName(p.Curve); err != nil {
		return err
	}
	switch p.Microcode {
	case MicrocodeLadder, MicrocodeDoubleAndAdd, MicrocodeAtomic:
	default:
		return fmt.Errorf("design: Microcode %q unknown (want %q, %q or %q)",
			p.Microcode, MicrocodeLadder, MicrocodeDoubleAndAdd, MicrocodeAtomic)
	}
	switch p.Masking {
	case MaskingNone, MaskingBoolean1:
	default:
		return fmt.Errorf("design: Masking %q unknown (want %q or %q)",
			p.Masking, MaskingNone, MaskingBoolean1)
	}
	if p.DigitSize < 1 || p.DigitSize > maxDigitSize {
		return fmt.Errorf("design: DigitSize %d out of range [1, %d]", p.DigitSize, maxDigitSize)
	}
	if p.ClockHz <= 0 {
		return fmt.Errorf("design: ClockHz %v must be positive", p.ClockHz)
	}
	if p.VddV <= 0 {
		return fmt.Errorf("design: VddV %v must be positive", p.VddV)
	}
	if _, err := power.ParseStyle(p.Logic); err != nil {
		return fmt.Errorf("design: Logic %q unknown (want CMOS, WDDL or SABL)", p.Logic)
	}
	if p.ResidualImbalance < 0 {
		return fmt.Errorf("design: ResidualImbalance %v must be non-negative", p.ResidualImbalance)
	}
	if p.NoiseSigma < 0 {
		return fmt.Errorf("design: NoiseSigma %v must be non-negative", p.NoiseSigma)
	}
	switch p.Battery {
	case BatteryPacemaker, BatteryNone:
	default:
		return fmt.Errorf("design: Battery %q unknown (want %q or %q)",
			p.Battery, BatteryPacemaker, BatteryNone)
	}
	return nil
}

// validateSpecialization checks exactly the knobs buildIdentity
// normalizes away — the ones a cached build identity cannot vouch
// for. It is the only validation the Cache hot path pays: a few
// comparisons instead of the full Validate walk, with the identical
// error text when a knob is out of range.
func (p Point) validateSpecialization() error {
	switch p.Channel {
	case ChannelPerfect, ChannelIID, ChannelBursty:
	default:
		return fmt.Errorf("design: Channel %q unknown (want %q, %q or %q)",
			p.Channel, ChannelPerfect, ChannelIID, ChannelBursty)
	}
	if p.Loss < 0 || p.Loss > 1 {
		return fmt.Errorf("design: Loss %v out of range [0, 1]", p.Loss)
	}
	if p.Channel == ChannelPerfect && p.Loss != 0 {
		return fmt.Errorf("design: Loss %v on a %q Channel (set Channel to %q or %q)",
			p.Loss, ChannelPerfect, ChannelIID, ChannelBursty)
	}
	if p.DistanceM <= 0 {
		return fmt.Errorf("design: DistanceM %v must be positive", p.DistanceM)
	}
	if p.ARQMaxTries < 1 {
		return fmt.Errorf("design: ARQMaxTries %d must be at least 1", p.ARQMaxTries)
	}
	return nil
}

func curveByName(name string) (*ec.Curve, error) {
	switch strings.ToUpper(name) {
	case "K-163", "K163":
		return ec.K163(), nil
	case "B-163", "B163":
		return ec.B163(), nil
	default:
		return nil, fmt.Errorf("design: Curve %q unknown (want K-163 or B-163)", name)
	}
}

// Stack is one built design point: the fully parameterized simulated
// stack, ready to mint chips, side-channel targets and instrumented
// link sessions. A Stack is cheap — construction defers the expensive
// pieces (CPU state, power model) to the minting methods, so sweeps
// can Build thousands of points.
type Stack struct {
	Point   Point
	Curve   *ec.Curve
	Program coproc.ProgramOptions
	Timing  coproc.Timing
	Power   power.Config
	Channel link.ChannelConfig
	ARQ     link.ARQConfig
	Radio   radio.Model
	Costs   radio.ComputeCosts
	Battery battery.Cell
	Area    area.Estimate
}

// Build validates the point and assembles its stack.
func (p Point) Build() (*Stack, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	curve, err := curveByName(p.Curve)
	if err != nil {
		return nil, err
	}
	style, err := power.ParseStyle(p.Logic)
	if err != nil {
		return nil, err
	}
	s := &Stack{
		Point: p,
		Curve: curve,
		Program: coproc.ProgramOptions{
			RPC:   p.RPC,
			XOnly: p.XOnly,
		},
		Timing: coproc.Timing{DigitSize: p.DigitSize, MulOverhead: 2, SingleCycle: 1},
		Power: power.Config{
			Style:              style,
			BalancedMux:        p.BalancedMux,
			DataDepClockGating: p.DataDepClockGating,
			InputIsolation:     p.InputIsolation,
			GlitchFree:         p.GlitchFree,
			ResidualImbalance:  p.ResidualImbalance,
			NoiseSigma:         p.NoiseSigma,
			Seed:               p.Seed,
			ClockHz:            p.ClockHz,
			Vdd:                p.VddV,
		},
		ARQ:   link.DefaultARQ(),
		Radio: radio.DefaultModel(),
		Costs: radio.PaperCosts(),
		Area:  area.DefaultGateModel().EstimateMasked(p.DigitSize, style.AreaFactor(), maskAreaFactor(p.Masking)),
	}
	s.ARQ.MaxTries = p.ARQMaxTries
	s.ARQ.RetryBudget = p.ARQRetryBudget
	switch p.Channel {
	case ChannelIID:
		s.Channel = link.Lossy(p.Loss)
	case ChannelBursty:
		s.Channel = link.Bursty(p.Loss)
	default:
		s.Channel = link.Lossless()
	}
	if p.Battery == BatteryPacemaker {
		s.Battery = battery.PacemakerCell()
	}
	return s, nil
}

// maskAreaFactor maps the Masking knob to its datapath area multiplier.
func maskAreaFactor(masking string) float64 {
	if masking == MaskingBoolean1 {
		return area.MaskingAreaFactor
	}
	return 1
}

// Masked reports whether this point carries the datapath as Boolean
// shares.
func (s *Stack) Masked() bool { return s.Point.Masking == MaskingBoolean1 }

// MustBuild is Build for static points in tests and examples; it
// panics on an invalid point.
func (p Point) MustBuild() *Stack {
	s, err := p.Build()
	if err != nil {
		panic(err)
	}
	return s
}

// Chip mints the metered co-processor (core layer) for this point.
// Only the ladder microcode runs on the chip's fixed control store.
func (s *Stack) Chip() (*core.Coprocessor, error) {
	if s.Point.Microcode != MicrocodeLadder {
		return nil, fmt.Errorf("design: Microcode %q has no chip control store (only %q)",
			s.Point.Microcode, MicrocodeLadder)
	}
	if s.Point.Masking != MaskingNone {
		return nil, fmt.Errorf("design: the core-layer chip has no %q datapath (only %q); evaluate masked points through Target",
			s.Point.Masking, MaskingNone)
	}
	return core.New(core.Config{
		Curve:    s.Curve,
		Timing:   s.Timing,
		RPC:      s.Point.RPC,
		Power:    s.Power,
		TRNGSeed: s.Point.TRNGSeed,
	})
}

// Target mints a side-channel evaluation target holding the given
// key. The target inherits the point's program options, timing,
// power configuration and TRNG seed, and acquires lane-batched at
// DefaultLanes (campaign results are bit-identical at any lane count;
// override Lanes to re-tune); the remaining campaign-engine knobs
// (Workers, Shards, Metrics) stay at the caller's discretion.
func (s *Stack) Target(key modn.Scalar) (*sca.Target, error) {
	if s.Point.Microcode != MicrocodeLadder {
		return nil, fmt.Errorf("design: sca targets require the %q Microcode (have %q)",
			MicrocodeLadder, s.Point.Microcode)
	}
	tgt := sca.NewTarget(s.Curve, key, s.Program, s.Timing, s.Power, s.Point.TRNGSeed)
	tgt.Masked = s.Masked()
	tgt.Lanes = DefaultLanes
	return tgt, nil
}

// DeviceKey derives the Algorithm 1 device key from an explicit seed
// stream (distinct experiments deliberately use distinct key seeds).
func (s *Stack) DeviceKey(seed uint64) modn.Scalar {
	return sca.AlgorithmOneScalar(s.Curve, rng.NewDRBG(seed).Uint64)
}

// RandomScalar draws a uniform non-zero scalar from a seeded stream.
func (s *Stack) RandomScalar(seed uint64) modn.Scalar {
	return s.Curve.Order.RandNonZero(rng.NewDRBG(seed).Uint64)
}

// Ladder returns the full ladder program (with y-recovery) at this
// point's RPC setting — the microcode whose register pressure and
// cycle counts the architecture tables report.
func (s *Stack) Ladder() *coproc.Program {
	return coproc.BuildLadderProgram(coproc.ProgramOptions{RPC: s.Point.RPC})
}

// ProgramFor returns the microcode this point executes for the given
// key: the (key-independent) ladder, the key-dependent double-and-add
// strawman, or its side-channel-atomic repair.
func (s *Stack) ProgramFor(key modn.Scalar) (*coproc.Program, error) {
	switch s.Point.Microcode {
	case MicrocodeDoubleAndAdd:
		return coproc.BuildDoubleAndAddProgram(key)
	case MicrocodeAtomic:
		return coproc.BuildAtomicProgram(key)
	}
	return coproc.BuildLadderProgram(coproc.ProgramOptions{RPC: s.Point.RPC}), nil
}

// CyclesPerPointMul returns the cycle count of one full point
// multiplication at this point's timing.
func (s *Stack) CyclesPerPointMul() int {
	return s.Ladder().CycleCount(s.Timing)
}

// GenericField exposes the generic-arithmetic path for this point's
// field: a bit-width-agnostic GF(2^m) tower equivalent to the
// fixed-width gf2m.Element fast path the coproc interpreter uses.
// Cross-checks and security-level sweeps (internal/ecgen) build on it.
func (s *Stack) GenericField() *gf2m.Field {
	return gf2m.NISTK163Field()
}

// Measurement is one metered operation on the co-processor.
type Measurement struct {
	Cycles    int
	EnergyJ   float64
	AvgPowerW float64
	DurationS float64
}

// MeasurePointMul runs one noise-free point multiplication of the
// generator under the power meter and returns its cost. The measured
// program is the full ladder (including y-recovery) — or the
// double-and-add microcode when selected — at the point's RPC
// setting; randSeed seeds the RPC mask stream. NoiseSigma is forced
// to 0 so the reading is the chip's nominal energy, not one noisy
// sample.
func (s *Stack) MeasurePointMul(key modn.Scalar, randSeed uint64) (Measurement, error) {
	return s.measure(key, randSeed, func(model *power.Model, run func(coproc.Probe) error) (Measurement, error) {
		meter := power.NewMeter(model)
		if err := run(meter.Probe()); err != nil {
			return Measurement{}, err
		}
		return Measurement{
			Cycles:    meter.Cycles(),
			EnergyJ:   meter.EnergyJ(),
			AvgPowerW: meter.AvgPowerW(),
			DurationS: meter.DurationS(),
		}, nil
	})
}

// MeasureBreakdown is MeasurePointMul with the component-resolved
// meter: it returns the per-component energy split of one point
// multiplication. The two meters accumulate floating point in
// different orders, so callers that pin outputs must keep using the
// same meter they always did.
func (s *Stack) MeasureBreakdown(key modn.Scalar, randSeed uint64) (power.Components, int, error) {
	var comps power.Components
	var cycles int
	_, err := s.measure(key, randSeed, func(model *power.Model, run func(coproc.Probe) error) (Measurement, error) {
		bm := power.NewBreakdownMeter(model)
		if err := run(bm.Probe()); err != nil {
			return Measurement{}, err
		}
		comps, cycles = bm.Totals(), bm.Cycles()
		return Measurement{}, nil
	})
	return comps, cycles, err
}

func (s *Stack) measure(key modn.Scalar, randSeed uint64,
	meter func(model *power.Model, run func(coproc.Probe) error) (Measurement, error)) (Measurement, error) {
	prog, err := s.ProgramFor(key)
	if err != nil {
		return Measurement{}, err
	}
	pcfg := s.Power
	pcfg.NoiseSigma = 0
	model := power.NewModel(pcfg)
	return meter(model, func(probe coproc.Probe) error {
		cpu := coproc.NewCPU(s.Timing)
		cpu.Rand = rng.NewDRBG(randSeed).Uint64
		if s.Masked() {
			// The masked datapath switches both shares, so the measured
			// energy carries the real masking overhead — no fudge factor.
			// The mask stream is seeded independently of the RPC stream,
			// mirroring sca.Target's maskSeed split.
			cpu.Masked = true
			cpu.MaskRand = rng.NewDRBG(randSeed ^ 0xd1342543de82ef95).Uint64
		}
		cpu.Probe = probe
		cpu.SetOperandConstants(s.Curve.Gx, s.Curve.B, s.Curve.Gy)
		_, err := cpu.Run(prog, key)
		return err
	})
}

// Pair mints one instrumented link pair (device side A, server side
// B) over this point's channel and ARQ policy.
func (s *Stack) Pair(seed uint64) (*link.Pair, error) {
	return link.NewPair(s.Channel, s.ARQ, seed)
}

// SessionOutcome is one mutual-authentication session over the
// point's link, with the device-side radio billing attached.
type SessionOutcome struct {
	Completed bool
	// Stage is where the session stopped (protocol.StageComplete on
	// success, protocol.StageLink when the retry budget died).
	Stage string
	// Retries is the device endpoint's retransmission count.
	Retries int
	// Ledger is the device's computation/payload ledger.
	Ledger protocol.Ledger
	// PhyTxBits/PhyRxBits are the device's on-air bill, framing and
	// ACKs included.
	PhyTxBits, PhyRxBits int
	// ElapsedTicks is the link's virtual clock at session end.
	ElapsedTicks int
}

// RunAuthSession runs one server-first mutual-authentication session
// between a fresh device/server party pair over this point's link.
// The seed derives the channel fault stream and (via a fixed tweak)
// the parties' DRBG, exactly as the linksim campaign engine always
// did, so grid cells remain bit-identical. reg may be nil.
func (s *Stack) RunAuthSession(seed uint64, reg *obs.Registry) (SessionOutcome, error) {
	pair, err := link.NewPair(s.Channel, s.ARQ, seed)
	if err != nil {
		return SessionOutcome{}, err
	}
	pair.Instrument(reg)
	src := rng.NewDRBG(seed ^ 0xC0FFEE).Uint64
	mul := &protocol.SoftwareMultiplier{Curve: s.Curve, Rand: src}
	rdr, err := protocol.NewReader(s.Curve, mul, src)
	if err != nil {
		return SessionOutcome{}, err
	}
	dev, err := protocol.NewTag(s.Curve, mul, src, rdr.Pub)
	if err != nil {
		return SessionOutcome{}, err
	}
	rdr.Register(dev.Pub)
	res, err := protocol.RunMutualAuthSession(dev, rdr, protocol.SessionOptions{
		Wire:        protocol.NewWire(pair),
		ServerFirst: true,
	})
	if err != nil {
		return SessionOutcome{}, err
	}
	st := pair.A().Stats()
	return SessionOutcome{
		Completed:    res.Completed,
		Stage:        res.AbortStage,
		Retries:      st.Retries,
		Ledger:       res.DeviceLedger,
		PhyTxBits:    st.PhyTxBits(),
		PhyRxBits:    st.PhyRxBits(),
		ElapsedTicks: pair.Elapsed(),
	}, nil
}

// MixSeed derives the per-session seed for grid cell (cell, rep) from
// a campaign seed — a SplitMix-style avalanche so neighboring cells
// get uncorrelated streams. This is the historical linksim mixer;
// design-space sweeps reuse it so their sessions match linklab's.
func MixSeed(seed uint64, cell, rep int) uint64 {
	z := seed ^ (uint64(cell) << 32) ^ uint64(rep)
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}
