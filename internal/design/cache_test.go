package design

import (
	"reflect"
	"sync"
	"testing"
)

// cacheTestPoints spans every layer's knobs: channel models, curves,
// microcode, architecture, circuit styles, battery, and the pure
// specialization knobs (seeds, loss, distance, ARQ caps, name).
func cacheTestPoints() []Point {
	base := Defaults()
	pts := []Point{base}
	add := func(mut func(*Point)) {
		p := base
		mut(&p)
		pts = append(pts, p)
	}
	add(func(p *Point) { p.Channel = ChannelIID; p.Loss = 0.1 })
	add(func(p *Point) { p.Channel = ChannelBursty; p.Loss = 0.3 })
	add(func(p *Point) { p.Curve = "B-163" })
	add(func(p *Point) { p.Microcode = MicrocodeDoubleAndAdd; p.RPC = false })
	add(func(p *Point) { p.XOnly = true })
	add(func(p *Point) { p.DigitSize = 8 })
	add(func(p *Point) { p.ClockHz = 2 * DefaultClockHz; p.VddV = 1.2 })
	add(func(p *Point) { p.Logic = "WDDL" })
	add(func(p *Point) { p.Logic = "SABL"; p.GlitchFree = false })
	add(func(p *Point) { p.ResidualImbalance = 0.01; p.NoiseSigma = 0.1 })
	add(func(p *Point) { p.Battery = BatteryNone })
	add(func(p *Point) { p.Seed = 99; p.TRNGSeed = 7 })
	add(func(p *Point) { p.Name = "named"; p.DistanceM = 2.5 })
	add(func(p *Point) { p.ARQMaxTries = 3; p.ARQRetryBudget = 10 })
	add(func(p *Point) { p.ARQRetryBudget = -1 })
	add(func(p *Point) {
		p.Channel = ChannelBursty
		p.Loss = 0.5
		p.Curve = "B-163"
		p.DigitSize = 16
		p.Seed = 1234
	})
	return pts
}

// TestCacheBuildEquivalent pins the cache's core contract: for every
// point, Cache.Build returns a Stack deep-equal to the uncached
// Point.Build — both on the miss path and on the hit path.
func TestCacheBuildEquivalent(t *testing.T) {
	c := NewCache()
	for round := 0; round < 2; round++ { // round 0 misses, round 1 hits
		for i, p := range cacheTestPoints() {
			want, err := p.Build()
			if err != nil {
				t.Fatalf("point %d: Build: %v", i, err)
			}
			got, err := c.Build(p)
			if err != nil {
				t.Fatalf("point %d: Cache.Build: %v", i, err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("round %d point %d (%+v): cached stack differs from direct build", round, i, p)
			}
		}
	}
}

// TestCacheSharesBuildsAcrossSpecializationKnobs pins the fleet-scale
// property: points differing only in loss, distance, seeds, ARQ caps
// or name share one build identity.
func TestCacheSharesBuildsAcrossSpecializationKnobs(t *testing.T) {
	c := NewCache()
	base := Defaults()
	variants := []Point{base}
	for i := 0; i < 50; i++ {
		p := base
		p.Seed = uint64(i)
		p.TRNGSeed = uint64(i * 3)
		p.Channel = ChannelIID
		p.Loss = float64(i) / 100
		p.DistanceM = 0.5 + float64(i)/10
		p.Name = "device"
		variants = append(variants, p)
	}
	for _, p := range variants {
		if _, err := c.Build(p); err != nil {
			t.Fatal(err)
		}
	}
	st := c.Stats()
	if st.Size != 1 {
		t.Fatalf("distinct builds = %d, want 1 (specialization knobs must not split the cache)", st.Size)
	}
	if st.Misses != 1 || st.Hits != int64(len(variants)-1) {
		t.Fatalf("stats = %+v, want 1 miss and %d hits", st, len(variants)-1)
	}
	if hr := st.HitRate(); hr <= 0.9 {
		t.Fatalf("hit rate %v, want > 0.9", hr)
	}
}

// TestCacheDistinctBuildKnobsMiss pins the converse: any build-knob
// change is a distinct identity.
func TestCacheDistinctBuildKnobsMiss(t *testing.T) {
	c := NewCache()
	pts := cacheTestPoints()
	for _, p := range pts {
		if _, err := c.Build(p); err != nil {
			t.Fatal(err)
		}
	}
	// Points 13..16 in cacheTestPoints differ from base only in
	// specialization knobs; the channel variants (1, 2) also share the
	// base build. Everything else is a distinct build.
	st := c.Stats()
	if st.Size >= len(pts) {
		t.Fatalf("cache size %d not smaller than point count %d: specialization knobs split the cache", st.Size, len(pts))
	}
	if st.Size < 10 {
		t.Fatalf("cache size %d suspiciously small: build knobs are being conflated", st.Size)
	}
}

// TestCacheInvalidPoint pins that the cache validates exactly like the
// uncached path.
func TestCacheInvalidPoint(t *testing.T) {
	c := NewCache()
	p := Defaults()
	p.Loss = 2
	_, werr := p.Build()
	_, gerr := c.Build(p)
	if werr == nil || gerr == nil {
		t.Fatal("invalid point accepted")
	}
	if werr.Error() != gerr.Error() {
		t.Fatalf("cache error %q != build error %q", gerr, werr)
	}
	if st := c.Stats(); st.Size != 0 {
		t.Fatalf("invalid point populated the cache: %+v", st)
	}
}

// TestCacheConcurrent exercises the race paths (run under -race in
// CI): many goroutines building overlapping identities concurrently.
func TestCacheConcurrent(t *testing.T) {
	c := NewCache()
	pts := cacheTestPoints()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 40; i++ {
				p := pts[(g+i)%len(pts)]
				p.Seed = uint64(i)
				s, err := c.Build(p)
				if err != nil {
					t.Error(err)
					return
				}
				if s.Point.Seed != uint64(i) {
					t.Errorf("specialization lost: seed %d != %d", s.Point.Seed, i)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	want, _ := pts[0].Build()
	got, err := c.Build(pts[0])
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("cache corrupted after concurrent use")
	}
}

// TestCacheInvalidSpecializationOnHit pins the hot path's validation:
// once an identity is cached, only the specialization knobs can still
// be wrong, and they must fail with the byte-identical Point.Build
// error.
func TestCacheInvalidSpecializationOnHit(t *testing.T) {
	c := NewCache()
	good := Defaults()
	good.Channel = ChannelIID
	good.Loss = 0.1
	if _, err := c.Build(good); err != nil {
		t.Fatal(err)
	}
	for i, mut := range []func(*Point){
		func(p *Point) { p.Loss = 2 },
		func(p *Point) { p.DistanceM = 0 },
		func(p *Point) { p.ARQMaxTries = 0 },
		func(p *Point) { p.Channel = "carrier-pigeon" },
	} {
		p := good
		mut(&p)
		_, werr := p.Build()
		_, gerr := c.Build(p)
		if werr == nil || gerr == nil {
			t.Fatalf("mutation %d: invalid specialization accepted", i)
		}
		if werr.Error() != gerr.Error() {
			t.Fatalf("mutation %d: cache error %q != build error %q", i, gerr, werr)
		}
	}
}

// TestBuildIntoZeroAllocHit gates the fleet engine's premise: on a
// cache hit, specializing into caller-owned storage allocates
// nothing.
func TestBuildIntoZeroAllocHit(t *testing.T) {
	c := NewCache()
	p := Defaults()
	p.Channel = ChannelIID
	p.Loss = 0.1
	var dst Stack
	if err := c.BuildInto(&dst, p); err != nil {
		t.Fatal(err)
	}
	n := testing.AllocsPerRun(100, func() {
		p.Seed++
		if err := c.BuildInto(&dst, p); err != nil {
			t.Fatal(err)
		}
	})
	if n != 0 {
		t.Fatalf("BuildInto allocates %v times on a cache hit, want 0", n)
	}
}
