package design

import (
	"sync"
	"sync/atomic"

	"medsec/internal/link"
)

// buildIdentity is a Point stripped to the knobs Build() actually
// compiles into the shared, immutable parts of a Stack (microcode,
// timing, power model, radio and battery models, gate-area estimate).
// Two Points with equal buildIdentity differ only in "specialization"
// knobs — name, channel/loss/distance, ARQ caps, seeds — which are
// patched onto a copy of the shared build in a few struct writes.
//
// The identity is the Point itself with the specialization knobs
// normalized to fixed valid values, so it stays comparable (a plain
// Go map key, no serialization on the hot path) and automatically
// covers every future build knob added to Point.
func buildIdentity(p Point) Point {
	p.Name = ""
	p.Channel = ChannelPerfect
	p.Loss = 0
	p.DistanceM = DefaultDistanceM
	p.ARQMaxTries = DefaultARQMaxTries
	p.ARQRetryBudget = DefaultARQRetryBudget
	p.Seed = 0
	p.TRNGSeed = 0
	return p
}

// specializeInto patches the specialization knobs of p onto a copy of
// the shared build, written into caller-owned storage (no heap
// allocation on the hot path). The result is bit-identical to
// p.Build() (pinned by TestCacheBuildEquivalent).
func specializeInto(dst, base *Stack, p Point) {
	*dst = *base
	dst.Point = p
	dst.Power.Seed = p.Seed
	dst.ARQ.MaxTries = p.ARQMaxTries
	dst.ARQ.RetryBudget = p.ARQRetryBudget
	switch p.Channel {
	case ChannelIID:
		dst.Channel = link.Lossy(p.Loss)
	case ChannelBursty:
		dst.Channel = link.Bursty(p.Loss)
	default:
		dst.Channel = link.Lossless()
	}
}

// CacheStats is a point-in-time view of a Cache's effectiveness.
type CacheStats struct {
	Hits   int64 `json:"hits"`
	Misses int64 `json:"misses"`
	Size   int   `json:"size"`
}

// HitRate returns the fraction of Build calls served from the cache
// (0 when the cache has never been asked).
func (s CacheStats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// Cache memoizes Point.Build by build identity: among a fleet of 10^6
// devices drawn from a few dozen hardware configurations, each
// distinct configuration pays the full Build() exactly once and every
// other device gets a cheap specialization copy. Safe for concurrent
// use; results are bit-identical to the uncached Build.
type Cache struct {
	mu     sync.RWMutex
	shared map[Point]*Stack
	hits   atomic.Int64
	misses atomic.Int64
}

// NewCache returns an empty build cache.
func NewCache() *Cache {
	return &Cache{shared: make(map[Point]*Stack)}
}

// Build is Point.Build through the cache: a bad point fails with the
// identical error either way, the expensive assembly runs once per
// build identity. For per-device hot loops prefer BuildInto, which
// skips this call's heap allocation.
func (c *Cache) Build(p Point) (*Stack, error) {
	dst := new(Stack)
	if err := c.BuildInto(dst, p); err != nil {
		return nil, err
	}
	return dst, nil
}

// BuildInto is Build writing into caller-owned storage. On a cache
// hit — the steady state of a fleet sweep — it allocates nothing and
// validates only the specialization knobs: a cached identity already
// proves every build knob valid (an invalid build knob can never
// produce a cached entry), so the full Validate walk runs on misses
// alone, where Point.Build would have paid it anyway.
func (c *Cache) BuildInto(dst *Stack, p Point) error {
	id := buildIdentity(p)
	c.mu.RLock()
	base := c.shared[id]
	c.mu.RUnlock()
	if base == nil {
		if err := p.Validate(); err != nil {
			return err
		}
		built, err := id.Build()
		if err != nil {
			return err
		}
		c.mu.Lock()
		if prior := c.shared[id]; prior != nil {
			base = prior // another goroutine won the race; keep its build
		} else {
			c.shared[id] = built
			base = built
		}
		c.mu.Unlock()
		c.misses.Add(1)
	} else {
		if err := p.validateSpecialization(); err != nil {
			return err
		}
		c.hits.Add(1)
	}
	specializeInto(dst, base, p)
	return nil
}

// Stats reports hit/miss counts and the number of distinct build
// identities seen so far.
func (c *Cache) Stats() CacheStats {
	c.mu.RLock()
	size := len(c.shared)
	c.mu.RUnlock()
	return CacheStats{Hits: c.hits.Load(), Misses: c.misses.Load(), Size: size}
}
