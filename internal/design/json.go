package design

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
)

// pointJSON is the wire shape of a Point. The alias sidesteps the
// custom UnmarshalJSON so the overlay decode below doesn't recurse.
type pointJSON Point

// UnmarshalJSON decodes a point as an overlay on Defaults(): a grid
// file only states the knobs it sweeps, inherits the paper's
// prototype for the rest, and is validated on the way in — with
// unknown fields rejected so a typoed knob name can't silently no-op.
func (p *Point) UnmarshalJSON(data []byte) error {
	overlay := pointJSON(Defaults())
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&overlay); err != nil {
		return fmt.Errorf("design: decoding point: %w", err)
	}
	pt := Point(overlay)
	if err := pt.Validate(); err != nil {
		return err
	}
	*p = pt
	return nil
}

// MarshalJSON stamps the complete point — every knob explicit, so a
// manifest-stamped point round-trips to the identical stack even if
// Defaults() later changes.
func (p Point) MarshalJSON() ([]byte, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return json.Marshal(pointJSON(p))
}

// LoadGrid reads a JSON array of design points from path. Each
// element overlays Defaults(); errors name the offending array index
// and knob.
func LoadGrid(path string) ([]Point, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return ParseGrid(data)
}

// ParseGrid decodes a JSON array of design points.
func ParseGrid(data []byte) ([]Point, error) {
	var raw []json.RawMessage
	if err := json.Unmarshal(data, &raw); err != nil {
		return nil, fmt.Errorf("design: grid must be a JSON array of points: %w", err)
	}
	if len(raw) == 0 {
		return nil, fmt.Errorf("design: grid is empty")
	}
	pts := make([]Point, len(raw))
	for i, msg := range raw {
		if err := json.Unmarshal(msg, &pts[i]); err != nil {
			return nil, fmt.Errorf("design: grid point %d: %w", i, err)
		}
	}
	return pts, nil
}
