package coproc

import (
	"testing"

	"medsec/internal/ec"
	"medsec/internal/gf2m"
	"medsec/internal/modn"
	"medsec/internal/rng"
)

// laneTestSeed derives a per-lane TRNG seed the way the sca layer
// derives per-trace device streams.
func laneTestSeed(l int) uint64 { return 42 ^ (uint64(l)+1)*0x9e3779b97f4a7c15 }

func laneTestKey(t *testing.T, l int) modn.Scalar {
	t.Helper()
	curve := ec.K163()
	// Mix fixed and per-lane random keys, like a TVLA campaign.
	if l%2 == 0 {
		return benchScalar
	}
	return curve.Order.Rand(rng.NewDRBG(uint64(1000 + l)).Uint64)
}

// captureSerial runs one trace on a serial CPU and returns its event
// stream and final register file.
func captureSerial(t *testing.T, p *Program, key modn.Scalar, seed uint64, quiet, max int, snap *Snapshot) ([]CycleEvent, [NumRegs]gf2m.Element, int) {
	t.Helper()
	curve := ec.K163()
	cpu := NewCPU(DefaultTiming())
	cpu.Rand = rng.NewDRBG(seed).Uint64
	cpu.SetOperandConstants(curve.Gx, curve.B, curve.Gy)
	cpu.QuietCycles = quiet
	cpu.MaxCycles = max
	var evs []CycleEvent
	cpu.Probe = func(ev *CycleEvent) { evs = append(evs, *ev) }
	var err error
	var n int
	if snap != nil {
		n, err = cpu.Resume(p, key, *snap)
	} else {
		n, err = cpu.Run(p, key)
	}
	if err != nil && err != ErrStopped {
		t.Fatalf("serial run: %v", err)
	}
	return evs, cpu.Regs, n
}

func regsOf(lc *LaneCPU, l int) [NumRegs]gf2m.Element {
	var r [NumRegs]gf2m.Element
	for i := 0; i < NumRegs; i++ {
		r[i] = lc.Result(l, uint8(i))
	}
	return r
}

// runLanes executes the same traces through a LaneCPU and returns the
// per-lane captured streams.
func runLanes(t *testing.T, lc *LaneCPU, p *Program, nLanes int, quiet, max int, snaps []*Snapshot) ([][]CycleEvent, int, error) {
	t.Helper()
	curve := ec.K163()
	lc.QuietCycles = quiet
	lc.MaxCycles = max
	streams := make([][]CycleEvent, nLanes)
	runs := make([]LaneRun, nLanes)
	for l := 0; l < nLanes; l++ {
		l := l
		runs[l] = LaneRun{
			Key:    laneTestKey(t, l),
			Rand:   rng.NewDRBG(laneTestSeed(l)).Uint64,
			Sink:   func(ev *CycleEvent) { streams[l] = append(streams[l], *ev) },
			Consts: OperandConstants(curve.Gx, curve.B, curve.Gy),
		}
		if snaps != nil {
			runs[l].Resume = snaps[l]
		}
	}
	n, err := lc.Run(p, runs)
	if err != nil && err != ErrStopped {
		t.Fatalf("lane run: %v", err)
	}
	return streams, n, err
}

func diffStreams(t *testing.T, label string, got, want []CycleEvent) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d events, serial has %d", label, len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("%s: event %d diverged:\n lane   %+v\n serial %+v", label, i, got[i], want[i])
		}
	}
}

// opcodePrograms builds one small program per ISA opcode (each also
// needs a few loads to set up non-trivial operand state).
func opcodePrograms() map[string]*Program {
	mk := func(instrs ...Instr) *Program { return &Program{Instrs: instrs, ResultX: 0} }
	ld := func(rd uint8, c uint8) Instr { return Instr{Op: OpLoadConst, Rd: rd, Ra: c, KeyBit: -1, Iteration: -1} }
	return map[string]*Program{
		"nop": mk(ld(0, ConstX), Instr{Op: OpNop, KeyBit: -1, Iteration: -1}),
		"add": mk(ld(0, ConstX), ld(1, ConstB), Instr{Op: OpAdd, Rd: 2, Ra: 0, Rb: 1, KeyBit: -1, Iteration: -1}),
		"move": mk(ld(0, ConstY), Instr{Op: OpMove, Rd: 3, Ra: 0, KeyBit: -1, Iteration: -1},
			Instr{Op: OpMove, Rd: RAM0, Ra: 3, KeyBit: -1, Iteration: -1}),
		"loadconst": mk(ld(0, ConstX), ld(1, ConstOne), ld(2, ConstZero)),
		"loadrnd": mk(Instr{Op: OpLoadRnd, Rd: 4, KeyBit: -1, Iteration: -1},
			Instr{Op: OpLoadRnd, Rd: 5, KeyBit: -1, Iteration: -1}),
		"cswap": mk(ld(0, ConstX), ld(1, ConstB),
			Instr{Op: OpCSwap, Rd: 0, Ra: 1, KeyBit: 161, Iteration: 0},
			Instr{Op: OpCSwap, Rd: 0, Ra: 1, KeyBit: 57, Iteration: 0}),
		"mul": mk(ld(0, ConstX), ld(1, ConstB), Instr{Op: OpMul, Rd: 2, Ra: 0, Rb: 1, KeyBit: -1, Iteration: -1}),
		"sqr": mk(ld(0, ConstY), Instr{Op: OpSqr, Rd: 1, Ra: 0, KeyBit: -1, Iteration: -1}),
	}
}

// TestLaneMatchesSerialPerOpcode pins the lane executor against the
// serial CPU for every ISA opcode at several lane counts: identical
// event streams (every field, every cycle) and identical final
// register files per lane.
func TestLaneMatchesSerialPerOpcode(t *testing.T) {
	for name, p := range opcodePrograms() {
		for _, nLanes := range []int{1, 2, 3, 4, 8} {
			lc := NewLaneCPU(DefaultTiming())
			streams, laneN, _ := runLanes(t, lc, p, nLanes, 0, 0, nil)
			for l := 0; l < nLanes; l++ {
				want, wantRegs, serialN := captureSerial(t, p, laneTestKey(t, l), laneTestSeed(l), 0, 0, nil)
				diffStreams(t, name, streams[l], want)
				if laneN != serialN {
					t.Fatalf("%s: lane cycle count %d, serial %d", name, laneN, serialN)
				}
				if got := regsOf(lc, l); got != wantRegs {
					t.Fatalf("%s lane %d/%d: register file diverged", name, l, nLanes)
				}
			}
		}
	}
}

// TestLanePointMulMatchesSerial pins full point multiplications (RPC
// on and off) at lane counts {1,2,3,4,8}: event streams, final cycle
// counts, and result registers all bit-identical to per-trace serial
// runs — including lanes with mixed fixed/random scalars.
func TestLanePointMulMatchesSerial(t *testing.T) {
	if testing.Short() {
		t.Skip("full point multiplications")
	}
	for _, rpc := range []bool{false, true} {
		p := BuildLadderProgram(ProgramOptions{RPC: rpc, XOnly: true})
		for _, nLanes := range []int{1, 3, 8} {
			lc := NewLaneCPU(DefaultTiming())
			streams, laneN, _ := runLanes(t, lc, p, nLanes, 0, 0, nil)
			for l := 0; l < nLanes; l++ {
				want, wantRegs, serialN := captureSerial(t, p, laneTestKey(t, l), laneTestSeed(l), 0, 0, nil)
				diffStreams(t, "pointmul", streams[l], want)
				if laneN != serialN {
					t.Fatalf("rpc=%v: lane cycles %d serial %d", rpc, laneN, serialN)
				}
				if got := regsOf(lc, l); got != wantRegs {
					t.Fatalf("rpc=%v lane %d/%d: result registers diverged", rpc, l, nLanes)
				}
			}
		}
	}
}

// TestLaneWindowedAcquisitionMatchesSerial pins the acquisition
// configuration the campaigns use: QuietCycles prologue + MaxCycles
// window, with a prefix snapshot fanned out to the usable lanes (the
// even, fixed-key ones) while the random-key lanes replay the quiet
// prefix — the exact mixed-resume shape of a TVLA batch. Lane counts
// include 3 and 8 with 4 lanes' worth of window so non-dividing
// shapes are covered at the campaign layer's batch remainder.
func TestLaneWindowedAcquisitionMatchesSerial(t *testing.T) {
	p := BuildLadderProgram(ProgramOptions{RPC: false, XOnly: true})
	tim := DefaultTiming()
	start, end := p.IterationWindow(tim, 160, 158)
	nInstr, cycle, _ := p.PrefixBoundary(tim, start)
	if cycle == 0 {
		t.Fatal("expected a nonzero prefix boundary")
	}
	curve := ec.K163()
	ref := NewCPU(tim)
	ref.SetOperandConstants(curve.Gx, curve.B, curve.Gy)
	snap, err := ref.SnapshotPrefix(p, benchScalar, nInstr)
	if err != nil {
		t.Fatalf("SnapshotPrefix: %v", err)
	}
	for _, nLanes := range []int{1, 3, 8} {
		snaps := make([]*Snapshot, nLanes)
		for l := range snaps {
			if l%2 == 0 { // fixed-key lanes may resume from the shared prefix
				snaps[l] = &snap
			}
		}
		lc := NewLaneCPU(tim)
		streams, _, laneErr := runLanes(t, lc, p, nLanes, start, end, snaps)
		if laneErr != ErrStopped {
			t.Fatalf("lanes=%d: want ErrStopped at MaxCycles, got %v", nLanes, laneErr)
		}
		for l := 0; l < nLanes; l++ {
			want, _, _ := captureSerial(t, p, laneTestKey(t, l), laneTestSeed(l), start, end, snaps[l])
			diffStreams(t, "windowed", streams[l], want)
			if len(want) != end-start {
				t.Fatalf("window should cover %d cycles, got %d", end-start, len(want))
			}
		}
	}
}

// TestLaneMidMALUTruncation pins the budget-truncation semantics when
// MaxCycles lands inside a multiply: the lanes must emit events for
// exactly cycles [0, MaxCycles) and withhold the MALU writeback, like
// the serial CPU's early return mid-instruction.
func TestLaneMidMALUTruncation(t *testing.T) {
	p := opcodePrograms()["mul"]
	tim := DefaultTiming()
	mulCycles := tim.InstrCycles(OpMul)
	// Cut at every phase of the multiply: during load, mid-digit-loop,
	// just before writeback, and exactly at the boundary.
	for _, max := range []int{3, 2 + tim.MulOverhead, 2 + mulCycles/2, 2 + mulCycles - 1, 2 + mulCycles} {
		for _, nLanes := range []int{1, 3} {
			lc := NewLaneCPU(tim)
			streams, laneN, err := runLanes(t, lc, p, nLanes, 0, max, nil)
			if max < 2+mulCycles && err != ErrStopped {
				t.Fatalf("max=%d: want ErrStopped, got %v", max, err)
			}
			for l := 0; l < nLanes; l++ {
				want, wantRegs, serialN := captureSerial(t, p, laneTestKey(t, l), laneTestSeed(l), 0, max, nil)
				diffStreams(t, "trunc", streams[l], want)
				if laneN != serialN {
					t.Fatalf("max=%d: lane cycles %d serial %d", max, laneN, serialN)
				}
				if got := regsOf(lc, l); got != wantRegs {
					t.Fatalf("max=%d lane %d: register file diverged (writeback withheld?)", max, l)
				}
			}
		}
	}
}

// TestLaneRunSteadyStateAllocs gates the steady-state batch path: after
// the first Run decoded the program and sized the lane bank, further
// Runs over the same program must not allocate.
func TestLaneRunSteadyStateAllocs(t *testing.T) {
	p := opcodePrograms()["mul"]
	curve := ec.K163()
	lc := NewLaneCPU(DefaultTiming())
	sink := func(ev *CycleEvent) {}
	runs := make([]LaneRun, 4)
	for l := range runs {
		runs[l] = LaneRun{Key: benchScalar, Sink: sink, Consts: OperandConstants(curve.Gx, curve.B, curve.Gy)}
	}
	if _, err := lc.Run(p, runs); err != nil {
		t.Fatalf("warmup: %v", err)
	}
	avg := testing.AllocsPerRun(50, func() {
		if _, err := lc.Run(p, runs); err != nil {
			t.Fatalf("run: %v", err)
		}
	})
	if avg != 0 {
		t.Fatalf("steady-state LaneCPU.Run allocates %.1f times per run, want 0", avg)
	}
}
