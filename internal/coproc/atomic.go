package coproc

import (
	"errors"

	"medsec/internal/modn"
)

// BuildAtomicProgram generates the Giraud–Verneuil atomic variant of
// left-to-right double-and-add (PAPERS.md, arXiv:1002.4569): both the
// point doubling and the point addition compile to one *atomic block*
// with an identical opcode-and-cycle sequence — only the operands
// differ. A shape classifier that reads per-segment opcode patterns
// (the attack that strips BuildDoubleAndAddProgram bare) sees a
// uniform stream of indistinguishable blocks and can no longer tell a
// double from an add, so it cannot assign trace segments to key bits.
//
// The atomicity trick is operation padding: GF(2^m) "move" becomes an
// addition with the constant-ROM zero, and the slots only one of the
// two group operations needs are filled with dummy writes to a scratch
// RAM word whose value is never consumed. Every block is therefore
// Add, Add, [inversion], Mul, Add, Sqr, Add, Add, Add, Add, Sqr, Add,
// Mul, Add, Add, Add — for doubles and adds alike.
//
// Residual leak (inherent to atomic double-and-add, and documented in
// the Giraud–Verneuil line of work): the *number* of blocks is
// bitlen(k)−1 doubles plus HW(k)−1 adds, so total trace length still
// reveals the scalar's Hamming weight — just not which bits are set.
// Blocks are labeled with sequential Iteration indices (block 0, 1,
// ...), the segmentation an attacker actually has.
//
// Same preconditions as the plain double-and-add microcode: k > 0,
// curve coefficient a = 1, and no exceptional group-law cases (holds
// overwhelmingly for random scalars).
func BuildAtomicProgram(k modn.Scalar) (*Program, error) {
	if k.IsZero() {
		return nil, errors.New("coproc: atomic double-and-add needs a nonzero scalar")
	}
	p := &Program{}
	emit := func(op Op, rd, ra, rb uint8, iter int) {
		p.Instrs = append(p.Instrs, Instr{Op: op, Rd: rd, Ra: ra, Rb: rb, KeyBit: -1, Iteration: iter})
	}
	// Register allocation: r0 = x, r1 = y (accumulator); r2, r3, r4
	// scratch (r5 is the inversion's second scratch); RAM0 is the
	// dummy sink the padding slots write to.
	const dummy = RAM0
	top := k.BitLen() - 1
	emit(OpLoadConst, 0, ConstX, 0, -1)
	emit(OpLoadConst, 1, ConstY, 0, -1)
	emit(OpLoadConst, dummy, ConstZero, 0, -1)

	// double: lambda = x + y/x; x3 = lambda^2 + lambda + a;
	// y3 = x^2 + (lambda+1)·x3.
	double := func(block int) {
		emit(OpAdd, 3, 0, ConstZero, block)     // r3 = x (move-as-add)
		emit(OpAdd, dummy, 1, ConstZero, block) // pad (add's x+xP slot)
		emitInversionIter(p, 3, 4, 5, block)    // r3 = 1/x
		emit(OpMul, 2, 1, 3, block)             // y/x
		emit(OpAdd, 2, 2, 0, block)             // lambda
		emit(OpSqr, 3, 2, 0, block)             // lambda^2
		emit(OpAdd, 3, 3, 2, block)             // + lambda
		emit(OpAdd, 3, 3, ConstOne, block)      // + a -> x3
		emit(OpAdd, 2, 2, ConstOne, block)      // lambda+1
		emit(OpAdd, dummy, 0, ConstZero, block) // pad (add's +xP slot)
		emit(OpSqr, 4, 0, 0, block)             // x^2
		emit(OpAdd, dummy, 0, 3, block)         // pad (add's x+x3 slot)
		emit(OpMul, 2, 2, 3, block)             // (lambda+1)·x3
		emit(OpAdd, 1, 4, 2, block)             // y3
		emit(OpAdd, 0, 3, ConstZero, block)     // x = x3
		emit(OpAdd, dummy, 1, ConstZero, block) // pad (add's +y slot)
	}
	// add: lambda = (y+yP)/(x+xP); x3 = lambda^2 + lambda + x + xP + a;
	// y3 = lambda·(x+x3) + x3 + y.
	add := func(block int) {
		emit(OpAdd, 2, 1, ConstY, block)        // y + yP
		emit(OpAdd, 3, 0, ConstX, block)        // x + xP
		emitInversionIter(p, 3, 4, 5, block)    // 1/(x+xP)
		emit(OpMul, 2, 2, 3, block)             // lambda
		emit(OpAdd, dummy, 2, ConstZero, block) // pad (double's +x slot)
		emit(OpSqr, 3, 2, 0, block)             // lambda^2
		emit(OpAdd, 3, 3, 2, block)             // + lambda
		emit(OpAdd, 3, 3, 0, block)             // + x
		emit(OpAdd, 3, 3, ConstX, block)        // + xP
		emit(OpAdd, 3, 3, ConstOne, block)      // + a -> x3
		emit(OpSqr, dummy, 0, 0, block)         // pad (double's x^2 slot)
		emit(OpAdd, 4, 0, 3, block)             // x + x3
		emit(OpMul, 4, 2, 4, block)             // lambda·(x+x3)
		emit(OpAdd, 4, 4, 3, block)             // + x3
		emit(OpAdd, 1, 4, 1, block)             // y3 = ... + y
		emit(OpAdd, 0, 3, ConstZero, block)     // x = x3
	}

	block := 0
	for i := top - 1; i >= 0; i-- {
		double(block)
		block++
		if k.Bit(i) == 1 {
			add(block)
			block++
		}
	}
	p.ResultX, p.ResultY = 0, 1
	return p, nil
}

// ShapeClasses is the SPA shape classifier both microcode comparisons
// share: it partitions a program's iteration-labeled segments into
// classes, where two segments fall in the same class iff their opcode
// sequences are identical, and returns one class index per segment in
// first-appearance order (class numbers also assigned in order of
// first appearance).
//
// Against BuildDoubleAndAddProgram the classifier returns two classes
// whose pattern spells out the key bits; against BuildAtomicProgram it
// returns a single class for every block — the attacker learns only
// the block count.
func ShapeClasses(p *Program) []int {
	type seg struct {
		iter int
		ops  []Op
	}
	var segs []seg
	index := map[int]int{}
	for _, in := range p.Instrs {
		if in.Iteration < 0 {
			continue
		}
		i, ok := index[in.Iteration]
		if !ok {
			i = len(segs)
			index[in.Iteration] = i
			segs = append(segs, seg{iter: in.Iteration})
		}
		segs[i].ops = append(segs[i].ops, in.Op)
	}
	shapeKey := func(ops []Op) string {
		b := make([]byte, len(ops))
		for i, op := range ops {
			b[i] = byte(op)
		}
		return string(b)
	}
	classes := map[string]int{}
	out := make([]int, len(segs))
	for i, s := range segs {
		key := shapeKey(s.ops)
		c, ok := classes[key]
		if !ok {
			c = len(classes)
			classes[key] = c
		}
		out[i] = c
	}
	return out
}
