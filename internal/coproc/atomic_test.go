package coproc

import (
	"math/rand"
	"testing"

	"medsec/internal/ec"
	"medsec/internal/modn"
)

func TestAtomicMicrocodeCorrectness(t *testing.T) {
	curve := ec.K163()
	r := rand.New(rand.NewSource(3))
	keys := []modn.Scalar{
		modn.FromUint64(1),
		modn.FromUint64(2),
		modn.FromUint64(3),
		modn.FromUint64(0xdeadbeef),
		curve.Order.RandNonZero(r.Uint64),
	}
	for _, k := range keys {
		prog, err := BuildAtomicProgram(k)
		if err != nil {
			t.Fatal(err)
		}
		cpu := NewCPU(DefaultTiming())
		cpu.SetOperandConstants(curve.Gx, curve.B, curve.Gy)
		if _, err := cpu.Run(prog, k); err != nil {
			t.Fatal(err)
		}
		want := curve.ScalarMulDoubleAndAdd(k, curve.Generator())
		got := ec.Point{X: cpu.ResultX(prog), Y: cpu.ResultY(prog)}
		if !got.Equal(want) {
			t.Fatalf("atomic microcode wrong for k=%v: got %v want %v", k, got, want)
		}
	}
}

func TestAtomicRejectsZero(t *testing.T) {
	if _, err := BuildAtomicProgram(modn.Zero()); err == nil {
		t.Fatal("zero scalar accepted")
	}
}

// TestAtomicBlocksAreShapeUniform pins the atomicity property itself:
// every iteration-labeled block of the atomic program has the same
// opcode sequence AND the same cycle length, so a shape classifier
// cannot tell doubles from adds, while the plain double-and-add leaks
// exactly that distinction to the same classifier.
func TestAtomicBlocksAreShapeUniform(t *testing.T) {
	curve := ec.K163()
	r := rand.New(rand.NewSource(4))
	tim := DefaultTiming()
	for trial := 0; trial < 3; trial++ {
		k := curve.Order.RandNonZero(r.Uint64)
		atomic, err := BuildAtomicProgram(k)
		if err != nil {
			t.Fatal(err)
		}
		classes := ShapeClasses(atomic)
		wantBlocks := (k.BitLen() - 1) + (weight(k) - 1)
		if len(classes) != wantBlocks {
			t.Fatalf("k=%v: %d blocks, want %d", k, len(classes), wantBlocks)
		}
		for i, c := range classes {
			if c != 0 {
				t.Fatalf("k=%v: block %d in shape class %d — doubles and adds distinguishable", k, i, c)
			}
		}
		// Cycle lengths uniform too (shape classes compare opcode
		// sequences; equal sequences imply equal static timing, but pin
		// it against the Spans accounting anyway).
		lengths := map[int]int{}
		for _, sp := range atomic.Spans(tim) {
			if sp.Iteration >= 0 {
				lengths[sp.Iteration] += sp.End - sp.Start
			}
		}
		first := lengths[0]
		for it, n := range lengths {
			if n != first {
				t.Fatalf("k=%v: block %d is %d cycles, block 0 is %d", k, it, n, first)
			}
		}

		// The unprotected baseline under the SAME classifier: two
		// classes whose pattern is exactly the key bits.
		plain, err := BuildDoubleAndAddProgram(k)
		if err != nil {
			t.Fatal(err)
		}
		if got := distinct(ShapeClasses(plain)); got != 2 {
			t.Fatalf("double-and-add shape classes = %d, want 2", got)
		}
	}
}

// TestAtomicDefeatsDoubleAndAddSPA pins that the concrete shape attack
// which reads the key off the plain double-and-add refuses the atomic
// program rather than recovering bits.
func TestAtomicDefeatsDoubleAndAddSPA(t *testing.T) {
	curve := ec.K163()
	k := curve.Order.RandNonZero(rand.New(rand.NewSource(5)).Uint64)
	prog, err := BuildAtomicProgram(k)
	if err != nil {
		t.Fatal(err)
	}
	if bits := DoubleAndAddKeyFromShape(prog, DefaultTiming()); bits != nil {
		t.Fatalf("D&A shape SPA recovered %d bits from the atomic program", len(bits))
	}
}

// TestAtomicResidualLengthLeak documents the inherent residual: block
// count (and so total cycle count) still depends on HW(k).
func TestAtomicResidualLengthLeak(t *testing.T) {
	tim := DefaultTiming()
	light, err := BuildAtomicProgram(modn.MustScalarFromHex("10000000000000000000000000000000000000001"))
	if err != nil {
		t.Fatal(err)
	}
	heavy, err := BuildAtomicProgram(modn.MustScalarFromHex("1ffffffffffffffffffffffffffffffffffffffff"))
	if err != nil {
		t.Fatal(err)
	}
	if light.CycleCount(tim) >= heavy.CycleCount(tim) {
		t.Fatal("atomic microcode should still run longer for heavier keys (documented residual)")
	}
}

func weight(k modn.Scalar) int {
	w := 0
	for i := 0; i < k.BitLen(); i++ {
		w += int(k.Bit(i))
	}
	return w
}

func distinct(classes []int) int {
	seen := map[int]bool{}
	for _, c := range classes {
		seen[c] = true
	}
	return len(seen)
}
