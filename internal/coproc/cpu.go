package coproc

import (
	"errors"
	"fmt"
	"math/bits"

	"medsec/internal/gf2m"
	"medsec/internal/modn"
)

// CycleEvent describes the microarchitectural activity of one clock
// cycle. The power model (internal/power) turns these counts into
// instantaneous power; the SCA layer correlates them with hypotheses.
// The same event struct is reused across cycles — probes must not
// retain it.
type CycleEvent struct {
	// Cycle is the global cycle index (0-based).
	Cycle int
	// InstrIndex is the index of the executing instruction.
	InstrIndex int
	// Op is the executing opcode.
	Op Op
	// Iteration is the ladder iteration (-1 outside the loop).
	Iteration int
	// KeyBit is the scalar bit index controlling this cycle's muxes,
	// -1 when the cycle is not key-controlled.
	KeyBit int
	// CtrlSel is the mux select value (the key bit) on key-controlled
	// cycles.
	CtrlSel uint
	// WriteHD / Write01 are the destination register's bit flips and
	// 0->1 transitions on this cycle (0 on non-writeback cycles).
	WriteHD, Write01 int
	// SwapHD is the Hamming distance between the two CSWAP operands.
	// With Fig. 3's register-updating scheme the swap is a logical
	// renaming through multiplexers and costs no register writes; a
	// naive design that physically exchanges the registers pays
	// 2*SwapHD data toggles whenever the swap fires. The power model
	// decides which design is being simulated.
	SwapHD int
	// BusHW is the Hamming weight presented on the operand buses.
	BusHW int
	// AccHD / Acc01 are the MALU accumulator's flips on digit cycles.
	AccHD, Acc01 int
	// DigitHW is the Hamming weight of the current multiplier digit.
	DigitHW int
	// RegsClocked is the number of 163-bit registers receiving a
	// clock edge this cycle (clock-tree load).
	RegsClocked int
}

// Probe receives one callback per simulated clock cycle.
type Probe func(ev *CycleEvent)

// BatchProbe receives the CycleEvents of whole instructions at a time:
// the executor buffers each instruction's cycles and flushes the batch
// at the instruction boundary (and at the end of the run, including
// MaxCycles stops and errors). The event sequence is exactly the
// per-cycle Probe stream — same events, same order, same field values
// (pinned by TestGoldenTraceHash) — but the consumer amortizes one
// indirect call over an instruction's worth of cycles instead of
// paying it per cycle. The slice is reused across flushes: consumers
// must fold the events before returning and must not retain the
// slice.
type BatchProbe func(evs []CycleEvent)

// CPU is the co-processor execution model. Zero value is not usable:
// construct with NewCPU.
type CPU struct {
	Timing Timing
	// Rand feeds the OpLoadRnd TRNG port. Required when running RPC
	// programs.
	Rand func() uint64
	// Probe, when non-nil, is invoked every cycle.
	Probe Probe
	// Batch, when non-nil, receives buffered events flushed per
	// instruction — the fast path for power metering and trace
	// acquisition. Probe and Batch may be set together; both then see
	// the full stream.
	Batch BatchProbe
	// MaxCycles stops execution early when positive — the SCA
	// acquisition path uses it to capture only the first ladder
	// iterations instead of simulating all ~86k cycles per trace.
	MaxCycles int
	// QuietCycles, when positive, executes every instruction that
	// retires entirely before this cycle in "quiet" mode: the
	// architectural effects (register writes, TRNG draws, MALU results)
	// are identical, but no CycleEvents are computed or delivered to
	// Probe/Batch. Quiet MUL/SQR use the one-shot field multiplier
	// instead of the digit pipeline — same result element, none of the
	// per-digit switching-activity bookkeeping. This is the acquisition
	// fast path for the cycles before a trace window starts: an observer
	// that was not recording them anyway only needs its noise stream
	// advanced (power.Model.SkipCycles) to stay bit-identical.
	//
	// QuietCycles must lie on an instruction boundary (e.g. a value from
	// Program.Spans/IterationWindow) and, when MaxCycles is set, satisfy
	// QuietCycles <= MaxCycles; an instruction straddling the boundary
	// falls back to normal (evented) execution for all its cycles, which
	// would desynchronize an observer that skipped its noise stream to
	// QuietCycles.
	QuietCycles int
	// Masked enables the first-order Boolean-masked datapath: every
	// register-file and RAM location is carried as two shares
	// (value XOR mask, mask), with the mask refreshed from the MaskRand
	// stream on every writeback and on every MALU digit cycle. The
	// architectural state (Regs/RAM) still holds the raw values — share
	// splitting only changes the switching activity reported in
	// CycleEvents, which is summed over both share datapaths (and
	// RegsClocked, which doubles: both share registers take the clock
	// edge). Cycle counts, Rand draws and results are identical to the
	// unmasked datapath; only the power side-channel changes.
	Masked bool
	// MaskRand feeds the mask-refresh TRNG port; required when Masked.
	// It is deliberately a separate stream from Rand so the RPC mask
	// re-derivation contract (sca.Target.Masks, Snapshot.RandDraws)
	// keeps holding on masked runs.
	MaskRand func() uint64

	Regs   [NumRegs]gf2m.Element
	Consts [NumConsts]gf2m.Element
	RAM    [NumRAM]gf2m.Element

	// masks / ramMasks hold the current share-1 value of each masked
	// location; the constant ROM is public and rides the operand bus
	// unmasked.
	masks     [NumRegs]gf2m.Element
	ramMasks  [NumRAM]gf2m.Element
	maskDraws int

	cycle     int
	randDraws int
	ev        CycleEvent
	// batch is the reused event buffer behind Batch; its capacity
	// survives Reset so steady-state acquisition does not reallocate.
	batch []CycleEvent
}

// NewCPU returns a CPU with the given timing.
func NewCPU(t Timing) *CPU {
	return &CPU{Timing: t}
}

// Reset restores the CPU to its power-on state — register file, RAM,
// constant ROM and cycle counter zeroed — while keeping the configured
// timing. The parallel campaign engine reuses one CPU per worker
// across traces; Reset makes each acquisition start from exactly the
// state a freshly constructed CPU would, which matters because write
// power depends on the destination register's previous contents.
func (c *CPU) Reset() {
	c.Regs = [NumRegs]gf2m.Element{}
	c.Consts = [NumConsts]gf2m.Element{}
	c.RAM = [NumRAM]gf2m.Element{}
	c.masks = [NumRegs]gf2m.Element{}
	c.ramMasks = [NumRAM]gf2m.Element{}
	c.maskDraws = 0
	c.cycle = 0
	c.randDraws = 0
	c.ev = CycleEvent{}
	c.Rand = nil
	c.Probe = nil
	c.Batch = nil
	c.batch = c.batch[:0]
	c.MaxCycles = 0
	c.QuietCycles = 0
	c.Masked = false
	c.MaskRand = nil
}

// drawRand feeds OpLoadRnd while counting TRNG words so a Snapshot can
// record how far into the stream the run has advanced.
func (c *CPU) drawRand() uint64 {
	c.randDraws++
	return c.Rand()
}

// drawMaskElement draws one fresh 163-bit mask (three words, counted so
// a Snapshot can fast-forward the stream on resume). Zero is a legal
// mask: share refresh needs the masks uniform, not merely nonzero, or
// the excluded value itself becomes a first-order bias.
func (c *CPU) drawMaskElement() gf2m.Element {
	c.maskDraws += 3
	return gf2m.FromWords(c.MaskRand(), c.MaskRand(), c.MaskRand())
}

// maskPtr returns the mask slot backing a writable address, nil for the
// (public, unmasked) constant ROM.
func (c *CPU) maskPtr(a uint8) *gf2m.Element {
	switch {
	case a < NumRegs:
		return &c.masks[a]
	case a >= ramBase && a < ramBase+NumRAM:
		return &c.ramMasks[a-ramBase]
	}
	return nil
}

// maskOf returns the current mask of an operand address (zero for the
// constant ROM: public values ride the bus unmasked).
func (c *CPU) maskOf(a uint8) gf2m.Element {
	if p := c.maskPtr(a); p != nil {
		return *p
	}
	return gf2m.Element{}
}

// maskedBusHW is the operand-bus Hamming weight of value v carried as
// the share pair (v XOR m, m): both share buses present their weight.
func maskedBusHW(v, m gf2m.Element) int {
	return gf2m.Add(v, m).Weight() + m.Weight()
}

// setMaskedWrite fills the write-port activity fields for the masked
// update (old under mask om) -> (v under mask nm), summing the flips of
// both share registers. With nm drawn fresh and uniform, the expected
// activity is constant (each share transition is uniformly random), so
// the first-order mean carries no data — the data survives only in the
// joint distribution of the two shares, i.e. in the variance, which is
// what second-order (centered-product) statistics recover.
func setMaskedWrite(ev *CycleEvent, old, om, v, nm gf2m.Element) {
	os0, ns0 := gf2m.Add(old, om), gf2m.Add(v, nm)
	ev.WriteHD = gf2m.HammingDistance(os0, ns0) + gf2m.HammingDistance(om, nm)
	ev.Write01 = zeroToOne(os0, ns0) + zeroToOne(om, nm)
}

// SetOperandConstants loads the constant ROM for a point
// multiplication on base point (x, y) over a curve with parameter b.
func (c *CPU) SetOperandConstants(x, b, y gf2m.Element) {
	c.Consts = [NumConsts]gf2m.Element{x, b, y, gf2m.One(), gf2m.Zero()}
}

// ErrStopped is returned when MaxCycles aborted the run (expected
// during SCA trace acquisition).
var ErrStopped = errors.New("coproc: execution stopped at MaxCycles")

func (c *CPU) readOperand(a uint8) (gf2m.Element, error) {
	switch {
	case a < NumRegs:
		return c.Regs[a], nil
	case a >= constBase && a < constBase+NumConsts:
		return c.Consts[a-constBase], nil
	case a >= ramBase && a < ramBase+NumRAM:
		return c.RAM[a-ramBase], nil
	default:
		return gf2m.Element{}, fmt.Errorf("coproc: invalid operand address %d", a)
	}
}

func (c *CPU) writeOperand(a uint8, v gf2m.Element) (old gf2m.Element, err error) {
	switch {
	case a < NumRegs:
		old = c.Regs[a]
		c.Regs[a] = v
	case a >= ramBase && a < ramBase+NumRAM:
		old = c.RAM[a-ramBase]
		c.RAM[a-ramBase] = v
	default:
		return gf2m.Element{}, fmt.Errorf("coproc: invalid write address %d", a)
	}
	return old, nil
}

// tick emits one cycle to the probe(s) and advances the clock. It
// returns false when MaxCycles is reached.
func (c *CPU) tick() bool {
	c.ev.Cycle = c.cycle
	if c.Probe != nil {
		c.Probe(&c.ev)
	}
	if c.Batch != nil {
		c.batch = append(c.batch, c.ev)
	}
	c.cycle++
	return c.MaxCycles <= 0 || c.cycle < c.MaxCycles
}

// flushBatch delivers and recycles the buffered batch events.
func (c *CPU) flushBatch() {
	if c.Batch != nil && len(c.batch) > 0 {
		c.Batch(c.batch)
		c.batch = c.batch[:0]
	}
}

// resetEvent clears the per-cycle fields and stamps instruction
// context.
func (c *CPU) resetEvent(idx int, in *Instr) {
	c.ev = CycleEvent{
		InstrIndex: idx,
		Op:         in.Op,
		Iteration:  in.Iteration,
		KeyBit:     -1,
	}
}

// extractDigit returns bits [j*d, (j+1)*d) of e as a small integer,
// reading whole words instead of single bits: the digit straddles at
// most two words since d <= 61.
func extractDigit(e gf2m.Element, j, d int) uint64 {
	lo := j * d
	w, s := lo>>6, uint(lo)&63
	v := e[w] >> s
	if s+uint(d) > 64 && w+1 < gf2m.Words {
		v |= e[w+1] << (64 - s)
	}
	return v & (1<<uint(d) - 1)
}

// extractDigitRef is the original bit-loop extraction, kept as the
// reference the tests cross-check the word-level path against.
func extractDigitRef(e gf2m.Element, j, d int) uint64 {
	lo := j * d
	var v uint64
	for i := 0; i < d; i++ {
		v |= uint64(e.Bit(lo+i)) << i
	}
	return v
}

// mulSmall returns a * digit mod f where digit is a polynomial of
// degree < d (d <= 61): the MALU's per-cycle partial product. It is
// the reference implementation; runMALU uses the precomputed shift
// table instead (same element values, O(d) shifted-operand work per
// instruction instead of per digit cycle).
func mulSmall(a gf2m.Element, digit uint64) gf2m.Element {
	var acc gf2m.Element
	for i := 0; digit != 0; i++ {
		if digit&1 == 1 {
			acc = gf2m.Add(acc, gf2m.ShlMod(a, uint(i)))
		}
		digit >>= 1
	}
	return acc
}

// maxDigitSize bounds Timing.DigitSize; shift tables are stack arrays
// of this size.
const maxDigitSize = 61

// runMALU executes a MUL or SQR through the digit-serial multiplier,
// emitting the load cycle(s), one cycle per digit (MSD first), and the
// writeback cycle. Returns (result, ok) where ok=false means the run
// hit MaxCycles.
//
// The per-digit recurrence acc' = acc·x^d + a·digit is computed from a
// shift table S[i] = a·x^i mod f precomputed once per instruction —
// exactly the partial products the hardware MALU wires into its
// digit-serial array — so each digit cycle pays one accumulator shift
// plus at most d table XORs instead of rebuilding every shifted
// operand. The accumulator values, and therefore the AccHD/Acc01
// switching activity derived from them, are bit-identical to the
// reference mulSmall path (pinned by TestGoldenTraceHash and the MALU
// cross-check tests).
func (c *CPU) runMALU(idx int, in *Instr, a, b gf2m.Element) (gf2m.Element, bool, error) {
	t := c.Timing
	if t.DigitSize <= 0 || t.DigitSize > maxDigitSize {
		return gf2m.Element{}, false, fmt.Errorf("coproc: unsupported digit size %d", t.DigitSize)
	}
	// Masked mode: the digit-serial array is duplicated per share, the
	// accumulator mask is refreshed every digit cycle, and the operand
	// shares are derived from the architectural (raw) state plus the
	// live mask slots. All activity fields below sum both shares.
	var ma, mb, maskedA, maskedB gf2m.Element
	if c.Masked {
		ma, mb = c.maskOf(in.Ra), c.maskOf(in.Rb)
		if in.Op == OpSqr {
			mb = ma
		}
		maskedA, maskedB = gf2m.Add(a, ma), gf2m.Add(b, mb)
	}
	// Operand-load cycles (MulOverhead-1 of them; the final overhead
	// cycle is the writeback).
	for k := 0; k < t.MulOverhead-1; k++ {
		c.resetEvent(idx, in)
		if c.Masked {
			c.ev.BusHW = maskedA.Weight() + ma.Weight() + maskedB.Weight() + mb.Weight()
			c.ev.RegsClocked = 4 // both shares' operand latches
		} else {
			c.ev.BusHW = a.Weight() + b.Weight()
			c.ev.RegsClocked = 2 // MALU operand latches
		}
		if !c.tick() {
			return gf2m.Element{}, false, nil
		}
	}
	// Shift table: S[i] = a·x^i mod f for i < d, built incrementally
	// (each entry is the previous shifted by one bit position mod f).
	var shifts [maxDigitSize]gf2m.Element
	shifts[0] = a
	for i := 1; i < t.DigitSize; i++ {
		shifts[i] = gf2m.ShlMod(shifts[i-1], 1)
	}
	var acc gf2m.Element
	// accMask is the accumulator's live share-1 value (masked mode);
	// starts at zero with the zeroed accumulator and is refreshed every
	// digit cycle.
	var accMask gf2m.Element
	digits := t.Digits()
	for j := digits - 1; j >= 0; j-- {
		digit := extractDigit(b, j, t.DigitSize)
		// Partial product a·digit as an XOR over the shift table (the
		// set bits of the digit select rows of the MALU array).
		next := gf2m.ShlMod(acc, uint(t.DigitSize))
		for dg := digit; dg != 0; dg &= dg - 1 {
			next = gf2m.Add(next, shifts[bits.TrailingZeros64(dg)])
		}
		c.resetEvent(idx, in)
		if c.Masked {
			nm := c.drawMaskElement()
			c.ev.AccHD = gf2m.HammingDistance(gf2m.Add(acc, accMask), gf2m.Add(next, nm)) +
				gf2m.HammingDistance(accMask, nm)
			c.ev.Acc01 = zeroToOne(gf2m.Add(acc, accMask), gf2m.Add(next, nm)) +
				zeroToOne(accMask, nm)
			// Each share's digit selects rows of its own MALU array.
			c.ev.DigitHW = bits.OnesCount64(extractDigit(maskedB, j, t.DigitSize)) +
				bits.OnesCount64(extractDigit(mb, j, t.DigitSize))
			c.ev.BusHW = c.ev.DigitHW
			c.ev.RegsClocked = 2 // both accumulator shares
			accMask = nm
		} else {
			c.ev.AccHD = gf2m.HammingDistance(acc, next)
			c.ev.Acc01 = zeroToOne(acc, next)
			c.ev.DigitHW = bits.OnesCount64(digit)
			c.ev.BusHW = c.ev.DigitHW // the digit bus toggles with the operand
			c.ev.RegsClocked = 1      // accumulator
		}
		acc = next
		if !c.tick() {
			return gf2m.Element{}, false, nil
		}
	}
	// Writeback cycle.
	old, err := c.readOperand(in.Rd)
	if err != nil {
		return gf2m.Element{}, false, err
	}
	c.resetEvent(idx, in)
	if c.Masked {
		mp := c.maskPtr(in.Rd)
		nm := c.drawMaskElement()
		setMaskedWrite(&c.ev, old, *mp, acc, nm)
		*mp = nm
		c.ev.RegsClocked = 2
	} else {
		c.ev.WriteHD = gf2m.HammingDistance(old, acc)
		c.ev.Write01 = zeroToOne(old, acc)
		c.ev.RegsClocked = 1
	}
	if _, err := c.writeOperand(in.Rd, acc); err != nil {
		return gf2m.Element{}, false, err
	}
	ok := c.tick()
	return acc, ok, nil
}

// zeroToOne counts 0->1 transitions in the update old -> new: the
// transitions a static CMOS gate draws supply current for.
func zeroToOne(old, new gf2m.Element) int {
	n := 0
	for i := 0; i < gf2m.Words; i++ {
		n += bits.OnesCount64(^old[i] & new[i])
	}
	return n
}

// RandNonZeroElement draws a nonzero field element exactly the way the
// OpLoadRnd port does: three words from src, normalized, redrawn on
// zero. The SCA layer's "randomness known to the attacker" white-box
// mode re-derives the RPC masks with this function.
func RandNonZeroElement(src func() uint64) gf2m.Element {
	for {
		e := gf2m.FromWords(src(), src(), src())
		if !e.IsZero() {
			return e
		}
	}
}

// Snapshot captures the full architectural state of a run at an
// instruction boundary: the register file, constant ROM, scratch RAM,
// the global cycle counter, and how many TRNG words the run has drawn
// so far. Resuming from a Snapshot with the same program, scalar and
// TRNG stream reproduces the remainder of the run bit-identically —
// the fault-sweep engine uses this to simulate only the suffix of the
// program after each injection point instead of re-running the ~86k
// cycle prefix for every point in the fault space.
type Snapshot struct {
	// Instr is the index of the next instruction to execute.
	Instr int
	// Cycle is the global cycle counter at the boundary.
	Cycle int
	// RandDraws is the number of TRNG words drawn so far; Resume
	// fast-forwards a fresh stream by this many draws.
	RandDraws int
	// MaskDraws is the number of mask-TRNG words drawn so far on a
	// masked run (0 on unmasked runs); Resume fast-forwards MaskRand by
	// this many draws.
	MaskDraws int

	Regs   [NumRegs]gf2m.Element
	Consts [NumConsts]gf2m.Element
	RAM    [NumRAM]gf2m.Element

	// Masks / RAMMasks are the live share-1 values of a masked run
	// (zero on unmasked runs).
	Masks    [NumRegs]gf2m.Element
	RAMMasks [NumRAM]gf2m.Element
}

// snapshot captures the state with nextInstr as the resume point.
func (c *CPU) snapshot(nextInstr int) Snapshot {
	return Snapshot{
		Instr:     nextInstr,
		Cycle:     c.cycle,
		RandDraws: c.randDraws,
		MaskDraws: c.maskDraws,
		Regs:      c.Regs,
		Consts:    c.Consts,
		RAM:       c.RAM,
		Masks:     c.masks,
		RAMMasks:  c.ramMasks,
	}
}

// Run executes the program against the given scalar. It returns the
// total cycle count. If MaxCycles stops the run early it returns
// ErrStopped (the registers then hold the in-flight state, which is
// exactly what trace acquisition wants).
func (c *CPU) Run(p *Program, key modn.Scalar) (int, error) {
	c.cycle = 0
	c.randDraws = 0
	c.maskDraws = 0
	return c.run(p, key, 0, nil)
}

// RunCheckpointed executes the whole program like Run while capturing
// a Snapshot before every instruction for which keep(instrIndex,
// startCycle) returns true (keep == nil keeps every boundary). The
// snapshots are returned in execution order.
func (c *CPU) RunCheckpointed(p *Program, key modn.Scalar, keep func(instrIndex, startCycle int) bool) ([]Snapshot, int, error) {
	c.cycle = 0
	c.randDraws = 0
	c.maskDraws = 0
	var snaps []Snapshot
	n, err := c.run(p, key, 0, func(idx int) bool {
		if keep == nil || keep(idx, c.cycle) {
			snaps = append(snaps, c.snapshot(idx))
		}
		return true
	})
	return snaps, n, err
}

// SnapshotPrefix executes only instructions [0, nInstr) and returns the
// Snapshot at that boundary — the checkpointed-acquisition prologue.
// A campaign over a fixed base point runs this once (with the campaign
// reference key) for the longest prefix that is TRNG-independent and
// whose key-bit decisions can be verified per trace
// (Program.PrefixBoundary computes that prefix), then every acquisition
// Resumes from the snapshot instead of re-simulating the prefix.
func (c *CPU) SnapshotPrefix(p *Program, key modn.Scalar, nInstr int) (Snapshot, error) {
	if nInstr < 0 || nInstr > len(p.Instrs) {
		return Snapshot{}, fmt.Errorf("coproc: prefix boundary %d out of program range", nInstr)
	}
	c.cycle = 0
	c.randDraws = 0
	c.maskDraws = 0
	if _, err := c.run(p, key, 0, func(idx int) bool { return idx < nInstr }); err != nil {
		return Snapshot{}, err
	}
	return c.snapshot(nInstr), nil
}

// Resume restores a Snapshot and executes the rest of the program.
// The caller must install the same Timing and a fresh TRNG stream
// seeded identically to the original run: Resume fast-forwards it by
// snap.RandDraws words so OpLoadRnd sees exactly the values the full
// run would. Probe and MaxCycles behave as in Run (cycle numbering is
// global, continuing from snap.Cycle).
func (c *CPU) Resume(p *Program, key modn.Scalar, snap Snapshot) (int, error) {
	if snap.Instr < 0 || snap.Instr > len(p.Instrs) {
		return 0, fmt.Errorf("coproc: snapshot instruction %d out of program range", snap.Instr)
	}
	if snap.RandDraws > 0 && c.Rand == nil {
		return 0, errors.New("coproc: resume of a randomized run requires a TRNG source")
	}
	if snap.MaskDraws > 0 && c.MaskRand == nil {
		return 0, errors.New("coproc: resume of a masked run requires a mask TRNG source")
	}
	c.Regs = snap.Regs
	c.Consts = snap.Consts
	c.RAM = snap.RAM
	c.masks = snap.Masks
	c.ramMasks = snap.RAMMasks
	c.cycle = snap.Cycle
	c.randDraws = snap.RandDraws
	c.maskDraws = snap.MaskDraws
	for i := 0; i < snap.RandDraws; i++ {
		c.Rand()
	}
	for i := 0; i < snap.MaskDraws; i++ {
		c.MaskRand()
	}
	return c.run(p, key, snap.Instr, nil)
}

// run executes instructions [fromInstr, len(p.Instrs)) with the
// current architectural state, invoking onInstr (when non-nil) at each
// instruction boundary before it executes; onInstr returning false
// stops cleanly at that boundary (SnapshotPrefix). Batched probe events
// are flushed per instruction; the deferred flush delivers the
// in-flight partial instruction when execution stops early (MaxCycles,
// errors).
func (c *CPU) run(p *Program, key modn.Scalar, fromInstr int, onInstr func(idx int) bool) (int, error) {
	if c.Masked && c.MaskRand == nil {
		return c.cycle, errors.New("coproc: masked execution requires a mask TRNG source (MaskRand)")
	}
	defer c.flushBatch()
	for idx := fromInstr; idx < len(p.Instrs); idx++ {
		if onInstr != nil && !onInstr(idx) {
			return c.cycle, nil
		}
		in := &p.Instrs[idx]
		// Quiet prefix: instructions that retire entirely before
		// QuietCycles execute architecturally with no event bookkeeping.
		if c.QuietCycles > 0 && c.cycle < c.QuietCycles {
			cost := c.Timing.InstrCycles(in.Op)
			if c.cycle+cost <= c.QuietCycles && (c.MaxCycles <= 0 || c.cycle+cost <= c.MaxCycles) {
				if err := c.quietExec(in, key); err != nil {
					return c.cycle, err
				}
				c.cycle += cost
				continue
			}
		}
		switch in.Op {
		case OpNop:
			c.resetEvent(idx, in)
			if !c.tick() {
				return c.cycle, ErrStopped
			}

		case OpAdd, OpMove, OpLoadConst, OpLoadRnd:
			var v gf2m.Element
			var busHW int
			switch in.Op {
			case OpAdd:
				a, err := c.readOperand(in.Ra)
				if err != nil {
					return c.cycle, err
				}
				b, err := c.readOperand(in.Rb)
				if err != nil {
					return c.cycle, err
				}
				v = gf2m.Add(a, b)
				if c.Masked {
					busHW = maskedBusHW(a, c.maskOf(in.Ra)) + maskedBusHW(b, c.maskOf(in.Rb))
				} else {
					busHW = a.Weight() + b.Weight()
				}
			case OpMove:
				a, err := c.readOperand(in.Ra)
				if err != nil {
					return c.cycle, err
				}
				v = a
				if c.Masked {
					busHW = maskedBusHW(a, c.maskOf(in.Ra))
				} else {
					busHW = a.Weight()
				}
			case OpLoadConst:
				a, err := c.readOperand(in.Ra)
				if err != nil {
					return c.cycle, err
				}
				v = a
				if c.Masked {
					busHW = maskedBusHW(a, c.maskOf(in.Ra))
				} else {
					busHW = a.Weight()
				}
			case OpLoadRnd:
				if c.Rand == nil {
					return c.cycle, errors.New("coproc: OpLoadRnd requires a TRNG source")
				}
				v = RandNonZeroElement(c.drawRand)
				// The TRNG port delivers the raw word stream; share
				// splitting happens at the register-file write below.
				busHW = v.Weight()
			}
			old, err := c.writeOperand(in.Rd, v)
			if err != nil {
				return c.cycle, err
			}
			c.resetEvent(idx, in)
			if c.Masked {
				mp := c.maskPtr(in.Rd)
				nm := c.drawMaskElement()
				setMaskedWrite(&c.ev, old, *mp, v, nm)
				*mp = nm
				c.ev.RegsClocked = 2 // both share registers
			} else {
				c.ev.WriteHD = gf2m.HammingDistance(old, v)
				c.ev.Write01 = zeroToOne(old, v)
				c.ev.RegsClocked = 1
			}
			c.ev.BusHW = busHW
			if !c.tick() {
				return c.cycle, ErrStopped
			}

		case OpCSwap:
			if in.KeyBit < 0 {
				return c.cycle, errors.New("coproc: CSWAP without key bit")
			}
			sel := key.Bit(in.KeyBit)
			a, err := c.readOperand(in.Rd)
			if err != nil {
				return c.cycle, err
			}
			b, err := c.readOperand(in.Ra)
			if err != nil {
				return c.cycle, err
			}
			c.resetEvent(idx, in)
			c.ev.KeyBit = in.KeyBit
			c.ev.CtrlSel = sel
			if c.Masked {
				// The swap muxes operate per share; masks travel with
				// their values (no refresh — CSWAP draws nothing, so the
				// mask-draw schedule stays key-independent).
				ma, mb := c.maskOf(in.Rd), c.maskOf(in.Ra)
				c.ev.SwapHD = gf2m.HammingDistance(gf2m.Add(a, ma), gf2m.Add(b, mb)) +
					gf2m.HammingDistance(ma, mb)
				c.ev.RegsClocked = 4
			} else {
				c.ev.SwapHD = gf2m.HammingDistance(a, b)
				c.ev.RegsClocked = 2
			}
			if sel == 1 {
				// Functionally the swap always takes effect; whether it
				// is a physical register exchange or a mux renaming is
				// a circuit-level choice the power model charges for.
				if _, err := c.writeOperand(in.Rd, b); err != nil {
					return c.cycle, err
				}
				if _, err := c.writeOperand(in.Ra, a); err != nil {
					return c.cycle, err
				}
				if c.Masked {
					pa, pb := c.maskPtr(in.Rd), c.maskPtr(in.Ra)
					*pa, *pb = *pb, *pa
				}
			}
			if !c.tick() {
				return c.cycle, ErrStopped
			}

		case OpMul, OpSqr:
			a, err := c.readOperand(in.Ra)
			if err != nil {
				return c.cycle, err
			}
			b := a
			if in.Op == OpMul {
				if b, err = c.readOperand(in.Rb); err != nil {
					return c.cycle, err
				}
			}
			_, ok, err := c.runMALU(idx, in, a, b)
			if err != nil {
				return c.cycle, err
			}
			if !ok {
				return c.cycle, ErrStopped
			}

		default:
			return c.cycle, fmt.Errorf("coproc: unknown opcode %v", in.Op)
		}
		c.flushBatch()
	}
	return c.cycle, nil
}

// quietExec performs one instruction's architectural effects without
// any event bookkeeping — the QuietCycles fast path. Register writes,
// conditional swaps, TRNG draws and (on masked runs) mask-stream draws
// and mask-slot updates are exactly those of the evented path; MUL/SQR
// results come from the one-shot field multiplier, which the MALU
// cross-check tests pin to the digit-serial pipeline's result element.
// The caller advances the cycle counter by the instruction's static
// cost.
func (c *CPU) quietExec(in *Instr, key modn.Scalar) error {
	switch in.Op {
	case OpNop:
		return nil

	case OpAdd:
		a, err := c.readOperand(in.Ra)
		if err != nil {
			return err
		}
		b, err := c.readOperand(in.Rb)
		if err != nil {
			return err
		}
		if _, err := c.writeOperand(in.Rd, gf2m.Add(a, b)); err != nil {
			return err
		}
		c.quietMaskWrite(in.Rd)
		return nil

	case OpMove, OpLoadConst:
		a, err := c.readOperand(in.Ra)
		if err != nil {
			return err
		}
		if _, err := c.writeOperand(in.Rd, a); err != nil {
			return err
		}
		c.quietMaskWrite(in.Rd)
		return nil

	case OpLoadRnd:
		if c.Rand == nil {
			return errors.New("coproc: OpLoadRnd requires a TRNG source")
		}
		if _, err := c.writeOperand(in.Rd, RandNonZeroElement(c.drawRand)); err != nil {
			return err
		}
		c.quietMaskWrite(in.Rd)
		return nil

	case OpCSwap:
		if in.KeyBit < 0 {
			return errors.New("coproc: CSWAP without key bit")
		}
		if key.Bit(in.KeyBit) == 1 {
			a, err := c.readOperand(in.Rd)
			if err != nil {
				return err
			}
			b, err := c.readOperand(in.Ra)
			if err != nil {
				return err
			}
			if _, err := c.writeOperand(in.Rd, b); err != nil {
				return err
			}
			if _, err := c.writeOperand(in.Ra, a); err != nil {
				return err
			}
			if c.Masked {
				pa, pb := c.maskPtr(in.Rd), c.maskPtr(in.Ra)
				*pa, *pb = *pb, *pa
			}
		}
		return nil

	case OpMul, OpSqr:
		a, err := c.readOperand(in.Ra)
		if err != nil {
			return err
		}
		var v gf2m.Element
		if in.Op == OpSqr {
			v = gf2m.Sqr(a)
		} else {
			b, err := c.readOperand(in.Rb)
			if err != nil {
				return err
			}
			v = gf2m.Mul(a, b)
		}
		if _, err := c.writeOperand(in.Rd, v); err != nil {
			return err
		}
		if c.Masked {
			// Match the evented digit pipeline's draw schedule: one
			// accumulator refresh per digit cycle (discarded — the
			// accumulator mask dies with the instruction), then the
			// writeback refresh that becomes the destination's mask.
			for j := c.Timing.Digits(); j > 0; j-- {
				c.drawMaskElement()
			}
			c.quietMaskWrite(in.Rd)
		}
		return nil

	default:
		return fmt.Errorf("coproc: unknown opcode %v", in.Op)
	}
}

// quietMaskWrite applies the masked write-port refresh (fresh mask into
// the destination's mask slot) on the quiet path; a no-op when the
// datapath is unmasked.
func (c *CPU) quietMaskWrite(rd uint8) {
	if !c.Masked {
		return
	}
	if mp := c.maskPtr(rd); mp != nil {
		*mp = c.drawMaskElement()
	}
}

// ResultX returns the affine x result register after a completed run.
func (c *CPU) ResultX(p *Program) gf2m.Element { return c.Regs[p.ResultX] }

// ResultY returns the affine y result register after a completed run
// of a y-recovery program.
func (c *CPU) ResultY(p *Program) gf2m.Element { return c.Regs[p.ResultY] }
