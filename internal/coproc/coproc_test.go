package coproc

import (
	"math/rand"
	"testing"

	"medsec/internal/ec"
	"medsec/internal/gf2m"
	"medsec/internal/modn"
	"medsec/internal/rng"
)

func newTestCPU(t Timing, seed uint64) *CPU {
	c := NewCPU(t)
	d := rng.NewDRBG(seed)
	c.Rand = d.Uint64
	return c
}

func setupPoint(c *CPU, curve *ec.Curve, p ec.Point) {
	c.SetOperandConstants(p.X, curve.B, p.Y)
}

// runPM runs a full point multiplication on the simulator and returns
// the affine result.
func runPM(t *testing.T, cpu *CPU, prog *Program, curve *ec.Curve, k modn.Scalar, p ec.Point) ec.Point {
	t.Helper()
	setupPoint(cpu, curve, p)
	if _, err := cpu.Run(prog, k); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if prog.XOnly {
		return ec.Point{X: cpu.ResultX(prog)}
	}
	return ec.Point{X: cpu.ResultX(prog), Y: cpu.ResultY(prog)}
}

func TestMicrocodeMatchesSoftwareLadder(t *testing.T) {
	curve := ec.K163()
	r := rand.New(rand.NewSource(1))
	for _, opt := range []ProgramOptions{
		{},
		{RPC: true},
		{XOnly: true},
		{RPC: true, XOnly: true},
	} {
		prog := BuildLadderProgram(opt)
		for i := 0; i < 4; i++ {
			k := curve.Order.RandNonZero(r.Uint64)
			p := curve.RandomPoint(r.Uint64)
			want, err := curve.ScalarMulLadder(k, p, ec.LadderOptions{})
			if err != nil {
				t.Fatal(err)
			}
			cpu := newTestCPU(DefaultTiming(), uint64(i)+99)
			got := runPM(t, cpu, prog, curve, k, p)
			if !got.X.Equal(want.X) {
				t.Fatalf("opts %+v: x mismatch for k=%v", opt, k)
			}
			if !opt.XOnly && !got.Y.Equal(want.Y) {
				t.Fatalf("opts %+v: y mismatch for k=%v", opt, k)
			}
		}
	}
}

func TestMicrocodeSmallScalars(t *testing.T) {
	curve := ec.K163()
	prog := BuildLadderProgram(ProgramOptions{})
	g := curve.Generator()
	for _, k := range []uint64{1, 2, 3, 7, 100} {
		cpu := newTestCPU(DefaultTiming(), k)
		got := runPM(t, cpu, prog, curve, modn.FromUint64(k), g)
		want := curve.ScalarMulDoubleAndAdd(modn.FromUint64(k), g)
		if !got.Equal(want) {
			t.Fatalf("microcode wrong for k=%d: got %v want %v", k, got, want)
		}
	}
}

func TestCycleCountIsKeyIndependent(t *testing.T) {
	// The core timing-countermeasure claim (paper §7): same cycle
	// count for every key, and equal to the static prediction.
	curve := ec.K163()
	prog := BuildLadderProgram(ProgramOptions{RPC: true})
	tim := DefaultTiming()
	static := prog.CycleCount(tim)
	r := rand.New(rand.NewSource(2))
	g := curve.Generator()
	keys := []modn.Scalar{
		modn.FromUint64(1),                       // minimal weight
		curve.Order.Sub(modn.Zero(), modn.One()), // n-1
	}
	for i := 0; i < 4; i++ {
		keys = append(keys, curve.Order.RandNonZero(r.Uint64))
	}
	for _, k := range keys {
		cpu := newTestCPU(tim, 7)
		setupPoint(cpu, curve, g)
		cycles, err := cpu.Run(prog, k)
		if err != nil {
			t.Fatal(err)
		}
		if cycles != static {
			t.Fatalf("cycle count %d for k=%v, static prediction %d", cycles, k, static)
		}
	}
}

func TestOperatingPointMatchesPaper(t *testing.T) {
	// Paper §6: 847.5 kHz, 9.8 point multiplications per second
	// => ~86 480 cycles per PM with the d=4 MALU.
	prog := BuildLadderProgram(ProgramOptions{RPC: true})
	cycles := prog.CycleCount(DefaultTiming())
	const clock = 847500.0
	throughput := clock / float64(cycles)
	if throughput < 9.65 || throughput > 9.95 {
		t.Fatalf("throughput %.3f PM/s (%d cycles); paper reports 9.8", throughput, cycles)
	}
}

func TestRegisterPressure(t *testing.T) {
	// Paper §4: "Our ECC chip uses six 163-bit registers for the whole
	// point multiplication" (the ladder loop); prime-field Co-Z would
	// need 8 [6]. Post-processing may spill to scratch RAM.
	for _, opt := range []ProgramOptions{{}, {RPC: true}, {XOnly: true}} {
		prog := BuildLadderProgram(opt)
		loopRegs, ram := prog.RegisterPressure()
		if loopRegs != 6 {
			t.Fatalf("opts %+v: ladder loop uses %d registers, want 6", opt, loopRegs)
		}
		if ram > NumRAM {
			t.Fatalf("opts %+v: %d RAM words exceed the model", opt, ram)
		}
	}
	// The x-only program must not need RAM at all.
	prog := BuildLadderProgram(ProgramOptions{XOnly: true})
	if _, ram := prog.RegisterPressure(); ram != 0 {
		t.Fatalf("x-only program touches %d RAM words, want 0", ram)
	}
}

func TestDigitSerialMALUMatchesFieldMul(t *testing.T) {
	// The MALU's digit-serial algorithm must agree with gf2m.Mul for
	// every supported digit size.
	r := rand.New(rand.NewSource(3))
	for _, d := range []int{1, 2, 4, 8, 16, 32, 61} {
		tim := Timing{DigitSize: d, MulOverhead: 2, SingleCycle: 1}
		cpu := NewCPU(tim)
		for i := 0; i < 5; i++ {
			a := gf2m.FromWords(r.Uint64(), r.Uint64(), r.Uint64())
			b := gf2m.FromWords(r.Uint64(), r.Uint64(), r.Uint64())
			cpu.Regs[0], cpu.Regs[1] = a, b
			prog := &Program{Instrs: []Instr{
				{Op: OpMul, Rd: 2, Ra: 0, Rb: 1, KeyBit: -1, Iteration: -1},
				{Op: OpSqr, Rd: 3, Ra: 0, KeyBit: -1, Iteration: -1},
			}}
			if _, err := cpu.Run(prog, modn.Zero()); err != nil {
				t.Fatal(err)
			}
			if !cpu.Regs[2].Equal(gf2m.Mul(a, b)) {
				t.Fatalf("d=%d: MALU product wrong", d)
			}
			if !cpu.Regs[3].Equal(gf2m.Sqr(a)) {
				t.Fatalf("d=%d: MALU square wrong", d)
			}
		}
	}
}

func TestMALUCycleScalingWithDigitSize(t *testing.T) {
	// Latency must scale as ceil(163/d) + overhead.
	for _, d := range []int{1, 2, 4, 8, 16} {
		tim := Timing{DigitSize: d, MulOverhead: 2, SingleCycle: 1}
		want := (163+d-1)/d + 2
		if got := tim.InstrCycles(OpMul); got != want {
			t.Fatalf("d=%d: MUL takes %d cycles, want %d", d, got, want)
		}
	}
}

func TestProbeSeesEveryCycle(t *testing.T) {
	curve := ec.K163()
	prog := BuildLadderProgram(ProgramOptions{})
	tim := DefaultTiming()
	cpu := newTestCPU(tim, 5)
	setupPoint(cpu, curve, curve.Generator())
	var seen int
	last := -1
	cpu.Probe = func(ev *CycleEvent) {
		if ev.Cycle != last+1 {
			t.Fatalf("cycle jump: %d -> %d", last, ev.Cycle)
		}
		last = ev.Cycle
		seen++
	}
	cycles, err := cpu.Run(prog, modn.FromUint64(12345))
	if err != nil {
		t.Fatal(err)
	}
	if seen != cycles {
		t.Fatalf("probe saw %d cycles, run reported %d", seen, cycles)
	}
}

func TestCSwapEventsCarryKeyBit(t *testing.T) {
	curve := ec.K163()
	prog := BuildLadderProgram(ProgramOptions{})
	cpu := newTestCPU(DefaultTiming(), 6)
	setupPoint(cpu, curve, curve.Generator())
	k := curve.Order.RandNonZero(rng.NewDRBG(8).Uint64)
	var ctrlCycles int
	cpu.Probe = func(ev *CycleEvent) {
		if ev.Op == OpCSwap {
			if ev.KeyBit < 0 || ev.KeyBit >= 163 {
				t.Fatalf("CSWAP cycle without key bit index: %d", ev.KeyBit)
			}
			if ev.CtrlSel != k.Bit(ev.KeyBit) {
				t.Fatal("CtrlSel does not match the key bit")
			}
			ctrlCycles++
		} else if ev.KeyBit != -1 {
			t.Fatal("non-CSWAP cycle claims key control")
		}
	}
	if _, err := cpu.Run(prog, k); err != nil {
		t.Fatal(err)
	}
	if ctrlCycles != 4*LadderIterations {
		t.Fatalf("saw %d key-controlled cycles, want %d", ctrlCycles, 4*LadderIterations)
	}
}

func TestMaxCyclesStopsEarly(t *testing.T) {
	curve := ec.K163()
	prog := BuildLadderProgram(ProgramOptions{})
	cpu := newTestCPU(DefaultTiming(), 7)
	setupPoint(cpu, curve, curve.Generator())
	cpu.MaxCycles = 1000
	cycles, err := cpu.Run(prog, modn.FromUint64(99))
	if err != ErrStopped {
		t.Fatalf("expected ErrStopped, got %v", err)
	}
	if cycles != 1000 {
		t.Fatalf("stopped at %d cycles, want 1000", cycles)
	}
}

func TestRunErrors(t *testing.T) {
	cpu := NewCPU(DefaultTiming())
	// LoadRnd without TRNG.
	prog := &Program{Instrs: []Instr{{Op: OpLoadRnd, Rd: 0, KeyBit: -1, Iteration: -1}}}
	if _, err := cpu.Run(prog, modn.Zero()); err == nil {
		t.Fatal("OpLoadRnd without Rand accepted")
	}
	// Invalid operand address.
	prog = &Program{Instrs: []Instr{{Op: OpMove, Rd: 0, Ra: 99, KeyBit: -1, Iteration: -1}}}
	if _, err := cpu.Run(prog, modn.Zero()); err == nil {
		t.Fatal("invalid operand accepted")
	}
	// Write to constant ROM.
	prog = &Program{Instrs: []Instr{{Op: OpMove, Rd: ConstX, Ra: 0, KeyBit: -1, Iteration: -1}}}
	if _, err := cpu.Run(prog, modn.Zero()); err == nil {
		t.Fatal("write to ROM accepted")
	}
	// CSWAP without key bit.
	prog = &Program{Instrs: []Instr{{Op: OpCSwap, Rd: 0, Ra: 1, KeyBit: -1, Iteration: -1}}}
	if _, err := cpu.Run(prog, modn.Zero()); err == nil {
		t.Fatal("CSWAP without key bit accepted")
	}
	// Bad digit size.
	bad := NewCPU(Timing{DigitSize: 0, MulOverhead: 2, SingleCycle: 1})
	prog = &Program{Instrs: []Instr{{Op: OpMul, Rd: 0, Ra: 1, Rb: 2, KeyBit: -1, Iteration: -1}}}
	if _, err := bad.Run(prog, modn.Zero()); err == nil {
		t.Fatal("digit size 0 accepted")
	}
}

func TestCSwapSemantics(t *testing.T) {
	cpu := NewCPU(DefaultTiming())
	a := gf2m.FromUint64(0xaaaa)
	b := gf2m.FromUint64(0x5555)
	cpu.Regs[0], cpu.Regs[1] = a, b
	prog := &Program{Instrs: []Instr{{Op: OpCSwap, Rd: 0, Ra: 1, KeyBit: 0, Iteration: 0}}}
	// Key bit 0 clear: no swap.
	if _, err := cpu.Run(prog, modn.FromUint64(0)); err != nil {
		t.Fatal(err)
	}
	if !cpu.Regs[0].Equal(a) || !cpu.Regs[1].Equal(b) {
		t.Fatal("CSWAP with clear bit swapped")
	}
	// Key bit 0 set: swap.
	if _, err := cpu.Run(prog, modn.FromUint64(1)); err != nil {
		t.Fatal(err)
	}
	if !cpu.Regs[0].Equal(b) || !cpu.Regs[1].Equal(a) {
		t.Fatal("CSWAP with set bit did not swap")
	}
}

func TestInstructionStringer(t *testing.T) {
	in := Instr{Op: OpMul, Rd: 0, Ra: ConstX, Rb: RAM1}
	if got := in.String(); got != "MUL r0,c0,m1" {
		t.Fatalf("String() = %q", got)
	}
	sw := Instr{Op: OpCSwap, Rd: 0, Ra: 2, KeyBit: 42}
	if got := sw.String(); got != "CSWAP r0,r2 <k42>" {
		t.Fatalf("String() = %q", got)
	}
	for _, op := range []Op{OpNop, OpAdd, OpMul, OpSqr, OpMove, OpCSwap, OpLoadRnd, OpLoadConst, Op(200)} {
		if op.String() == "" {
			t.Fatal("empty opcode name")
		}
	}
}

func TestRPCChangesIntermediatesNotResults(t *testing.T) {
	// With RPC, two runs with different TRNG streams must produce
	// different intermediate register values but the same result —
	// the essence of the DPA countermeasure.
	curve := ec.K163()
	prog := BuildLadderProgram(ProgramOptions{RPC: true, XOnly: true})
	g := curve.Generator()
	k := modn.FromUint64(0xdeadbeefcafe)

	capture := func(seed uint64) (gf2m.Element, gf2m.Element) {
		cpu := newTestCPU(DefaultTiming(), seed)
		setupPoint(cpu, curve, g)
		var mid gf2m.Element
		captured := false
		cpu.Probe = func(ev *CycleEvent) {
			if !captured && ev.Iteration == 100 {
				mid = cpu.Regs[0]
				captured = true
			}
		}
		if _, err := cpu.Run(prog, k); err != nil {
			t.Fatal(err)
		}
		return mid, cpu.ResultX(prog)
	}
	mid1, res1 := capture(1)
	mid2, res2 := capture(2)
	if !res1.Equal(res2) {
		t.Fatal("RPC changed the final result")
	}
	if mid1.Equal(mid2) {
		t.Fatal("RPC did not randomize intermediates")
	}
}

func BenchmarkPointMulSimulation(b *testing.B) {
	curve := ec.K163()
	prog := BuildLadderProgram(ProgramOptions{RPC: true})
	cpu := newTestCPU(DefaultTiming(), 1)
	setupPoint(cpu, curve, curve.Generator())
	k := curve.Order.RandNonZero(rng.NewDRBG(2).Uint64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cpu.Run(prog, k); err != nil {
			b.Fatal(err)
		}
	}
}
