package coproc

import (
	"errors"

	"medsec/internal/modn"
)

// BuildDoubleAndAddProgram generates microcode for the textbook
// left-to-right affine double-and-add scalar multiplication — the
// paper's insecure baseline. Unlike the ladder, the instruction
// stream itself depends on the key: an add block is emitted only for
// set key bits, so both the total cycle count (timing attack, §7) and
// the per-iteration trace shape (SPA) leak the scalar.
//
// The accumulator starts at the base point after the most significant
// set bit. Requirements: k > 0, and the curve must have a = 1 (both
// NIST binary curves here do; the constant ROM's ONE doubles as the
// curve coefficient). The doubling/addition formulas are the affine
// group law; each needs one Itoh–Tsujii inversion through the MALU,
// which is exactly why real designs prefer projective ladders.
//
// Precondition (overwhelming for random scalars): the accumulator
// never equals ±P at an addition step and never reaches the order-2
// point; the straight-line microcode has no exceptional-case handling.
func BuildDoubleAndAddProgram(k modn.Scalar) (*Program, error) {
	if k.IsZero() {
		return nil, errors.New("coproc: double-and-add needs a nonzero scalar")
	}
	p := &Program{}
	emit := func(op Op, rd, ra, rb uint8, iter int) {
		p.Instrs = append(p.Instrs, Instr{Op: op, Rd: rd, Ra: ra, Rb: rb, KeyBit: -1, Iteration: iter})
	}
	// Register allocation: r0 = x, r1 = y (accumulator); r2, r3, r4,
	// r5 scratch.
	top := k.BitLen() - 1
	emit(OpLoadConst, 0, ConstX, 0, -1)
	emit(OpLoadConst, 1, ConstY, 0, -1)

	double := func(iter int) {
		// lambda = x + y/x
		emit(OpMove, 3, 0, 0, iter)
		emitInversionIter(p, 3, 4, 5, iter)
		emit(OpMul, 2, 1, 3, iter)        // y/x
		emit(OpAdd, 2, 2, 0, iter)        // lambda
		emit(OpSqr, 3, 2, 0, iter)        // lambda^2
		emit(OpAdd, 3, 3, 2, iter)        // + lambda
		emit(OpAdd, 3, 3, ConstOne, iter) // + a  (a = 1)
		emit(OpSqr, 4, 0, 0, iter)        // x^2
		emit(OpAdd, 2, 2, ConstOne, iter)
		emit(OpMul, 2, 2, 3, iter)  // (lambda+1)*x3
		emit(OpAdd, 1, 4, 2, iter)  // y3
		emit(OpMove, 0, 3, 0, iter) // x3
	}
	add := func(iter int) {
		// lambda = (y + yP) / (x + xP)
		emit(OpAdd, 2, 1, ConstY, iter)
		emit(OpAdd, 3, 0, ConstX, iter)
		emitInversionIter(p, 3, 4, 5, iter)
		emit(OpMul, 2, 2, 3, iter)      // lambda
		emit(OpSqr, 3, 2, 0, iter)      // lambda^2
		emit(OpAdd, 3, 3, 2, iter)      // + lambda
		emit(OpAdd, 3, 3, 0, iter)      // + x
		emit(OpAdd, 3, 3, ConstX, iter) // + xP
		emit(OpAdd, 3, 3, ConstOne, iter)
		emit(OpAdd, 4, 0, 3, iter) // x + x3
		emit(OpMul, 4, 2, 4, iter)
		emit(OpAdd, 4, 4, 3, iter)
		emit(OpAdd, 1, 4, 1, iter) // y3
		emit(OpMove, 0, 3, 0, iter)
	}

	for i := top - 1; i >= 0; i-- {
		double(i)
		if k.Bit(i) == 1 {
			add(i)
		}
	}
	p.ResultX, p.ResultY = 0, 1
	return p, nil
}

// emitInversionIter is emitInversion with an iteration label so trace
// segmentation works for the double-and-add program too.
func emitInversionIter(p *Program, target, scratch1, scratch2 uint8, iter int) {
	start := len(p.Instrs)
	emitInversion(p, target, scratch1, scratch2)
	for i := start; i < len(p.Instrs); i++ {
		p.Instrs[i].Iteration = iter
	}
}

// DoubleAndAddKeyFromShape reads the scalar straight out of the
// *structure* of a double-and-add program under a known timing: every
// processed bit contributes a fixed-length double block, and set bits
// additionally contribute an add block, so per-iteration segment
// lengths reveal the key bit — the canonical single-trace SPA on an
// unprotected implementation (no power model even needed; with one
// the attacker sees exactly these segments). It returns the recovered
// scalar bits, most significant processed bit first.
func DoubleAndAddKeyFromShape(p *Program, t Timing) []uint {
	// Cycle length of an iteration with only a double vs double+add.
	lengths := map[int]int{}
	order := []int{}
	for _, sp := range p.Spans(t) {
		if sp.Iteration < 0 {
			continue
		}
		if _, seen := lengths[sp.Iteration]; !seen {
			order = append(order, sp.Iteration)
		}
		lengths[sp.Iteration] += sp.End - sp.Start
	}
	if len(order) == 0 {
		return nil
	}
	// Reference lengths from two tiny known-key programs: k=2 gives a
	// double-only iteration, k=3 a double+add iteration.
	refD, _ := BuildDoubleAndAddProgram(modn.FromUint64(2))
	refDA, _ := BuildDoubleAndAddProgram(modn.FromUint64(3))
	doubleLen := iterationCycles(refD, t)
	addLen := iterationCycles(refDA, t)
	bits := make([]uint, 0, len(order))
	for _, it := range order {
		switch lengths[it] {
		case doubleLen:
			bits = append(bits, 0)
		case addLen:
			bits = append(bits, 1)
		default:
			// Unknown shape: refuse rather than guess.
			return nil
		}
	}
	return bits
}

// iterationCycles returns the cycle length of the single iteration of
// a one-iteration program.
func iterationCycles(p *Program, t Timing) int {
	total := 0
	for _, sp := range p.Spans(t) {
		if sp.Iteration >= 0 {
			total += sp.End - sp.Start
		}
	}
	return total
}
