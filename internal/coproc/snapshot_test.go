package coproc

import (
	"testing"

	"medsec/internal/ec"
	"medsec/internal/rng"
)

// TestResumeReproducesSuffix pins the checkpoint/resume contract: a
// run resumed from any snapshot must reproduce the remainder of the
// full run bit-identically — final register file, cycle count, and the
// per-cycle event stream the probe sees — including randomized (RPC)
// programs, where the TRNG stream is fast-forwarded by RandDraws.
func TestResumeReproducesSuffix(t *testing.T) {
	curve := ec.K163()
	tim := DefaultTiming()
	prog := BuildLadderProgram(ProgramOptions{RPC: true})
	d := rng.NewDRBG(11)
	k := curve.Order.RandNonZero(d.Uint64)
	p := curve.RandomPoint(d.Uint64)
	const trngSeed = 77

	type ev struct {
		Cycle, Instr int
		Op           Op
		WriteHD      int
	}

	// Full reference run, checkpointing every 40th instruction and
	// recording the event stream.
	ref := NewCPU(tim)
	ref.Rand = rng.NewDRBG(trngSeed).Uint64
	ref.SetOperandConstants(p.X, curve.B, p.Y)
	var refEvents []ev
	ref.Probe = func(e *CycleEvent) {
		refEvents = append(refEvents, ev{e.Cycle, e.InstrIndex, e.Op, e.WriteHD})
	}
	snaps, total, err := ref.RunCheckpointed(prog, k, func(idx, cycle int) bool { return idx%40 == 0 })
	if err != nil {
		t.Fatal(err)
	}
	if len(snaps) < 10 {
		t.Fatalf("only %d checkpoints captured", len(snaps))
	}
	wantX, wantY := ref.ResultX(prog), ref.ResultY(prog)

	for _, si := range []int{0, 1, len(snaps) / 2, len(snaps) - 1} {
		snap := snaps[si]
		cpu := NewCPU(tim)
		cpu.Rand = rng.NewDRBG(trngSeed).Uint64 // same stream, fast-forwarded by Resume
		cpu.SetOperandConstants(p.X, curve.B, p.Y)
		var got []ev
		cpu.Probe = func(e *CycleEvent) {
			got = append(got, ev{e.Cycle, e.InstrIndex, e.Op, e.WriteHD})
		}
		n, err := cpu.Resume(prog, k, snap)
		if err != nil {
			t.Fatalf("resume at snap %d: %v", si, err)
		}
		if n != total {
			t.Fatalf("resume at snap %d ended at cycle %d, want %d", si, n, total)
		}
		if !cpu.ResultX(prog).Equal(wantX) || !cpu.ResultY(prog).Equal(wantY) {
			t.Fatalf("resume at snap %d: result diverged from full run", si)
		}
		want := refEvents[snap.Cycle:]
		if len(got) != len(want) {
			t.Fatalf("resume at snap %d: %d events, want %d", si, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("resume at snap %d: event %d = %+v, want %+v", si, i, got[i], want[i])
			}
		}
	}

	// Out-of-range snapshots and missing TRNG are rejected.
	bad := snaps[1]
	bad.Instr = len(prog.Instrs) + 1
	cpu := NewCPU(tim)
	cpu.Rand = rng.NewDRBG(trngSeed).Uint64
	if _, err := cpu.Resume(prog, k, bad); err == nil {
		t.Fatal("out-of-range snapshot accepted")
	}
	cpu2 := NewCPU(tim)
	if _, err := cpu2.Resume(prog, k, snaps[len(snaps)-1]); err == nil {
		t.Fatal("randomized resume without TRNG accepted")
	}
}

// TestRunCheckpointedMatchesRun ensures checkpoint capture does not
// perturb execution: same result and cycle count as a plain Run.
func TestRunCheckpointedMatchesRun(t *testing.T) {
	curve := ec.K163()
	tim := DefaultTiming()
	prog := BuildLadderProgram(ProgramOptions{RPC: true})
	d := rng.NewDRBG(12)
	k := curve.Order.RandNonZero(d.Uint64)
	p := curve.RandomPoint(d.Uint64)

	a := NewCPU(tim)
	a.Rand = rng.NewDRBG(5).Uint64
	a.SetOperandConstants(p.X, curve.B, p.Y)
	nA, err := a.Run(prog, k)
	if err != nil {
		t.Fatal(err)
	}

	b := NewCPU(tim)
	b.Rand = rng.NewDRBG(5).Uint64
	b.SetOperandConstants(p.X, curve.B, p.Y)
	snaps, nB, err := b.RunCheckpointed(prog, k, nil)
	if err != nil {
		t.Fatal(err)
	}
	if nA != nB {
		t.Fatalf("cycle counts differ: %d vs %d", nA, nB)
	}
	if len(snaps) != len(prog.Instrs) {
		t.Fatalf("keep=nil captured %d snapshots, want one per instruction (%d)", len(snaps), len(prog.Instrs))
	}
	if !a.ResultX(prog).Equal(b.ResultX(prog)) || !a.ResultY(prog).Equal(b.ResultY(prog)) {
		t.Fatal("checkpointed run diverged from plain run")
	}
	// Snapshot cycle fields are strictly increasing instruction starts.
	for i := 1; i < len(snaps); i++ {
		if snaps[i].Cycle <= snaps[i-1].Cycle || snaps[i].Instr != i {
			t.Fatalf("snapshot %d malformed: %+v", i, snaps[i])
		}
	}
}
