package coproc

import (
	"math/rand"
	"testing"

	"medsec/internal/ec"
	"medsec/internal/modn"
)

func TestDoubleAndAddMicrocodeCorrectness(t *testing.T) {
	curve := ec.K163()
	r := rand.New(rand.NewSource(1))
	keys := []modn.Scalar{
		modn.FromUint64(1),
		modn.FromUint64(2),
		modn.FromUint64(3),
		modn.FromUint64(0xdeadbeef),
		curve.Order.RandNonZero(r.Uint64),
	}
	for _, k := range keys {
		prog, err := BuildDoubleAndAddProgram(k)
		if err != nil {
			t.Fatal(err)
		}
		cpu := NewCPU(DefaultTiming())
		cpu.SetOperandConstants(curve.Gx, curve.B, curve.Gy)
		if _, err := cpu.Run(prog, k); err != nil {
			t.Fatal(err)
		}
		want := curve.ScalarMulDoubleAndAdd(k, curve.Generator())
		got := ec.Point{X: cpu.ResultX(prog), Y: cpu.ResultY(prog)}
		if !got.Equal(want) {
			t.Fatalf("double-and-add microcode wrong for k=%v: got %v want %v", k, got, want)
		}
	}
}

func TestDoubleAndAddRejectsZero(t *testing.T) {
	if _, err := BuildDoubleAndAddProgram(modn.Zero()); err == nil {
		t.Fatal("zero scalar accepted")
	}
}

func TestDoubleAndAddCycleCountLeaksKey(t *testing.T) {
	// The baseline's whole point: cycle count varies with the key —
	// specifically with bit length and Hamming weight.
	tim := DefaultTiming()
	light, err := BuildDoubleAndAddProgram(modn.MustScalarFromHex("10000000000000000000000000000000000000001"))
	if err != nil {
		t.Fatal(err)
	}
	heavy, err := BuildDoubleAndAddProgram(modn.MustScalarFromHex("1ffffffffffffffffffffffffffffffffffffffff"))
	if err != nil {
		t.Fatal(err)
	}
	cl, ch := light.CycleCount(tim), heavy.CycleCount(tim)
	if cl >= ch {
		t.Fatalf("low-weight key (%d cycles) not faster than high-weight (%d)", cl, ch)
	}
	// Same bit length, same weight => same cycle count.
	a, _ := BuildDoubleAndAddProgram(modn.FromUint64(0b1010101))
	b, _ := BuildDoubleAndAddProgram(modn.FromUint64(0b1101001)) // wait: same weight 4? 0b1010101 has 4, 0b1101001 has 4
	if a.CycleCount(tim) != b.CycleCount(tim) {
		t.Fatal("equal-weight keys should take equal time")
	}
}

func TestDoubleAndAddMeasuredEqualsStatic(t *testing.T) {
	curve := ec.K163()
	k := modn.FromUint64(0xabcdef123)
	prog, err := BuildDoubleAndAddProgram(k)
	if err != nil {
		t.Fatal(err)
	}
	tim := DefaultTiming()
	cpu := NewCPU(tim)
	cpu.SetOperandConstants(curve.Gx, curve.B, curve.Gy)
	cycles, err := cpu.Run(prog, k)
	if err != nil {
		t.Fatal(err)
	}
	if cycles != prog.CycleCount(tim) {
		t.Fatalf("measured %d != static %d", cycles, prog.CycleCount(tim))
	}
}

func TestDoubleAndAddShapeSPA(t *testing.T) {
	// The canonical SPA: read the key bits straight from the trace
	// segment lengths of the unprotected implementation.
	curve := ec.K163()
	r := rand.New(rand.NewSource(2))
	for trial := 0; trial < 3; trial++ {
		k := curve.Order.RandNonZero(r.Uint64)
		prog, err := BuildDoubleAndAddProgram(k)
		if err != nil {
			t.Fatal(err)
		}
		bits := DoubleAndAddKeyFromShape(prog, DefaultTiming())
		top := k.BitLen() - 1
		if len(bits) != top {
			t.Fatalf("recovered %d bits, want %d", len(bits), top)
		}
		for i, b := range bits {
			if b != k.Bit(top-1-i) {
				t.Fatalf("SPA misread bit %d of k=%v", top-1-i, k)
			}
		}
	}
	// The ladder's shape, by contrast, is key-independent: every
	// iteration has identical length (already asserted elsewhere), so
	// the same classifier cannot work there.
}
