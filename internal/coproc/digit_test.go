package coproc

import (
	"math/rand"
	"testing"

	"medsec/internal/gf2m"
)

func randomElement(r *rand.Rand) gf2m.Element {
	return gf2m.FromWords(r.Uint64(), r.Uint64(), r.Uint64()&(1<<35-1))
}

// TestExtractDigitMatchesRef pins the word-level digit extraction
// against the original bit-loop, for every digit size the MALU model
// supports and every digit position, on random and corner operands.
func TestExtractDigitMatchesRef(t *testing.T) {
	r := rand.New(rand.NewSource(0xd161))
	corners := []gf2m.Element{
		{},
		gf2m.One(),
		gf2m.FromWords(^uint64(0), ^uint64(0), 1<<35-1),
		gf2m.FromWords(0x8000000000000000, 1, 1<<34),
	}
	for d := 1; d <= maxDigitSize; d++ {
		digits := (163 + d - 1) / d
		check := func(e gf2m.Element) {
			for j := 0; j < digits; j++ {
				got := extractDigit(e, j, d)
				want := extractDigitRef(e, j, d)
				if got != want {
					t.Fatalf("d=%d j=%d: extractDigit=%#x, ref=%#x (e=%v)", d, j, got, want, e)
				}
			}
		}
		for _, e := range corners {
			check(e)
		}
		for i := 0; i < 8; i++ {
			check(randomElement(r))
		}
	}
}

// TestShiftTablePartialProductMatchesMulSmall pins the precomputed
// shift-table partial product (what runMALU now XORs together per digit
// cycle) against the reference mulSmall, for every digit size.
func TestShiftTablePartialProductMatchesMulSmall(t *testing.T) {
	r := rand.New(rand.NewSource(0xa15))
	for d := 1; d <= maxDigitSize; d++ {
		for trial := 0; trial < 16; trial++ {
			a := randomElement(r)
			var shifts [maxDigitSize]gf2m.Element
			shifts[0] = a
			for i := 1; i < d; i++ {
				shifts[i] = gf2m.ShlMod(shifts[i-1], 1)
			}
			digit := r.Uint64() & (1<<uint(d) - 1)
			var got gf2m.Element
			for dg, i := digit, 0; dg != 0; dg, i = dg>>1, i+1 {
				if dg&1 == 1 {
					got = gf2m.Add(got, shifts[i])
				}
			}
			if want := mulSmall(a, digit); !got.Equal(want) {
				t.Fatalf("d=%d digit=%#x: shift-table product diverged from mulSmall", d, digit)
			}
		}
	}
}
