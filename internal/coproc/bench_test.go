package coproc

import (
	"errors"
	"testing"

	"medsec/internal/ec"
	"medsec/internal/modn"
	"medsec/internal/rng"
)

// benchScalar is a fixed full-length scalar (leading-one form) so the
// ladder benchmarks always execute the same microcode path.
var benchScalar = modn.MustScalarFromHex("2fe13c0537bbc11acaa07d793de4e6d5e5c94eee8")

// BenchmarkRunMALU measures one MUL instruction through the
// digit-serial MALU model — operand load, ceil(163/d) digit cycles,
// writeback — the single most executed code path in the simulator
// (11 MALU ops per ladder iteration, 163 iterations per point mul).
func BenchmarkRunMALU(b *testing.B) {
	curve := ec.K163()
	cpu := NewCPU(DefaultTiming())
	cpu.SetOperandConstants(curve.Gx, curve.B, curve.Gy)
	d := rng.NewDRBG(7)
	cpu.Regs[0] = ec.K163().RandomPoint(d.Uint64).X
	cpu.Regs[1] = ec.K163().RandomPoint(d.Uint64).Y
	prog := &Program{Instrs: []Instr{
		{Op: OpMul, Rd: 2, Ra: 0, Rb: 1, KeyBit: -1, Iteration: -1},
	}}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cpu.Run(prog, benchScalar); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPointMul measures a full unprotected x-only point
// multiplication (163 ladder iterations + Itoh–Tsujii conversion,
// ~86k simulated cycles) with no probe attached: the pure simulation
// cost every campaign trace pays before any power modeling.
func BenchmarkPointMul(b *testing.B) {
	curve := ec.K163()
	prog := BuildLadderProgram(ProgramOptions{XOnly: true})
	cpu := NewCPU(DefaultTiming())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cpu.Reset()
		cpu.Timing = DefaultTiming()
		cpu.SetOperandConstants(curve.Gx, curve.B, curve.Gy)
		n, err := cpu.Run(prog, benchScalar)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(float64(n), "cycles/PM")
		}
	}
}

// BenchmarkPointMulRPC measures the protected (randomized projective
// coordinates) variant, which adds the TRNG loads and the mask
// multiplication.
func BenchmarkPointMulRPC(b *testing.B) {
	curve := ec.K163()
	prog := BuildLadderProgram(ProgramOptions{RPC: true, XOnly: true})
	cpu := NewCPU(DefaultTiming())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cpu.Reset()
		cpu.Timing = DefaultTiming()
		cpu.Rand = rng.NewDRBG(uint64(i)).Uint64
		cpu.SetOperandConstants(curve.Gx, curve.B, curve.Gy)
		if _, err := cpu.Run(prog, benchScalar); err != nil && !errors.Is(err, ErrStopped) {
			b.Fatal(err)
		}
	}
}
