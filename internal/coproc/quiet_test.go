package coproc

import (
	"errors"
	"testing"

	"medsec/internal/ec"
	"medsec/internal/rng"
)

// suffixHashEvented runs the pinned golden computation (same fixture as
// TestGoldenTraceHash) through the full evented pipeline and hashes only
// the events at cycle >= q — the reference the quiet-prologue fast path
// must reproduce bit for bit. maxCycles > 0 additionally bounds the run
// (ErrStopped expected), matching the SCA acquisition windows.
func suffixHashEvented(t *testing.T, q, maxCycles int) string {
	t.Helper()
	curve := ec.K163()
	prog := BuildLadderProgram(ProgramOptions{RPC: true, XOnly: true})
	cpu := NewCPU(DefaultTiming())
	cpu.Rand = rng.NewDRBG(42).Uint64
	cpu.SetOperandConstants(curve.Gx, curve.B, curve.Gy)
	cpu.MaxCycles = maxCycles
	eh := newEventHasher()
	cpu.Probe = func(ev *CycleEvent) {
		if ev.Cycle >= q {
			eh.add(ev)
		}
	}
	_, err := cpu.Run(prog, benchScalar)
	if maxCycles > 0 {
		if !errors.Is(err, ErrStopped) {
			t.Fatalf("windowed run: got err %v, want ErrStopped", err)
		}
	} else if err != nil {
		t.Fatalf("Run: %v", err)
	}
	return eh.sum()
}

// TestQuietPrefixSuffixBitIdentical pins the QuietCycles contract: with
// the quiet prologue enabled, the event stream the probes see from
// cycle q on is bit-identical to the full evented run's suffix — in
// per-cycle, batched and dual probe wiring, with and without MaxCycles
// bounding the window. The boundaries are span-aligned iteration-window
// starts, exactly what the SCA acquisition planner feeds in.
func TestQuietPrefixSuffixBitIdentical(t *testing.T) {
	curve := ec.K163()
	tim := DefaultTiming()
	prog := BuildLadderProgram(ProgramOptions{RPC: true, XOnly: true})

	run := func(t *testing.T, q, maxCycles int, attach func(cpu *CPU, eh *eventHasher)) string {
		t.Helper()
		cpu := NewCPU(tim)
		cpu.Rand = rng.NewDRBG(42).Uint64
		cpu.SetOperandConstants(curve.Gx, curve.B, curve.Gy)
		cpu.QuietCycles = q
		cpu.MaxCycles = maxCycles
		eh := newEventHasher()
		attach(cpu, eh)
		_, err := cpu.Run(prog, benchScalar)
		if maxCycles > 0 {
			if !errors.Is(err, ErrStopped) {
				t.Fatalf("quiet windowed run: got err %v, want ErrStopped", err)
			}
		} else if err != nil {
			t.Fatalf("quiet Run: %v", err)
		}
		return eh.sum()
	}

	start162, _ := prog.IterationWindow(tim, 162, 0)
	start150, end150 := prog.IterationWindow(tim, 150, 147)
	start10, _ := prog.IterationWindow(tim, 10, 0)
	cases := []struct {
		name         string
		q, maxCycles int
	}{
		{"ladder-start", start162, 0},
		{"deep-window", start150, 0},
		{"deep-window-bounded", start150, end150},
		{"near-end", start10, 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			want := suffixHashEvented(t, tc.q, tc.maxCycles)
			modes := map[string]func(cpu *CPU, eh *eventHasher){
				"probe": func(cpu *CPU, eh *eventHasher) {
					cpu.Probe = func(ev *CycleEvent) { eh.add(ev) }
				},
				"batch": func(cpu *CPU, eh *eventHasher) {
					cpu.Batch = func(evs []CycleEvent) {
						for i := range evs {
							eh.add(&evs[i])
						}
					}
				},
				"dual": func(cpu *CPU, eh *eventHasher) {
					cpu.Probe = func(ev *CycleEvent) { eh.add(ev) }
					cpu.Batch = func(evs []CycleEvent) {}
				},
			}
			for name, attach := range modes {
				if got := run(t, tc.q, tc.maxCycles, attach); got != want {
					t.Fatalf("%s: quiet suffix hash diverged from evented run\n  got  %s\n  want %s", name, got, want)
				}
			}
			// A quiet run must deliver no events before q at all: hashing
			// events with Cycle < q must accumulate nothing.
			cpu := NewCPU(tim)
			cpu.Rand = rng.NewDRBG(42).Uint64
			cpu.SetOperandConstants(curve.Gx, curve.B, curve.Gy)
			cpu.QuietCycles = tc.q
			cpu.MaxCycles = tc.maxCycles
			leaked := 0
			cpu.Probe = func(ev *CycleEvent) {
				if ev.Cycle < tc.q {
					leaked++
				}
			}
			if _, err := cpu.Run(prog, benchScalar); err != nil && !errors.Is(err, ErrStopped) {
				t.Fatal(err)
			}
			if leaked != 0 {
				t.Fatalf("quiet run delivered %d events before cycle %d", leaked, tc.q)
			}
		})
	}
}

// TestQuietFullRunMatchesEvented pins that quiet execution is
// architecturally exact: silencing the entire program (QuietCycles =
// total cycle count) produces the same result and cycle count as the
// fully evented run under the same TRNG stream, for both the protected
// and the unprotected microcode.
func TestQuietFullRunMatchesEvented(t *testing.T) {
	curve := ec.K163()
	tim := DefaultTiming()
	d := rng.NewDRBG(31)
	k := curve.Order.RandNonZero(d.Uint64)
	p := curve.RandomPoint(d.Uint64)
	for _, opt := range []ProgramOptions{{RPC: true, XOnly: true}, {XOnly: true}, {RPC: true}, {}} {
		prog := BuildLadderProgram(opt)

		ev := NewCPU(tim)
		ev.Rand = rng.NewDRBG(99).Uint64
		ev.SetOperandConstants(p.X, curve.B, p.Y)
		nEv, err := ev.Run(prog, k)
		if err != nil {
			t.Fatal(err)
		}

		qt := NewCPU(tim)
		qt.Rand = rng.NewDRBG(99).Uint64
		qt.SetOperandConstants(p.X, curve.B, p.Y)
		qt.QuietCycles = prog.CycleCount(tim)
		called := false
		qt.Probe = func(*CycleEvent) { called = true }
		nQt, err := qt.Run(prog, k)
		if err != nil {
			t.Fatal(err)
		}
		if called {
			t.Fatalf("%+v: fully quiet run delivered events", opt)
		}
		if nEv != nQt {
			t.Fatalf("%+v: cycle counts differ: evented %d, quiet %d", opt, nEv, nQt)
		}
		if !ev.ResultX(prog).Equal(qt.ResultX(prog)) || !ev.ResultY(prog).Equal(qt.ResultY(prog)) {
			t.Fatalf("%+v: quiet run result diverged", opt)
		}
	}
}

// TestPrefixBoundaryAndSnapshotPrefix pins the acquisition-prologue
// contract on the unprotected (TRNG-free) microcode: PrefixBoundary
// reaches a span-aligned limit exactly, reports the CSWAP key bits the
// prefix consults, and a SnapshotPrefix + Resume reproduces the full
// run's suffix — events, result and cycle count — bit for bit.
func TestPrefixBoundaryAndSnapshotPrefix(t *testing.T) {
	curve := ec.K163()
	tim := DefaultTiming()
	prog := BuildLadderProgram(ProgramOptions{XOnly: true})
	d := rng.NewDRBG(17)
	k := curve.Order.RandNonZero(d.Uint64)
	p := curve.RandomPoint(d.Uint64)

	limit, _ := prog.IterationWindow(tim, 156, 153)
	nInstr, cycle, keyBits := prog.PrefixBoundary(tim, limit)
	if cycle != limit {
		t.Fatalf("span-aligned limit %d not reached exactly: boundary cycle %d", limit, cycle)
	}
	if nInstr <= 0 || nInstr >= len(prog.Instrs) {
		t.Fatalf("degenerate prefix: %d instructions", nInstr)
	}
	// keyBits must be exactly the CSWAP key bits of the spans before the
	// boundary, in execution order.
	var want []int
	for _, sp := range prog.Spans(tim) {
		if sp.Index >= nInstr {
			break
		}
		if sp.Op == OpCSwap && sp.KeyBit >= 0 {
			want = append(want, sp.KeyBit)
		}
	}
	if len(want) == 0 {
		t.Fatal("prefix through iteration 157 consults no key bits — window too shallow for the test")
	}
	if len(keyBits) != len(want) {
		t.Fatalf("keyBits = %v, want %v", keyBits, want)
	}
	for i := range want {
		if keyBits[i] != want[i] {
			t.Fatalf("keyBits = %v, want %v", keyBits, want)
		}
	}

	// Reference full run.
	type ev struct {
		Cycle, Instr int
		Op           Op
		WriteHD      int
	}
	ref := NewCPU(tim)
	ref.SetOperandConstants(p.X, curve.B, p.Y)
	var refEvents []ev
	ref.Probe = func(e *CycleEvent) {
		refEvents = append(refEvents, ev{e.Cycle, e.InstrIndex, e.Op, e.WriteHD})
	}
	total, err := ref.Run(prog, k)
	if err != nil {
		t.Fatal(err)
	}

	// Prologue snapshot once, then resume.
	pre := NewCPU(tim)
	pre.SetOperandConstants(p.X, curve.B, p.Y)
	snap, err := pre.SnapshotPrefix(prog, k, nInstr)
	if err != nil {
		t.Fatal(err)
	}
	if snap.Instr != nInstr || snap.Cycle != cycle {
		t.Fatalf("snapshot at (%d, %d), want (%d, %d)", snap.Instr, snap.Cycle, nInstr, cycle)
	}
	cpu := NewCPU(tim)
	cpu.SetOperandConstants(p.X, curve.B, p.Y)
	var got []ev
	cpu.Probe = func(e *CycleEvent) {
		got = append(got, ev{e.Cycle, e.InstrIndex, e.Op, e.WriteHD})
	}
	n, err := cpu.Resume(prog, k, snap)
	if err != nil {
		t.Fatal(err)
	}
	if n != total {
		t.Fatalf("resume ended at cycle %d, want %d", n, total)
	}
	if !cpu.ResultX(prog).Equal(ref.ResultX(prog)) || !cpu.ResultY(prog).Equal(ref.ResultY(prog)) {
		t.Fatal("resumed result diverged from full run")
	}
	wantEv := refEvents[cycle:]
	if len(got) != len(wantEv) {
		t.Fatalf("resume saw %d events, want %d", len(got), len(wantEv))
	}
	for i := range got {
		if got[i] != wantEv[i] {
			t.Fatalf("event %d = %+v, want %+v", i, got[i], wantEv[i])
		}
	}
}

// TestPrefixBoundaryStopsAtTRNG pins that the boundary never crosses an
// OpLoadRnd: on the RPC microcode (whose mask loads are trace-dependent)
// the longest checkpointable prefix ends at the first TRNG read, no
// matter how deep the requested limit is.
func TestPrefixBoundaryStopsAtTRNG(t *testing.T) {
	tim := DefaultTiming()
	prog := BuildLadderProgram(ProgramOptions{RPC: true, XOnly: true})
	nInstr, cycle, _ := prog.PrefixBoundary(tim, prog.CycleCount(tim))
	spans := prog.Spans(tim)
	firstRnd := -1
	for _, sp := range spans {
		if sp.Op == OpLoadRnd {
			firstRnd = sp.Index
			break
		}
	}
	if firstRnd < 0 {
		t.Fatal("RPC program without OpLoadRnd")
	}
	if nInstr != firstRnd {
		t.Fatalf("boundary %d, want first OpLoadRnd at %d", nInstr, firstRnd)
	}
	if cycle != spans[firstRnd].Start {
		t.Fatalf("boundary cycle %d, want %d", cycle, spans[firstRnd].Start)
	}
	for _, sp := range spans[:nInstr] {
		if sp.Op == OpLoadRnd {
			t.Fatalf("prefix contains OpLoadRnd at instruction %d", sp.Index)
		}
	}
}
