package coproc

import (
	"errors"
	"fmt"

	"math/bits"

	"medsec/internal/gf2m"
	"medsec/internal/modn"
)

// This file implements lane-batched execution: one decoded instruction
// stream driving N independent traces ("lanes") in lockstep. Campaigns
// run thousands of identical instruction sequences that differ only in
// data (keys, base points, TRNG masks, noise), so the decode, dispatch
// and per-instruction bookkeeping of the interpreter — identical across
// traces — can be paid once per instruction instead of once per trace.
// This is the software analogue of a multi-DUT acquisition harness: one
// pattern generator clocking N chips, each with its own scan-chain
// preloaded state and its own probe channel.
//
// The contract is strict bit-identity per lane: every lane's CycleEvent
// stream (field values, cycle numbering, ordering) is exactly the
// stream a serial CPU run of that trace would produce, pinned per
// opcode and for full point multiplications by the lane_test.go
// property tests.

// numSlots is the size of the unified operand file a lane carries:
// registers, scratch RAM, then the constant ROM. Decode resolves the
// sparse ISA addresses (registers at 0, constants at 8, RAM at 16)
// into this dense space once per program, so the execution loop indexes
// a flat array with no address arithmetic or validity checks.
const (
	slotRegs   = 0
	slotRAM    = slotRegs + NumRegs
	slotConsts = slotRAM + NumRAM
	numSlots   = slotConsts + NumConsts
	// writableSlots bounds the slots an instruction may write: the
	// constant ROM sits above it.
	writableSlots = slotConsts
)

// laneInstr is one decoded instruction: operands resolved to dense
// slot indices, static cycle cost attached.
type laneInstr struct {
	op         Op
	rd, ra, rb uint8
	keyBit     int
	iteration  int
	cost       int
}

// laneProgram is a decoded program cached on the LaneCPU.
type laneProgram struct {
	src    *Program
	timing Timing
	instrs []laneInstr
}

// decodeSlot resolves an ISA operand address to a dense slot index.
func decodeSlot(a uint8) (uint8, error) {
	switch {
	case a < NumRegs:
		return slotRegs + a, nil
	case a >= constBase && a < constBase+NumConsts:
		return slotConsts + (a - constBase), nil
	case a >= ramBase && a < ramBase+NumRAM:
		return slotRAM + (a - ramBase), nil
	default:
		return 0, fmt.Errorf("coproc: invalid operand address %d", a)
	}
}

func decodeProgram(p *Program, t Timing) (*laneProgram, error) {
	d := &laneProgram{src: p, timing: t, instrs: make([]laneInstr, len(p.Instrs))}
	for i := range p.Instrs {
		in := &p.Instrs[i]
		li := laneInstr{op: in.Op, keyBit: in.KeyBit, iteration: in.Iteration, cost: t.InstrCycles(in.Op)}
		var err error
		switch in.Op {
		case OpNop:
		case OpMove, OpLoadConst, OpLoadRnd:
			if li.rd, err = decodeSlot(in.Rd); err == nil && in.Op != OpLoadRnd {
				li.ra, err = decodeSlot(in.Ra)
			}
		case OpAdd, OpMul:
			if li.rd, err = decodeSlot(in.Rd); err == nil {
				if li.ra, err = decodeSlot(in.Ra); err == nil {
					li.rb, err = decodeSlot(in.Rb)
				}
			}
		case OpSqr:
			if li.rd, err = decodeSlot(in.Rd); err == nil {
				li.ra, err = decodeSlot(in.Ra)
			}
		case OpCSwap:
			if in.KeyBit < 0 {
				err = errors.New("coproc: CSWAP without key bit")
			} else if li.rd, err = decodeSlot(in.Rd); err == nil {
				li.ra, err = decodeSlot(in.Ra)
			}
		default:
			err = fmt.Errorf("coproc: unknown opcode %v", in.Op)
		}
		if err != nil {
			return nil, fmt.Errorf("coproc: decode instr %d: %w", i, err)
		}
		switch in.Op {
		case OpNop:
		case OpCSwap:
			if li.rd >= writableSlots || li.ra >= writableSlots {
				return nil, fmt.Errorf("coproc: decode instr %d: CSWAP on read-only operand", i)
			}
		default:
			if li.rd >= writableSlots {
				return nil, fmt.Errorf("coproc: decode instr %d: write to read-only operand", i)
			}
		}
		d.instrs[i] = li
	}
	return d, nil
}

// LaneRun configures one lane of a batched execution: one trace's
// scalar, TRNG stream, operand constants, event sink and optional
// prologue snapshot.
type LaneRun struct {
	// Key is the lane's scalar.
	Key modn.Scalar
	// Rand feeds the lane's OpLoadRnd port (required for RPC programs
	// and for resuming randomized runs).
	Rand func() uint64
	// Sink receives the lane's CycleEvents, one call per evented cycle,
	// in cycle order — exactly the per-cycle Probe stream a serial CPU
	// would deliver for this trace. The event struct is reused across
	// cycles; the sink must not retain it. A nil Sink discards events.
	Sink func(*CycleEvent)
	// Consts is the lane's operand constant ROM (see OperandConstants).
	// Ignored when Resume is set (the snapshot carries the ROM).
	Consts [NumConsts]gf2m.Element
	// Resume, when non-nil, starts the lane from a prefix snapshot
	// instead of the power-on state, exactly like CPU.Resume: the
	// snapshot must lie at or before the quiet boundary so every lane
	// reaches lockstep at the same instruction.
	Resume *Snapshot
	// MaskRand feeds the lane's mask-refresh TRNG port; required when
	// the LaneCPU runs Masked (see CPU.MaskRand — a separate stream
	// from Rand, so RPC mask re-derivation stays valid).
	MaskRand func() uint64
}

// OperandConstants builds the constant-ROM image for a point
// multiplication on base point (x, y) over a curve with parameter b —
// the batch-run counterpart of CPU.SetOperandConstants.
func OperandConstants(x, b, y gf2m.Element) [NumConsts]gf2m.Element {
	return [NumConsts]gf2m.Element{x, b, y, gf2m.One(), gf2m.Zero()}
}

// laneState is the per-lane architectural and delivery state.
type laneState struct {
	slots [numSlots]gf2m.Element
	// masks carries the share-1 value of each writable slot on masked
	// runs (the constant ROM above writableSlots is public).
	masks     [writableSlots]gf2m.Element
	key       modn.Scalar
	rand      func() uint64
	maskRand  func() uint64
	sink      func(*CycleEvent)
	randDraws int
	maskDraws int
	ev        CycleEvent
}

func (ls *laneState) drawRand() uint64 {
	ls.randDraws++
	return ls.rand()
}

// drawMaskElement mirrors CPU.drawMaskElement on a lane's mask stream.
func (ls *laneState) drawMaskElement() gf2m.Element {
	ls.maskDraws += 3
	return gf2m.FromWords(ls.maskRand(), ls.maskRand(), ls.maskRand())
}

// maskOfSlot returns the current mask of a dense slot (zero for the
// constant ROM).
func (ls *laneState) maskOfSlot(a uint8) gf2m.Element {
	if a < writableSlots {
		return ls.masks[a]
	}
	return gf2m.Element{}
}

// LaneCPU executes a program over N lanes at once. Configure Timing,
// MaxCycles and QuietCycles exactly as on a serial CPU (they are
// shared: the ladder's control flow is key- and data-independent, so
// every lane retires the same instruction at the same cycle), then
// call Run with one LaneRun per trace. The zero value is usable.
type LaneCPU struct {
	Timing Timing
	// MaxCycles and QuietCycles carry the CPU semantics, shared by all
	// lanes.
	MaxCycles   int
	QuietCycles int
	// Masked selects the Boolean-masked datapath for every lane (the
	// CPU.Masked semantics: raw architectural values, per-slot masks,
	// share-summed activity). Each LaneRun must then supply MaskRand.
	Masked bool

	prog  *laneProgram
	lanes []laneState
	cycle int
}

// NewLaneCPU returns a batch runner with the given timing.
func NewLaneCPU(t Timing) *LaneCPU { return &LaneCPU{Timing: t} }

// Cycle returns the shared cycle counter after a Run.
func (lc *LaneCPU) Cycle() int { return lc.cycle }

// Result returns lane l's register file slot for an ISA register
// address (e.g. Program.ResultX) after a completed run.
func (lc *LaneCPU) Result(l int, reg uint8) gf2m.Element {
	return lc.lanes[l].slots[slotRegs+reg]
}

// decoded returns the cached decode of p, refreshing it when the
// program or timing changed since the last Run (the campaign scratch
// reuses one LaneCPU across thousands of batches of the same program).
func (lc *LaneCPU) decoded(p *Program) (*laneProgram, error) {
	if lc.prog != nil && lc.prog.src == p && lc.prog.timing == lc.Timing {
		return lc.prog, nil
	}
	d, err := decodeProgram(p, lc.Timing)
	if err != nil {
		return nil, err
	}
	lc.prog = d
	return d, nil
}

// Run executes p over the given lanes and returns the shared final
// cycle count. Semantics per lane are exactly CPU.Run (or CPU.Resume
// for lanes with a snapshot): same architectural effects, same event
// stream, ErrStopped when MaxCycles ends the run early.
func (lc *LaneCPU) Run(p *Program, runs []LaneRun) (int, error) {
	if len(runs) == 0 {
		return 0, errors.New("coproc: lane run needs at least one lane")
	}
	d, err := lc.decoded(p)
	if err != nil {
		return 0, err
	}
	// Locate the lockstep entry: the first instruction that executes
	// evented. Everything before it is quiet (architectural effects
	// only), which each lane can replay independently — including lanes
	// that shortcut part of the prefix through a snapshot.
	entry, entryCycle := 0, 0
	for entry < len(d.instrs) {
		cost := d.instrs[entry].cost
		if lc.QuietCycles <= 0 || entryCycle >= lc.QuietCycles ||
			entryCycle+cost > lc.QuietCycles ||
			(lc.MaxCycles > 0 && entryCycle+cost > lc.MaxCycles) {
			break
		}
		entry++
		entryCycle += cost
	}

	// Lane setup + independent quiet prefix.
	if cap(lc.lanes) < len(runs) {
		lc.lanes = make([]laneState, len(runs))
	}
	lc.lanes = lc.lanes[:len(runs)]
	for l := range runs {
		r := &runs[l]
		ls := &lc.lanes[l]
		*ls = laneState{key: r.Key, rand: r.Rand, sink: r.Sink, maskRand: r.MaskRand}
		if lc.Masked && ls.maskRand == nil {
			return 0, fmt.Errorf("coproc: masked execution requires a mask TRNG source on lane %d (MaskRand)", l)
		}
		from := 0
		if snap := r.Resume; snap != nil {
			if snap.Instr < 0 || snap.Instr > entry {
				return 0, fmt.Errorf("coproc: lane %d snapshot instruction %d outside quiet prefix [0,%d]", l, snap.Instr, entry)
			}
			if snap.RandDraws > 0 && ls.rand == nil {
				return 0, errors.New("coproc: resume of a randomized run requires a TRNG source")
			}
			if snap.MaskDraws > 0 && ls.maskRand == nil {
				return 0, errors.New("coproc: resume of a masked run requires a mask TRNG source")
			}
			copy(ls.slots[slotRegs:slotRegs+NumRegs], snap.Regs[:])
			copy(ls.slots[slotRAM:slotRAM+NumRAM], snap.RAM[:])
			copy(ls.slots[slotConsts:slotConsts+NumConsts], snap.Consts[:])
			copy(ls.masks[slotRegs:slotRegs+NumRegs], snap.Masks[:])
			copy(ls.masks[slotRAM:slotRAM+NumRAM], snap.RAMMasks[:])
			for i := 0; i < snap.RandDraws; i++ {
				ls.rand()
			}
			ls.randDraws = snap.RandDraws
			for i := 0; i < snap.MaskDraws; i++ {
				ls.maskRand()
			}
			ls.maskDraws = snap.MaskDraws
			from = snap.Instr
		} else {
			copy(ls.slots[slotConsts:slotConsts+NumConsts], r.Consts[:])
		}
		for idx := from; idx < entry; idx++ {
			if err := lc.quietExecLane(ls, &d.instrs[idx]); err != nil {
				return 0, err
			}
		}
	}
	lc.cycle = entryCycle
	return lc.runEvented(d, entry)
}

// quietExecLane mirrors CPU.quietExec against a lane's slot file,
// including the masked path's mask-stream draws and slot refreshes.
func (lc *LaneCPU) quietExecLane(ls *laneState, in *laneInstr) error {
	switch in.op {
	case OpNop:
		return nil
	case OpAdd:
		ls.slots[in.rd] = gf2m.Add(ls.slots[in.ra], ls.slots[in.rb])
	case OpMove, OpLoadConst:
		ls.slots[in.rd] = ls.slots[in.ra]
	case OpLoadRnd:
		if ls.rand == nil {
			return errors.New("coproc: OpLoadRnd requires a TRNG source")
		}
		ls.slots[in.rd] = RandNonZeroElement(ls.drawRand)
	case OpCSwap:
		if ls.key.Bit(in.keyBit) == 1 {
			ls.slots[in.rd], ls.slots[in.ra] = ls.slots[in.ra], ls.slots[in.rd]
			if lc.Masked {
				ls.masks[in.rd], ls.masks[in.ra] = ls.masks[in.ra], ls.masks[in.rd]
			}
		}
		return nil
	case OpSqr:
		ls.slots[in.rd] = gf2m.Sqr(ls.slots[in.ra])
	case OpMul:
		ls.slots[in.rd] = gf2m.Mul(ls.slots[in.ra], ls.slots[in.rb])
	}
	if lc.Masked {
		if in.op == OpMul || in.op == OpSqr {
			// Match the evented digit pipeline's draw schedule (see
			// CPU.quietExec): one discarded refresh per digit cycle.
			for j := lc.Timing.Digits(); j > 0; j-- {
				ls.drawMaskElement()
			}
		}
		ls.masks[in.rd] = ls.drawMaskElement()
	}
	return nil
}

// runEvented executes instructions [entry, end) in lockstep. Per
// instruction, every lane retires all its cycles (lane-major order:
// the per-lane event streams are what must be ordered, and they are;
// interleaving across lanes is unobservable since each lane has its
// own sink), then the shared clock advances by the instruction cost.
func (lc *LaneCPU) runEvented(d *laneProgram, entry int) (int, error) {
	for idx := entry; idx < len(d.instrs); idx++ {
		in := &d.instrs[idx]
		// Quiet gaps after the entry point cannot occur (QuietCycles is
		// a single prefix), but keep the serial CPU's guard for parity
		// with oversized QuietCycles values.
		if lc.QuietCycles > 0 && lc.cycle < lc.QuietCycles &&
			lc.cycle+in.cost <= lc.QuietCycles &&
			(lc.MaxCycles <= 0 || lc.cycle+in.cost <= lc.MaxCycles) {
			for l := range lc.lanes {
				if err := lc.quietExecLane(&lc.lanes[l], in); err != nil {
					return lc.cycle, err
				}
			}
			lc.cycle += in.cost
			continue
		}
		// Number of event cycles this instruction retires before a
		// MaxCycles stop (same for every lane).
		budget := in.cost
		stopped := false
		if lc.MaxCycles > 0 && lc.cycle+budget > lc.MaxCycles {
			budget = lc.MaxCycles - lc.cycle
			stopped = true
		}
		for l := range lc.lanes {
			if err := lc.execLane(&lc.lanes[l], idx, in, budget); err != nil {
				return lc.cycle, err
			}
		}
		lc.cycle += budget
		if stopped {
			return lc.cycle, ErrStopped
		}
	}
	return lc.cycle, nil
}

// emit stamps the cycle number and delivers the lane's event.
func (ls *laneState) emit(cycle int) {
	ls.ev.Cycle = cycle
	if ls.sink != nil {
		ls.sink(&ls.ev)
	}
}

// resetEvent mirrors CPU.resetEvent.
func (ls *laneState) resetEvent(idx int, in *laneInstr) {
	ls.ev = CycleEvent{
		InstrIndex: idx,
		Op:         in.op,
		Iteration:  in.iteration,
		KeyBit:     -1,
	}
}

// execLane retires one instruction on one lane, emitting exactly
// budget cycles (budget < cost only when MaxCycles truncates the
// instruction, in which case the architectural write is withheld just
// like the serial executor's early return).
func (lc *LaneCPU) execLane(ls *laneState, idx int, in *laneInstr, budget int) error {
	switch in.op {
	case OpNop:
		if budget > 0 {
			ls.resetEvent(idx, in)
			ls.emit(lc.cycle)
		}

	case OpAdd, OpMove, OpLoadConst, OpLoadRnd:
		if budget <= 0 {
			return nil
		}
		var v gf2m.Element
		var busHW int
		switch in.op {
		case OpAdd:
			a, b := ls.slots[in.ra], ls.slots[in.rb]
			v = gf2m.Add(a, b)
			if lc.Masked {
				busHW = maskedBusHW(a, ls.maskOfSlot(in.ra)) + maskedBusHW(b, ls.maskOfSlot(in.rb))
			} else {
				busHW = a.Weight() + b.Weight()
			}
		case OpMove, OpLoadConst:
			v = ls.slots[in.ra]
			if lc.Masked {
				busHW = maskedBusHW(v, ls.maskOfSlot(in.ra))
			} else {
				busHW = v.Weight()
			}
		case OpLoadRnd:
			if ls.rand == nil {
				return errors.New("coproc: OpLoadRnd requires a TRNG source")
			}
			v = RandNonZeroElement(ls.drawRand)
			// Raw TRNG words on the port; share split happens at the write.
			busHW = v.Weight()
		}
		old := ls.slots[in.rd]
		ls.slots[in.rd] = v
		ls.resetEvent(idx, in)
		if lc.Masked {
			nm := ls.drawMaskElement()
			setMaskedWrite(&ls.ev, old, ls.masks[in.rd], v, nm)
			ls.masks[in.rd] = nm
			ls.ev.RegsClocked = 2
		} else {
			ls.ev.WriteHD = gf2m.HammingDistance(old, v)
			ls.ev.Write01 = zeroToOne(old, v)
			ls.ev.RegsClocked = 1
		}
		ls.ev.BusHW = busHW
		ls.emit(lc.cycle)

	case OpCSwap:
		if budget <= 0 {
			return nil
		}
		sel := ls.key.Bit(in.keyBit)
		a, b := ls.slots[in.rd], ls.slots[in.ra]
		ls.resetEvent(idx, in)
		ls.ev.KeyBit = in.keyBit
		ls.ev.CtrlSel = sel
		if lc.Masked {
			ma, mb := ls.masks[in.rd], ls.masks[in.ra]
			ls.ev.SwapHD = gf2m.HammingDistance(gf2m.Add(a, ma), gf2m.Add(b, mb)) +
				gf2m.HammingDistance(ma, mb)
			ls.ev.RegsClocked = 4
		} else {
			ls.ev.SwapHD = gf2m.HammingDistance(a, b)
			ls.ev.RegsClocked = 2
		}
		if sel == 1 {
			ls.slots[in.rd], ls.slots[in.ra] = b, a
			if lc.Masked {
				ls.masks[in.rd], ls.masks[in.ra] = ls.masks[in.ra], ls.masks[in.rd]
			}
		}
		ls.emit(lc.cycle)

	case OpMul, OpSqr:
		a := ls.slots[in.ra]
		b := a
		if in.op == OpMul {
			b = ls.slots[in.rb]
		}
		return lc.runMALULane(ls, idx, in, a, b, budget)
	}
	return nil
}

// runMALULane mirrors CPU.runMALU per lane: load cycle(s), one cycle
// per digit (MSD first) through the precomputed shift table, then the
// writeback cycle — same accumulator recurrence, same event fields.
func (lc *LaneCPU) runMALULane(ls *laneState, idx int, in *laneInstr, a, b gf2m.Element, budget int) error {
	t := lc.Timing
	if t.DigitSize <= 0 || t.DigitSize > maxDigitSize {
		return fmt.Errorf("coproc: unsupported digit size %d", t.DigitSize)
	}
	// Masked mode: operand shares derived from the raw slots plus the
	// live mask slots; SQR squares a single operand so both shares take
	// in.ra's mask (in.rb is not decoded for OpSqr).
	var ma, mb, maskedA, maskedB gf2m.Element
	if lc.Masked {
		ma = ls.maskOfSlot(in.ra)
		if in.op == OpSqr {
			mb = ma
		} else {
			mb = ls.maskOfSlot(in.rb)
		}
		maskedA, maskedB = gf2m.Add(a, ma), gf2m.Add(b, mb)
	}
	cycle := lc.cycle
	for k := 0; k < t.MulOverhead-1; k++ {
		if budget <= 0 {
			return nil
		}
		ls.resetEvent(idx, in)
		if lc.Masked {
			ls.ev.BusHW = maskedA.Weight() + ma.Weight() + maskedB.Weight() + mb.Weight()
			ls.ev.RegsClocked = 4
		} else {
			ls.ev.BusHW = a.Weight() + b.Weight()
			ls.ev.RegsClocked = 2
		}
		ls.emit(cycle)
		cycle++
		budget--
	}
	var shifts [maxDigitSize]gf2m.Element
	shifts[0] = a
	for i := 1; i < t.DigitSize; i++ {
		shifts[i] = gf2m.ShlMod(shifts[i-1], 1)
	}
	var acc gf2m.Element
	// accMask is the accumulator's live share-1 value (masked mode);
	// starts at zero with the zeroed accumulator and is refreshed from
	// the mask stream every digit cycle.
	var accMask gf2m.Element
	d := t.DigitSize
	// One reset serves the whole digit loop: every cycle emits the same
	// constant fields (instr, op, iteration, RegsClocked, zeroed
	// write/swap counters) and only the accumulator fields vary, so
	// updating those in place delivers the identical event stream
	// without rewriting the struct each cycle.
	ls.resetEvent(idx, in)
	if lc.Masked {
		ls.ev.RegsClocked = 2 // both accumulator shares
	} else {
		ls.ev.RegsClocked = 1
	}
	for j := t.Digits() - 1; j >= 0; j-- {
		if budget <= 0 {
			return nil
		}
		digit := extractDigit(b, j, d)
		next := gf2m.ShlMod(acc, uint(d))
		for dg := digit; dg != 0; dg &= dg - 1 {
			next = gf2m.Add(next, shifts[bits.TrailingZeros64(dg)])
		}
		if lc.Masked {
			nm := ls.drawMaskElement()
			ls.ev.AccHD = gf2m.HammingDistance(gf2m.Add(acc, accMask), gf2m.Add(next, nm)) +
				gf2m.HammingDistance(accMask, nm)
			ls.ev.Acc01 = zeroToOne(gf2m.Add(acc, accMask), gf2m.Add(next, nm)) +
				zeroToOne(accMask, nm)
			ls.ev.DigitHW = bits.OnesCount64(extractDigit(maskedB, j, d)) +
				bits.OnesCount64(extractDigit(mb, j, d))
			ls.ev.BusHW = ls.ev.DigitHW
			accMask = nm
		} else {
			ls.ev.AccHD = gf2m.HammingDistance(acc, next)
			ls.ev.Acc01 = zeroToOne(acc, next)
			ls.ev.DigitHW = bits.OnesCount64(digit)
			ls.ev.BusHW = ls.ev.DigitHW
		}
		acc = next
		ls.emit(cycle)
		cycle++
		budget--
	}
	if budget <= 0 {
		return nil
	}
	old := ls.slots[in.rd]
	ls.resetEvent(idx, in)
	if lc.Masked {
		nm := ls.drawMaskElement()
		setMaskedWrite(&ls.ev, old, ls.masks[in.rd], acc, nm)
		ls.masks[in.rd] = nm
		ls.ev.RegsClocked = 2
	} else {
		ls.ev.WriteHD = gf2m.HammingDistance(old, acc)
		ls.ev.Write01 = zeroToOne(old, acc)
		ls.ev.RegsClocked = 1
	}
	ls.slots[in.rd] = acc
	ls.emit(cycle)
	return nil
}
