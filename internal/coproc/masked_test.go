package coproc

import (
	"strings"
	"testing"

	"medsec/internal/ec"
	"medsec/internal/gf2m"
	"medsec/internal/modn"
	"medsec/internal/rng"
)

// maskTestSeed derives a per-lane mask-stream seed, distinct from the
// device TRNG stream the same lane draws.
func maskTestSeed(l int) uint64 { return 7777 ^ (uint64(l)+1)*0xbf58476d1ce4e5b9 }

// captureMaskedSerial runs one masked trace on a serial CPU.
func captureMaskedSerial(t *testing.T, p *Program, key modn.Scalar, seed, maskSeed uint64, quiet, max int, snap *Snapshot) ([]CycleEvent, [NumRegs]gf2m.Element, int) {
	t.Helper()
	curve := ec.K163()
	cpu := NewCPU(DefaultTiming())
	cpu.Rand = rng.NewDRBG(seed).Uint64
	cpu.Masked = true
	cpu.MaskRand = rng.NewDRBG(maskSeed).Uint64
	cpu.SetOperandConstants(curve.Gx, curve.B, curve.Gy)
	cpu.QuietCycles = quiet
	cpu.MaxCycles = max
	var evs []CycleEvent
	cpu.Probe = func(ev *CycleEvent) { evs = append(evs, *ev) }
	var err error
	var n int
	if snap != nil {
		n, err = cpu.Resume(p, key, *snap)
	} else {
		n, err = cpu.Run(p, key)
	}
	if err != nil && err != ErrStopped {
		t.Fatalf("masked serial run: %v", err)
	}
	return evs, cpu.Regs, n
}

// TestMaskedMatchesUnmaskedArchitecture pins the core masking contract:
// the masked datapath changes only the physical activity (event fields),
// never the architectural behaviour — identical results, cycle counts,
// and device-TRNG draw schedule for every opcode and for a full ladder.
func TestMaskedMatchesUnmaskedArchitecture(t *testing.T) {
	progs := opcodePrograms()
	progs["ladder"] = BuildLadderProgram(ProgramOptions{RPC: true, XOnly: true})
	curve := ec.K163()
	for name, p := range progs {
		key := laneTestKey(t, 1)
		run := func(masked bool) ([NumRegs]gf2m.Element, int, int) {
			cpu := NewCPU(DefaultTiming())
			drbg := rng.NewDRBG(42)
			draws := 0
			cpu.Rand = func() uint64 { draws++; return drbg.Uint64() }
			if masked {
				cpu.Masked = true
				cpu.MaskRand = rng.NewDRBG(7).Uint64
			}
			cpu.SetOperandConstants(curve.Gx, curve.B, curve.Gy)
			n, err := cpu.Run(p, key)
			if err != nil {
				t.Fatalf("%s masked=%v: %v", name, masked, err)
			}
			return cpu.Regs, n, draws
		}
		plainRegs, plainN, plainDraws := run(false)
		maskRegs, maskN, maskDraws := run(true)
		if plainRegs != maskRegs {
			t.Fatalf("%s: masked register file diverged from unmasked", name)
		}
		if plainN != maskN {
			t.Fatalf("%s: masked cycles %d, unmasked %d", name, maskN, plainN)
		}
		if plainDraws != maskDraws {
			t.Fatalf("%s: masked consumed %d device-TRNG draws, unmasked %d", name, maskDraws, plainDraws)
		}
	}
}

// TestMaskedEventInvariants checks the share-level activity fields obey
// the masked encoding: RegsClocked doubles on every register update and
// no event ever carries the raw (unmasked) write distance when the
// masks differ from zero.
func TestMaskedEventInvariants(t *testing.T) {
	p := opcodePrograms()["cswap"]
	evs, _, _ := captureMaskedSerial(t, p, laneTestKey(t, 0), 42, 7, 0, 0, nil)
	for i, ev := range evs {
		switch ev.Op {
		case OpLoadConst:
			if ev.RegsClocked != 2 {
				t.Fatalf("event %d: masked write clocked %d regs, want 2", i, ev.RegsClocked)
			}
		case OpCSwap:
			if ev.RegsClocked != 4 {
				t.Fatalf("event %d: masked CSWAP clocked %d regs, want 4", i, ev.RegsClocked)
			}
		}
	}
}

// TestMaskedLaneMatchesSerial pins the masked lane executor against the
// masked serial CPU: per-opcode and full-ladder event streams, cycle
// counts, and register files bit-identical per lane.
func TestMaskedLaneMatchesSerial(t *testing.T) {
	progs := opcodePrograms()
	if !testing.Short() {
		progs["ladder"] = BuildLadderProgram(ProgramOptions{RPC: true, XOnly: true})
	}
	curve := ec.K163()
	for name, p := range progs {
		for _, nLanes := range []int{1, 3, 8} {
			lc := NewLaneCPU(DefaultTiming())
			lc.Masked = true
			streams := make([][]CycleEvent, nLanes)
			runs := make([]LaneRun, nLanes)
			for l := 0; l < nLanes; l++ {
				l := l
				runs[l] = LaneRun{
					Key:      laneTestKey(t, l),
					Rand:     rng.NewDRBG(laneTestSeed(l)).Uint64,
					MaskRand: rng.NewDRBG(maskTestSeed(l)).Uint64,
					Sink:     func(ev *CycleEvent) { streams[l] = append(streams[l], *ev) },
					Consts:   OperandConstants(curve.Gx, curve.B, curve.Gy),
				}
			}
			laneN, err := lc.Run(p, runs)
			if err != nil {
				t.Fatalf("%s lanes=%d: %v", name, nLanes, err)
			}
			for l := 0; l < nLanes; l++ {
				want, wantRegs, serialN := captureMaskedSerial(t, p, laneTestKey(t, l), laneTestSeed(l), maskTestSeed(l), 0, 0, nil)
				diffStreams(t, "masked-"+name, streams[l], want)
				if laneN != serialN {
					t.Fatalf("%s: masked lane cycles %d, serial %d", name, laneN, serialN)
				}
				if got := regsOf(lc, l); got != wantRegs {
					t.Fatalf("%s lane %d/%d: masked register file diverged", name, l, nLanes)
				}
			}
		}
	}
}

// TestMaskedQuietPrefixMatchesEvented pins the quiet-prologue draw
// parity: a masked run with QuietCycles set must consume exactly the
// same mask stream as the evented execution, so the windowed event
// stream matches the corresponding slice of a full evented run.
func TestMaskedQuietPrefixMatchesEvented(t *testing.T) {
	p := BuildLadderProgram(ProgramOptions{RPC: false, XOnly: true})
	tim := DefaultTiming()
	start, end := p.IterationWindow(tim, 160, 158)
	key := laneTestKey(t, 0)
	full, fullRegs, _ := captureMaskedSerial(t, p, key, 42, 7, 0, 0, nil)
	win, _, _ := captureMaskedSerial(t, p, key, 42, 7, start, end, nil)
	if len(win) != end-start {
		t.Fatalf("window emitted %d events, want %d", len(win), end-start)
	}
	diffStreams(t, "masked-window", win, full[start:end])
	_ = fullRegs
}

// TestMaskedSnapshotResume pins masked prefix snapshots: SnapshotPrefix
// on a masked CPU captures mask state and stream positions, and Resume
// fast-forwards both TRNG streams so the downstream event window is
// bit-identical to a straight-through masked run.
func TestMaskedSnapshotResume(t *testing.T) {
	p := BuildLadderProgram(ProgramOptions{RPC: false, XOnly: true})
	tim := DefaultTiming()
	start, end := p.IterationWindow(tim, 160, 158)
	nInstr, cycle, _ := p.PrefixBoundary(tim, start)
	if cycle == 0 {
		t.Fatal("expected a nonzero prefix boundary")
	}
	curve := ec.K163()
	key := laneTestKey(t, 0)

	ref := NewCPU(tim)
	ref.Rand = rng.NewDRBG(42).Uint64
	ref.Masked = true
	ref.MaskRand = rng.NewDRBG(7).Uint64
	ref.SetOperandConstants(curve.Gx, curve.B, curve.Gy)
	snap, err := ref.SnapshotPrefix(p, key, nInstr)
	if err != nil {
		t.Fatalf("masked SnapshotPrefix: %v", err)
	}
	if snap.MaskDraws == 0 {
		t.Fatal("masked prefix snapshot recorded zero mask draws")
	}

	want, wantRegs, wantN := captureMaskedSerial(t, p, key, 42, 7, start, end, nil)
	got, gotRegs, gotN := captureMaskedSerial(t, p, key, 42, 7, start, end, &snap)
	diffStreams(t, "masked-resume", got, want)
	if gotN != wantN || gotRegs != wantRegs {
		t.Fatalf("masked resume diverged: cycles %d/%d", gotN, wantN)
	}

	// The same snapshot must fan out to masked lanes.
	lc := NewLaneCPU(tim)
	lc.Masked = true
	lc.QuietCycles = start
	lc.MaxCycles = end
	var stream []CycleEvent
	runs := []LaneRun{{
		Key:      key,
		Rand:     rng.NewDRBG(42).Uint64,
		MaskRand: rng.NewDRBG(7).Uint64,
		Sink:     func(ev *CycleEvent) { stream = append(stream, *ev) },
		Consts:   OperandConstants(curve.Gx, curve.B, curve.Gy),
		Resume:   &snap,
	}}
	if _, err := lc.Run(p, runs); err != nil && err != ErrStopped {
		t.Fatalf("masked lane resume: %v", err)
	}
	diffStreams(t, "masked-lane-resume", stream, want)
}

// TestMaskedRequiresMaskRand pins the configuration errors: masked
// execution (serial, lane, and masked-snapshot resume) without a mask
// TRNG source must fail loudly, not silently run unmasked.
func TestMaskedRequiresMaskRand(t *testing.T) {
	p := opcodePrograms()["add"]
	curve := ec.K163()

	cpu := NewCPU(DefaultTiming())
	cpu.Masked = true
	cpu.SetOperandConstants(curve.Gx, curve.B, curve.Gy)
	if _, err := cpu.Run(p, benchScalar); err == nil || !strings.Contains(err.Error(), "mask TRNG") {
		t.Fatalf("serial masked run without MaskRand: got %v", err)
	}

	lc := NewLaneCPU(DefaultTiming())
	lc.Masked = true
	runs := []LaneRun{{Key: benchScalar, Consts: OperandConstants(curve.Gx, curve.B, curve.Gy)}}
	if _, err := lc.Run(p, runs); err == nil || !strings.Contains(err.Error(), "mask TRNG") {
		t.Fatalf("lane masked run without MaskRand: got %v", err)
	}

	snap := Snapshot{MaskDraws: 3}
	cpu2 := NewCPU(DefaultTiming())
	cpu2.SetOperandConstants(curve.Gx, curve.B, curve.Gy)
	if _, err := cpu2.Resume(p, benchScalar, snap); err == nil || !strings.Contains(err.Error(), "mask TRNG") {
		t.Fatalf("masked snapshot resume without MaskRand: got %v", err)
	}
}
