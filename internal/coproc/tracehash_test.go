package coproc

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"hash"
	"testing"

	"medsec/internal/ec"
	"medsec/internal/rng"
)

// goldenTraceHash is the SHA-256 over the full CycleEvent stream of
// one protected (RPC) point multiplication on the K-163 generator with
// a fixed scalar and TRNG seed. It was pinned on the pre-optimization
// schoolbook/bit-serial simulator (PR 3) and is the repo's
// bit-identical contract for the hot-path rewrites: Karatsuba field
// multiplication, the precomputed MALU digit pipeline and the batched
// probe delivery must all reproduce this exact stream, cycle by cycle,
// field by field.
const goldenTraceHash = "67f8b3da5321373cec770bf5d04d3c75dcddabe361aa72968385c1b9ac36e7f8"

// eventHasher folds a CycleEvent stream into a canonical SHA-256:
// every observable field, fixed order, fixed width.
type eventHasher struct {
	st  hash.Hash
	buf [14 * 8]byte
}

func newEventHasher() *eventHasher {
	return &eventHasher{st: sha256.New()}
}

func (e *eventHasher) add(ev *CycleEvent) {
	le := binary.LittleEndian
	le.PutUint64(e.buf[0:], uint64(ev.Cycle))
	le.PutUint64(e.buf[8:], uint64(ev.InstrIndex))
	le.PutUint64(e.buf[16:], uint64(ev.Op))
	le.PutUint64(e.buf[24:], uint64(int64(ev.Iteration)))
	le.PutUint64(e.buf[32:], uint64(int64(ev.KeyBit)))
	le.PutUint64(e.buf[40:], uint64(ev.CtrlSel))
	le.PutUint64(e.buf[48:], uint64(ev.WriteHD))
	le.PutUint64(e.buf[56:], uint64(ev.Write01))
	le.PutUint64(e.buf[64:], uint64(ev.SwapHD))
	le.PutUint64(e.buf[72:], uint64(ev.BusHW))
	le.PutUint64(e.buf[80:], uint64(ev.AccHD))
	le.PutUint64(e.buf[88:], uint64(ev.Acc01))
	le.PutUint64(e.buf[96:], uint64(ev.DigitHW))
	le.PutUint64(e.buf[104:], uint64(ev.RegsClocked))
	e.st.Write(e.buf[:])
}

func (e *eventHasher) sum() string {
	return hex.EncodeToString(e.st.Sum(nil))
}

// goldenRun executes the pinned protected point multiplication with
// the given probe wiring and returns (hash, cycles).
func goldenRun(t *testing.T, attach func(cpu *CPU, eh *eventHasher)) (string, int) {
	t.Helper()
	curve := ec.K163()
	prog := BuildLadderProgram(ProgramOptions{RPC: true, XOnly: true})
	cpu := NewCPU(DefaultTiming())
	cpu.Rand = rng.NewDRBG(42).Uint64
	cpu.SetOperandConstants(curve.Gx, curve.B, curve.Gy)
	eh := newEventHasher()
	attach(cpu, eh)
	n, err := cpu.Run(prog, benchScalar)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	return eh.sum(), n
}

// TestGoldenTraceHash pins the full per-cycle event stream of a
// protected point multiplication. If this test fails, an optimization
// changed the simulator's observable microarchitectural behaviour —
// which invalidates every power number, SCA result and golden ledger
// in the repo. Fix the optimization, never the constant.
func TestGoldenTraceHash(t *testing.T) {
	check := func(t *testing.T, name string, attach func(cpu *CPU, eh *eventHasher)) {
		t.Run(name, func(t *testing.T) {
			got, cycles := goldenRun(t, attach)
			if cycles == 0 {
				t.Fatal("no cycles simulated")
			}
			if got != goldenTraceHash {
				t.Fatalf("%s event stream hash changed:\n  got    %s\n  pinned %s\n(%d cycles)", name, got, goldenTraceHash, cycles)
			}
		})
	}
	// Per-cycle compat path.
	check(t, "probe", func(cpu *CPU, eh *eventHasher) {
		cpu.Probe = func(ev *CycleEvent) { eh.add(ev) }
	})
	// Batched delivery (one callback per retired instruction) must
	// produce the exact same event sequence.
	check(t, "batch", func(cpu *CPU, eh *eventHasher) {
		cpu.Batch = func(evs []CycleEvent) {
			for i := range evs {
				eh.add(&evs[i])
			}
		}
	})
	// Both probes attached: the per-cycle stream is undisturbed by the
	// batch buffer riding along.
	check(t, "probe-with-batch-attached", func(cpu *CPU, eh *eventHasher) {
		cpu.Probe = func(ev *CycleEvent) { eh.add(ev) }
		cpu.Batch = func(evs []CycleEvent) {}
	})
}
