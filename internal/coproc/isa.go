// Package coproc is a cycle-accurate instruction-level simulator of
// the paper's programmable elliptic-curve co-processor: a 6×163-bit
// register file, a digit-serial modular ALU (MALU) for GF(2^163), a
// small constant ROM and scratch RAM, and a microcoded Montgomery
// powering ladder whose only key dependence is the select line of the
// conditional-swap multiplexers (paper Fig. 3).
//
// The simulator is the substitute for the UMC 0.13 µm prototype: it
// reproduces the architecture-level quantities every number in the
// paper derives from — cycle counts (hence latency and throughput at a
// given clock), register/bus/datapath switching activity (hence power,
// through internal/power), and the key-dependent control activity that
// the circuit-level countermeasures do or do not balance.
package coproc

import "fmt"

// Op is a co-processor instruction opcode.
type Op uint8

// Instruction opcodes. ADD, MOVE, CSWAP and the loads are single-cycle
// register-file operations; MUL and SQR stream through the digit-serial
// MALU. SQR is routed through the MALU exactly like MUL ([10]'s MALU
// has no dedicated squarer), which is what makes the 9.8 PM/s figure
// come out.
const (
	OpNop Op = iota
	// OpAdd: rd = ra + rb (163-bit XOR array, 1 cycle).
	OpAdd
	// OpMul: rd = ra * rb via the digit-serial MALU.
	OpMul
	// OpSqr: rd = ra * ra via the MALU (same latency as OpMul).
	OpSqr
	// OpMove: rd = ra.
	OpMove
	// OpCSwap: swap registers rd and ra iff the controlling key bit is
	// set. This is the ladder's only key-dependent dataflow; its mux
	// select lines are the circuit-level battleground of Fig. 3.
	OpCSwap
	// OpLoadRnd: rd = fresh nonzero random field element (the RPC
	// masks; the chip's TRNG feeds this port).
	OpLoadRnd
	// OpLoadConst: rd = constant ROM entry ra.
	OpLoadConst
)

func (o Op) String() string {
	switch o {
	case OpNop:
		return "NOP"
	case OpAdd:
		return "ADD"
	case OpMul:
		return "MUL"
	case OpSqr:
		return "SQR"
	case OpMove:
		return "MOVE"
	case OpCSwap:
		return "CSWAP"
	case OpLoadRnd:
		return "LODR"
	case OpLoadConst:
		return "LODC"
	default:
		return fmt.Sprintf("OP(%d)", uint8(o))
	}
}

// Register-file and memory geometry.
const (
	// NumRegs is the number of working registers — the six 163-bit
	// registers the paper credits the MPL x-only representation with
	// needing (vs 8 for the prime-field Co-Z algorithm [6]).
	NumRegs = 6
	// NumConsts is the size of the read-only constant ROM.
	NumConsts = 5
	// NumRAM is the number of scratch RAM words available to
	// post-processing microcode (the ladder loop itself never touches
	// RAM; see RegisterPressure).
	NumRAM = 4
)

// Operand address spaces: 0..5 registers, 8..12 constant ROM,
// 16..19 scratch RAM.
const (
	constBase = 8
	ramBase   = 16
)

// Constant ROM layout.
const (
	ConstX    = constBase + iota // base-point x-coordinate
	ConstB                       // curve parameter b
	ConstY                       // base-point y-coordinate
	ConstOne                     // 1
	ConstZero                    // 0
)

// RAM slot addresses.
const (
	RAM0 = ramBase + iota
	RAM1
	RAM2
	RAM3
)

// Instr is one co-processor instruction.
type Instr struct {
	Op         Op
	Rd, Ra, Rb uint8
	// KeyBit is the index of the scalar bit driving this instruction's
	// mux select (OpCSwap only); -1 for unconditional instructions.
	KeyBit int
	// Iteration is the ladder iteration this instruction belongs to,
	// or -1 for pre/post-processing. The SCA layer uses it to segment
	// traces.
	Iteration int
}

func (in Instr) String() string {
	if in.Op == OpCSwap {
		return fmt.Sprintf("%s r%d,r%d <k%d>", in.Op, in.Rd, in.Ra, in.KeyBit)
	}
	return fmt.Sprintf("%s %s,%s,%s", in.Op, operandName(in.Rd), operandName(in.Ra), operandName(in.Rb))
}

func operandName(a uint8) string {
	switch {
	case a < NumRegs:
		return fmt.Sprintf("r%d", a)
	case a >= constBase && a < constBase+NumConsts:
		return fmt.Sprintf("c%d", a-constBase)
	case a >= ramBase && a < ramBase+NumRAM:
		return fmt.Sprintf("m%d", a-ramBase)
	default:
		return fmt.Sprintf("?%d", a)
	}
}

// Program is a fully unrolled microcode sequence plus metadata the
// executor and the analysis layers need.
type Program struct {
	Instrs []Instr
	// ResultX/ResultY are the registers holding the affine result
	// after execution (ResultY is only meaningful with y-recovery).
	ResultX, ResultY uint8
	// XOnly marks programs that skip y-recovery.
	XOnly bool
	// RPC marks programs that load randomized projective masks.
	RPC bool
}

// ProgramOptions selects the microcode variant.
type ProgramOptions struct {
	// RPC enables the randomized-projective-coordinates DPA
	// countermeasure (load two fresh masks from the TRNG port).
	RPC bool
	// XOnly skips y-recovery and returns only x(kP) — the mode the
	// identification protocol uses for d = xcoord(r·Y).
	XOnly bool
}

// Ladder register allocation (see the microcode below):
//
//	r0 = X0, r1 = Z0, r2 = X1, r3 = Z1, r4/r5 temporaries.
const (
	rX0 = iota
	rZ0
	rX1
	rZ1
	rT0
	rT1
)

// LadderIterations is the fixed number of ladder steps: all 163 bit
// positions of the scalar register are processed MSB-first regardless
// of the scalar's actual length, so the cycle count is a constant
// (paper §7: "the computation time of a point multiplication is the
// same for different key values").
const LadderIterations = 163

// BuildLadderProgram generates the complete microcode for one point
// multiplication R = k·P with the Montgomery powering ladder
// (paper Algorithm 1): projective (re-)randomization, 163 uniform
// ladder iterations built from conditional swaps + the López–Dahab
// MAdd/MDouble formulas (6 MUL + 5 SQR through the MALU per
// iteration), and either x-only conversion or full y-recovery, both
// via a single Itoh–Tsujii inversion.
func BuildLadderProgram(opt ProgramOptions) *Program {
	p := &Program{XOnly: opt.XOnly, RPC: opt.RPC}
	emit := func(op Op, rd, ra, rb uint8, keyBit, iter int) {
		p.Instrs = append(p.Instrs, Instr{Op: op, Rd: rd, Ra: ra, Rb: rb, KeyBit: keyBit, Iteration: iter})
	}
	u := func(op Op, rd, ra, rb uint8) { emit(op, rd, ra, rb, -1, -1) }

	// --- Initialization: (R0, R1) = (O, P) = ((λ:0), (µx:µ)). ---
	if opt.RPC {
		u(OpLoadRnd, rX0, 0, 0)           // λ
		u(OpLoadConst, rZ0, ConstZero, 0) // Z0 = 0  (O = (λ:0))
		u(OpLoadRnd, rT0, 0, 0)           // µ
		u(OpMul, rX1, ConstX, rT0)        // X1 = x·µ
		u(OpMove, rZ1, rT0, 0)            // Z1 = µ
	} else {
		u(OpLoadConst, rX0, ConstOne, 0)
		u(OpLoadConst, rZ0, ConstZero, 0)
		u(OpLoadConst, rX1, ConstX, 0)
		u(OpLoadConst, rZ1, ConstOne, 0)
	}

	// --- 163 uniform ladder iterations, MSB first. ---
	for i := LadderIterations - 1; i >= 0; i-- {
		it := i
		// Conditional swap in: bit=1 exchanges the roles of R0 and R1.
		emit(OpCSwap, rX0, rX1, 0, i, it)
		emit(OpCSwap, rZ0, rZ1, 0, i, it)
		// MAdd into (X1, Z1): x(R0 + R1) with difference x(P).
		emit(OpMul, rT0, rX0, rZ1, -1, it)
		emit(OpMul, rT1, rX1, rZ0, -1, it)
		emit(OpAdd, rZ1, rT0, rT1, -1, it)
		emit(OpSqr, rZ1, rZ1, 0, -1, it)
		emit(OpMul, rT0, rT0, rT1, -1, it)
		emit(OpMul, rX1, ConstX, rZ1, -1, it)
		emit(OpAdd, rX1, rX1, rT0, -1, it)
		// MDouble of (X0, Z0): X0' = X0^4 + b·Z0^4, Z0' = X0²·Z0².
		emit(OpSqr, rX0, rX0, 0, -1, it)
		emit(OpSqr, rZ0, rZ0, 0, -1, it)
		emit(OpMul, rT1, rX0, rZ0, -1, it)
		emit(OpSqr, rX0, rX0, 0, -1, it)
		emit(OpSqr, rZ0, rZ0, 0, -1, it)
		emit(OpMul, rZ0, ConstB, rZ0, -1, it)
		emit(OpAdd, rX0, rX0, rZ0, -1, it)
		emit(OpMove, rZ0, rT1, 0, -1, it)
		// Conditional swap out.
		emit(OpCSwap, rX0, rX1, 0, i, it)
		emit(OpCSwap, rZ0, rZ1, 0, i, it)
	}

	// --- Post-processing. ---
	if opt.XOnly {
		// x0 = X0 / Z0 = X0 · Z0^-1.
		emitInversion(p, rZ0, rT0, rT1) // rZ0 <- Z0^-1 (uses rT0, rT1)
		u(OpMul, rX0, rX0, rZ0)
		p.ResultX, p.ResultY = rX0, rX0
		return p
	}

	// Full y-recovery with a single inversion (Montgomery's trick
	// folded with the 1/x the López–Dahab recovery formula needs):
	//   I   = (Z0·Z1·x)^-1
	//   x0  = X0·Z1·x·I,  x1 = X1·Z0·x·I,  1/x = Z0·Z1·I.
	// The working set exceeds the six registers here, so X0 and X1
	// spill to scratch RAM — the ladder loop itself stays within six
	// registers (the paper's storage claim, asserted by tests).
	u(OpMove, RAM0, rX0, 0) // spill X0
	u(OpMove, RAM1, rX1, 0) // spill X1
	u(OpMul, rT0, rZ0, rZ1) // Z0·Z1
	u(OpMul, rX0, rT0, ConstX)
	u(OpMove, RAM2, rT0, 0)         // keep Z0·Z1
	emitInversion(p, rX0, rX1, rT1) // rX0 <- I (uses rX1, rT1 as scratch)
	u(OpMul, rT0, RAM2, rX0)        // 1/x = Z0·Z1·I
	u(OpMul, rX1, rX0, ConstX)      // I·x
	u(OpMul, rT1, rX1, rZ1)         // I·x·Z1
	u(OpMul, rT1, rT1, RAM0)        // x0 = X0·Z1·x·I
	u(OpMul, rZ0, rX1, rZ0)         // I·x·Z0
	u(OpMul, rZ0, rZ0, RAM1)        // x1 = X1·Z0·x·I
	// Recovery: y0 = (x0+x)·[(x0+x)(x1+x) + x² + y]·(1/x) + y.
	u(OpAdd, rX0, rT1, ConstX) // t0 = x0 + x
	u(OpAdd, rZ0, rZ0, ConstX) // t1 = x1 + x
	u(OpMul, rZ0, rX0, rZ0)    // t0·t1
	u(OpSqr, rX1, ConstX, 0)   // x²
	u(OpAdd, rZ0, rZ0, rX1)
	u(OpAdd, rZ0, rZ0, ConstY) // acc
	u(OpMul, rZ0, rX0, rZ0)    // t0·acc
	u(OpMul, rZ0, rZ0, rT0)    // ·(1/x)
	u(OpAdd, rZ1, rZ0, ConstY) // y0
	u(OpMove, rX0, rT1, 0)     // x0
	p.ResultX, p.ResultY = rX0, rZ1
	return p
}

// emitInversion appends Itoh–Tsujii inversion microcode computing
// target <- target^-1 with the addition chain
// 1,2,4,5,10,20,40,80,81,162 (9 MUL + 162 SQR + copies). scratch1
// holds the running β, scratch2 the squaring workspace; target keeps
// β1 until the end. All three registers are clobbered.
func emitInversion(p *Program, target, scratch1, scratch2 uint8) {
	u := func(op Op, rd, ra, rb uint8) {
		p.Instrs = append(p.Instrs, Instr{Op: op, Rd: rd, Ra: ra, Rb: rb, KeyBit: -1, Iteration: -1})
	}
	sqrN := func(r uint8, n int) {
		for i := 0; i < n; i++ {
			u(OpSqr, r, r, 0)
		}
	}
	// step: cur = sqrN(cur, n) * other, keeping β1 in target.
	// scratch1 = cur; scratch2 = squaring copy.
	u(OpMove, scratch1, target, 0) // β1
	// β2 = (β1)^2 · β1
	u(OpMove, scratch2, scratch1, 0)
	sqrN(scratch2, 1)
	u(OpMul, scratch1, scratch2, scratch1)
	// β4 = (β2)^(2^2) · β2
	u(OpMove, scratch2, scratch1, 0)
	sqrN(scratch2, 2)
	u(OpMul, scratch1, scratch2, scratch1)
	// β5 = (β4)^2 · β1
	u(OpMove, scratch2, scratch1, 0)
	sqrN(scratch2, 1)
	u(OpMul, scratch1, scratch2, target)
	// β10, β20, β40, β80
	for _, n := range []int{5, 10, 20, 40} {
		u(OpMove, scratch2, scratch1, 0)
		sqrN(scratch2, n)
		u(OpMul, scratch1, scratch2, scratch1)
	}
	// β81 = (β80)^2 · β1
	u(OpMove, scratch2, scratch1, 0)
	sqrN(scratch2, 1)
	u(OpMul, scratch1, scratch2, target)
	// β162 = (β81)^(2^81) · β81
	u(OpMove, scratch2, scratch1, 0)
	sqrN(scratch2, 81)
	u(OpMul, scratch1, scratch2, scratch1)
	// inverse = (β162)^2
	u(OpSqr, scratch1, scratch1, 0)
	u(OpMove, target, scratch1, 0)
}

// Timing parametrizes the cycle costs of the microarchitecture.
type Timing struct {
	// DigitSize is the digit-serial multiplier width d: a MUL/SQR
	// streams ceil(163/d) digit cycles through the MALU. The paper's
	// chip uses d = 4 ("a digit serial multiplication with a 163×4
	// modular multiplier achieves the optimal area-energy product
	// within the given latency constraints").
	DigitSize int
	// MulOverhead is the fixed operand-load + writeback cycle count
	// added to every MALU operation.
	MulOverhead int
	// SingleCycle is the cost of ADD/MOVE/CSWAP/loads.
	SingleCycle int
}

// DefaultTiming returns the calibrated timing of the prototype chip
// (d = 4; see EXPERIMENTS.md E1).
func DefaultTiming() Timing {
	return Timing{DigitSize: 4, MulOverhead: 2, SingleCycle: 1}
}

// Digits returns the number of digit cycles per MALU operation.
func (t Timing) Digits() int {
	if t.DigitSize <= 0 {
		panic("coproc: digit size must be positive")
	}
	return (163 + t.DigitSize - 1) / t.DigitSize
}

// InstrCycles returns the cycle cost of one instruction.
func (t Timing) InstrCycles(op Op) int {
	switch op {
	case OpMul, OpSqr:
		return t.Digits() + t.MulOverhead
	case OpNop:
		return 1
	default:
		return t.SingleCycle
	}
}

// CycleCount returns the total cycle count of the program under t.
// It is a static property: no instruction's latency depends on data,
// so this equals the measured cycle count for every key — the
// architecture-level half of the paper's timing countermeasure. The
// executor asserts this equality at run time.
func (p *Program) CycleCount(t Timing) int {
	total := 0
	for _, in := range p.Instrs {
		total += t.InstrCycles(in.Op)
	}
	return total
}

// Listing renders a human-readable microcode disassembly with cycle
// offsets under the given timing — the designer's view of the
// program. maxInstrs caps the output (0 = everything).
func (p *Program) Listing(t Timing, maxInstrs int) string {
	var b []byte
	count := 0
	for _, sp := range p.Spans(t) {
		if maxInstrs > 0 && count >= maxInstrs {
			b = append(b, "...\n"...)
			break
		}
		in := p.Instrs[sp.Index]
		line := fmt.Sprintf("%7d  %-22s", sp.Start, in.String())
		if in.Iteration >= 0 {
			line += fmt.Sprintf("  ; iter %d", in.Iteration)
		}
		b = append(b, line...)
		b = append(b, '\n')
		count++
	}
	return string(b)
}

// InstrSpan locates one instruction's cycles within a run: the
// half-open cycle interval [Start, End).
type InstrSpan struct {
	Index     int
	Op        Op
	Iteration int
	KeyBit    int
	Start     int
	End       int
}

// Spans returns the cycle interval of every instruction under timing
// t. Because no latency is data-dependent, the plan holds for every
// key — the property the SCA layer relies on to window and segment
// traces without aligning them first.
func (p *Program) Spans(t Timing) []InstrSpan {
	out := make([]InstrSpan, len(p.Instrs))
	cycle := 0
	for i, in := range p.Instrs {
		n := t.InstrCycles(in.Op)
		out[i] = InstrSpan{
			Index:     i,
			Op:        in.Op,
			Iteration: in.Iteration,
			KeyBit:    in.KeyBit,
			Start:     cycle,
			End:       cycle + n,
		}
		cycle += n
	}
	return out
}

// PrefixBoundary computes the longest program prefix that a campaign
// over a fixed base point can snapshot once and reuse for every trace:
// instructions [0, nInstr) retire entirely before limitCycle and draw
// nothing from the TRNG port (the per-trace TRNG substream makes any
// OpLoadRnd output trace-dependent, so the boundary stops at the first
// one). cycle is the boundary's start cycle (== limitCycle when the
// prefix reaches it exactly; limitCycle must be span-aligned for that).
//
// keyBits lists the scalar bit indices consulted by CSWAPs inside the
// prefix, in execution order: the snapshot taken with a reference key
// is valid for exactly those traces whose key agrees with the reference
// on these bits. Under the paper's Algorithm 1 scalar convention
// (bit 162 clear, bit 161 set for every fixed-length scalar) the
// prefix through ladder iteration 161 is key-independent across an
// entire fixed-vs-random campaign; the per-trace verification in the
// SCA layer makes that an assertion rather than an assumption.
func (p *Program) PrefixBoundary(t Timing, limitCycle int) (nInstr, cycle int, keyBits []int) {
	for _, sp := range p.Spans(t) {
		if sp.End > limitCycle || sp.Op == OpLoadRnd {
			return sp.Index, sp.Start, keyBits
		}
		if sp.Op == OpCSwap && sp.KeyBit >= 0 {
			keyBits = append(keyBits, sp.KeyBit)
		}
	}
	return len(p.Instrs), p.CycleCount(t), keyBits
}

// IterationWindow returns the cycle interval [start, end) covering
// ladder iterations fromIter down to toIter inclusive (iterations are
// numbered 162 down to 0 in processing order). It panics if the range
// is absent from the program.
func (p *Program) IterationWindow(t Timing, fromIter, toIter int) (start, end int) {
	start, end = -1, -1
	for _, sp := range p.Spans(t) {
		if sp.Iteration < 0 {
			continue
		}
		if sp.Iteration <= fromIter && sp.Iteration >= toIter {
			if start < 0 || sp.Start < start {
				start = sp.Start
			}
			if sp.End > end {
				end = sp.End
			}
		}
	}
	if start < 0 {
		panic(fmt.Sprintf("coproc: iterations %d..%d not in program", fromIter, toIter))
	}
	return start, end
}

// RegisterPressure returns the maximum number of distinct working
// registers live in the ladder loop (must be 6: the paper's storage
// argument for MPL over prime-field Co-Z) and the number of scratch
// RAM words touched anywhere in the program.
func (p *Program) RegisterPressure() (loopRegs, ramWords int) {
	regs := map[uint8]bool{}
	ram := map[uint8]bool{}
	for _, in := range p.Instrs {
		ops := []uint8{in.Rd, in.Ra}
		if in.Op == OpAdd || in.Op == OpMul {
			ops = append(ops, in.Rb)
		}
		for _, a := range ops {
			switch {
			case a < NumRegs:
				if in.Iteration >= 0 {
					regs[a] = true
				}
			case a >= ramBase && a < ramBase+NumRAM:
				ram[a] = true
			}
		}
	}
	return len(regs), len(ram)
}
