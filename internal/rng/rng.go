// Package rng provides the random-number machinery the paper lists
// among the non-algorithmic protocol primitives: a deterministic,
// seedable DRBG built on AES-128 in counter mode (used for protocol
// nonces and the randomized-projective-coordinates masks), a fast
// xorshift generator with a Box–Muller Gaussian sampler (used by the
// power model for measurement noise), and SP 800-90B-style health
// tests for an on-chip entropy source.
//
// Everything is deterministic given a seed so that every experiment in
// this module is exactly reproducible.
package rng

import (
	"encoding/binary"
	"errors"
	"math"

	"medsec/internal/lightcrypto"
)

// DRBG is a deterministic random-bit generator: AES-128 applied to an
// incrementing counter, keyed from the seed. It is not an
// SP 800-90A-certified construction, but it has the same shape
// (block cipher in counter mode) and is cryptographically strong for
// the purposes of this module's simulations.
type DRBG struct {
	aes *lightcrypto.AES
	ctr uint64
	buf [16]byte
	n   int // unread bytes remaining in buf
}

// NewDRBG creates a DRBG from a 64-bit seed. Distinct seeds yield
// independent streams.
func NewDRBG(seed uint64) *DRBG {
	var key [16]byte
	binary.BigEndian.PutUint64(key[:8], seed)
	binary.BigEndian.PutUint64(key[8:], seed^0x9e3779b97f4a7c15)
	a, err := lightcrypto.NewAES(key[:])
	if err != nil {
		panic(err) // impossible: key is always 16 bytes
	}
	return &DRBG{aes: a}
}

// Reseed resets the generator in place to the state NewDRBG(seed)
// would produce, without allocating. The campaign engine's per-worker
// scratch DRBGs re-seed once per trace; allocation-free re-seeding is
// what keeps the steady-state acquisition loop off the heap.
func (d *DRBG) Reseed(seed uint64) {
	var key [16]byte
	binary.BigEndian.PutUint64(key[:8], seed)
	binary.BigEndian.PutUint64(key[8:], seed^0x9e3779b97f4a7c15)
	if err := d.aes.Rekey(key[:]); err != nil {
		panic(err) // impossible: key is always 16 bytes
	}
	d.ctr = 0
	d.n = 0
}

func (d *DRBG) refill() {
	var blk [16]byte
	binary.BigEndian.PutUint64(blk[8:], d.ctr)
	d.ctr++
	d.aes.Encrypt(d.buf[:], blk[:])
	d.n = 16
}

// Uint64 returns the next 64 uniform bits.
func (d *DRBG) Uint64() uint64 {
	if d.n < 8 {
		d.refill()
	}
	v := binary.BigEndian.Uint64(d.buf[16-d.n:])
	d.n -= 8
	return v
}

// Read fills p with uniform bytes; it never fails.
func (d *DRBG) Read(p []byte) (int, error) {
	for i := range p {
		if d.n == 0 {
			d.refill()
		}
		p[i] = d.buf[16-d.n]
		d.n--
	}
	return len(p), nil
}

// Intn returns a uniform integer in [0, n); n must be positive.
// Rejection sampling removes modulo bias.
func (d *DRBG) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn requires positive n")
	}
	bound := uint64(n)
	limit := (^uint64(0) / bound) * bound
	for {
		v := d.Uint64()
		if v < limit {
			return int(v % bound)
		}
	}
}

// Xorshift is a fast xorshift128+ generator for bulk non-crypto
// randomness (power-model noise). Not for secrets.
type Xorshift struct {
	s0, s1 uint64
}

// NewXorshift seeds a generator; a zero seed is remapped to avoid the
// all-zero fixed point.
func NewXorshift(seed uint64) *Xorshift {
	x := &Xorshift{}
	x.Reseed(seed)
	return x
}

// Reseed resets the generator in place to the state NewXorshift(seed)
// would produce (allocation-free re-seeding for pooled scratch state).
func (x *Xorshift) Reseed(seed uint64) {
	x.s0, x.s1 = seed, seed^0x6a09e667f3bcc909
	if x.s0 == 0 && x.s1 == 0 {
		x.s1 = 1
	}
	// Warm up past any low-entropy seed structure.
	for i := 0; i < 8; i++ {
		x.Uint64()
	}
}

// Uint64 returns the next value of the xorshift128+ sequence.
func (x *Xorshift) Uint64() uint64 {
	a, b := x.s0, x.s1
	x.s0 = b
	a ^= a << 23
	a ^= a >> 17
	a ^= b ^ (b >> 26)
	x.s1 = a
	return a + b
}

// Float64 returns a uniform value in [0, 1).
func (x *Xorshift) Float64() float64 {
	return float64(x.Uint64()>>11) / (1 << 53)
}

// Gaussian draws from N(0, 1) using Box–Muller. The spare value is
// cached, so consecutive calls alternate between fresh and cached
// draws.
type Gaussian struct {
	src      *Xorshift
	spare    float64
	hasSpare bool
}

// NewGaussian creates a Gaussian sampler over a seeded xorshift source.
func NewGaussian(seed uint64) *Gaussian {
	return &Gaussian{src: NewXorshift(seed)}
}

// Reseed resets the sampler in place to the state NewGaussian(seed)
// would produce: same xorshift state, no cached spare. Allocation-free
// (the embedded source is reused).
func (g *Gaussian) Reseed(seed uint64) {
	if g.src == nil {
		g.src = NewXorshift(seed)
	} else {
		g.src.Reseed(seed)
	}
	g.spare = 0
	g.hasSpare = false
}

// Sample returns one N(0, 1) draw.
func (g *Gaussian) Sample() float64 {
	if g.hasSpare {
		g.hasSpare = false
		return g.spare
	}
	var u, v float64
	for {
		u = g.src.Float64()
		if u > 0 {
			break
		}
	}
	v = g.src.Float64()
	r := math.Sqrt(-2 * math.Log(u))
	// Sincos shares one argument reduction between the pair. Both
	// results are bit-identical to separate Sin/Cos calls (the pure-Go
	// kernels evaluate the same polynomials on the same reduced
	// argument), so the emitted stream is unchanged.
	s, c := math.Sincos(2 * math.Pi * v)
	g.spare = r * s
	g.hasSpare = true
	return r * c
}

// Fill writes len(dst) consecutive Sample draws into dst, leaving the
// sampler in exactly the state len(dst) Sample calls would. It is the
// batch form of Sample for the lane-batched acquisition path: one call
// per block of cycles instead of one per cycle, with the Box–Muller
// pair loop kept branch-light. The arithmetic is the same expressions
// in the same order as Sample (including the u > 0 rejection loop and
// the cos-then-sin pair phase), so the emitted sequence is
// bit-identical (pinned by TestGaussianFillMatchesSample).
func (g *Gaussian) Fill(dst []float64) {
	i := 0
	if g.hasSpare && len(dst) > 0 {
		dst[0] = g.spare
		g.hasSpare = false
		i++
	}
	for ; i+1 < len(dst); i += 2 {
		var u float64
		for {
			u = g.src.Float64()
			if u > 0 {
				break
			}
		}
		v := g.src.Float64()
		r := math.Sqrt(-2 * math.Log(u))
		s, c := math.Sincos(2 * math.Pi * v)
		dst[i] = r * c
		dst[i+1] = r * s
	}
	if i < len(dst) {
		dst[i] = g.Sample()
	}
}

// Skip advances the sampler past n Sample calls without computing the
// Gaussian values, leaving the generator in exactly the state n calls
// to Sample would: the same uniform draws are consumed from the
// underlying source (including the u > 0 rejection loop) and the spare
// cache ends in the same fresh/cached phase. Only the transcendental
// work (log, sqrt, sin, cos) is elided — a skipped cycle costs two
// xorshift draws per pair instead of a full Box–Muller evaluation.
// The quiet-prefix acquisition path uses this to keep the measurement
// noise stream of a windowed trace bit-identical to an unwindowed run
// that simply discarded the out-of-window samples.
func (g *Gaussian) Skip(n int) {
	if n <= 0 {
		return
	}
	if g.hasSpare {
		g.hasSpare = false
		n--
	}
	for ; n >= 2; n -= 2 {
		// One fresh pair: u (with the zero-rejection loop) and v.
		// Float64() is zero exactly when the top 53 bits of the raw
		// draw are, so the rejection test runs on integers — same
		// draws consumed, no float conversion.
		for g.src.Uint64()>>11 == 0 {
		}
		g.src.Uint64()
	}
	if n == 1 {
		// Odd remainder: a real draw, so the spare cache holds exactly
		// the value the next Sample call would return.
		g.Sample()
	}
}

// HealthTester implements the two continuous health tests of
// NIST SP 800-90B (§4.4) over a stream of entropy-source samples:
// the repetition count test and the adaptive proportion test. The
// paper's protocol level lists RNGs among the primitives that need
// engineering care; an unmonitored entropy source silently breaking
// would void the DPA countermeasure (the chip's mask randomness).
type HealthTester struct {
	// CutoffRepetition is the repetition-count alarm threshold.
	CutoffRepetition int
	// WindowSize and CutoffProportion parametrize the adaptive
	// proportion test.
	WindowSize       int
	CutoffProportion int

	last      byte
	runLen    int
	windowRef byte
	windowPos int
	windowCnt int
	started   bool
}

// ErrEntropyFailure signals a health-test alarm.
var ErrEntropyFailure = errors.New("rng: entropy source health test failed")

// NewHealthTester returns a tester with cutoffs appropriate for a
// nominally full-entropy byte source (false-positive probability
// around 2^-30 per the SP 800-90B formulas).
func NewHealthTester() *HealthTester {
	return &HealthTester{
		CutoffRepetition: 5, // ceil(1 + 30/8) for H = 8 bits/sample
		WindowSize:       512,
		CutoffProportion: 13, // generous for 8-bit samples
	}
}

// Ingest feeds one sample; it returns ErrEntropyFailure if either
// continuous test alarms.
func (h *HealthTester) Ingest(sample byte) error {
	// Repetition count test.
	if h.started && sample == h.last {
		h.runLen++
		if h.runLen >= h.CutoffRepetition {
			return ErrEntropyFailure
		}
	} else {
		h.last = sample
		h.runLen = 1
	}
	// Adaptive proportion test: count occurrences of the first sample
	// of each window within that window.
	if !h.started || h.windowPos == h.WindowSize {
		h.windowRef = sample
		h.windowPos = 0
		h.windowCnt = 0
	}
	h.windowPos++
	if sample == h.windowRef {
		h.windowCnt++
		if h.windowCnt >= h.CutoffProportion {
			return ErrEntropyFailure
		}
	}
	h.started = true
	return nil
}
