package rng

import "testing"

// The campaign engine's per-worker scratch state relies on in-place
// re-seeding being indistinguishable from fresh construction: a
// recycled generator must emit the exact stream a new one would. These
// tests pin that contract for all three generators.

func TestDRBGReseedMatchesNew(t *testing.T) {
	d := NewDRBG(101)
	// Disturb internal state (counter, partial buffer).
	for i := 0; i < 13; i++ {
		d.Uint64()
	}
	var junk [5]byte
	d.Read(junk[:])
	for _, seed := range []uint64{0, 1, 42, ^uint64(0)} {
		d.Reseed(seed)
		fresh := NewDRBG(seed)
		for i := 0; i < 64; i++ {
			if got, want := d.Uint64(), fresh.Uint64(); got != want {
				t.Fatalf("seed %d, draw %d: reseeded %#x != fresh %#x", seed, i, got, want)
			}
		}
	}
}

func TestXorshiftReseedMatchesNew(t *testing.T) {
	x := NewXorshift(7)
	for i := 0; i < 9; i++ {
		x.Uint64()
	}
	for _, seed := range []uint64{0, 5, 0xdeadbeef} {
		x.Reseed(seed)
		fresh := NewXorshift(seed)
		for i := 0; i < 64; i++ {
			if got, want := x.Uint64(), fresh.Uint64(); got != want {
				t.Fatalf("seed %d, draw %d: reseeded %#x != fresh %#x", seed, i, got, want)
			}
		}
	}
}

func TestGaussianReseedMatchesNew(t *testing.T) {
	g := NewGaussian(3)
	// Leave a cached spare in place so Reseed has to clear it.
	g.Sample()
	for _, seed := range []uint64{0, 11, 1 << 40} {
		g.Reseed(seed)
		fresh := NewGaussian(seed)
		for i := 0; i < 65; i++ { // odd count crosses the spare boundary
			if got, want := g.Sample(), fresh.Sample(); got != want {
				t.Fatalf("seed %d, draw %d: reseeded %v != fresh %v", seed, i, got, want)
			}
		}
	}
	// Reseed on a zero-value sampler behaves like the constructor too.
	var zero Gaussian
	zero.Reseed(11)
	fresh := NewGaussian(11)
	for i := 0; i < 8; i++ {
		if zero.Sample() != fresh.Sample() {
			t.Fatal("zero-value Gaussian Reseed diverged from constructor")
		}
	}
}

func TestReseedDoesNotAllocate(t *testing.T) {
	d := NewDRBG(1)
	x := NewXorshift(1)
	g := NewGaussian(1)
	allocs := testing.AllocsPerRun(100, func() {
		d.Reseed(9)
		x.Reseed(9)
		g.Reseed(9)
	})
	if allocs != 0 {
		t.Fatalf("Reseed allocates %.1f objects, want 0", allocs)
	}
}
