package rng

import (
	"math"
	"testing"
)

func TestDRBGDeterministicAndSeedSeparated(t *testing.T) {
	a1 := NewDRBG(42)
	a2 := NewDRBG(42)
	b := NewDRBG(43)
	same, diff := true, false
	for i := 0; i < 100; i++ {
		v1, v2, v3 := a1.Uint64(), a2.Uint64(), b.Uint64()
		if v1 != v2 {
			same = false
		}
		if v1 != v3 {
			diff = true
		}
	}
	if !same {
		t.Fatal("same seed produced different streams")
	}
	if !diff {
		t.Fatal("different seeds produced identical streams")
	}
}

func TestDRBGReadAndUint64Uniformity(t *testing.T) {
	d := NewDRBG(7)
	buf := make([]byte, 100000)
	if n, err := d.Read(buf); n != len(buf) || err != nil {
		t.Fatalf("Read returned (%d, %v)", n, err)
	}
	var counts [256]int
	for _, b := range buf {
		counts[b]++
	}
	// Chi-square against uniform: expected 390.6 per bucket.
	var chi2 float64
	exp := float64(len(buf)) / 256
	for _, c := range counts {
		d := float64(c) - exp
		chi2 += d * d / exp
	}
	// 255 dof: mean 255, sd ~22.6. Anything under 400 is comfortably sane.
	if chi2 > 400 {
		t.Fatalf("DRBG output fails chi-square: %.1f", chi2)
	}
}

func TestDRBGIntn(t *testing.T) {
	d := NewDRBG(9)
	var counts [10]int
	for i := 0; i < 10000; i++ {
		v := d.Intn(10)
		if v < 0 || v >= 10 {
			t.Fatalf("Intn out of range: %d", v)
		}
		counts[v]++
	}
	for i, c := range counts {
		if c < 800 || c > 1200 {
			t.Fatalf("Intn bucket %d count %d implausible", i, c)
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	d.Intn(0)
}

func TestXorshiftBasicStatistics(t *testing.T) {
	x := NewXorshift(123)
	var ones int
	const n = 10000
	for i := 0; i < n; i++ {
		v := x.Uint64()
		for b := 0; b < 64; b++ {
			ones += int(v >> b & 1)
		}
	}
	total := n * 64
	frac := float64(ones) / float64(total)
	if frac < 0.49 || frac > 0.51 {
		t.Fatalf("bit bias: %.4f", frac)
	}
	// Zero seed must not produce the all-zero fixed point.
	z := NewXorshift(0)
	if z.Uint64() == 0 && z.Uint64() == 0 && z.Uint64() == 0 {
		t.Fatal("zero seed stuck at zero")
	}
}

func TestXorshiftFloat64Range(t *testing.T) {
	x := NewXorshift(5)
	var sum float64
	const n = 20000
	for i := 0; i < n; i++ {
		f := x.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
		sum += f
	}
	if mean := sum / n; mean < 0.48 || mean > 0.52 {
		t.Fatalf("Float64 mean %.4f implausible", mean)
	}
}

func TestGaussianMoments(t *testing.T) {
	g := NewGaussian(11)
	const n = 200000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		v := g.Sample()
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Fatalf("Gaussian mean %.4f, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Fatalf("Gaussian variance %.4f, want ~1", variance)
	}
}

func TestGaussianTails(t *testing.T) {
	g := NewGaussian(12)
	const n = 100000
	beyond2 := 0
	for i := 0; i < n; i++ {
		if math.Abs(g.Sample()) > 2 {
			beyond2++
		}
	}
	// P(|Z| > 2) = 4.55%; accept 3.5%..5.5%.
	frac := float64(beyond2) / n
	if frac < 0.035 || frac > 0.055 {
		t.Fatalf("tail mass %.4f implausible for N(0,1)", frac)
	}
}

func TestHealthTesterPassesGoodSource(t *testing.T) {
	h := NewHealthTester()
	d := NewDRBG(33)
	buf := make([]byte, 100000)
	d.Read(buf)
	for i, b := range buf {
		if err := h.Ingest(b); err != nil {
			t.Fatalf("healthy source alarmed at sample %d: %v", i, err)
		}
	}
}

func TestHealthTesterCatchesStuckSource(t *testing.T) {
	h := NewHealthTester()
	var err error
	for i := 0; i < 10; i++ {
		if err = h.Ingest(0xAA); err != nil {
			break
		}
	}
	if err != ErrEntropyFailure {
		t.Fatal("stuck-at source not detected by repetition count test")
	}
}

func TestHealthTesterCatchesBiasedSource(t *testing.T) {
	// A source that emits the window reference value far too often but
	// never twice in a row (defeating the repetition test alone).
	h := NewHealthTester()
	d := NewDRBG(44)
	var err error
	for i := 0; i < 100000 && err == nil; i++ {
		var b byte
		if i%3 == 0 {
			b = 0x11 // 33% of mass on one value
		} else {
			b = byte(d.Uint64())
			if b == 0x11 {
				b = 0x12
			}
		}
		err = h.Ingest(b)
	}
	if err != ErrEntropyFailure {
		t.Fatal("biased source not detected by adaptive proportion test")
	}
}

func BenchmarkDRBGUint64(b *testing.B) {
	d := NewDRBG(1)
	for i := 0; i < b.N; i++ {
		d.Uint64()
	}
}

func BenchmarkXorshiftUint64(b *testing.B) {
	x := NewXorshift(1)
	for i := 0; i < b.N; i++ {
		x.Uint64()
	}
}

func BenchmarkGaussianSample(b *testing.B) {
	g := NewGaussian(1)
	for i := 0; i < b.N; i++ {
		g.Sample()
	}
}

// TestGaussianFillMatchesSample pins the batch Fill path against the
// per-call Sample loop: for every block size (odd and even, so both
// spare-cache phases are crossed mid-block) the emitted values and the
// final generator state must be bit-identical.
func TestGaussianFillMatchesSample(t *testing.T) {
	for _, sizes := range [][]int{{1}, {2}, {3}, {7, 1, 4}, {5, 8, 1, 1, 2}, {64, 63}} {
		a, b := NewGaussian(42), NewGaussian(42)
		for _, n := range sizes {
			got := make([]float64, n)
			a.Fill(got)
			for i := 0; i < n; i++ {
				if want := b.Sample(); got[i] != want {
					t.Fatalf("sizes %v: Fill[%d] = %v, Sample = %v", sizes, i, got[i], want)
				}
			}
		}
		// The generators must leave Fill and Sample in the same phase.
		if a.Sample() != b.Sample() {
			t.Fatalf("sizes %v: generator state diverged after Fill", sizes)
		}
	}
}

// TestGaussianSkipIntegerFastPath re-pins Skip against real Sample
// calls now that the rejection test runs on raw integer draws.
func TestGaussianSkipIntegerFastPath(t *testing.T) {
	for _, n := range []int{0, 1, 2, 3, 17, 100} {
		a, b := NewGaussian(7), NewGaussian(7)
		a.Skip(n)
		for i := 0; i < n; i++ {
			b.Sample()
		}
		for i := 0; i < 4; i++ {
			if a.Sample() != b.Sample() {
				t.Fatalf("Skip(%d) diverged from %d Sample calls", n, n)
			}
		}
	}
}

func BenchmarkGaussianFill256(b *testing.B) {
	g := NewGaussian(1)
	buf := make([]float64, 256)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		g.Fill(buf)
	}
}
