package trace

import (
	"testing"

	"medsec/internal/coproc"
	"medsec/internal/ec"
	"medsec/internal/power"
	"medsec/internal/rng"
)

// TestLaneSinkMatchesBatchProbe pins the lane sink's contract: over a
// real point multiplication and a recording window that leaves
// out-of-window cycles on both sides, the trace it records must be
// bit-identical to the serial BatchProbe path's — noise stream
// included — for every logic style and for zero noise.
func TestLaneSinkMatchesBatchProbe(t *testing.T) {
	curve := ec.K163()
	prog := coproc.BuildLadderProgram(coproc.ProgramOptions{RPC: true, XOnly: true})
	tim := coproc.DefaultTiming()
	start, end := prog.IterationWindow(tim, 160, 158)

	cfgs := []power.Config{power.ProtectedChip(5), power.UnprotectedChip(5)}
	wddl := power.ProtectedChip(5)
	wddl.Style = power.WDDL
	quietCfg := power.ProtectedChip(5)
	quietCfg.NoiseSigma = 0
	cfgs = append(cfgs, wddl, quietCfg)

	k := curve.Order.RandNonZero(rng.NewDRBG(99).Uint64)
	run := func(cfg power.Config, attach func(cpu *coproc.CPU, col *Collector)) Trace {
		model := power.NewModel(cfg)
		col := NewCollector(model, start, end)
		cpu := coproc.NewCPU(tim)
		cpu.Rand = rng.NewDRBG(7).Uint64
		cpu.SetOperandConstants(curve.Gx, curve.B, curve.Gy)
		attach(cpu, col)
		if _, err := cpu.Run(prog, k); err != nil {
			t.Fatal(err)
		}
		return col.Take()
	}
	for ci, cfg := range cfgs {
		want := run(cfg, func(cpu *coproc.CPU, col *Collector) { cpu.Batch = col.BatchProbe() })
		got := run(cfg, func(cpu *coproc.CPU, col *Collector) { cpu.Probe = col.LaneSink() })
		if len(got.Samples) != len(want.Samples) || len(want.Samples) != end-start {
			t.Fatalf("cfg %d: lane %d samples, serial %d, window %d", ci, len(got.Samples), len(want.Samples), end-start)
		}
		for i := range want.Samples {
			if got.Samples[i] != want.Samples[i] {
				t.Fatalf("cfg %d sample %d: lane %.18g != serial %.18g", ci, i, got.Samples[i], want.Samples[i])
			}
			if got.Iter[i] != want.Iter[i] {
				t.Fatalf("cfg %d sample %d: iteration %d != %d", ci, i, got.Iter[i], want.Iter[i])
			}
		}
		got.Release()
		want.Release()
	}
}
