package trace

import (
	"math"
	"testing"
)

// Merge property tests: splitting a stream into contiguous segments in
// ANY way, folding each segment into its own accumulator, and merging
// the per-segment accumulators in segment order must agree with the
// single serial fold to 1e-12 *relative* accuracy — for random,
// constant and huge-dynamic-range streams, on all four accumulators.
// This is the contract the sharded campaign reduction
// (campaign.RunSharded) leans on.

// closeRelSlices compares with tolerance 1e-12 · max(1, |a|, |b|) per
// element — the absolute streamTol would be meaningless for the
// huge-dynamic-range streams whose moments are ~1e18.
func closeRelSlices(t *testing.T, name string, got, want []float64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: length %d vs %d", name, len(got), len(want))
	}
	for i := range got {
		tol := streamTol * math.Max(1, math.Max(math.Abs(got[i]), math.Abs(want[i])))
		if math.Abs(got[i]-want[i]) > tol {
			t.Fatalf("%s[%d]: merged %.17g vs serial %.17g (diff %g, tol %g)",
				name, i, got[i], want[i], got[i]-want[i], tol)
		}
	}
}

// mergeStream builds n traces of m samples in one of three regimes:
// "random" uniform in [-1, 1); "constant" all equal (zero variance —
// the merge must not manufacture variance out of rounding); "huge"
// alternating magnitudes ~1e9 and ~1e-9 (18 orders of dynamic range —
// the adversarial case for moment combination).
func mergeStream(kind string, n, m int, seed uint64) [][]float64 {
	x := xorshift64(seed)
	out := make([][]float64, n)
	for i := range out {
		s := make([]float64, m)
		for j := range s {
			switch kind {
			case "constant":
				s[j] = 3.25
			case "huge":
				v := x.float() + 0.5
				if (i+j)%2 == 0 {
					s[j] = v * 1e9
				} else {
					s[j] = v * 1e-9
				}
			default:
				s[j] = x.float()*2 - 1
			}
		}
		out[i] = s
	}
	return out
}

// mergeSplits enumerates contiguous segmentations of n items: the
// trivial one, a maximally unbalanced one, halves, all-singletons and
// rough thirds — "split any way" in practice.
func mergeSplits(n int) [][]int {
	sp := [][]int{{n}}
	if n > 1 {
		sp = append(sp, []int{1, n - 1}, []int{n / 2, n - n/2})
		ones := make([]int, n)
		for i := range ones {
			ones[i] = 1
		}
		sp = append(sp, ones)
	}
	if n > 3 {
		sp = append(sp, []int{n / 3, n / 3, n - 2*(n/3)})
	}
	return sp
}

var mergeShapes = []struct{ n, m int }{
	{1, 5}, {2, 3}, {7, 4}, {40, 16},
}

var mergeKinds = []string{"random", "constant", "huge"}

func TestOnlineStatsMergeDeterminismMatchesSerialFold(t *testing.T) {
	for _, kind := range mergeKinds {
		for _, sh := range mergeShapes {
			data := mergeStream(kind, sh.n, sh.m, 0x5eed1)
			serial := NewOnlineStats()
			for _, s := range data {
				if err := serial.Add(s); err != nil {
					t.Fatal(err)
				}
			}
			wantMean, _ := serial.Mean()
			wantVar, _ := serial.Variance()
			for _, split := range mergeSplits(sh.n) {
				merged := NewOnlineStats()
				lo := 0
				for _, seg := range split {
					part := NewOnlineStats()
					for _, s := range data[lo : lo+seg] {
						if err := part.Add(s); err != nil {
							t.Fatal(err)
						}
					}
					lo += seg
					if err := merged.Merge(part); err != nil {
						t.Fatal(err)
					}
				}
				if merged.N() != serial.N() {
					t.Fatalf("%s %dx%d split %v: N %d != %d", kind, sh.n, sh.m, split, merged.N(), serial.N())
				}
				gotMean, _ := merged.Mean()
				gotVar, _ := merged.Variance()
				closeRelSlices(t, kind+" mean", gotMean, wantMean)
				closeRelSlices(t, kind+" variance", gotVar, wantVar)
			}
		}
	}
}

func TestOnlineWelchMergeDeterminismMatchesSerialFold(t *testing.T) {
	for _, kind := range mergeKinds {
		for _, sh := range mergeShapes {
			n := 2 * sh.n // need both populations
			data := mergeStream(kind, n, sh.m, 0x5eed2)
			serial := NewOnlineWelch()
			add := func(w *OnlineWelch, idx int) error {
				if idx%2 == 0 {
					return w.AddA(data[idx])
				}
				return w.AddB(data[idx])
			}
			for i := range data {
				if err := add(serial, i); err != nil {
					t.Fatal(err)
				}
			}
			want, err := serial.T()
			if err != nil {
				t.Fatal(err)
			}
			for _, split := range mergeSplits(n) {
				merged := NewOnlineWelch()
				lo := 0
				for _, seg := range split {
					part := NewOnlineWelch()
					for i := lo; i < lo+seg; i++ {
						if err := add(part, i); err != nil {
							t.Fatal(err)
						}
					}
					lo += seg
					if err := merged.Merge(part); err != nil {
						t.Fatal(err)
					}
				}
				got, err := merged.T()
				if err != nil {
					t.Fatal(err)
				}
				closeRelSlices(t, kind+" welch t", got, want)
			}
		}
	}
}

func TestOnlineDoMMergeDeterminismMatchesSerialFold(t *testing.T) {
	part := func(idx int, samples []float64) bool {
		// Mix an index-based and a data-based clause so the partition
		// exercises both inputs yet never degenerates to one class on
		// the constant stream.
		return (idx%3 == 0) != (samples[0] > 1e6)
	}
	for _, kind := range mergeKinds {
		for _, sh := range mergeShapes {
			if sh.n < 3 {
				continue // degenerate single-class partitions
			}
			data := mergeStream(kind, sh.n, sh.m, 0x5eed3)
			serial := NewOnlineDoM(part)
			for _, s := range data {
				if err := serial.Add(s); err != nil {
					t.Fatal(err)
				}
			}
			want, err := serial.Diff()
			if err != nil {
				t.Fatal(err)
			}
			for _, split := range mergeSplits(sh.n) {
				merged := NewOnlineDoM(nil)
				lo := 0
				for _, seg := range split {
					// Each segment classifies under the GLOBAL arrival
					// index — the NewOnlineDoMAt base — exactly like a
					// shard covering index block [lo, lo+seg).
					shard := NewOnlineDoMAt(part, lo)
					for _, s := range data[lo : lo+seg] {
						if err := shard.Add(s); err != nil {
							t.Fatal(err)
						}
					}
					lo += seg
					if err := merged.Merge(shard); err != nil {
						t.Fatal(err)
					}
				}
				if merged.N() != serial.N() {
					t.Fatalf("%s split %v: N %d != %d", kind, split, merged.N(), serial.N())
				}
				got, err := merged.Diff()
				if err != nil {
					t.Fatal(err)
				}
				closeRelSlices(t, kind+" dom", got, want)
			}
		}
	}
}

func TestOnlineCPAMergeDeterminismMatchesSerialFold(t *testing.T) {
	for _, kind := range mergeKinds {
		for _, sh := range mergeShapes {
			data := mergeStream(kind, sh.n, sh.m, 0x5eed4)
			hx := xorshift64(0x5eed5)
			hyp := make([]float64, sh.n)
			for i := range hyp {
				hyp[i] = hx.float()*4 - 2
			}
			serial := NewOnlineCPA()
			for i, s := range data {
				if err := serial.Add(hyp[i], s); err != nil {
					t.Fatal(err)
				}
			}
			want, err := serial.Corr()
			if err != nil {
				t.Fatal(err)
			}
			for _, split := range mergeSplits(sh.n) {
				merged := NewOnlineCPA()
				lo := 0
				for _, seg := range split {
					part := NewOnlineCPA()
					for i := lo; i < lo+seg; i++ {
						if err := part.Add(hyp[i], data[i]); err != nil {
							t.Fatal(err)
						}
					}
					lo += seg
					if err := merged.Merge(part); err != nil {
						t.Fatal(err)
					}
				}
				if merged.N() != serial.N() {
					t.Fatalf("%s split %v: N %d != %d", kind, split, merged.N(), serial.N())
				}
				got, err := merged.Corr()
				if err != nil {
					t.Fatal(err)
				}
				closeRelSlices(t, kind+" corr", got, want)
			}
		}
	}
	// Constant hypothesis: zero hypothesis variance must yield all-zero
	// correlations from both the serial and any merged fold.
	data := mergeStream("random", 6, 3, 0x5eed6)
	serial := NewOnlineCPA()
	a, b := NewOnlineCPA(), NewOnlineCPA()
	for i, s := range data {
		serial.Add(7.5, s)
		if i < 3 {
			a.Add(7.5, s)
		} else {
			b.Add(7.5, s)
		}
	}
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	want, _ := serial.Corr()
	got, _ := a.Corr()
	closeRelSlices(t, "constant-hypothesis corr", got, want)
	for i, v := range got {
		if v != 0 {
			t.Fatalf("constant hypothesis produced nonzero correlation at %d: %g", i, v)
		}
	}
}

// TestMergeAfterCodecRoundTripMatchesSerialFold is the checkpoint
// variant of the split-any-way property: fold each segment, encode →
// decode the per-segment accumulator (the disk round trip a resumed
// campaign performs), then merge. The result must match the in-memory
// merge bit for bit — the codec is lossless — and therefore the
// serial fold to the same 1e-12 the in-memory property pins, for all
// four accumulators and all three stream regimes.
func TestMergeAfterCodecRoundTripMatchesSerialFold(t *testing.T) {
	part := func(idx int, samples []float64) bool {
		return (idx%3 == 0) != (samples[0] > 1e6)
	}
	for _, kind := range mergeKinds {
		for _, sh := range mergeShapes {
			if sh.n < 3 {
				continue // degenerate single-class DoM partitions
			}
			data := mergeStream(kind, sh.n, sh.m, 0x5eed7)
			hx := xorshift64(0x5eed8)
			hyp := make([]float64, sh.n)
			for i := range hyp {
				hyp[i] = hx.float()*4 - 2
			}

			serialStats, serialWelch := NewOnlineStats(), NewOnlineWelch()
			serialDoM, serialCPA := NewOnlineDoM(part), NewOnlineCPA()
			for i, s := range data {
				if err := serialStats.Add(s); err != nil {
					t.Fatal(err)
				}
				if i%2 == 0 {
					serialWelch.AddA(s)
				} else {
					serialWelch.AddB(s)
				}
				if err := serialDoM.Add(s); err != nil {
					t.Fatal(err)
				}
				if err := serialCPA.Add(hyp[i], s); err != nil {
					t.Fatal(err)
				}
			}

			for _, split := range mergeSplits(sh.n) {
				mStats, mWelch := NewOnlineStats(), NewOnlineWelch()
				mDoM, mCPA := NewOnlineDoM(nil), NewOnlineCPA()
				lo := 0
				for _, seg := range split {
					pStats, pWelch := NewOnlineStats(), NewOnlineWelch()
					pDoM, pCPA := NewOnlineDoMAt(part, lo), NewOnlineCPA()
					for i := lo; i < lo+seg; i++ {
						pStats.Add(data[i])
						if i%2 == 0 {
							pWelch.AddA(data[i])
						} else {
							pWelch.AddB(data[i])
						}
						pDoM.Add(data[i])
						pCPA.Add(hyp[i], data[i])
					}
					lo += seg

					// Disk round trip, then merge the decoded copy.
					var rStats OnlineStats
					var rWelch OnlineWelch
					var rDoM OnlineDoM
					var rCPA OnlineCPA
					codecCycle(t, pStats, &rStats)
					codecCycle(t, pWelch, &rWelch)
					codecCycle(t, pDoM, &rDoM)
					codecCycle(t, pCPA, &rCPA)
					if err := mStats.Merge(&rStats); err != nil {
						t.Fatal(err)
					}
					if err := mWelch.Merge(&rWelch); err != nil {
						t.Fatal(err)
					}
					if err := mDoM.Merge(&rDoM); err != nil {
						t.Fatal(err)
					}
					if err := mCPA.Merge(&rCPA); err != nil {
						t.Fatal(err)
					}
				}

				gotMean, _ := mStats.Mean()
				wantMean, _ := serialStats.Mean()
				closeRelSlices(t, kind+" codec stats mean", gotMean, wantMean)
				gotVar, _ := mStats.Variance()
				wantVar, _ := serialStats.Variance()
				closeRelSlices(t, kind+" codec stats variance", gotVar, wantVar)

				gotT, err := mWelch.T()
				if err != nil {
					t.Fatal(err)
				}
				wantT, _ := serialWelch.T()
				closeRelSlices(t, kind+" codec welch t", gotT, wantT)

				gotD, err := mDoM.Diff()
				if err != nil {
					t.Fatal(err)
				}
				wantD, _ := serialDoM.Diff()
				closeRelSlices(t, kind+" codec dom diff", gotD, wantD)

				gotC, err := mCPA.Corr()
				if err != nil {
					t.Fatal(err)
				}
				wantC, _ := serialCPA.Corr()
				closeRelSlices(t, kind+" codec cpa corr", gotC, wantC)
			}
		}
	}
}

// codecCycle pushes src through its binary encoding into dst —
// the property tests' stand-in for a checkpoint write + resume read.
func codecCycle(t *testing.T, src, dst marshaler) {
	t.Helper()
	blob, err := src.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if err := dst.UnmarshalBinary(blob); err != nil {
		t.Fatal(err)
	}
}

// TestMergeEdgeCases pins the boundary behaviour every caller of the
// sharded reduction relies on: nil/empty merges are no-ops, merging
// into an empty accumulator deep-copies (the source can be mutated or
// discarded afterwards), and sample-length mismatches surface as
// ErrSampleMismatch.
func TestMergeEdgeCases(t *testing.T) {
	// No-ops.
	s := NewOnlineStats()
	if err := s.Add([]float64{1, 2}); err != nil {
		t.Fatal(err)
	}
	if err := s.Merge(nil); err != nil {
		t.Fatal(err)
	}
	if err := s.Merge(NewOnlineStats()); err != nil {
		t.Fatal(err)
	}
	if s.N() != 1 {
		t.Fatalf("no-op merges changed N to %d", s.N())
	}
	m, _ := s.Mean()
	if m[0] != 1 || m[1] != 2 {
		t.Fatalf("no-op merges changed mean to %v", m)
	}

	// Mismatch.
	o := NewOnlineStats()
	o.Add([]float64{1, 2, 3})
	if err := s.Merge(o); err != ErrSampleMismatch {
		t.Fatalf("mismatched merge: err = %v, want ErrSampleMismatch", err)
	}
	c := NewOnlineCPA()
	c.Add(1, []float64{1, 2})
	c2 := NewOnlineCPA()
	c2.Add(1, []float64{1, 2, 3})
	if err := c.Merge(c2); err != ErrSampleMismatch {
		t.Fatalf("mismatched CPA merge: err = %v, want ErrSampleMismatch", err)
	}
	d := NewOnlineDoM(nil)
	d.Add([]float64{1})
	d2 := NewOnlineDoM(nil)
	d2.Add([]float64{1, 2})
	if err := d.Merge(d2); err != ErrSampleMismatch {
		t.Fatalf("mismatched DoM merge: err = %v, want ErrSampleMismatch", err)
	}

	// Merge into empty deep-copies: mutating the source afterwards must
	// not leak into the destination.
	src := NewOnlineStats()
	src.Add([]float64{1, 2})
	dst := NewOnlineStats()
	if err := dst.Merge(src); err != nil {
		t.Fatal(err)
	}
	src.Add([]float64{100, 200})
	m, _ = dst.Mean()
	if dst.N() != 1 || m[0] != 1 || m[1] != 2 {
		t.Fatalf("empty-merge aliased source state: n=%d mean=%v", dst.N(), m)
	}
	csrc := NewOnlineCPA()
	csrc.Add(2, []float64{4, 8})
	cdst := NewOnlineCPA()
	if err := cdst.Merge(csrc); err != nil {
		t.Fatal(err)
	}
	csrc.Add(3, []float64{1, 1})
	if cdst.N() != 1 || cdst.sx[0] != 4 || cdst.sx[1] != 8 {
		t.Fatalf("empty CPA merge aliased source state: n=%d sx=%v", cdst.N(), cdst.sx)
	}
	dsrc := NewOnlineDoMAt(func(int, []float64) bool { return true }, 5)
	dsrc.Add([]float64{6})
	ddst := NewOnlineDoM(nil)
	if err := ddst.Merge(dsrc); err != nil {
		t.Fatal(err)
	}
	dsrc.Add([]float64{9})
	if ddst.N() != 1 || ddst.sum1[0] != 6 {
		t.Fatalf("empty DoM merge aliased source state: n=%d sum1=%v", ddst.N(), ddst.sum1)
	}
}
