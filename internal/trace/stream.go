package trace

import (
	"errors"
	"math"
)

// Streaming accumulators.
//
// The batch statistics in this package (WelchT, DiffOfMeans, Pearson)
// hold every trace of a campaign in memory — O(n·window) — and make a
// second pass to form the statistic. The TVLA/DPA/CPA mathematics are
// all order-independent one-pass statistics, so large campaigns (the
// paper's 20 000-trace regime) stream instead: each accumulator below
// consumes one trace at a time, keeps O(window) state, and reproduces
// the corresponding batch result to floating-point rounding (the
// property tests assert agreement to 1e-12).
//
// Numerical notes: OnlineStats uses Welford's algorithm, which is
// numerically *better* conditioned than the two-pass batch mean/var;
// OnlineCPA keeps raw cross-moments, matching the batch PearsonAt
// formula term for term. Feeding traces in a fixed order (the campaign
// engine's determinism contract) makes every accumulator bit-for-bit
// reproducible regardless of how many workers acquired the traces.

// ErrSampleMismatch is returned when a streamed trace's sample count
// disagrees with the accumulator's.
var ErrSampleMismatch = errors.New("trace: streamed sample length mismatch")

// OnlineStats maintains per-sample running mean and (population)
// variance over a stream of equal-length traces — Welford's algorithm,
// vectorized over the sample axis.
type OnlineStats struct {
	n    int
	mean []float64
	m2   []float64
}

// NewOnlineStats returns an empty accumulator; the sample length is
// fixed by the first Add.
func NewOnlineStats() *OnlineStats { return &OnlineStats{} }

// Add consumes one trace's samples.
func (o *OnlineStats) Add(samples []float64) error {
	if o.mean == nil {
		if len(samples) == 0 {
			return ErrEmptySet
		}
		o.mean = make([]float64, len(samples))
		o.m2 = make([]float64, len(samples))
	}
	if len(samples) != len(o.mean) {
		return ErrSampleMismatch
	}
	o.n++
	inv := 1 / float64(o.n)
	for i, v := range samples {
		d := v - o.mean[i]
		o.mean[i] += d * inv
		o.m2[i] += d * (v - o.mean[i])
	}
	return nil
}

// Merge folds another accumulator into o — Chan et al.'s pairwise
// combination of Welford moments: for each sample,
//
//	n   = na + nb
//	d   = mb - ma
//	mean = ma + d·nb/n
//	m2   = m2a + m2b + d²·na·nb/n
//
// After the merge, o describes exactly the union of the two streams
// (to floating-point rounding; the property tests pin agreement with
// the serial fold to 1e-12). other is not modified and may be reused or
// discarded. Merging an empty accumulator is a no-op in either
// direction. The shard-parallel campaign engine folds per-shard
// accumulators on worker goroutines and Merges them in shard order —
// a bank of lock-in integrators summed at the end of the sweep.
func (o *OnlineStats) Merge(other *OnlineStats) error {
	if other == nil || other.n == 0 {
		return nil
	}
	if o.n == 0 {
		o.n = other.n
		o.mean = append(o.mean[:0], other.mean...)
		o.m2 = append(o.m2[:0], other.m2...)
		return nil
	}
	if len(other.mean) != len(o.mean) {
		return ErrSampleMismatch
	}
	na, nb := float64(o.n), float64(other.n)
	n := na + nb
	for i := range o.mean {
		d := other.mean[i] - o.mean[i]
		o.mean[i] += d * nb / n
		o.m2[i] += other.m2[i] + d*d*na*nb/n
	}
	o.n += other.n
	return nil
}

// N returns the number of traces consumed.
func (o *OnlineStats) N() int { return o.n }

// SampleLen returns the per-trace sample count (0 before the first Add).
func (o *OnlineStats) SampleLen() int { return len(o.mean) }

// Mean returns a copy of the per-sample running mean.
func (o *OnlineStats) Mean() ([]float64, error) {
	if o.n == 0 {
		return nil, ErrEmptySet
	}
	return append([]float64(nil), o.mean...), nil
}

// Variance returns a copy of the per-sample population variance —
// the same normalization the batch meanVar uses.
func (o *OnlineStats) Variance() ([]float64, error) {
	if o.n == 0 {
		return nil, ErrEmptySet
	}
	out := make([]float64, len(o.m2))
	inv := 1 / float64(o.n)
	for i, v := range o.m2 {
		out[i] = v * inv
	}
	return out, nil
}

// OnlineWelch is the streaming two-population Welch t-test — the TVLA
// fixed-vs-random assessment without retaining either trace set.
type OnlineWelch struct {
	A, B OnlineStats
}

// NewOnlineWelch returns an empty two-population accumulator.
func NewOnlineWelch() *OnlineWelch { return &OnlineWelch{} }

// AddA consumes one trace of the first population (e.g. fixed key).
func (w *OnlineWelch) AddA(samples []float64) error { return w.A.Add(samples) }

// AddB consumes one trace of the second population (e.g. random keys).
func (w *OnlineWelch) AddB(samples []float64) error { return w.B.Add(samples) }

// Merge folds another two-population accumulator into w (population A
// with A, B with B) — see OnlineStats.Merge for the combination rule
// and its accuracy contract.
func (w *OnlineWelch) Merge(other *OnlineWelch) error {
	if other == nil {
		return nil
	}
	if err := w.A.Merge(&other.A); err != nil {
		return err
	}
	return w.B.Merge(&other.B)
}

// T returns the per-sample Welch t-statistic, matching the batch
// WelchT: t = (mA-mB) / sqrt(vA/nA + vB/nB) with population variances,
// and 0 where the denominator vanishes.
func (w *OnlineWelch) T() ([]float64, error) {
	if w.A.n == 0 || w.B.n == 0 {
		return nil, ErrEmptySet
	}
	if w.A.SampleLen() != w.B.SampleLen() {
		return nil, ErrEmptySet
	}
	na, nb := float64(w.A.n), float64(w.B.n)
	out := make([]float64, w.A.SampleLen())
	for i := range out {
		va := w.A.m2[i] / na
		vb := w.B.m2[i] / nb
		denom := math.Sqrt(va/na + vb/nb)
		if denom == 0 {
			continue
		}
		out[i] = (w.A.mean[i] - w.B.mean[i]) / denom
	}
	return out, nil
}

// MaxT returns the largest |t| and its sample index ((0, -1) when
// undefined) — the streaming early-stop predicate for TVLA campaigns.
func (w *OnlineWelch) MaxT() (float64, int) {
	ts, err := w.T()
	if err != nil {
		return 0, -1
	}
	return MaxAbs(ts)
}

// OnlineDoM is the streaming difference-of-means (classic Kocher DPA
// statistic). The partition callback classifies each trace as it
// arrives — selection-function DPA without retaining the set.
type OnlineDoM struct {
	part   func(idx int, samples []float64) bool
	sum1   []float64
	sum0   []float64
	c1, c0 int
	base   int
	count  int
}

// NewOnlineDoM returns an accumulator whose partition callback is
// invoked once per streamed trace with the trace's arrival index.
func NewOnlineDoM(part func(idx int, samples []float64) bool) *OnlineDoM {
	return &OnlineDoM{part: part}
}

// NewOnlineDoMAt returns an accumulator whose partition callback sees
// arrival indices starting at base — a shard of a larger campaign
// covering the contiguous index block [base, base+n) classifies its
// traces under the campaign's global indices, so merging the shards
// reproduces the single-accumulator partition exactly.
func NewOnlineDoMAt(part func(idx int, samples []float64) bool, base int) *OnlineDoM {
	return &OnlineDoM{part: part, base: base}
}

// Add consumes one trace, classifying it through the partition
// callback.
func (o *OnlineDoM) Add(samples []float64) error {
	if o.sum1 == nil {
		if len(samples) == 0 {
			return ErrEmptySet
		}
		o.sum1 = make([]float64, len(samples))
		o.sum0 = make([]float64, len(samples))
	}
	if len(samples) != len(o.sum1) {
		return ErrSampleMismatch
	}
	idx := o.base + o.count
	o.count++
	if o.part != nil && o.part(idx, samples) {
		o.c1++
		for i, v := range samples {
			o.sum1[i] += v
		}
		return nil
	}
	o.c0++
	for i, v := range samples {
		o.sum0[i] += v
	}
	return nil
}

// Merge folds another difference-of-means accumulator into o: class
// sums and counts add. Intended as the final reduction over per-shard
// accumulators whose index blocks partition the campaign (build them
// with NewOnlineDoMAt and merge in shard order); further Adds after a
// merge would continue from o's own base+count, which no longer
// corresponds to a global arrival index.
func (o *OnlineDoM) Merge(other *OnlineDoM) error {
	if other == nil || other.count == 0 {
		return nil
	}
	if o.count == 0 && o.sum1 == nil {
		o.sum1 = append([]float64(nil), other.sum1...)
		o.sum0 = append([]float64(nil), other.sum0...)
		o.c1, o.c0, o.count = other.c1, other.c0, other.count
		return nil
	}
	if len(other.sum1) != len(o.sum1) {
		return ErrSampleMismatch
	}
	for i := range o.sum1 {
		o.sum1[i] += other.sum1[i]
		o.sum0[i] += other.sum0[i]
	}
	o.c1 += other.c1
	o.c0 += other.c0
	o.count += other.count
	return nil
}

// N returns the number of traces consumed.
func (o *OnlineDoM) N() int { return o.count }

// Diff returns the per-sample difference of means between the two
// classes, matching the batch DiffOfMeans.
func (o *OnlineDoM) Diff() ([]float64, error) {
	if o.count == 0 {
		return nil, ErrEmptySet
	}
	if o.c1 == 0 || o.c0 == 0 {
		return nil, errors.New("trace: degenerate partition")
	}
	out := make([]float64, len(o.sum1))
	for i := range out {
		out[i] = o.sum1[i]/float64(o.c1) - o.sum0[i]/float64(o.c0)
	}
	return out, nil
}

// OnlineCPA is the streaming per-sample Pearson correlation between a
// scalar hypothesis per trace and the measured power — one-pass CPA.
// It keeps the raw cross-moments (Σh, Σh², Σx, Σx², Σhx per sample),
// exactly the terms the batch PearsonAt forms, so the two agree to
// rounding.
type OnlineCPA struct {
	n        int
	sh, shh  float64
	sx       []float64
	sxx, shx []float64
}

// NewOnlineCPA returns an empty accumulator.
func NewOnlineCPA() *OnlineCPA { return &OnlineCPA{} }

// Add consumes one trace and its scalar hypothesis (e.g. a predicted
// register write's 0→1 transition count).
func (o *OnlineCPA) Add(h float64, samples []float64) error {
	if o.sx == nil {
		if len(samples) == 0 {
			return ErrEmptySet
		}
		o.sx = make([]float64, len(samples))
		o.sxx = make([]float64, len(samples))
		o.shx = make([]float64, len(samples))
	}
	if len(samples) != len(o.sx) {
		return ErrSampleMismatch
	}
	o.n++
	o.sh += h
	o.shh += h * h
	for i, v := range samples {
		o.sx[i] += v
		o.sxx[i] += v * v
		o.shx[i] += h * v
	}
	return nil
}

// Merge folds another correlation accumulator into o. The state is raw
// sums (Σh, Σh², Σx, Σx², Σhx), so the merge is exact elementwise
// addition — the only rounding difference from a serial fold is the
// reassociation of the sums themselves, which the property tests pin
// to 1e-12. other is not modified.
func (o *OnlineCPA) Merge(other *OnlineCPA) error {
	if other == nil || other.n == 0 {
		return nil
	}
	if o.n == 0 {
		o.n = other.n
		o.sh, o.shh = other.sh, other.shh
		o.sx = append(o.sx[:0], other.sx...)
		o.sxx = append(o.sxx[:0], other.sxx...)
		o.shx = append(o.shx[:0], other.shx...)
		return nil
	}
	if len(other.sx) != len(o.sx) {
		return ErrSampleMismatch
	}
	o.n += other.n
	o.sh += other.sh
	o.shh += other.shh
	for i := range o.sx {
		o.sx[i] += other.sx[i]
		o.sxx[i] += other.sxx[i]
		o.shx[i] += other.shx[i]
	}
	return nil
}

// N returns the number of (hypothesis, trace) pairs consumed.
func (o *OnlineCPA) N() int { return o.n }

// Corr returns the per-sample Pearson correlation, 0 where either
// variance vanishes — the same convention as the batch Pearson.
func (o *OnlineCPA) Corr() ([]float64, error) {
	if o.n == 0 {
		return nil, ErrEmptySet
	}
	n := float64(o.n)
	vh := o.shh - o.sh*o.sh/n
	out := make([]float64, len(o.sx))
	if vh <= 0 {
		return out, nil
	}
	for i := range out {
		vx := o.sxx[i] - o.sx[i]*o.sx[i]/n
		if vx <= 0 {
			continue
		}
		cov := o.shx[i] - o.sh*o.sx[i]/n
		out[i] = cov / math.Sqrt(vh*vx)
	}
	return out, nil
}

// CorrAt returns the correlation at a single sample column, matching
// the batch PearsonAt.
func (o *OnlineCPA) CorrAt(col int) (float64, error) {
	if o.n == 0 {
		return 0, ErrEmptySet
	}
	if col < 0 || col >= len(o.sx) {
		return 0, errors.New("trace: column out of range")
	}
	n := float64(o.n)
	vh := o.shh - o.sh*o.sh/n
	vx := o.sxx[col] - o.sx[col]*o.sx[col]/n
	if vh <= 0 || vx <= 0 {
		return 0, nil
	}
	cov := o.shx[col] - o.sh*o.sx[col]/n
	return cov / math.Sqrt(vh*vx), nil
}
