package trace

import (
	"bytes"
	"errors"
	"math"
	"testing"
)

// Codec tests: encode → decode must round-trip every accumulator bit
// for bit (checkpoint/resume rests on it), and the decoder must reject
// every corruption — truncation, any single bit flip, version bumps,
// kind confusion, trailing garbage — with an error wrapping ErrCodec,
// never a panic and never a silently wrong accumulator.

// marshaler is the slice of encoding.BinaryMarshaler/Unmarshaler the
// codec tests drive generically.
type marshaler interface {
	MarshalBinary() ([]byte, error)
	UnmarshalBinary([]byte) error
}

// The stats stream includes a NaN and a signed zero so the
// "bit-for-bit" claim is tested where a naive == comparison would lie.
func populatedStats(t *testing.T) *OnlineStats {
	t.Helper()
	o := NewOnlineStats()
	for _, s := range [][]float64{
		{1.5, math.Copysign(0, -1), 3e-300},
		{-2.25, math.NaN(), 7e300},
		{0.1, 4, -5},
	} {
		if err := o.Add(s); err != nil {
			t.Fatal(err)
		}
	}
	return o
}

func populatedWelch(t *testing.T) *OnlineWelch {
	t.Helper()
	w := NewOnlineWelch()
	x := xorshift64(0xC0DEC)
	for i := 0; i < 9; i++ {
		s := []float64{x.float(), x.float() * 1e9, x.float() * 1e-9}
		var err error
		if i%2 == 0 {
			err = w.AddA(s)
		} else {
			err = w.AddB(s)
		}
		if err != nil {
			t.Fatal(err)
		}
	}
	return w
}

func populatedDoM(t *testing.T) *OnlineDoM {
	t.Helper()
	o := NewOnlineDoMAt(func(idx int, _ []float64) bool { return idx%3 == 0 }, 17)
	x := xorshift64(0xD0D0)
	for i := 0; i < 8; i++ {
		if err := o.Add([]float64{x.float(), x.float()}); err != nil {
			t.Fatal(err)
		}
	}
	return o
}

func populatedCPA(t *testing.T) *OnlineCPA {
	t.Helper()
	o := NewOnlineCPA()
	x := xorshift64(0xC9A)
	for i := 0; i < 7; i++ {
		if err := o.Add(x.float()*4-2, []float64{x.float(), x.float() * 1e8}); err != nil {
			t.Fatal(err)
		}
	}
	return o
}

func populatedSet(t *testing.T) *Set {
	t.Helper()
	x := xorshift64(0x5E7)
	return randomSet(&x, 5, 6)
}

// roundTrip encodes src, decodes into dst, and returns both encodings
// (they must be identical: a decoded accumulator re-encodes to the
// same bytes, the definition of lossless).
func roundTrip(t *testing.T, name string, src, dst marshaler) []byte {
	t.Helper()
	blob, err := src.MarshalBinary()
	if err != nil {
		t.Fatalf("%s: marshal: %v", name, err)
	}
	if err := dst.UnmarshalBinary(blob); err != nil {
		t.Fatalf("%s: unmarshal: %v", name, err)
	}
	blob2, err := dst.MarshalBinary()
	if err != nil {
		t.Fatalf("%s: re-marshal: %v", name, err)
	}
	if !bytes.Equal(blob, blob2) {
		t.Fatalf("%s: decode → re-encode is not bit-identical (%d vs %d bytes)", name, len(blob), len(blob2))
	}
	return blob
}

func TestCodecRoundTripBitExact(t *testing.T) {
	stats := populatedStats(t)
	var stats2 OnlineStats
	roundTrip(t, "OnlineStats", stats, &stats2)
	if stats2.N() != stats.N() || stats2.SampleLen() != stats.SampleLen() {
		t.Fatalf("stats state drifted: n=%d len=%d", stats2.N(), stats2.SampleLen())
	}
	// NaN survives (bit-pattern encoding, not text).
	m, _ := stats2.Mean()
	if !math.IsNaN(m[1]) {
		t.Fatalf("NaN mean did not survive the round trip: %v", m)
	}

	welch := populatedWelch(t)
	var welch2 OnlineWelch
	roundTrip(t, "OnlineWelch", welch, &welch2)
	wt, _ := welch.T()
	wt2, err := welch2.T()
	if err != nil {
		t.Fatal(err)
	}
	for i := range wt {
		if wt[i] != wt2[i] {
			t.Fatalf("welch t drifted at %d: %g vs %g", i, wt[i], wt2[i])
		}
	}

	dom := populatedDoM(t)
	var dom2 OnlineDoM
	roundTrip(t, "OnlineDoM", dom, &dom2)
	dd, _ := dom.Diff()
	dd2, err := dom2.Diff()
	if err != nil {
		t.Fatal(err)
	}
	for i := range dd {
		if dd[i] != dd2[i] {
			t.Fatalf("dom diff drifted at %d: %g vs %g", i, dd[i], dd2[i])
		}
	}
	if dom2.base != dom.base || dom2.c1 != dom.c1 || dom2.c0 != dom.c0 {
		t.Fatalf("dom counters drifted: base=%d c1=%d c0=%d", dom2.base, dom2.c1, dom2.c0)
	}

	cpa := populatedCPA(t)
	var cpa2 OnlineCPA
	roundTrip(t, "OnlineCPA", cpa, &cpa2)
	cc, _ := cpa.Corr()
	cc2, err := cpa2.Corr()
	if err != nil {
		t.Fatal(err)
	}
	for i := range cc {
		if cc[i] != cc2[i] {
			t.Fatalf("cpa corr drifted at %d: %g vs %g", i, cc[i], cc2[i])
		}
	}

	set := populatedSet(t)
	var set2 Set
	roundTrip(t, "Set", set, &set2)
	if set2.Len() != set.Len() {
		t.Fatalf("set length drifted: %d vs %d", set2.Len(), set.Len())
	}
	for i, tr := range set.Traces {
		tr2 := set2.Traces[i]
		if tr2.StartCycle != tr.StartCycle || len(tr2.Samples) != len(tr.Samples) || len(tr2.Iter) != len(tr.Iter) {
			t.Fatalf("trace %d shape drifted", i)
		}
		for j := range tr.Samples {
			if tr.Samples[j] != tr2.Samples[j] {
				t.Fatalf("trace %d sample %d drifted", i, j)
			}
		}
		for j := range tr.Iter {
			if tr.Iter[j] != tr2.Iter[j] {
				t.Fatalf("trace %d iter %d drifted", i, j)
			}
		}
	}
}

// TestCodecEmptyRoundTrip pins the zero-value path: an empty
// accumulator round-trips to an empty accumulator, usable afterwards.
func TestCodecEmptyRoundTrip(t *testing.T) {
	var s, s2 OnlineStats
	roundTrip(t, "empty OnlineStats", &s, &s2)
	if err := s2.Add([]float64{1, 2}); err != nil {
		t.Fatalf("decoded empty accumulator rejects Add: %v", err)
	}
	var w, w2 OnlineWelch
	roundTrip(t, "empty OnlineWelch", &w, &w2)
	var d, d2 OnlineDoM
	roundTrip(t, "empty OnlineDoM", &d, &d2)
	var c, c2 OnlineCPA
	roundTrip(t, "empty OnlineCPA", &c, &c2)
	var set, set2 Set
	roundTrip(t, "empty Set", &set, &set2)
}

// TestCodecRejectsCorruption flips every single bit, truncates at
// every length, bumps the version, swaps the kind, and appends
// trailing bytes; the decoder must return an ErrCodec-wrapped error
// each time and leave the destination untouched.
func TestCodecRejectsCorruption(t *testing.T) {
	targets := []struct {
		name  string
		blob  []byte
		fresh func() marshaler
	}{
		{"OnlineStats", mustMarshal(t, populatedStats(t)), func() marshaler { return &OnlineStats{} }},
		{"OnlineWelch", mustMarshal(t, populatedWelch(t)), func() marshaler { return &OnlineWelch{} }},
		{"OnlineDoM", mustMarshal(t, populatedDoM(t)), func() marshaler { return &OnlineDoM{} }},
		{"OnlineCPA", mustMarshal(t, populatedCPA(t)), func() marshaler { return &OnlineCPA{} }},
		{"Set", mustMarshal(t, populatedSet(t)), func() marshaler { return &Set{} }},
	}
	check := func(name string, data []byte) {
		t.Helper()
		for _, tg := range targets {
			if tg.name == name {
				err := tg.fresh().UnmarshalBinary(data)
				if err == nil {
					t.Fatalf("%s: corrupt input accepted (%d bytes)", name, len(data))
				}
				if !errors.Is(err, ErrCodec) {
					t.Fatalf("%s: corrupt input returned %v, not ErrCodec", name, err)
				}
			}
		}
	}
	for _, tg := range targets {
		// Truncation at every prefix length.
		for l := 0; l < len(tg.blob); l++ {
			check(tg.name, tg.blob[:l])
		}
		// Every single-bit flip (header, payload or CRC) must be caught.
		for byteIdx := 0; byteIdx < len(tg.blob); byteIdx++ {
			for bit := 0; bit < 8; bit++ {
				mut := append([]byte(nil), tg.blob...)
				mut[byteIdx] ^= 1 << bit
				check(tg.name, mut)
			}
		}
		// Trailing garbage.
		check(tg.name, append(append([]byte(nil), tg.blob...), 0))
		// Kind confusion: a valid frame of every OTHER kind.
		for _, other := range targets {
			if other.name == tg.name {
				continue
			}
			check(tg.name, other.blob)
		}
	}
}

// TestCodecRejectsInconsistentState hand-builds frames whose envelope
// is valid but whose payload lies about itself.
func TestCodecRejectsInconsistentState(t *testing.T) {
	le := func(p []byte, vals ...uint64) []byte {
		for _, v := range vals {
			p = append(p, byte(v), byte(v>>8), byte(v>>16), byte(v>>24), byte(v>>32), byte(v>>40), byte(v>>48), byte(v>>56))
		}
		return p
	}
	le32 := func(p []byte, v uint32) []byte {
		return append(p, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
	}
	cases := []struct {
		name string
		kind byte
		dst  marshaler
		p    []byte
	}{
		// n=5 but zero samples: a fed accumulator always has samples.
		{"stats count without samples", KindOnlineStats, &OnlineStats{}, le32(le(nil, 5), 0)},
		// n=0 but one sample column.
		{"stats samples without count", KindOnlineStats, &OnlineStats{}, le(le32(le(nil, 0), 1), 0, 0)},
		// Sample length claims more floats than the payload carries —
		// the allocation-bomb probe.
		{"stats length bomb", KindOnlineStats, &OnlineStats{}, le32(le(nil, 3), 0xFFFF_FFFF)},
		// DoM class counts that do not sum to the trace count.
		{"dom class counts disagree", KindOnlineDoM, &OnlineDoM{},
			le32(le(nil, 4 /*count*/, 3 /*c1*/, 2 /*c0*/, 0 /*base*/), 1 /*len*/)},
	}
	// The DoM payload above still needs its sum vectors (len 1 each).
	cases[3].p = le(cases[3].p, 0, 0)
	for _, tc := range cases {
		err := tc.dst.UnmarshalBinary(EncodeFrame(tc.kind, tc.p))
		if err == nil {
			t.Fatalf("%s: accepted", tc.name)
		}
		if !errors.Is(err, ErrCodec) {
			t.Fatalf("%s: returned %v, not ErrCodec", tc.name, err)
		}
	}
}

// TestOnlineDoMSetPartition: a decoded DoM accumulator continues the
// stream exactly once the partition callback is rebound — the arrival
// indices pick up where the checkpoint left off.
func TestOnlineDoMSetPartition(t *testing.T) {
	part := func(idx int, _ []float64) bool { return idx%2 == 0 }
	x := xorshift64(0xFACE)
	data := make([][]float64, 10)
	for i := range data {
		data[i] = []float64{x.float(), x.float(), x.float()}
	}

	whole := NewOnlineDoM(part)
	for _, s := range data {
		if err := whole.Add(s); err != nil {
			t.Fatal(err)
		}
	}

	first := NewOnlineDoM(part)
	for _, s := range data[:6] {
		if err := first.Add(s); err != nil {
			t.Fatal(err)
		}
	}
	blob, err := first.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var resumed OnlineDoM
	if err := resumed.UnmarshalBinary(blob); err != nil {
		t.Fatal(err)
	}
	resumed.SetPartition(part)
	for _, s := range data[6:] {
		if err := resumed.Add(s); err != nil {
			t.Fatal(err)
		}
	}
	want, _ := whole.Diff()
	got, err := resumed.Diff()
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("resumed DoM diverged at %d: %g vs %g", i, got[i], want[i])
		}
	}
	if resumed.c1 != whole.c1 || resumed.c0 != whole.c0 {
		t.Fatalf("resumed DoM class counts diverged: (%d,%d) vs (%d,%d)",
			resumed.c1, resumed.c0, whole.c1, whole.c0)
	}
}

func mustMarshal(t *testing.T, m marshaler) []byte {
	t.Helper()
	b, err := m.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	return b
}
