package trace

import (
	"testing"

	"medsec/internal/coproc"
	"medsec/internal/power"
)

// backingPtr identifies a slice's backing array (nil for capacity 0).
func backingPtr(s []float64) *float64 {
	if cap(s) == 0 {
		return nil
	}
	return &s[:cap(s)][0]
}

// TestReleaseDoubleReleaseIsNoOp is the regression test for the
// double-free shape: a Trace travels by value, so a consumer can hold
// a stale copy of a header whose buffers were already released. The
// second Release (through the copy) must be a no-op — before the
// guard, it inserted the same backing array into the pool twice, and
// two later acquisitions recorded into shared memory.
func TestReleaseDoubleReleaseIsNoOp(t *testing.T) {
	s := samplePool.Get(batchInitCap)
	s = s[:32]
	for i := range s {
		s[i] = float64(i)
	}
	it := iterPool.Get(batchInitCap)
	tr := Trace{Samples: s, Iter: it[:32]}
	cp := tr // stale copy, as a by-value consumer would hold

	tr.Release()
	if tr.Samples != nil || tr.Iter != nil {
		t.Fatal("Release did not clear the header")
	}
	cp.Release() // double release through the copy — must not double-Put

	// If the guard failed, the pool now holds the same array twice and
	// the next two Gets alias each other.
	a := samplePool.Get(batchInitCap)
	b := samplePool.Get(batchInitCap)
	if pa, pb := backingPtr(a), backingPtr(b); pa != nil && pa == pb {
		t.Fatal("double release corrupted the pool: two acquisitions share a backing array")
	}
	samplePool.Put(a)
	samplePool.Put(b)
}

// TestReleaseSteadyStateReuseNotMisdetected pins the other side of the
// guard: release → re-acquire (Collector.Begin clears the sentinel) →
// release again is the NORMAL steady-state flow and must keep
// recycling the same buffer, not be mistaken for a double free.
func TestReleaseSteadyStateReuseNotMisdetected(t *testing.T) {
	cfg := power.ProtectedChip(1)
	cfg.NoiseSigma = 0
	model := power.NewModel(cfg)
	col := NewCollector(model, 0, 0)
	probe := col.BatchProbe()
	evs := make([]coproc.CycleEvent, 16)
	for i := range evs {
		evs[i].Cycle = i
	}
	park := col.Take()
	park.Release() // park the construction-time buffers in the pool

	var last *float64
	for round := 0; round < 3; round++ {
		col.Begin()
		probe(evs)
		tr := col.Take()
		p := backingPtr(tr.Samples)
		if p == nil {
			t.Fatalf("round %d: acquisition without backing storage", round)
		}
		if round > 0 && p != last {
			t.Fatalf("round %d: buffer not recycled — the guard misdetected a legitimate re-release", round)
		}
		last = p
		tr.Release()
	}
}
