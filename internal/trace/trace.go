// Package trace implements power-trace acquisition from the
// co-processor simulator and the statistics the side-channel workflow
// of the paper's Fig. 4 needs: per-sample means/variances, Welch's
// t-test (TVLA leakage assessment), difference of means (classic DPA),
// and Pearson correlation (CPA).
//
// Each statistic exists in two forms: a batch form over a retained
// trace Set (this file) and a streaming form (stream.go: OnlineStats,
// OnlineWelch, OnlineDoM, OnlineCPA) that consumes one trace at a time
// in O(window) memory. The streaming forms back the parallel campaign
// engine in internal/campaign and agree with the batch forms to
// floating-point rounding (cross-tested to 1e-12).
//
// A Trace is the simulated counterpart of one oscilloscope capture:
// one power sample per clock cycle over a configurable cycle window.
package trace

import (
	"errors"
	"math"
	"sync/atomic"

	"medsec/internal/campaign"
	"medsec/internal/coproc"
	"medsec/internal/power"
)

// Trace is one acquisition: power samples for consecutive clock
// cycles, plus the ladder-iteration index of each sample so attacks
// can segment by iteration.
type Trace struct {
	// Samples holds instantaneous power (watts), one per cycle.
	Samples []float64
	// Iter holds the ladder iteration of each sample (-1 outside the
	// ladder loop). Aligned with Samples.
	Iter []int32
	// StartCycle is the global cycle index of Samples[0].
	StartCycle int
}

// Process-wide free lists for per-trace buffers. Traces recorded via
// Collector.BatchProbe draw from these pools and return to them via
// Release; in a steady-state streaming campaign every trace reuses a
// buffer retired a few indices earlier, so acquisition allocates
// ~nothing per trace.
var (
	samplePool campaign.BufferPool[float64]
	iterPool   campaign.BufferPool[int32]
)

// batchInitCap sizes a pooled buffer's first allocation. Later Gets
// reuse whatever capacity the campaign's traces actually needed.
const batchInitCap = 4096

// SamplePoolStats and IterPoolStats expose the process-wide free
// lists' hit/miss accounting (campaign.BufferPool.Stats) — the
// observability layer stamps their hit rates into run manifests as
// evidence the steady-state acquisition loop recycles its buffers.
func SamplePoolStats() campaign.PoolStats { return samplePool.Stats() }
func IterPoolStats() campaign.PoolStats   { return iterPool.Stats() }

// lastReleased remembers the backing array of the most recently
// released sample buffer. Trace flows through consumers by value, so a
// stale copy of an already-released header still points at the pooled
// array; without a guard, releasing that copy would insert the same
// buffer into the pool twice and two later acquisitions would record
// into shared memory. Tracking the last release catches the realistic
// double-release shape (the same trace released twice in a row through
// copied headers) with one atomic word and no per-buffer bookkeeping.
// Collector.Begin clears the sentinel when the pool hands the guarded
// array back out, so steady-state reuse — release, re-acquire,
// release again — is not mistaken for a double free.
var lastReleased atomic.Pointer[float64]

// Release returns the trace's buffers to the shared pool and clears
// the header. Only call it on traces that are NOT retained (streaming
// statistics that have already folded the samples); a released trace
// must not be read again. Releasing a trace recorded outside the
// pooled path is harmless — its buffers simply join the pool.
//
// Releasing the same trace twice (including through a copied header
// whose slices still point at the retired buffers) is a no-op on the
// second call rather than pool corruption.
func (t *Trace) Release() {
	s, it := t.Samples, t.Iter
	t.Samples, t.Iter = nil, nil
	if cap(s) > 0 {
		p := &s[:cap(s)][0]
		if lastReleased.Swap(p) == p {
			// This backing array was the previous release and has not
			// been re-acquired since: a double release. The buffers
			// are already in the pool; putting them again would hand
			// the same memory to two future traces.
			return
		}
	}
	samplePool.Put(s)
	iterPool.Put(it)
}

// SegmentByIteration returns the half-open sample ranges
// [start, end) of each ladder iteration present in the trace, keyed by
// iteration index.
func (t *Trace) SegmentByIteration() map[int][2]int {
	seg := map[int][2]int{}
	for i, it := range t.Iter {
		if it < 0 {
			continue
		}
		r, ok := seg[int(it)]
		if !ok {
			seg[int(it)] = [2]int{i, i + 1}
			continue
		}
		r[1] = i + 1
		seg[int(it)] = r
	}
	return seg
}

// noiseRingLen is the block size of the lane sink's measurement-noise
// ring: one power.Model.FillNoise call per 256 cycles instead of one
// Gaussian sample per cycle.
const noiseRingLen = 256

// Collector is a coproc.Probe that records a power trace through a
// power model over a cycle window.
type Collector struct {
	Model *power.Model
	// Start and End bound the recorded cycle window [Start, End);
	// End <= 0 records to the end of the run.
	Start, End int

	trace Trace

	// Noise ring for the lane sink (see LaneSink); ringPos ==
	// noiseRingLen means empty.
	ring    [noiseRingLen]float64
	ringPos int
}

// NewCollector creates a collector over the given model and window.
func NewCollector(model *power.Model, start, end int) *Collector {
	return &Collector{Model: model, Start: start, End: end}
}

// Probe returns the probe to attach to a CPU.
func (c *Collector) Probe() coproc.Probe {
	c.trace = Trace{StartCycle: c.Start}
	return func(ev *coproc.CycleEvent) {
		if ev.Cycle < c.Start || (c.End > 0 && ev.Cycle >= c.End) {
			// The model still consumes noise samples outside the
			// window so that windowing does not shift the noise
			// stream; a real scope also keeps sampling.
			_ = c.Model.CycleEnergy(ev)
			return
		}
		c.trace.Samples = append(c.trace.Samples, c.Model.CyclePower(ev))
		c.trace.Iter = append(c.trace.Iter, int32(ev.Iteration))
	}
}

// BatchProbe returns the batch-mode probe to attach to a CPU — one
// call per retired instruction instead of one closure invocation per
// cycle (see coproc.BatchProbe). The recorded trace is bit-identical
// to the per-cycle Probe's: the window test, the power model calls and
// — crucially — the noise-stream draws for out-of-window cycles happen
// in the same cycle order. Sample buffers come from a process-wide
// pool; hand them back with Trace.Release once the trace has been
// consumed.
func (c *Collector) BatchProbe() coproc.BatchProbe {
	c.Begin()
	return func(evs []coproc.CycleEvent) {
		for i := range evs {
			ev := &evs[i]
			if ev.Cycle < c.Start || (c.End > 0 && ev.Cycle >= c.End) {
				// Keep the noise stream aligned with the unwindowed
				// run (see Probe).
				_ = c.Model.CycleEnergy(ev)
				continue
			}
			c.trace.Samples = append(c.trace.Samples, c.Model.CyclePower(ev))
			c.trace.Iter = append(c.trace.Iter, int32(ev.Iteration))
		}
	}
}

// LaneSink returns the per-cycle sink for one lane of a
// coproc.LaneCPU. It records the same trace Probe/BatchProbe would —
// same window test, same sample values, same noise draws in the same
// cycle order — but through the power model's fused scalar path: the
// noise-free base energy per cycle plus a block-refilled noise ring.
// Out-of-window cycles advance the ring cursor instead of evaluating
// the model; together with the ring's end-of-trace overdraw this
// leaves the noise source in a different final state than the serial
// path, which is unobservable because every trace re-seeds its model
// before acquiring. Call Begin before each trace, as with BatchProbe.
// Bit-identity with the serial path is pinned by
// TestLaneSinkMatchesBatchProbe.
func (c *Collector) LaneSink() coproc.Probe {
	c.Begin()
	return func(ev *coproc.CycleEvent) {
		var n float64
		if c.Model.NoiseEnabled() {
			if c.ringPos == noiseRingLen {
				c.Model.FillNoise(c.ring[:])
				c.ringPos = 0
			}
			n = c.ring[c.ringPos]
			c.ringPos++
		}
		if ev.Cycle < c.Start || (c.End > 0 && ev.Cycle >= c.End) {
			return
		}
		c.trace.Samples = append(c.trace.Samples, (c.Model.CycleBaseEnergy(ev)+n)*c.Model.ClockHz())
		c.trace.Iter = append(c.trace.Iter, int32(ev.Iteration))
	}
}

// Begin resets the collector for a fresh acquisition, drawing
// zero-length sample buffers from the shared pool. The campaign
// engine's per-worker scratch collectors call Begin once per trace and
// reuse the probe closure returned by an earlier BatchProbe call, so
// steady-state acquisition allocates nothing.
func (c *Collector) Begin() {
	s := samplePool.Get(batchInitCap)
	if cap(s) > 0 {
		// The pool handed this array back out; it is live again, so a
		// future Release of it is legitimate (see lastReleased).
		lastReleased.CompareAndSwap(&s[:cap(s)][0], nil)
	}
	c.trace = Trace{
		StartCycle: c.Start,
		Samples:    s,
		Iter:       iterPool.Get(batchInitCap),
	}
	c.ringPos = noiseRingLen
}

// Take returns the recorded trace and resets the collector.
func (c *Collector) Take() Trace {
	tr := c.trace
	c.trace = Trace{}
	return tr
}

// Set is a collection of equal-length traces (one acquisition
// campaign).
type Set struct {
	Traces []Trace
}

// ErrEmptySet is returned by statistics over empty or misshapen sets.
var ErrEmptySet = errors.New("trace: empty or ragged trace set")

// Len returns the number of traces.
func (s *Set) Len() int { return len(s.Traces) }

// Add appends a trace.
func (s *Set) Add(t Trace) { s.Traces = append(s.Traces, t) }

// Prefix returns a view of the first n traces (all of them when
// n >= Len). The view ALIASES the receiver: the Trace headers and the
// underlying sample slices are shared, so mutating samples through
// either set is visible in both — callers computing summary statistics
// over a prefix must not modify the parent concurrently. The view's
// Traces slice is capacity-clamped, so Add on the view reallocates
// instead of clobbering the parent's trace n (the bug the old ad-hoc
// `Set{Traces: s.Traces[:n]}` pattern allowed).
func (s *Set) Prefix(n int) *Set {
	if n < 0 {
		n = 0
	}
	if n > len(s.Traces) {
		n = len(s.Traces)
	}
	return &Set{Traces: s.Traces[:n:n]}
}

// SampleLen returns the per-trace sample count, or 0 for an empty set.
func (s *Set) SampleLen() int {
	if len(s.Traces) == 0 {
		return 0
	}
	return len(s.Traces[0].Samples)
}

// validate checks the set is non-empty and rectangular.
func (s *Set) validate() error {
	if len(s.Traces) == 0 || len(s.Traces[0].Samples) == 0 {
		return ErrEmptySet
	}
	n := len(s.Traces[0].Samples)
	for _, t := range s.Traces {
		if len(t.Samples) != n {
			return ErrEmptySet
		}
	}
	return nil
}

// MeanTrace returns the per-sample mean across the set.
func (s *Set) MeanTrace() ([]float64, error) {
	if err := s.validate(); err != nil {
		return nil, err
	}
	n := s.SampleLen()
	mean := make([]float64, n)
	for _, t := range s.Traces {
		for i, v := range t.Samples {
			mean[i] += v
		}
	}
	inv := 1 / float64(len(s.Traces))
	for i := range mean {
		mean[i] *= inv
	}
	return mean, nil
}

// meanVar returns per-sample mean and (population) variance.
func (s *Set) meanVar() (mean, variance []float64, err error) {
	mean, err = s.MeanTrace()
	if err != nil {
		return nil, nil, err
	}
	variance = make([]float64, len(mean))
	for _, t := range s.Traces {
		for i, v := range t.Samples {
			d := v - mean[i]
			variance[i] += d * d
		}
	}
	inv := 1 / float64(len(s.Traces))
	for i := range variance {
		variance[i] *= inv
	}
	return mean, variance, nil
}

// WelchT computes the per-sample Welch t-statistic between two sets —
// the TVLA fixed-vs-random leakage test. |t| > 4.5 is the customary
// evidence-of-leakage threshold.
func WelchT(a, b *Set) ([]float64, error) {
	ma, va, err := a.meanVar()
	if err != nil {
		return nil, err
	}
	mb, vb, err := b.meanVar()
	if err != nil {
		return nil, err
	}
	if len(ma) != len(mb) {
		return nil, ErrEmptySet
	}
	na, nb := float64(a.Len()), float64(b.Len())
	out := make([]float64, len(ma))
	for i := range ma {
		denom := math.Sqrt(va[i]/na + vb[i]/nb)
		if denom == 0 {
			out[i] = 0
			continue
		}
		out[i] = (ma[i] - mb[i]) / denom
	}
	return out, nil
}

// DiffOfMeans computes the per-sample difference of means between the
// traces selected by part (true) and the rest — the original DPA
// statistic of Kocher, Jaffe and Jun [8].
func DiffOfMeans(s *Set, part []bool) ([]float64, error) {
	if err := s.validate(); err != nil {
		return nil, err
	}
	if len(part) != s.Len() {
		return nil, errors.New("trace: partition length mismatch")
	}
	n := s.SampleLen()
	sum1 := make([]float64, n)
	sum0 := make([]float64, n)
	c1, c0 := 0, 0
	for ti, t := range s.Traces {
		if part[ti] {
			c1++
			for i, v := range t.Samples {
				sum1[i] += v
			}
		} else {
			c0++
			for i, v := range t.Samples {
				sum0[i] += v
			}
		}
	}
	if c1 == 0 || c0 == 0 {
		return nil, errors.New("trace: degenerate partition")
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = sum1[i]/float64(c1) - sum0[i]/float64(c0)
	}
	return out, nil
}

// Pearson computes the per-sample Pearson correlation between the
// hypothesis vector h (one prediction per trace) and the measured
// power — the CPA statistic.
func Pearson(s *Set, h []float64) ([]float64, error) {
	if err := s.validate(); err != nil {
		return nil, err
	}
	if len(h) != s.Len() {
		return nil, errors.New("trace: hypothesis length mismatch")
	}
	n := s.SampleLen()
	nt := float64(s.Len())
	var hMean float64
	for _, v := range h {
		hMean += v
	}
	hMean /= nt
	var hVar float64
	for _, v := range h {
		d := v - hMean
		hVar += d * d
	}
	mean, variance, err := s.meanVar()
	if err != nil {
		return nil, err
	}
	cov := make([]float64, n)
	for ti, t := range s.Traces {
		hd := h[ti] - hMean
		for i, v := range t.Samples {
			cov[i] += hd * (v - mean[i])
		}
	}
	out := make([]float64, n)
	for i := range out {
		denom := math.Sqrt(hVar * variance[i] * nt)
		if denom == 0 {
			out[i] = 0
			continue
		}
		out[i] = cov[i] / denom
	}
	return out, nil
}

// PearsonAt computes the Pearson correlation between the hypothesis
// vector h and the single sample column col — the CPA statistic at a
// known point of interest (e.g. a specific writeback cycle).
func PearsonAt(s *Set, h []float64, col int) (float64, error) {
	if err := s.validate(); err != nil {
		return 0, err
	}
	if len(h) != s.Len() {
		return 0, errors.New("trace: hypothesis length mismatch")
	}
	if col < 0 || col >= s.SampleLen() {
		return 0, errors.New("trace: column out of range")
	}
	n := float64(s.Len())
	var sh, sx, shh, sxx, shx float64
	for ti, t := range s.Traces {
		x := t.Samples[col]
		sh += h[ti]
		sx += x
		shh += h[ti] * h[ti]
		sxx += x * x
		shx += h[ti] * x
	}
	cov := shx - sh*sx/n
	vh := shh - sh*sh/n
	vx := sxx - sx*sx/n
	if vh <= 0 || vx <= 0 {
		return 0, nil
	}
	return cov / math.Sqrt(vh*vx), nil
}

// MaxAbs returns the maximum absolute value in xs and its index;
// (0, -1) for empty input.
func MaxAbs(xs []float64) (float64, int) {
	best, idx := 0.0, -1
	for i, v := range xs {
		if a := math.Abs(v); a > best {
			best, idx = a, i
		}
	}
	return best, idx
}

// Mean returns the arithmetic mean of xs (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, v := range xs {
		s += v
	}
	return s / float64(len(xs))
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := Mean(xs)
	var s float64
	for _, v := range xs {
		d := v - m
		s += d * d
	}
	return math.Sqrt(s / float64(len(xs)))
}
