package trace

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math"
)

// Binary codecs for the streaming accumulators — the serialization
// boundary of the durable campaign store (internal/store).
//
// Every blob is one self-describing frame:
//
//	offset 0      byte   codec version (currently 1)
//	offset 1      byte   kind (which accumulator state follows)
//	offset 2      uint32 payload length L, little-endian
//	offset 6      payload (L bytes, kind-specific, little-endian)
//	offset 6+L    uint32 CRC-32 (IEEE) over bytes [0, 6+L)
//
// Integers are fixed-width little-endian; float64 values are their
// IEEE-754 bit patterns, so encode → decode round-trips every
// accumulator bit for bit (including NaN payloads). A decoded
// accumulator therefore Merges and folds exactly like the in-memory
// original — the property the checkpoint/resume contract rests on
// (asserted to 1e-12, and in fact exact, by the merge property tests).
//
// Decoding is defensive: any truncation, length inconsistency, CRC
// mismatch, unknown version/kind, or internally inconsistent state
// (class counts that do not sum, a trace count without samples)
// returns an error wrapping ErrCodec — never a panic, never a
// silently corrupt accumulator. The checkpoint fuzz target
// (internal/store) leans on this.

// CodecVersion is the current accumulator wire-format version. Bump it
// when a payload layout changes; decoders reject other versions.
const CodecVersion = 1

// Frame kinds. Kinds 1–15 are reserved for package trace; other
// packages framing their state with EncodeFrame (internal/fault's
// sweep tallies) use kinds from 16 up.
const (
	KindOnlineStats   byte = 1
	KindOnlineWelch   byte = 2
	KindOnlineDoM     byte = 3
	KindOnlineCPA     byte = 4
	KindSet           byte = 5
	KindOnlineMoments byte = 6
	KindOnlineWelch2  byte = 7
)

// ErrCodec is wrapped by every accumulator decoding failure, so
// callers can distinguish corrupt input from I/O errors with
// errors.Is.
var ErrCodec = errors.New("trace: malformed accumulator encoding")

const frameHeaderLen = 6 // version + kind + uint32 payload length

// EncodeFrame wraps a payload in the versioned, length-prefixed,
// CRC-32-framed envelope described in the package codec notes.
func EncodeFrame(kind byte, payload []byte) []byte {
	out := make([]byte, 0, frameHeaderLen+len(payload)+4)
	out = append(out, CodecVersion, kind)
	out = binary.LittleEndian.AppendUint32(out, uint32(len(payload)))
	out = append(out, payload...)
	return binary.LittleEndian.AppendUint32(out, crc32.ChecksumIEEE(out))
}

// DecodeFrame validates a frame's envelope (version, kind, length,
// CRC) and returns its payload. The frame must span data exactly;
// trailing bytes are a corruption signal, not an extension point.
func DecodeFrame(data []byte, kind byte) ([]byte, error) {
	if len(data) < frameHeaderLen+4 {
		return nil, fmt.Errorf("%w: frame truncated at %d bytes", ErrCodec, len(data))
	}
	if data[0] != CodecVersion {
		return nil, fmt.Errorf("%w: version %d, decoder speaks %d", ErrCodec, data[0], CodecVersion)
	}
	if data[1] != kind {
		return nil, fmt.Errorf("%w: kind %d, want %d", ErrCodec, data[1], kind)
	}
	l := binary.LittleEndian.Uint32(data[2:6])
	if uint64(len(data)) != frameHeaderLen+uint64(l)+4 {
		return nil, fmt.Errorf("%w: payload length %d disagrees with frame size %d", ErrCodec, l, len(data))
	}
	body := data[:frameHeaderLen+l]
	want := binary.LittleEndian.Uint32(data[frameHeaderLen+l:])
	if got := crc32.ChecksumIEEE(body); got != want {
		return nil, fmt.Errorf("%w: CRC mismatch (stored %08x, computed %08x)", ErrCodec, want, got)
	}
	return body[frameHeaderLen:], nil
}

// payloadReader walks a payload with sticky error state: the first
// out-of-bounds read poisons every later one, so decoders check err
// once at the end.
type payloadReader struct {
	b   []byte
	off int
	err error
}

func (r *payloadReader) fail(what string) {
	if r.err == nil {
		r.err = fmt.Errorf("%w: truncated %s at offset %d", ErrCodec, what, r.off)
	}
}

func (r *payloadReader) uint64(what string) uint64 {
	if r.err != nil {
		return 0
	}
	if r.off+8 > len(r.b) {
		r.fail(what)
		return 0
	}
	v := binary.LittleEndian.Uint64(r.b[r.off:])
	r.off += 8
	return v
}

func (r *payloadReader) uint32(what string) uint32 {
	if r.err != nil {
		return 0
	}
	if r.off+4 > len(r.b) {
		r.fail(what)
		return 0
	}
	v := binary.LittleEndian.Uint32(r.b[r.off:])
	r.off += 4
	return v
}

func (r *payloadReader) float64(what string) float64 {
	return math.Float64frombits(r.uint64(what))
}

// floats reads n float64 values. The remaining-length check precedes
// the allocation, so a corrupt length cannot provoke an allocation
// bomb — the slice is never larger than the input that carried it.
func (r *payloadReader) floats(n int, what string) []float64 {
	if r.err != nil {
		return nil
	}
	if n < 0 || r.off+8*n > len(r.b) || 8*n < 0 {
		r.fail(what)
		return nil
	}
	if n == 0 {
		// Keep nil, not an empty slice: the accumulators use a nil
		// buffer as the "sample length not yet fixed" sentinel.
		return nil
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(r.b[r.off:]))
		r.off += 8
	}
	return out
}

func (r *payloadReader) int32s(n int, what string) []int32 {
	if r.err != nil {
		return nil
	}
	if n < 0 || r.off+4*n > len(r.b) || 4*n < 0 {
		r.fail(what)
		return nil
	}
	if n == 0 {
		return nil
	}
	out := make([]int32, n)
	for i := range out {
		out[i] = int32(binary.LittleEndian.Uint32(r.b[r.off:]))
		r.off += 4
	}
	return out
}

// done reports decoding success: no sticky error and no trailing
// payload bytes.
func (r *payloadReader) done() error {
	if r.err != nil {
		return r.err
	}
	if r.off != len(r.b) {
		return fmt.Errorf("%w: %d trailing payload bytes", ErrCodec, len(r.b)-r.off)
	}
	return nil
}

func appendFloats(dst []byte, v []float64) []byte {
	for _, f := range v {
		dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(f))
	}
	return dst
}

// countLen validates the (count, sample length) pair every accumulator
// carries: a fed accumulator always has samples, an empty one never
// does.
func countLen(n uint64, l uint32) error {
	if n > math.MaxInt32 {
		return fmt.Errorf("%w: implausible trace count %d", ErrCodec, n)
	}
	if (n == 0) != (l == 0) {
		return fmt.Errorf("%w: trace count %d inconsistent with sample length %d", ErrCodec, n, l)
	}
	return nil
}

// MarshalBinary serializes the accumulator (see the package codec
// notes for the frame layout).
func (o *OnlineStats) MarshalBinary() ([]byte, error) {
	p := make([]byte, 0, 12+16*len(o.mean))
	p = binary.LittleEndian.AppendUint64(p, uint64(o.n))
	p = binary.LittleEndian.AppendUint32(p, uint32(len(o.mean)))
	p = appendFloats(p, o.mean)
	p = appendFloats(p, o.m2)
	return EncodeFrame(KindOnlineStats, p), nil
}

// UnmarshalBinary restores the accumulator from MarshalBinary output,
// replacing the receiver's state. Corrupt input returns an error
// wrapping ErrCodec and leaves the receiver untouched.
func (o *OnlineStats) UnmarshalBinary(data []byte) error {
	payload, err := DecodeFrame(data, KindOnlineStats)
	if err != nil {
		return err
	}
	r := &payloadReader{b: payload}
	n := r.uint64("trace count")
	l := r.uint32("sample length")
	mean := r.floats(int(l), "mean vector")
	m2 := r.floats(int(l), "m2 vector")
	if err := r.done(); err != nil {
		return err
	}
	if err := countLen(n, l); err != nil {
		return err
	}
	o.n = int(n)
	o.mean = mean
	o.m2 = m2
	return nil
}

// MarshalBinary serializes the two-population accumulator as a frame
// whose payload is the two length-prefixed OnlineStats frames.
func (w *OnlineWelch) MarshalBinary() ([]byte, error) {
	a, err := w.A.MarshalBinary()
	if err != nil {
		return nil, err
	}
	b, err := w.B.MarshalBinary()
	if err != nil {
		return nil, err
	}
	p := make([]byte, 0, 8+len(a)+len(b))
	p = binary.LittleEndian.AppendUint32(p, uint32(len(a)))
	p = append(p, a...)
	p = binary.LittleEndian.AppendUint32(p, uint32(len(b)))
	p = append(p, b...)
	return EncodeFrame(KindOnlineWelch, p), nil
}

// UnmarshalBinary restores the two-population accumulator.
func (w *OnlineWelch) UnmarshalBinary(data []byte) error {
	payload, err := DecodeFrame(data, KindOnlineWelch)
	if err != nil {
		return err
	}
	r := &payloadReader{b: payload}
	la := r.uint32("population A length")
	if r.err == nil && (int(la) < 0 || r.off+int(la) > len(r.b)) {
		r.fail("population A frame")
	}
	var ablob []byte
	if r.err == nil {
		ablob = r.b[r.off : r.off+int(la)]
		r.off += int(la)
	}
	lb := r.uint32("population B length")
	if r.err == nil && (int(lb) < 0 || r.off+int(lb) > len(r.b)) {
		r.fail("population B frame")
	}
	var bblob []byte
	if r.err == nil {
		bblob = r.b[r.off : r.off+int(lb)]
		r.off += int(lb)
	}
	if err := r.done(); err != nil {
		return err
	}
	var next OnlineWelch
	if err := next.A.UnmarshalBinary(ablob); err != nil {
		return err
	}
	if err := next.B.UnmarshalBinary(bblob); err != nil {
		return err
	}
	*w = next
	return nil
}

// MarshalBinary serializes the degree-4 moment accumulator.
func (o *OnlineMoments) MarshalBinary() ([]byte, error) {
	p := make([]byte, 0, 12+32*len(o.mean))
	p = binary.LittleEndian.AppendUint64(p, uint64(o.n))
	p = binary.LittleEndian.AppendUint32(p, uint32(len(o.mean)))
	p = appendFloats(p, o.mean)
	p = appendFloats(p, o.m2)
	p = appendFloats(p, o.m3)
	p = appendFloats(p, o.m4)
	return EncodeFrame(KindOnlineMoments, p), nil
}

// UnmarshalBinary restores the degree-4 moment accumulator, replacing
// the receiver's state. Corrupt input returns an error wrapping
// ErrCodec and leaves the receiver untouched.
func (o *OnlineMoments) UnmarshalBinary(data []byte) error {
	payload, err := DecodeFrame(data, KindOnlineMoments)
	if err != nil {
		return err
	}
	r := &payloadReader{b: payload}
	n := r.uint64("trace count")
	l := r.uint32("sample length")
	mean := r.floats(int(l), "mean vector")
	m2 := r.floats(int(l), "m2 vector")
	m3 := r.floats(int(l), "m3 vector")
	m4 := r.floats(int(l), "m4 vector")
	if err := r.done(); err != nil {
		return err
	}
	if err := countLen(n, l); err != nil {
		return err
	}
	o.n = int(n)
	o.mean, o.m2, o.m3, o.m4 = mean, m2, m3, m4
	return nil
}

// MarshalBinary serializes the second-order two-population accumulator
// as a frame whose payload is the two length-prefixed OnlineMoments
// frames — the same composition OnlineWelch uses.
func (w *OnlineWelch2) MarshalBinary() ([]byte, error) {
	a, err := w.A.MarshalBinary()
	if err != nil {
		return nil, err
	}
	b, err := w.B.MarshalBinary()
	if err != nil {
		return nil, err
	}
	p := make([]byte, 0, 8+len(a)+len(b))
	p = binary.LittleEndian.AppendUint32(p, uint32(len(a)))
	p = append(p, a...)
	p = binary.LittleEndian.AppendUint32(p, uint32(len(b)))
	p = append(p, b...)
	return EncodeFrame(KindOnlineWelch2, p), nil
}

// UnmarshalBinary restores the second-order two-population accumulator.
func (w *OnlineWelch2) UnmarshalBinary(data []byte) error {
	payload, err := DecodeFrame(data, KindOnlineWelch2)
	if err != nil {
		return err
	}
	r := &payloadReader{b: payload}
	la := r.uint32("population A length")
	if r.err == nil && (int(la) < 0 || r.off+int(la) > len(r.b)) {
		r.fail("population A frame")
	}
	var ablob []byte
	if r.err == nil {
		ablob = r.b[r.off : r.off+int(la)]
		r.off += int(la)
	}
	lb := r.uint32("population B length")
	if r.err == nil && (int(lb) < 0 || r.off+int(lb) > len(r.b)) {
		r.fail("population B frame")
	}
	var bblob []byte
	if r.err == nil {
		bblob = r.b[r.off : r.off+int(lb)]
		r.off += int(lb)
	}
	if err := r.done(); err != nil {
		return err
	}
	var next OnlineWelch2
	if err := next.A.UnmarshalBinary(ablob); err != nil {
		return err
	}
	if err := next.B.UnmarshalBinary(bblob); err != nil {
		return err
	}
	*w = next
	return nil
}

// MarshalBinary serializes the difference-of-means accumulator. The
// partition callback is NOT part of the encoding — it is code, not
// state; a decoded accumulator has a nil partition and must be rebound
// with SetPartition before further Adds (Merge and Diff need no
// callback).
func (o *OnlineDoM) MarshalBinary() ([]byte, error) {
	p := make([]byte, 0, 36+16*len(o.sum1))
	p = binary.LittleEndian.AppendUint64(p, uint64(o.count))
	p = binary.LittleEndian.AppendUint64(p, uint64(o.c1))
	p = binary.LittleEndian.AppendUint64(p, uint64(o.c0))
	p = binary.LittleEndian.AppendUint64(p, uint64(o.base))
	p = binary.LittleEndian.AppendUint32(p, uint32(len(o.sum1)))
	p = appendFloats(p, o.sum1)
	p = appendFloats(p, o.sum0)
	return EncodeFrame(KindOnlineDoM, p), nil
}

// UnmarshalBinary restores the difference-of-means accumulator with a
// nil partition callback (see MarshalBinary).
func (o *OnlineDoM) UnmarshalBinary(data []byte) error {
	payload, err := DecodeFrame(data, KindOnlineDoM)
	if err != nil {
		return err
	}
	r := &payloadReader{b: payload}
	count := r.uint64("trace count")
	c1 := r.uint64("class-1 count")
	c0 := r.uint64("class-0 count")
	base := int64(r.uint64("base index"))
	l := r.uint32("sample length")
	sum1 := r.floats(int(l), "class-1 sums")
	sum0 := r.floats(int(l), "class-0 sums")
	if err := r.done(); err != nil {
		return err
	}
	if err := countLen(count, l); err != nil {
		return err
	}
	if c1+c0 != count || c1 > count || c0 > count {
		return fmt.Errorf("%w: class counts %d+%d disagree with trace count %d", ErrCodec, c1, c0, count)
	}
	if base < math.MinInt32 || base > math.MaxInt32 {
		return fmt.Errorf("%w: implausible base index %d", ErrCodec, base)
	}
	o.part = nil
	o.count = int(count)
	o.c1, o.c0 = int(c1), int(c0)
	o.base = int(base)
	o.sum1, o.sum0 = sum1, sum0
	return nil
}

// SetPartition rebinds the partition callback — required before a
// deserialized accumulator (whose callback is nil, classifying
// everything as class 0) consumes further traces. The callback sees
// arrival indices continuing from base + N().
func (o *OnlineDoM) SetPartition(part func(idx int, samples []float64) bool) { o.part = part }

// MarshalBinary serializes the correlation accumulator.
func (o *OnlineCPA) MarshalBinary() ([]byte, error) {
	p := make([]byte, 0, 28+24*len(o.sx))
	p = binary.LittleEndian.AppendUint64(p, uint64(o.n))
	p = binary.LittleEndian.AppendUint64(p, math.Float64bits(o.sh))
	p = binary.LittleEndian.AppendUint64(p, math.Float64bits(o.shh))
	p = binary.LittleEndian.AppendUint32(p, uint32(len(o.sx)))
	p = appendFloats(p, o.sx)
	p = appendFloats(p, o.sxx)
	p = appendFloats(p, o.shx)
	return EncodeFrame(KindOnlineCPA, p), nil
}

// UnmarshalBinary restores the correlation accumulator.
func (o *OnlineCPA) UnmarshalBinary(data []byte) error {
	payload, err := DecodeFrame(data, KindOnlineCPA)
	if err != nil {
		return err
	}
	r := &payloadReader{b: payload}
	n := r.uint64("pair count")
	sh := r.float64("hypothesis sum")
	shh := r.float64("hypothesis square sum")
	l := r.uint32("sample length")
	sx := r.floats(int(l), "sample sums")
	sxx := r.floats(int(l), "sample square sums")
	shx := r.floats(int(l), "cross sums")
	if err := r.done(); err != nil {
		return err
	}
	if err := countLen(n, l); err != nil {
		return err
	}
	o.n = int(n)
	o.sh, o.shh = sh, shh
	o.sx, o.sxx, o.shx = sx, sxx, shx
	return nil
}

// MarshalBinary serializes a retained trace set — the durable form of
// the multi-pass campaigns (CPA keeps every trace). Pooled buffers are
// copied out; the encoding owns its memory.
func (s *Set) MarshalBinary() ([]byte, error) {
	size := 4
	for _, tr := range s.Traces {
		size += 16 + 8*len(tr.Samples) + 4*len(tr.Iter)
	}
	p := make([]byte, 0, size)
	p = binary.LittleEndian.AppendUint32(p, uint32(len(s.Traces)))
	for _, tr := range s.Traces {
		p = binary.LittleEndian.AppendUint64(p, uint64(int64(tr.StartCycle)))
		p = binary.LittleEndian.AppendUint32(p, uint32(len(tr.Samples)))
		p = appendFloats(p, tr.Samples)
		p = binary.LittleEndian.AppendUint32(p, uint32(len(tr.Iter)))
		for _, it := range tr.Iter {
			p = binary.LittleEndian.AppendUint32(p, uint32(it))
		}
	}
	return EncodeFrame(KindSet, p), nil
}

// UnmarshalBinary restores a trace set from MarshalBinary output. The
// restored traces own unpooled buffers; releasing them simply donates
// the memory to the pool.
func (s *Set) UnmarshalBinary(data []byte) error {
	payload, err := DecodeFrame(data, KindSet)
	if err != nil {
		return err
	}
	r := &payloadReader{b: payload}
	n := r.uint32("trace count")
	if int(n) < 0 {
		return fmt.Errorf("%w: implausible trace count %d", ErrCodec, n)
	}
	traces := []Trace{}
	for i := 0; i < int(n) && r.err == nil; i++ {
		start := int64(r.uint64("start cycle"))
		ns := r.uint32("sample length")
		samples := r.floats(int(ns), "samples")
		ni := r.uint32("iteration length")
		iter := r.int32s(int(ni), "iterations")
		if r.err != nil {
			break
		}
		if start < math.MinInt32 || start > math.MaxInt32 {
			return fmt.Errorf("%w: implausible start cycle %d", ErrCodec, start)
		}
		traces = append(traces, Trace{Samples: samples, Iter: iter, StartCycle: int(start)})
	}
	if err := r.done(); err != nil {
		return err
	}
	s.Traces = traces
	return nil
}
