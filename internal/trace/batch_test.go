package trace

import (
	"testing"

	"medsec/internal/coproc"
	"medsec/internal/ec"
	"medsec/internal/modn"
	"medsec/internal/power"
)

// runCollector executes a fixed windowed acquisition and returns the
// recorded trace. batch selects the delivery path (per-cycle Probe vs
// per-instruction BatchProbe); everything else — seeds, window, noise
// — is identical across the two.
func runCollector(t *testing.T, batch bool, noiseSigma float64) Trace {
	t.Helper()
	curve := ec.K163()
	prog := coproc.BuildLadderProgram(coproc.ProgramOptions{RPC: false})
	cfg := power.ProtectedChip(77)
	cfg.NoiseSigma = noiseSigma
	model := power.NewModel(cfg)
	col := NewCollector(model, 150, 900)
	cpu := coproc.NewCPU(coproc.DefaultTiming())
	if batch {
		cpu.Batch = col.BatchProbe()
	} else {
		cpu.Probe = col.Probe()
	}
	cpu.SetOperandConstants(curve.Gx, curve.B, curve.Gy)
	cpu.MaxCycles = 2000
	if _, err := cpu.Run(prog, modn.FromUint64(0xf00d)); err != coproc.ErrStopped {
		t.Fatalf("expected early stop, got %v", err)
	}
	return col.Take()
}

// TestBatchCollectorBitIdentical pins the batch acquisition contract:
// the recorded trace — including the noise draws consumed by cycles
// OUTSIDE the window, which keep the noise stream aligned — must be
// bit-identical to the per-cycle collector's.
func TestBatchCollectorBitIdentical(t *testing.T) {
	for _, sigma := range []float64{0, 0.03} {
		want := runCollector(t, false, sigma)
		got := runCollector(t, true, sigma)
		if got.StartCycle != want.StartCycle {
			t.Fatalf("sigma=%v: StartCycle %d != %d", sigma, got.StartCycle, want.StartCycle)
		}
		if len(got.Samples) != len(want.Samples) || len(got.Iter) != len(want.Iter) {
			t.Fatalf("sigma=%v: shape (%d,%d) != (%d,%d)", sigma,
				len(got.Samples), len(got.Iter), len(want.Samples), len(want.Iter))
		}
		for i := range want.Samples {
			if got.Samples[i] != want.Samples[i] {
				t.Fatalf("sigma=%v: sample %d: batch %.18g != probe %.18g", sigma, i, got.Samples[i], want.Samples[i])
			}
			if got.Iter[i] != want.Iter[i] {
				t.Fatalf("sigma=%v: iter annotation %d differs", sigma, i)
			}
		}
	}
}

// TestReleaseRecyclesBuffers pins the pooling contract: after a
// Release, a Begin-acquired trace reuses capacity instead of
// allocating, and the released header is cleared.
func TestReleaseRecyclesBuffers(t *testing.T) {
	tr := runCollector(t, true, 0)
	if len(tr.Samples) == 0 {
		t.Fatal("empty acquisition")
	}
	tr.Release()
	if tr.Samples != nil || tr.Iter != nil {
		t.Fatal("Release did not clear the trace header")
	}
	// A full Get/fill/Release cycle in steady state should cost at most
	// the two small pool-header boxes sync.Pool.Put needs — no sample
	// storage allocation.
	model := power.NewModel(power.ProtectedChip(1))
	col := NewCollector(model, 0, 0)
	probe := col.BatchProbe()
	evs := make([]coproc.CycleEvent, 64)
	for i := range evs {
		evs[i].Cycle = i
	}
	park := col.Take()
	park.Release() // park the construction-time buffers
	allocs := testing.AllocsPerRun(50, func() {
		col.Begin()
		probe(evs)
		tr := col.Take()
		tr.Release()
	})
	if allocs > 4 {
		t.Fatalf("steady-state collect/release allocates %.1f objects per trace, want <= 4", allocs)
	}
}
