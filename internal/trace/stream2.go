package trace

import "math"

// Second-order streaming statistics.
//
// A first-order-masked implementation carries every sensitive value v
// as two shares (v ⊕ m, m) with m fresh-uniform, so the *mean* of any
// single sample is key-independent and first-order TVLA goes flat. The
// key dependence survives in the second central moment: at a masked
// register writeback the summed two-share activity S satisfies
// Var(S) = f(HD(old,new)) — the variance, not the mean, leaks. The
// univariate second-order attack therefore preprocesses each sample
// into its centered product z = (x−μ)·(x−μ) and runs the first-order
// statistic on z. Doing that exactly in one streaming pass requires
// central moments up to order four, which is what OnlineMoments
// maintains (Pébay's single-pass update and pairwise merge — the
// degree-4 generalization of Welford/Chan used by OnlineStats).
//
// OnlineWelch2 is then the Schneider–Moradi second-order t-test: with
// CM2 = M2/n and CM4 = M4/n per population,
//
//	t2 = (CM2_A − CM2_B) / sqrt((CM4_A − CM2_A²)/nA + (CM4_B − CM2_B²)/nB)
//
// i.e. Welch's t on the centered-squared traces, computed from moment
// state alone — no trace retention, same O(window) footprint and same
// fixed-order merge determinism contract as the first-order
// accumulators.

// OnlineMoments maintains per-sample central moments M2, M3, M4 (plus
// mean and count) over a stream of equal-length traces — Pébay's
// one-pass update, vectorized over the sample axis.
type OnlineMoments struct {
	n    int
	mean []float64
	m2   []float64
	m3   []float64
	m4   []float64
}

// NewOnlineMoments returns an empty accumulator; the sample length is
// fixed by the first Add.
func NewOnlineMoments() *OnlineMoments { return &OnlineMoments{} }

// Add consumes one trace's samples.
func (o *OnlineMoments) Add(samples []float64) error {
	if o.mean == nil {
		if len(samples) == 0 {
			return ErrEmptySet
		}
		o.mean = make([]float64, len(samples))
		o.m2 = make([]float64, len(samples))
		o.m3 = make([]float64, len(samples))
		o.m4 = make([]float64, len(samples))
	}
	if len(samples) != len(o.mean) {
		return ErrSampleMismatch
	}
	n1 := float64(o.n)
	o.n++
	n := float64(o.n)
	for i, v := range samples {
		d := v - o.mean[i]
		dn := d / n
		dn2 := dn * dn
		t1 := d * dn * n1
		o.mean[i] += dn
		o.m4[i] += t1*dn2*(n*n-3*n+3) + 6*dn2*o.m2[i] - 4*dn*o.m3[i]
		o.m3[i] += t1*dn*(n-2) - 3*dn*o.m2[i]
		o.m2[i] += t1
	}
	return nil
}

// Merge folds another accumulator into o — Pébay's pairwise moment
// combination, the degree-4 analogue of OnlineStats.Merge. After the
// merge, o describes the union of the two streams to floating-point
// rounding; other is not modified. Merging an empty accumulator is a
// no-op in either direction. Shard-parallel campaigns must merge in a
// fixed shard order for bit-identical results, exactly like the
// first-order accumulators.
func (o *OnlineMoments) Merge(other *OnlineMoments) error {
	if other == nil || other.n == 0 {
		return nil
	}
	if o.n == 0 {
		o.n = other.n
		o.mean = append(o.mean[:0], other.mean...)
		o.m2 = append(o.m2[:0], other.m2...)
		o.m3 = append(o.m3[:0], other.m3...)
		o.m4 = append(o.m4[:0], other.m4...)
		return nil
	}
	if len(other.mean) != len(o.mean) {
		return ErrSampleMismatch
	}
	na, nb := float64(o.n), float64(other.n)
	n := na + nb
	for i := range o.mean {
		d := other.mean[i] - o.mean[i]
		d2 := d * d
		m2a, m2b := o.m2[i], other.m2[i]
		m3a, m3b := o.m3[i], other.m3[i]
		o.m4[i] += other.m4[i] +
			d2*d2*na*nb*(na*na-na*nb+nb*nb)/(n*n*n) +
			6*d2*(na*na*m2b+nb*nb*m2a)/(n*n) +
			4*d*(na*m3b-nb*m3a)/n
		o.m3[i] += m3b + d*d2*na*nb*(na-nb)/(n*n) + 3*d*(na*m2b-nb*m2a)/n
		o.mean[i] += d * nb / n
		o.m2[i] += m2b + d2*na*nb/n
	}
	o.n += other.n
	return nil
}

// N returns the number of traces consumed.
func (o *OnlineMoments) N() int { return o.n }

// SampleLen returns the per-trace sample count (0 before the first Add).
func (o *OnlineMoments) SampleLen() int { return len(o.mean) }

// Mean returns a copy of the per-sample running mean.
func (o *OnlineMoments) Mean() ([]float64, error) {
	if o.n == 0 {
		return nil, ErrEmptySet
	}
	return append([]float64(nil), o.mean...), nil
}

// CentralMoment returns a copy of the per-sample central moment of the
// given order (2, 3 or 4), normalized by n (population convention,
// like OnlineStats.Variance).
func (o *OnlineMoments) CentralMoment(order int) ([]float64, error) {
	if o.n == 0 {
		return nil, ErrEmptySet
	}
	var src []float64
	switch order {
	case 2:
		src = o.m2
	case 3:
		src = o.m3
	case 4:
		src = o.m4
	default:
		return nil, ErrEmptySet
	}
	out := make([]float64, len(src))
	inv := 1 / float64(o.n)
	for i, v := range src {
		out[i] = v * inv
	}
	return out, nil
}

// OnlineWelch2 is the streaming second-order (centered-product) TVLA:
// Welch's t-test on the centered-squared traces of two populations,
// computed from degree-4 moment state without retaining either set.
type OnlineWelch2 struct {
	A, B OnlineMoments
}

// NewOnlineWelch2 returns an empty two-population accumulator.
func NewOnlineWelch2() *OnlineWelch2 { return &OnlineWelch2{} }

// AddA consumes one trace of the first population (e.g. fixed key).
func (w *OnlineWelch2) AddA(samples []float64) error { return w.A.Add(samples) }

// AddB consumes one trace of the second population (e.g. random keys).
func (w *OnlineWelch2) AddB(samples []float64) error { return w.B.Add(samples) }

// Merge folds another two-population accumulator into w (population A
// with A, B with B).
func (w *OnlineWelch2) Merge(other *OnlineWelch2) error {
	if other == nil {
		return nil
	}
	if err := w.A.Merge(&other.A); err != nil {
		return err
	}
	return w.B.Merge(&other.B)
}

// T returns the per-sample second-order t-statistic — the mean of each
// population's centered-squared trace is its CM2, the variance is
// CM4 − CM2², and the Welch denominator follows. 0 where the
// denominator vanishes, matching the first-order convention.
func (w *OnlineWelch2) T() ([]float64, error) {
	if w.A.n == 0 || w.B.n == 0 {
		return nil, ErrEmptySet
	}
	if w.A.SampleLen() != w.B.SampleLen() {
		return nil, ErrEmptySet
	}
	na, nb := float64(w.A.n), float64(w.B.n)
	out := make([]float64, w.A.SampleLen())
	for i := range out {
		cm2a := w.A.m2[i] / na
		cm4a := w.A.m4[i] / na
		cm2b := w.B.m2[i] / nb
		cm4b := w.B.m4[i] / nb
		va := cm4a - cm2a*cm2a
		vb := cm4b - cm2b*cm2b
		denom := math.Sqrt(va/na + vb/nb)
		if denom == 0 || math.IsNaN(denom) {
			continue
		}
		out[i] = (cm2a - cm2b) / denom
	}
	return out, nil
}

// MaxT returns the largest |t2| and its sample index ((0, -1) when
// undefined) — the streaming early-stop predicate for second-order
// TVLA campaigns.
func (w *OnlineWelch2) MaxT() (float64, int) {
	ts, err := w.T()
	if err != nil {
		return 0, -1
	}
	return MaxAbs(ts)
}

// CenterSquare preprocesses a retained trace set for the batch
// second-order statistics: given the per-column means over the whole
// set, each trace sample is replaced by its centered product
// (x−μ)·(x−μ). The multi-pass CPA campaigns (which retain their Set
// anyway) use this to turn the first-order Pearson machinery into the
// univariate second-order attack; the streaming TVLA path uses
// OnlineWelch2 instead and never materializes the products.
func CenterSquare(samples, mean []float64) error {
	if len(samples) != len(mean) {
		return ErrSampleMismatch
	}
	for i, v := range samples {
		d := v - mean[i]
		samples[i] = d * d
	}
	return nil
}
