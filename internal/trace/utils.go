package trace

import (
	"errors"
	"math"
)

// Decimate reduces a trace by averaging groups of `factor` samples —
// the scope-side decimation a real acquisition pipeline applies when
// the full sample rate exceeds what the statistics need. Iteration
// labels follow the first sample of each group.
func Decimate(t Trace, factor int) (Trace, error) {
	if factor < 1 {
		return Trace{}, errors.New("trace: decimation factor must be >= 1")
	}
	if factor == 1 {
		return t, nil
	}
	n := len(t.Samples) / factor
	out := Trace{
		Samples:    make([]float64, n),
		Iter:       make([]int32, n),
		StartCycle: t.StartCycle,
	}
	for i := 0; i < n; i++ {
		var s float64
		for j := 0; j < factor; j++ {
			s += t.Samples[i*factor+j]
		}
		out.Samples[i] = s / float64(factor)
		out.Iter[i] = t.Iter[i*factor]
	}
	return out, nil
}

// Shift returns a copy of t delayed by `shift` samples (positive:
// samples move to higher indices; the head is padded with the first
// value). Used to model trigger jitter in alignment tests.
func Shift(t Trace, shift int) Trace {
	n := len(t.Samples)
	out := Trace{
		Samples:    make([]float64, n),
		Iter:       append([]int32(nil), t.Iter...),
		StartCycle: t.StartCycle,
	}
	for i := 0; i < n; i++ {
		j := i - shift
		switch {
		case j < 0:
			out.Samples[i] = t.Samples[0]
		case j >= n:
			out.Samples[i] = t.Samples[n-1]
		default:
			out.Samples[i] = t.Samples[j]
		}
	}
	return out
}

// Align estimates the shift of t relative to ref by maximizing the
// cross-correlation over [-maxShift, +maxShift], and returns the
// re-aligned trace together with the detected shift. Real setups need
// this because scope triggers jitter; the simulator's traces are
// perfectly aligned, which the tests exploit as ground truth.
func Align(ref, t Trace, maxShift int) (Trace, int, error) {
	if len(ref.Samples) != len(t.Samples) || len(ref.Samples) == 0 {
		return Trace{}, 0, errors.New("trace: alignment needs equal-length traces")
	}
	if maxShift < 0 || maxShift >= len(ref.Samples) {
		return Trace{}, 0, errors.New("trace: invalid shift bound")
	}
	// Candidate d means "t is ref delayed by d": t[i+d] ~ ref[i].
	best, bestShift := math.Inf(-1), 0
	for d := -maxShift; d <= maxShift; d++ {
		var c float64
		for i := range ref.Samples {
			j := i + d
			if j < 0 || j >= len(t.Samples) {
				continue
			}
			c += ref.Samples[i] * t.Samples[j]
		}
		if c > best {
			best, bestShift = c, d
		}
	}
	return Shift(t, -bestShift), bestShift, nil
}

// SNR computes the classic side-channel signal-to-noise ratio per
// sample: Var over groups of the group means (signal) divided by the
// mean over groups of the within-group variances (noise). labels
// assigns each trace to a group (e.g. a predicted intermediate value
// class).
func SNR(s *Set, labels []int) ([]float64, error) {
	if err := s.validate(); err != nil {
		return nil, err
	}
	if len(labels) != s.Len() {
		return nil, errors.New("trace: labels length mismatch")
	}
	groups := map[int][]int{}
	for i, l := range labels {
		groups[l] = append(groups[l], i)
	}
	if len(groups) < 2 {
		return nil, errors.New("trace: SNR needs at least two groups")
	}
	n := s.SampleLen()
	out := make([]float64, n)
	for col := 0; col < n; col++ {
		var means []float64
		var noise float64
		for _, idxs := range groups {
			var m, v float64
			for _, ti := range idxs {
				m += s.Traces[ti].Samples[col]
			}
			m /= float64(len(idxs))
			for _, ti := range idxs {
				d := s.Traces[ti].Samples[col] - m
				v += d * d
			}
			v /= float64(len(idxs))
			means = append(means, m)
			noise += v
		}
		noise /= float64(len(groups))
		var gm, gv float64
		for _, m := range means {
			gm += m
		}
		gm /= float64(len(means))
		for _, m := range means {
			d := m - gm
			gv += d * d
		}
		gv /= float64(len(means))
		if noise == 0 {
			if gv == 0 {
				out[col] = 0
			} else {
				out[col] = math.Inf(1)
			}
			continue
		}
		out[col] = gv / noise
	}
	return out, nil
}
