package trace

import (
	"math"
	"math/rand"
	"testing"
)

// batchCentralMoments computes per-sample central moments the naive
// two-pass way — the reference the streaming accumulator must match.
func batchCentralMoments(traces [][]float64, order int) []float64 {
	n := len(traces)
	w := len(traces[0])
	mean := make([]float64, w)
	for _, tr := range traces {
		for i, v := range tr {
			mean[i] += v
		}
	}
	for i := range mean {
		mean[i] /= float64(n)
	}
	out := make([]float64, w)
	for _, tr := range traces {
		for i, v := range tr {
			out[i] += math.Pow(v-mean[i], float64(order))
		}
	}
	for i := range out {
		out[i] /= float64(n)
	}
	return out
}

func randTraces(r *rand.Rand, n, w int) [][]float64 {
	out := make([][]float64, n)
	for i := range out {
		tr := make([]float64, w)
		for j := range tr {
			tr[j] = r.NormFloat64()*3 + 10
		}
		out[i] = tr
	}
	return out
}

func TestOnlineMomentsMatchesBatch(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	traces := randTraces(r, 500, 16)
	o := NewOnlineMoments()
	for _, tr := range traces {
		if err := o.Add(tr); err != nil {
			t.Fatal(err)
		}
	}
	for _, order := range []int{2, 3, 4} {
		want := batchCentralMoments(traces, order)
		got, err := o.CentralMoment(order)
		if err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if math.Abs(got[i]-want[i]) > 1e-9*math.Max(1, math.Abs(want[i])) {
				t.Fatalf("CM%d[%d] = %g, batch %g", order, i, got[i], want[i])
			}
		}
	}
}

func TestOnlineMomentsMergeMatchesSerial(t *testing.T) {
	r := rand.New(rand.NewSource(12))
	traces := randTraces(r, 400, 8)
	serial := NewOnlineMoments()
	for _, tr := range traces {
		if err := serial.Add(tr); err != nil {
			t.Fatal(err)
		}
	}
	// Three unequal shards merged in order.
	bounds := []int{0, 57, 250, len(traces)}
	merged := NewOnlineMoments()
	for s := 0; s < len(bounds)-1; s++ {
		shard := NewOnlineMoments()
		for _, tr := range traces[bounds[s]:bounds[s+1]] {
			if err := shard.Add(tr); err != nil {
				t.Fatal(err)
			}
		}
		if err := merged.Merge(shard); err != nil {
			t.Fatal(err)
		}
	}
	if merged.N() != serial.N() {
		t.Fatalf("merged N %d, serial %d", merged.N(), serial.N())
	}
	for _, order := range []int{2, 3, 4} {
		a, _ := serial.CentralMoment(order)
		b, _ := merged.CentralMoment(order)
		for i := range a {
			if math.Abs(a[i]-b[i]) > 1e-9*math.Max(1, math.Abs(a[i])) {
				t.Fatalf("CM%d[%d]: serial %g merged %g", order, i, a[i], b[i])
			}
		}
	}
}

// TestOnlineWelch2MatchesCenteredSquareWelch pins the second-order
// t-statistic against its definition: preprocess each trace to the
// centered square (per-population mean) and run the batch Welch t.
func TestOnlineWelch2MatchesCenteredSquareWelch(t *testing.T) {
	r := rand.New(rand.NewSource(13))
	ta := randTraces(r, 300, 12)
	tb := randTraces(r, 280, 12)
	// Make population A's variance differ at one column.
	for _, tr := range ta {
		tr[5] = r.NormFloat64()*9 + 10
	}
	w2 := NewOnlineWelch2()
	for _, tr := range ta {
		if err := w2.AddA(tr); err != nil {
			t.Fatal(err)
		}
	}
	for _, tr := range tb {
		if err := w2.AddB(tr); err != nil {
			t.Fatal(err)
		}
	}

	// Reference: batch centered squares, then batch Welch.
	center := func(traces [][]float64) [][]float64 {
		mean := batchCentralMoments(traces, 1) // order-1 central moment is 0; compute mean directly
		mean = make([]float64, len(traces[0]))
		for _, tr := range traces {
			for i, v := range tr {
				mean[i] += v
			}
		}
		for i := range mean {
			mean[i] /= float64(len(traces))
		}
		out := make([][]float64, len(traces))
		for j, tr := range traces {
			z := append([]float64(nil), tr...)
			if err := CenterSquare(z, mean); err != nil {
				t.Fatal(err)
			}
			out[j] = z
		}
		return out
	}
	za, zb := center(ta), center(tb)
	ws := NewOnlineWelch()
	for _, z := range za {
		if err := ws.AddA(z); err != nil {
			t.Fatal(err)
		}
	}
	for _, z := range zb {
		if err := ws.AddB(z); err != nil {
			t.Fatal(err)
		}
	}
	want, err := ws.T()
	if err != nil {
		t.Fatal(err)
	}
	got, err := w2.T()
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-6*math.Max(1, math.Abs(want[i])) {
			t.Fatalf("t2[%d] = %g, centered-square Welch %g", i, got[i], want[i])
		}
	}
	// And the engineered variance gap is detected.
	if m, idx := w2.MaxT(); idx != 5 || math.Abs(m) < 4.5 {
		t.Fatalf("second-order peak at %d (|t|=%g), want column 5 above 4.5", idx, m)
	}
}

func TestOnlineWelch2MergeMatchesSerial(t *testing.T) {
	r := rand.New(rand.NewSource(14))
	ta := randTraces(r, 200, 6)
	tb := randTraces(r, 190, 6)
	serial := NewOnlineWelch2()
	for _, tr := range ta {
		_ = serial.AddA(tr)
	}
	for _, tr := range tb {
		_ = serial.AddB(tr)
	}
	shard1, shard2 := NewOnlineWelch2(), NewOnlineWelch2()
	for i, tr := range ta {
		if i < 80 {
			_ = shard1.AddA(tr)
		} else {
			_ = shard2.AddA(tr)
		}
	}
	for i, tr := range tb {
		if i < 100 {
			_ = shard1.AddB(tr)
		} else {
			_ = shard2.AddB(tr)
		}
	}
	merged := NewOnlineWelch2()
	if err := merged.Merge(shard1); err != nil {
		t.Fatal(err)
	}
	if err := merged.Merge(shard2); err != nil {
		t.Fatal(err)
	}
	a, _ := serial.T()
	b, _ := merged.T()
	for i := range a {
		if math.Abs(a[i]-b[i]) > 1e-9*math.Max(1, math.Abs(a[i])) {
			t.Fatalf("t2[%d]: serial %g merged %g", i, a[i], b[i])
		}
	}
}

func TestOnlineMomentsCodecRoundtrip(t *testing.T) {
	r := rand.New(rand.NewSource(15))
	o := NewOnlineMoments()
	for _, tr := range randTraces(r, 50, 7) {
		if err := o.Add(tr); err != nil {
			t.Fatal(err)
		}
	}
	blob, err := o.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var back OnlineMoments
	if err := back.UnmarshalBinary(blob); err != nil {
		t.Fatal(err)
	}
	if back.n != o.n {
		t.Fatalf("n %d != %d", back.n, o.n)
	}
	for i := range o.mean {
		if back.mean[i] != o.mean[i] || back.m2[i] != o.m2[i] ||
			back.m3[i] != o.m3[i] || back.m4[i] != o.m4[i] {
			t.Fatalf("moment state not bit-identical at column %d", i)
		}
	}
	// Corruption must be detected.
	blob[len(blob)-5] ^= 1
	if err := back.UnmarshalBinary(blob); err == nil {
		t.Fatal("corrupt frame accepted")
	}
}

func TestOnlineWelch2CodecRoundtrip(t *testing.T) {
	r := rand.New(rand.NewSource(16))
	w := NewOnlineWelch2()
	for _, tr := range randTraces(r, 40, 5) {
		_ = w.AddA(tr)
	}
	for _, tr := range randTraces(r, 45, 5) {
		_ = w.AddB(tr)
	}
	blob, err := w.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var back OnlineWelch2
	if err := back.UnmarshalBinary(blob); err != nil {
		t.Fatal(err)
	}
	ta, _ := w.T()
	tback, _ := back.T()
	for i := range ta {
		if ta[i] != tback[i] {
			t.Fatalf("t2[%d] not bit-identical after roundtrip", i)
		}
	}
	// Empty accumulator round-trips too.
	blob2, err := NewOnlineWelch2().MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var empty OnlineWelch2
	if err := empty.UnmarshalBinary(blob2); err != nil {
		t.Fatal(err)
	}
	if empty.A.N() != 0 || empty.B.N() != 0 {
		t.Fatal("empty roundtrip gained traces")
	}
}
