package trace

import (
	"math"
	"testing"
)

// xorshift64 is a tiny deterministic generator for synthetic trace
// sets — no dependency on internal/rng from here.
type xorshift64 uint64

func (x *xorshift64) next() uint64 {
	v := uint64(*x)
	v ^= v << 13
	v ^= v >> 7
	v ^= v << 17
	*x = xorshift64(v)
	return v
}

func (x *xorshift64) float() float64 {
	return float64(x.next()>>11) / float64(1<<53)
}

// randomSet builds an n×m trace set of uniform [0, 1) samples.
func randomSet(x *xorshift64, n, m int) *Set {
	s := &Set{}
	for i := 0; i < n; i++ {
		tr := Trace{Samples: make([]float64, m), Iter: make([]int32, m)}
		for j := range tr.Samples {
			tr.Samples[j] = x.float()
		}
		s.Add(tr)
	}
	return s
}

// constantSet builds an n×m set where every sample equals c.
func constantSet(n, m int, c float64) *Set {
	s := &Set{}
	for i := 0; i < n; i++ {
		tr := Trace{Samples: make([]float64, m), Iter: make([]int32, m)}
		for j := range tr.Samples {
			tr.Samples[j] = c
		}
		s.Add(tr)
	}
	return s
}

const streamTol = 1e-12

func closeSlices(t *testing.T, name string, got, want []float64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: length %d vs %d", name, len(got), len(want))
	}
	for i := range got {
		if math.Abs(got[i]-want[i]) > streamTol {
			t.Fatalf("%s[%d]: streaming %.17g vs batch %.17g (diff %g)",
				name, i, got[i], want[i], got[i]-want[i])
		}
	}
}

// shapes covers the edge cases the satellite task names: n=1, small,
// and moderately sized sets over several window widths.
var shapes = []struct{ n, m int }{
	{1, 1}, {1, 7}, {2, 5}, {3, 1}, {17, 33}, {64, 9},
}

func TestOnlineStatsMatchesBatch(t *testing.T) {
	x := xorshift64(0x1234)
	for _, sh := range shapes {
		s := randomSet(&x, sh.n, sh.m)
		o := NewOnlineStats()
		for _, tr := range s.Traces {
			if err := o.Add(tr.Samples); err != nil {
				t.Fatal(err)
			}
		}
		wantMean, err := s.MeanTrace()
		if err != nil {
			t.Fatal(err)
		}
		_, wantVar, err := s.meanVar()
		if err != nil {
			t.Fatal(err)
		}
		gotMean, err := o.Mean()
		if err != nil {
			t.Fatal(err)
		}
		gotVar, err := o.Variance()
		if err != nil {
			t.Fatal(err)
		}
		closeSlices(t, "mean", gotMean, wantMean)
		closeSlices(t, "variance", gotVar, wantVar)
		if o.N() != sh.n || o.SampleLen() != sh.m {
			t.Fatalf("N/SampleLen = %d/%d, want %d/%d", o.N(), o.SampleLen(), sh.n, sh.m)
		}
	}
}

func TestOnlineStatsConstantSamples(t *testing.T) {
	s := constantSet(5, 4, 3.25)
	o := NewOnlineStats()
	for _, tr := range s.Traces {
		if err := o.Add(tr.Samples); err != nil {
			t.Fatal(err)
		}
	}
	v, err := o.Variance()
	if err != nil {
		t.Fatal(err)
	}
	m, err := o.Mean()
	if err != nil {
		t.Fatal(err)
	}
	for i := range v {
		if v[i] != 0 {
			t.Fatalf("constant set variance[%d] = %g, want 0", i, v[i])
		}
		if m[i] != 3.25 {
			t.Fatalf("constant set mean[%d] = %g, want 3.25", i, m[i])
		}
	}
}

func TestOnlineWelchMatchesBatch(t *testing.T) {
	x := xorshift64(0xBEEF)
	for _, sh := range shapes {
		a := randomSet(&x, sh.n, sh.m)
		b := randomSet(&x, sh.n+1, sh.m)
		w := NewOnlineWelch()
		for _, tr := range a.Traces {
			if err := w.AddA(tr.Samples); err != nil {
				t.Fatal(err)
			}
		}
		for _, tr := range b.Traces {
			if err := w.AddB(tr.Samples); err != nil {
				t.Fatal(err)
			}
		}
		want, err := WelchT(a, b)
		if err != nil {
			t.Fatal(err)
		}
		got, err := w.T()
		if err != nil {
			t.Fatal(err)
		}
		closeSlices(t, "welch-t", got, want)
	}
}

func TestOnlineWelchConstantPopulations(t *testing.T) {
	// Identical constant populations: zero denominator => t = 0, same
	// as the batch convention.
	a := constantSet(4, 3, 1.5)
	b := constantSet(6, 3, 1.5)
	w := NewOnlineWelch()
	for _, tr := range a.Traces {
		_ = w.AddA(tr.Samples)
	}
	for _, tr := range b.Traces {
		_ = w.AddB(tr.Samples)
	}
	want, err := WelchT(a, b)
	if err != nil {
		t.Fatal(err)
	}
	got, err := w.T()
	if err != nil {
		t.Fatal(err)
	}
	closeSlices(t, "welch-const", got, want)
	if mx, idx := w.MaxT(); mx != 0 || idx != -1 {
		t.Fatalf("MaxT on all-zero t-curve = (%g, %d), want (0, -1)", mx, idx)
	}
}

func TestOnlineDoMMatchesBatch(t *testing.T) {
	x := xorshift64(0xD00D)
	for _, sh := range shapes {
		if sh.n < 2 {
			continue // batch DiffOfMeans needs both classes populated
		}
		s := randomSet(&x, sh.n, sh.m)
		part := make([]bool, sh.n)
		for i := range part {
			part[i] = i%2 == 0
		}
		o := NewOnlineDoM(func(idx int, _ []float64) bool { return part[idx] })
		for _, tr := range s.Traces {
			if err := o.Add(tr.Samples); err != nil {
				t.Fatal(err)
			}
		}
		want, err := DiffOfMeans(s, part)
		if err != nil {
			t.Fatal(err)
		}
		got, err := o.Diff()
		if err != nil {
			t.Fatal(err)
		}
		closeSlices(t, "dom", got, want)
	}
}

func TestOnlineDoMDegeneratePartition(t *testing.T) {
	o := NewOnlineDoM(func(int, []float64) bool { return true })
	_ = o.Add([]float64{1, 2})
	if _, err := o.Diff(); err == nil {
		t.Fatal("single-class partition accepted")
	}
}

func TestOnlineCPAMatchesBatch(t *testing.T) {
	x := xorshift64(0xCAFE)
	for _, sh := range shapes {
		s := randomSet(&x, sh.n, sh.m)
		h := make([]float64, sh.n)
		for i := range h {
			h[i] = math.Floor(x.float() * 64) // integer-ish hypotheses, like 0->1 counts
		}
		o := NewOnlineCPA()
		for i, tr := range s.Traces {
			if err := o.Add(h[i], tr.Samples); err != nil {
				t.Fatal(err)
			}
		}
		want, err := Pearson(s, h)
		if err != nil {
			t.Fatal(err)
		}
		got, err := o.Corr()
		if err != nil {
			t.Fatal(err)
		}
		closeSlices(t, "cpa-corr", got, want)
		for _, col := range []int{0, sh.m / 2, sh.m - 1} {
			wantAt, err := PearsonAt(s, h, col)
			if err != nil {
				t.Fatal(err)
			}
			gotAt, err := o.CorrAt(col)
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(gotAt-wantAt) > streamTol {
				t.Fatalf("CorrAt(%d): %.17g vs %.17g", col, gotAt, wantAt)
			}
		}
	}
}

func TestOnlineCPAEdgeCases(t *testing.T) {
	// n = 1: zero hypothesis variance => rho = 0, like the batch path.
	o := NewOnlineCPA()
	if err := o.Add(3, []float64{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	got, err := o.Corr()
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if v != 0 {
			t.Fatalf("n=1 rho[%d] = %g, want 0", i, v)
		}
	}
	// Constant samples: zero trace variance => rho = 0.
	o2 := NewOnlineCPA()
	_ = o2.Add(1, []float64{5, 5})
	_ = o2.Add(2, []float64{5, 5})
	r, err := o2.CorrAt(0)
	if err != nil {
		t.Fatal(err)
	}
	if r != 0 {
		t.Fatalf("constant-sample rho = %g, want 0", r)
	}
	// Ragged stream rejected.
	if err := o2.Add(3, []float64{1}); err != ErrSampleMismatch {
		t.Fatalf("ragged add: err = %v, want ErrSampleMismatch", err)
	}
	// Empty accumulators report ErrEmptySet.
	if _, err := NewOnlineCPA().Corr(); err != ErrEmptySet {
		t.Fatalf("empty OnlineCPA: %v", err)
	}
	if _, err := NewOnlineStats().Mean(); err != ErrEmptySet {
		t.Fatalf("empty OnlineStats: %v", err)
	}
	if _, err := NewOnlineWelch().T(); err != ErrEmptySet {
		t.Fatalf("empty OnlineWelch: %v", err)
	}
}

func TestSetPrefixViewAliasingAndSafety(t *testing.T) {
	x := xorshift64(7)
	s := randomSet(&x, 4, 3)
	p := s.Prefix(2)
	if p.Len() != 2 {
		t.Fatalf("Prefix(2).Len() = %d", p.Len())
	}
	// The view aliases the parent's samples (documented contract).
	p.Traces[0].Samples[0] = 42
	if s.Traces[0].Samples[0] != 42 {
		t.Fatal("Prefix must alias the parent's sample storage")
	}
	// But Add on the view must NOT clobber the parent's trace 2 — the
	// capacity clamp forces reallocation.
	before := s.Traces[2].Samples[0]
	p.Add(Trace{Samples: []float64{-1, -1, -1}})
	if s.Traces[2].Samples[0] != before {
		t.Fatal("Add on a Prefix view clobbered the parent set")
	}
	// Bounds are clamped.
	if s.Prefix(99).Len() != 4 || s.Prefix(-1).Len() != 0 {
		t.Fatal("Prefix bounds not clamped")
	}
	// Prefix statistics match a manually rebuilt subset.
	sub := &Set{Traces: append([]Trace(nil), s.Traces[:3]...)}
	wm, err := sub.MeanTrace()
	if err != nil {
		t.Fatal(err)
	}
	gm, err := s.Prefix(3).MeanTrace()
	if err != nil {
		t.Fatal(err)
	}
	closeSlices(t, "prefix-mean", gm, wm)
}
