package trace

import (
	"math"
	"testing"

	"medsec/internal/coproc"
	"medsec/internal/ec"
	"medsec/internal/modn"
	"medsec/internal/power"
	"medsec/internal/rng"
)

func synthSet(nTraces, nSamples int, gen func(t, s int) float64) *Set {
	set := &Set{}
	for i := 0; i < nTraces; i++ {
		tr := Trace{Samples: make([]float64, nSamples), Iter: make([]int32, nSamples)}
		for j := 0; j < nSamples; j++ {
			tr.Samples[j] = gen(i, j)
		}
		set.Add(tr)
	}
	return set
}

func TestMeanTrace(t *testing.T) {
	set := synthSet(4, 3, func(ti, si int) float64 { return float64(ti) })
	mean, err := set.MeanTrace()
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range mean {
		if m != 1.5 {
			t.Fatalf("mean %v, want 1.5", m)
		}
	}
}

func TestValidation(t *testing.T) {
	empty := &Set{}
	if _, err := empty.MeanTrace(); err != ErrEmptySet {
		t.Fatal("empty set accepted")
	}
	ragged := &Set{}
	ragged.Add(Trace{Samples: []float64{1, 2}})
	ragged.Add(Trace{Samples: []float64{1}})
	if _, err := ragged.MeanTrace(); err != ErrEmptySet {
		t.Fatal("ragged set accepted")
	}
}

func TestWelchTDetectsMeanShift(t *testing.T) {
	g := rng.NewGaussian(1)
	a := synthSet(500, 4, func(ti, si int) float64 {
		v := g.Sample()
		if si == 2 {
			v += 1.0 // leak at sample 2
		}
		return v
	})
	b := synthSet(500, 4, func(ti, si int) float64 { return g.Sample() })
	ts, err := WelchT(a, b)
	if err != nil {
		t.Fatal(err)
	}
	maxT, idx := MaxAbs(ts)
	if idx != 2 {
		t.Fatalf("leak located at sample %d, want 2", idx)
	}
	if maxT < 4.5 {
		t.Fatalf("t = %.2f fails to flag a full-sigma shift", maxT)
	}
	for i, v := range ts {
		if i != 2 && math.Abs(v) > 4.5 {
			t.Fatalf("false positive at sample %d: t=%.2f", i, v)
		}
	}
}

func TestWelchTNoLeakStaysBelowThreshold(t *testing.T) {
	g := rng.NewGaussian(2)
	a := synthSet(400, 8, func(ti, si int) float64 { return g.Sample() })
	b := synthSet(400, 8, func(ti, si int) float64 { return g.Sample() })
	ts, err := WelchT(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if maxT, _ := MaxAbs(ts); maxT > 4.5 {
		t.Fatalf("identical distributions flagged: t=%.2f", maxT)
	}
}

func TestDiffOfMeans(t *testing.T) {
	set := synthSet(100, 2, func(ti, si int) float64 {
		if si == 1 && ti%2 == 0 {
			return 2
		}
		return 1
	})
	part := make([]bool, 100)
	for i := range part {
		part[i] = i%2 == 0
	}
	dom, err := DiffOfMeans(set, part)
	if err != nil {
		t.Fatal(err)
	}
	if dom[0] != 0 {
		t.Fatalf("sample 0 diff %v, want 0", dom[0])
	}
	if dom[1] != 1 {
		t.Fatalf("sample 1 diff %v, want 1", dom[1])
	}
	if _, err := DiffOfMeans(set, part[:10]); err == nil {
		t.Fatal("partition length mismatch accepted")
	}
	allTrue := make([]bool, 100)
	for i := range allTrue {
		allTrue[i] = true
	}
	if _, err := DiffOfMeans(set, allTrue); err == nil {
		t.Fatal("degenerate partition accepted")
	}
}

func TestPearsonFindsCorrelatedSample(t *testing.T) {
	g := rng.NewGaussian(3)
	h := make([]float64, 300)
	for i := range h {
		h[i] = float64(i % 7)
	}
	set := synthSet(300, 5, func(ti, si int) float64 {
		if si == 3 {
			return h[ti]*0.5 + 0.1*g.Sample()
		}
		return g.Sample()
	})
	rho, err := Pearson(set, h)
	if err != nil {
		t.Fatal(err)
	}
	best, idx := MaxAbs(rho)
	if idx != 3 {
		t.Fatalf("correlation peak at %d, want 3", idx)
	}
	if best < 0.9 {
		t.Fatalf("peak correlation %.3f too weak", best)
	}
	if _, err := Pearson(set, h[:5]); err == nil {
		t.Fatal("hypothesis length mismatch accepted")
	}
}

func TestPearsonConstantInputs(t *testing.T) {
	set := synthSet(10, 2, func(ti, si int) float64 { return 1 })
	h := make([]float64, 10)
	rho, err := Pearson(set, h)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range rho {
		if v != 0 {
			t.Fatal("constant data should give zero correlation, not NaN")
		}
	}
}

func TestCollectorWindowing(t *testing.T) {
	curve := ec.K163()
	prog := coproc.BuildLadderProgram(coproc.ProgramOptions{})
	cfg := power.ProtectedChip(1)
	cfg.NoiseSigma = 0
	model := power.NewModel(cfg)
	col := NewCollector(model, 100, 300)
	cpu := coproc.NewCPU(coproc.DefaultTiming())
	cpu.Probe = col.Probe()
	cpu.SetOperandConstants(curve.Gx, curve.B, curve.Gy)
	cpu.MaxCycles = 1000
	_, err := cpu.Run(prog, modn.FromUint64(0xabcdef))
	if err != coproc.ErrStopped {
		t.Fatalf("expected early stop, got %v", err)
	}
	tr := col.Take()
	if len(tr.Samples) != 200 {
		t.Fatalf("window captured %d samples, want 200", len(tr.Samples))
	}
	if tr.StartCycle != 100 {
		t.Fatalf("StartCycle %d", tr.StartCycle)
	}
	if len(tr.Iter) != len(tr.Samples) {
		t.Fatal("iteration annotation misaligned")
	}
	// Take must reset.
	if again := col.Take(); len(again.Samples) != 0 {
		t.Fatal("Take did not reset the collector")
	}
}

func TestSegmentByIteration(t *testing.T) {
	tr := Trace{
		Samples: make([]float64, 10),
		Iter:    []int32{-1, -1, 5, 5, 5, 4, 4, -1, 3, 3},
	}
	seg := tr.SegmentByIteration()
	if len(seg) != 3 {
		t.Fatalf("found %d segments, want 3", len(seg))
	}
	if seg[5] != [2]int{2, 5} || seg[4] != [2]int{5, 7} || seg[3] != [2]int{8, 10} {
		t.Fatalf("segments wrong: %v", seg)
	}
}

func TestFullPMTraceHasAllIterations(t *testing.T) {
	curve := ec.K163()
	prog := coproc.BuildLadderProgram(coproc.ProgramOptions{})
	cfg := power.ProtectedChip(2)
	cfg.NoiseSigma = 0
	model := power.NewModel(cfg)
	col := NewCollector(model, 0, 0)
	cpu := coproc.NewCPU(coproc.DefaultTiming())
	cpu.Probe = col.Probe()
	cpu.SetOperandConstants(curve.Gx, curve.B, curve.Gy)
	if _, err := cpu.Run(prog, modn.FromUint64(0x1234)); err != nil {
		t.Fatal(err)
	}
	tr := col.Take()
	seg := tr.SegmentByIteration()
	if len(seg) != coproc.LadderIterations {
		t.Fatalf("trace contains %d iterations, want %d", len(seg), coproc.LadderIterations)
	}
	// All iteration segments have the same length (constant time).
	var segLen int
	for _, r := range seg {
		l := r[1] - r[0]
		if segLen == 0 {
			segLen = l
		}
		if l != segLen {
			t.Fatalf("iteration segments differ in length: %d vs %d", l, segLen)
		}
	}
}

func TestHelpers(t *testing.T) {
	if m := Mean([]float64{1, 2, 3}); m != 2 {
		t.Fatalf("Mean = %v", m)
	}
	if Mean(nil) != 0 || StdDev(nil) != 0 {
		t.Fatal("empty-input helpers should return 0")
	}
	if sd := StdDev([]float64{2, 2, 2}); sd != 0 {
		t.Fatalf("StdDev of constant = %v", sd)
	}
	if v, i := MaxAbs([]float64{1, -5, 3}); v != 5 || i != 1 {
		t.Fatalf("MaxAbs = (%v, %d)", v, i)
	}
	if v, i := MaxAbs(nil); v != 0 || i != -1 {
		t.Fatal("MaxAbs(nil) wrong")
	}
}
