package trace

import (
	"math"
	"testing"

	"medsec/internal/rng"
)

func TestDecimate(t *testing.T) {
	tr := Trace{
		Samples: []float64{1, 3, 5, 7, 9, 11, 2},
		Iter:    []int32{0, 0, 1, 1, 2, 2, 3},
	}
	out, err := Decimate(tr, 2)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{2, 6, 10}
	if len(out.Samples) != 3 {
		t.Fatalf("got %d samples", len(out.Samples))
	}
	for i, v := range want {
		if out.Samples[i] != v {
			t.Fatalf("sample %d = %v, want %v", i, out.Samples[i], v)
		}
	}
	if out.Iter[0] != 0 || out.Iter[1] != 1 || out.Iter[2] != 2 {
		t.Fatal("iteration labels wrong")
	}
	// Factor 1 is identity; factor 0 rejected.
	if same, _ := Decimate(tr, 1); len(same.Samples) != len(tr.Samples) {
		t.Fatal("factor 1 not identity")
	}
	if _, err := Decimate(tr, 0); err == nil {
		t.Fatal("factor 0 accepted")
	}
}

func TestShiftAndAlign(t *testing.T) {
	g := rng.NewGaussian(1)
	n := 400
	ref := Trace{Samples: make([]float64, n), Iter: make([]int32, n)}
	for i := range ref.Samples {
		ref.Samples[i] = g.Sample()
	}
	// A distinctive burst so correlation has something to lock onto.
	for i := 100; i < 120; i++ {
		ref.Samples[i] += 8
	}
	for _, trueShift := range []int{-7, -1, 0, 3, 12} {
		shifted := Shift(ref, trueShift)
		aligned, detected, err := Align(ref, shifted, 20)
		if err != nil {
			t.Fatal(err)
		}
		if detected != trueShift {
			t.Fatalf("detected shift %d, want %d", detected, trueShift)
		}
		// After alignment the burst region must match exactly
		// (interior samples are unaffected by edge padding).
		for i := 150; i < 250; i++ {
			if math.Abs(aligned.Samples[i]-ref.Samples[i]) > 1e-12 {
				t.Fatalf("alignment failed at %d for shift %d", i, trueShift)
			}
		}
	}
	// Validation.
	if _, _, err := Align(ref, Trace{Samples: []float64{1}}, 5); err == nil {
		t.Fatal("length mismatch accepted")
	}
	if _, _, err := Align(ref, ref, n+1); err == nil {
		t.Fatal("excessive shift bound accepted")
	}
}

func TestSNRLocatesSignal(t *testing.T) {
	g := rng.NewGaussian(2)
	set := &Set{}
	labels := make([]int, 600)
	for i := 0; i < 600; i++ {
		label := i % 3
		labels[i] = label
		tr := Trace{Samples: make([]float64, 5)}
		for j := range tr.Samples {
			tr.Samples[j] = g.Sample()
		}
		tr.Samples[2] += float64(label) * 2 // signal at sample 2
		set.Add(tr)
	}
	snr, err := SNR(set, labels)
	if err != nil {
		t.Fatal(err)
	}
	best, idx := MaxAbs(snr)
	if idx != 2 {
		t.Fatalf("SNR peak at sample %d, want 2", idx)
	}
	if best < 1 {
		t.Fatalf("peak SNR %.2f too low for a 2-sigma signal", best)
	}
	for j, v := range snr {
		if j != 2 && v > 0.2 {
			t.Fatalf("noise-only sample %d has SNR %.2f", j, v)
		}
	}
}

func TestSNRValidation(t *testing.T) {
	set := &Set{}
	set.Add(Trace{Samples: []float64{1}})
	set.Add(Trace{Samples: []float64{2}})
	if _, err := SNR(set, []int{0}); err == nil {
		t.Fatal("label length mismatch accepted")
	}
	if _, err := SNR(set, []int{0, 0}); err == nil {
		t.Fatal("single group accepted")
	}
	// Zero noise, nonzero signal: +Inf.
	snr, err := SNR(set, []int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(snr[0], 1) {
		t.Fatalf("noise-free distinct groups should be +Inf, got %v", snr[0])
	}
}
