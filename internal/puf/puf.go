// Package puf simulates a Physically Unclonable Function — one of the
// non-algorithmic primitives the paper's protocol level lists
// ("Random Number Generators (RNG), secure storage, or Physically
// Unclonable Functions (PUFs)") — and a fuzzy extractor that turns its
// noisy fingerprint into a stable AES key, so an implant can avoid
// storing its long-term secret in attackable non-volatile memory.
//
// The model is an SRAM PUF: each cell has a fixed manufacturing bias;
// a power-up readout thresholds bias plus Gaussian noise, so re-reads
// of the same device differ in a few percent of the bits
// (intra-distance) while different devices differ in about half
// (inter-distance). The fuzzy extractor is the classic code-offset
// construction with a repetition code and a SHA-1 based key
// derivation.
package puf

import (
	"errors"

	"medsec/internal/lightcrypto"
	"medsec/internal/rng"
)

// SRAMPUF is one simulated device fingerprint.
type SRAMPUF struct {
	bias []float64
	// Noise is the per-readout Gaussian noise sigma relative to the
	// bias spread; ~0.12 gives the 3-6% intra-distance typical of
	// real SRAM.
	Noise float64
	reads *rng.Gaussian
}

// New creates a device with the given number of cells. Distinct seeds
// are distinct physical devices.
func New(cells int, deviceSeed uint64) *SRAMPUF {
	g := rng.NewGaussian(deviceSeed)
	bias := make([]float64, cells)
	for i := range bias {
		bias[i] = g.Sample()
	}
	return &SRAMPUF{
		bias:  bias,
		Noise: 0.12,
		reads: rng.NewGaussian(deviceSeed ^ 0x5bf03635),
	}
}

// Cells returns the fingerprint width in bits.
func (p *SRAMPUF) Cells() int { return len(p.bias) }

// Read performs one power-up readout: bit i = sign(bias_i + noise).
func (p *SRAMPUF) Read() []byte {
	out := make([]byte, (len(p.bias)+7)/8)
	for i, b := range p.bias {
		v := b + p.Noise*p.reads.Sample()
		if v > 0 {
			out[i/8] |= 1 << (uint(i) & 7)
		}
	}
	return out
}

// HammingFraction returns the fraction of differing bits between two
// equal-length readouts.
func HammingFraction(a, b []byte) float64 {
	if len(a) != len(b) {
		return 1
	}
	bits, diff := 0, 0
	for i := range a {
		x := a[i] ^ b[i]
		for ; x != 0; x &= x - 1 {
			diff++
		}
		bits += 8
	}
	return float64(diff) / float64(bits)
}

// Repetition is the error-correcting repetition factor of the fuzzy
// extractor. With 15x repetition and ~5% bit noise, the majority vote
// fails per key bit with probability < 1e-7.
const Repetition = 15

// KeyBits is the extracted key length.
const KeyBits = 128

// CellsNeeded is the fingerprint width the extractor consumes.
const CellsNeeded = KeyBits * Repetition

// Enrollment is the public helper data produced at manufacturing.
type Enrollment struct {
	// Helper is the code-offset: codeword XOR reference-readout. It
	// is public; an attacker without the PUF learns nothing about the
	// key from it (the codeword is as random as the readout).
	Helper []byte
}

// Enroll derives a key from the device and emits helper data. Called
// once, in the factory.
func Enroll(p *SRAMPUF, keySeed uint64) ([16]byte, *Enrollment, error) {
	if p.Cells() < CellsNeeded {
		return [16]byte{}, nil, errors.New("puf: fingerprint too small for the extractor")
	}
	// Random key bits (the enrolled secret).
	d := rng.NewDRBG(keySeed)
	keyBits := make([]byte, KeyBits/8)
	d.Read(keyBits)
	// Codeword: each key bit repeated Repetition times.
	codeword := make([]byte, (CellsNeeded+7)/8)
	for i := 0; i < KeyBits; i++ {
		bit := keyBits[i/8] >> (uint(i) & 7) & 1
		for j := 0; j < Repetition; j++ {
			pos := i*Repetition + j
			codeword[pos/8] |= bit << (uint(pos) & 7)
		}
	}
	ref := p.Read()
	helper := make([]byte, len(codeword))
	for i := range helper {
		helper[i] = codeword[i] ^ ref[i]
	}
	return deriveKey(keyBits), &Enrollment{Helper: helper}, nil
}

// Reconstruct re-derives the key from a fresh noisy readout plus the
// public helper data. Called at every power-up in the field.
func Reconstruct(p *SRAMPUF, e *Enrollment) ([16]byte, error) {
	if p.Cells() < CellsNeeded {
		return [16]byte{}, errors.New("puf: fingerprint too small")
	}
	if len(e.Helper) < (CellsNeeded+7)/8 {
		return [16]byte{}, errors.New("puf: malformed helper data")
	}
	read := p.Read()
	keyBits := make([]byte, KeyBits/8)
	for i := 0; i < KeyBits; i++ {
		ones := 0
		for j := 0; j < Repetition; j++ {
			pos := i*Repetition + j
			cw := (e.Helper[pos/8] ^ read[pos/8]) >> (uint(pos) & 7) & 1
			ones += int(cw)
		}
		if ones > Repetition/2 {
			keyBits[i/8] |= 1 << (uint(i) & 7)
		}
	}
	return deriveKey(keyBits), nil
}

func deriveKey(bits []byte) [16]byte {
	digest := lightcrypto.SHA1Sum(bits)
	var key [16]byte
	copy(key[:], digest[:16])
	return key
}
