package puf

import "testing"

func TestIntraAndInterDistance(t *testing.T) {
	devA := New(CellsNeeded, 1)
	devB := New(CellsNeeded, 2)
	r1 := devA.Read()
	r2 := devA.Read()
	rB := devB.Read()
	intra := HammingFraction(r1, r2)
	inter := HammingFraction(r1, rB)
	// Typical SRAM PUF: a few percent intra, ~50% inter.
	if intra > 0.12 {
		t.Fatalf("intra-distance %.3f too noisy", intra)
	}
	if intra == 0 {
		t.Fatal("re-reads identical; noise model inert")
	}
	if inter < 0.40 || inter > 0.60 {
		t.Fatalf("inter-distance %.3f, want ~0.5", inter)
	}
}

func TestEnrollReconstructStableKey(t *testing.T) {
	dev := New(CellsNeeded, 3)
	key, enr, err := Enroll(dev, 99)
	if err != nil {
		t.Fatal(err)
	}
	// Key reconstruction must succeed across many noisy power-ups.
	for i := 0; i < 50; i++ {
		got, err := Reconstruct(dev, enr)
		if err != nil {
			t.Fatal(err)
		}
		if got != key {
			t.Fatalf("power-up %d reconstructed a different key", i)
		}
	}
}

func TestCloneDeviceCannotReconstruct(t *testing.T) {
	dev := New(CellsNeeded, 4)
	key, enr, err := Enroll(dev, 100)
	if err != nil {
		t.Fatal(err)
	}
	clone := New(CellsNeeded, 5) // different silicon
	got, err := Reconstruct(clone, enr)
	if err != nil {
		t.Fatal(err)
	}
	if got == key {
		t.Fatal("a different device reconstructed the key; PUF is clonable")
	}
}

func TestHelperDataAlonePredictsNothing(t *testing.T) {
	// Two enrollments of the same device with different key seeds give
	// different keys and different helpers — the helper is an offset,
	// not an encryption of the fingerprint.
	dev := New(CellsNeeded, 6)
	k1, h1, err := Enroll(dev, 1)
	if err != nil {
		t.Fatal(err)
	}
	k2, h2, err := Enroll(dev, 2)
	if err != nil {
		t.Fatal(err)
	}
	if k1 == k2 {
		t.Fatal("distinct enrollments produced the same key")
	}
	if HammingFraction(h1.Helper, h2.Helper) < 0.3 {
		t.Fatal("helper data barely changed across enrollments")
	}
}

func TestValidation(t *testing.T) {
	small := New(10, 7)
	if _, _, err := Enroll(small, 1); err == nil {
		t.Fatal("undersized PUF enrolled")
	}
	dev := New(CellsNeeded, 8)
	if _, err := Reconstruct(dev, &Enrollment{Helper: []byte{1, 2}}); err == nil {
		t.Fatal("malformed helper accepted")
	}
	if _, err := Reconstruct(small, &Enrollment{Helper: make([]byte, CellsNeeded/8)}); err == nil {
		t.Fatal("undersized PUF reconstructed")
	}
}

func TestHammingFraction(t *testing.T) {
	if HammingFraction([]byte{0xff}, []byte{0x00}) != 1 {
		t.Fatal("all-different should be 1")
	}
	if HammingFraction([]byte{0xaa}, []byte{0xaa}) != 0 {
		t.Fatal("identical should be 0")
	}
	if HammingFraction([]byte{1}, []byte{1, 2}) != 1 {
		t.Fatal("length mismatch should read as maximal distance")
	}
}
