package area

import (
	"math"
	"testing"
)

func TestECCProcessorAreaMatchesCitedFigure(t *testing.T) {
	// §4: "an ECC core uses about 12k gates [10]" — our model is
	// fitted to that figure at the chip's d = 4.
	g := DefaultGateModel()
	ge := g.ECCProcessorGE(4)
	if math.Abs(ge-12000) > 600 {
		t.Fatalf("ECC processor at d=4: %.0f GE, want ~12 000", ge)
	}
	// SHA-1 must be smaller than ECC, but over half the size of AES's
	// ballpark — "protocol designers tend to believe that hash
	// functions are very cheap in hardware ... no longer true".
	mods := ModuleGateCounts()
	byName := map[string]float64{}
	for _, m := range mods {
		byName[m.Module] = m.GE
	}
	if byName["SHA-1"] != 5527 {
		t.Fatal("SHA-1 must carry the cited 5 527 GE figure")
	}
	if byName["SHA-1"] <= byName["AES-128 (compact)"] {
		t.Fatal("the §4 point requires SHA-1 to be larger than a compact AES")
	}
	if byName["PRESENT-80"] >= byName["AES-128 (compact)"] {
		t.Fatal("PRESENT must undercut compact AES (its whole point)")
	}
	if byName["SHA-1"] >= byName["ECC co-processor (d=4)"] {
		t.Fatal("ECC core must be larger than SHA-1")
	}
}

func TestAreaMonotoneInDigitSize(t *testing.T) {
	g := DefaultGateModel()
	prev := 0.0
	for d := 1; d <= 32; d *= 2 {
		a := g.ECCProcessorGE(d)
		if a <= prev {
			t.Fatalf("area not increasing at d=%d", d)
		}
		prev = a
	}
}

func TestDigitSweepShape(t *testing.T) {
	// E4: latency falls with d, power and area rise with d, energy
	// falls then flattens; the optimum area-energy product under the
	// chip's latency constraint is d = 4 — the paper's design choice.
	rows, err := DigitSweep([]int{1, 2, 4, 8, 16, 32}, 847500, 0.11)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(rows); i++ {
		if rows[i].LatencyS >= rows[i-1].LatencyS {
			t.Fatalf("latency not decreasing at d=%d", rows[i].D)
		}
		if rows[i].PowerW <= rows[i-1].PowerW {
			t.Fatalf("power not increasing at d=%d", rows[i].D)
		}
		if rows[i].AreaGE <= rows[i-1].AreaGE {
			t.Fatalf("area not increasing at d=%d", rows[i].D)
		}
	}
	opt, err := OptimalDigit(rows)
	if err != nil {
		t.Fatal(err)
	}
	if opt != 4 {
		for _, r := range rows {
			t.Logf("d=%-3d area=%6.0fGE cycles=%7d lat=%.4fs P=%.1fuW E=%.2fuJ AE=%.0f meets=%v",
				r.D, r.AreaGE, r.Cycles, r.LatencyS, r.PowerW*1e6, r.EnergyJ*1e6, r.AreaEnergy, r.MeetsLatency)
		}
		t.Fatalf("optimal digit size %d, want 4 (the paper's choice)", opt)
	}
	// d = 4 row must reproduce the chip's operating point.
	for _, r := range rows {
		if r.D == 4 {
			if math.Abs(r.PowerW-50.4e-6) > 0.5e-6 {
				t.Fatalf("d=4 power %.2f µW, want 50.4", r.PowerW*1e6)
			}
			if math.Abs(r.EnergyJ-5.1e-6) > 0.2e-6 {
				t.Fatalf("d=4 energy %.2f µJ, want ~5.1", r.EnergyJ*1e6)
			}
		}
	}
	// d = 1 and d = 2 must violate the latency constraint (that is
	// why the optimum is not the smallest multiplier).
	if rows[0].MeetsLatency || rows[1].MeetsLatency {
		t.Fatal("d=1/d=2 should miss the chip's latency constraint")
	}
}

func TestDigitSweepValidation(t *testing.T) {
	if _, err := DigitSweep([]int{4}, 0, 1); err == nil {
		t.Fatal("zero clock accepted")
	}
	if _, err := DigitSweep([]int{0}, 847500, 1); err == nil {
		t.Fatal("digit size 0 accepted")
	}
	if _, err := DigitSweep([]int{99}, 847500, 1); err == nil {
		t.Fatal("digit size 99 accepted")
	}
	rows, err := DigitSweep([]int{1}, 847500, 1e-9)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := OptimalDigit(rows); err == nil {
		t.Fatal("impossible latency constraint satisfied")
	}
}

func TestRegisterStorageComparison(t *testing.T) {
	// E5: MPL x-only needs 6 registers, prime-field Co-Z needs 8 —
	// a 25% register-file saving.
	mpl := RegisterStorageGE(MPLRegisters, 163)
	coz := RegisterStorageGE(CoZRegisters, 163)
	if mpl >= coz {
		t.Fatal("MPL register file should be smaller than Co-Z")
	}
	if math.Abs(coz/mpl-8.0/6.0) > 1e-9 {
		t.Fatalf("register ratio %.3f, want 8/6", coz/mpl)
	}
}
