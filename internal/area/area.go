// Package area models silicon cost: gate counts, the digit-size
// trade-off of the MALU (paper §5: "the choice of the digit-size
// determines the power needed for the computation, as well as the
// latency and area [16]. By using a digit serial multiplication with a
// 163×4 modular multiplier we achieve the optimal area-energy product
// within the given latency constraints"), and the implementation-size
// comparison of §4 ("the smallest SHA-1 implementation [12] uses 5527
// gates, while an ECC core uses about 12k gates [10]").
//
// Latency and cycle counts are not modeled here — they come from the
// actual microcode via internal/coproc, so the sweep's latency column
// is the simulator's, not a curve fit.
package area

import (
	"errors"

	"medsec/internal/coproc"
)

// GateModel parametrizes the gate-equivalent (GE) cost of the ECC
// co-processor's blocks, fitted to the ~12 kGE total of [10] at d = 4.
type GateModel struct {
	// RegFileGE covers the six 163-bit working registers.
	RegFileGE float64
	// ControlGE covers the microcode sequencer and I/O.
	ControlGE float64
	// MALUFixedGE is the digit-independent part of the MALU
	// (accumulator, reduction network).
	MALUFixedGE float64
	// MALUPerDigitGE is the incremental cost of one digit row
	// (163 AND + 163 XOR plus wiring).
	MALUPerDigitGE float64
}

// DefaultGateModel returns the fitted model.
func DefaultGateModel() GateModel {
	return GateModel{
		RegFileGE:      4700,
		ControlGE:      1600,
		MALUFixedGE:    1000,
		MALUPerDigitGE: 1180,
	}
}

// MALUGE returns the MALU area at digit size d.
func (g GateModel) MALUGE(d int) float64 {
	return g.MALUFixedGE + float64(d)*g.MALUPerDigitGE
}

// ECCProcessorGE returns the full co-processor area at digit size d.
func (g GateModel) ECCProcessorGE(d int) float64 {
	return g.RegFileGE + g.ControlGE + g.MALUGE(d)
}

// MaskingAreaFactor is the datapath area multiplier of the
// first-order Boolean-masked design: carrying every register and MALU
// word as two shares doubles the datapath storage and digit rows, and
// the mask-refresh network (one fresh-mask XOR layer per writeback)
// adds a few percent on top. The sequencer is untouched — masking is
// a pure datapath transformation.
const MaskingAreaFactor = 2.1

// Estimate is a per-module area breakdown of one co-processor design
// point. The secure-zone datapath (register file and MALU) pays the
// logic-style multiplier; the microcode sequencer stays standard CMOS
// — it handles no key-dependent data, so it needs no protected cells.
type Estimate struct {
	// DigitSize is the MALU digit width the estimate was taken at.
	DigitSize int
	// LogicFactor is the style area multiplier applied to the datapath
	// (1 for CMOS, see power.LogicStyle.AreaFactor).
	LogicFactor float64
	// MaskFactor is the masking area multiplier applied to the datapath
	// (1 for an unmasked design, MaskingAreaFactor for Boolean shares).
	MaskFactor float64
	// RegFileGE, MALUGE are the style-scaled datapath blocks.
	RegFileGE float64
	MALUGE    float64
	// ControlGE is the unscaled sequencer/I/O block.
	ControlGE float64
}

// TotalGE returns the summed gate count.
func (e Estimate) TotalGE() float64 {
	return e.RegFileGE + e.MALUGE + e.ControlGE
}

// Estimate prices a design point: digit size d with the datapath built
// in a logic style costing logicFactor times CMOS area. At factor 1
// the total equals ECCProcessorGE(d).
func (g GateModel) Estimate(d int, logicFactor float64) Estimate {
	return g.EstimateMasked(d, logicFactor, 1)
}

// EstimateMasked is Estimate with a masking datapath multiplier on top
// of the logic style: the two factors compose, because the shares are
// built from the same protected cells as the unmasked datapath.
func (g GateModel) EstimateMasked(d int, logicFactor, maskFactor float64) Estimate {
	return Estimate{
		DigitSize:   d,
		LogicFactor: logicFactor,
		MaskFactor:  maskFactor,
		RegFileGE:   g.RegFileGE * logicFactor * maskFactor,
		MALUGE:      g.MALUGE(d) * logicFactor * maskFactor,
		ControlGE:   g.ControlGE,
	}
}

// Power model for the sweep: dynamic power grows with the number of
// datapath bits switching per cycle, i.e. linearly in d, on top of a
// fixed clock/leakage floor. Calibrated to the chip's 50.4 µW at
// d = 4.
const (
	powerFixedW    = 30.0e-6
	powerPerDigitW = 5.1e-6
)

// PowerW returns the modeled average power at digit size d.
func PowerW(d int) float64 { return powerFixedW + float64(d)*powerPerDigitW }

// DigitSweepRow is one row of the E4 table.
type DigitSweepRow struct {
	D            int
	AreaGE       float64
	Cycles       int
	LatencyS     float64
	PowerW       float64
	EnergyJ      float64
	AreaEnergy   float64 // GE · µJ (the figure of merit the paper optimizes)
	MeetsLatency bool
}

// DigitSweep evaluates the digit sizes with real cycle counts from the
// ladder microcode. latencyLimitS is the paper's "given latency
// constraint" (one point multiplication must finish within it).
func DigitSweep(digits []int, clockHz, latencyLimitS float64) ([]DigitSweepRow, error) {
	if clockHz <= 0 || latencyLimitS <= 0 {
		return nil, errors.New("area: clock and latency limit must be positive")
	}
	g := DefaultGateModel()
	prog := coproc.BuildLadderProgram(coproc.ProgramOptions{RPC: true})
	rows := make([]DigitSweepRow, 0, len(digits))
	for _, d := range digits {
		if d <= 0 || d > 61 {
			return nil, errors.New("area: digit size out of range")
		}
		tim := coproc.Timing{DigitSize: d, MulOverhead: 2, SingleCycle: 1}
		cycles := prog.CycleCount(tim)
		lat := float64(cycles) / clockHz
		p := PowerW(d)
		e := p * lat
		rows = append(rows, DigitSweepRow{
			D:            d,
			AreaGE:       g.ECCProcessorGE(d),
			Cycles:       cycles,
			LatencyS:     lat,
			PowerW:       p,
			EnergyJ:      e,
			AreaEnergy:   g.ECCProcessorGE(d) * e * 1e6,
			MeetsLatency: lat <= latencyLimitS,
		})
	}
	return rows, nil
}

// OptimalDigit returns the digit size with the smallest area-energy
// product among rows meeting the latency constraint, or an error if
// none qualifies.
func OptimalDigit(rows []DigitSweepRow) (int, error) {
	best := -1
	for i, r := range rows {
		if !r.MeetsLatency {
			continue
		}
		if best < 0 || r.AreaEnergy < rows[best].AreaEnergy {
			best = i
		}
	}
	if best < 0 {
		return 0, errors.New("area: no digit size meets the latency constraint")
	}
	return rows[best].D, nil
}

// ModuleGE is one row of the E6 implementation-size table.
type ModuleGE struct {
	Module string
	GE     float64
	Source string
}

// ModuleGateCounts returns the §4 size-comparison table. The SHA-1
// figure is the cited measurement of [12]; the ECC figure is this
// model at the chip's d = 4; AES is the standard compact-core
// ballpark included for the secret-key comparison.
func ModuleGateCounts() []ModuleGE {
	g := DefaultGateModel()
	return []ModuleGE{
		{Module: "ECC co-processor (d=4)", GE: g.ECCProcessorGE(4), Source: "this model, fitted to [10]"},
		{Module: "SHA-1", GE: 5527, Source: "O'Neill [12]"},
		{Module: "AES-128 (compact)", GE: 3400, Source: "literature ballpark"},
		{Module: "PRESENT-80", GE: 1570, Source: "Bogdanov et al., CHES 2007"},
		{Module: "6x163-bit register file", GE: g.RegFileGE, Source: "this model"},
		{Module: "MALU (d=4)", GE: g.MALUGE(4), Source: "this model"},
	}
}

// Register-pressure comparison (E5): storage cost of the scalar
// multiplication state for the paper's MPL x-only algorithm vs the
// prime-field Co-Z algorithm of Hutter–Joye–Sierra [6], which needs 8
// field registers excluding the curve constants.
const (
	// GEPerRegisterBit is the flip-flop cost per stored bit.
	GEPerRegisterBit = 4.8
	// MPLRegisters is the paper's "six 163-bit registers for the
	// whole point multiplication".
	MPLRegisters = 6
	// CoZRegisters is the 8-register requirement of [6].
	CoZRegisters = 8
)

// RegisterStorageGE returns the register-file GE cost for nRegs
// registers of width bits.
func RegisterStorageGE(nRegs, bits int) float64 {
	return float64(nRegs*bits) * GEPerRegisterBit
}
