// Package ec implements elliptic curves over GF(2^163) in short
// binary Weierstrass form
//
//	y^2 + x*y = x^3 + a*x^2 + b,
//
// the curve family of the paper's co-processor. It provides the NIST
// Koblitz curve K-163 (the paper's curve: a = b = 1, 80-bit security,
// "equivalent to 1024-bit RSA"), the affine group law, the x-only
// Montgomery powering ladder of the paper's Algorithm 1 with
// López–Dahab projective coordinates, y-recovery, and the two
// countermeasures the algorithm level contributes:
//
//   - constant-structure ladder (timing / SPA), and
//   - randomized projective coordinates (DPA).
//
// A deliberately leaky double-and-add baseline is included for the
// timing-attack experiment (E3).
package ec

import (
	"errors"
	"fmt"

	"medsec/internal/gf2m"
	"medsec/internal/modn"
)

// Point is an affine curve point; Inf marks the point at infinity.
type Point struct {
	X, Y gf2m.Element
	Inf  bool
}

// Infinity returns the point at infinity (the group identity).
func Infinity() Point { return Point{Inf: true} }

// Equal reports whether p and q are the same point.
func (p Point) Equal(q Point) bool {
	if p.Inf || q.Inf {
		return p.Inf == q.Inf
	}
	return p.X.Equal(q.X) && p.Y.Equal(q.Y)
}

// Curve holds the domain parameters of a binary Weierstrass curve
// whose base point generates a prime-order subgroup.
type Curve struct {
	Name     string
	A, B     gf2m.Element
	Gx, Gy   gf2m.Element
	Order    *modn.Modulus // prime order of the base-point subgroup
	Cofactor uint64
}

// K163 returns the NIST Koblitz curve K-163, the curve of the paper's
// prototype chip (FIPS 186-3 [1]).
func K163() *Curve {
	return &Curve{
		Name:     "K-163",
		A:        gf2m.One(),
		B:        gf2m.One(),
		Gx:       gf2m.MustFromHex("2fe13c0537bbc11acaa07d793de4e6d5e5c94eee8"),
		Gy:       gf2m.MustFromHex("289070fb05d38ff58321f2e800536d538ccdaa3d9"),
		Order:    modn.MustModulusFromHex("4000000000000000000020108a2e0cc0d99f8a5ef"),
		Cofactor: 2,
	}
}

// B163 returns the NIST random binary curve B-163 over the same field,
// used to confirm that nothing in the module depends on the Koblitz
// structure.
func B163() *Curve {
	return &Curve{
		Name:     "B-163",
		A:        gf2m.One(),
		B:        gf2m.MustFromHex("20a601907b8c953ca1481eb10512f78744a3205fd"),
		Gx:       gf2m.MustFromHex("3f0eba16286a2d57ea0991168d4994637e8343e36"),
		Gy:       gf2m.MustFromHex("0d51fbc6c71a0094fa2cdd545b11c5c0c797324f1"),
		Order:    modn.MustModulusFromHex("40000000000000000000292fe77e70c12a4234c33"),
		Cofactor: 2,
	}
}

// Generator returns the curve's base point.
func (c *Curve) Generator() Point { return Point{X: c.Gx, Y: c.Gy} }

// OnCurve reports whether p satisfies y^2 + xy = x^3 + ax^2 + b.
// The point at infinity is on the curve.
func (c *Curve) OnCurve(p Point) bool {
	if p.Inf {
		return true
	}
	lhs := gf2m.Add(gf2m.Sqr(p.Y), gf2m.Mul(p.X, p.Y))
	x2 := gf2m.Sqr(p.X)
	rhs := gf2m.Add(gf2m.Add(gf2m.Mul(x2, p.X), gf2m.Mul(c.A, x2)), c.B)
	return lhs.Equal(rhs)
}

// Neg returns -p = (x, x+y).
func (c *Curve) Neg(p Point) Point {
	if p.Inf {
		return p
	}
	return Point{X: p.X, Y: gf2m.Add(p.X, p.Y)}
}

// Add returns p + q under the affine group law.
func (c *Curve) Add(p, q Point) Point {
	if p.Inf {
		return q
	}
	if q.Inf {
		return p
	}
	if p.X.Equal(q.X) {
		if p.Y.Equal(q.Y) {
			return c.Double(p)
		}
		// q == -p
		return Infinity()
	}
	// lambda = (y1+y2)/(x1+x2)
	lambda := gf2m.Div(gf2m.Add(p.Y, q.Y), gf2m.Add(p.X, q.X))
	x3 := gf2m.Add(gf2m.Add(gf2m.Add(gf2m.Sqr(lambda), lambda), gf2m.Add(p.X, q.X)), c.A)
	y3 := gf2m.Add(gf2m.Add(gf2m.Mul(lambda, gf2m.Add(p.X, x3)), x3), p.Y)
	return Point{X: x3, Y: y3}
}

// Double returns 2p.
func (c *Curve) Double(p Point) Point {
	if p.Inf || p.X.IsZero() {
		// x = 0 is the unique point of order two (y = sqrt(b)).
		return Infinity()
	}
	lambda := gf2m.Add(p.X, gf2m.Div(p.Y, p.X))
	x3 := gf2m.Add(gf2m.Add(gf2m.Sqr(lambda), lambda), c.A)
	y3 := gf2m.Add(gf2m.Sqr(p.X), gf2m.Mul(gf2m.Add(lambda, gf2m.One()), x3))
	return Point{X: x3, Y: y3}
}

// ScalarMulDoubleAndAdd computes k*p with the textbook left-to-right
// double-and-add. The running time depends on both the bit length and
// the Hamming weight of k — this is the *insecure baseline* of the
// timing experiment (paper §7: timing attacks are prevented by the
// Montgomery powering ladder, not by this).
func (c *Curve) ScalarMulDoubleAndAdd(k modn.Scalar, p Point) Point {
	r := Infinity()
	for i := k.BitLen() - 1; i >= 0; i-- {
		r = c.Double(r)
		if k.Bit(i) == 1 {
			r = c.Add(r, p)
		}
	}
	return r
}

// DoubleAndAddOpCount returns the (doublings, additions) the leaky
// baseline executes for scalar k — the quantity a timing attacker
// observes. Exposed for the E3 timing experiment.
func DoubleAndAddOpCount(k modn.Scalar) (doubles, adds int) {
	if k.BitLen() == 0 {
		return 0, 0
	}
	return k.BitLen(), k.Weight()
}

// LadderState is the projective state of the x-only Montgomery
// powering ladder: (X0:Z0) represents x(R0) and (X1:Z1) represents
// x(R1) with the invariant R1 - R0 = P throughout. The co-processor's
// six working registers hold exactly this state plus two temporaries.
type LadderState struct {
	X0, Z0, X1, Z1 gf2m.Element
}

// NewLadderState initializes the complete ladder at (R0, R1) = (O, P)
// where P has affine x-coordinate x. If lambda and mu are nonzero the
// projective representations are randomized (the paper's randomized
// projective coordinates DPA countermeasure); pass zero elements to
// get the deterministic unit representation.
func NewLadderState(x, lambda, mu gf2m.Element) LadderState {
	s := LadderState{
		X0: gf2m.One(), Z0: gf2m.Zero(), // O = (1 : 0)
		X1: x, Z1: gf2m.One(),
	}
	if !lambda.IsZero() {
		s.X0 = lambda // (lambda : 0) is still O
	}
	if !mu.IsZero() {
		s.X1 = gf2m.Mul(s.X1, mu)
		s.Z1 = mu
	}
	return s
}

// MAdd performs the x-only differential addition: given (Xa:Za) and
// (Xb:Zb) representing x(A) and x(B) with x(B-A) = x (affine), it
// returns the representation of x(A+B):
//
//	Z3 = (Xa*Zb + Xb*Za)^2
//	X3 = x*Z3 + (Xa*Zb)*(Xb*Za)
//
// 4 field multiplications and 1 squaring — the operation counts the
// co-processor microcode reproduces cycle for cycle.
func MAdd(xa, za, xb, zb, x gf2m.Element) (x3, z3 gf2m.Element) {
	t1 := gf2m.Mul(xa, zb)
	t2 := gf2m.Mul(xb, za)
	z3 = gf2m.Sqr(gf2m.Add(t1, t2))
	x3 = gf2m.Add(gf2m.Mul(x, z3), gf2m.Mul(t1, t2))
	return x3, z3
}

// MDouble performs the x-only doubling: given (X:Z) representing x(A)
// it returns the representation of x(2A):
//
//	X' = X^4 + b*Z^4
//	Z' = X^2 * Z^2
//
// 2 multiplications (one of them by the curve constant b) and 4
// squarings.
func MDouble(x, z, b gf2m.Element) (x2, z2 gf2m.Element) {
	xx := gf2m.Sqr(x)
	zz := gf2m.Sqr(z)
	z2 = gf2m.Mul(xx, zz)
	x2 = gf2m.Add(gf2m.Sqr(xx), gf2m.Mul(b, gf2m.Sqr(zz)))
	return x2, z2
}

// Step advances the ladder by one scalar bit (paper Algorithm 1):
//
//	bit = 1:  R0 <- R0+R1, R1 <- 2*R1
//	bit = 0:  R1 <- R0+R1, R0 <- 2*R0
//
// The software reference branches on the bit; the co-processor
// realizes the same dataflow with conditional swaps whose control
// signals are the subject of the circuit-level countermeasures.
func (s *LadderState) Step(bit uint, x, b gf2m.Element) {
	if bit == 1 {
		s.X0, s.Z0 = MAdd(s.X0, s.Z0, s.X1, s.Z1, x)
		s.X1, s.Z1 = MDouble(s.X1, s.Z1, b)
	} else {
		s.X1, s.Z1 = MAdd(s.X0, s.Z0, s.X1, s.Z1, x)
		s.X0, s.Z0 = MDouble(s.X0, s.Z0, b)
	}
}

// LadderBits is the fixed number of ladder iterations: every scalar is
// processed MSB-first over the full 163-bit register, so the iteration
// count — and with constant-cycle instructions the total cycle count —
// is independent of the scalar value. This is the paper's algorithm-
// plus-architecture timing countermeasure.
const LadderBits = 163

// LadderOptions configures a ladder scalar multiplication.
type LadderOptions struct {
	// Rand supplies uniform uint64 values for the randomized
	// projective coordinates countermeasure. nil disables RPC (the
	// weakened configuration of the paper's white-box DPA evaluation).
	Rand func() uint64
	// FixedLambda/FixedMu force specific randomization values; used by
	// the "countermeasure enabled but randomness known to the
	// attacker" white-box experiment of §7. Only honoured when Rand is
	// nil and the values are nonzero.
	FixedLambda, FixedMu gf2m.Element
}

func randNonZero(src func() uint64) gf2m.Element {
	for {
		e := gf2m.FromWords(src(), src(), src())
		if !e.IsZero() {
			return e
		}
	}
}

// ladderX runs the complete x-only ladder over all 163 bit positions
// and returns the final projective state.
func (c *Curve) ladderX(k modn.Scalar, x gf2m.Element, opt LadderOptions) LadderState {
	var lambda, mu gf2m.Element
	switch {
	case opt.Rand != nil:
		lambda = randNonZero(opt.Rand)
		mu = randNonZero(opt.Rand)
	default:
		lambda, mu = opt.FixedLambda, opt.FixedMu
	}
	s := NewLadderState(x, lambda, mu)
	for i := LadderBits - 1; i >= 0; i-- {
		s.Step(k.Bit(i), x, c.B)
	}
	return s
}

// XOnlyScalarMul returns the affine x-coordinate of k*P given only the
// affine x-coordinate of P. It reports ok = false when k*P is the
// point at infinity. This is the operation the identification
// protocol needs for d = xcoord(r*Y).
func (c *Curve) XOnlyScalarMul(k modn.Scalar, x gf2m.Element, opt LadderOptions) (gf2m.Element, bool) {
	s := c.ladderX(k, x, opt)
	if s.Z0.IsZero() {
		return gf2m.Zero(), false
	}
	return gf2m.Div(s.X0, s.Z0), true
}

// RecoverY recovers the affine result of the ladder including the
// y-coordinate (paper Algorithm 1, "RecoverY(P, R)"), using the
// López–Dahab recovery formula
//
//	y0 = (x0 + x) * [ (x0 + x)(x1 + x) + x^2 + y ] / x  +  y
//
// where (x, y) = P, x0 = x(kP) and x1 = x((k+1)P).
func (c *Curve) RecoverY(p Point, x0, x1 gf2m.Element) Point {
	t0 := gf2m.Add(x0, p.X)
	t1 := gf2m.Add(x1, p.X)
	acc := gf2m.Add(gf2m.Mul(t0, t1), gf2m.Add(gf2m.Sqr(p.X), p.Y))
	y0 := gf2m.Add(gf2m.Div(gf2m.Mul(t0, acc), p.X), p.Y)
	return Point{X: x0, Y: y0}
}

// ScalarMulLadder computes k*P with the Montgomery powering ladder,
// including y-recovery. It requires p.X != 0 (the order-2 point and O
// are rejected: the protocol layer never feeds them) and k reduced
// modulo the group order.
func (c *Curve) ScalarMulLadder(k modn.Scalar, p Point, opt LadderOptions) (Point, error) {
	if p.Inf || p.X.IsZero() {
		return Point{}, errors.New("ec: ladder requires a finite point with x != 0")
	}
	if k.Cmp(c.Order.N()) >= 0 {
		return Point{}, errors.New("ec: scalar not reduced modulo the group order")
	}
	s := c.ladderX(k, p.X, opt)
	switch {
	case s.Z0.IsZero():
		// k = 0 (mod ord(P)).
		return Infinity(), nil
	case s.Z1.IsZero():
		// k+1 = 0, i.e. kP = -P.
		return c.Neg(p), nil
	}
	x0 := gf2m.Div(s.X0, s.Z0)
	x1 := gf2m.Div(s.X1, s.Z1)
	return c.RecoverY(p, x0, x1), nil
}

// ScalarBaseMul computes k*G on the base point.
func (c *Curve) ScalarBaseMul(k modn.Scalar, opt LadderOptions) (Point, error) {
	return c.ScalarMulLadder(k, c.Generator(), opt)
}

// BlindedLadderBits is the fixed iteration count of the blinded
// ladder: 163-bit order plus a 32-bit blinding factor plus headroom.
const BlindedLadderBits = 200

// ScalarMulBlinded computes k*P with scalar blinding on top of
// randomized projective coordinates: the device actually processes
// k' = k + m·n for a fresh 32-bit random m, so even the *bit pattern*
// walked by the ladder changes per execution — an additional DPA
// countermeasure beyond the paper's selected set (its "more details
// about the countermeasures" family). Requires src non-nil.
func (c *Curve) ScalarMulBlinded(k modn.Scalar, p Point, src func() uint64) (Point, error) {
	if src == nil {
		return Point{}, errors.New("ec: scalar blinding needs a randomness source")
	}
	if p.Inf || p.X.IsZero() {
		return Point{}, errors.New("ec: ladder requires a finite point with x != 0")
	}
	if k.Cmp(c.Order.N()) >= 0 {
		return Point{}, errors.New("ec: scalar not reduced modulo the group order")
	}
	factor := src()&0xffffffff | 1 // nonzero 32-bit blinding factor
	kb, err := c.Order.AddMulSmall(k, factor)
	if err != nil {
		return Point{}, err
	}
	lambda := randNonZero(src)
	mu := randNonZero(src)
	s := NewLadderState(p.X, lambda, mu)
	for i := BlindedLadderBits - 1; i >= 0; i-- {
		s.Step(kb.Bit(i), p.X, c.B)
	}
	switch {
	case s.Z0.IsZero():
		return Infinity(), nil
	case s.Z1.IsZero():
		return c.Neg(p), nil
	}
	x0 := gf2m.Div(s.X0, s.Z0)
	x1 := gf2m.Div(s.X1, s.Z1)
	return c.RecoverY(p, x0, x1), nil
}

// SolveY returns a y-coordinate for the given x if one exists:
// substituting z = y/x reduces the curve equation to
// z^2 + z = x + a + b/x^2, solvable iff Tr(x + a + b/x^2) = 0.
// For x = 0 the unique solution is y = sqrt(b).
func (c *Curve) SolveY(x gf2m.Element) (gf2m.Element, bool) {
	if x.IsZero() {
		return gf2m.Sqrt(c.B), true
	}
	rhs := gf2m.Add(gf2m.Add(x, c.A), gf2m.Div(c.B, gf2m.Sqr(x)))
	if gf2m.Trace(rhs) != 0 {
		return gf2m.Zero(), false
	}
	z := gf2m.HalfTrace(rhs)
	return gf2m.Mul(x, z), true
}

// RandomPoint returns a uniformly random point of the prime-order
// subgroup (cofactor-cleared), never O and never the order-2 point.
func (c *Curve) RandomPoint(src func() uint64) Point {
	for {
		x := gf2m.FromWords(src(), src(), src())
		y, ok := c.SolveY(x)
		if !ok {
			continue
		}
		p := Point{X: x, Y: y}
		// Clear the cofactor to land in the prime-order subgroup.
		for h := c.Cofactor; h > 1; h >>= 1 {
			p = c.Double(p)
		}
		if p.Inf || p.X.IsZero() {
			continue
		}
		return p
	}
}

// Compress encodes p as its x-coordinate plus one bit: the low bit of
// z = y/x (standard binary-curve point compression). The point at
// infinity and the order-2 point are not encodable.
func (c *Curve) Compress(p Point) ([]byte, error) {
	if p.Inf || p.X.IsZero() {
		return nil, errors.New("ec: point not compressible")
	}
	z := gf2m.Div(p.Y, p.X)
	out := make([]byte, 1+gf2m.ByteLen)
	out[0] = byte(2 | z.Bit(0))
	copy(out[1:], p.X.Bytes())
	return out, nil
}

// Decompress recovers a point from its compressed encoding and
// validates that it lies on the curve.
func (c *Curve) Decompress(b []byte) (Point, error) {
	if len(b) != 1+gf2m.ByteLen || b[0]&^1 != 2 {
		return Point{}, errors.New("ec: malformed compressed point")
	}
	x := gf2m.FromBytes(b[1:])
	if x.IsZero() {
		return Point{}, errors.New("ec: x = 0 not decodable")
	}
	y, ok := c.SolveY(x)
	if !ok {
		return Point{}, errors.New("ec: no point with this x-coordinate")
	}
	z := gf2m.Div(y, x)
	if z.Bit(0) != uint(b[0]&1) {
		y = gf2m.Add(y, x) // the conjugate solution
	}
	return Point{X: x, Y: y}, nil
}

// Validate checks that p is a valid protocol input: on the curve, not
// O, and in the prime-order subgroup. This is the fault-attack /
// invalid-curve-attack guard the paper's threat analysis requires
// before any secret-dependent computation.
func (c *Curve) Validate(p Point) error {
	if p.Inf {
		return errors.New("ec: point at infinity")
	}
	if !c.OnCurve(p) {
		return errors.New("ec: point not on curve")
	}
	if c.Cofactor == 2 {
		// Seroussi's criterion: on a cofactor-2 binary curve
		// y^2 + xy = x^3 + ax^2 + b, a curve point (x, y) lies in
		// the prime-order subgroup iff Tr(x) = Tr(a), with the
		// x = 0 order-2 point checked separately. This replaces
		// an order-n scalar multiplication (~160 field inversions)
		// with one trace evaluation.
		if p.X.IsZero() || gf2m.Trace(p.X) != gf2m.Trace(c.A) {
			return fmt.Errorf("ec: point not in the order-%s subgroup", c.Order.N())
		}
		return nil
	}
	q := c.ScalarMulDoubleAndAdd(c.Order.N(), p)
	if !q.Inf {
		return fmt.Errorf("ec: point not in the order-%s subgroup", c.Order.N())
	}
	return nil
}

// String renders a point for diagnostics.
func (p Point) String() string {
	if p.Inf {
		return "(infinity)"
	}
	return fmt.Sprintf("(%s, %s)", p.X, p.Y)
}
