package ec

import (
	"medsec/internal/gf2m"
	"medsec/internal/modn"
)

// López–Dahab projective coordinates: P = (X : Y : Z) with x = X/Z and
// y = Y/Z². They make the full group law inversion-free (an inversion
// is ~171 MALU passes on this hardware, versus ~10 for a projective
// step), which is how reader-side batch verification avoids paying
// Itoh–Tsujii per addition. Derived directly from the affine law and
// property-tested against it; not micro-optimized.

// ProjPoint is a point in LD projective coordinates. Z = 0 encodes the
// point at infinity.
type ProjPoint struct {
	X, Y, Z gf2m.Element
}

// ToProjective lifts an affine point.
func ToProjective(p Point) ProjPoint {
	if p.Inf {
		return ProjPoint{X: gf2m.One(), Z: gf2m.Zero()}
	}
	return ProjPoint{X: p.X, Y: p.Y, Z: gf2m.One()}
}

// ToAffine normalizes back (one inversion).
func (pp ProjPoint) ToAffine() Point {
	if pp.Z.IsZero() {
		return Infinity()
	}
	zi := gf2m.Inv(pp.Z)
	return Point{
		X: gf2m.Mul(pp.X, zi),
		Y: gf2m.Mul(pp.Y, gf2m.Sqr(zi)),
	}
}

// IsInfinity reports whether pp encodes O.
func (pp ProjPoint) IsInfinity() bool { return pp.Z.IsZero() }

// ProjDouble returns 2·P without inversions.
//
// With A = X² + Y, C = Z·X:
//
//	Z3 = C², X3 = A² + A·C + a·C², Y3 = Z²·X⁶ + (A + C)·C·X3.
func (c *Curve) ProjDouble(p ProjPoint) ProjPoint {
	if p.Z.IsZero() || p.X.IsZero() {
		// O, or the order-2 point (x = 0) whose double is O.
		return ProjPoint{X: gf2m.One(), Z: gf2m.Zero()}
	}
	x2 := gf2m.Sqr(p.X)
	a := gf2m.Add(x2, p.Y)
	cc := gf2m.Mul(p.Z, p.X)
	z3 := gf2m.Sqr(cc)
	// Lazy reduction: reduction mod f is GF(2)-linear, so the sums
	// below accumulate unreduced 6-word products and reduce once —
	// bit-identical to reducing per term (asserted by the package's
	// affine cross-tests), one reduce instead of three.
	xacc := gf2m.SqrNoReduce(a)
	gf2m.MulAcc(&xacc, a, cc)
	gf2m.MulAcc(&xacc, c.A, z3)
	x3 := gf2m.Reduce(xacc)
	x6 := gf2m.Mul(gf2m.Sqr(x2), x2)
	yacc := gf2m.MulNoReduce(gf2m.Sqr(p.Z), x6)
	gf2m.MulAcc(&yacc, gf2m.Mul(gf2m.Add(a, cc), cc), x3)
	y3 := gf2m.Reduce(yacc)
	return ProjPoint{X: x3, Y: y3, Z: z3}
}

// ProjAddMixed returns P + Q for projective P and affine Q without
// inversions (the common "mixed" case: precomputed affine table plus a
// projective accumulator).
//
// With A = Y + y2·Z², B = X + x2·Z, C = Z·B:
//
//	Z3 = C²
//	X3 = A² + A·C + Z·B³ + a·C²
//	Y3 = A·Z·B·(X·Z·B² + X3) + Z²·B⁴·Y + X3·Z3 + A·X3·Z·B ... (see code)
func (c *Curve) ProjAddMixed(p ProjPoint, q Point) (ProjPoint, error) {
	if q.Inf {
		return p, nil
	}
	if p.Z.IsZero() {
		return ToProjective(q), nil
	}
	z2 := gf2m.Sqr(p.Z)
	a := gf2m.Add(p.Y, gf2m.Mul(q.Y, z2))  // Y + y2·Z²
	b := gf2m.Add(p.X, gf2m.Mul(q.X, p.Z)) // X + x2·Z
	if b.IsZero() {
		if a.IsZero() {
			// Same point: double.
			return c.ProjDouble(p), nil
		}
		// Inverse points: O.
		return ProjPoint{X: gf2m.One(), Z: gf2m.Zero()}, nil
	}
	cc := gf2m.Mul(p.Z, b) // C = Z·B
	z3 := gf2m.Sqr(cc)
	b2 := gf2m.Sqr(b)
	// Lazy reduction (see ProjDouble): accumulate the four-term X3 and
	// Y3 sums unreduced and fold once — identical results, 3 fewer
	// reductions per sum.
	xacc := gf2m.SqrNoReduce(a)
	gf2m.MulAcc(&xacc, a, cc)
	gf2m.MulAcc(&xacc, gf2m.Mul(p.Z, b2), b)
	gf2m.MulAcc(&xacc, c.A, z3)
	x3 := gf2m.Reduce(xacc)
	// Y3 = A·Z·B·(X·Z·B² + X3) + Z²·B⁴·Y  — derived from
	// y3 = λ(x1+x3)+x3+y1 with λ = A/C, scaled by Z3².
	// Expanding: Y3 = A·X1·Z1²·B³ + A·X3·Z1·B + X3·Z3 + Y1·Z1²·B⁴.
	azb := gf2m.Mul(gf2m.Mul(a, p.Z), b)
	yacc := gf2m.MulNoReduce(gf2m.Mul(gf2m.Mul(p.X, z2), b2), gf2m.Mul(a, b)) // A·X1·Z1²·B³
	gf2m.MulAcc(&yacc, azb, x3)                                               // A·X3·Z1·B
	gf2m.MulAcc(&yacc, x3, z3)
	gf2m.MulAcc(&yacc, gf2m.Mul(p.Y, z2), gf2m.Sqr(b2)) // Y1·Z1²·B⁴
	y3 := gf2m.Reduce(yacc)
	return ProjPoint{X: x3, Y: y3, Z: z3}, nil
}

// ScalarMulProjective computes k·P with a projective double-and-add
// accumulator and a single final inversion — the reader-side
// throughput path (not constant time; the tag uses the ladder).
func (c *Curve) ScalarMulProjective(k modn.Scalar, p Point) (Point, error) {
	if p.Inf {
		return Infinity(), nil
	}
	acc := ProjPoint{X: gf2m.One(), Z: gf2m.Zero()}
	var err error
	for i := k.BitLen() - 1; i >= 0; i-- {
		acc = c.ProjDouble(acc)
		if k.Bit(i) == 1 {
			acc, err = c.ProjAddMixed(acc, p)
			if err != nil {
				return Point{}, err
			}
		}
	}
	return acc.ToAffine(), nil
}
