package ec

import (
	"math/rand"
	"testing"

	"medsec/internal/gf2m"
)

// slowSubgroupCheck is the pre-trace-criterion subgroup membership
// test: n*P == O. Validate's fast path must agree with it on every
// curve point, in and out of the prime-order subgroup.
func slowSubgroupCheck(c *Curve, p Point) bool {
	return c.ScalarMulDoubleAndAdd(c.Order.N(), p).Inf
}

// curvePoints yields raw curve points WITHOUT cofactor clearing, so
// roughly half of them land in the non-trivial coset.
func curvePoints(c *Curve, r *rand.Rand, n int) []Point {
	pts := make([]Point, 0, n)
	for len(pts) < n {
		x := gf2m.FromWords(r.Uint64(), r.Uint64(), r.Uint64())
		y, ok := c.SolveY(x)
		if !ok {
			continue
		}
		pts = append(pts, Point{X: x, Y: y})
	}
	return pts
}

func TestValidateTraceCriterionMatchesScalarMul(t *testing.T) {
	for _, c := range curvesUnderTest() {
		r := rand.New(rand.NewSource(9))
		pts := curvePoints(c, r, 64)
		in, out := 0, 0
		for _, p := range pts {
			want := slowSubgroupCheck(c, p)
			got := c.Validate(p) == nil
			if got != want {
				t.Fatalf("%s: Validate(%s) = %v, slow subgroup check = %v", c.Name, p, got, want)
			}
			if want {
				in++
			} else {
				out++
			}
		}
		// The sample must actually exercise both outcomes.
		if in == 0 || out == 0 {
			t.Fatalf("%s: degenerate sample: %d in-subgroup, %d out-of-subgroup", c.Name, in, out)
		}
	}
}

func TestValidateRejectsOrderTwoAndInfinity(t *testing.T) {
	for _, c := range curvesUnderTest() {
		if err := c.Validate(Infinity()); err == nil {
			t.Fatalf("%s: Validate accepted the point at infinity", c.Name)
		}
		two := Point{X: gf2m.Zero(), Y: gf2m.Sqrt(c.B)}
		if !c.OnCurve(two) {
			t.Fatalf("%s: (0, sqrt b) not on curve", c.Name)
		}
		if err := c.Validate(two); err == nil {
			t.Fatalf("%s: Validate accepted the order-2 point", c.Name)
		}
		if err := c.Validate(c.Generator()); err != nil {
			t.Fatalf("%s: Validate rejected the generator: %v", c.Name, err)
		}
	}
}

func TestValidateRejectsOffCurve(t *testing.T) {
	c := K163()
	g := c.Generator()
	bad := Point{X: g.X, Y: gf2m.Add(g.Y, gf2m.One())}
	if c.OnCurve(bad) {
		t.Fatal("perturbed point unexpectedly on curve")
	}
	if err := c.Validate(bad); err == nil {
		t.Fatal("Validate accepted an off-curve point")
	}
}
