package ec

import (
	"bufio"
	"os"
	"strings"
	"testing"

	"medsec/internal/gf2m"
	"medsec/internal/modn"
)

// TestGoldenScalarMul pins K-163 scalar multiplication to the frozen
// kG vectors shared with the gf2m golden file.
func TestGoldenScalarMul(t *testing.T) {
	f, err := os.Open("../gf2m/testdata/k163_vectors.txt")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	c := K163()
	sc := bufio.NewScanner(f)
	checked := 0
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if !strings.HasPrefix(line, "kG\t") {
			continue
		}
		fields := strings.Split(line, "\t")
		if len(fields) != 4 {
			t.Fatalf("malformed kG line: %q", line)
		}
		k := modn.MustScalarFromHex(fields[1])
		wantX := gf2m.MustFromHex(fields[2])
		wantY := gf2m.MustFromHex(fields[3])
		// Through every implementation path.
		ladder, err := c.ScalarMulLadder(k, c.Generator(), LadderOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if !ladder.X.Equal(wantX) || !ladder.Y.Equal(wantY) {
			t.Fatalf("ladder kG mismatch for k=%s", fields[1])
		}
		da := c.ScalarMulDoubleAndAdd(k, c.Generator())
		if !da.Equal(ladder) {
			t.Fatal("double-and-add disagrees with golden")
		}
		tnaf, err := c.ScalarMulTNAF(k, c.Generator())
		if err != nil {
			t.Fatal(err)
		}
		if !tnaf.Equal(ladder) {
			t.Fatal("TNAF disagrees with golden")
		}
		checked++
	}
	if checked < 8 {
		t.Fatalf("only %d kG vectors checked", checked)
	}
}
