package ec

import (
	"math/rand"
	"testing"

	"medsec/internal/modn"
)

func TestScalarMulBlindedMatchesPlain(t *testing.T) {
	c := K163()
	r := rand.New(rand.NewSource(1))
	for i := 0; i < 8; i++ {
		k := c.Order.RandNonZero(r.Uint64)
		p := c.RandomPoint(r.Uint64)
		want, err := c.ScalarMulLadder(k, p, LadderOptions{})
		if err != nil {
			t.Fatal(err)
		}
		got, err := c.ScalarMulBlinded(k, p, r.Uint64)
		if err != nil {
			t.Fatal(err)
		}
		if !got.Equal(want) {
			t.Fatalf("blinded scalar mult wrong for k=%v", k)
		}
	}
	// k = 0 -> O (blinding still processes m*n, which is 0 mod n).
	if p, err := c.ScalarMulBlinded(modn.Zero(), c.Generator(), r.Uint64); err != nil || !p.Inf {
		t.Fatalf("blinded 0*G = %v (err %v)", p, err)
	}
}

func TestBlindedBitPatternChanges(t *testing.T) {
	// The countermeasure's point: the processed scalar bits differ
	// across executions for the same k.
	c := K163()
	r := rand.New(rand.NewSource(2))
	k := c.Order.RandNonZero(r.Uint64)
	k1, err := c.Order.AddMulSmall(k, 3)
	if err != nil {
		t.Fatal(err)
	}
	k2, err := c.Order.AddMulSmall(k, 5)
	if err != nil {
		t.Fatal(err)
	}
	if k1.Equal(k2) {
		t.Fatal("different blinding factors gave the same blinded scalar")
	}
	if k1.BitLen() <= 163 {
		t.Fatalf("blinded scalar only %d bits; blinding inert", k1.BitLen())
	}
	if k1.BitLen() > BlindedLadderBits {
		t.Fatal("blinded scalar exceeds the fixed ladder length")
	}
}

func TestScalarMulBlindedValidation(t *testing.T) {
	c := K163()
	r := rand.New(rand.NewSource(3))
	if _, err := c.ScalarMulBlinded(modn.One(), c.Generator(), nil); err == nil {
		t.Fatal("nil randomness accepted")
	}
	if _, err := c.ScalarMulBlinded(c.Order.N(), c.Generator(), r.Uint64); err == nil {
		t.Fatal("unreduced scalar accepted")
	}
	if _, err := c.ScalarMulBlinded(modn.One(), Infinity(), r.Uint64); err == nil {
		t.Fatal("O accepted")
	}
}

func TestAddMulSmallAgainstBig(t *testing.T) {
	c := K163()
	r := rand.New(rand.NewSource(4))
	for i := 0; i < 50; i++ {
		k := c.Order.Rand(r.Uint64)
		f := r.Uint64() & 0xffffffff
		got, err := c.Order.AddMulSmall(k, f)
		if err != nil {
			t.Fatal(err)
		}
		// Check mod n: got mod n == k (since f*n vanishes).
		if !c.Order.Reduce(got).Equal(k) {
			t.Fatal("blinded scalar not congruent to k")
		}
	}
	// Overflow detection needs a large modulus (a 163-bit n cannot
	// overflow 256 bits with a 64-bit factor).
	big, err := modn.NewModulus([modn.Words]uint64{0, 0, 0, 1 << 63})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := big.AddMulSmall(modn.Zero(), 4); err == nil {
		t.Fatal("overflowing blinding factor accepted")
	}
}
