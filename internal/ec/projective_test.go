package ec

import (
	"math/rand"
	"testing"
	"testing/quick"

	"medsec/internal/gf2m"
	"medsec/internal/modn"
)

func TestProjectiveRoundTrip(t *testing.T) {
	c := K163()
	r := rand.New(rand.NewSource(1))
	for i := 0; i < 20; i++ {
		p := c.RandomPoint(r.Uint64)
		if got := ToProjective(p).ToAffine(); !got.Equal(p) {
			t.Fatal("projective lift/normalize not a round trip")
		}
	}
	if !ToProjective(Infinity()).ToAffine().Inf {
		t.Fatal("O round trip failed")
	}
	if !ToProjective(Infinity()).IsInfinity() {
		t.Fatal("IsInfinity broken")
	}
}

func TestProjDoubleMatchesAffine(t *testing.T) {
	c := K163()
	r := rand.New(rand.NewSource(2))
	for i := 0; i < 30; i++ {
		p := c.RandomPoint(r.Uint64)
		// Random projective representative: scale by lambda.
		lam := gf2m.FromWords(r.Uint64(), r.Uint64(), r.Uint64())
		if lam.IsZero() {
			lam = gf2m.One()
		}
		pp := ProjPoint{
			X: gf2m.Mul(p.X, lam),
			Y: gf2m.Mul(p.Y, gf2m.Sqr(lam)),
			Z: lam,
		}
		got := c.ProjDouble(pp).ToAffine()
		want := c.Double(p)
		if !got.Equal(want) {
			t.Fatalf("projective double wrong for %v", p)
		}
	}
	// O and the order-2 point.
	if !c.ProjDouble(ToProjective(Infinity())).IsInfinity() {
		t.Fatal("2*O != O")
	}
	yt, _ := c.SolveY(gf2m.Zero())
	t2 := ToProjective(Point{X: gf2m.Zero(), Y: yt})
	if !c.ProjDouble(t2).IsInfinity() {
		t.Fatal("order-2 point does not double to O")
	}
}

func TestProjAddMixedMatchesAffine(t *testing.T) {
	c := K163()
	r := rand.New(rand.NewSource(3))
	for i := 0; i < 30; i++ {
		p := c.RandomPoint(r.Uint64)
		q := c.RandomPoint(r.Uint64)
		lam := gf2m.FromUint64(r.Uint64() | 1)
		pp := ProjPoint{
			X: gf2m.Mul(p.X, lam),
			Y: gf2m.Mul(p.Y, gf2m.Sqr(lam)),
			Z: lam,
		}
		got, err := c.ProjAddMixed(pp, q)
		if err != nil {
			t.Fatal(err)
		}
		want := c.Add(p, q)
		if !got.ToAffine().Equal(want) {
			t.Fatalf("projective mixed add wrong")
		}
	}
	// Exceptional cases: P + P, P + (-P), P + O, O + Q.
	p := c.RandomPoint(r.Uint64)
	pp := ToProjective(p)
	same, err := c.ProjAddMixed(pp, p)
	if err != nil {
		t.Fatal(err)
	}
	if !same.ToAffine().Equal(c.Double(p)) {
		t.Fatal("P+P did not route to doubling")
	}
	inv, err := c.ProjAddMixed(pp, c.Neg(p))
	if err != nil {
		t.Fatal(err)
	}
	if !inv.IsInfinity() {
		t.Fatal("P + (-P) != O")
	}
	idq, err := c.ProjAddMixed(pp, Infinity())
	if err != nil {
		t.Fatal(err)
	}
	if !idq.ToAffine().Equal(p) {
		t.Fatal("P + O != P")
	}
	fromO, err := c.ProjAddMixed(ToProjective(Infinity()), p)
	if err != nil {
		t.Fatal(err)
	}
	if !fromO.ToAffine().Equal(p) {
		t.Fatal("O + Q != Q")
	}
}

func TestScalarMulProjectiveMatchesLadder(t *testing.T) {
	c := K163()
	r := rand.New(rand.NewSource(4))
	for i := 0; i < 8; i++ {
		k := c.Order.RandNonZero(r.Uint64)
		p := c.RandomPoint(r.Uint64)
		want, err := c.ScalarMulLadder(k, p, LadderOptions{})
		if err != nil {
			t.Fatal(err)
		}
		got, err := c.ScalarMulProjective(k, p)
		if err != nil {
			t.Fatal(err)
		}
		if !got.Equal(want) {
			t.Fatalf("projective scalar mult wrong for k=%v", k)
		}
	}
	if q, err := c.ScalarMulProjective(modn.Zero(), c.Generator()); err != nil || !q.Inf {
		t.Fatal("0*P != O")
	}
	if q, err := c.ScalarMulProjective(modn.One(), Infinity()); err != nil || !q.Inf {
		t.Fatal("k*O != O")
	}
}

func TestQuickProjectiveRepresentativeInvariance(t *testing.T) {
	c := K163()
	g := c.Generator()
	f := func(l0 uint64, k uint16) bool {
		lam := gf2m.FromUint64(l0 | 1)
		pp := ProjPoint{
			X: gf2m.Mul(g.X, lam),
			Y: gf2m.Mul(g.Y, gf2m.Sqr(lam)),
			Z: lam,
		}
		d1 := c.ProjDouble(pp).ToAffine()
		d2 := c.Double(g)
		if !d1.Equal(d2) {
			return false
		}
		s, err := c.ScalarMulProjective(modn.FromUint64(uint64(k)), g)
		if err != nil {
			return false
		}
		return s.Equal(c.ScalarMulDoubleAndAdd(modn.FromUint64(uint64(k)), g))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkScalarMulProjective(b *testing.B) {
	c := K163()
	r := rand.New(rand.NewSource(1))
	k := c.Order.RandNonZero(r.Uint64)
	g := c.Generator()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.ScalarMulProjective(k, g); err != nil {
			b.Fatal(err)
		}
	}
}
