package ec

import (
	"math/rand"
	"testing"

	"medsec/internal/gf2m"
	"medsec/internal/modn"
)

func curvesUnderTest() []*Curve { return []*Curve{K163(), B163()} }

func TestDomainParameters(t *testing.T) {
	for _, c := range curvesUnderTest() {
		g := c.Generator()
		if !c.OnCurve(g) {
			t.Fatalf("%s: generator not on curve", c.Name)
		}
		if ng := c.ScalarMulDoubleAndAdd(c.Order.N(), g); !ng.Inf {
			t.Fatalf("%s: n*G != O; order constant wrong", c.Name)
		}
		nm1 := c.Order.Sub(modn.Zero(), modn.One()) // n-1 mod n
		if p := c.ScalarMulDoubleAndAdd(nm1, g); !p.Equal(c.Neg(g)) {
			t.Fatalf("%s: (n-1)*G != -G", c.Name)
		}
	}
}

func TestGroupLawBasics(t *testing.T) {
	c := K163()
	g := c.Generator()
	if !c.Add(g, Infinity()).Equal(g) || !c.Add(Infinity(), g).Equal(g) {
		t.Fatal("O is not the identity")
	}
	if !c.Add(g, c.Neg(g)).Inf {
		t.Fatal("P + (-P) != O")
	}
	if !c.OnCurve(c.Double(g)) || !c.OnCurve(c.Add(g, c.Double(g))) {
		t.Fatal("group law leaves the curve")
	}
	// 2P via Add(P,P) must match Double.
	if !c.Add(g, g).Equal(c.Double(g)) {
		t.Fatal("Add(P,P) != Double(P)")
	}
	if !c.Double(Infinity()).Inf {
		t.Fatal("2*O != O")
	}
	if !c.Neg(Infinity()).Inf {
		t.Fatal("-O != O")
	}
}

func TestGroupLawCommutativeAssociative(t *testing.T) {
	c := K163()
	r := rand.New(rand.NewSource(1))
	for i := 0; i < 20; i++ {
		p := c.RandomPoint(r.Uint64)
		q := c.RandomPoint(r.Uint64)
		s := c.RandomPoint(r.Uint64)
		if !c.Add(p, q).Equal(c.Add(q, p)) {
			t.Fatal("addition not commutative")
		}
		if !c.Add(c.Add(p, q), s).Equal(c.Add(p, c.Add(q, s))) {
			t.Fatal("addition not associative")
		}
	}
}

func TestOrderTwoPoint(t *testing.T) {
	c := K163()
	yt, ok := c.SolveY(gf2m.Zero())
	if !ok {
		t.Fatal("no point with x=0 on K-163 (cofactor 2 demands one)")
	}
	tp := Point{X: gf2m.Zero(), Y: yt}
	if !c.OnCurve(tp) {
		t.Fatal("order-2 point not on curve")
	}
	if !c.Double(tp).Inf {
		t.Fatal("order-2 point does not double to O")
	}
}

func TestScalarMulSmallMultiples(t *testing.T) {
	c := K163()
	g := c.Generator()
	acc := Infinity()
	for k := uint64(0); k <= 20; k++ {
		got := c.ScalarMulDoubleAndAdd(modn.FromUint64(k), g)
		if !got.Equal(acc) {
			t.Fatalf("%d*G mismatch between repeated addition and double-and-add", k)
		}
		acc = c.Add(acc, g)
	}
}

func TestLadderMatchesDoubleAndAdd(t *testing.T) {
	for _, c := range curvesUnderTest() {
		r := rand.New(rand.NewSource(2))
		for i := 0; i < 15; i++ {
			k := c.Order.Rand(r.Uint64)
			p := c.RandomPoint(r.Uint64)
			want := c.ScalarMulDoubleAndAdd(k, p)
			got, err := c.ScalarMulLadder(k, p, LadderOptions{})
			if err != nil {
				t.Fatalf("%s: ladder error: %v", c.Name, err)
			}
			if !got.Equal(want) {
				t.Fatalf("%s: ladder disagrees with double-and-add for k=%v", c.Name, k)
			}
		}
	}
}

func TestLadderSmallScalarsAndEdges(t *testing.T) {
	c := K163()
	g := c.Generator()
	for k := uint64(1); k <= 8; k++ {
		got, err := c.ScalarMulLadder(modn.FromUint64(k), g, LadderOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if !got.Equal(c.ScalarMulDoubleAndAdd(modn.FromUint64(k), g)) {
			t.Fatalf("ladder wrong for k=%d", k)
		}
	}
	// k = 0 -> O.
	if p, err := c.ScalarMulLadder(modn.Zero(), g, LadderOptions{}); err != nil || !p.Inf {
		t.Fatalf("0*G = %v (err %v), want O", p, err)
	}
	// k = n-1 -> -G (exercises the Z1 = 0 recovery path).
	nm1 := c.Order.Sub(modn.Zero(), modn.One())
	if p, err := c.ScalarMulLadder(nm1, g, LadderOptions{}); err != nil || !p.Equal(c.Neg(g)) {
		t.Fatalf("(n-1)*G != -G (err %v)", err)
	}
	// Invalid inputs.
	if _, err := c.ScalarMulLadder(modn.One(), Infinity(), LadderOptions{}); err == nil {
		t.Fatal("ladder accepted the point at infinity")
	}
	if _, err := c.ScalarMulLadder(c.Order.N(), g, LadderOptions{}); err == nil {
		t.Fatal("ladder accepted an unreduced scalar")
	}
}

func TestRandomizedProjectiveCoordinatesInvariance(t *testing.T) {
	// The DPA countermeasure must not change results: same point, same
	// scalar, different randomness, identical output.
	c := K163()
	r := rand.New(rand.NewSource(3))
	for i := 0; i < 10; i++ {
		k := c.Order.Rand(r.Uint64)
		p := c.RandomPoint(r.Uint64)
		plain, err := c.ScalarMulLadder(k, p, LadderOptions{})
		if err != nil {
			t.Fatal(err)
		}
		for trial := 0; trial < 3; trial++ {
			masked, err := c.ScalarMulLadder(k, p, LadderOptions{Rand: r.Uint64})
			if err != nil {
				t.Fatal(err)
			}
			if !masked.Equal(plain) {
				t.Fatal("RPC changed the scalar-multiplication result")
			}
		}
		// Fixed (attacker-known) randomness — the white-box mode.
		fixed, err := c.ScalarMulLadder(k, p, LadderOptions{
			FixedLambda: gf2m.FromUint64(0xdeadbeef),
			FixedMu:     gf2m.FromUint64(0x1234567),
		})
		if err != nil {
			t.Fatal(err)
		}
		if !fixed.Equal(plain) {
			t.Fatal("fixed-randomness RPC changed the result")
		}
	}
}

func TestLadderStateIntermediateInvariant(t *testing.T) {
	// After processing the top j bits of k, the state must represent
	// x(k_j * P) and x((k_j + 1) * P) where k_j is the partial scalar.
	// This invariant is exactly what the DPA attack predicts.
	c := K163()
	r := rand.New(rand.NewSource(4))
	p := c.RandomPoint(r.Uint64)
	k := c.Order.Rand(r.Uint64)
	s := NewLadderState(p.X, gf2m.Zero(), gf2m.Zero())
	partial := modn.Zero()
	for i := LadderBits - 1; i >= LadderBits-20; i-- {
		bit := k.Bit(i)
		s.Step(bit, p.X, c.B)
		partial = c.Order.Add(c.Order.Add(partial, partial), modn.FromUint64(uint64(bit)))
		if partial.IsZero() {
			if !s.Z0.IsZero() {
				t.Fatal("partial scalar 0 should give Z0 = 0")
			}
			continue
		}
		want := c.ScalarMulDoubleAndAdd(partial, p)
		got := gf2m.Div(s.X0, s.Z0)
		if !got.Equal(want.X) {
			t.Fatalf("ladder intermediate mismatch at bit %d", i)
		}
	}
}

func TestXOnlyScalarMul(t *testing.T) {
	c := K163()
	r := rand.New(rand.NewSource(5))
	for i := 0; i < 10; i++ {
		k := c.Order.Rand(r.Uint64)
		p := c.RandomPoint(r.Uint64)
		want := c.ScalarMulDoubleAndAdd(k, p)
		x, ok := c.XOnlyScalarMul(k, p.X, LadderOptions{Rand: r.Uint64})
		if k.IsZero() {
			if ok {
				t.Fatal("0*P should report infinity")
			}
			continue
		}
		if !ok || !x.Equal(want.X) {
			t.Fatal("x-only result mismatch")
		}
	}
}

func TestSolveYProducesCurvePoints(t *testing.T) {
	c := K163()
	r := rand.New(rand.NewSource(6))
	solvable, unsolvable := 0, 0
	for i := 0; i < 200; i++ {
		x := gf2m.FromWords(r.Uint64(), r.Uint64(), r.Uint64())
		y, ok := c.SolveY(x)
		if !ok {
			unsolvable++
			continue
		}
		solvable++
		if !c.OnCurve(Point{X: x, Y: y}) {
			t.Fatalf("SolveY produced an off-curve point for x=%v", x)
		}
		// The conjugate y+x must also be on the curve.
		if !c.OnCurve(Point{X: x, Y: gf2m.Add(y, x)}) {
			t.Fatal("conjugate solution off curve")
		}
	}
	// Roughly half of all x are solvable.
	if solvable < 60 || unsolvable < 60 {
		t.Fatalf("implausible solvability split: %d/%d", solvable, unsolvable)
	}
}

func TestCompressDecompressRoundTrip(t *testing.T) {
	c := K163()
	r := rand.New(rand.NewSource(7))
	for i := 0; i < 50; i++ {
		p := c.RandomPoint(r.Uint64)
		enc, err := c.Compress(p)
		if err != nil {
			t.Fatal(err)
		}
		if len(enc) != 1+gf2m.ByteLen {
			t.Fatalf("compressed length %d", len(enc))
		}
		got, err := c.Decompress(enc)
		if err != nil {
			t.Fatal(err)
		}
		if !got.Equal(p) {
			t.Fatalf("round trip failed: %v -> %v", p, got)
		}
	}
	if _, err := c.Compress(Infinity()); err == nil {
		t.Fatal("compressed the point at infinity")
	}
	if _, err := c.Decompress([]byte{0x04, 1, 2}); err == nil {
		t.Fatal("decompressed malformed bytes")
	}
	if _, err := c.Decompress(make([]byte, 1+gf2m.ByteLen)); err == nil {
		t.Fatal("decompressed header 0x00")
	}
}

func TestValidate(t *testing.T) {
	c := K163()
	r := rand.New(rand.NewSource(8))
	p := c.RandomPoint(r.Uint64)
	if err := c.Validate(p); err != nil {
		t.Fatalf("valid point rejected: %v", err)
	}
	if err := c.Validate(Infinity()); err == nil {
		t.Fatal("O accepted")
	}
	bad := p
	bad.Y = gf2m.Add(bad.Y, gf2m.One())
	if err := c.Validate(bad); err == nil {
		t.Fatal("off-curve point accepted (fault-attack guard broken)")
	}
	// A point of order 2n: subgroup point + order-2 point.
	yt, _ := c.SolveY(gf2m.Zero())
	wrongSub := c.Add(p, Point{X: gf2m.Zero(), Y: yt})
	if !c.OnCurve(wrongSub) {
		t.Fatal("construction error")
	}
	if err := c.Validate(wrongSub); err == nil {
		t.Fatal("point outside the prime-order subgroup accepted")
	}
}

func TestDoubleAndAddOpCount(t *testing.T) {
	d, a := DoubleAndAddOpCount(modn.FromUint64(0b1011))
	if d != 4 || a != 3 {
		t.Fatalf("op count (%d,%d), want (4,3)", d, a)
	}
	d, a = DoubleAndAddOpCount(modn.Zero())
	if d != 0 || a != 0 {
		t.Fatal("op count for zero scalar should be zero")
	}
}

func TestScalarMulIsGroupHomomorphism(t *testing.T) {
	// (k1 + k2 mod n) * P == k1*P + k2*P.
	c := K163()
	r := rand.New(rand.NewSource(9))
	p := c.RandomPoint(r.Uint64)
	for i := 0; i < 8; i++ {
		k1 := c.Order.Rand(r.Uint64)
		k2 := c.Order.Rand(r.Uint64)
		lhs, err := c.ScalarMulLadder(c.Order.Add(k1, k2), p, LadderOptions{})
		if err != nil {
			t.Fatal(err)
		}
		p1, _ := c.ScalarMulLadder(k1, p, LadderOptions{})
		p2, _ := c.ScalarMulLadder(k2, p, LadderOptions{})
		if !lhs.Equal(c.Add(p1, p2)) {
			t.Fatal("scalar multiplication not a homomorphism")
		}
	}
}

func TestRandomPointProperties(t *testing.T) {
	c := K163()
	r := rand.New(rand.NewSource(10))
	seen := map[string]bool{}
	for i := 0; i < 25; i++ {
		p := c.RandomPoint(r.Uint64)
		if err := c.Validate(p); err != nil {
			t.Fatalf("RandomPoint invalid: %v", err)
		}
		seen[p.X.String()] = true
	}
	if len(seen) < 25 {
		t.Fatal("RandomPoint repeats suspiciously")
	}
}

func BenchmarkScalarMulLadder(b *testing.B) {
	c := K163()
	r := rand.New(rand.NewSource(1))
	k := c.Order.Rand(r.Uint64)
	g := c.Generator()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.ScalarMulLadder(k, g, LadderOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkScalarMulLadderRPC(b *testing.B) {
	c := K163()
	r := rand.New(rand.NewSource(1))
	k := c.Order.Rand(r.Uint64)
	g := c.Generator()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.ScalarMulLadder(k, g, LadderOptions{Rand: r.Uint64}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkScalarMulDoubleAndAdd(b *testing.B) {
	c := K163()
	r := rand.New(rand.NewSource(1))
	k := c.Order.Rand(r.Uint64)
	g := c.Generator()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sinkPoint = c.ScalarMulDoubleAndAdd(k, g)
	}
}

var sinkPoint Point
