package ec

import (
	"testing"
	"testing/quick"

	"medsec/internal/gf2m"
	"medsec/internal/modn"
)

// Property-based tests (testing/quick) over the curve group.

func TestQuickSmallScalarLadderAgreement(t *testing.T) {
	c := K163()
	g := c.Generator()
	f := func(k uint16) bool {
		s := modn.FromUint64(uint64(k))
		want := c.ScalarMulDoubleAndAdd(s, g)
		got, err := c.ScalarMulLadder(s, g, LadderOptions{})
		if err != nil {
			return false
		}
		return got.Equal(want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickNegIsInvolution(t *testing.T) {
	c := K163()
	f := func(w0, w1, w2 uint64) bool {
		x := gf2m.FromWords(w0, w1, w2)
		y, ok := c.SolveY(x)
		if !ok {
			return true
		}
		p := Point{X: x, Y: y}
		return c.Neg(c.Neg(p)).Equal(p) && c.Add(p, c.Neg(p)).Inf
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickSolveYOnCurve(t *testing.T) {
	c := K163()
	f := func(w0, w1, w2 uint64) bool {
		x := gf2m.FromWords(w0, w1, w2)
		y, ok := c.SolveY(x)
		if !ok {
			return true
		}
		return c.OnCurve(Point{X: x, Y: y})
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickMDoubleMatchesAffine(t *testing.T) {
	// x-only doubling must agree with the affine group law wherever a
	// point with that x exists.
	c := K163()
	f := func(w0, w1, w2 uint64) bool {
		x := gf2m.FromWords(w0, w1, w2)
		if x.IsZero() {
			return true
		}
		y, ok := c.SolveY(x)
		if !ok {
			return true
		}
		p := Point{X: x, Y: y}
		d := c.Double(p)
		x2, z2 := MDouble(x, gf2m.One(), c.B)
		if z2.IsZero() {
			return d.Inf
		}
		return gf2m.Div(x2, z2).Equal(d.X)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickMAddProjectiveInvariance(t *testing.T) {
	// MAdd's output class must not depend on the representative of the
	// inputs' projective classes.
	c := K163()
	f := func(w0, w1, w2, l0, m0 uint64) bool {
		x := gf2m.FromWords(w0, w1, w2)
		if x.IsZero() {
			return true
		}
		lam := gf2m.FromUint64(l0 | 1)
		mu := gf2m.FromUint64(m0 | 1)
		// State for 2P and 3P from a ladder start.
		s := NewLadderState(x, gf2m.Zero(), gf2m.Zero())
		s.Step(1, x, c.B)
		x3a, z3a := MAdd(s.X0, s.Z0, s.X1, s.Z1, x)
		x3b, z3b := MAdd(gf2m.Mul(s.X0, lam), gf2m.Mul(s.Z0, lam),
			gf2m.Mul(s.X1, mu), gf2m.Mul(s.Z1, mu), x)
		if z3a.IsZero() || z3b.IsZero() {
			return z3a.IsZero() == z3b.IsZero()
		}
		return gf2m.Div(x3a, z3a).Equal(gf2m.Div(x3b, z3b))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickTNAFValid(t *testing.T) {
	f := func(k0, k1 uint64) bool {
		k := modn.Scalar{k0, k1, 0, 0}
		d := TNAF(k, 1)
		return TNAFIsValid(d)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickCompressionRoundTrip(t *testing.T) {
	c := K163()
	f := func(w0, w1, w2 uint64) bool {
		x := gf2m.FromWords(w0, w1, w2)
		if x.IsZero() {
			return true
		}
		y, ok := c.SolveY(x)
		if !ok {
			return true
		}
		for _, p := range []Point{{X: x, Y: y}, {X: x, Y: gf2m.Add(y, x)}} {
			enc, err := c.Compress(p)
			if err != nil {
				return false
			}
			got, err := c.Decompress(enc)
			if err != nil || !got.Equal(p) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
