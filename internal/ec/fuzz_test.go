package ec

import "testing"

// FuzzDecompress: arbitrary bytes must never panic, and anything the
// decoder accepts must be a point on the curve that re-compresses to
// the same encoding — the attack surface of every received protocol
// message.
func FuzzDecompress(f *testing.F) {
	c := K163()
	if enc, err := c.Compress(c.Generator()); err == nil {
		f.Add(enc)
		bad := append([]byte{}, enc...)
		bad[0] = 0x04
		f.Add(bad)
	}
	f.Add(make([]byte, 22))
	f.Add([]byte{0x02})
	f.Fuzz(func(t *testing.T, data []byte) {
		p, err := c.Decompress(data)
		if err != nil {
			return
		}
		if !c.OnCurve(p) {
			t.Fatal("decoder accepted an off-curve point")
		}
		enc, err := c.Compress(p)
		if err != nil {
			t.Fatal(err)
		}
		if len(enc) != len(data) {
			t.Fatal("length changed across round trip")
		}
		for i := range enc {
			if enc[i] != data[i] {
				t.Fatal("re-compression differs from accepted input")
			}
		}
	})
}
