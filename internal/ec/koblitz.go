package ec

import (
	"errors"
	"math/big"

	"medsec/internal/gf2m"
	"medsec/internal/modn"
)

// This file implements the Koblitz-curve machinery that motivates the
// paper's curve choice ("Our ECC chip uses a Koblitz curve [1] defined
// over F_2^163"): the Frobenius endomorphism τ(x, y) = (x², y²) is
// almost free in hardware (two passes through the squarer), and
// τ-adic non-adjacent-form (TNAF) expansions replace every point
// doubling with a Frobenius application. The co-processor itself uses
// the Montgomery ladder for its side-channel properties; TNAF is the
// throughput-oriented alternative for the energy-rich reader side.

// IsKoblitz reports whether the curve is a Koblitz (anomalous binary)
// curve, i.e. has a, b ∈ {0, 1} with b = 1, so that the Frobenius map
// is a curve endomorphism.
func (c *Curve) IsKoblitz() bool {
	return c.B.IsOne() && (c.A.IsZero() || c.A.IsOne())
}

// Frobenius applies τ(x, y) = (x², y²). On a Koblitz curve this is an
// endomorphism satisfying τ² + 2 = µτ with µ = (-1)^(1-a).
func (c *Curve) Frobenius(p Point) Point {
	if p.Inf {
		return p
	}
	return Point{X: gf2m.Sqr(p.X), Y: gf2m.Sqr(p.Y)}
}

// mu returns the trace µ of the Frobenius: +1 for a = 1 (K-163),
// -1 for a = 0.
func (c *Curve) mu() int {
	if c.A.IsOne() {
		return 1
	}
	return -1
}

// TNAF computes the τ-adic non-adjacent form of k for the given
// Frobenius trace µ ∈ {+1, -1} (Solinas' algorithm): digits
// u_i ∈ {0, ±1} with no two adjacent nonzeros, such that
// k = Σ u_i · τ^i in Z[τ]. Without partial modular reduction the
// expansion of an n-bit scalar has roughly 2n digits.
func TNAF(k modn.Scalar, mu int) []int8 {
	if mu != 1 && mu != -1 {
		panic("ec: Frobenius trace must be ±1")
	}
	r0 := new(big.Int)
	// Import the 256-bit scalar.
	for i := modn.Words - 1; i >= 0; i-- {
		r0.Lsh(r0, 64)
		r0.Or(r0, new(big.Int).SetUint64(k[i]))
	}
	r1 := new(big.Int)
	var digits []int8
	two := big.NewInt(2)
	four := big.NewInt(4)
	tmp := new(big.Int)
	for r0.Sign() != 0 || r1.Sign() != 0 {
		var u int8
		if r0.Bit(0) == 1 {
			// u = 2 - ((r0 - 2*r1) mod 4), giving ±1.
			tmp.Mul(r1, two)
			tmp.Sub(r0, tmp)
			tmp.Mod(tmp, four) // Go's Mod is non-negative
			u = int8(2 - tmp.Int64())
			r0.Sub(r0, big.NewInt(int64(u)))
		}
		digits = append(digits, u)
		// (r0, r1) <- (r1 + µ*r0/2, -r0/2). r0 is even here, so the
		// arithmetic right shift is exact division by two.
		half := new(big.Int).Rsh(r0, 1)
		newR0 := new(big.Int)
		if mu == 1 {
			newR0.Add(r1, half)
		} else {
			newR0.Sub(r1, half)
		}
		r1 = new(big.Int).Neg(half)
		r0 = newR0
	}
	return digits
}

// TNAFIsValid checks the non-adjacency property (at most one of any
// two consecutive digits is nonzero).
func TNAFIsValid(digits []int8) bool {
	for i := 1; i < len(digits); i++ {
		if digits[i] != 0 && digits[i-1] != 0 {
			return false
		}
	}
	return true
}

// TNAFWeight returns the number of nonzero digits — the point-addition
// count of a TNAF scalar multiplication (compare to HW(k) additions
// plus bitlen(k) doublings for double-and-add).
func TNAFWeight(digits []int8) int {
	n := 0
	for _, d := range digits {
		if d != 0 {
			n++
		}
	}
	return n
}

// ScalarMulTNAF computes k*P on a Koblitz curve via the τ-adic NAF:
// Horner evaluation Q <- τ(Q); Q <- Q ± P per digit. It replaces all
// doublings with (cheap) Frobenius applications. Not constant time —
// reader-side use only.
func (c *Curve) ScalarMulTNAF(k modn.Scalar, p Point) (Point, error) {
	if !c.IsKoblitz() {
		return Point{}, errors.New("ec: TNAF requires a Koblitz curve")
	}
	digits := TNAF(k, c.mu())
	q := Infinity()
	negP := c.Neg(p)
	for i := len(digits) - 1; i >= 0; i-- {
		q = c.Frobenius(q)
		switch digits[i] {
		case 1:
			q = c.Add(q, p)
		case -1:
			q = c.Add(q, negP)
		}
	}
	return q, nil
}
