package ec

import (
	"math/rand"
	"testing"

	"medsec/internal/modn"
)

func TestIsKoblitz(t *testing.T) {
	if !K163().IsKoblitz() {
		t.Fatal("K-163 not recognized as Koblitz")
	}
	if B163().IsKoblitz() {
		t.Fatal("B-163 wrongly recognized as Koblitz")
	}
}

func TestFrobeniusIsEndomorphism(t *testing.T) {
	c := K163()
	r := rand.New(rand.NewSource(1))
	for i := 0; i < 20; i++ {
		p := c.RandomPoint(r.Uint64)
		tp := c.Frobenius(p)
		if !c.OnCurve(tp) {
			t.Fatal("Frobenius left the curve")
		}
		// Characteristic equation: τ²P + 2P = µτP (µ = 1 for a = 1).
		t2p := c.Frobenius(tp)
		twoP := c.Double(p)
		lhs := c.Add(t2p, twoP)
		if !lhs.Equal(tp) {
			t.Fatalf("τ² + 2 != τ for point %v", p)
		}
		// Frobenius is additive: τ(P+Q) = τP + τQ.
		q := c.RandomPoint(r.Uint64)
		if !c.Frobenius(c.Add(p, q)).Equal(c.Add(tp, c.Frobenius(q))) {
			t.Fatal("Frobenius not additive")
		}
	}
	if !c.Frobenius(Infinity()).Inf {
		t.Fatal("τ(O) != O")
	}
}

func TestTNAFProperties(t *testing.T) {
	c := K163()
	r := rand.New(rand.NewSource(2))
	for i := 0; i < 20; i++ {
		k := c.Order.RandNonZero(r.Uint64)
		digits := TNAF(k, 1)
		if !TNAFIsValid(digits) {
			t.Fatalf("TNAF has adjacent nonzero digits for k=%v", k)
		}
		for _, d := range digits {
			if d != 0 && d != 1 && d != -1 {
				t.Fatalf("digit %d out of range", d)
			}
		}
		// Expansion length ~ 2*163 for a full-size scalar.
		if len(digits) > 2*170 {
			t.Fatalf("TNAF suspiciously long: %d digits", len(digits))
		}
		// Average density ~ 1/3 (non-adjacency); allow generous band.
		w := TNAFWeight(digits)
		if w < len(digits)/6 || w > len(digits)/2+1 {
			t.Fatalf("TNAF weight %d implausible for length %d", w, len(digits))
		}
	}
	// Small scalars, both traces.
	for _, mu := range []int{1, -1} {
		for k := uint64(1); k <= 16; k++ {
			if !TNAFIsValid(TNAF(modn.FromUint64(k), mu)) {
				t.Fatalf("invalid TNAF for k=%d mu=%d", k, mu)
			}
		}
	}
	if len(TNAF(modn.Zero(), 1)) != 0 {
		t.Fatal("TNAF(0) should be empty")
	}
}

func TestTNAFPanicsOnBadTrace(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("TNAF accepted mu=0")
		}
	}()
	TNAF(modn.One(), 0)
}

func TestScalarMulTNAFMatchesLadder(t *testing.T) {
	c := K163()
	r := rand.New(rand.NewSource(3))
	for i := 0; i < 10; i++ {
		k := c.Order.RandNonZero(r.Uint64)
		p := c.RandomPoint(r.Uint64)
		want, err := c.ScalarMulLadder(k, p, LadderOptions{})
		if err != nil {
			t.Fatal(err)
		}
		got, err := c.ScalarMulTNAF(k, p)
		if err != nil {
			t.Fatal(err)
		}
		if !got.Equal(want) {
			t.Fatalf("TNAF scalar mult wrong for k=%v", k)
		}
	}
	// Small cases including k = 0.
	g := c.Generator()
	for k := uint64(0); k <= 10; k++ {
		got, err := c.ScalarMulTNAF(modn.FromUint64(k), g)
		if err != nil {
			t.Fatal(err)
		}
		if !got.Equal(c.ScalarMulDoubleAndAdd(modn.FromUint64(k), g)) {
			t.Fatalf("TNAF wrong for k=%d", k)
		}
	}
}

func TestScalarMulTNAFRejectsNonKoblitz(t *testing.T) {
	if _, err := B163().ScalarMulTNAF(modn.One(), B163().Generator()); err == nil {
		t.Fatal("TNAF on B-163 accepted")
	}
}

func TestTNAFAdditionCountBeatsDoubleAndAdd(t *testing.T) {
	// The Koblitz pay-off: ~len/3 additions and zero doublings versus
	// HW(k) additions plus bitlen doublings.
	c := K163()
	r := rand.New(rand.NewSource(4))
	var tnafAdds, daAdds, daDoubles int
	for i := 0; i < 20; i++ {
		k := c.Order.RandNonZero(r.Uint64)
		tnafAdds += TNAFWeight(TNAF(k, 1))
		d, a := DoubleAndAddOpCount(k)
		daDoubles += d
		daAdds += a
	}
	// TNAF on ~326 digits: ~109 adds; DA: ~81 adds + 162 doubles.
	if tnafAdds >= daAdds+daDoubles {
		t.Fatalf("TNAF total group ops (%d adds) not below DA (%d adds + %d doubles)",
			tnafAdds, daAdds, daDoubles)
	}
}

func BenchmarkScalarMulTNAF(b *testing.B) {
	c := K163()
	r := rand.New(rand.NewSource(1))
	k := c.Order.RandNonZero(r.Uint64)
	g := c.Generator()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.ScalarMulTNAF(k, g); err != nil {
			b.Fatal(err)
		}
	}
}
