package link

import (
	"bytes"
	"errors"
	"testing"
)

func TestLosslessRoundTrip(t *testing.T) {
	p := NewLosslessPair()
	a, b := p.A(), p.B()
	msgs := [][]byte{[]byte("A=a*P"), []byte("W=y*A"), []byte("commit"), {}, []byte("s")}
	for i, m := range msgs {
		var src, dst *Endpoint
		if i%2 == 0 {
			src, dst = a, b
		} else {
			src, dst = b, a
		}
		if err := src.Send(m); err != nil {
			t.Fatalf("send %d: %v", i, err)
		}
		got, err := dst.Recv()
		if err != nil {
			t.Fatalf("recv %d: %v", i, err)
		}
		if !bytes.Equal(got, m) {
			t.Fatalf("message %d corrupted on a lossless link", i)
		}
	}
	// Perfect channel: exactly one attempt per frame, payload bits
	// equal logical bits, zero retries.
	sa := a.Stats()
	if sa.Retries != 0 || sa.Dropped != 0 || sa.Corrupted != 0 {
		t.Fatalf("lossless link showed channel faults: %+v", sa)
	}
	wantTx := 8 * (len(msgs[0]) + len(msgs[2]) + len(msgs[4]))
	if sa.DataTxBits != wantTx {
		t.Fatalf("A DataTxBits = %d, want %d", sa.DataTxBits, wantTx)
	}
	if sa.FramesSent != 3 || sa.Delivered != 3 {
		t.Fatalf("A sent/delivered = %d/%d, want 3/3", sa.FramesSent, sa.Delivered)
	}
	// Framing and ACK overhead is real and accounted, just separately.
	if sa.OverheadTxBits != 3*OverheadBits || sa.AckRxBits == 0 {
		t.Fatalf("overhead accounting wrong: %+v", sa)
	}
	if p.Elapsed() == 0 {
		t.Fatal("virtual clock did not advance")
	}
}

func TestRecvEmpty(t *testing.T) {
	p := NewLosslessPair()
	if _, err := p.A().Recv(); err == nil {
		t.Fatal("Recv on empty inbox succeeded")
	}
}

func TestLossyDeliveryWithRetries(t *testing.T) {
	cc := Lossy(0.4)
	ac := DefaultARQ()
	ac.RetryBudget = 10_000
	ac.MaxTries = 100
	p, err := NewPair(cc, ac, 42)
	if err != nil {
		t.Fatal(err)
	}
	a, b := p.A(), p.B()
	payload := []byte("vitals: HR=61, lead impedance 540 ohm")
	const n = 60
	for i := 0; i < n; i++ {
		if err := a.Send(payload); err != nil {
			t.Fatalf("send %d: %v", i, err)
		}
		got, err := b.Recv()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, payload) {
			t.Fatalf("payload %d corrupted: ARQ delivered a damaged frame", i)
		}
	}
	sa := a.Stats()
	if sa.Retries == 0 || sa.Dropped == 0 {
		t.Fatalf("40%% loss produced no retries/drops: %+v", sa)
	}
	// Attempt bookkeeping: every physical attempt is either dropped or
	// arrives as exactly one non-duplicate copy.
	if sa.FramesSent != sa.Dropped+sa.Delivered+sa.Corrupted+sa.Truncated {
		t.Fatalf("attempt classification inconsistent: %+v", sa)
	}
	// Retries inflate the payload bits actually transmitted.
	if sa.DataTxBits <= 8*len(payload)*n {
		t.Fatalf("DataTxBits %d not inflated by retries", sa.DataTxBits)
	}
	// Without duplication, the receiver cannot hear more payload bits
	// than were transmitted.
	if b.Stats().DataRxBits > sa.DataTxBits {
		t.Fatalf("receiver heard %d payload bits of %d transmitted", b.Stats().DataRxBits, sa.DataTxBits)
	}
}

func TestCorruptionNeverSurfaces(t *testing.T) {
	// Heavy bit-flip channel: the CRC must reject every damaged frame
	// and the ARQ must still deliver the exact payload.
	cc := ChannelConfig{BitFlipRate: 0.01}
	ac := DefaultARQ()
	ac.RetryBudget = -1
	ac.MaxTries = 1000
	p, err := NewPair(cc, ac, 7)
	if err != nil {
		t.Fatal(err)
	}
	payload := []byte("therapy: set mode DDD, rate 60")
	for i := 0; i < 30; i++ {
		if err := p.A().Send(payload); err != nil {
			t.Fatal(err)
		}
		got, err := p.B().Recv()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, payload) {
			t.Fatal("corrupted frame surfaced through the CRC")
		}
	}
	if p.A().Stats().Corrupted == 0 {
		t.Fatal("1% bit-flip channel corrupted nothing; fault model inert?")
	}
}

func TestTruncationAndDuplication(t *testing.T) {
	cc := ChannelConfig{TruncateRate: 0.3, DuplicateRate: 0.3}
	ac := DefaultARQ()
	ac.RetryBudget = -1
	ac.MaxTries = 1000
	p, err := NewPair(cc, ac, 9)
	if err != nil {
		t.Fatal(err)
	}
	payload := []byte("0123456789abcdef0123456789abcdef")
	for i := 0; i < 50; i++ {
		if err := p.A().Send(payload); err != nil {
			t.Fatal(err)
		}
		got, err := p.B().Recv()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, payload) {
			t.Fatalf("delivery %d damaged", i)
		}
	}
	sa := p.A().Stats()
	if sa.Truncated == 0 || sa.Duplicated == 0 {
		t.Fatalf("fault model inert: %+v", sa)
	}
	// Duplicated data frames must not duplicate payloads in the inbox.
	if _, err := p.B().Recv(); err == nil {
		t.Fatal("duplicate frame produced a duplicate payload")
	}
}

func TestBurstLossRecovers(t *testing.T) {
	cc := Bursty(0.3)
	ac := DefaultARQ()
	ac.RetryBudget = -1
	ac.MaxTries = 10_000
	p, err := NewPair(cc, ac, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 40; i++ {
		if err := p.A().Send([]byte("m")); err != nil {
			t.Fatal(err)
		}
		if _, err := p.B().Recv(); err != nil {
			t.Fatal(err)
		}
	}
	if p.A().Stats().Dropped == 0 {
		t.Fatal("bursty channel dropped nothing")
	}
}

func TestRetryBudgetExhaustion(t *testing.T) {
	// A dead channel must fail fast with a typed error, not hang.
	cc := ChannelConfig{DropRate: 1}
	ac := DefaultARQ()
	p, err := NewPair(cc, ac, 1)
	if err != nil {
		t.Fatal(err)
	}
	sendErr := p.A().Send([]byte("hello?"))
	var be *BudgetError
	if !errors.As(sendErr, &be) {
		t.Fatalf("error %v is not a *BudgetError", sendErr)
	}
	if be.Tries != ac.MaxTries {
		t.Fatalf("gave up after %d tries, want MaxTries=%d", be.Tries, ac.MaxTries)
	}
	if be.Budget {
		t.Fatal("per-frame cap misreported as session budget")
	}
	// Session-wide budget: smaller than MaxTries-1 so it binds first.
	ac2 := DefaultARQ()
	ac2.RetryBudget = 3
	p2, _ := NewPair(cc, ac2, 1)
	sendErr = p2.A().Send([]byte("hello?"))
	if !errors.As(sendErr, &be) || !be.Budget {
		t.Fatalf("session budget exhaustion not reported: %v", sendErr)
	}
	if p2.A().Stats().Retries != 3 {
		t.Fatalf("spent %d retries, budget was 3", p2.A().Stats().Retries)
	}
	if p2.A().RetriesLeft() != 0 {
		t.Fatalf("RetriesLeft = %d, want 0", p2.A().RetriesLeft())
	}
	// RetryBudget = 0 disables retries entirely.
	ac3 := DefaultARQ()
	ac3.RetryBudget = 0
	p3, _ := NewPair(cc, ac3, 1)
	if err := p3.A().Send([]byte("x")); err == nil {
		t.Fatal("zero-budget send on a dead channel succeeded")
	}
	if p3.A().Stats().FramesSent != 1 {
		t.Fatalf("zero budget allowed %d attempts", p3.A().Stats().FramesSent)
	}
}

func TestBackoffGrowsAndCaps(t *testing.T) {
	ac := ARQConfig{MaxTries: 10, RetryBudget: -1, BaseTimeout: 16, MaxBackoff: 64, JitterTicks: 0}
	p, err := NewPair(ChannelConfig{DropRate: 1}, ac, 5)
	if err != nil {
		t.Fatal(err)
	}
	e := p.A()
	if w1, w2 := e.backoffWait(1), e.backoffWait(2); w1 != 16 || w2 != 32 {
		t.Fatalf("backoff(1,2) = %d,%d want 16,32", w1, w2)
	}
	if w := e.backoffWait(9); w != 64 {
		t.Fatalf("backoff not capped: %d", w)
	}
	// The virtual clock pays for every timeout.
	before := p.Elapsed()
	_ = e.Send([]byte("x"))
	if p.Elapsed()-before < 16+32+64 {
		t.Fatalf("clock advanced only %d ticks across backoffs", p.Elapsed()-before)
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := NewPair(ChannelConfig{DropRate: 1.5}, DefaultARQ(), 0); err == nil {
		t.Fatal("DropRate > 1 accepted")
	}
	if _, err := NewPair(ChannelConfig{BitFlipRate: -0.1}, DefaultARQ(), 0); err == nil {
		t.Fatal("negative rate accepted")
	}
	if _, err := NewPair(Lossless(), ARQConfig{MaxTries: 0}, 0); err == nil {
		t.Fatal("MaxTries 0 accepted")
	}
	if _, err := NewPair(Lossless(), ARQConfig{MaxTries: 1, BaseTimeout: -1}, 0); err == nil {
		t.Fatal("negative timeout accepted")
	}
	p := NewLosslessPair()
	if err := p.A().Send(make([]byte, MaxPayload+1)); err == nil {
		t.Fatal("oversized payload accepted")
	}
}

func TestFrameCodec(t *testing.T) {
	f := encodeFrame(typeData, 7, []byte("payload"))
	ftype, seq, payload, ok := decodeFrame(f)
	if !ok || ftype != typeData || seq != 7 || string(payload) != "payload" {
		t.Fatalf("codec round trip failed: %v %v %q %v", ftype, seq, payload, ok)
	}
	// Any single bit flip must be caught.
	for i := 0; i < len(f)*8; i += 7 {
		g := append([]byte(nil), f...)
		g[i/8] ^= 1 << (i % 8)
		if _, _, _, ok := decodeFrame(g); ok {
			t.Fatalf("bit flip at %d undetected", i)
		}
	}
	// Truncations must be caught.
	for cut := 0; cut < len(f); cut++ {
		if _, _, _, ok := decodeFrame(f[:cut]); ok {
			t.Fatalf("truncation to %d bytes undetected", cut)
		}
	}
}

func TestBudgetErrorString(t *testing.T) {
	if (&BudgetError{Seq: 1, Tries: 8}).Error() == "" ||
		(&BudgetError{Seq: 1, Tries: 8, Budget: true}).Error() == "" {
		t.Fatal("empty error strings")
	}
}
