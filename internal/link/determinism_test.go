package link

import (
	"fmt"
	"reflect"
	"testing"
)

// drive pushes a fixed message schedule through a fresh pair and
// returns the full observable outcome: transcript, both stats, the
// delivered payloads and the clock.
func drive(t *testing.T, cc ChannelConfig, ac ARQConfig, seed uint64) (log []Event, sa, sb Stats, delivered []string, clock int) {
	t.Helper()
	p, err := NewPair(cc, ac, seed)
	if err != nil {
		t.Fatal(err)
	}
	p.Record = true
	a, b := p.A(), p.B()
	schedule := []struct {
		fromA bool
		msg   string
	}{
		{true, "A=a*P................."},
		{false, "W=y*A................."},
		{true, "R=r*P................."},
		{false, "e-challenge..........."},
		{true, "s-response............"},
	}
	for _, s := range schedule {
		src, dst := a, b
		if !s.fromA {
			src, dst = b, a
		}
		if err := src.Send([]byte(s.msg)); err != nil {
			// Budget exhaustion is a legitimate deterministic outcome.
			delivered = append(delivered, "ABORT:"+err.Error())
			break
		}
		got, err := dst.Recv()
		if err != nil {
			t.Fatal(err)
		}
		delivered = append(delivered, string(got))
	}
	return p.Log, a.Stats(), b.Stats(), delivered, p.Elapsed()
}

// TestLinkDeterminism pins the package's core contract: identical seed
// and configuration produce a bit-identical transcript, stats, payload
// stream and virtual clock — the property that makes every lossy-link
// experiment in the repo replayable from its printed seed.
func TestLinkDeterminism(t *testing.T) {
	configs := []ChannelConfig{
		Lossless(),
		Lossy(0.25),
		Bursty(0.3),
		{DropRate: 0.2, BitFlipRate: 0.002, TruncateRate: 0.1, DuplicateRate: 0.1},
		{DropRate: 0.95}, // budget-exhaustion path must replay too
	}
	for ci, cc := range configs {
		cc := cc
		t.Run(fmt.Sprintf("config%d", ci), func(t *testing.T) {
			ac := DefaultARQ()
			log1, sa1, sb1, del1, c1 := drive(t, cc, ac, 99)
			log2, sa2, sb2, del2, c2 := drive(t, cc, ac, 99)
			if !reflect.DeepEqual(log1, log2) {
				t.Fatal("transcripts diverged for identical seeds")
			}
			if sa1 != sa2 || sb1 != sb2 {
				t.Fatalf("stats diverged: %+v vs %+v / %+v vs %+v", sa1, sa2, sb1, sb2)
			}
			if !reflect.DeepEqual(del1, del2) || c1 != c2 {
				t.Fatal("payload stream or clock diverged")
			}
			// And a different seed must (for the faulty configs) change
			// the physical transcript.
			if cc != Lossless() {
				log3, _, _, _, _ := drive(t, cc, ac, 100)
				if reflect.DeepEqual(log1, log3) {
					t.Fatal("seed does not influence the channel")
				}
			}
		})
	}
}

// TestLinkDeterminismTranscriptShape sanity-checks the recorded
// transcript: events are clock-ordered and every data attempt appears.
func TestLinkDeterminismTranscriptShape(t *testing.T) {
	log, sa, _, _, _ := drive(t, Lossy(0.3), DefaultARQ(), 5)
	if len(log) == 0 {
		t.Fatal("no transcript recorded")
	}
	data := 0
	for i, ev := range log {
		if i > 0 && ev.Tick < log[i-1].Tick {
			t.Fatalf("transcript not clock-ordered at %d", i)
		}
		if ev.Kind == "data" {
			data++
		}
		if ev.String() == "" {
			t.Fatal("empty event rendering")
		}
	}
	if want := sa.FramesSent; data < want {
		t.Fatalf("transcript shows %d data attempts, stats show %d", data, want)
	}
}
