package link

import (
	"testing"

	"medsec/internal/obs"
)

// The receive-side billing regression suite (see onData): duplicate
// deliveries and truncated frames must be billed to OverheadRxBits,
// never DataRxBits. Historically the payload portion of a duplicate
// was billed as payload a second time, so DataRxBits could exceed
// payload×attempts.

// TestDuplicateBilledAsOverhead: with DuplicateRate=1 every attempt
// arrives twice; exactly one copy per attempt carries payload.
func TestDuplicateBilledAsOverhead(t *testing.T) {
	cc := ChannelConfig{DuplicateRate: 1}
	p, err := NewPair(cc, DefaultARQ(), 11)
	if err != nil {
		t.Fatal(err)
	}
	payload := make([]byte, 32)
	const sends = 5
	for i := 0; i < sends; i++ {
		if err := p.A().Send(payload); err != nil {
			t.Fatal(err)
		}
	}
	st := p.B().Stats()
	a := p.A().Stats()
	// Every attempt delivered (no drops), so payload bits arrive once
	// per physical attempt — the duplicate copies carry none.
	if want := 8 * len(payload) * a.FramesSent; st.DataRxBits != want {
		t.Fatalf("DataRxBits = %d, want %d (payload once per attempt; duplicates are overhead)", st.DataRxBits, want)
	}
	if st.DataRxBits > a.DataTxBits {
		t.Fatalf("receiver billed %d payload bits but only %d were transmitted — duplicate double-billing is back", st.DataRxBits, a.DataTxBits)
	}
	// The duplicates' full frame bits (payload included) land in
	// overhead: per attempt, one framed copy (8 bytes) + one whole
	// duplicate frame.
	frameLen := frameOverheadBytes + len(payload)
	if want := 8 * (frameOverheadBytes + frameLen) * a.FramesSent; st.OverheadRxBits != want {
		t.Fatalf("OverheadRxBits = %d, want %d", st.OverheadRxBits, want)
	}
	if a.Duplicated != a.FramesSent {
		t.Fatalf("Duplicated = %d, want %d", a.Duplicated, a.FramesSent)
	}
}

// TestTruncatedBilledAsOverhead: with TruncateRate=1 no frame ever
// arrives whole, so no payload bits may be billed at all.
func TestTruncatedBilledAsOverhead(t *testing.T) {
	cc := ChannelConfig{TruncateRate: 1}
	arq := ARQConfig{MaxTries: 3, RetryBudget: -1, BaseTimeout: 4}
	p, err := NewPair(cc, arq, 12)
	if err != nil {
		t.Fatal(err)
	}
	err = p.A().Send(make([]byte, 64))
	if _, ok := err.(*BudgetError); !ok {
		t.Fatalf("expected BudgetError on an all-truncating channel, got %v", err)
	}
	st := p.B().Stats()
	if st.DataRxBits != 0 {
		t.Fatalf("DataRxBits = %d for truncated-only arrivals, want 0", st.DataRxBits)
	}
	if st.OverheadRxBits == 0 {
		t.Fatal("truncated arrivals billed nowhere")
	}
}

// TestStatsMatchTranscript records a lossy adversarial run and checks
// the Stats ledger against totals independently derived from the
// delivery transcript — the counters and the event log must tell the
// same story.
func TestStatsMatchTranscript(t *testing.T) {
	cc := ChannelConfig{DropRate: 0.2, TruncateRate: 0.15, DuplicateRate: 0.25}
	p, err := NewPair(cc, ARQConfig{MaxTries: 16, RetryBudget: -1, BaseTimeout: 8, MaxBackoff: 64, JitterTicks: 4}, 1337)
	if err != nil {
		t.Fatal(err)
	}
	p.Record = true
	payload := make([]byte, 40)
	const sends = 25
	for i := 0; i < sends; i++ {
		if err := p.A().Send(payload); err != nil {
			t.Fatal(err)
		}
	}

	// Fold the transcript (A>B direction) into independent totals.
	var data, drops, dups, truncs, delivers, corrupts, acksTx, timeouts int
	for _, ev := range p.Log {
		switch {
		case ev.Dir == "A>B" && ev.Kind == "data":
			data++
		case ev.Dir == "A>B" && ev.Kind == "drop":
			drops++
		case ev.Dir == "A>B" && ev.Kind == "dup":
			dups++
		case ev.Dir == "A>B" && ev.Kind == "trunc":
			truncs++
		case ev.Dir == "A>B" && ev.Kind == "deliver":
			delivers++
		case ev.Dir == "A>B" && ev.Kind == "corrupt":
			corrupts++
		case ev.Dir == "A>B" && ev.Kind == "timeout":
			timeouts++
		case ev.Dir == "B>A" && ev.Kind == "ack":
			acksTx++
		}
	}

	a, b := p.A().Stats(), p.B().Stats()
	if a.FramesSent != data {
		t.Fatalf("FramesSent = %d, transcript has %d data events", a.FramesSent, data)
	}
	if a.Dropped != drops || a.Duplicated != dups || a.Truncated != truncs || a.Delivered != delivers {
		t.Fatalf("channel classification mismatch: stats {drop %d dup %d trunc %d deliver %d} vs transcript {%d %d %d %d}",
			a.Dropped, a.Duplicated, a.Truncated, a.Delivered, drops, dups, truncs, delivers)
	}
	if a.Retries != data-sends {
		t.Fatalf("Retries = %d, want attempts-frames = %d", a.Retries, data-sends)
	}
	// Tx billing: payload per attempt, framing per attempt.
	if a.DataTxBits != 8*len(payload)*data {
		t.Fatalf("DataTxBits = %d, want %d", a.DataTxBits, 8*len(payload)*data)
	}
	if a.OverheadTxBits != OverheadBits*data {
		t.Fatalf("OverheadTxBits = %d, want %d", a.OverheadTxBits, OverheadBits*data)
	}
	// Rx billing: only full-length first copies (deliver + corrupt
	// events) carry payload; dup/trunc arrivals are pure overhead.
	if want := 8 * len(payload) * (delivers + corrupts); b.DataRxBits != want {
		t.Fatalf("DataRxBits = %d, transcript-derived total %d", b.DataRxBits, want)
	}
	if b.DataRxBits > a.DataTxBits {
		t.Fatal("receiver billed more payload bits than were transmitted")
	}
	// ACK billing: every ack event is one 8-byte frame.
	if want := 8 * frameOverheadBytes * acksTx; b.AckTxBits != want {
		t.Fatalf("AckTxBits = %d, transcript has %d acks (= %d bits)", b.AckTxBits, acksTx, want)
	}
}

// TestPairInstrumentCounters: the obs bundle agrees with Stats, and
// instrumenting does not perturb the transcript.
func TestPairInstrumentCounters(t *testing.T) {
	run := func(reg *obs.Registry) (*Pair, Stats) {
		p, err := NewPair(ChannelConfig{DropRate: 0.3, DuplicateRate: 0.2}, ARQConfig{MaxTries: 16, RetryBudget: -1, BaseTimeout: 8}, 99)
		if err != nil {
			t.Fatal(err)
		}
		p.Record = true
		p.Instrument(reg)
		for i := 0; i < 10; i++ {
			if err := p.A().Send(make([]byte, 24)); err != nil {
				t.Fatal(err)
			}
		}
		return p, p.A().Stats()
	}
	bare, bareStats := run(nil)
	reg := obs.New()
	inst, instStats := run(reg)
	if bareStats != instStats {
		t.Fatalf("instrumentation perturbed Stats: %+v vs %+v", bareStats, instStats)
	}
	if len(bare.Log) != len(inst.Log) {
		t.Fatalf("instrumentation perturbed the transcript: %d vs %d events", len(bare.Log), len(inst.Log))
	}
	if got := reg.Counter("link_tries").Value(); got != int64(instStats.FramesSent) {
		t.Fatalf("link_tries = %d, Stats.FramesSent = %d", got, instStats.FramesSent)
	}
	if got := reg.Counter("link_retries").Value(); got != int64(instStats.Retries) {
		t.Fatalf("link_retries = %d, Stats.Retries = %d", got, instStats.Retries)
	}
	payload := reg.Counter("link_payload_tx_bits").Value()
	retrans := reg.Counter("link_retrans_tx_bits").Value()
	if payload+retrans != int64(instStats.DataTxBits) {
		t.Fatalf("payload %d + retrans %d != DataTxBits %d", payload, retrans, instStats.DataTxBits)
	}
	if payload != int64(8*24*10) {
		t.Fatalf("link_payload_tx_bits = %d, want %d (first attempts only)", payload, 8*24*10)
	}
	// Both endpoints share the bundle; only B sends acks here.
	if got := reg.Counter("link_ack_tx_bits").Value(); got != int64(inst.B().Stats().AckTxBits) {
		t.Fatalf("link_ack_tx_bits = %d, B's AckTxBits = %d", got, inst.B().Stats().AckTxBits)
	}
}
