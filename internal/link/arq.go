package link

import (
	"errors"
	"fmt"

	"medsec/internal/obs"
	"medsec/internal/rng"
)

// Event is one entry of a Pair's delivery transcript (recorded when
// Pair.Record is true). The transcript is part of the determinism
// contract: identical seed + configs + call sequence ⇒ identical
// transcript.
type Event struct {
	Tick int
	Dir  string // "A>B" or "B>A"
	Kind string // data, ack, drop, trunc, corrupt, dup, deliver, ack-rx, timeout, budget
	Seq  int
	Try  int
}

func (e Event) String() string {
	return fmt.Sprintf("t=%-6d %s %-8s seq=%d try=%d", e.Tick, e.Dir, e.Kind, e.Seq, e.Try)
}

// delivery is one copy of a frame that physically reached the peer.
type delivery struct {
	frame     []byte
	truncated bool
	corrupted bool
	duplicate bool
}

// faultStream is the fault process of one channel direction.
type faultStream struct {
	cfg   ChannelConfig
	d     *rng.DRBG
	burst bool
}

// prob draws one Bernoulli decision from the stream.
func (fs *faultStream) prob(p float64) bool {
	if p <= 0 {
		return false
	}
	return float64(fs.d.Uint64()>>11)*(1.0/(1<<53)) < p
}

// transmit pushes one frame through the fault model and returns the
// delivered copies (0, 1 or 2).
func (fs *faultStream) transmit(frame []byte) (out []delivery, dropped bool) {
	// Gilbert–Elliott burst state advances once per frame.
	if fs.burst {
		if fs.prob(fs.cfg.BurstExitRate) {
			fs.burst = false
		}
	} else if fs.prob(fs.cfg.BurstEnterRate) {
		fs.burst = true
	}
	dropRate := fs.cfg.DropRate
	if fs.burst {
		dropRate = fs.cfg.BurstDropRate
	}
	if fs.prob(dropRate) {
		return nil, true
	}

	del := delivery{frame: append([]byte(nil), frame...)}
	if fs.prob(fs.cfg.TruncateRate) && len(del.frame) > 1 {
		cut := 1 + fs.d.Intn(len(del.frame)-1)
		del.frame = del.frame[:cut]
		del.truncated = true
		del.corrupted = true
	}
	if fs.cfg.BitFlipRate > 0 {
		for i := range del.frame {
			for b := 0; b < 8; b++ {
				if fs.prob(fs.cfg.BitFlipRate) {
					del.frame[i] ^= 1 << b
					del.corrupted = true
				}
			}
		}
	}
	out = []delivery{del}
	if fs.prob(fs.cfg.DuplicateRate) {
		dup := delivery{frame: append([]byte(nil), del.frame...),
			truncated: del.truncated, corrupted: del.corrupted, duplicate: true}
		out = append(out, dup)
	}
	return out, false
}

// pairMetrics is a Pair's counter bundle, resolved once by Instrument.
// The zero value (no registry) is fully inert: every obs method is a
// nil-safe no-op.
type pairMetrics struct {
	// tries counts physical data-frame attempts (both directions);
	// retries those beyond each frame's first; timeouts the
	// unacknowledged attempts that waited out a backoff.
	tries, retries, timeouts *obs.Counter
	// budgetAborts counts Sends that died on MaxTries or RetryBudget.
	budgetAborts *obs.Counter
	// payloadTxBits / retransTxBits split transmitted payload bits into
	// first-attempt and retransmission bits — the paper's "wasted
	// transmit energy" number. ackTxBits counts acknowledgement frames.
	payloadTxBits, retransTxBits, ackTxBits *obs.Counter
}

// Pair is a bidirectional point-to-point link: two Endpoints joined by
// two independent fault streams and a shared virtual clock.
type Pair struct {
	arq ARQConfig
	// Record enables the delivery transcript (Log).
	Record bool
	Log    []Event

	clock int
	a, b  Endpoint
	met   pairMetrics
}

// Instrument attaches the link counters (link_tries, link_retries,
// link_timeouts, link_budget_aborts, link_payload_tx_bits,
// link_retrans_tx_bits, link_ack_tx_bits) to reg. Both endpoints share
// the bundle; a nil registry leaves the pair uninstrumented (the
// default, with zero overhead). Metrics observe, never perturb: the
// delivery transcript and Stats are bit-identical either way.
func (p *Pair) Instrument(reg *obs.Registry) {
	p.met = pairMetrics{
		tries:         reg.Counter("link_tries"),
		retries:       reg.Counter("link_retries"),
		timeouts:      reg.Counter("link_timeouts"),
		budgetAborts:  reg.Counter("link_budget_aborts"),
		payloadTxBits: reg.Counter("link_payload_tx_bits"),
		retransTxBits: reg.Counter("link_retrans_tx_bits"),
		ackTxBits:     reg.Counter("link_ack_tx_bits"),
	}
}

// NewPair builds a link with the same channel model in both directions
// and the given ARQ policy. All channel randomness derives from seed.
func NewPair(cc ChannelConfig, ac ARQConfig, seed uint64) (*Pair, error) {
	if err := cc.validate(); err != nil {
		return nil, err
	}
	if err := ac.validate(); err != nil {
		return nil, err
	}
	p := &Pair{arq: ac}
	// Golden-ratio substream separation (runtime arithmetic wraps mod 2^64).
	sub := func(n uint64) uint64 { return seed + n*0x9E3779B97F4A7C15 }
	p.a = Endpoint{pair: p, name: "A", dir: "A>B",
		out: &faultStream{cfg: cc, d: rng.NewDRBG(sub(1))},
		jit: rng.NewDRBG(sub(3))}
	p.b = Endpoint{pair: p, name: "B", dir: "B>A",
		out: &faultStream{cfg: cc, d: rng.NewDRBG(sub(2))},
		jit: rng.NewDRBG(sub(4))}
	p.a.peer = &p.b
	p.b.peer = &p.a
	return p, nil
}

// Reset reinitializes an existing Pair in place to the exact state
// NewPair(cc, ac, seed) would produce, reusing the Pair's allocations
// (endpoints, fault streams, jitter DRBGs, inbox and Log backing
// arrays). The attached metrics bundle (Instrument) and the Record
// flag survive the reset. This is the allocation-free path for
// session pools that churn through millions of link lifetimes.
func (p *Pair) Reset(cc ChannelConfig, ac ARQConfig, seed uint64) error {
	if err := cc.validate(); err != nil {
		return err
	}
	if err := ac.validate(); err != nil {
		return err
	}
	p.arq = ac
	p.clock = 0
	p.Log = p.Log[:0]
	sub := func(n uint64) uint64 { return seed + n*0x9E3779B97F4A7C15 }
	p.a.reset(cc, sub(1), sub(3))
	p.b.reset(cc, sub(2), sub(4))
	return nil
}

// reset restores one endpoint to its NewPair state, keeping the
// pair/peer wiring and reusing the fault-stream and jitter DRBGs.
func (e *Endpoint) reset(cc ChannelConfig, faultSeed, jitSeed uint64) {
	e.out.cfg = cc
	e.out.burst = false
	e.out.d.Reseed(faultSeed)
	e.jit.Reseed(jitSeed)
	e.seq = 0
	e.expect = 0
	e.inbox = e.inbox[:0]
	e.retriesUsed = 0
	e.stats = Stats{}
}

// NewLosslessPair returns the perfect-channel link: single-attempt
// delivery, no retries ever needed. It is the baseline every energy
// number in the repo was measured against before this package existed.
func NewLosslessPair() *Pair {
	p, err := NewPair(Lossless(), DefaultARQ(), 0)
	if err != nil {
		panic(err) // static configs; cannot fail
	}
	return p
}

// A and B return the two endpoints. By convention the protocol layer
// gives A to the implant (tag) and B to the programmer (reader).
func (p *Pair) A() *Endpoint { return &p.a }
func (p *Pair) B() *Endpoint { return &p.b }

// Elapsed returns the virtual time consumed so far: one tick per
// frame byte of airtime plus every timeout/backoff wait.
func (p *Pair) Elapsed() int { return p.clock }

func (p *Pair) event(dir, kind string, seq, try int) {
	if p.Record {
		p.Log = append(p.Log, Event{Tick: p.clock, Dir: dir, Kind: kind, Seq: seq, Try: try})
	}
}

// Endpoint is one side of a Pair. It implements Channel. Not safe for
// concurrent use — the transport is a synchronous lockstep simulation.
type Endpoint struct {
	pair *Pair
	peer *Endpoint
	name string
	dir  string
	out  *faultStream // fault process for frames this endpoint transmits
	jit  *rng.DRBG    // deterministic backoff jitter

	seq         uint8 // next data sequence number to send
	expect      uint8 // next data sequence number expected from peer
	inbox       [][]byte
	retriesUsed int
	stats       Stats
}

// Stats implements Channel.
func (e *Endpoint) Stats() Stats { return e.stats }

// RetriesLeft reports the remaining retry budget (negative budget
// means unbounded and returns a negative number).
func (e *Endpoint) RetriesLeft() int {
	if e.pair.arq.RetryBudget < 0 {
		return -1
	}
	return e.pair.arq.RetryBudget - e.retriesUsed
}

// backoffWait returns the virtual wait after attempt `try` (1-based):
// capped binary exponential backoff plus deterministic jitter.
func (e *Endpoint) backoffWait(try int) int {
	a := e.pair.arq
	w := a.BaseTimeout
	for i := 1; i < try && w < a.MaxBackoff; i++ {
		w *= 2
	}
	if w > a.MaxBackoff && a.MaxBackoff > 0 {
		w = a.MaxBackoff
	}
	if a.JitterTicks > 0 {
		w += e.jit.Intn(a.JitterTicks + 1)
	}
	return w
}

// Send implements Channel: frame the payload, transmit, await the
// acknowledgement, and retry under the backoff policy until the frame
// is acknowledged or the retry budget dies. The error on budget
// exhaustion is a *BudgetError.
func (e *Endpoint) Send(payload []byte) error {
	if len(payload) > MaxPayload {
		return fmt.Errorf("link: payload %d bytes exceeds MaxPayload", len(payload))
	}
	frame := encodeFrame(typeData, e.seq, payload)
	arq := e.pair.arq
	met := &e.pair.met
	for try := 1; ; try++ {
		if try > arq.MaxTries {
			e.pair.event(e.dir, "budget", int(e.seq), try-1)
			met.budgetAborts.Inc()
			return &BudgetError{Seq: int(e.seq), Tries: try - 1, Budget: false}
		}
		if try > 1 {
			if arq.RetryBudget >= 0 && e.retriesUsed >= arq.RetryBudget {
				e.pair.event(e.dir, "budget", int(e.seq), try-1)
				met.budgetAborts.Inc()
				return &BudgetError{Seq: int(e.seq), Tries: try - 1, Budget: true}
			}
			e.retriesUsed++
			e.stats.Retries++
			met.retries.Inc()
		}

		// Physical attempt: airtime + fault process.
		e.stats.FramesSent++
		e.stats.DataTxBits += 8 * len(payload)
		e.stats.OverheadTxBits += OverheadBits
		met.tries.Inc()
		if try == 1 {
			met.payloadTxBits.Add(int64(8 * len(payload)))
		} else {
			met.retransTxBits.Add(int64(8 * len(payload)))
		}
		e.pair.clock += len(frame)
		e.pair.event(e.dir, "data", int(e.seq), try)
		deliveries, dropped := e.out.transmit(frame)
		if dropped {
			e.stats.Dropped++
			e.pair.event(e.dir, "drop", int(e.seq), try)
		}
		acked := false
		for _, del := range deliveries {
			switch {
			case del.duplicate:
				e.stats.Duplicated++
				e.pair.event(e.dir, "dup", int(e.seq), try)
			case del.truncated:
				e.stats.Truncated++
				e.pair.event(e.dir, "trunc", int(e.seq), try)
			case del.corrupted:
				e.stats.Corrupted++
				e.pair.event(e.dir, "corrupt", int(e.seq), try)
			default:
				e.stats.Delivered++
				e.pair.event(e.dir, "deliver", int(e.seq), try)
			}
			if ackSeq, ok := e.peer.onData(del); ok && ackSeq == e.seq {
				acked = true
			}
		}
		if acked {
			e.seq++
			return nil
		}
		// Timeout: wait (virtually) before the retransmission.
		wait := e.backoffWait(try)
		e.pair.clock += wait
		e.pair.event(e.dir, "timeout", int(e.seq), try)
		met.timeouts.Inc()
	}
}

// onData processes a physically arriving frame addressed to e: bill
// receive energy, CRC-check, deduplicate, buffer, and acknowledge.
// It returns the sequence number it acknowledged (and whether that
// acknowledgement survived the reverse channel back to the sender).
//
// Billing: duplicate deliveries and truncated frames can never carry
// first-time payload, so their bits are billed entirely to link
// overhead — DataRxBits keeps meaning "payload bits of frames that
// could have delivered payload". (Historically the payload portion of
// duplicates was double-billed as payload, letting DataRxBits exceed
// payload×attempts; the Stats regression test pins the fix.)
func (e *Endpoint) onData(del delivery) (ackSeq uint8, ackDelivered bool) {
	frame := del.frame
	n := len(frame)
	if del.duplicate || del.truncated {
		e.stats.OverheadRxBits += 8 * n
	} else {
		oh := frameOverheadBytes
		if n < oh {
			oh = n
		}
		e.stats.OverheadRxBits += 8 * oh
		e.stats.DataRxBits += 8 * (n - oh)
	}

	ftype, seq, payload, ok := decodeFrame(frame)
	if !ok || ftype != typeData {
		return 0, false // damaged or stray frame: no acknowledgement
	}
	if seq == e.expect {
		e.inbox = append(e.inbox, append([]byte(nil), payload...))
		e.expect++
	}
	// Acknowledge both fresh frames and duplicates (the duplicate's
	// ACK may be the one that finally reaches the sender).
	return seq, e.sendAck(seq)
}

// sendAck transmits an acknowledgement for seq through this endpoint's
// outbound fault process and reports whether any copy reached the peer
// intact.
func (e *Endpoint) sendAck(seq uint8) bool {
	ack := encodeFrame(typeAck, seq, nil)
	e.stats.AckTxBits += 8 * len(ack)
	e.pair.met.ackTxBits.Add(int64(8 * len(ack)))
	e.pair.clock += len(ack)
	e.pair.event(e.dir, "ack", int(seq), 0)
	deliveries, _ := e.out.transmit(ack)
	got := false
	for _, del := range deliveries {
		if e.peer.onAck(del.frame, seq) {
			got = true
		}
	}
	return got
}

// onAck processes an arriving acknowledgement frame.
func (e *Endpoint) onAck(frame []byte, want uint8) bool {
	e.stats.AckRxBits += 8 * len(frame)
	ftype, seq, _, ok := decodeFrame(frame)
	if !ok || ftype != typeAck || seq != want {
		return false
	}
	e.pair.event(e.peer.dir, "ack-rx", int(seq), 0)
	return true
}

// Recv implements Channel: pop the next delivered payload.
func (e *Endpoint) Recv() ([]byte, error) {
	if len(e.inbox) == 0 {
		return nil, errors.New("link: no payload pending")
	}
	p := e.inbox[0]
	e.inbox = e.inbox[1:]
	return p, nil
}

var _ Channel = (*Endpoint)(nil)
