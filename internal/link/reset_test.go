package link

import (
	"reflect"
	"testing"
)

// driveOn pushes the same fixed schedule as drive through an existing
// pair (so a Reset pair and a NewPair pair can be compared).
func driveOn(t *testing.T, p *Pair) (log []Event, sa, sb Stats, delivered []string, clock int) {
	t.Helper()
	p.Record = true
	a, b := p.A(), p.B()
	schedule := []struct {
		fromA bool
		msg   string
	}{
		{true, "A=a*P................."},
		{false, "W=y*A................."},
		{true, "R=r*P................."},
		{false, "e-challenge..........."},
		{true, "s-response............"},
	}
	for _, s := range schedule {
		src, dst := a, b
		if !s.fromA {
			src, dst = b, a
		}
		if err := src.Send([]byte(s.msg)); err != nil {
			delivered = append(delivered, "ABORT:"+err.Error())
			break
		}
		got, err := dst.Recv()
		if err != nil {
			t.Fatal(err)
		}
		delivered = append(delivered, string(got))
	}
	return p.Log, a.Stats(), b.Stats(), delivered, p.Elapsed()
}

// TestResetEquivalentToNewPair pins the pool contract: after
// Reset(cc, ac, seed) a dirtied pair is observably indistinguishable
// from NewPair(cc, ac, seed) — same transcript, stats, payloads and
// clock — across channel models and across config changes between
// uses of the same pooled pair.
func TestResetEquivalentToNewPair(t *testing.T) {
	configs := []struct {
		name string
		cc   ChannelConfig
		ac   ARQConfig
	}{
		{"lossless", Lossless(), DefaultARQ()},
		{"lossy10", Lossy(0.10), DefaultARQ()},
		{"bursty20", Bursty(0.20), DefaultARQ()},
	}
	pool, err := NewPair(Lossless(), DefaultARQ(), 12345)
	if err != nil {
		t.Fatal(err)
	}
	for _, cfg := range configs {
		for seed := uint64(1); seed <= 5; seed++ {
			// Dirty the pooled pair with unrelated traffic first, so
			// the reset has real state to clear.
			if err := pool.Reset(Lossy(0.3), DefaultARQ(), seed*77+1); err != nil {
				t.Fatal(err)
			}
			_, _, _, _, _ = driveOn(t, pool)

			if err := pool.Reset(cfg.cc, cfg.ac, seed); err != nil {
				t.Fatal(err)
			}
			gl, gsa, gsb, gd, gc := driveOn(t, pool)

			fresh, err := NewPair(cfg.cc, cfg.ac, seed)
			if err != nil {
				t.Fatal(err)
			}
			wl, wsa, wsb, wd, wc := driveOn(t, fresh)

			if !reflect.DeepEqual(gl, wl) {
				t.Fatalf("%s seed=%d: transcript diverged after Reset", cfg.name, seed)
			}
			if gsa != wsa || gsb != wsb {
				t.Fatalf("%s seed=%d: stats diverged after Reset", cfg.name, seed)
			}
			if !reflect.DeepEqual(gd, wd) {
				t.Fatalf("%s seed=%d: delivered payloads diverged after Reset", cfg.name, seed)
			}
			if gc != wc {
				t.Fatalf("%s seed=%d: clock diverged after Reset: %d vs %d", cfg.name, seed, gc, wc)
			}
		}
	}
}

// TestResetRejectsInvalidConfig pins that Reset validates like NewPair
// and leaves nothing half-initialized on error.
func TestResetRejectsInvalidConfig(t *testing.T) {
	p := NewLosslessPair()
	if err := p.Reset(ChannelConfig{DropRate: 1.5}, DefaultARQ(), 1); err == nil {
		t.Fatal("Reset accepted DropRate > 1")
	}
	if err := p.Reset(Lossless(), ARQConfig{}, 1); err == nil {
		t.Fatal("Reset accepted a zero ARQConfig")
	}
}

// TestResetZeroAllocs pins the reason Reset exists: resetting a pooled
// pair must not allocate.
func TestResetZeroAllocs(t *testing.T) {
	p := NewLosslessPair()
	cc, ac := Lossy(0.05), DefaultARQ()
	allocs := testing.AllocsPerRun(100, func() {
		if err := p.Reset(cc, ac, 42); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("Pair.Reset allocates %v times per run, want 0", allocs)
	}
}
