// Package link is the resilient wireless link layer under the
// protocol sessions: a deterministic, seed-driven lossy/adversarial
// channel model plus a CRC-framed ARQ (automatic repeat request)
// transport with per-try timeouts, capped exponential backoff with
// deterministic jitter, and a bounded retry budget.
//
// The paper's protocol-level energy rule — "the communication should
// be minimized since wireless communication is power-hungry" — is only
// meaningful if the communication count is honest. A perfect channel
// silently assumes zero retransmissions; a real implant link drops and
// corrupts frames, and every retransmission costs transmit energy the
// battery pays for. This package makes the physical attempt counts
// observable (Stats) so the protocol ledgers can price *actual*
// transmissions, including retries.
//
// # Channel model
//
// Each direction of a Pair is an independent fault process driven by
// its own DRBG substream. Per transmitted frame, in order:
//
//  1. the Gilbert–Elliott burst state advances (good ⇄ burst);
//  2. the frame is dropped with the state's drop probability;
//  3. a surviving frame may be truncated (cut short at a random byte);
//  4. each surviving bit flips independently with BitFlipRate;
//  5. the frame may be duplicated (delivered twice).
//
// # Determinism contract
//
// Everything — drop decisions, flip positions, truncation lengths,
// backoff jitter — derives from the Pair's seed and the sequence of
// Send calls. The transport is synchronous and single-goroutine:
// identical seed + configs + call sequence ⇒ bit-identical delivery
// transcript, Stats, retry counts and virtual clock, on any machine
// and under any test parallelism. Time is virtual (ticks), so tests
// never sleep and campaigns never race.
//
// # Energy accounting convention
//
// Stats separates payload bits from link overhead so the protocol
// ledgers stay comparable with the perfect-channel baseline:
//
//   - DataTxBits counts 8×len(payload) per physical data-frame
//     attempt (so retries multiply it); DataRxBits counts the payload
//     portion of every full-length first-copy frame that physically
//     reaches the receiver's radio, intact or bit-corrupted. Duplicate
//     deliveries and truncated frames carry no billable payload — their
//     bits are booked entirely under OverheadRxBits.
//   - OverheadTxBits/OverheadRxBits count framing (header + CRC), and
//     AckTxBits/AckRxBits count acknowledgement frames. These are
//     REAL energy (cmd/linklab prices them) but are kept out of the
//     protocol Ledger so that at loss = 0 the ARQ path reproduces the
//     pre-existing perfect-channel ledgers bit for bit.
package link

import (
	"errors"
	"fmt"
	"hash/crc32"
)

// ChannelConfig parametrizes the per-direction fault model. All rates
// are probabilities in [0, 1].
type ChannelConfig struct {
	// DropRate is the iid frame-drop probability in the good state.
	DropRate float64
	// BitFlipRate is the per-bit flip probability on surviving frames.
	BitFlipRate float64
	// TruncateRate is the probability a surviving frame is cut short.
	TruncateRate float64
	// DuplicateRate is the probability a surviving frame is delivered
	// twice (replay/echo).
	DuplicateRate float64
	// BurstEnterRate is the per-frame probability of entering the
	// burst (bad) state; BurstExitRate of leaving it. In the burst
	// state frames drop with BurstDropRate instead of DropRate.
	BurstEnterRate float64
	BurstExitRate  float64
	BurstDropRate  float64
}

// Lossless returns the perfect-channel configuration: every frame is
// delivered intact on the first attempt.
func Lossless() ChannelConfig { return ChannelConfig{} }

// Lossy returns an iid lossy preset: frames drop with rate p and a
// light proportional bit-flip process corrupts survivors (p/1000 per
// bit, so a typical protocol frame still mostly survives intact).
func Lossy(p float64) ChannelConfig {
	return ChannelConfig{DropRate: p, BitFlipRate: p / 1000}
}

// Bursty returns a Gilbert–Elliott preset layered on Lossy(p): bursts
// arrive with rate p/4, last 1/exit ≈ 4 frames, and drop everything.
func Bursty(p float64) ChannelConfig {
	c := Lossy(p)
	c.BurstEnterRate = p / 4
	c.BurstExitRate = 0.25
	c.BurstDropRate = 1.0
	return c
}

// validate rejects rates outside [0, 1].
func (c ChannelConfig) validate() error {
	for _, r := range []struct {
		name string
		v    float64
	}{
		{"DropRate", c.DropRate}, {"BitFlipRate", c.BitFlipRate},
		{"TruncateRate", c.TruncateRate}, {"DuplicateRate", c.DuplicateRate},
		{"BurstEnterRate", c.BurstEnterRate}, {"BurstExitRate", c.BurstExitRate},
		{"BurstDropRate", c.BurstDropRate},
	} {
		if r.v < 0 || r.v > 1 {
			return fmt.Errorf("link: %s %v outside [0, 1]", r.name, r.v)
		}
	}
	return nil
}

// ARQConfig tunes the reliable transport.
type ARQConfig struct {
	// MaxTries caps physical attempts per frame (first try included).
	MaxTries int
	// RetryBudget caps cumulative retransmissions across an endpoint's
	// lifetime — the session's retry energy budget. 0 disables retries
	// entirely; negative means unbounded.
	RetryBudget int
	// BaseTimeout is the virtual-tick wait after an unacknowledged
	// attempt; the wait doubles each try (capped at MaxBackoff) plus a
	// deterministic jitter in [0, JitterTicks].
	BaseTimeout int
	MaxBackoff  int
	JitterTicks int
}

// DefaultARQ returns the transport defaults: 8 tries per frame, a
// 64-retransmission session budget, 32-tick base timeout with capped
// binary exponential backoff and 8 ticks of jitter.
func DefaultARQ() ARQConfig {
	return ARQConfig{MaxTries: 8, RetryBudget: 64, BaseTimeout: 32, MaxBackoff: 1024, JitterTicks: 8}
}

func (a ARQConfig) validate() error {
	if a.MaxTries < 1 {
		return errors.New("link: MaxTries must be at least 1")
	}
	if a.BaseTimeout < 0 || a.MaxBackoff < 0 || a.JitterTicks < 0 {
		return errors.New("link: negative timeout parameters")
	}
	return nil
}

// Stats are cumulative physical-layer counters for one endpoint. See
// the package comment for the payload/overhead split.
type Stats struct {
	// FramesSent counts physical data-frame attempts; Retries counts
	// attempts beyond each frame's first.
	FramesSent int
	Retries    int
	// Delivered/Dropped/Corrupted/Truncated/Duplicated classify what
	// the channel did to this endpoint's outbound data frames.
	Delivered  int
	Dropped    int
	Corrupted  int
	Truncated  int
	Duplicated int

	// DataTxBits/DataRxBits: payload bits — per attempt on the
	// transmit side; per full-length first-copy arrival on the receive
	// side (duplicates and truncated frames bill to OverheadRxBits).
	DataTxBits int
	DataRxBits int
	// OverheadTxBits/OverheadRxBits: framing (header+CRC) bits.
	OverheadTxBits int
	OverheadRxBits int
	// AckTxBits/AckRxBits: acknowledgement frames (sent by the peer's
	// receive path on our behalf and vice versa).
	AckTxBits int
	AckRxBits int
}

// PhyTxBits returns every bit this endpoint's radio transmitted:
// payload, framing and ACKs.
func (s Stats) PhyTxBits() int { return s.DataTxBits + s.OverheadTxBits + s.AckTxBits }

// PhyRxBits returns every bit this endpoint's radio received.
func (s Stats) PhyRxBits() int { return s.DataRxBits + s.OverheadRxBits + s.AckRxBits }

// BudgetError reports a Send that exhausted its retry allowance; the
// session layer maps it to a labeled graceful abort.
type BudgetError struct {
	// Seq is the data-frame sequence number that could not be
	// delivered; Tries the physical attempts spent on it.
	Seq   int
	Tries int
	// Budget is true when the session-wide RetryBudget ran out,
	// false when the per-frame MaxTries cap was hit.
	Budget bool
}

func (e *BudgetError) Error() string {
	if e.Budget {
		return fmt.Sprintf("link: retry energy budget exhausted (seq %d after %d tries)", e.Seq, e.Tries)
	}
	return fmt.Sprintf("link: frame %d undelivered after %d tries", e.Seq, e.Tries)
}

// Channel is the transport the protocol session layer speaks: reliable
// in-order payload delivery with observable physical cost. Send blocks
// (in virtual time) until the payload is acknowledged or the retry
// budget dies; Recv pops the next delivered payload.
type Channel interface {
	Send(payload []byte) error
	Recv() ([]byte, error)
	Stats() Stats
}

// Frame layout: 1 type byte, 1 sequence byte, 2 length bytes, payload,
// 4 CRC bytes (CRC-32/IEEE over everything before it).
const (
	frameOverheadBytes = 8
	typeData           = 0xD1
	typeAck            = 0xA2

	// OverheadBits is the framing cost per physical frame.
	OverheadBits = 8 * frameOverheadBytes
	// AckBits is the size of an acknowledgement frame (empty payload).
	AckBits = 8 * frameOverheadBytes

	// MaxPayload is the largest payload a single frame carries. The
	// protocol messages (compressed points, scalars, sealed telemetry)
	// are far below it.
	MaxPayload = 1 << 14
)

func encodeFrame(ftype byte, seq uint8, payload []byte) []byte {
	f := make([]byte, 0, frameOverheadBytes+len(payload))
	f = append(f, ftype, seq, byte(len(payload)>>8), byte(len(payload)))
	f = append(f, payload...)
	crc := crc32.ChecksumIEEE(f)
	return append(f, byte(crc>>24), byte(crc>>16), byte(crc>>8), byte(crc))
}

// decodeFrame validates length and CRC; ok=false means the frame is
// damaged (short, inconsistent, or failing the checksum).
func decodeFrame(f []byte) (ftype byte, seq uint8, payload []byte, ok bool) {
	if len(f) < frameOverheadBytes {
		return 0, 0, nil, false
	}
	body, sum := f[:len(f)-4], f[len(f)-4:]
	want := crc32.ChecksumIEEE(body)
	got := uint32(sum[0])<<24 | uint32(sum[1])<<16 | uint32(sum[2])<<8 | uint32(sum[3])
	if got != want {
		return 0, 0, nil, false
	}
	n := int(body[2])<<8 | int(body[3])
	if n != len(body)-4 {
		return 0, 0, nil, false
	}
	return body[0], body[1], body[4 : 4+n], true
}
