package modn

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMontMulMatchesMul(t *testing.T) {
	m := k163()
	r := rand.New(rand.NewSource(1))
	for i := 0; i < 500; i++ {
		a, b := m.Rand(r.Uint64), m.Rand(r.Uint64)
		want := m.Mul(a, b)
		got, err := m.MulMont(a, b)
		if err != nil {
			t.Fatal(err)
		}
		if !got.Equal(want) {
			t.Fatalf("MulMont(%v,%v) = %v, want %v", a, b, got, want)
		}
	}
}

func TestMontDomainRoundTrip(t *testing.T) {
	m := k163()
	r := rand.New(rand.NewSource(2))
	for i := 0; i < 200; i++ {
		a := m.Rand(r.Uint64)
		am, err := m.ToMont(a)
		if err != nil {
			t.Fatal(err)
		}
		back, err := m.FromMont(am)
		if err != nil {
			t.Fatal(err)
		}
		if !back.Equal(a) {
			t.Fatalf("Montgomery round trip failed for %v", a)
		}
	}
}

func TestMontMulEdges(t *testing.T) {
	m := k163()
	nm1 := m.Sub(m.N(), One())
	got, err := m.MulMont(nm1, nm1)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(One()) {
		t.Fatalf("(n-1)^2 via Montgomery = %v, want 1", got)
	}
	z, err := m.MulMont(Zero(), nm1)
	if err != nil || !z.IsZero() {
		t.Fatal("0 * x != 0 in Montgomery path")
	}
	o, err := m.MulMont(One(), nm1)
	if err != nil || !o.Equal(nm1) {
		t.Fatal("1 * x != x in Montgomery path")
	}
}

func TestMontRejectsEvenModulus(t *testing.T) {
	even, err := NewModulus([Words]uint64{2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := even.MontMul(One(), One()); err != ErrEvenModulus {
		t.Fatal("even modulus accepted by Montgomery path")
	}
	if _, err := even.ToMont(One()); err != ErrEvenModulus {
		t.Fatal("ToMont accepted even modulus")
	}
}

func TestMontQuickAgreement(t *testing.T) {
	m := k163()
	f := func(a0, a1, a2, b0, b1, b2 uint64) bool {
		a := m.Reduce(Scalar{a0, a1, a2, 0})
		b := m.Reduce(Scalar{b0, b1, b2, 0})
		got, err := m.MulMont(a, b)
		return err == nil && got.Equal(m.Mul(a, b))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkMontMul(b *testing.B) {
	m := k163()
	r := rand.New(rand.NewSource(1))
	x, _ := m.ToMont(m.Rand(r.Uint64))
	y, _ := m.ToMont(m.Rand(r.Uint64))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x, _ = m.MontMul(x, y)
	}
}
