package modn

import (
	"math/big"
	"math/rand"
	"testing"
	"testing/quick"
)

// K-163 group order, the modulus every protocol in this module uses.
const k163OrderHex = "4000000000000000000020108a2e0cc0d99f8a5ef"

func k163() *Modulus { return MustModulusFromHex(k163OrderHex) }

func toBig(s Scalar) *big.Int {
	v := new(big.Int)
	for i := Words - 1; i >= 0; i-- {
		v.Lsh(v, 64)
		v.Or(v, new(big.Int).SetUint64(s[i]))
	}
	return v
}

func fromBig(v *big.Int) Scalar {
	var s Scalar
	words := v.Bits()
	for i := 0; i < len(words) && i < Words; i++ {
		s[i] = uint64(words[i])
	}
	return s
}

func randScalarBelow(r *rand.Rand, m *Modulus) Scalar {
	return m.Rand(r.Uint64)
}

func TestParseHexMatchesBig(t *testing.T) {
	n := k163()
	want, ok := new(big.Int).SetString(k163OrderHex, 16)
	if !ok {
		t.Fatal("big.Int parse failed")
	}
	if toBig(n.N()).Cmp(want) != 0 {
		t.Fatalf("modulus parse mismatch: %v vs %v", toBig(n.N()), want)
	}
	if n.BitLen() != want.BitLen() {
		t.Fatalf("BitLen = %d, want %d", n.BitLen(), want.BitLen())
	}
}

func TestAddSubAgainstBig(t *testing.T) {
	m := k163()
	nBig := toBig(m.N())
	r := rand.New(rand.NewSource(1))
	for i := 0; i < 500; i++ {
		a, b := randScalarBelow(r, m), randScalarBelow(r, m)
		sum := m.Add(a, b)
		want := new(big.Int).Add(toBig(a), toBig(b))
		want.Mod(want, nBig)
		if toBig(sum).Cmp(want) != 0 {
			t.Fatalf("Add(%v,%v) = %v, want %v", a, b, sum, want)
		}
		diff := m.Sub(a, b)
		want = new(big.Int).Sub(toBig(a), toBig(b))
		want.Mod(want, nBig)
		if toBig(diff).Cmp(want) != 0 {
			t.Fatalf("Sub mismatch")
		}
	}
}

func TestMulAgainstBig(t *testing.T) {
	m := k163()
	nBig := toBig(m.N())
	r := rand.New(rand.NewSource(2))
	for i := 0; i < 500; i++ {
		a, b := randScalarBelow(r, m), randScalarBelow(r, m)
		got := m.Mul(a, b)
		want := new(big.Int).Mul(toBig(a), toBig(b))
		want.Mod(want, nBig)
		if toBig(got).Cmp(want) != 0 {
			t.Fatalf("Mul(%v,%v) = %v, want %v", a, b, got, fromBig(want))
		}
	}
}

func TestMulEdgeCases(t *testing.T) {
	m := k163()
	maxRed := m.Sub(m.N(), One()) // n-1
	got := m.Mul(maxRed, maxRed)  // (n-1)^2 = 1 mod n
	if !got.Equal(One()) {
		t.Fatalf("(n-1)^2 mod n = %v, want 1", got)
	}
	if !m.Mul(Zero(), maxRed).IsZero() {
		t.Fatal("0 * x != 0")
	}
	if !m.Mul(One(), maxRed).Equal(maxRed) {
		t.Fatal("1 * x != x")
	}
}

func TestReduceAgainstBig(t *testing.T) {
	m := k163()
	nBig := toBig(m.N())
	r := rand.New(rand.NewSource(3))
	for i := 0; i < 500; i++ {
		var s Scalar
		for j := range s {
			s[j] = r.Uint64()
		}
		got := m.Reduce(s)
		want := new(big.Int).Mod(toBig(s), nBig)
		if toBig(got).Cmp(want) != 0 {
			t.Fatalf("Reduce(%v) = %v, want %v", s, got, fromBig(want))
		}
	}
}

func TestNeg(t *testing.T) {
	m := k163()
	r := rand.New(rand.NewSource(4))
	for i := 0; i < 200; i++ {
		a := randScalarBelow(r, m)
		if !m.Add(a, m.Neg(a)).IsZero() {
			t.Fatal("a + (-a) != 0")
		}
	}
	if !m.Neg(Zero()).IsZero() {
		t.Fatal("-0 != 0")
	}
}

func TestExpAgainstBig(t *testing.T) {
	m := k163()
	nBig := toBig(m.N())
	r := rand.New(rand.NewSource(5))
	for i := 0; i < 30; i++ {
		a := randScalarBelow(r, m)
		e := randScalarBelow(r, m)
		got := m.Exp(a, e)
		want := new(big.Int).Exp(toBig(a), toBig(e), nBig)
		if toBig(got).Cmp(want) != 0 {
			t.Fatalf("Exp mismatch")
		}
	}
	if !m.Exp(Zero(), Zero()).Equal(One()) {
		t.Fatal("0^0 != 1 (empty product convention)")
	}
}

func TestInvFermat(t *testing.T) {
	m := k163() // prime order
	r := rand.New(rand.NewSource(6))
	for i := 0; i < 30; i++ {
		a := randScalarBelow(r, m)
		if a.IsZero() {
			continue
		}
		if !m.Mul(a, m.Inv(a)).Equal(One()) {
			t.Fatalf("a * a^-1 != 1 for a=%v", a)
		}
	}
	if !m.Inv(Zero()).IsZero() {
		t.Fatal("Inv(0) != 0")
	}
}

func TestOrderIsPrime(t *testing.T) {
	// The protocol-security arguments require a prime group order;
	// verify our constant with math/big's Miller-Rabin.
	n := toBig(k163().N())
	if !n.ProbablyPrime(64) {
		t.Fatal("K-163 order constant is not prime; constant corrupted")
	}
	if n.BitLen() != 163 {
		t.Fatalf("order bit length %d, want 163", n.BitLen())
	}
}

func TestRandIsReducedAndCoversRange(t *testing.T) {
	m := k163()
	r := rand.New(rand.NewSource(7))
	sawHighWord := false
	for i := 0; i < 1000; i++ {
		s := m.Rand(r.Uint64)
		if s.Cmp(m.N()) >= 0 {
			t.Fatalf("Rand produced unreduced scalar %v", s)
		}
		if s[2]>>30 != 0 { // top region of the 163-bit range
			sawHighWord = true
		}
	}
	if !sawHighWord {
		t.Fatal("Rand never produced values near the modulus; sampling biased")
	}
	for i := 0; i < 100; i++ {
		if m.RandNonZero(r.Uint64).IsZero() {
			t.Fatal("RandNonZero returned zero")
		}
	}
}

func TestBytesRoundTrip(t *testing.T) {
	m := k163()
	r := rand.New(rand.NewSource(8))
	for i := 0; i < 200; i++ {
		s := randScalarBelow(r, m)
		b := s.Bytes()
		if len(b) != ByteLen {
			t.Fatalf("length %d", len(b))
		}
		got, err := FromBytes(b)
		if err != nil {
			t.Fatal(err)
		}
		if !got.Equal(s) {
			t.Fatalf("round trip failed for %v", s)
		}
	}
	if _, err := FromBytes(make([]byte, ByteLen+1)); err == nil {
		t.Fatal("oversized encoding accepted")
	}
	short, err := FromBytes([]byte{0x12, 0x34})
	if err != nil || !short.Equal(FromUint64(0x1234)) {
		t.Fatalf("short encoding mishandled: %v %v", short, err)
	}
}

func TestCmpAndBitHelpers(t *testing.T) {
	a := FromUint64(5)
	b := FromUint64(7)
	if a.Cmp(b) != -1 || b.Cmp(a) != 1 || a.Cmp(a) != 0 {
		t.Fatal("Cmp broken")
	}
	if a.Bit(0) != 1 || a.Bit(1) != 0 || a.Bit(2) != 1 || a.Bit(500) != 0 || a.Bit(-1) != 0 {
		t.Fatal("Bit broken")
	}
	if a.BitLen() != 3 || Zero().BitLen() != 0 {
		t.Fatal("BitLen broken")
	}
	if a.Weight() != 2 {
		t.Fatal("Weight broken")
	}
}

func TestStringAndHexRoundTrip(t *testing.T) {
	m := k163()
	r := rand.New(rand.NewSource(9))
	for i := 0; i < 100; i++ {
		s := randScalarBelow(r, m)
		if got := MustScalarFromHex(s.String()); !got.Equal(s) {
			t.Fatalf("hex round trip failed for %v", s)
		}
	}
	if Zero().String() != "0" {
		t.Fatal("Zero string wrong")
	}
}

func TestNewModulusRejectsZero(t *testing.T) {
	if _, err := NewModulus([Words]uint64{}); err != ErrZeroModulus {
		t.Fatal("zero modulus accepted")
	}
}

func TestParseErrors(t *testing.T) {
	for _, bad := range []string{"", "zz", "1________"} {
		if _, err := parseHex(bad); err == nil {
			t.Fatalf("parseHex(%q) accepted", bad)
		}
	}
	// 65 hex digits overflow 256 bits.
	long := "1"
	for i := 0; i < 64; i++ {
		long += "0"
	}
	if _, err := parseHex(long); err == nil {
		t.Fatal("overlong hex accepted")
	}
}

func TestRingAxiomsQuick(t *testing.T) {
	m := k163()
	cfg := &quick.Config{MaxCount: 200}
	distributes := func(a0, a1, a2, b0, b1, b2, c0, c1, c2 uint64) bool {
		a := m.Reduce(Scalar{a0, a1, a2, 0})
		b := m.Reduce(Scalar{b0, b1, b2, 0})
		c := m.Reduce(Scalar{c0, c1, c2, 0})
		return m.Mul(a, m.Add(b, c)).Equal(m.Add(m.Mul(a, b), m.Mul(a, c)))
	}
	if err := quick.Check(distributes, cfg); err != nil {
		t.Fatal(err)
	}
	assoc := func(a0, b0, c0 uint64) bool {
		a := m.Reduce(Scalar{a0, a0 ^ 0xdead, a0 >> 3, 0})
		b := m.Reduce(Scalar{b0, b0 + 7, 0, 0})
		c := m.Reduce(Scalar{c0, 1, c0, 0})
		return m.Mul(m.Mul(a, b), c).Equal(m.Mul(a, m.Mul(b, c)))
	}
	if err := quick.Check(assoc, cfg); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkModMul(b *testing.B) {
	m := k163()
	r := rand.New(rand.NewSource(1))
	x, y := m.Rand(r.Uint64), m.Rand(r.Uint64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x = m.Mul(x, y)
	}
}

func BenchmarkModInv(b *testing.B) {
	m := k163()
	r := rand.New(rand.NewSource(1))
	x := m.Rand(r.Uint64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x = m.Inv(m.Add(x, One()))
	}
}
