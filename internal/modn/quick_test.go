package modn

import (
	"testing"
	"testing/quick"
)

// Property-based tests (testing/quick) over the scalar ring.

func qscalar(m *Modulus, a, b, c, d uint64) Scalar {
	return m.Reduce(Scalar{a, b, c, d})
}

func TestQuickAddCommutes(t *testing.T) {
	m := k163()
	f := func(a0, a1, a2, b0, b1, b2 uint64) bool {
		a := qscalar(m, a0, a1, a2, 0)
		b := qscalar(m, b0, b1, b2, 0)
		return m.Add(a, b).Equal(m.Add(b, a))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickAddSubInverse(t *testing.T) {
	m := k163()
	f := func(a0, a1, a2, b0, b1, b2 uint64) bool {
		a := qscalar(m, a0, a1, a2, 0)
		b := qscalar(m, b0, b1, b2, 0)
		return m.Sub(m.Add(a, b), b).Equal(a)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickReduceIdempotent(t *testing.T) {
	m := k163()
	f := func(a0, a1, a2, a3 uint64) bool {
		r := m.Reduce(Scalar{a0, a1, a2, a3})
		return m.Reduce(r).Equal(r) && r.Cmp(m.N()) < 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickMulOneAndZero(t *testing.T) {
	m := k163()
	f := func(a0, a1, a2 uint64) bool {
		a := qscalar(m, a0, a1, a2, 0)
		return m.Mul(a, One()).Equal(a) && m.Mul(a, Zero()).IsZero()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickInvMul(t *testing.T) {
	m := k163()
	f := func(a0, a1, a2 uint64) bool {
		a := qscalar(m, a0, a1, a2, 0)
		if a.IsZero() {
			return true
		}
		return m.Mul(a, m.Inv(a)).Equal(One())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickBytesRoundTrip(t *testing.T) {
	m := k163()
	f := func(a0, a1, a2 uint64) bool {
		a := qscalar(m, a0, a1, a2, 0)
		got, err := FromBytes(a.Bytes())
		return err == nil && got.Equal(a)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickAddMulSmallCongruence(t *testing.T) {
	m := k163()
	f := func(a0, a1, a2 uint64, factor uint32) bool {
		a := qscalar(m, a0, a1, a2, 0)
		b, err := m.AddMulSmall(a, uint64(factor))
		if err != nil {
			return false
		}
		return m.Reduce(b).Equal(a)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
