package modn

import (
	"errors"
	"math/bits"
	"sync"
)

// Montgomery multiplication (CIOS) for odd moduli — the reduction
// style a throughput-oriented software reader would use instead of the
// binary long division of Mul. Kept as an independent second
// implementation and cross-tested against Mul: two disagreeing
// reduction paths cannot both be wrong the same way.

// montCtx caches the Montgomery constants of a modulus.
type montCtx struct {
	n0inv uint64 // -n^-1 mod 2^64
	r2    Scalar // R^2 mod n, R = 2^256
}

var (
	montMu    sync.Mutex
	montCache = map[[Words]uint64]*montCtx{}
)

// ErrEvenModulus is returned for Montgomery operations on even moduli.
var ErrEvenModulus = errors.New("modn: Montgomery arithmetic requires an odd modulus")

func (m *Modulus) mont() (*montCtx, error) {
	if m.n[0]&1 == 0 {
		return nil, ErrEvenModulus
	}
	montMu.Lock()
	defer montMu.Unlock()
	if c, ok := montCache[m.n]; ok {
		return c, nil
	}
	c := &montCtx{}
	// Newton iteration for n[0]^-1 mod 2^64 (5 iterations suffice).
	inv := m.n[0]
	for i := 0; i < 5; i++ {
		inv *= 2 - m.n[0]*inv
	}
	c.n0inv = -inv
	// R^2 mod n by 512 modular doublings of 1.
	t := m.Reduce(One())
	for i := 0; i < 2*Words*64; i++ {
		t = m.Add(t, t)
	}
	c.r2 = t
	montCache[m.n] = c
	return c, nil
}

// MontMul returns a·b·R^-1 mod n (CIOS).
func (m *Modulus) MontMul(a, b Scalar) (Scalar, error) {
	ctx, err := m.mont()
	if err != nil {
		return Scalar{}, err
	}
	var t [Words + 2]uint64
	for i := 0; i < Words; i++ {
		// t += a[i] * b
		var carry uint64
		for j := 0; j < Words; j++ {
			hi, lo := bits.Mul64(a[i], b[j])
			lo, c1 := bits.Add64(lo, t[j], 0)
			lo, c2 := bits.Add64(lo, carry, 0)
			t[j] = lo
			carry = hi + c1 + c2
		}
		var c uint64
		t[Words], c = bits.Add64(t[Words], carry, 0)
		t[Words+1] += c

		// u = t[0] * n' mod 2^64; t += u*n; t >>= 64.
		u := t[0] * ctx.n0inv
		carry = 0
		for j := 0; j < Words; j++ {
			hi, lo := bits.Mul64(u, m.n[j])
			lo, c1 := bits.Add64(lo, t[j], 0)
			lo, c2 := bits.Add64(lo, carry, 0)
			t[j] = lo
			carry = hi + c1 + c2
		}
		t[Words], c = bits.Add64(t[Words], carry, 0)
		t[Words+1] += c
		// Shift down one word (t[0] is zero by construction of u).
		copy(t[:], t[1:])
		t[Words+1] = 0
	}
	var r Scalar
	copy(r[:], t[:Words])
	// At most one conditional subtraction (t < 2n).
	if t[Words] != 0 || r.Cmp(m.n) >= 0 {
		r, _ = subRaw(r, m.n)
	}
	return r, nil
}

// ToMont converts a into the Montgomery domain (a·R mod n).
func (m *Modulus) ToMont(a Scalar) (Scalar, error) {
	ctx, err := m.mont()
	if err != nil {
		return Scalar{}, err
	}
	return m.MontMul(a, ctx.r2)
}

// FromMont converts out of the Montgomery domain (a·R^-1 mod n).
func (m *Modulus) FromMont(a Scalar) (Scalar, error) {
	return m.MontMul(a, One())
}

// MulMont multiplies two ordinary-domain scalars through the
// Montgomery pipeline — functionally identical to Mul, structurally
// independent of it.
func (m *Modulus) MulMont(a, b Scalar) (Scalar, error) {
	am, err := m.ToMont(a)
	if err != nil {
		return Scalar{}, err
	}
	r, err := m.MontMul(am, b)
	if err != nil {
		return Scalar{}, err
	}
	return r, nil
}
