// Package modn implements multiprecision integer arithmetic modulo a
// fixed odd modulus of at most 256 bits — the scalar field of the
// binary curves used by the co-processor and its protocols.
//
// The Peeters–Hermans identification protocol (paper Fig. 2) performs
// one modular multiplication (e·r) and additions (s = d + x + e·r) on
// the tag; the reader side needs the same plus conversions from field
// elements (x-coordinates) to scalars. math/big is deliberately not
// used outside tests: the package keeps a fixed-size, allocation-free
// representation whose operation sequence does not depend on operand
// values beyond the final conditional subtraction, mirroring the
// constant-structure requirement the paper imposes on the hardware.
package modn

import (
	"errors"
	"math/bits"
)

// Words is the number of 64-bit words in a Scalar.
const Words = 4

// Scalar is a little-endian 256-bit unsigned integer. Scalars are
// meaningful relative to a Modulus and are kept reduced below it.
type Scalar [Words]uint64

// Modulus is a fixed modulus together with cached geometry.
type Modulus struct {
	n    Scalar
	bits int
}

// ErrZeroModulus is returned when constructing a Modulus from zero.
var ErrZeroModulus = errors.New("modn: modulus must be nonzero")

// NewModulus builds a Modulus from little-endian words.
func NewModulus(words [Words]uint64) (*Modulus, error) {
	m := &Modulus{n: words}
	m.bits = bitLen(words)
	if m.bits == 0 {
		return nil, ErrZeroModulus
	}
	return m, nil
}

// MustModulusFromHex parses a big-endian hex string; panics on error.
// Intended for package-level curve-order constants.
func MustModulusFromHex(s string) *Modulus {
	v, err := parseHex(s)
	if err != nil {
		panic(err)
	}
	m, err := NewModulus(v)
	if err != nil {
		panic(err)
	}
	return m
}

func parseHex(s string) (Scalar, error) {
	var v Scalar
	if s == "" {
		return v, errors.New("modn: empty hex string")
	}
	for _, c := range s {
		var nib uint64
		switch {
		case c >= '0' && c <= '9':
			nib = uint64(c - '0')
		case c >= 'a' && c <= 'f':
			nib = uint64(c-'a') + 10
		case c >= 'A' && c <= 'F':
			nib = uint64(c-'A') + 10
		default:
			return v, errors.New("modn: invalid hex digit")
		}
		if v[3]>>60 != 0 {
			return v, errors.New("modn: hex constant exceeds 256 bits")
		}
		v[3] = v[3]<<4 | v[2]>>60
		v[2] = v[2]<<4 | v[1]>>60
		v[1] = v[1]<<4 | v[0]>>60
		v[0] = v[0]<<4 | nib
	}
	return v, nil
}

// MustScalarFromHex parses a big-endian hex string into a Scalar
// without reduction; panics on malformed input.
func MustScalarFromHex(s string) Scalar {
	v, err := parseHex(s)
	if err != nil {
		panic(err)
	}
	return v
}

func bitLen(v Scalar) int {
	for i := Words - 1; i >= 0; i-- {
		if v[i] != 0 {
			return i*64 + 64 - bits.LeadingZeros64(v[i])
		}
	}
	return 0
}

// BitLen returns the bit length of the modulus.
func (m *Modulus) BitLen() int { return m.bits }

// N returns the modulus value as a Scalar.
func (m *Modulus) N() Scalar { return m.n }

// Zero returns the zero scalar.
func Zero() Scalar { return Scalar{} }

// One returns the scalar 1.
func One() Scalar { return Scalar{1} }

// FromUint64 returns the scalar with value v.
func FromUint64(v uint64) Scalar { return Scalar{v} }

// IsZero reports whether s is zero.
func (s Scalar) IsZero() bool { return s[0]|s[1]|s[2]|s[3] == 0 }

// Equal reports whether s == t.
func (s Scalar) Equal(t Scalar) bool {
	return s[0] == t[0] && s[1] == t[1] && s[2] == t[2] && s[3] == t[3]
}

// Cmp returns -1, 0 or 1 as s <, ==, > t.
func (s Scalar) Cmp(t Scalar) int {
	for i := Words - 1; i >= 0; i-- {
		switch {
		case s[i] < t[i]:
			return -1
		case s[i] > t[i]:
			return 1
		}
	}
	return 0
}

// Bit returns bit i of s.
func (s Scalar) Bit(i int) uint {
	if i < 0 || i >= Words*64 {
		return 0
	}
	return uint(s[i>>6]>>(uint(i)&63)) & 1
}

// BitLen returns the bit length of s.
func (s Scalar) BitLen() int { return bitLen(s) }

// Weight returns the Hamming weight of s. (The timing experiment E3
// correlates double-and-add latency with scalar weight.)
func (s Scalar) Weight() int {
	return bits.OnesCount64(s[0]) + bits.OnesCount64(s[1]) +
		bits.OnesCount64(s[2]) + bits.OnesCount64(s[3])
}

// addRaw returns s + t and the carry out.
func addRaw(s, t Scalar) (Scalar, uint64) {
	var r Scalar
	var c uint64
	r[0], c = bits.Add64(s[0], t[0], 0)
	r[1], c = bits.Add64(s[1], t[1], c)
	r[2], c = bits.Add64(s[2], t[2], c)
	r[3], c = bits.Add64(s[3], t[3], c)
	return r, c
}

// subRaw returns s - t and the borrow out.
func subRaw(s, t Scalar) (Scalar, uint64) {
	var r Scalar
	var b uint64
	r[0], b = bits.Sub64(s[0], t[0], 0)
	r[1], b = bits.Sub64(s[1], t[1], b)
	r[2], b = bits.Sub64(s[2], t[2], b)
	r[3], b = bits.Sub64(s[3], t[3], b)
	return r, b
}

// Add returns (s + t) mod n. Inputs must already be reduced.
func (m *Modulus) Add(s, t Scalar) Scalar {
	r, carry := addRaw(s, t)
	// Subtract n if r >= n or the addition overflowed 256 bits.
	d, borrow := subRaw(r, m.n)
	if carry == 1 || borrow == 0 {
		return d
	}
	return r
}

// Sub returns (s - t) mod n. Inputs must already be reduced.
func (m *Modulus) Sub(s, t Scalar) Scalar {
	r, borrow := subRaw(s, t)
	if borrow == 1 {
		r, _ = addRaw(r, m.n)
	}
	return r
}

// Neg returns -s mod n.
func (m *Modulus) Neg(s Scalar) Scalar { return m.Sub(Zero(), s) }

// double512 doubles a 512-bit value in place.
func double512(v *[2 * Words]uint64) {
	var c uint64
	for i := range v {
		next := v[i] >> 63
		v[i] = v[i]<<1 | c
		c = next
	}
}

// geq512 reports whether the 512-bit value v is >= the 512-bit value w.
func geq512(v, w [2 * Words]uint64) bool {
	for i := 2*Words - 1; i >= 0; i-- {
		if v[i] != w[i] {
			return v[i] > w[i]
		}
	}
	return true
}

// sub512 computes v -= w.
func sub512(v *[2 * Words]uint64, w [2 * Words]uint64) {
	var b uint64
	for i := range v {
		v[i], b = bits.Sub64(v[i], w[i], b)
	}
}

// reduce512 reduces a 512-bit value modulo n by binary long division.
func (m *Modulus) reduce512(v [2 * Words]uint64) Scalar {
	vbits := 0
	for i := 2*Words - 1; i >= 0; i-- {
		if v[i] != 0 {
			vbits = i*64 + 64 - bits.LeadingZeros64(v[i])
			break
		}
	}
	if vbits < m.bits {
		var r Scalar
		copy(r[:], v[:Words])
		return r
	}
	// shifted = n << (vbits - m.bits)
	shift := vbits - m.bits
	var shifted [2 * Words]uint64
	w, b := shift>>6, uint(shift)&63
	for i := 0; i < Words; i++ {
		if i+w < len(shifted) {
			shifted[i+w] |= m.n[i] << b
		}
		if b != 0 && i+w+1 < len(shifted) {
			shifted[i+w+1] |= m.n[i] >> (64 - b)
		}
	}
	// Classic shift-and-subtract: one trial subtraction per bit.
	for i := 0; i <= shift; i++ {
		if geq512(v, shifted) {
			sub512(&v, shifted)
		}
		// shifted >>= 1
		for j := 0; j < len(shifted); j++ {
			shifted[j] >>= 1
			if j+1 < len(shifted) {
				shifted[j] |= shifted[j+1] << 63
			}
		}
	}
	var r Scalar
	copy(r[:], v[:Words])
	return r
}

// Mul returns (s * t) mod n.
func (m *Modulus) Mul(s, t Scalar) Scalar {
	// Schoolbook multiplication: row i adds s[i]*t into p starting at
	// word i; the row carry lands in the previously untouched word
	// p[i+Words]. The combined value p[i+j] + lo + carry is < 2^128,
	// so the outgoing carry always fits in one word.
	var p [2 * Words]uint64
	for i := 0; i < Words; i++ {
		var carry uint64
		for j := 0; j < Words; j++ {
			hi, lo := bits.Mul64(s[i], t[j])
			lo, c1 := bits.Add64(lo, p[i+j], 0)
			lo, c2 := bits.Add64(lo, carry, 0)
			p[i+j] = lo
			carry = hi + c1 + c2
		}
		p[i+Words] = carry
	}
	return m.reduce512(p)
}

// Reduce returns s mod n for an arbitrary (possibly unreduced) scalar.
func (m *Modulus) Reduce(s Scalar) Scalar {
	var v [2 * Words]uint64
	copy(v[:], s[:])
	return m.reduce512(v)
}

// Exp returns s^e mod n by square-and-multiply (left to right).
func (m *Modulus) Exp(s Scalar, e Scalar) Scalar {
	r := One()
	for i := e.BitLen() - 1; i >= 0; i-- {
		r = m.Mul(r, r)
		if e.Bit(i) == 1 {
			r = m.Mul(r, s)
		}
	}
	return r
}

// Inv returns s^-1 mod n via Fermat's little theorem; the modulus must
// be prime (curve orders are). Inv(0) returns 0.
func (m *Modulus) Inv(s Scalar) Scalar {
	nm2, _ := subRaw(m.n, FromUint64(2))
	return m.Exp(s, nm2)
}

// AddMulSmall returns k + factor*n WITHOUT modular reduction — the
// scalar-blinding form k' = k + m·n used as an additional DPA
// countermeasure (k'·P = k·P but the processed bit pattern is fresh
// per execution). Errors if the result would overflow 256 bits.
func (m *Modulus) AddMulSmall(k Scalar, factor uint64) (Scalar, error) {
	var prod [Words + 1]uint64
	var carry uint64
	for i := 0; i < Words; i++ {
		hi, lo := bits.Mul64(m.n[i], factor)
		lo, c := bits.Add64(lo, carry, 0)
		prod[i] = lo
		carry = hi + c
	}
	prod[Words] = carry
	var out Scalar
	var c uint64
	for i := 0; i < Words; i++ {
		out[i], c = bits.Add64(prod[i], k[i], c)
	}
	if prod[Words] != 0 || c != 0 {
		return Scalar{}, errors.New("modn: blinded scalar overflows 256 bits")
	}
	return out, nil
}

// Rand returns a uniformly random scalar in [0, n) by rejection
// sampling from src, a function yielding uniform uint64 values.
func (m *Modulus) Rand(src func() uint64) Scalar {
	topWord := (m.bits - 1) >> 6
	var mask uint64
	if r := uint(m.bits) & 63; r == 0 {
		mask = ^uint64(0)
	} else {
		mask = 1<<r - 1
	}
	for {
		var s Scalar
		for i := 0; i <= topWord; i++ {
			s[i] = src()
		}
		s[topWord] &= mask
		if s.Cmp(m.n) < 0 {
			return s
		}
	}
}

// RandNonZero returns a uniformly random scalar in [1, n).
func (m *Modulus) RandNonZero(src func() uint64) Scalar {
	for {
		s := m.Rand(src)
		if !s.IsZero() {
			return s
		}
	}
}

// ByteLen is the canonical scalar encoding length (256 bits).
const ByteLen = Words * 8

// Bytes returns the 32-byte big-endian encoding of s.
func (s Scalar) Bytes() []byte {
	out := make([]byte, ByteLen)
	for i := 0; i < ByteLen; i++ {
		out[ByteLen-1-i] = byte(s[i>>3] >> (uint(i) & 7 * 8))
	}
	return out
}

// FromBytes decodes a big-endian byte string of at most 32 bytes.
func FromBytes(b []byte) (Scalar, error) {
	if len(b) > ByteLen {
		return Scalar{}, errors.New("modn: encoding too long")
	}
	var s Scalar
	for _, c := range b {
		if s[3]>>56 != 0 {
			return Scalar{}, errors.New("modn: encoding overflow")
		}
		s[3] = s[3]<<8 | s[2]>>56
		s[2] = s[2]<<8 | s[1]>>56
		s[1] = s[1]<<8 | s[0]>>56
		s[0] = s[0]<<8 | uint64(c)
	}
	return s, nil
}

// String renders s in big-endian hex.
func (s Scalar) String() string {
	const hexdigits = "0123456789abcdef"
	buf := make([]byte, 0, 64)
	started := false
	for i := 63; i >= 0; i-- {
		nib := byte(s[i>>4]>>(uint(i)&15*4)) & 0xf
		if nib != 0 {
			started = true
		}
		if started {
			buf = append(buf, hexdigits[nib])
		}
	}
	if !started {
		return "0"
	}
	return string(buf)
}
