// Package battery models the implant's energy budget — the resource
// every design decision in the paper ultimately serves ("the battery
// of a pacemaker will last for 5 to 15 years before it is replaced").
// It prices a security workload (sessions, telemetry, firmware
// verifications) against a primary-cell budget with self-discharge,
// and answers the design question: does the cryptography shorten the
// device's life?
package battery

import (
	"errors"
	"math"
)

// Cell is a primary battery model.
type Cell struct {
	// CapacityJ is the total usable energy.
	CapacityJ float64
	// SelfDischargePerYear is the fraction of the *initial* capacity
	// lost per year regardless of load (LiI cells: ~1%/year).
	SelfDischargePerYear float64
	// SecurityBudgetFraction is the share of capacity the designer
	// allots to security functions (the rest pays for pacing,
	// sensing, telemetry radio baseline, ...).
	SecurityBudgetFraction float64
}

// PacemakerCell returns a typical pacemaker LiI cell: ~2 Ah at 2.8 V
// ≈ 20 kJ, 1 %/year self-discharge, 1 % of capacity allotted to
// security.
func PacemakerCell() Cell {
	return Cell{
		CapacityJ:              20e3,
		SelfDischargePerYear:   0.01,
		SecurityBudgetFraction: 0.01,
	}
}

// Workload is the security duty cycle.
type Workload struct {
	// SessionsPerDay is the number of authenticated sessions.
	SessionsPerDay float64
	// SessionEnergyJ is the device energy per session (computation +
	// radio; from the protocol ledger).
	SessionEnergyJ float64
	// TelemetryPerDay and TelemetryEnergyJ price periodic sealed
	// measurements.
	TelemetryPerDay  float64
	TelemetryEnergyJ float64
	// FirmwareChecksPerYear and FirmwareCheckEnergyJ price signature
	// verifications (2 point multiplications each).
	FirmwareChecksPerYear float64
	FirmwareCheckEnergyJ  float64
}

// PerYearJ returns the workload's annual energy.
func (w Workload) PerYearJ() float64 {
	daily := w.SessionsPerDay*w.SessionEnergyJ + w.TelemetryPerDay*w.TelemetryEnergyJ
	return daily*365 + w.FirmwareChecksPerYear*w.FirmwareCheckEnergyJ
}

// SecurityLifetimeYears returns how many years the security budget
// sustains the workload, accounting for self-discharge of the budget
// share. Returns +Inf when the workload is zero.
func (c Cell) SecurityLifetimeYears(w Workload) (float64, error) {
	if c.CapacityJ <= 0 || c.SecurityBudgetFraction <= 0 || c.SecurityBudgetFraction > 1 {
		return 0, errors.New("battery: invalid cell parameters")
	}
	budget := c.CapacityJ * c.SecurityBudgetFraction
	annual := w.PerYearJ() + budget*c.SelfDischargePerYear
	if annual <= 0 {
		return math.Inf(1), nil
	}
	return budget / annual, nil
}

// LifetimeImpactYears compares the whole-device lifetime with and
// without the security workload: baseline lifetime is capacity over
// (base load + self-discharge); with security the workload adds to the
// drain. baseLoadW is the therapy/housekeeping power (a pacemaker
// draws ~10-30 µW).
func (c Cell) LifetimeImpactYears(baseLoadW float64, w Workload) (without, with float64, err error) {
	if baseLoadW <= 0 {
		return 0, 0, errors.New("battery: base load must be positive")
	}
	const secondsPerYear = 365 * 24 * 3600.0
	baseAnnual := baseLoadW*secondsPerYear + c.CapacityJ*c.SelfDischargePerYear
	without = c.CapacityJ / baseAnnual
	with = c.CapacityJ / (baseAnnual + w.PerYearJ())
	return without, with, nil
}
