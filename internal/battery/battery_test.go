package battery

import (
	"math"
	"testing"
)

func paperWorkload() Workload {
	return Workload{
		SessionsPerDay:        4,
		SessionEnergyJ:        63.7e-6, // from the E11 session accounting
		TelemetryPerDay:       24,
		TelemetryEnergyJ:      5e-6,
		FirmwareChecksPerYear: 2,
		FirmwareCheckEnergyJ:  10.2e-6, // 2 point multiplications
	}
}

func TestSecurityBudgetOutlivesTheDevice(t *testing.T) {
	// The paper's design goal: 5.1 µJ point multiplications make the
	// cryptography irrelevant to the battery. With a 1% security
	// budget and a realistic duty cycle, the security lifetime must
	// exceed the 15-year device ceiling by a wide margin.
	cell := PacemakerCell()
	years, err := cell.SecurityLifetimeYears(paperWorkload())
	if err != nil {
		t.Fatal(err)
	}
	if years < 50 {
		t.Fatalf("security budget lasts only %.1f years; the design goal is 'not the bottleneck'", years)
	}
}

func TestLifetimeImpactIsNegligible(t *testing.T) {
	cell := PacemakerCell()
	without, with, err := cell.LifetimeImpactYears(25e-6, paperWorkload())
	if err != nil {
		t.Fatal(err)
	}
	// Pacemaker base load of 25 µW on 20 kJ: ~15-20 years.
	if without < 10 || without > 30 {
		t.Fatalf("baseline lifetime %.1f years implausible", without)
	}
	if with >= without {
		t.Fatal("security workload cannot extend the battery")
	}
	// The whole point: less than 2% lifetime cost.
	if (without-with)/without > 0.02 {
		t.Fatalf("security costs %.1f%% of lifetime; should be negligible",
			(without-with)/without*100)
	}
}

func TestHeavyWorkloadShortensLife(t *testing.T) {
	// Sanity in the other direction: a device doing a point
	// multiplication every second would notice.
	cell := PacemakerCell()
	heavy := Workload{SessionsPerDay: 86400, SessionEnergyJ: 5.1e-6}
	light := paperWorkload()
	hy, err := cell.SecurityLifetimeYears(heavy)
	if err != nil {
		t.Fatal(err)
	}
	ly, err := cell.SecurityLifetimeYears(light)
	if err != nil {
		t.Fatal(err)
	}
	if hy >= ly {
		t.Fatal("heavier workload should shorten the security lifetime")
	}
	if hy > 2 {
		t.Fatalf("PM-per-second lifetime %.2f years; model insensitive to load", hy)
	}
}

func TestZeroWorkload(t *testing.T) {
	cell := PacemakerCell()
	cell.SelfDischargePerYear = 0
	years, err := cell.SecurityLifetimeYears(Workload{})
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(years, 1) {
		t.Fatalf("zero workload, zero self-discharge should be infinite, got %v", years)
	}
}

func TestValidation(t *testing.T) {
	bad := Cell{CapacityJ: -1, SecurityBudgetFraction: 0.1}
	if _, err := bad.SecurityLifetimeYears(Workload{}); err == nil {
		t.Fatal("negative capacity accepted")
	}
	bad = Cell{CapacityJ: 1, SecurityBudgetFraction: 2}
	if _, err := bad.SecurityLifetimeYears(Workload{}); err == nil {
		t.Fatal("budget fraction > 1 accepted")
	}
	cell := PacemakerCell()
	if _, _, err := cell.LifetimeImpactYears(0, Workload{}); err == nil {
		t.Fatal("zero base load accepted")
	}
}
