package gf2m

import (
	"fmt"
	"math/bits"
)

// Field describes a generic binary extension field GF(2^m) with an
// arbitrary reduction polynomial. It is deliberately implemented with
// different algorithms from the fixed GF(2^163) path (bitwise
// multiplication with interleaved reduction, extended Euclidean
// inversion) so the two implementations can property-test each other.
type Field struct {
	// M is the extension degree.
	M int
	// Poly holds the exponents of the nonzero terms of the reduction
	// polynomial except the leading x^M term, in decreasing order and
	// ending with 0 (the constant term). For the NIST pentanomial
	// x^163+x^7+x^6+x^3+1 this is [7 6 3 0].
	Poly []int

	words int
	// red is the reduction polynomial minus the leading term, as a
	// bit vector (used for shift-and-xor reduction).
	red []uint64
	// topWord and topBit locate coefficient x^(M-1).
	topMask uint64
}

// FE is an element of a generic Field: little-endian 64-bit words,
// always len == field.words and always reduced below degree M.
type FE []uint64

// NewField constructs GF(2^m) with reduction polynomial
// x^m + sum x^poly[i]. The polynomial must be monic of degree m with
// all listed exponents strictly below m and include the constant term.
func NewField(m int, poly []int) (*Field, error) {
	if m < 2 || m > 1024 {
		return nil, fmt.Errorf("gf2m: unsupported extension degree %d", m)
	}
	if len(poly) == 0 || poly[len(poly)-1] != 0 {
		return nil, fmt.Errorf("gf2m: reduction polynomial must include constant term")
	}
	for i, e := range poly {
		if e < 0 || e >= m {
			return nil, fmt.Errorf("gf2m: reduction exponent %d out of range", e)
		}
		if i > 0 && e >= poly[i-1] {
			return nil, fmt.Errorf("gf2m: reduction exponents must be strictly decreasing")
		}
	}
	f := &Field{
		M:     m,
		Poly:  append([]int(nil), poly...),
		words: (m + 63) / 64,
	}
	f.red = make([]uint64, f.words)
	for _, e := range poly {
		f.red[e>>6] |= 1 << (uint(e) & 63)
	}
	if r := uint(m) & 63; r == 0 {
		f.topMask = ^uint64(0)
	} else {
		f.topMask = 1<<r - 1
	}
	return f, nil
}

// MustField is NewField for package-level constants; it panics on error.
func MustField(m int, poly []int) *Field {
	f, err := NewField(m, poly)
	if err != nil {
		panic(err)
	}
	return f
}

// NISTK163Field returns the paper's field GF(2^163) with the NIST
// pentanomial, in generic representation.
func NISTK163Field() *Field { return MustField(163, []int{7, 6, 3, 0}) }

// Zero returns a fresh zero element.
func (f *Field) Zero() FE { return make(FE, f.words) }

// One returns a fresh multiplicative identity.
func (f *Field) One() FE {
	e := make(FE, f.words)
	e[0] = 1
	return e
}

// Copy returns an independent copy of e.
func (f *Field) Copy(e FE) FE { return append(FE(nil), e...) }

// IsZero reports whether e is zero.
func (f *Field) IsZero(e FE) bool {
	var acc uint64
	for _, w := range e {
		acc |= w
	}
	return acc == 0
}

// Equal reports whether a and b are the same element.
func (f *Field) Equal(a, b FE) bool {
	var acc uint64
	for i := range a {
		acc |= a[i] ^ b[i]
	}
	return acc == 0
}

// Bit returns coefficient i of e.
func (f *Field) Bit(e FE, i int) uint {
	if i < 0 || i >= f.M {
		return 0
	}
	return uint(e[i>>6]>>(uint(i)&63)) & 1
}

// SetBit sets coefficient i of e in place.
func (f *Field) SetBit(e FE, i int, b uint) {
	if i < 0 || i >= f.M {
		return
	}
	w, s := i>>6, uint(i)&63
	e[w] = e[w]&^(1<<s) | uint64(b&1)<<s
}

// Degree returns the polynomial degree of e, or -1 for zero.
func (f *Field) Degree(e FE) int {
	for w := len(e) - 1; w >= 0; w-- {
		if e[w] != 0 {
			return w*64 + 63 - bits.LeadingZeros64(e[w])
		}
	}
	return -1
}

// Add returns a + b.
func (f *Field) Add(a, b FE) FE {
	out := make(FE, f.words)
	for i := range out {
		out[i] = a[i] ^ b[i]
	}
	return out
}

// shl1 shifts v left by one bit in place and returns the bit shifted
// out of the top of the register (not of the field).
func shl1(v []uint64) uint64 {
	carry := uint64(0)
	for i := range v {
		next := v[i] >> 63
		v[i] = v[i]<<1 | carry
		carry = next
	}
	return carry
}

// reduceOnce folds coefficient x^M of v (if set) back into the low
// part using the reduction polynomial; v must have degree <= M.
func (f *Field) reduceTop(v []uint64) {
	w, s := f.M>>6, uint(f.M)&63
	if w < len(v) && v[w]>>s&1 == 1 {
		v[w] &^= 1 << s
		for i, r := range f.red {
			v[i] ^= r
		}
	}
}

// Mul returns a * b using left-to-right shift-and-add with interleaved
// reduction — the classic bit-serial hardware multiplier, and an
// algorithm entirely unlike the fixed path's comb multiplication.
func (f *Field) Mul(a, b FE) FE {
	acc := make(FE, f.words)
	for i := f.M - 1; i >= 0; i-- {
		carry := shl1(acc)
		if f.M == 64*f.words {
			// x^M is the register carry-out.
			if carry == 1 {
				for j, r := range f.red {
					acc[j] ^= r
				}
			}
		} else {
			f.reduceTop(acc)
		}
		if f.Bit(a, i) == 1 {
			for j := range acc {
				acc[j] ^= b[j]
			}
		}
	}
	return acc
}

// Sqr returns e^2 via Mul. (The generic path favours clarity over
// speed; the fixed path has the table-driven squarer.)
func (f *Field) Sqr(e FE) FE { return f.Mul(e, e) }

// Inv returns the inverse of e using the binary extended Euclidean
// algorithm for polynomials over GF(2). Inverting zero returns zero.
func (f *Field) Inv(e FE) FE {
	if f.IsZero(e) {
		return f.Zero()
	}
	// u, v are polynomials; g1, g2 track the Bezout coefficients.
	// fPoly = x^M + red (one extra word in case M is a multiple of 64).
	n := f.words + 1
	u := make([]uint64, n)
	v := make([]uint64, n)
	g1 := make([]uint64, n)
	g2 := make([]uint64, n)
	copy(u, e)
	copy(v, f.red)
	v[f.M>>6] |= 1 << (uint(f.M) & 63)
	g1[0] = 1

	deg := func(p []uint64) int {
		for w := len(p) - 1; w >= 0; w-- {
			if p[w] != 0 {
				return w*64 + 63 - bits.LeadingZeros64(p[w])
			}
		}
		return -1
	}
	xorShift := func(dst, src []uint64, s int) {
		w, b := s>>6, uint(s)&63
		for i := 0; i+w < len(dst); i++ {
			dst[i+w] ^= src[i] << b
			if b != 0 && i+w+1 < len(dst) {
				dst[i+w+1] ^= src[i] >> (64 - b)
			}
		}
	}
	du, dv := deg(u), deg(v)
	for du > 0 {
		if du < dv {
			u, v = v, u
			g1, g2 = g2, g1
			du, dv = dv, du
		}
		s := du - dv
		xorShift(u, v, s)
		xorShift(g1, g2, s)
		du = deg(u)
	}
	// u is now the constant 1; g1 is the inverse (reduced, since its
	// degree stayed below M throughout).
	out := make(FE, f.words)
	copy(out, g1[:f.words])
	return out
}

// Div returns a / b.
func (f *Field) Div(a, b FE) FE { return f.Mul(a, f.Inv(b)) }

// Sqrt returns e^(2^(m-1)), the unique square root.
func (f *Field) Sqrt(e FE) FE {
	out := f.Copy(e)
	for i := 0; i < f.M-1; i++ {
		out = f.Sqr(out)
	}
	return out
}

// Trace returns the absolute trace of e.
func (f *Field) Trace(e FE) uint {
	s := f.Copy(e)
	t := f.Copy(e)
	for i := 1; i < f.M; i++ {
		t = f.Sqr(t)
		s = f.Add(s, t)
	}
	return uint(s[0] & 1)
}

// HalfTrace returns the half-trace of e (m must be odd), solving
// z^2 + z = e when Tr(e) = 0.
func (f *Field) HalfTrace(e FE) FE {
	if f.M%2 == 0 {
		panic("gf2m: half-trace requires odd extension degree")
	}
	h := f.Copy(e)
	t := f.Copy(e)
	for i := 1; i <= (f.M-1)/2; i++ {
		t = f.Sqr(f.Sqr(t))
		h = f.Add(h, t)
	}
	return h
}

// FromElement converts a fixed GF(2^163) element to the generic
// representation; the field must be a degree-163 field.
func (f *Field) FromElement(e Element) FE {
	if f.M != M {
		panic("gf2m: field degree mismatch")
	}
	return FE{e[0], e[1], e[2]}
}

// ToElement converts a generic element of a degree-163 field to the
// fixed representation.
func (f *Field) ToElement(e FE) Element {
	if f.M != M {
		panic("gf2m: field degree mismatch")
	}
	return Element{e[0], e[1], e[2]}
}

// Rand returns a uniformly random field element drawn from src, a
// function yielding uniform uint64 values.
func (f *Field) Rand(src func() uint64) FE {
	e := make(FE, f.words)
	for i := range e {
		e[i] = src()
	}
	if r := uint(f.M) & 63; r != 0 {
		e[f.words-1] &= 1<<r - 1
	}
	return e
}

// String renders e in big-endian hex.
func (f *Field) String(e FE) string {
	const hexdigits = "0123456789abcdef"
	nhex := (f.M + 3) / 4
	buf := make([]byte, 0, nhex)
	started := false
	for i := nhex - 1; i >= 0; i-- {
		nib := byte(e[(4*i)>>6]>>(uint(4*i)&63)) & 0xf
		if nib != 0 {
			started = true
		}
		if started {
			buf = append(buf, hexdigits[nib])
		}
	}
	if !started {
		return "0"
	}
	return string(buf)
}
