package gf2m

import (
	"testing"

	"medsec/internal/rng"
)

// Multiplier-configuration sweep. The production multiplier pins two
// tuning choices:
//
//   - one level of 3-word Karatsuba (6 word products) over schoolbook
//     (9 word products) — deeper recursion is structurally unavailable
//     at 163 bits: the operands are only 3 words, so the next level
//     would split single words;
//   - a 4-bit comb window (16-entry table, 16 lookups per word
//     product) over 2-bit (4-entry, 32 lookups) and 8-bit (256-entry,
//     8 lookups).
//
// The variants below re-implement the rejected configurations so the
// crossover stays measured, not asserted. On the reference host
// (BENCH_simcore.json, gf2m/Mul row) the sweep reads:
//
//	karatsuba-w4 (pinned)   ~269 ns/op
//	karatsuba-w2            ~387 ns/op  (2x lookups dominate)
//	karatsuba-w8           ~1627 ns/op  (127 shift/XOR table builds
//	                                     per operand word swamp the
//	                                     halved lookups at one-shot
//	                                     use; an 8-bit window could
//	                                     only win if a table were
//	                                     reused ~10+ times, which the
//	                                     MALU's operand churn never
//	                                     reaches)
//	schoolbook-w4           ~312 ns/op  (9 vs 6 word products)
//
// Correctness of every variant is pinned against the production path
// in TestMulSweepVariantsAgree, so the benchmark numbers compare
// equal-output implementations.

// --- 2-bit window comb ---

type wordTab2 [4]uint64

func combTab2(x uint64) wordTab2 {
	var u wordTab2
	u[1] = x
	u[2] = x << 1
	u[3] = u[2] ^ x
	return u
}

func clmulTab2(u *wordTab2, x, y uint64) (hi, lo uint64) {
	lo = u[y&0x3]
	for i := uint(2); i < 64; i += 2 {
		v := u[(y>>i)&0x3]
		lo ^= v << i
		hi ^= v >> (64 - i)
	}
	// Truncation correction: the table's x<<1 loses bit 63 of x,
	// contributed wherever bit 1 of a window of y is set.
	const comb = 0x5555555555555555
	z := x >> 63
	hi ^= ((y >> 1) & comb) & (-z)
	return hi, lo
}

// --- 8-bit window comb ---

type wordTab8 [256]uint64

func combTab8(x uint64) wordTab8 {
	var u wordTab8
	u[1] = x
	for i := 2; i < 256; i += 2 {
		u[i] = u[i/2] << 1
		u[i+1] = u[i] ^ x
	}
	return u
}

func clmulTab8(u *wordTab8, x, y uint64) (hi, lo uint64) {
	lo = u[y&0xff]
	for i := uint(8); i < 64; i += 8 {
		v := u[(y>>i)&0xff]
		lo ^= v << i
		hi ^= v >> (64 - i)
	}
	// Truncation correction for window bits 1..7.
	const comb = 0x0101010101010101
	for k := uint(1); k < 8; k++ {
		z := x >> (64 - k)
		w := (y >> k) & comb
		var t uint64
		for j := uint(0); j < 7; j++ {
			t ^= (w << j) & (-(z >> j & 1))
		}
		hi ^= t
	}
	return hi, lo
}

// mulKaratsubaW builds the 6-word product with the production Karatsuba
// structure over a pluggable word multiplier.
func mulKaratsubaW(a, b Element, clmul func(x, y uint64) (hi, lo uint64)) [6]uint64 {
	h0, l0 := clmul(a[0], b[0])
	h1, l1 := clmul(a[1], b[1])
	h2, l2 := clmul(a[2], b[2])
	h01, l01 := clmul(a[0]^a[1], b[0]^b[1])
	h02, l02 := clmul(a[0]^a[2], b[0]^b[2])
	h12, l12 := clmul(a[1]^a[2], b[1]^b[2])
	m1l, m1h := l01^l0^l1, h01^h0^h1
	m2l, m2h := l02^l0^l1^l2, h02^h0^h1^h2
	m3l, m3h := l12^l1^l2, h12^h1^h2
	return [6]uint64{l0, h0 ^ m1l, m1h ^ m2l, m2h ^ m3l, m3h ^ l2, h2}
}

// mulSchoolbook is the 9-product comparison point, sharing one comb
// table per left-operand word across its row (the fair schoolbook: the
// naive one would rebuild tables per product).
func mulSchoolbook(a, b Element) [6]uint64 {
	var out [6]uint64
	for i := 0; i < 3; i++ {
		u := combTab(a[i])
		for j := 0; j < 3; j++ {
			hi, lo := clmulTab(&u, a[i], b[j])
			out[i+j] ^= lo
			out[i+j+1] ^= hi
		}
	}
	return out
}

func clmul64W2(x, y uint64) (uint64, uint64) {
	u := combTab2(x)
	return clmulTab2(&u, x, y)
}

func clmul64W8(x, y uint64) (uint64, uint64) {
	u := combTab8(x)
	return clmulTab8(&u, x, y)
}

func TestMulSweepVariantsAgree(t *testing.T) {
	d := rng.NewDRBG(0x5eed)
	for i := 0; i < 2000; i++ {
		a := FromWords(d.Uint64(), d.Uint64(), d.Uint64())
		b := FromWords(d.Uint64(), d.Uint64(), d.Uint64())
		want := Mul(a, b)
		for name, raw := range map[string][6]uint64{
			"karatsuba-w2": mulKaratsubaW(a, b, clmul64W2),
			"karatsuba-w8": mulKaratsubaW(a, b, clmul64W8),
			"schoolbook":   mulSchoolbook(a, b),
		} {
			if got := reduce(raw); got != want {
				t.Fatalf("%s: Mul(%v, %v) = %v, want %v", name, a, b, got, want)
			}
		}
	}
}

func BenchmarkMulSweep(b *testing.B) {
	b.Run("karatsuba-w4", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			benchSink = Mul(benchA, benchB)
		}
	})
	b.Run("karatsuba-w2", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			benchSink = reduce(mulKaratsubaW(benchA, benchB, clmul64W2))
		}
	})
	b.Run("karatsuba-w8", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			benchSink = reduce(mulKaratsubaW(benchA, benchB, clmul64W8))
		}
	})
	b.Run("schoolbook-w4", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			benchSink = reduce(mulSchoolbook(benchA, benchB))
		}
	})
}
