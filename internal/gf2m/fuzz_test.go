package gf2m

import (
	"bytes"
	"testing"
)

// FuzzFromBytes: decoding arbitrary bytes must yield a canonical
// element whose re-encoding round-trips (after canonicalization).
func FuzzFromBytes(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0xff})
	f.Add(bytes.Repeat([]byte{0xff}, ByteLen))
	f.Add(bytes.Repeat([]byte{0xff}, ByteLen+5))
	f.Fuzz(func(t *testing.T, data []byte) {
		e := FromBytes(data)
		if e.Degree() >= M {
			t.Fatalf("non-canonical element decoded: degree %d", e.Degree())
		}
		again := FromBytes(e.Bytes())
		if !again.Equal(e) {
			t.Fatal("encode/decode not a round trip")
		}
		// Algebra stays consistent on fuzzed inputs.
		if !Mul(e, One()).Equal(e) {
			t.Fatal("identity broken on fuzzed element")
		}
		if !Add(e, e).IsZero() {
			t.Fatal("characteristic-2 addition broken")
		}
		if !Sqr(e).Equal(Mul(e, e)) {
			t.Fatal("squaring inconsistent")
		}
	})
}

// FuzzReduce: arbitrary 6-word polynomials must reduce to canonical
// form consistently with multiply-then-reduce identities.
func FuzzReduce(f *testing.F) {
	f.Add(uint64(0), uint64(0), uint64(0), uint64(0), uint64(0), uint64(0))
	f.Add(^uint64(0), ^uint64(0), ^uint64(0), ^uint64(0), ^uint64(0), uint64(1<<5-1))
	f.Fuzz(func(t *testing.T, c0, c1, c2, c3, c4, c5 uint64) {
		// Keep within the degree bound reduce() documents (<= 324).
		c5 &= 1<<5 - 1
		r := Reduce([6]uint64{c0, c1, c2, c3, c4, c5})
		if r.Degree() >= M {
			t.Fatalf("reduce left degree %d", r.Degree())
		}
		// Reducing an already-reduced value is the identity.
		if again := Reduce([6]uint64{r[0], r[1], r[2], 0, 0, 0}); !again.Equal(r) {
			t.Fatal("reduce not idempotent on canonical values")
		}
	})
}
