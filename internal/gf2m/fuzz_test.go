package gf2m

import (
	"bytes"
	"testing"
)

// FuzzFromBytes: decoding arbitrary bytes must yield a canonical
// element whose re-encoding round-trips (after canonicalization).
func FuzzFromBytes(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0xff})
	f.Add(bytes.Repeat([]byte{0xff}, ByteLen))
	f.Add(bytes.Repeat([]byte{0xff}, ByteLen+5))
	f.Fuzz(func(t *testing.T, data []byte) {
		e := FromBytes(data)
		if e.Degree() >= M {
			t.Fatalf("non-canonical element decoded: degree %d", e.Degree())
		}
		again := FromBytes(e.Bytes())
		if !again.Equal(e) {
			t.Fatal("encode/decode not a round trip")
		}
		// Algebra stays consistent on fuzzed inputs.
		if !Mul(e, One()).Equal(e) {
			t.Fatal("identity broken on fuzzed element")
		}
		if !Add(e, e).IsZero() {
			t.Fatal("characteristic-2 addition broken")
		}
		if !Sqr(e).Equal(Mul(e, e)) {
			t.Fatal("squaring inconsistent")
		}
	})
}

// FuzzMulCross: the Karatsuba/windowed fixed-path multiplier (and its
// precomputed and lazy-reduction variants) must agree with the generic
// bit-serial field on arbitrary canonical operands. Seeds cover the
// structural corners: zero, identity, all-ones, single top bit, the
// comb window pattern, and the reduction-polynomial tail.
func FuzzMulCross(f *testing.F) {
	f.Add(uint64(0), uint64(0), uint64(0), uint64(0), uint64(0), uint64(0))
	f.Add(uint64(1), uint64(0), uint64(0), uint64(1), uint64(0), uint64(0))
	f.Add(^uint64(0), ^uint64(0), uint64(1<<35-1), ^uint64(0), ^uint64(0), uint64(1<<35-1))
	f.Add(uint64(0), uint64(0), uint64(1<<34), uint64(0xc9), uint64(0), uint64(1<<34))
	f.Add(uint64(0x1111111111111111), uint64(0), uint64(0), uint64(0x8000000000000000), uint64(0x8000000000000000), uint64(1))
	gen := NISTK163Field()
	f.Fuzz(func(t *testing.T, a0, a1, a2, b0, b1, b2 uint64) {
		a := Element{a0, a1, a2 & (1<<35 - 1)}
		b := Element{b0, b1, b2 & (1<<35 - 1)}
		want := gen.ToElement(gen.Mul(gen.FromElement(a), gen.FromElement(b)))
		if got := Mul(a, b); !got.Equal(want) {
			t.Fatalf("Mul diverged from generic field: got %v, want %v", got, want)
		}
		pa := Precompute(a)
		if got := pa.Mul(b); !got.Equal(want) {
			t.Fatal("Precomp.Mul diverged from generic field")
		}
		var acc [6]uint64
		MulAcc(&acc, a, b)
		if got := Reduce(acc); !got.Equal(want) {
			t.Fatal("MulAcc+Reduce diverged from generic field")
		}
		if !Reduce(SqrNoReduce(a)).Equal(Sqr(a)) {
			t.Fatal("SqrNoReduce+Reduce diverged from Sqr")
		}
	})
}

// FuzzReduce: arbitrary 6-word polynomials must reduce to canonical
// form consistently with multiply-then-reduce identities.
func FuzzReduce(f *testing.F) {
	f.Add(uint64(0), uint64(0), uint64(0), uint64(0), uint64(0), uint64(0))
	f.Add(^uint64(0), ^uint64(0), ^uint64(0), ^uint64(0), ^uint64(0), uint64(1<<5-1))
	f.Fuzz(func(t *testing.T, c0, c1, c2, c3, c4, c5 uint64) {
		// Keep within the degree bound reduce() documents (<= 324).
		c5 &= 1<<5 - 1
		r := Reduce([6]uint64{c0, c1, c2, c3, c4, c5})
		if r.Degree() >= M {
			t.Fatalf("reduce left degree %d", r.Degree())
		}
		// Reducing an already-reduced value is the identity.
		if again := Reduce([6]uint64{r[0], r[1], r[2], 0, 0, 0}); !again.Equal(r) {
			t.Fatal("reduce not idempotent on canonical values")
		}
	})
}
