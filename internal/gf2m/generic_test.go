package gf2m

import (
	"math/rand"
	"testing"
)

// TestGenericMatchesFixed cross-checks the two independent GF(2^163)
// implementations on every operation.
func TestGenericMatchesFixed(t *testing.T) {
	f := NISTK163Field()
	r := rand.New(rand.NewSource(20))
	for i := 0; i < 300; i++ {
		a := randElement(r)
		b := randElement(r)
		ga, gb := f.FromElement(a), f.FromElement(b)

		if got := f.ToElement(f.Add(ga, gb)); !got.Equal(Add(a, b)) {
			t.Fatalf("generic Add disagrees for a=%v b=%v", a, b)
		}
		if got := f.ToElement(f.Mul(ga, gb)); !got.Equal(Mul(a, b)) {
			t.Fatalf("generic Mul disagrees for a=%v b=%v", a, b)
		}
		if got := f.ToElement(f.Sqr(ga)); !got.Equal(Sqr(a)) {
			t.Fatalf("generic Sqr disagrees for a=%v", a)
		}
		if !a.IsZero() {
			if got := f.ToElement(f.Inv(ga)); !got.Equal(Inv(a)) {
				t.Fatalf("generic Inv disagrees for a=%v", a)
			}
		}
		if f.Trace(ga) != Trace(a) {
			t.Fatalf("generic Trace disagrees for a=%v", a)
		}
	}
	// Sqrt and HalfTrace on a smaller sample (they cost ~2m squarings
	// in the generic path).
	for i := 0; i < 10; i++ {
		a := randElement(r)
		ga := f.FromElement(a)
		if got := f.ToElement(f.Sqrt(ga)); !got.Equal(Sqrt(a)) {
			t.Fatalf("generic Sqrt disagrees for a=%v", a)
		}
		if got := f.ToElement(f.HalfTrace(ga)); !got.Equal(HalfTrace(a)) {
			t.Fatalf("generic HalfTrace disagrees for a=%v", a)
		}
	}
}

// fieldsUnderTest covers the NIST binary-field degrees the sweep
// experiments use, plus a word-boundary degree (128) and a tiny field.
func fieldsUnderTest() []*Field {
	return []*Field{
		MustField(8, []int{4, 3, 1, 0}),    // AES-like small field
		MustField(64, []int{4, 3, 1, 0}),   // single full word
		MustField(128, []int{7, 2, 1, 0}),  // two full words (m % 64 == 0)
		MustField(131, []int{8, 3, 2, 0}),  // low-security sweep point
		NISTK163Field(),                    // the paper's field
		MustField(233, []int{74, 0}),       // NIST K-233 trinomial
		MustField(283, []int{12, 7, 5, 0}), // NIST K-283 pentanomial
	}
}

func TestGenericFieldAxioms(t *testing.T) {
	r := rand.New(rand.NewSource(21))
	src := r.Uint64
	for _, f := range fieldsUnderTest() {
		for i := 0; i < 60; i++ {
			a, b, c := f.Rand(src), f.Rand(src), f.Rand(src)
			if !f.Equal(f.Mul(a, b), f.Mul(b, a)) {
				t.Fatalf("m=%d: mul not commutative", f.M)
			}
			if !f.Equal(f.Mul(f.Mul(a, b), c), f.Mul(a, f.Mul(b, c))) {
				t.Fatalf("m=%d: mul not associative", f.M)
			}
			if !f.Equal(f.Mul(a, f.Add(b, c)), f.Add(f.Mul(a, b), f.Mul(a, c))) {
				t.Fatalf("m=%d: mul not distributive", f.M)
			}
			if !f.Equal(f.Mul(a, f.One()), a) {
				t.Fatalf("m=%d: one not identity", f.M)
			}
			if !f.IsZero(f.Mul(a, f.Zero())) {
				t.Fatalf("m=%d: a*0 != 0", f.M)
			}
			if !f.IsZero(a) {
				if !f.Equal(f.Mul(a, f.Inv(a)), f.One()) {
					t.Fatalf("m=%d: a*a^-1 != 1 for a=%s", f.M, f.String(a))
				}
			}
			if !f.Equal(f.Sqr(a), f.Mul(a, a)) {
				t.Fatalf("m=%d: sqr != self-mul", f.M)
			}
		}
	}
}

func TestGenericSqrtAndHalfTrace(t *testing.T) {
	r := rand.New(rand.NewSource(22))
	src := r.Uint64
	for _, f := range fieldsUnderTest() {
		if f.M > 163 {
			continue // keep runtime modest; covered by axioms above
		}
		for i := 0; i < 10; i++ {
			a := f.Rand(src)
			if !f.Equal(f.Sqr(f.Sqrt(a)), a) {
				t.Fatalf("m=%d: sqrt(a)^2 != a", f.M)
			}
		}
		if f.M%2 == 1 {
			for i := 0; i < 20; i++ {
				c := f.Rand(src)
				if f.Trace(c) != 0 {
					continue
				}
				z := f.HalfTrace(c)
				if !f.Equal(f.Add(f.Sqr(z), z), c) {
					t.Fatalf("m=%d: half-trace fails", f.M)
				}
			}
		}
	}
}

func TestGenericHalfTracePanicsForEvenDegree(t *testing.T) {
	f := MustField(8, []int{4, 3, 1, 0})
	defer func() {
		if recover() == nil {
			t.Fatal("HalfTrace on even-degree field did not panic")
		}
	}()
	f.HalfTrace(f.One())
}

func TestGenericInvZero(t *testing.T) {
	f := NISTK163Field()
	if !f.IsZero(f.Inv(f.Zero())) {
		t.Fatal("generic Inv(0) should be 0")
	}
}

func TestGenericBitHelpers(t *testing.T) {
	f := NISTK163Field()
	e := f.Zero()
	f.SetBit(e, 162, 1)
	if f.Bit(e, 162) != 1 || f.Degree(e) != 162 {
		t.Fatal("SetBit/Bit/Degree broken at top bit")
	}
	f.SetBit(e, 162, 0)
	if !f.IsZero(e) || f.Degree(e) != -1 {
		t.Fatal("clearing top bit failed")
	}
	f.SetBit(e, 200, 1) // out of range: inert
	if !f.IsZero(e) {
		t.Fatal("out-of-range SetBit mutated element")
	}
}

func TestNewFieldValidation(t *testing.T) {
	cases := []struct {
		m    int
		poly []int
	}{
		{1, []int{0}},         // degree too small
		{2000, []int{1, 0}},   // degree too large
		{163, nil},            // empty polynomial
		{163, []int{7, 6, 3}}, // missing constant term
		{163, []int{163, 0}},  // exponent out of range
		{163, []int{3, 7, 0}}, // not decreasing
		{163, []int{7, 7, 0}}, // repeated exponent
		{163, []int{-1, 0}},   // negative exponent
	}
	for _, c := range cases {
		if _, err := NewField(c.m, c.poly); err == nil {
			t.Fatalf("NewField(%d, %v) accepted invalid input", c.m, c.poly)
		}
	}
	if _, err := NewField(163, []int{7, 6, 3, 0}); err != nil {
		t.Fatalf("valid field rejected: %v", err)
	}
}

func TestMustFieldPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustField did not panic on invalid input")
		}
	}()
	MustField(0, nil)
}

func TestGenericStringRoundTripAgainstFixed(t *testing.T) {
	f := NISTK163Field()
	r := rand.New(rand.NewSource(23))
	for i := 0; i < 50; i++ {
		a := randElement(r)
		if f.String(f.FromElement(a)) != a.String() {
			t.Fatalf("string mismatch for %v", a)
		}
	}
}

func TestFieldConversionPanicsOnDegreeMismatch(t *testing.T) {
	f := MustField(233, []int{74, 0})
	defer func() {
		if recover() == nil {
			t.Fatal("FromElement on non-163 field did not panic")
		}
	}()
	f.FromElement(One())
}

func BenchmarkGenericMul163(b *testing.B) {
	f := NISTK163Field()
	r := rand.New(rand.NewSource(1))
	x, y := f.Rand(r.Uint64), f.Rand(r.Uint64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x = f.Mul(x, y)
	}
}

func BenchmarkGenericInv163(b *testing.B) {
	f := NISTK163Field()
	r := rand.New(rand.NewSource(1))
	x := f.Rand(r.Uint64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		y := f.Inv(x)
		x[0] ^= y[0] | 1
	}
}
