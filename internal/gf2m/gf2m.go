// Package gf2m implements arithmetic in binary extension fields GF(2^m).
//
// The package provides two implementations:
//
//   - Element: a fast, fixed-size implementation of GF(2^163) with the
//     NIST reduction pentanomial f(x) = x^163 + x^7 + x^6 + x^3 + 1, the
//     field underlying the Koblitz curve K-163 used by the paper's
//     elliptic-curve co-processor. Elements are stored as three 64-bit
//     words in little-endian word order.
//
//   - Field / FE: a generic, variable-degree implementation supporting
//     arbitrary reduction polynomials. It is used for parameter sweeps
//     across security levels and doubles as an independent reference
//     implementation for cross-testing the fast path.
//
// All fixed-path operations are branch-free with respect to operand
// values (data-dependent branches are what the paper's timing- and
// SPA-countermeasures forbid); table lookups are indexed by public loop
// counters or operand bytes, which the simulator's leakage model
// accounts for explicitly.
package gf2m

import "math/bits"

// M is the extension degree of the fixed field GF(2^163).
const M = 163

// Words is the number of 64-bit words backing a fixed-field Element.
const Words = 3

// topMask masks the valid bits of the most significant word of an
// Element: bits 128..162 live in word 2, so 35 bits are in use.
const topMask = (uint64(1) << (M - 128)) - 1

// Element is an element of GF(2^163) in polynomial basis: bit i of the
// little-endian word array is the coefficient of x^i.
type Element [Words]uint64

// Zero returns the additive identity.
func Zero() Element { return Element{} }

// One returns the multiplicative identity.
func One() Element { return Element{1, 0, 0} }

// IsZero reports whether e is the zero element.
func (e Element) IsZero() bool { return e[0]|e[1]|e[2] == 0 }

// IsOne reports whether e is the multiplicative identity.
func (e Element) IsOne() bool { return e[0] == 1 && e[1] == 0 && e[2] == 0 }

// Equal reports whether e and f represent the same field element.
func (e Element) Equal(f Element) bool {
	return e[0] == f[0] && e[1] == f[1] && e[2] == f[2]
}

// Bit returns coefficient i of e (0 for out-of-range i).
func (e Element) Bit(i int) uint {
	if i < 0 || i >= M {
		return 0
	}
	return uint(e[i>>6]>>(uint(i)&63)) & 1
}

// SetBit returns a copy of e with coefficient i set to b&1.
func (e Element) SetBit(i int, b uint) Element {
	if i < 0 || i >= M {
		return e
	}
	w, s := i>>6, uint(i)&63
	e[w] = e[w]&^(1<<s) | uint64(b&1)<<s
	return e
}

// Degree returns the degree of the polynomial representation of e, or
// -1 for the zero element.
func (e Element) Degree() int {
	for w := Words - 1; w >= 0; w-- {
		if e[w] != 0 {
			return w*64 + 63 - bits.LeadingZeros64(e[w])
		}
	}
	return -1
}

// Weight returns the Hamming weight (number of nonzero coefficients).
func (e Element) Weight() int {
	return bits.OnesCount64(e[0]) + bits.OnesCount64(e[1]) + bits.OnesCount64(e[2])
}

// HammingDistance returns the number of coefficient positions at which
// e and f differ. It is the quantity the switching-power model charges
// for a register update e -> f.
func HammingDistance(e, f Element) int {
	return bits.OnesCount64(e[0]^f[0]) + bits.OnesCount64(e[1]^f[1]) + bits.OnesCount64(e[2]^f[2])
}

// Add returns e + f. Addition in GF(2^m) is coefficient-wise XOR; in
// hardware it is a single-cycle 163-bit XOR array.
func Add(e, f Element) Element {
	return Element{e[0] ^ f[0], e[1] ^ f[1], e[2] ^ f[2]}
}

// normalize clears any bits at or above position M. Inputs built from
// external bytes may carry stray high bits; all arithmetic assumes
// canonical elements.
func (e Element) normalize() Element {
	e[2] &= topMask
	return e
}

// wordTab is the 4-bit windowed comb table of one 64-bit operand:
// entry i holds the truncated carry-less product i·x for the sixteen
// 4-bit window values. Building it costs 7 shift/XOR pairs; a word
// product then needs only the 16 comb lookups plus the high-bits
// correction. Hoisting the table out of the word product is what lets
// one operand's precomputation be shared across every word product
// using that operand (the Karatsuba left-operand tables below).
//
// The window width is pinned at 4 by measurement, not convention: the
// configuration sweep in mulsweep_test.go (BenchmarkMulSweep; numbers
// in its header and in BENCH_simcore.json's gf2m/Mul row) puts the
// 2-bit window ~1.4x slower (twice the lookups) and the 8-bit window
// ~6x slower (a 256-entry table build per operand word amortizes only
// after ~10 reuses, which one-shot multiplication never reaches).
// Likewise one level of 3-word Karatsuba (6 word products) beats
// schoolbook's 9 by ~15% — and there is no deeper recursion to sweep:
// the next level would split single words.
type wordTab [16]uint64

// combTab builds the window table of x.
func combTab(x uint64) wordTab {
	var u wordTab
	u[1] = x
	for i := 2; i < 16; i += 2 {
		u[i] = u[i/2] << 1
		u[i+1] = u[i] ^ x
	}
	return u
}

// clmulTab returns the 128-bit carry-less product of x and y as
// (hi, lo), given x's precomputed window table. It is the standard
// 4-bit windowed comb with the high-bits correction, and contains no
// data-dependent branches.
func clmulTab(u *wordTab, x, y uint64) (hi, lo uint64) {
	lo = u[y&0xf]
	for i := uint(4); i < 64; i += 4 {
		v := u[(y>>i)&0xf]
		lo ^= v << i
		hi ^= v >> (64 - i)
	}
	// The table entries truncate x<<1, x<<2, x<<3 to 64 bits. For each
	// window bit k in {1,2,3} the lost high part is (x >> (64-k)),
	// contributed at every window position whose k-th bit of y is set.
	const comb = 0x1111111111111111
	for k := uint(1); k < 4; k++ {
		z := x >> (64 - k)
		w := (y >> k) & comb
		t := w & (-(z & 1))
		t ^= (w << 1) & (-(z >> 1 & 1))
		t ^= (w << 2) & (-(z >> 2 & 1))
		hi ^= t
	}
	return hi, lo
}

// clmulTabTop is clmulTab specialized for the top-word product of two
// canonical elements: x and y both carry at most 35 bits (degrees
// 128..162 live in word 2), so the windows above bit 35 of y and the
// truncated-shift correction (which needs bits 61..63 of x) vanish.
// This is a structural property of the element encoding, not of the
// operand values, so the specialization stays branch-free with respect
// to data.
func clmulTabTop(u *wordTab, y uint64) (hi, lo uint64) {
	lo = u[y&0xf]
	for i := uint(4); i < 36; i += 4 {
		v := u[(y>>i)&0xf]
		lo ^= v << i
		hi ^= v >> (64 - i)
	}
	return hi, lo
}

// clmul64 returns the 128-bit carry-less product of x and y, building
// the window table on the fly (the one-shot path; multi-product
// callers go through Precomp so the tables are built once).
func clmul64(x, y uint64) (hi, lo uint64) {
	u := combTab(x)
	return clmulTab(&u, x, y)
}

// Precomp is the per-operand half of a 3-word Karatsuba
// multiplication: the six left-operand words a0, a1, a2, a0^a1, a0^a2,
// a1^a2 together with their window tables. Precomputing it once and
// reusing it across multiplications by the same operand (Precomp.Mul)
// skips the table construction entirely — the software analogue of
// wiring one multiplicand into the MALU's partial-product array.
type Precomp struct {
	x [6]uint64
	t [6]wordTab
}

// Precompute builds the Karatsuba tables of a.
func Precompute(a Element) Precomp {
	var p Precomp
	p.x = [6]uint64{a[0], a[1], a[2], a[0] ^ a[1], a[0] ^ a[2], a[1] ^ a[2]}
	for i, w := range p.x {
		p.t[i] = combTab(w)
	}
	return p
}

// MulNoReduce returns the unreduced 6-word carry-less product p·b
// using the 3-word Karatsuba decomposition of Dyka & Langendoerfer:
// six word products instead of schoolbook's nine. With
// A = a0 + a1·X + a2·X² over X = x^64 and Dij = (ai+aj)(bi+bj):
//
//	A·B = D00 + (D01+D00+D11)·X + (D02+D00+D11+D22)·X²
//	          + (D12+D11+D22)·X³ + D22·X⁴
func (p *Precomp) MulNoReduce(b Element) [6]uint64 {
	h0, l0 := clmulTab(&p.t[0], p.x[0], b[0])
	h1, l1 := clmulTab(&p.t[1], p.x[1], b[1])
	h2, l2 := clmulTabTop(&p.t[2], b[2])
	h01, l01 := clmulTab(&p.t[3], p.x[3], b[0]^b[1])
	h02, l02 := clmulTab(&p.t[4], p.x[4], b[0]^b[2])
	h12, l12 := clmulTab(&p.t[5], p.x[5], b[1]^b[2])

	// Middle coefficients (each 128 bits).
	m1l, m1h := l01^l0^l1, h01^h0^h1       // X term: a0b1+a1b0
	m2l, m2h := l02^l0^l1^l2, h02^h0^h1^h2 // X² term: a0b2+a2b0+a1b1
	m3l, m3h := l12^l1^l2, h12^h1^h2       // X³ term: a1b2+a2b1

	return [6]uint64{
		l0,
		h0 ^ m1l,
		m1h ^ m2l,
		m2h ^ m3l,
		m3h ^ l2,
		h2,
	}
}

// Mul returns the reduced product p·b.
func (p *Precomp) Mul(b Element) Element {
	return reduce(p.MulNoReduce(b))
}

// mul320 computes the 6-word carry-less product of two 3-word operands
// via 3-word Karatsuba (6 word products, down from schoolbook's 9).
// The window tables live in locals so the compiler keeps them on the
// stack; long-lived per-operand tables go through Precomp instead.
func mul320(a, b Element) [6]uint64 {
	x01, x02, x12 := a[0]^a[1], a[0]^a[2], a[1]^a[2]
	t0 := combTab(a[0])
	t1 := combTab(a[1])
	t2 := combTab(a[2])
	t01 := combTab(x01)
	t02 := combTab(x02)
	t12 := combTab(x12)

	h0, l0 := clmulTab(&t0, a[0], b[0])
	h1, l1 := clmulTab(&t1, a[1], b[1])
	h2, l2 := clmulTabTop(&t2, b[2])
	h01, l01 := clmulTab(&t01, x01, b[0]^b[1])
	h02, l02 := clmulTab(&t02, x02, b[0]^b[2])
	h12, l12 := clmulTab(&t12, x12, b[1]^b[2])

	m1l, m1h := l01^l0^l1, h01^h0^h1
	m2l, m2h := l02^l0^l1^l2, h02^h0^h1^h2
	m3l, m3h := l12^l1^l2, h12^h1^h2

	return [6]uint64{l0, h0 ^ m1l, m1h ^ m2l, m2h ^ m3l, m3h ^ l2, h2}
}

// MulAcc accumulates the unreduced product a·b into acc: acc ^= a·b.
// Reduction mod f(x) is GF(2)-linear, so a multi-term sum can be
// accumulated unreduced and folded once at the end —
// Reduce(Σ aᵢ·bᵢ) == Σ Mul(aᵢ, bᵢ) bit-for-bit. The curve layer's
// projective formulas use this to pay one reduction per sum instead of
// one per product.
func MulAcc(acc *[6]uint64, a, b Element) {
	c := mul320(a, b)
	for i := range acc {
		acc[i] ^= c[i]
	}
}

// SqrNoReduce returns the unreduced 6-word carry-less square of e, for
// lazy-reduction sums mixing squares with products.
func SqrNoReduce(e Element) [6]uint64 {
	var c [6]uint64
	c[1], c[0] = spread64(e[0])
	c[3], c[2] = spread64(e[1])
	c[5], c[4] = spread64(e[2])
	return c
}

// reduce reduces a 6-word polynomial (degree <= 324) modulo
// f(x) = x^163 + x^7 + x^6 + x^3 + 1 using the congruence
// x^163 = x^7 + x^6 + x^3 + 1. Two folding rounds suffice because the
// first fold leaves degree at most 169.
func reduce(c [6]uint64) Element {
	// h = c >> 163 (degrees 163..324, at most 162 bits).
	var h [3]uint64
	h[0] = c[2]>>35 | c[3]<<29
	h[1] = c[3]>>35 | c[4]<<29
	h[2] = c[4]>>35 | c[5]<<29

	// low = c mod x^163, then fold h*(x^7+x^6+x^3+1) in. Shifts of the
	// 163-bit h by up to 7 fit in 3 words (degree <= 169 < 192).
	var t [3]uint64
	t[0] = h[0] ^ h[0]<<3 ^ h[0]<<6 ^ h[0]<<7
	t[1] = h[1] ^ h[1]<<3 ^ h[1]<<6 ^ h[1]<<7 ^ h[0]>>61 ^ h[0]>>58 ^ h[0]>>57
	t[2] = h[2] ^ h[2]<<3 ^ h[2]<<6 ^ h[2]<<7 ^ h[1]>>61 ^ h[1]>>58 ^ h[1]>>57

	var r Element
	r[0] = c[0] ^ t[0]
	r[1] = c[1] ^ t[1]
	r[2] = c[2]&topMask ^ t[2]

	// Second fold: whatever landed at degrees 163..169 (word 2 bits
	// 35..41) folds entirely into word 0.
	h2 := r[2] >> 35
	r[2] &= topMask
	r[0] ^= h2 ^ h2<<3 ^ h2<<6 ^ h2<<7
	return r
}

// Mul returns e * f in GF(2^163).
func Mul(e, f Element) Element {
	return reduce(mul320(e, f))
}

// sqrSpread maps a byte b0..b7 to the 16-bit value with b's bits
// interleaved with zeros, i.e. the carry-less square of the byte.
var sqrSpread [256]uint16

func init() {
	for b := 0; b < 256; b++ {
		var s uint16
		for i := 0; i < 8; i++ {
			s |= uint16(b>>i&1) << (2 * i)
		}
		sqrSpread[b] = s
	}
}

// spread64 returns the 128-bit carry-less square of w (bits of w
// interleaved with zeros).
func spread64(w uint64) (hi, lo uint64) {
	lo = uint64(sqrSpread[byte(w)]) |
		uint64(sqrSpread[byte(w>>8)])<<16 |
		uint64(sqrSpread[byte(w>>16)])<<32 |
		uint64(sqrSpread[byte(w>>24)])<<48
	hi = uint64(sqrSpread[byte(w>>32)]) |
		uint64(sqrSpread[byte(w>>40)])<<16 |
		uint64(sqrSpread[byte(w>>48)])<<32 |
		uint64(sqrSpread[byte(w>>56)])<<48
	return hi, lo
}

// Sqr returns e^2. Squaring a GF(2^m) polynomial interleaves its
// coefficients with zeros, which is why hardware squarers are cheap
// relative to general multipliers.
func Sqr(e Element) Element {
	var c [6]uint64
	c[1], c[0] = spread64(e[0])
	c[3], c[2] = spread64(e[1])
	c[5], c[4] = spread64(e[2])
	return reduce(c)
}

// sqrN returns e^(2^n) by repeated squaring.
func sqrN(e Element, n int) Element {
	for i := 0; i < n; i++ {
		e = Sqr(e)
	}
	return e
}

// Inv returns the multiplicative inverse of e, computed with the
// Itoh–Tsujii addition chain for m-1 = 162
// (1,2,4,5,10,20,40,80,81,162): 9 multiplications and 162 squarings.
// Inv of the zero element returns zero (the caller is expected to
// guard; protocols in this module never invert zero).
func Inv(e Element) Element {
	b1 := e                     // e^(2^1 - 1)
	b2 := Mul(sqrN(b1, 1), b1)  // e^(2^2 - 1)
	b4 := Mul(sqrN(b2, 2), b2)  // e^(2^4 - 1)
	b5 := Mul(sqrN(b4, 1), b1)  // e^(2^5 - 1)
	b10 := Mul(sqrN(b5, 5), b5) // e^(2^10 - 1)
	b20 := Mul(sqrN(b10, 10), b10)
	b40 := Mul(sqrN(b20, 20), b20)
	b80 := Mul(sqrN(b40, 40), b40)
	b81 := Mul(sqrN(b80, 1), b1)
	b162 := Mul(sqrN(b81, 81), b81) // e^(2^162 - 1)
	return Sqr(b162)                // e^(2^163 - 2) = e^-1
}

// Div returns e / f = e * f^-1.
func Div(e, f Element) Element { return Mul(e, Inv(f)) }

// sqrtCompact maps a byte to the 4-bit compaction of its even-position
// bits — the inverse of sqrSpread restricted to one parity class.
var sqrtCompact [256]byte

// sqrtXTab holds the multiplication tables of the constant
// sqrt(x) = x^(2^(m-1)), built once at init from the repeated-squaring
// definition (the only place that definition is still evaluated).
var sqrtXTab Precomp

func init() {
	for b := 0; b < 256; b++ {
		var c byte
		for i := 0; i < 4; i++ {
			c |= byte(b>>(2*i)&1) << i
		}
		sqrtCompact[b] = c
	}
	sqrtXTab = Precompute(sqrN(Element{2, 0, 0}, M-1))
}

// compactEven compresses the even-position bits of w into 32 bits (the
// inverse of spread64's interleave). Odd positions are the even
// positions of w >> 1.
func compactEven(w uint64) uint64 {
	return uint64(sqrtCompact[byte(w)]) |
		uint64(sqrtCompact[byte(w>>8)])<<4 |
		uint64(sqrtCompact[byte(w>>16)])<<8 |
		uint64(sqrtCompact[byte(w>>24)])<<12 |
		uint64(sqrtCompact[byte(w>>32)])<<16 |
		uint64(sqrtCompact[byte(w>>40)])<<20 |
		uint64(sqrtCompact[byte(w>>48)])<<24 |
		uint64(sqrtCompact[byte(w>>56)])<<28
}

// Sqrt returns the square root of e, which always exists and is unique
// in a binary field. Splitting e = E(x²) + x·O(x²) into its even- and
// odd-position coefficients gives sqrt(e) = E(x) + sqrt(x)·O(x): two
// bit-compactions and one multiplication by the precomputed constant
// sqrt(x), instead of the m-1 = 162 squarings of the e^(2^(m-1))
// definition. The root is unique, so the value is identical to the
// repeated-squaring path (pinned by TestSqrtMatchesRepeatedSquaring).
func Sqrt(e Element) Element {
	even := Element{compactEven(e[0]) | compactEven(e[1])<<32, compactEven(e[2]), 0}
	odd := Element{compactEven(e[0]>>1) | compactEven(e[1]>>1)<<32, compactEven(e[2] >> 1), 0}
	return Add(even, sqrtXTab.Mul(odd))
}

// traceVec has bit i set iff Tr(x^i) = 1; the trace of an arbitrary
// element is then the parity of (e AND traceVec). Computed once at
// package init from the definition Tr(c) = sum c^(2^i).
var traceVec Element

func init() {
	for i := 0; i < M; i++ {
		var xi Element
		xi = xi.SetBit(i, 1)
		if traceByDefinition(xi) == 1 {
			traceVec = traceVec.SetBit(i, 1)
		}
	}
}

func traceByDefinition(e Element) uint {
	s := e
	t := e
	for i := 1; i < M; i++ {
		t = Sqr(t)
		s = Add(s, t)
	}
	// The trace lies in GF(2), so s is 0 or 1.
	return uint(s[0] & 1)
}

// Trace returns the absolute trace Tr(e) in {0, 1}.
func Trace(e Element) uint {
	and := Element{e[0] & traceVec[0], e[1] & traceVec[1], e[2] & traceVec[2]}
	return uint(and.Weight()) & 1
}

// HalfTrace returns H(e) = sum_{i=0}^{(m-1)/2} e^(2^(2i)). For odd m,
// if Tr(e) = 0 then z = H(e) solves z^2 + z = e; this is how the curve
// layer solves for y-coordinates (point decompression, y-recovery
// checks). If Tr(e) = 1 the equation has no solution.
func HalfTrace(e Element) Element {
	h := e
	t := e
	for i := 1; i <= (M-1)/2; i++ {
		t = Sqr(Sqr(t))
		h = Add(h, t)
	}
	return h
}

// Bytes returns the big-endian 21-byte encoding of e (ceil(163/8)).
func (e Element) Bytes() []byte {
	out := make([]byte, ByteLen)
	for i := 0; i < ByteLen; i++ {
		shift := uint(8 * (ByteLen - 1 - i))
		out[i] = byte(e[shift>>6] >> (shift & 63))
		// Bits straddling word boundaries.
		if shift&63 > 64-8 && shift>>6 < Words-1 {
			out[i] |= byte(e[shift>>6+1] << (64 - shift&63))
		}
	}
	return out
}

// ByteLen is the length of the canonical byte encoding of an Element.
const ByteLen = (M + 7) / 8

// FromBytes decodes a big-endian byte string (at most ByteLen bytes)
// into an Element, reducing stray high bits to canonical form.
func FromBytes(b []byte) Element {
	var e Element
	for _, c := range b {
		// e = e<<8 | c
		e[2] = e[2]<<8 | e[1]>>56
		e[1] = e[1]<<8 | e[0]>>56
		e[0] = e[0]<<8 | uint64(c)
	}
	return e.normalize()
}

// FromUint64 returns the element whose low word is w.
func FromUint64(w uint64) Element { return Element{w, 0, 0} }

// FromWords builds an element from three little-endian words,
// normalizing stray high bits.
func FromWords(w0, w1, w2 uint64) Element {
	return Element{w0, w1, w2}.normalize()
}

// String renders e as a big-endian hexadecimal string.
func (e Element) String() string {
	const hexdigits = "0123456789abcdef"
	buf := make([]byte, 0, 41)
	started := false
	for i := ByteLen*2 - 1; i >= 0; i-- {
		nib := byte(e[(4*i)>>6]>>(uint(4*i)&63)) & 0xf
		if nib != 0 {
			started = true
		}
		if started {
			buf = append(buf, hexdigits[nib])
		}
	}
	if !started {
		return "0"
	}
	return string(buf)
}

// MustFromHex parses a big-endian hexadecimal string into an Element
// and panics on malformed input. It is intended for package-level
// curve constants.
func MustFromHex(s string) Element {
	var e Element
	for _, c := range s {
		var nib uint64
		switch {
		case c >= '0' && c <= '9':
			nib = uint64(c - '0')
		case c >= 'a' && c <= 'f':
			nib = uint64(c-'a') + 10
		case c >= 'A' && c <= 'F':
			nib = uint64(c-'A') + 10
		default:
			panic("gf2m: invalid hex digit in constant")
		}
		e[2] = e[2]<<4 | e[1]>>60
		e[1] = e[1]<<4 | e[0]>>60
		e[0] = e[0]<<4 | nib
	}
	if e != e.normalize() {
		panic("gf2m: constant exceeds field degree")
	}
	return e
}

// MulNoReduce exposes the raw 6-word carry-less product for tests and
// for the digit-serial multiplier model's cross-checks.
func MulNoReduce(e, f Element) [6]uint64 { return mul320(e, f) }

// Reduce exposes polynomial reduction of a 6-word value for tests.
func Reduce(c [6]uint64) Element { return reduce(c) }

// ShlMod returns e * x^s mod f(x) for small shift amounts 0 <= s <= 61.
// This is the per-cycle operation of the digit-serial multiplier
// (shift the accumulator by the digit size, then reduce), exposed here
// so the co-processor model and the field agree exactly.
func ShlMod(e Element, s uint) Element {
	if s == 0 {
		return e
	}
	c0 := e[0] << s
	c1 := e[1]<<s | e[0]>>(64-s)
	c2 := e[2]<<s | e[1]>>(64-s)
	c3 := e[2] >> (64 - s)
	// Specialized reduction: the overflow h = (e·x^s) >> 163 has degree
	// at most 162+61-163 = 60, so it fits one word and a single fold of
	// h·(x^7+x^6+x^3+1) — landing no higher than degree 67 — finishes
	// the job. This is the general reduce() with h[1] = h[2] = 0 and no
	// second folding round, so the result is bit-identical.
	h := c2>>35 | c3<<29
	return Element{
		c0 ^ h ^ h<<3 ^ h<<6 ^ h<<7,
		c1 ^ h>>61 ^ h>>58 ^ h>>57,
		c2 & topMask,
	}
}
