package gf2m

import (
	"testing"

	"medsec/internal/rng"
)

// Benchmark operands: fixed, full-width pseudo-random elements so every
// run measures the same bit patterns (branch-free code means the data
// barely matters, but determinism keeps benchstat comparisons clean).
var (
	benchA, benchB Element
	benchSink      Element
	benchSinkRaw   [6]uint64
)

func init() {
	d := rng.NewDRBG(0xbe0c)
	benchA = FromWords(d.Uint64(), d.Uint64(), d.Uint64())
	benchB = FromWords(d.Uint64(), d.Uint64(), d.Uint64())
}

// BenchmarkMul/Sqr/Inv live in gf2m_test.go; this file adds the ones
// that were missing plus benches for the Karatsuba building blocks.

func BenchmarkMulNoReduce(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		benchSinkRaw = MulNoReduce(benchA, benchB)
	}
}

func BenchmarkSqrt(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		benchSink = Sqrt(benchA)
	}
}

func BenchmarkShlMod(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		benchSink = ShlMod(benchA, 4)
	}
}
