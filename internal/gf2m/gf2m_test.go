package gf2m

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// clmul64Slow is the obviously-correct 64-step reference for clmul64.
func clmul64Slow(x, y uint64) (hi, lo uint64) {
	for i := uint(0); i < 64; i++ {
		mask := -(y >> i & 1)
		lo ^= (x << i) & mask
		if i > 0 {
			hi ^= (x >> (64 - i)) & mask
		}
	}
	return hi, lo
}

func randElement(r *rand.Rand) Element {
	return FromWords(r.Uint64(), r.Uint64(), r.Uint64())
}

func TestClmul64AgainstSlowReference(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	cases := [][2]uint64{
		{0, 0}, {1, 1}, {^uint64(0), ^uint64(0)}, {1 << 63, 1 << 63},
		{0x8000000000000001, 0xffffffffffffffff},
	}
	for i := 0; i < 2000; i++ {
		cases = append(cases, [2]uint64{r.Uint64(), r.Uint64()})
	}
	for _, c := range cases {
		hi, lo := clmul64(c[0], c[1])
		shi, slo := clmul64Slow(c[0], c[1])
		if hi != shi || lo != slo {
			t.Fatalf("clmul64(%#x,%#x) = (%#x,%#x), want (%#x,%#x)", c[0], c[1], hi, lo, shi, slo)
		}
	}
}

func TestAddProperties(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	for i := 0; i < 500; i++ {
		a, b, c := randElement(r), randElement(r), randElement(r)
		if !Add(a, b).Equal(Add(b, a)) {
			t.Fatal("addition not commutative")
		}
		if !Add(Add(a, b), c).Equal(Add(a, Add(b, c))) {
			t.Fatal("addition not associative")
		}
		if !Add(a, Zero()).Equal(a) {
			t.Fatal("zero is not the additive identity")
		}
		if !Add(a, a).IsZero() {
			t.Fatal("characteristic is not 2")
		}
	}
}

func TestMulIdentityAndZero(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	for i := 0; i < 500; i++ {
		a := randElement(r)
		if !Mul(a, One()).Equal(a) {
			t.Fatalf("a*1 != a for a=%v", a)
		}
		if !Mul(a, Zero()).IsZero() {
			t.Fatalf("a*0 != 0 for a=%v", a)
		}
	}
}

func TestMulCommutativeAssociativeDistributive(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	for i := 0; i < 500; i++ {
		a, b, c := randElement(r), randElement(r), randElement(r)
		if !Mul(a, b).Equal(Mul(b, a)) {
			t.Fatal("multiplication not commutative")
		}
		if !Mul(Mul(a, b), c).Equal(Mul(a, Mul(b, c))) {
			t.Fatal("multiplication not associative")
		}
		left := Mul(a, Add(b, c))
		right := Add(Mul(a, b), Mul(a, c))
		if !left.Equal(right) {
			t.Fatal("multiplication does not distribute over addition")
		}
	}
}

func TestSqrMatchesMul(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	for i := 0; i < 1000; i++ {
		a := randElement(r)
		if !Sqr(a).Equal(Mul(a, a)) {
			t.Fatalf("Sqr(a) != a*a for a=%v", a)
		}
	}
}

func TestFrobeniusIsAdditive(t *testing.T) {
	// (a+b)^2 = a^2 + b^2 in characteristic 2.
	f := func(w0a, w1a, w2a, w0b, w1b, w2b uint64) bool {
		a := FromWords(w0a, w1a, w2a)
		b := FromWords(w0b, w1b, w2b)
		return Sqr(Add(a, b)).Equal(Add(Sqr(a), Sqr(b)))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestInv(t *testing.T) {
	r := rand.New(rand.NewSource(6))
	for i := 0; i < 300; i++ {
		a := randElement(r)
		if a.IsZero() {
			continue
		}
		if !Mul(a, Inv(a)).IsOne() {
			t.Fatalf("a * a^-1 != 1 for a=%v", a)
		}
	}
	if !Inv(One()).IsOne() {
		t.Fatal("1^-1 != 1")
	}
	if !Inv(Zero()).IsZero() {
		t.Fatal("Inv(0) should return 0 by convention")
	}
}

func TestDiv(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for i := 0; i < 200; i++ {
		a, b := randElement(r), randElement(r)
		if b.IsZero() {
			continue
		}
		if !Mul(Div(a, b), b).Equal(a) {
			t.Fatal("(a/b)*b != a")
		}
	}
}

func TestSqrt(t *testing.T) {
	r := rand.New(rand.NewSource(8))
	for i := 0; i < 300; i++ {
		a := randElement(r)
		s := Sqrt(a)
		if !Sqr(s).Equal(a) {
			t.Fatalf("Sqrt(a)^2 != a for a=%v", a)
		}
	}
	// sqrt is unique in GF(2^m): sqrt(a^2) == a.
	for i := 0; i < 300; i++ {
		a := randElement(r)
		if !Sqrt(Sqr(a)).Equal(a) {
			t.Fatal("Sqrt(a^2) != a")
		}
	}
}

// TestSqrtMatchesRepeatedSquaring pins the even/odd-split Sqrt against
// the definitional e^(2^(m-1)) chain: the square root is unique, so
// the two must agree on every input bit for bit.
func TestSqrtMatchesRepeatedSquaring(t *testing.T) {
	r := rand.New(rand.NewSource(81))
	for i := 0; i < 300; i++ {
		a := randElement(r)
		if got, want := Sqrt(a), sqrN(a, M-1); !got.Equal(want) {
			t.Fatalf("Sqrt(%v) = %v, repeated squaring gives %v", a, got, want)
		}
	}
	if !Sqrt(Zero()).IsZero() || !Sqrt(One()).IsOne() {
		t.Fatal("Sqrt must fix 0 and 1")
	}
}

func TestTraceProperties(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	zeros, ones := 0, 0
	for i := 0; i < 600; i++ {
		a, b := randElement(r), randElement(r)
		// Trace is additive.
		if Trace(Add(a, b)) != Trace(a)^Trace(b) {
			t.Fatal("trace not additive")
		}
		// Trace is Frobenius-invariant: Tr(a^2) = Tr(a).
		if Trace(Sqr(a)) != Trace(a) {
			t.Fatal("trace not Frobenius-invariant")
		}
		// Trace matches the definitional sum.
		if Trace(a) != traceByDefinition(a) {
			t.Fatalf("fast trace disagrees with definition for a=%v", a)
		}
		if Trace(a) == 0 {
			zeros++
		} else {
			ones++
		}
	}
	// Trace is a balanced function: both values must occur.
	if zeros == 0 || ones == 0 {
		t.Fatalf("trace not balanced: %d zeros, %d ones", zeros, ones)
	}
}

func TestHalfTraceSolvesQuadratic(t *testing.T) {
	r := rand.New(rand.NewSource(10))
	solved := 0
	for i := 0; i < 400; i++ {
		c := randElement(r)
		if Trace(c) != 0 {
			continue // no solution exists
		}
		z := HalfTrace(c)
		if !Add(Sqr(z), z).Equal(c) {
			t.Fatalf("half-trace does not solve z^2+z=c for c=%v", c)
		}
		solved++
	}
	if solved == 0 {
		t.Fatal("no trace-zero elements sampled; test vacuous")
	}
}

func TestBytesRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	for i := 0; i < 300; i++ {
		a := randElement(r)
		b := a.Bytes()
		if len(b) != ByteLen {
			t.Fatalf("encoding length %d, want %d", len(b), ByteLen)
		}
		if got := FromBytes(b); !got.Equal(a) {
			t.Fatalf("round trip failed: %v -> % x -> %v", a, b, got)
		}
	}
	if !FromBytes(nil).IsZero() {
		t.Fatal("FromBytes(nil) should be zero")
	}
}

func TestHexRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(12))
	for i := 0; i < 200; i++ {
		a := randElement(r)
		if got := MustFromHex(a.String()); !got.Equal(a) {
			t.Fatalf("hex round trip failed for %v", a)
		}
	}
	if Zero().String() != "0" {
		t.Fatalf("Zero().String() = %q", Zero().String())
	}
	if !MustFromHex("1").IsOne() {
		t.Fatal("MustFromHex(1) != One")
	}
}

func TestMustFromHexPanics(t *testing.T) {
	for _, bad := range []string{"xyz", "4000000000000000000000000000000000000000g"} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("MustFromHex(%q) did not panic", bad)
				}
			}()
			MustFromHex(bad)
		}()
	}
	// 2^163 exceeds the field degree.
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("MustFromHex over-degree constant did not panic")
			}
		}()
		MustFromHex("8000000000000000000000000000000000000000e")
	}()
}

func TestBitAndSetBit(t *testing.T) {
	var e Element
	for _, i := range []int{0, 1, 62, 63, 64, 127, 128, 162} {
		e2 := e.SetBit(i, 1)
		if e2.Bit(i) != 1 {
			t.Fatalf("bit %d not set", i)
		}
		if e2.Weight() != 1 {
			t.Fatalf("weight after setting bit %d is %d", i, e2.Weight())
		}
		if e2.Degree() != i {
			t.Fatalf("degree after setting bit %d is %d", i, e2.Degree())
		}
		if e3 := e2.SetBit(i, 0); !e3.IsZero() {
			t.Fatalf("clearing bit %d left %v", i, e3)
		}
	}
	// Out of range accesses are inert.
	if e.SetBit(163, 1) != e || e.SetBit(-1, 1) != e || e.Bit(163) != 0 || e.Bit(-1) != 0 {
		t.Fatal("out-of-range bit access not inert")
	}
}

func TestDegreeAndWeight(t *testing.T) {
	if Zero().Degree() != -1 {
		t.Fatal("degree of zero should be -1")
	}
	if One().Degree() != 0 || One().Weight() != 1 {
		t.Fatal("degree/weight of one wrong")
	}
	x162 := Zero().SetBit(162, 1)
	if x162.Degree() != 162 {
		t.Fatalf("degree = %d, want 162", x162.Degree())
	}
}

func TestHammingDistance(t *testing.T) {
	a := MustFromHex("3")
	b := MustFromHex("1")
	if HammingDistance(a, b) != 1 {
		t.Fatal("HD(3,1) != 1")
	}
	if HammingDistance(a, a) != 0 {
		t.Fatal("HD(a,a) != 0")
	}
	r := rand.New(rand.NewSource(13))
	for i := 0; i < 100; i++ {
		x, y := randElement(r), randElement(r)
		if HammingDistance(x, y) != Add(x, y).Weight() {
			t.Fatal("HD(x,y) != weight(x+y)")
		}
	}
}

func TestShlMod(t *testing.T) {
	r := rand.New(rand.NewSource(14))
	for i := 0; i < 200; i++ {
		a := randElement(r)
		for _, s := range []uint{0, 1, 2, 3, 4, 7, 8, 16, 31, 32, 61} {
			// Multiply by x^s via repeated doubling as reference.
			want := a
			for k := uint(0); k < s; k++ {
				want = Mul(want, MustFromHex("2"))
			}
			if got := ShlMod(a, s); !got.Equal(want) {
				t.Fatalf("ShlMod(a,%d) mismatch", s)
			}
		}
	}
}

func TestReductionPolynomialIdentity(t *testing.T) {
	// x^163 mod f = x^7 + x^6 + x^3 + 1.
	x := MustFromHex("2")
	acc := One()
	for i := 0; i < 163; i++ {
		acc = Mul(acc, x)
	}
	want := MustFromHex("c9") // bits 7,6,3,0
	if !acc.Equal(want) {
		t.Fatalf("x^163 mod f = %v, want %v", acc, want)
	}
}

func TestMultiplicativeOrderDividesGroupOrder(t *testing.T) {
	// For any nonzero a, a^(2^163 - 1) = 1 (Lagrange). Computed as
	// a^(2^163-2) * a = Inv(a) * a which is checked elsewhere; here we
	// verify via the Itoh-Tsujii ladder directly: b162^2 * a == a means
	// a^(2^163-1) == a ... instead check a^(2^163) == a (Frobenius
	// fixed point of the full field).
	r := rand.New(rand.NewSource(15))
	for i := 0; i < 50; i++ {
		a := randElement(r)
		b := a
		for j := 0; j < 163; j++ {
			b = Sqr(b)
		}
		if !b.Equal(a) {
			t.Fatalf("a^(2^163) != a for a=%v", a)
		}
	}
}

func BenchmarkMul(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	x, y := randElement(r), randElement(r)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x = Mul(x, y)
	}
	sink = x
}

func BenchmarkSqr(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	x := randElement(r)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x = Sqr(x)
	}
	sink = x
}

func BenchmarkInv(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	x := randElement(r)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x = Inv(x)
	}
	sink = x
}

var sink Element
