package gf2m

import (
	"bufio"
	"os"
	"strings"
	"testing"
)

// TestGoldenVectors pins the field arithmetic to frozen vectors
// (testdata/k163_vectors.txt) — the software analogue of an RTL
// testbench's golden stimulus file. Any regression in reduction,
// multiplication, inversion or square root changes a result here.
// The kG lines are consumed by the ec package's golden test.
func TestGoldenVectors(t *testing.T) {
	f, err := os.Open("testdata/k163_vectors.txt")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	checked := 0
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Split(line, "\t")
		switch fields[0] {
		case "mul":
			if len(fields) != 4 {
				t.Fatalf("malformed mul line: %q", line)
			}
			a, b := MustFromHex(fields[1]), MustFromHex(fields[2])
			want := MustFromHex(fields[3])
			if got := Mul(a, b); !got.Equal(want) {
				t.Fatalf("mul(%s, %s) = %s, golden %s", fields[1], fields[2], got, want)
			}
			checked++
		case "sqr", "inv", "sqrt":
			if len(fields) != 3 {
				t.Fatalf("malformed line: %q", line)
			}
			a := MustFromHex(fields[1])
			want := MustFromHex(fields[2])
			var got Element
			switch fields[0] {
			case "sqr":
				got = Sqr(a)
			case "inv":
				got = Inv(a)
			case "sqrt":
				got = Sqrt(a)
			}
			if !got.Equal(want) {
				t.Fatalf("%s(%s) = %s, golden %s", fields[0], fields[1], got, want)
			}
			checked++
		case "kG":
			// Checked by the ec package.
		default:
			t.Fatalf("unknown golden op %q", fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if checked < 50 {
		t.Fatalf("only %d field vectors checked; file truncated?", checked)
	}
}
