package gf2m

import (
	"math/rand"
	"testing"
)

// This file pins the Karatsuba/windowed multiplication rewrite against
// the generic bit-serial field (generic.go), which shares no code with
// the fixed path: different multiplication algorithm (shift-and-add
// with interleaved reduction vs 3-word Karatsuba over a 4-bit comb),
// different inversion, different reduction. Any systematic error in the
// comb tables, the Karatsuba recombination, or the lazy-reduction
// helpers shows up as a divergence here.

// structuredElements returns the adversarial corner inputs for the
// multiplier: zero, one, every single-bit element, the all-ones
// canonical element, and elements hugging the x^163 reduction
// boundary, where the comb's high-bits correction and the top-word
// specialization (clmulTabTop) earn their keep.
func structuredElements() []Element {
	es := []Element{
		Zero(),
		One(),
		{^uint64(0), ^uint64(0), 1<<35 - 1}, // all ones, canonical
		{0, 0, 1 << 34},                     // x^162
		{0xc9, 0, 1 << 34},                  // x^162 + reduction tail
		{^uint64(0), 0, 0},                  // dense low word
		{0, ^uint64(0), 0},                  // dense middle word
		{0, 0, 1<<35 - 1},                   // dense top word
		{0x8000000000000000, 0x8000000000000000, 1},    // word-boundary bits
		{0x1111111111111111, 0x1111111111111111, 0x11}, // comb mask pattern
	}
	for i := 0; i < M; i++ {
		es = append(es, Zero().SetBit(i, 1))
	}
	return es
}

// crossCheckPair verifies every public multiplication surface on one
// operand pair against the generic field.
func crossCheckPair(t *testing.T, f *Field, a, b Element) {
	t.Helper()
	want := f.ToElement(f.Mul(f.FromElement(a), f.FromElement(b)))
	if got := Mul(a, b); !got.Equal(want) {
		t.Fatalf("Mul(%v, %v) = %v, generic says %v", a, b, got, want)
	}
	if got := Reduce(MulNoReduce(a, b)); !got.Equal(want) {
		t.Fatalf("Reduce(MulNoReduce(%v, %v)) diverged from generic", a, b)
	}
	pa := Precompute(a)
	if got := pa.Mul(b); !got.Equal(want) {
		t.Fatalf("Precompute(%v).Mul(%v) diverged from generic", a, b)
	}
	if got := Reduce(pa.MulNoReduce(b)); !got.Equal(want) {
		t.Fatalf("Precompute(%v).MulNoReduce(%v) diverged from generic", a, b)
	}
}

func TestKaratsubaCrossGenericStructured(t *testing.T) {
	f := NISTK163Field()
	es := structuredElements()
	// All pairs over the fixed corner list (first 10 entries) and each
	// corner against a sweep of single-bit elements.
	for i := 0; i < 10; i++ {
		for _, b := range es {
			crossCheckPair(t, f, es[i], b)
		}
	}
}

func TestKaratsubaCrossGenericRandom(t *testing.T) {
	f := NISTK163Field()
	r := rand.New(rand.NewSource(0x5eed_ca1c))
	for i := 0; i < 300; i++ {
		crossCheckPair(t, f, randElement(r), randElement(r))
	}
}

// TestMulAccLazyReduction pins the identity the ec projective formulas
// rely on: because reduction mod f is GF(2)-linear,
// Reduce(Σ aᵢ·bᵢ unreduced) must be bit-identical to Σ Mul(aᵢ, bᵢ).
func TestMulAccLazyReduction(t *testing.T) {
	r := rand.New(rand.NewSource(0xacc))
	for i := 0; i < 200; i++ {
		n := 2 + r.Intn(4)
		var acc [6]uint64
		sum := Zero()
		for j := 0; j < n; j++ {
			a, b := randElement(r), randElement(r)
			MulAcc(&acc, a, b)
			sum = Add(sum, Mul(a, b))
		}
		if got := Reduce(acc); !got.Equal(sum) {
			t.Fatalf("lazy-reduced %d-term sum diverged from reduced-per-term sum", n)
		}
	}
}

// TestSqrNoReduce pins Reduce(SqrNoReduce(e)) == Sqr(e) == generic e².
func TestSqrNoReduce(t *testing.T) {
	f := NISTK163Field()
	r := rand.New(rand.NewSource(0x5a5a))
	check := func(e Element) {
		want := f.ToElement(f.Sqr(f.FromElement(e)))
		if got := Reduce(SqrNoReduce(e)); !got.Equal(want) {
			t.Fatalf("Reduce(SqrNoReduce(%v)) diverged from generic square", e)
		}
		if got := Sqr(e); !got.Equal(want) {
			t.Fatalf("Sqr(%v) diverged from generic square", e)
		}
	}
	for _, e := range structuredElements() {
		check(e)
	}
	for i := 0; i < 200; i++ {
		check(randElement(r))
	}
}

// TestShlModCrossGeneric pins the specialized shift-reduce against
// generic multiplication by x^s, across every shift the MALU model
// uses (digit sizes 1..maxDigit) and then some.
func TestShlModCrossGeneric(t *testing.T) {
	f := NISTK163Field()
	r := rand.New(rand.NewSource(0x5317))
	for s := uint(0); s <= 8; s++ {
		xs := f.Zero()
		f.SetBit(xs, int(s), 1)
		for _, e := range structuredElements() {
			want := f.ToElement(f.Mul(f.FromElement(e), xs))
			if got := ShlMod(e, s); !got.Equal(want) {
				t.Fatalf("ShlMod(%v, %d) = %v, generic says %v", e, s, got, want)
			}
		}
		for i := 0; i < 50; i++ {
			e := randElement(r)
			want := f.ToElement(f.Mul(f.FromElement(e), xs))
			if got := ShlMod(e, s); !got.Equal(want) {
				t.Fatalf("ShlMod(random, %d) diverged from generic", s)
			}
		}
	}
}
