package radio

import (
	"math"
	"testing"

	"medsec/internal/protocol"
)

func TestTxRxEnergyShapes(t *testing.T) {
	m := DefaultModel()
	// TX grows quadratically with distance.
	e1 := m.TxEnergy(1000, 1)
	e10 := m.TxEnergy(1000, 10)
	e20 := m.TxEnergy(1000, 20)
	if e10 <= e1 || e20 <= e10 {
		t.Fatal("TX energy not increasing with distance")
	}
	// Amplifier component scales with d^2.
	amp10 := e10 - m.TxEnergy(1000, 0)
	amp20 := e20 - m.TxEnergy(1000, 0)
	if math.Abs(amp20/amp10-4) > 1e-9 {
		t.Fatalf("amplifier term not quadratic: ratio %.3f", amp20/amp10)
	}
	// RX is distance-independent and linear in bits.
	if m.RxEnergy(2000) != 2*m.RxEnergy(1000) {
		t.Fatal("RX not linear in bits")
	}
	if m.TxEnergy(0, 100) != 0 || m.RxEnergy(0) != 0 {
		t.Fatal("zero bits should cost zero")
	}
}

func TestLedgerEnergy(t *testing.T) {
	m := DefaultModel()
	costs := PaperCosts()
	l := protocol.Ledger{PointMuls: 2, ModMuls: 1, TxBits: 100, RxBits: 50}
	e := m.LedgerEnergy(l, 5, costs)
	want := m.TxEnergy(100, 5) + m.RxEnergy(50) + 2*costs.PointMulJ + costs.ModMulJ
	if math.Abs(e-want) > 1e-15 {
		t.Fatalf("ledger energy %.4g, want %.4g", e, want)
	}
}

func TestPaperCostsAnchor(t *testing.T) {
	if PaperCosts().PointMulJ != 5.1e-6 {
		t.Fatal("point multiplication cost must be the paper's 5.1 µJ")
	}
}

func TestCrossoverExistsAndOrdersCorrectly(t *testing.T) {
	// E7: secret-key wins near the infrastructure, public-key wins far
	// from it; the crossover sits at a plausible ward-scale distance.
	m := DefaultModel()
	costs := PaperCosts()
	sym := SymmetricKDC()
	pk := PublicKeyLocal()
	d, err := m.Crossover(sym, pk, costs, 0, 100)
	if err != nil {
		t.Fatal(err)
	}
	if d < 3 || d > 60 {
		t.Fatalf("crossover at %.1f m; expected single-digit-to-tens of meters", d)
	}
	// Ordering on each side of the crossover.
	if m.DeviceEnergy(sym, d/2, costs) >= m.DeviceEnergy(pk, d/2, costs) {
		t.Fatal("symmetric option should win below the crossover")
	}
	if m.DeviceEnergy(sym, d*2, costs) <= m.DeviceEnergy(pk, d*2, costs) {
		t.Fatal("public-key option should win above the crossover")
	}
	// The ECC option's cost is distance-independent (local link only).
	if m.DeviceEnergy(pk, 1, costs) != m.DeviceEnergy(pk, 90, costs) {
		t.Fatal("ECC-local energy should not depend on backhaul distance")
	}
}

func TestCrossoverBracketValidation(t *testing.T) {
	m := DefaultModel()
	costs := PaperCosts()
	pk := PublicKeyLocal()
	// A scenario against itself costs the same everywhere.
	if _, err := m.Crossover(pk, pk, costs, 0, 100); err == nil {
		t.Fatal("degenerate scenario pair accepted")
	}
	// A strictly dominated pair has no sign change in the bracket.
	cheap := pk
	cheap.Ledger.PointMuls = 0
	if _, err := m.Crossover(pk, cheap, costs, 0, 100); err == nil {
		t.Fatal("no-crossover bracket accepted")
	}
}

func TestSweepScenarios(t *testing.T) {
	m := DefaultModel()
	costs := PaperCosts()
	sym := SymmetricKDC()
	pk := PublicKeyLocal()
	rows := m.SweepScenarios(sym, pk, costs, []float64{1, 5, 10, 20, 40, 80})
	if len(rows) != 6 {
		t.Fatalf("got %d rows", len(rows))
	}
	// Cheapest must transition from the symmetric to the PK option
	// exactly once.
	transitions := 0
	for i := 1; i < len(rows); i++ {
		if rows[i].Cheapest != rows[i-1].Cheapest {
			transitions++
		}
	}
	if transitions != 1 {
		t.Fatalf("%d cheapest-option transitions, want exactly 1", transitions)
	}
	if rows[0].Cheapest != sym.Name {
		t.Fatalf("at 1 m the symmetric option should win, got %s", rows[0].Cheapest)
	}
	if rows[len(rows)-1].Cheapest != pk.Name {
		t.Fatalf("at 80 m the PK option should win, got %s", rows[len(rows)-1].Cheapest)
	}
}
