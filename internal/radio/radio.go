// Package radio is the first-order wireless energy model behind the
// paper's protocol-level energy discussion: "the communication should
// be minimized since wireless communication is power-hungry", and the
// computation-vs-communication comparison of secret-key vs public-key
// protocols whose "conclusions depend on the cryptographic algorithm,
// the digital platform and the wireless distance over which the
// communication occurs" [4, 5].
//
// The transceiver model is the standard first-order radio:
//
//	E_tx(k, d) = k * (E_elec + eps_amp * d^2)
//	E_rx(k)    = k * E_elec
//
// with the classic sensor-network constants (50 nJ/bit electronics,
// 100 pJ/bit/m² amplifier).
package radio

import (
	"errors"
	"math"

	"medsec/internal/protocol"
)

// Model holds transceiver parameters.
type Model struct {
	// EElecJPerBit is the electronics energy per bit (TX and RX).
	EElecJPerBit float64
	// EAmpJPerBitM2 is the amplifier energy per bit per m².
	EAmpJPerBitM2 float64
}

// DefaultModel returns the classic first-order radio constants.
func DefaultModel() Model {
	return Model{EElecJPerBit: 50e-9, EAmpJPerBitM2: 100e-12}
}

// TxEnergy returns the energy to transmit bits over distance meters.
func (m Model) TxEnergy(bits int, meters float64) float64 {
	return float64(bits) * (m.EElecJPerBit + m.EAmpJPerBitM2*meters*meters)
}

// RxEnergy returns the energy to receive bits.
func (m Model) RxEnergy(bits int) float64 {
	return float64(bits) * m.EElecJPerBit
}

// LedgerEnergy prices a protocol ledger: TX over the given distance,
// RX at the electronics floor, computation from the per-operation
// energies.
func (m Model) LedgerEnergy(l protocol.Ledger, meters float64, costs ComputeCosts) float64 {
	return m.TxEnergy(l.TxBits, meters) + m.RxEnergy(l.RxBits) +
		float64(l.PointMuls)*costs.PointMulJ +
		float64(l.ModMuls)*costs.ModMulJ +
		float64(l.AESBlocks)*costs.AESBlockJ
}

// ComputeCosts holds per-operation computation energies on the device.
type ComputeCosts struct {
	// PointMulJ is one point multiplication on the co-processor — the
	// paper's 5.1 µJ.
	PointMulJ float64
	// ModMulJ is one 163-bit modular multiplication (a handful of MALU
	// passes; small relative to a PM).
	ModMulJ float64
	// AESBlockJ is one AES-128 block on a compact hardware core.
	AESBlockJ float64
}

// PaperCosts returns the cost set anchored at the paper's measured
// 5.1 µJ point multiplication.
func PaperCosts() ComputeCosts {
	return ComputeCosts{
		PointMulJ: 5.1e-6,
		ModMulJ:   0.02e-6,
		AESBlockJ: 0.01e-6,
	}
}

// AuthScenario describes one authentication option for the E7
// crossover experiment: what the device must transmit/receive locally
// and to/over the backhaul, plus its computation.
type AuthScenario struct {
	Name string
	// LocalTxBits/LocalRxBits travel the short local link (fixed
	// LocalRange meters).
	LocalTxBits, LocalRxBits int
	// BackhaulTxBits/BackhaulRxBits travel to the trust
	// infrastructure, whose distance is the experiment's x-axis.
	BackhaulTxBits, BackhaulRxBits int
	// Ledger is the computation the device performs.
	Ledger protocol.Ledger
}

// LocalRange is the fixed body-area link distance (meters).
const LocalRange = 1.0

// SymmetricKDC is the secret-key option: AES challenge-response, but
// every session needs a ticket round trip with a key-distribution
// server over the backhaul (the key-management cost the paper
// attributes to secret-key protocols: "the problem of key distribution
// and management").
func SymmetricKDC() AuthScenario {
	return AuthScenario{
		Name:        "AES+KDC",
		LocalTxBits: 128 + 128, // challenge response + MAC
		LocalRxBits: 128,
		// Ticket request + sealed ticket.
		BackhaulTxBits: 256,
		BackhaulRxBits: 512,
		Ledger:         protocol.Ledger{AESBlocks: 8},
	}
}

// PublicKeyLocal is the public-key option: the Fig. 2 identification
// plus static-DH server authentication, entirely over the local link —
// no online third party, at the price of four point multiplications on
// the device.
func PublicKeyLocal() AuthScenario {
	return AuthScenario{
		Name:        "ECC-local",
		LocalTxBits: 2*protocol.PointBits + protocol.ScalarBits,
		LocalRxBits: protocol.PointBits + protocol.ScalarBits,
		Ledger:      protocol.Ledger{PointMuls: 4, ModMuls: 1},
	}
}

// DeviceEnergy prices a scenario at the given backhaul distance.
func (m Model) DeviceEnergy(s AuthScenario, backhaulMeters float64, costs ComputeCosts) float64 {
	e := m.TxEnergy(s.LocalTxBits, LocalRange) + m.RxEnergy(s.LocalRxBits)
	e += m.TxEnergy(s.BackhaulTxBits, backhaulMeters) + m.RxEnergy(s.BackhaulRxBits)
	e += float64(s.Ledger.PointMuls)*costs.PointMulJ +
		float64(s.Ledger.ModMuls)*costs.ModMulJ +
		float64(s.Ledger.AESBlocks)*costs.AESBlockJ
	return e
}

// Crossover finds the backhaul distance (meters, within [lo, hi]) at
// which the two scenarios cost the same device energy, by bisection on
// the difference. It returns an error when no crossover lies in the
// bracket.
func (m Model) Crossover(a, b AuthScenario, costs ComputeCosts, lo, hi float64) (float64, error) {
	f := func(d float64) float64 {
		return m.DeviceEnergy(a, d, costs) - m.DeviceEnergy(b, d, costs)
	}
	flo, fhi := f(lo), f(hi)
	if flo == 0 && fhi == 0 {
		return 0, errors.New("radio: scenarios cost the same everywhere")
	}
	if flo == 0 {
		return lo, nil
	}
	if fhi == 0 {
		return hi, nil
	}
	if (flo > 0) == (fhi > 0) {
		return 0, errors.New("radio: no crossover in bracket")
	}
	for i := 0; i < 200 && hi-lo > 1e-9; i++ {
		mid := (lo + hi) / 2
		fm := f(mid)
		if fm == 0 {
			return mid, nil
		}
		if (fm > 0) == (flo > 0) {
			lo, flo = mid, fm
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2, nil
}

// Sweep evaluates both scenarios at each distance and reports the rows
// of the E7 table.
type SweepRow struct {
	Meters   float64
	EnergyA  float64
	EnergyB  float64
	Cheapest string
}

// SweepScenarios prices both options over the given distances.
func (m Model) SweepScenarios(a, b AuthScenario, costs ComputeCosts, meters []float64) []SweepRow {
	rows := make([]SweepRow, 0, len(meters))
	for _, d := range meters {
		ea := m.DeviceEnergy(a, d, costs)
		eb := m.DeviceEnergy(b, d, costs)
		name := a.Name
		if eb < ea {
			name = b.Name
		}
		if math.Abs(ea-eb) < 1e-12 {
			name = "tie"
		}
		rows = append(rows, SweepRow{Meters: d, EnergyA: ea, EnergyB: eb, Cheapest: name})
	}
	return rows
}
