package soc

import (
	"testing"
	"testing/quick"

	"medsec/internal/ec"
	"medsec/internal/modn"
	"medsec/internal/rng"
)

func TestCommandFlowHappyPath(t *testing.T) {
	d := NewDevice(1)
	curve := ec.K163()
	src := rng.NewDRBG(2).Uint64
	k := curve.Order.RandNonZero(src)
	p := curve.RandomPoint(src)
	if err := d.WriteKey(k); err != nil {
		t.Fatal(err)
	}
	if err := d.WritePoint(p); err != nil {
		t.Fatal(err)
	}
	if err := d.StartPointMul(); err != nil {
		t.Fatal(err)
	}
	if d.Poll() != StatusDone {
		t.Fatalf("status %v", d.Poll())
	}
	got, err := d.ReadResult()
	if err != nil {
		t.Fatal(err)
	}
	want := curve.ScalarMulDoubleAndAdd(k, p)
	if !got.Equal(want) {
		t.Fatal("device result wrong")
	}
	// x-only flow.
	if err := d.StartXOnly(); err != nil {
		t.Fatal(err)
	}
	x, err := d.ReadResultX()
	if err != nil {
		t.Fatal(err)
	}
	if !x.Equal(want.X) {
		t.Fatal("x-only result wrong")
	}
}

func TestSequencingErrors(t *testing.T) {
	d := NewDevice(3)
	curve := ec.K163()
	src := rng.NewDRBG(4).Uint64
	// Start before operands.
	if err := d.StartPointMul(); err != ErrSequence {
		t.Fatalf("start without operands: %v", err)
	}
	if err := d.WriteKey(curve.Order.RandNonZero(src)); err != nil {
		t.Fatal(err)
	}
	if err := d.StartPointMul(); err != ErrSequence {
		t.Fatal("start without point accepted")
	}
	// Result reads in wrong mode / state.
	if _, err := d.ReadResult(); err != ErrSequence {
		t.Fatal("read before done accepted")
	}
	if err := d.WritePoint(curve.RandomPoint(src)); err != nil {
		t.Fatal(err)
	}
	if err := d.StartXOnly(); err != nil {
		t.Fatal(err)
	}
	if _, err := d.ReadResult(); err != ErrSequence {
		t.Fatal("full-result read after x-only op accepted")
	}
	// Unreduced key and invalid points rejected at the interface.
	if err := d.WriteKey(curve.Order.N()); err == nil {
		t.Fatal("unreduced key accepted")
	}
	bad := curve.Generator()
	bad.Y = bad.Y.SetBit(3, bad.Y.Bit(3)^1)
	if err := d.WritePoint(bad); err == nil {
		t.Fatal("off-curve point accepted by the interface")
	}
}

// TestNoCommandSequenceRevealsKey is the paper's §5 requirement as a
// fuzz test: drive the device with random command sequences and check
// that nothing observable through the interface (results, status,
// cycle counts, errors) contains the key bytes.
func TestNoCommandSequenceRevealsKey(t *testing.T) {
	curve := ec.K163()
	f := func(seed uint64, script []byte) bool {
		d := NewDevice(seed)
		src := rng.NewDRBG(seed + 1).Uint64
		key := curve.Order.RandNonZero(src)
		keyBytes := key.Bytes()[12:] // the significant 20 bytes
		p := curve.RandomPoint(src)

		var observed [][]byte
		note := func(b []byte) { observed = append(observed, b) }

		if len(script) > 10 {
			script = script[:10] // bound simulation time per sequence
		}
		_ = d.WriteKey(key)
		for _, op := range script {
			switch op % 6 {
			case 0:
				_ = d.WriteKey(key)
			case 1:
				_ = d.WritePoint(p)
			case 2:
				_ = d.StartPointMul()
			case 3:
				_ = d.StartXOnly()
			case 4:
				if r, err := d.ReadResult(); err == nil {
					note(r.X.Bytes())
					note(r.Y.Bytes())
				}
			case 5:
				if x, err := d.ReadResultX(); err == nil {
					note(x.Bytes())
				}
			}
			note([]byte{byte(d.Poll())})
			c := d.Cycles()
			note([]byte{byte(c), byte(c >> 8), byte(c >> 16)})
		}
		// The key (as a contiguous byte string) must not appear in any
		// observable output. (Results are k*P — one-way by ECDLP; this
		// check catches plumbing bugs like a result register aliasing
		// the key register.)
		for _, o := range observed {
			if containsSubslice(o, keyBytes) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func containsSubslice(haystack, needle []byte) bool {
	if len(needle) == 0 || len(haystack) < len(needle) {
		return false
	}
outer:
	for i := 0; i+len(needle) <= len(haystack); i++ {
		for j := range needle {
			if haystack[i+j] != needle[j] {
				continue outer
			}
		}
		return true
	}
	return false
}

func TestCycleCountIsPublicAndConstant(t *testing.T) {
	// Exposing Cycles() is safe because it is key-independent.
	curve := ec.K163()
	src := rng.NewDRBG(9).Uint64
	p := curve.RandomPoint(src)
	var counts []int
	for i := 0; i < 3; i++ {
		d := NewDevice(uint64(10 + i))
		if err := d.WriteKey(curve.Order.RandNonZero(src)); err != nil {
			t.Fatal(err)
		}
		if err := d.WritePoint(p); err != nil {
			t.Fatal(err)
		}
		if err := d.StartPointMul(); err != nil {
			t.Fatal(err)
		}
		counts = append(counts, d.Cycles())
	}
	if counts[0] != counts[1] || counts[1] != counts[2] {
		t.Fatalf("cycle counts differ across keys: %v", counts)
	}
}

func TestClearKeyForcesReload(t *testing.T) {
	d := NewDevice(20)
	curve := ec.K163()
	src := rng.NewDRBG(21).Uint64
	if err := d.WriteKey(curve.Order.RandNonZero(src)); err != nil {
		t.Fatal(err)
	}
	if err := d.WritePoint(curve.RandomPoint(src)); err != nil {
		t.Fatal(err)
	}
	d.ClearKey()
	if err := d.StartPointMul(); err != ErrSequence {
		t.Fatal("start after ClearKey accepted")
	}
}

func TestStatusString(t *testing.T) {
	for _, s := range []Status{StatusIdle, StatusBusy, StatusDone, StatusFault, Status(7)} {
		if s.String() == "" {
			t.Fatal("empty status name")
		}
	}
}

func TestZeroKeyXOnlyFaults(t *testing.T) {
	// k = 0 gives the point at infinity; the x-only path cannot
	// represent it and must not report Done with a bogus value.
	d := NewDevice(30)
	curve := ec.K163()
	src := rng.NewDRBG(31).Uint64
	if err := d.WriteKey(modn.Zero()); err != nil {
		t.Fatal(err)
	}
	if err := d.WritePoint(curve.RandomPoint(src)); err != nil {
		t.Fatal(err)
	}
	if err := d.StartPointMul(); err != nil {
		t.Fatal(err)
	}
	// 0*P = O: full path validation rejects it -> fault state.
	if d.Poll() != StatusFault {
		t.Fatalf("0*P produced status %v, want fault", d.Poll())
	}
}
