// Package soc models the HW/SW co-design boundary of the paper's
// architecture level: "typically there is an embedded micro-controller
// with programmable co-processors ... Sensitive data should appear
// only on the internal data-bus, and should not be available through
// the instruction set. So, no strange combination of instructions
// should release the key or the private data."
//
// The package wraps the co-processor behind the command interface an
// MCU firmware would drive: a write-only key register, point/operand
// loading, operation start, status polling, and result read-back that
// only ever exposes result registers. The security property — no
// command sequence reveals key material — is enforced structurally
// (there is no read path) and fuzz-tested in the package tests.
package soc

import (
	"errors"

	"medsec/internal/coproc"
	"medsec/internal/ec"
	"medsec/internal/gf2m"
	"medsec/internal/modn"
	"medsec/internal/power"
	"medsec/internal/rng"
)

// Status codes returned by the command interface.
type Status uint8

// Device status values.
const (
	StatusIdle Status = iota
	StatusBusy
	StatusDone
	StatusFault
)

func (s Status) String() string {
	switch s {
	case StatusIdle:
		return "idle"
	case StatusBusy:
		return "busy"
	case StatusDone:
		return "done"
	case StatusFault:
		return "fault"
	default:
		return "unknown"
	}
}

// Device is the memory-mapped co-processor as firmware sees it.
type Device struct {
	curve *ec.Curve
	tim   coproc.Timing
	pcfg  power.Config
	trng  *rng.DRBG

	// Write-only key register: there is deliberately no method that
	// returns it.
	key    modn.Scalar
	keySet bool

	point    ec.Point
	pointSet bool

	status  Status
	result  ec.Point
	xOnly   bool
	resultX gf2m.Element
	cycles  int
}

// NewDevice builds a device with the paper's default configuration.
func NewDevice(seed uint64) *Device {
	return &Device{
		curve: ec.K163(),
		tim:   coproc.DefaultTiming(),
		pcfg:  power.ProtectedChip(seed),
		trng:  rng.NewDRBG(seed),
	}
}

// ErrBusy is returned when a command arrives while an operation runs.
var ErrBusy = errors.New("soc: device busy")

// ErrSequence is returned for commands issued out of order.
var ErrSequence = errors.New("soc: invalid command sequence")

// WriteKey loads the scalar register. Write-only: the key can be
// replaced but never read back through the interface.
func (d *Device) WriteKey(k modn.Scalar) error {
	if d.status == StatusBusy {
		return ErrBusy
	}
	if k.Cmp(d.curve.Order.N()) >= 0 {
		return errors.New("soc: scalar not reduced")
	}
	d.key = k
	d.keySet = true
	d.status = StatusIdle
	return nil
}

// WritePoint loads the base-point operand. The point is validated on
// load (the invalid-point guard): firmware cannot feed the secure zone
// an off-curve or small-subgroup point.
func (d *Device) WritePoint(p ec.Point) error {
	if d.status == StatusBusy {
		return ErrBusy
	}
	if err := d.curve.Validate(p); err != nil {
		return err
	}
	d.point = p
	d.pointSet = true
	return nil
}

// StartPointMul launches k*P with full y-recovery. The result is
// validated before it becomes readable; a corrupted computation parks
// the device in StatusFault with no readable result (the fault-attack
// countermeasure at the interface level).
func (d *Device) StartPointMul() error { return d.start(false) }

// StartXOnly launches the x-only variant used by the identification
// protocol.
func (d *Device) StartXOnly() error { return d.start(true) }

func (d *Device) start(xOnly bool) error {
	if d.status == StatusBusy {
		return ErrBusy
	}
	if !d.keySet || !d.pointSet {
		return ErrSequence
	}
	d.status = StatusBusy
	prog := coproc.BuildLadderProgram(coproc.ProgramOptions{RPC: true, XOnly: xOnly})
	cpu := coproc.NewCPU(d.tim)
	cpu.Rand = d.trng.Uint64
	cpu.SetOperandConstants(d.point.X, d.curve.B, d.point.Y)
	cycles, err := cpu.Run(prog, d.key)
	if err != nil {
		d.status = StatusFault
		return err
	}
	d.cycles = cycles
	d.xOnly = xOnly
	if xOnly {
		d.resultX = cpu.ResultX(prog)
		// x-only results cannot be curve-validated alone; check that a
		// point with this x exists on the curve (it must, for honest
		// computations on valid inputs).
		if _, ok := d.curve.SolveY(d.resultX); !ok && !d.resultX.IsZero() {
			d.status = StatusFault
			return nil
		}
	} else {
		d.result = ec.Point{X: cpu.ResultX(prog), Y: cpu.ResultY(prog)}
		if err := d.curve.Validate(d.result); err != nil {
			d.status = StatusFault
			return nil
		}
	}
	d.status = StatusDone
	return nil
}

// Poll returns the device status.
func (d *Device) Poll() Status { return d.status }

// Cycles returns the duration of the last completed operation — a
// public quantity by design (it is key-independent; the tests assert
// that too).
func (d *Device) Cycles() int { return d.cycles }

// ReadResult returns the completed full result. Only result registers
// are addressable; scalar and internal state are not.
func (d *Device) ReadResult() (ec.Point, error) {
	if d.status != StatusDone || d.xOnly {
		return ec.Point{}, ErrSequence
	}
	return d.result, nil
}

// ReadResultX returns the completed x-only result.
func (d *Device) ReadResultX() (gf2m.Element, error) {
	if d.status != StatusDone || !d.xOnly {
		return gf2m.Element{}, ErrSequence
	}
	return d.resultX, nil
}

// ClearKey zeroizes the key register (session teardown hygiene).
func (d *Device) ClearKey() {
	d.key = modn.Zero()
	d.keySet = false
}
