// Package lightcrypto provides from-scratch implementations of the
// symmetric primitives the paper's protocol-level discussion compares
// against public-key cryptography: AES-128 (the secret-key cipher of
// the "protocols based on secret key algorithms, like AES" paragraph)
// and SHA-1 (the hash whose 5 527-gate implementation [12] anchors the
// implementation-size argument of Section 4).
//
// The implementations favour clarity and testability over speed; they
// are cross-checked against crypto/aes and crypto/sha1 in the tests.
// Gate-count and energy figures for these primitives live in
// internal/area and internal/radio, where the protocol-level energy
// trade-off experiments (E6, E7) consume them.
package lightcrypto

import (
	"encoding/binary"
	"errors"
)

// AESBlockSize is the AES block size in bytes.
const AESBlockSize = 16

// AESKeySize is the AES-128 key size in bytes.
const AESKeySize = 16

// sbox and invSbox are generated at init from the algebraic
// definition (inversion in GF(2^8) followed by the affine map) rather
// than pasted as literals, so a table typo is structurally impossible.
var sbox, invSbox [256]byte

func init() {
	// Multiplicative inverse table in GF(2^8) with the AES polynomial
	// x^8+x^4+x^3+x+1 (0x11b), built from a generator-based log table.
	var log, alog [256]byte
	p := byte(1)
	for i := 0; i < 255; i++ {
		alog[i] = p
		log[p] = byte(i)
		// Multiply p by the generator 0x03 = x+1.
		p ^= gmulX(p)
	}
	inv := func(b byte) byte {
		if b == 0 {
			return 0
		}
		return alog[(255-int(log[b]))%255]
	}
	for i := 0; i < 256; i++ {
		x := inv(byte(i))
		// Affine transformation: s = x ^ rotl(x,1..4) ^ 0x63.
		s := x ^ rotlByte(x, 1) ^ rotlByte(x, 2) ^ rotlByte(x, 3) ^ rotlByte(x, 4) ^ 0x63
		sbox[i] = s
		invSbox[s] = byte(i)
	}
}

func rotlByte(b byte, n uint) byte { return b<<n | b>>(8-n) }

// gmulX multiplies by x in GF(2^8) mod x^8+x^4+x^3+x+1.
func gmulX(b byte) byte {
	hi := b >> 7
	return b<<1 ^ hi*0x1b
}

// gmul multiplies two GF(2^8) elements (shift-and-add).
func gmul(a, b byte) byte {
	var r byte
	for i := 0; i < 8; i++ {
		if b&1 == 1 {
			r ^= a
		}
		a = gmulX(a)
		b >>= 1
	}
	return r
}

// mul2 and mul3 tabulate gmul(·, 2) and gmul(·, 3): MixColumns is on
// the DRBG hot path (every campaign trace rekeys and runs several AES
// blocks), and a table lookup replaces the eight-iteration shift-and-
// add loop per coefficient. Filled at init from gmul itself, so the
// values cannot drift from the definitional multiply.
var mul2, mul3 [256]byte

func init() {
	for i := 0; i < 256; i++ {
		mul2[i] = gmul(byte(i), 2)
		mul3[i] = gmul(byte(i), 3)
	}
}

// AES is an AES-128 block cipher instance with an expanded key
// schedule.
type AES struct {
	rk [44]uint32 // 11 round keys of 4 words
}

// NewAES expands a 16-byte key into an AES-128 instance.
func NewAES(key []byte) (*AES, error) {
	a := new(AES)
	if err := a.Rekey(key); err != nil {
		return nil, err
	}
	return a, nil
}

// Rekey re-expands the instance in place for a new 16-byte key. It
// lets long-lived consumers (the campaign engine's per-worker DRBGs)
// re-seed per sample without allocating a fresh cipher.
func (a *AES) Rekey(key []byte) error {
	if len(key) != AESKeySize {
		return errors.New("lightcrypto: AES-128 requires a 16-byte key")
	}
	for i := 0; i < 4; i++ {
		a.rk[i] = binary.BigEndian.Uint32(key[4*i:])
	}
	rcon := uint32(1)
	for i := 4; i < 44; i++ {
		t := a.rk[i-1]
		if i%4 == 0 {
			t = subWord(t<<8|t>>24) ^ rcon<<24
			rcon = uint32(gmulX(byte(rcon)))
		}
		a.rk[i] = a.rk[i-4] ^ t
	}
	return nil
}

func subWord(w uint32) uint32 {
	return uint32(sbox[w>>24])<<24 | uint32(sbox[w>>16&0xff])<<16 |
		uint32(sbox[w>>8&0xff])<<8 | uint32(sbox[w&0xff])
}

// state is the AES state as a 4x4 column-major byte matrix.
type state [16]byte

func (s *state) addRoundKey(rk []uint32) {
	for c := 0; c < 4; c++ {
		w := rk[c]
		s[4*c+0] ^= byte(w >> 24)
		s[4*c+1] ^= byte(w >> 16)
		s[4*c+2] ^= byte(w >> 8)
		s[4*c+3] ^= byte(w)
	}
}

func (s *state) subBytes(box *[256]byte) {
	for i := range s {
		s[i] = box[s[i]]
	}
}

func (s *state) shiftRows() {
	// Row r (bytes r, r+4, r+8, r+12) rotates left by r.
	for r := 1; r < 4; r++ {
		var row [4]byte
		for c := 0; c < 4; c++ {
			row[c] = s[4*((c+r)%4)+r]
		}
		for c := 0; c < 4; c++ {
			s[4*c+r] = row[c]
		}
	}
}

func (s *state) invShiftRows() {
	for r := 1; r < 4; r++ {
		var row [4]byte
		for c := 0; c < 4; c++ {
			row[c] = s[4*((c-r+4)%4)+r]
		}
		for c := 0; c < 4; c++ {
			s[4*c+r] = row[c]
		}
	}
}

func (s *state) mixColumns() {
	for c := 0; c < 4; c++ {
		a0, a1, a2, a3 := s[4*c], s[4*c+1], s[4*c+2], s[4*c+3]
		s[4*c+0] = mul2[a0] ^ mul3[a1] ^ a2 ^ a3
		s[4*c+1] = a0 ^ mul2[a1] ^ mul3[a2] ^ a3
		s[4*c+2] = a0 ^ a1 ^ mul2[a2] ^ mul3[a3]
		s[4*c+3] = mul3[a0] ^ a1 ^ a2 ^ mul2[a3]
	}
}

func (s *state) invMixColumns() {
	for c := 0; c < 4; c++ {
		a0, a1, a2, a3 := s[4*c], s[4*c+1], s[4*c+2], s[4*c+3]
		s[4*c+0] = gmul(a0, 14) ^ gmul(a1, 11) ^ gmul(a2, 13) ^ gmul(a3, 9)
		s[4*c+1] = gmul(a0, 9) ^ gmul(a1, 14) ^ gmul(a2, 11) ^ gmul(a3, 13)
		s[4*c+2] = gmul(a0, 13) ^ gmul(a1, 9) ^ gmul(a2, 14) ^ gmul(a3, 11)
		s[4*c+3] = gmul(a0, 11) ^ gmul(a1, 13) ^ gmul(a2, 9) ^ gmul(a3, 14)
	}
}

// Encrypt encrypts one 16-byte block: dst = AES-128(src). dst and src
// may overlap.
func (a *AES) Encrypt(dst, src []byte) {
	if len(src) < AESBlockSize || len(dst) < AESBlockSize {
		panic("lightcrypto: short AES block")
	}
	var s state
	copy(s[:], src[:16])
	s.addRoundKey(a.rk[0:4])
	for round := 1; round < 10; round++ {
		s.subBytes(&sbox)
		s.shiftRows()
		s.mixColumns()
		s.addRoundKey(a.rk[4*round : 4*round+4])
	}
	s.subBytes(&sbox)
	s.shiftRows()
	s.addRoundKey(a.rk[40:44])
	copy(dst[:16], s[:])
}

// Decrypt decrypts one 16-byte block.
func (a *AES) Decrypt(dst, src []byte) {
	if len(src) < AESBlockSize || len(dst) < AESBlockSize {
		panic("lightcrypto: short AES block")
	}
	var s state
	copy(s[:], src[:16])
	s.addRoundKey(a.rk[40:44])
	for round := 9; round >= 1; round-- {
		s.invShiftRows()
		s.subBytes(&invSbox)
		s.addRoundKey(a.rk[4*round : 4*round+4])
		s.invMixColumns()
	}
	s.invShiftRows()
	s.subBytes(&invSbox)
	s.addRoundKey(a.rk[0:4])
	copy(dst[:16], s[:])
}

// CTR encrypts or decrypts msg with AES-128 in counter mode using the
// given 16-byte initial counter block (the operation is an involution).
func (a *AES) CTR(iv, msg []byte) ([]byte, error) {
	if len(iv) != AESBlockSize {
		return nil, errors.New("lightcrypto: CTR needs a 16-byte IV")
	}
	out := make([]byte, len(msg))
	var ctr, ks [16]byte
	copy(ctr[:], iv)
	for off := 0; off < len(msg); off += 16 {
		a.Encrypt(ks[:], ctr[:])
		n := len(msg) - off
		if n > 16 {
			n = 16
		}
		for i := 0; i < n; i++ {
			out[off+i] = msg[off+i] ^ ks[i]
		}
		// Increment the counter big-endian.
		for i := 15; i >= 0; i-- {
			ctr[i]++
			if ctr[i] != 0 {
				break
			}
		}
	}
	return out, nil
}

// CBCMAC computes the AES-CBC-MAC of msg with 10*-style padding.
// Plain CBC-MAC is only secure for fixed-length messages; the protocol
// layer prepends the length, which the helper does here so callers
// cannot get it wrong.
func (a *AES) CBCMAC(msg []byte) [AESBlockSize]byte {
	var mac [16]byte
	// Length block first (prefix-free encoding).
	var lenBlock [16]byte
	binary.BigEndian.PutUint64(lenBlock[8:], uint64(len(msg)))
	a.Encrypt(mac[:], lenBlock[:])
	for off := 0; off < len(msg); off += 16 {
		var blk [16]byte
		n := copy(blk[:], msg[off:])
		if n < 16 {
			blk[n] = 0x80
		}
		for i := range blk {
			blk[i] ^= mac[i]
		}
		a.Encrypt(mac[:], blk[:])
	}
	return mac
}

// Seal encrypts msg under CTR with the given nonce and appends a
// CBC-MAC tag over nonce||ciphertext (encrypt-then-MAC). The nonce
// must be 16 bytes and unique per key.
func (a *AES) Seal(nonce, msg []byte) ([]byte, error) {
	ct, err := a.CTR(nonce, msg)
	if err != nil {
		return nil, err
	}
	macIn := append(append([]byte{}, nonce...), ct...)
	tag := a.CBCMAC(macIn)
	return append(ct, tag[:]...), nil
}

// Open verifies and decrypts a Seal output. It returns an error on
// any tampering — the paper's data-authentication requirement ("a
// modification on the ciphertext may also lead to a corrupted therapy
// that endangers the patient's life").
func (a *AES) Open(nonce, sealed []byte) ([]byte, error) {
	if len(nonce) != AESBlockSize || len(sealed) < AESBlockSize {
		return nil, errors.New("lightcrypto: malformed sealed message")
	}
	ct := sealed[:len(sealed)-AESBlockSize]
	tag := sealed[len(sealed)-AESBlockSize:]
	macIn := append(append([]byte{}, nonce...), ct...)
	want := a.CBCMAC(macIn)
	var diff byte
	for i := range want {
		diff |= want[i] ^ tag[i]
	}
	if diff != 0 {
		return nil, errors.New("lightcrypto: authentication failed")
	}
	return a.CTR(nonce, ct)
}
