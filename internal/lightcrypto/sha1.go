package lightcrypto

import "encoding/binary"

// SHA1Size is the SHA-1 digest length in bytes.
const SHA1Size = 20

// SHA1 is a streaming SHA-1 hash. The zero value is ready to use.
//
// SHA-1 appears in the paper purely as an implementation-size
// comparison point (the 5 527-gate RFID implementation of [12]); it is
// not used for new protocol security in this module.
type SHA1 struct {
	h      [5]uint32
	block  [64]byte
	n      int    // bytes buffered in block
	length uint64 // total bytes written
	init   bool
}

func (d *SHA1) reset() {
	d.h = [5]uint32{0x67452301, 0xEFCDAB89, 0x98BADCFE, 0x10325476, 0xC3D2E1F0}
	d.n = 0
	d.length = 0
	d.init = true
}

// Write absorbs p into the hash state. It never fails.
func (d *SHA1) Write(p []byte) (int, error) {
	if !d.init {
		d.reset()
	}
	d.length += uint64(len(p))
	total := len(p)
	for len(p) > 0 {
		c := copy(d.block[d.n:], p)
		d.n += c
		p = p[c:]
		if d.n == 64 {
			d.compress(d.block[:])
			d.n = 0
		}
	}
	return total, nil
}

func rotl32(x uint32, n uint) uint32 { return x<<n | x>>(32-n) }

func (d *SHA1) compress(blk []byte) {
	var w [80]uint32
	for i := 0; i < 16; i++ {
		w[i] = binary.BigEndian.Uint32(blk[4*i:])
	}
	for i := 16; i < 80; i++ {
		w[i] = rotl32(w[i-3]^w[i-8]^w[i-14]^w[i-16], 1)
	}
	a, b, c, e, f := d.h[0], d.h[1], d.h[2], d.h[3], d.h[4]
	dd := e
	e = f
	for i := 0; i < 80; i++ {
		var fn, k uint32
		switch {
		case i < 20:
			fn = (b & c) | (^b & dd)
			k = 0x5A827999
		case i < 40:
			fn = b ^ c ^ dd
			k = 0x6ED9EBA1
		case i < 60:
			fn = (b & c) | (b & dd) | (c & dd)
			k = 0x8F1BBCDC
		default:
			fn = b ^ c ^ dd
			k = 0xCA62C1D6
		}
		t := rotl32(a, 5) + fn + e + k + w[i]
		e = dd
		dd = c
		c = rotl32(b, 30)
		b = a
		a = t
	}
	d.h[0] += a
	d.h[1] += b
	d.h[2] += c
	d.h[3] += dd
	d.h[4] += e
}

// Sum appends the digest of everything written so far to in and
// returns the result; the hash state itself is not consumed.
func (d *SHA1) Sum(in []byte) []byte {
	if !d.init {
		d.reset()
	}
	cp := *d // pad a copy so further writes remain possible
	lenBits := cp.length * 8
	cp.Write([]byte{0x80})
	for cp.n != 56 {
		cp.Write([]byte{0})
	}
	var lb [8]byte
	binary.BigEndian.PutUint64(lb[:], lenBits)
	cp.Write(lb[:])
	var out [SHA1Size]byte
	for i, v := range cp.h {
		binary.BigEndian.PutUint32(out[4*i:], v)
	}
	return append(in, out[:]...)
}

// SHA1Sum returns the SHA-1 digest of msg.
func SHA1Sum(msg []byte) [SHA1Size]byte {
	var d SHA1
	d.Write(msg)
	var out [SHA1Size]byte
	copy(out[:], d.Sum(nil))
	return out
}
