package lightcrypto

import (
	"encoding/binary"
	"errors"
)

// PRESENT-80 (Bogdanov et al., CHES 2007): the ultra-lightweight block
// cipher of the paper's era and application class — ~1 570 GE, versus
// ~3 400 GE for compact AES and 5 527 GE for SHA-1 [12]. Included as a
// comparison point for the §4 implementation-size discussion: when the
// paper says hash functions are no longer cheap relative to ciphers,
// PRESENT is what "cheap cipher" means. 64-bit blocks, 80-bit keys,
// 31 rounds.

// PresentBlockSize is the PRESENT block size in bytes.
const PresentBlockSize = 8

// PresentKeySize is the PRESENT-80 key size in bytes.
const PresentKeySize = 10

// presentSbox is the 4-bit S-box.
var presentSbox = [16]byte{
	0xC, 0x5, 0x6, 0xB, 0x9, 0x0, 0xA, 0xD,
	0x3, 0xE, 0xF, 0x8, 0x4, 0x7, 0x1, 0x2,
}

var presentSboxInv [16]byte

func init() {
	for i, v := range presentSbox {
		presentSboxInv[v] = byte(i)
	}
}

// Present is a PRESENT-80 instance with an expanded key schedule.
type Present struct {
	rk [32]uint64
}

// NewPresent expands an 80-bit key.
func NewPresent(key []byte) (*Present, error) {
	if len(key) != PresentKeySize {
		return nil, errors.New("lightcrypto: PRESENT-80 requires a 10-byte key")
	}
	// Key register: 80 bits, hi holds bits 79..16, lo bits 15..0.
	hi := binary.BigEndian.Uint64(key[:8])
	lo := uint64(binary.BigEndian.Uint16(key[8:]))
	p := new(Present)
	for round := uint64(1); round <= 32; round++ {
		p.rk[round-1] = hi // round key = leftmost 64 bits
		if round == 32 {
			break
		}
		// Rotate the 80-bit register (hi:64 | lo:16) left by 61:
		// new bits 79..61 are old bits 18..0, new bits 60..0 are old
		// bits 79..19.
		k1 := (hi&7)<<61 | lo<<45 | hi>>19
		k0 := (hi >> 3) & 0xFFFF
		hi, lo = k1, k0
		// S-box on the top nibble.
		hi = hi&^(0xF<<60) | uint64(presentSbox[hi>>60])<<60
		// XOR round counter into bits 19..15 of the register
		// (bits 4..0 of the counter land at register bits 19..15:
		// three low bits into hi's low end is wrong — bits 19..15 of
		// the 80-bit register are hi bit 3..0 and lo bit 15).
		rc := round
		hi ^= rc >> 1
		lo ^= (rc & 1) << 15
	}
	return p, nil
}

// pLayer applies the PRESENT bit permutation: bit i of the state moves
// to position (16*i) mod 63 (bit 63 fixed).
func pLayer(s uint64, inverse bool) uint64 {
	var out uint64
	for i := 0; i < 64; i++ {
		var to int
		if i == 63 {
			to = 63
		} else {
			to = (16 * i) % 63
		}
		if inverse {
			out |= (s >> to & 1) << i
		} else {
			out |= (s >> i & 1) << to
		}
	}
	return out
}

func sLayer(s uint64, inv bool) uint64 {
	var out uint64
	for i := 0; i < 16; i++ {
		nib := byte(s >> (4 * i) & 0xF)
		if inv {
			nib = presentSboxInv[nib]
		} else {
			nib = presentSbox[nib]
		}
		out |= uint64(nib) << (4 * i)
	}
	return out
}

// EncryptBlock encrypts one 8-byte block.
func (p *Present) EncryptBlock(dst, src []byte) {
	if len(src) < PresentBlockSize || len(dst) < PresentBlockSize {
		panic("lightcrypto: short PRESENT block")
	}
	s := binary.BigEndian.Uint64(src)
	for r := 0; r < 31; r++ {
		s ^= p.rk[r]
		s = sLayer(s, false)
		s = pLayer(s, false)
	}
	s ^= p.rk[31]
	binary.BigEndian.PutUint64(dst, s)
}

// DecryptBlock decrypts one 8-byte block.
func (p *Present) DecryptBlock(dst, src []byte) {
	if len(src) < PresentBlockSize || len(dst) < PresentBlockSize {
		panic("lightcrypto: short PRESENT block")
	}
	s := binary.BigEndian.Uint64(src)
	s ^= p.rk[31]
	for r := 30; r >= 0; r-- {
		s = pLayer(s, true)
		s = sLayer(s, true)
		s ^= p.rk[r]
	}
	binary.BigEndian.PutUint64(dst, s)
}
