package lightcrypto

import (
	"bytes"
	"encoding/hex"
	"math/rand"
	"testing"
)

// TestPresentPublishedVectors checks the four test vectors of the
// PRESENT paper (Bogdanov et al., CHES 2007, Appendix).
func TestPresentPublishedVectors(t *testing.T) {
	vectors := []struct{ key, pt, ct string }{
		{"00000000000000000000", "0000000000000000", "5579c1387b228445"},
		{"ffffffffffffffffffff", "0000000000000000", "e72c46c0f5945049"},
		{"00000000000000000000", "ffffffffffffffff", "a112ffc72f68417b"},
		{"ffffffffffffffffffff", "ffffffffffffffff", "3333dcd3213210d2"},
	}
	for i, v := range vectors {
		key, _ := hex.DecodeString(v.key)
		pt, _ := hex.DecodeString(v.pt)
		want, _ := hex.DecodeString(v.ct)
		p, err := NewPresent(key)
		if err != nil {
			t.Fatal(err)
		}
		got := make([]byte, 8)
		p.EncryptBlock(got, pt)
		if !bytes.Equal(got, want) {
			t.Fatalf("vector %d: got %x want %x", i, got, want)
		}
		back := make([]byte, 8)
		p.DecryptBlock(back, got)
		if !bytes.Equal(back, pt) {
			t.Fatalf("vector %d: decrypt failed", i)
		}
	}
}

func TestPresentRandomRoundTrips(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for i := 0; i < 200; i++ {
		key := make([]byte, PresentKeySize)
		pt := make([]byte, PresentBlockSize)
		r.Read(key)
		r.Read(pt)
		p, err := NewPresent(key)
		if err != nil {
			t.Fatal(err)
		}
		ct := make([]byte, 8)
		back := make([]byte, 8)
		p.EncryptBlock(ct, pt)
		if bytes.Equal(ct, pt) {
			t.Fatal("identity encryption")
		}
		p.DecryptBlock(back, ct)
		if !bytes.Equal(back, pt) {
			t.Fatal("round trip failed")
		}
	}
}

func TestPresentKeyAvalanche(t *testing.T) {
	// Flipping one key bit must change roughly half the ciphertext.
	key := make([]byte, PresentKeySize)
	pt := make([]byte, PresentBlockSize)
	p1, _ := NewPresent(key)
	key2 := append([]byte{}, key...)
	key2[9] ^= 1
	p2, _ := NewPresent(key2)
	c1 := make([]byte, 8)
	c2 := make([]byte, 8)
	p1.EncryptBlock(c1, pt)
	p2.EncryptBlock(c2, pt)
	diff := 0
	for i := range c1 {
		x := c1[i] ^ c2[i]
		for ; x != 0; x &= x - 1 {
			diff++
		}
	}
	if diff < 16 || diff > 48 {
		t.Fatalf("key avalanche %d/64 bits; key schedule suspect", diff)
	}
}

func TestPresentValidation(t *testing.T) {
	if _, err := NewPresent(make([]byte, 9)); err == nil {
		t.Fatal("short key accepted")
	}
	p, _ := NewPresent(make([]byte, PresentKeySize))
	defer func() {
		if recover() == nil {
			t.Fatal("short block did not panic")
		}
	}()
	p.EncryptBlock(make([]byte, 7), make([]byte, 8))
}

func TestPLayerIsAPermutationAndInverts(t *testing.T) {
	seen := map[int]bool{}
	for i := 0; i < 64; i++ {
		to := 63
		if i != 63 {
			to = (16 * i) % 63
		}
		if seen[to] {
			t.Fatalf("pLayer maps two bits to %d", to)
		}
		seen[to] = true
	}
	r := rand.New(rand.NewSource(2))
	for i := 0; i < 100; i++ {
		v := r.Uint64()
		if pLayer(pLayer(v, false), true) != v {
			t.Fatal("pLayer inverse broken")
		}
	}
}

func BenchmarkPresentEncrypt(b *testing.B) {
	p, _ := NewPresent(make([]byte, PresentKeySize))
	blk := make([]byte, 8)
	b.SetBytes(8)
	for i := 0; i < b.N; i++ {
		p.EncryptBlock(blk, blk)
	}
}
