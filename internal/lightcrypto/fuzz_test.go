package lightcrypto

import (
	"bytes"
	"crypto/sha1"
	"testing"
)

// FuzzSHA1AgainstStdlib differentially fuzzes the from-scratch SHA-1
// against crypto/sha1.
func FuzzSHA1AgainstStdlib(f *testing.F) {
	f.Add([]byte(""))
	f.Add([]byte("abc"))
	f.Add(bytes.Repeat([]byte{0x61}, 120))
	f.Fuzz(func(t *testing.T, msg []byte) {
		got := SHA1Sum(msg)
		want := sha1.Sum(msg)
		if got != want {
			t.Fatalf("SHA1 mismatch for %d-byte input", len(msg))
		}
	})
}

// FuzzOpenNeverAcceptsGarbage: Open on arbitrary ciphertext must
// either fail or (for the unmodified sealed message) return the
// original plaintext; flipped bytes must always be rejected.
func FuzzOpenNeverAcceptsGarbage(f *testing.F) {
	f.Add([]byte("payload"), uint8(0))
	f.Add([]byte(""), uint8(3))
	f.Fuzz(func(t *testing.T, msg []byte, flip uint8) {
		key := make([]byte, 16)
		key[0] = 7
		a, err := NewAES(key)
		if err != nil {
			t.Fatal(err)
		}
		nonce := make([]byte, 16)
		sealed, err := a.Seal(nonce, msg)
		if err != nil {
			t.Fatal(err)
		}
		got, err := a.Open(nonce, sealed)
		if err != nil || !bytes.Equal(got, msg) {
			t.Fatal("honest seal did not open")
		}
		tampered := append([]byte{}, sealed...)
		tampered[int(flip)%len(tampered)] ^= 0x80
		if _, err := a.Open(nonce, tampered); err == nil {
			t.Fatal("tampered message accepted")
		}
	})
}
