package lightcrypto

import (
	"bytes"
	"encoding/binary"
	"testing"
	"testing/quick"
)

// Property-based tests (testing/quick) for the symmetric primitives.

func TestQuickAESDecryptInvertsEncrypt(t *testing.T) {
	f := func(k0, k1, p0, p1 uint64) bool {
		var key, pt [16]byte
		binary.BigEndian.PutUint64(key[:8], k0)
		binary.BigEndian.PutUint64(key[8:], k1)
		binary.BigEndian.PutUint64(pt[:8], p0)
		binary.BigEndian.PutUint64(pt[8:], p1)
		a, err := NewAES(key[:])
		if err != nil {
			return false
		}
		var ct, back [16]byte
		a.Encrypt(ct[:], pt[:])
		a.Decrypt(back[:], ct[:])
		return back == pt && ct != pt
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickCTRInvolution(t *testing.T) {
	f := func(k0 uint64, iv0 uint64, msg []byte) bool {
		var key, iv [16]byte
		binary.BigEndian.PutUint64(key[:8], k0)
		binary.BigEndian.PutUint64(iv[:8], iv0)
		a, err := NewAES(key[:])
		if err != nil {
			return false
		}
		ct, err := a.CTR(iv[:], msg)
		if err != nil {
			return false
		}
		pt, err := a.CTR(iv[:], ct)
		if err != nil {
			return false
		}
		return bytes.Equal(pt, msg)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickSealOpenRoundTrip(t *testing.T) {
	f := func(k0 uint64, n0 uint64, msg []byte) bool {
		var key, nonce [16]byte
		binary.BigEndian.PutUint64(key[:8], k0)
		binary.BigEndian.PutUint64(nonce[:8], n0)
		a, err := NewAES(key[:])
		if err != nil {
			return false
		}
		sealed, err := a.Seal(nonce[:], msg)
		if err != nil {
			return false
		}
		got, err := a.Open(nonce[:], sealed)
		if err != nil {
			return false
		}
		return bytes.Equal(got, msg)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickSealRejectsFlippedBit(t *testing.T) {
	f := func(k0 uint64, msg []byte, pos uint16) bool {
		var key, nonce [16]byte
		binary.BigEndian.PutUint64(key[:8], k0)
		a, err := NewAES(key[:])
		if err != nil {
			return false
		}
		sealed, err := a.Seal(nonce[:], msg)
		if err != nil {
			return false
		}
		i := int(pos) % len(sealed)
		sealed[i] ^= 1 << (pos % 8)
		_, err = a.Open(nonce[:], sealed)
		return err != nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickSHA1MatchesStreaming(t *testing.T) {
	f := func(a, b, c []byte) bool {
		var d SHA1
		d.Write(a)
		d.Write(b)
		d.Write(c)
		joined := append(append(append([]byte{}, a...), b...), c...)
		want := SHA1Sum(joined)
		return bytes.Equal(d.Sum(nil), want[:])
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
