package lightcrypto

import (
	"bytes"
	"crypto/aes"
	"crypto/sha1"
	"encoding/hex"
	"math/rand"
	"testing"
)

func TestAESFIPS197Vector(t *testing.T) {
	// FIPS-197 Appendix C.1.
	key, _ := hex.DecodeString("000102030405060708090a0b0c0d0e0f")
	pt, _ := hex.DecodeString("00112233445566778899aabbccddeeff")
	want, _ := hex.DecodeString("69c4e0d86a7b0430d8cdb78070b4c55a")
	a, err := NewAES(key)
	if err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 16)
	a.Encrypt(got, pt)
	if !bytes.Equal(got, want) {
		t.Fatalf("FIPS-197 vector failed: got %x want %x", got, want)
	}
	dec := make([]byte, 16)
	a.Decrypt(dec, got)
	if !bytes.Equal(dec, pt) {
		t.Fatalf("decrypt(encrypt(pt)) != pt: %x", dec)
	}
}

func TestAESMatchesStdlib(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for i := 0; i < 300; i++ {
		key := make([]byte, 16)
		pt := make([]byte, 16)
		r.Read(key)
		r.Read(pt)
		ours, err := NewAES(key)
		if err != nil {
			t.Fatal(err)
		}
		ref, err := aes.NewCipher(key)
		if err != nil {
			t.Fatal(err)
		}
		got := make([]byte, 16)
		want := make([]byte, 16)
		ours.Encrypt(got, pt)
		ref.Encrypt(want, pt)
		if !bytes.Equal(got, want) {
			t.Fatalf("encrypt mismatch for key=%x pt=%x", key, pt)
		}
		back := make([]byte, 16)
		ours.Decrypt(back, got)
		if !bytes.Equal(back, pt) {
			t.Fatal("decrypt mismatch")
		}
	}
}

func TestAESKeyLengthValidation(t *testing.T) {
	for _, n := range []int{0, 15, 17, 24, 32} {
		if _, err := NewAES(make([]byte, n)); err == nil {
			t.Fatalf("NewAES accepted %d-byte key", n)
		}
	}
}

func TestAESShortBlockPanics(t *testing.T) {
	a, _ := NewAES(make([]byte, 16))
	for _, f := range []func(){
		func() { a.Encrypt(make([]byte, 15), make([]byte, 16)) },
		func() { a.Encrypt(make([]byte, 16), make([]byte, 15)) },
		func() { a.Decrypt(make([]byte, 15), make([]byte, 16)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("short block did not panic")
				}
			}()
			f()
		}()
	}
}

func TestCTRRoundTripAndInvolution(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	key := make([]byte, 16)
	r.Read(key)
	a, _ := NewAES(key)
	for _, n := range []int{0, 1, 15, 16, 17, 33, 100, 1000} {
		msg := make([]byte, n)
		r.Read(msg)
		iv := make([]byte, 16)
		r.Read(iv)
		ct, err := a.CTR(iv, msg)
		if err != nil {
			t.Fatal(err)
		}
		pt, err := a.CTR(iv, ct)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(pt, msg) {
			t.Fatalf("CTR round trip failed for n=%d", n)
		}
		if n >= 16 && bytes.Equal(ct[:16], msg[:16]) {
			t.Fatal("CTR produced identity transform")
		}
	}
	if _, err := a.CTR(make([]byte, 15), []byte("x")); err == nil {
		t.Fatal("short IV accepted")
	}
}

func TestCTRCounterIncrementAcrossBlocks(t *testing.T) {
	// IV near the counter wrap: blocks must still differ.
	key := make([]byte, 16)
	a, _ := NewAES(key)
	iv := bytes.Repeat([]byte{0xff}, 16)
	msg := make([]byte, 48)
	ct, err := a.CTR(iv, msg)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(ct[:16], ct[16:32]) || bytes.Equal(ct[16:32], ct[32:48]) {
		t.Fatal("counter did not increment across wrap")
	}
}

func TestCBCMACDistinguishesMessages(t *testing.T) {
	key := make([]byte, 16)
	key[0] = 1
	a, _ := NewAES(key)
	m1 := a.CBCMAC([]byte("message one"))
	m2 := a.CBCMAC([]byte("message two"))
	if m1 == m2 {
		t.Fatal("MAC collision on distinct messages")
	}
	// Length-extension-shaped inputs must differ (prefix-free check).
	m3 := a.CBCMAC(make([]byte, 16))
	m4 := a.CBCMAC(make([]byte, 32))
	if m3 == m4 {
		t.Fatal("MAC ignores length")
	}
	// Deterministic.
	if a.CBCMAC([]byte("message one")) != m1 {
		t.Fatal("MAC not deterministic")
	}
}

func TestSealOpen(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	key := make([]byte, 16)
	r.Read(key)
	a, _ := NewAES(key)
	nonce := make([]byte, 16)
	r.Read(nonce)
	msg := []byte("heart rate 62 bpm, battery 81%")
	sealed, err := a.Seal(nonce, msg)
	if err != nil {
		t.Fatal(err)
	}
	got, err := a.Open(nonce, sealed)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatal("Seal/Open round trip failed")
	}
	// Any single bit flip anywhere must be rejected.
	for i := 0; i < len(sealed); i += 7 {
		tampered := append([]byte{}, sealed...)
		tampered[i] ^= 0x40
		if _, err := a.Open(nonce, tampered); err == nil {
			t.Fatalf("tampered byte %d accepted", i)
		}
	}
	// Wrong nonce rejected.
	badNonce := append([]byte{}, nonce...)
	badNonce[0] ^= 1
	if _, err := a.Open(badNonce, sealed); err == nil {
		t.Fatal("wrong nonce accepted")
	}
	// Truncated input rejected.
	if _, err := a.Open(nonce, sealed[:10]); err == nil {
		t.Fatal("truncated sealed message accepted")
	}
}

func TestSHA1KnownVectors(t *testing.T) {
	vectors := map[string]string{
		"":    "da39a3ee5e6b4b0d3255bfef95601890afd80709",
		"abc": "a9993e364706816aba3e25717850c26c9cd0d89d",
		"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq": "84983e441c3bd26ebaae4aa1f95129e5e54670f1",
	}
	for msg, wantHex := range vectors {
		got := SHA1Sum([]byte(msg))
		if hex.EncodeToString(got[:]) != wantHex {
			t.Fatalf("SHA1(%q) = %x, want %s", msg, got, wantHex)
		}
	}
}

func TestSHA1MatchesStdlib(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	for i := 0; i < 200; i++ {
		n := r.Intn(300)
		msg := make([]byte, n)
		r.Read(msg)
		got := SHA1Sum(msg)
		want := sha1.Sum(msg)
		if got != want {
			t.Fatalf("SHA1 mismatch for %d-byte message", n)
		}
	}
}

func TestSHA1StreamingEqualsOneShot(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	msg := make([]byte, 1000)
	r.Read(msg)
	var d SHA1
	for off := 0; off < len(msg); {
		n := 1 + r.Intn(97)
		if off+n > len(msg) {
			n = len(msg) - off
		}
		d.Write(msg[off : off+n])
		off += n
	}
	want := SHA1Sum(msg)
	if !bytes.Equal(d.Sum(nil), want[:]) {
		t.Fatal("streaming digest differs from one-shot")
	}
	// Sum must not consume the state.
	first := d.Sum(nil)
	second := d.Sum(nil)
	if !bytes.Equal(first, second) {
		t.Fatal("Sum consumed the hash state")
	}
	d.Write([]byte("more"))
	if bytes.Equal(d.Sum(nil), first) {
		t.Fatal("Write after Sum had no effect")
	}
}

func TestSHA1BoundaryLengths(t *testing.T) {
	// Padding boundaries: 55, 56, 63, 64, 65 bytes.
	for _, n := range []int{55, 56, 57, 63, 64, 65, 119, 120, 128} {
		msg := bytes.Repeat([]byte{0xa5}, n)
		got := SHA1Sum(msg)
		want := sha1.Sum(msg)
		if got != want {
			t.Fatalf("SHA1 mismatch at boundary length %d", n)
		}
	}
}

func TestSboxInverseRelation(t *testing.T) {
	for i := 0; i < 256; i++ {
		if invSbox[sbox[i]] != byte(i) {
			t.Fatalf("invSbox(sbox(%d)) != %d", i, i)
		}
	}
	// Spot values from FIPS-197.
	if sbox[0x00] != 0x63 || sbox[0x01] != 0x7c || sbox[0x53] != 0xed {
		t.Fatalf("sbox generation wrong: %x %x %x", sbox[0], sbox[1], sbox[0x53])
	}
}

func BenchmarkAESEncrypt(b *testing.B) {
	a, _ := NewAES(make([]byte, 16))
	blk := make([]byte, 16)
	b.SetBytes(16)
	for i := 0; i < b.N; i++ {
		a.Encrypt(blk, blk)
	}
}

func BenchmarkSHA1(b *testing.B) {
	msg := make([]byte, 1024)
	b.SetBytes(1024)
	for i := 0; i < b.N; i++ {
		SHA1Sum(msg)
	}
}
