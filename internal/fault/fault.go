// Package fault implements active (fault-injection) attack simulation
// against the co-processor, and the detection countermeasures the
// paper's threat analysis demands: the protocol layer already rejects
// invalid inbound points (ec.Validate); this package covers the
// outbound direction — a glitched point multiplication must never
// release a faulty result, because faulty ECC outputs are the raw
// material of Bellcore-style and invalid-curve key-extraction attacks.
//
// The injector flips one chosen register bit at one chosen clock cycle
// (a voltage/laser glitch at instruction granularity); the
// countermeasure validates the result (on-curve and subgroup
// membership) before it leaves the secure zone.
package fault

import (
	"fmt"

	"medsec/internal/campaign"
	"medsec/internal/coproc"
	"medsec/internal/ec"
	"medsec/internal/modn"
	"medsec/internal/rng"
)

// Injection describes one fault: at clock cycle Cycle, flip bit Bit of
// working register Reg.
type Injection struct {
	Cycle int
	Reg   int
	Bit   int
}

// InjectionError is the typed rejection of an injection whose target
// lies outside the machine or the program: negative or past-the-end
// cycles, register indices outside the file, bit positions outside the
// field width. Callers sweeping generated fault spaces can distinguish
// it from simulator failures with errors.As.
type InjectionError struct {
	Inj    Injection
	Reason string
}

func (e *InjectionError) Error() string {
	return fmt.Sprintf("fault: invalid injection (cycle %d, reg %d, bit %d): %s",
		e.Inj.Cycle, e.Inj.Reg, e.Inj.Bit, e.Reason)
}

// validate rejects injections no physical glitch could correspond to.
func (inj Injection) validate() error {
	switch {
	case inj.Cycle < 0:
		return &InjectionError{Inj: inj, Reason: "negative cycle"}
	case inj.Reg < 0 || inj.Reg >= coproc.NumRegs:
		return &InjectionError{Inj: inj, Reason: "register outside the file"}
	case inj.Bit < 0 || inj.Bit >= 163:
		return &InjectionError{Inj: inj, Reason: "bit outside the field width"}
	}
	return nil
}

// Result classifies the outcome of one faulted run.
type Result int

// Outcomes of a faulted point multiplication.
const (
	// Benign: the fault did not change the final result (hit a dead
	// value).
	Benign Result = iota
	// Detected: the result was corrupted and the output validation
	// caught it.
	Detected
	// Escaped: the result was corrupted and validation passed — a
	// countermeasure failure.
	Escaped
)

func (r Result) String() string {
	switch r {
	case Benign:
		return "benign"
	case Detected:
		return "detected"
	case Escaped:
		return "escaped"
	default:
		return "unknown"
	}
}

// RunWithFault executes one point multiplication k*P with the given
// injection and classifies the outcome under output validation.
func RunWithFault(curve *ec.Curve, tim coproc.Timing, k modn.Scalar, p ec.Point, inj Injection, trngSeed uint64) (Result, error) {
	if err := inj.validate(); err != nil {
		return 0, err
	}
	prog := coproc.BuildLadderProgram(coproc.ProgramOptions{RPC: true})

	// Reference (fault-free) run with the same TRNG stream.
	ref := coproc.NewCPU(tim)
	ref.Rand = rng.NewDRBG(trngSeed).Uint64
	ref.SetOperandConstants(p.X, curve.B, p.Y)
	if _, err := ref.Run(prog, k); err != nil {
		return 0, err
	}
	want := ec.Point{X: ref.ResultX(prog), Y: ref.ResultY(prog)}

	// Faulted run.
	cpu := coproc.NewCPU(tim)
	cpu.Rand = rng.NewDRBG(trngSeed).Uint64
	cpu.SetOperandConstants(p.X, curve.B, p.Y)
	injected := false
	cpu.Probe = func(ev *coproc.CycleEvent) {
		if !injected && ev.Cycle == inj.Cycle {
			cpu.Regs[inj.Reg] = cpu.Regs[inj.Reg].SetBit(inj.Bit, cpu.Regs[inj.Reg].Bit(inj.Bit)^1)
			injected = true
		}
	}
	if _, err := cpu.Run(prog, k); err != nil {
		return 0, err
	}
	if !injected {
		return 0, &InjectionError{Inj: inj, Reason: "cycle beyond program end"}
	}
	got := ec.Point{X: cpu.ResultX(prog), Y: cpu.ResultY(prog)}

	if got.Equal(want) {
		return Benign, nil
	}
	if err := ValidateOutput(curve, got); err != nil {
		return Detected, nil
	}
	return Escaped, nil
}

// ValidateOutput is the secure-zone exit check: the result must be a
// finite point on the curve inside the prime-order subgroup.
func ValidateOutput(curve *ec.Curve, p ec.Point) error {
	return curve.Validate(p)
}

// CampaignReport aggregates a fault campaign.
type CampaignReport struct {
	Runs     int
	Benign   int
	Detected int
	Escaped  int
}

// Campaign injects n random single-bit faults at uniformly random
// cycles of the ladder phase and reports the outcome distribution. A
// sound countermeasure shows Escaped == 0.
//
// The sampling runs on the campaign engine: randomness is drawn
// serially in sample order (so the report is bit-identical to the
// historical serial loop for the same seed) while the simulations
// themselves fan out across workers. Each sample draws a fresh scalar
// and base point — for an exhaustive map of the fault space of one
// fixed computation, use Sweep, which shares a single reference run
// and resumes faulted runs from checkpoints.
func Campaign(curve *ec.Curve, tim coproc.Timing, n int, seed uint64) (*CampaignReport, error) {
	return CampaignWorkers(curve, tim, n, seed, 0)
}

// campaignJob is one random sample: a full computation plus one fault.
type campaignJob struct {
	k    modn.Scalar
	p    ec.Point
	inj  Injection
	trng uint64
}

// CampaignWorkers is Campaign with an explicit worker count (<= 0
// selects GOMAXPROCS). The report is identical for any worker count.
func CampaignWorkers(curve *ec.Curve, tim coproc.Timing, n int, seed uint64, workers int) (*CampaignReport, error) {
	prog := coproc.BuildLadderProgram(coproc.ProgramOptions{RPC: true})
	start, end := prog.IterationWindow(tim, 162, 0)
	d := rng.NewDRBG(seed)
	rep := &CampaignReport{}
	prepare := func(idx int) (campaignJob, error) {
		return campaignJob{
			k: curve.Order.RandNonZero(d.Uint64),
			p: curve.RandomPoint(d.Uint64),
			inj: Injection{
				Cycle: start + d.Intn(end-start),
				Reg:   d.Intn(coproc.NumRegs),
				Bit:   d.Intn(163),
			},
			trng: seed + uint64(idx),
		}, nil
	}
	acquire := func(worker, idx int, job campaignJob) (Result, error) {
		return RunWithFault(curve, tim, job.k, job.p, job.inj, job.trng)
	}
	consume := func(idx int, job campaignJob, res Result) (bool, error) {
		rep.Runs++
		switch res {
		case Benign:
			rep.Benign++
		case Detected:
			rep.Detected++
		case Escaped:
			rep.Escaped++
		}
		return false, nil
	}
	if _, err := campaign.Run(0, n, campaign.Config{Workers: workers}, prepare, acquire, consume); err != nil {
		return nil, err
	}
	return rep, nil
}
