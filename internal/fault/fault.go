// Package fault implements active (fault-injection) attack simulation
// against the co-processor, and the detection countermeasures the
// paper's threat analysis demands: the protocol layer already rejects
// invalid inbound points (ec.Validate); this package covers the
// outbound direction — a glitched point multiplication must never
// release a faulty result, because faulty ECC outputs are the raw
// material of Bellcore-style and invalid-curve key-extraction attacks.
//
// The injector flips one chosen register bit at one chosen clock cycle
// (a voltage/laser glitch at instruction granularity); the
// countermeasure validates the result (on-curve and subgroup
// membership) before it leaves the secure zone.
package fault

import (
	"errors"

	"medsec/internal/coproc"
	"medsec/internal/ec"
	"medsec/internal/modn"
	"medsec/internal/rng"
)

// Injection describes one fault: at clock cycle Cycle, flip bit Bit of
// working register Reg.
type Injection struct {
	Cycle int
	Reg   int
	Bit   int
}

// Result classifies the outcome of one faulted run.
type Result int

// Outcomes of a faulted point multiplication.
const (
	// Benign: the fault did not change the final result (hit a dead
	// value).
	Benign Result = iota
	// Detected: the result was corrupted and the output validation
	// caught it.
	Detected
	// Escaped: the result was corrupted and validation passed — a
	// countermeasure failure.
	Escaped
)

func (r Result) String() string {
	switch r {
	case Benign:
		return "benign"
	case Detected:
		return "detected"
	case Escaped:
		return "escaped"
	default:
		return "unknown"
	}
}

// RunWithFault executes one point multiplication k*P with the given
// injection and classifies the outcome under output validation.
func RunWithFault(curve *ec.Curve, tim coproc.Timing, k modn.Scalar, p ec.Point, inj Injection, trngSeed uint64) (Result, error) {
	if inj.Reg < 0 || inj.Reg >= coproc.NumRegs || inj.Bit < 0 || inj.Bit >= 163 {
		return 0, errors.New("fault: injection target out of range")
	}
	prog := coproc.BuildLadderProgram(coproc.ProgramOptions{RPC: true})

	// Reference (fault-free) run with the same TRNG stream.
	ref := coproc.NewCPU(tim)
	ref.Rand = rng.NewDRBG(trngSeed).Uint64
	ref.SetOperandConstants(p.X, curve.B, p.Y)
	if _, err := ref.Run(prog, k); err != nil {
		return 0, err
	}
	want := ec.Point{X: ref.ResultX(prog), Y: ref.ResultY(prog)}

	// Faulted run.
	cpu := coproc.NewCPU(tim)
	cpu.Rand = rng.NewDRBG(trngSeed).Uint64
	cpu.SetOperandConstants(p.X, curve.B, p.Y)
	injected := false
	cpu.Probe = func(ev *coproc.CycleEvent) {
		if !injected && ev.Cycle == inj.Cycle {
			cpu.Regs[inj.Reg] = cpu.Regs[inj.Reg].SetBit(inj.Bit, cpu.Regs[inj.Reg].Bit(inj.Bit)^1)
			injected = true
		}
	}
	if _, err := cpu.Run(prog, k); err != nil {
		return 0, err
	}
	if !injected {
		return 0, errors.New("fault: injection cycle beyond program end")
	}
	got := ec.Point{X: cpu.ResultX(prog), Y: cpu.ResultY(prog)}

	if got.Equal(want) {
		return Benign, nil
	}
	if err := ValidateOutput(curve, got); err != nil {
		return Detected, nil
	}
	return Escaped, nil
}

// ValidateOutput is the secure-zone exit check: the result must be a
// finite point on the curve inside the prime-order subgroup.
func ValidateOutput(curve *ec.Curve, p ec.Point) error {
	return curve.Validate(p)
}

// CampaignReport aggregates a fault campaign.
type CampaignReport struct {
	Runs     int
	Benign   int
	Detected int
	Escaped  int
}

// Campaign injects n random single-bit faults at uniformly random
// cycles of the ladder phase and reports the outcome distribution. A
// sound countermeasure shows Escaped == 0.
func Campaign(curve *ec.Curve, tim coproc.Timing, n int, seed uint64) (*CampaignReport, error) {
	prog := coproc.BuildLadderProgram(coproc.ProgramOptions{RPC: true})
	start, end := prog.IterationWindow(tim, 162, 0)
	d := rng.NewDRBG(seed)
	rep := &CampaignReport{}
	for i := 0; i < n; i++ {
		k := curve.Order.RandNonZero(d.Uint64)
		p := curve.RandomPoint(d.Uint64)
		inj := Injection{
			Cycle: start + d.Intn(end-start),
			Reg:   d.Intn(coproc.NumRegs),
			Bit:   d.Intn(163),
		}
		res, err := RunWithFault(curve, tim, k, p, inj, seed+uint64(i))
		if err != nil {
			return nil, err
		}
		rep.Runs++
		switch res {
		case Benign:
			rep.Benign++
		case Detected:
			rep.Detected++
		case Escaped:
			rep.Escaped++
		}
	}
	return rep, nil
}
