package fault

import (
	"reflect"
	"testing"

	"medsec/internal/coproc"
	"medsec/internal/ec"
)

// TestSweepShardedDeterminismMatchesLegacy pins the sweep's reduction
// contract: because the fold is pure integer counting plus in-order
// escape-list concatenation, the sharded report is bit-identical to
// the legacy serial consumer's for EVERY (worker, shard) combination —
// stronger than the floating-point campaigns, which agree across shard
// counts only to rounding.
func TestSweepShardedDeterminismMatchesLegacy(t *testing.T) {
	curve := ec.K163()
	tim := coproc.DefaultTiming()
	base := SweepConfig{
		FromIter: 0, ToIter: 0,
		CycleStride: 131, BitStride: 54,
		Seed: 23,
	}

	legacy := base
	legacy.Shards = -1
	legacy.Workers = 1
	ref, err := Sweep(curve, tim, legacy)
	if err != nil {
		t.Fatal(err)
	}
	if ref.Runs() == 0 || ref.Detected == 0 {
		t.Fatalf("degenerate reference sweep: %+v", ref.Tally)
	}

	for _, workers := range []int{1, 2, 7} {
		for _, shards := range []int{0, 1, 4, 16} {
			c := base
			c.Workers = workers
			c.Shards = shards
			rep, err := Sweep(curve, tim, c)
			if err != nil {
				t.Fatalf("workers=%d shards=%d: %v", workers, shards, err)
			}
			if !reflect.DeepEqual(rep, ref) {
				t.Fatalf("workers=%d shards=%d report diverged from legacy serial consumer:\n%+v\nvs\n%+v",
					workers, shards, rep, ref)
			}
		}
	}
}

// TestSweepShardedProgress pins that the sharded consumer still drives
// the Progress callback monotonically up to the grid size.
func TestSweepShardedProgress(t *testing.T) {
	curve := ec.K163()
	var seen []int
	cfg := SweepConfig{
		FromIter: 0, ToIter: 0,
		CycleStride: 173, BitStride: 82,
		Seed:     5,
		Workers:  2,
		Progress: func(done, total int) { seen = append(seen, done) },
	}
	rep, err := Sweep(curve, coproc.DefaultTiming(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(seen) == 0 || seen[len(seen)-1] != rep.Total {
		t.Fatalf("progress never reached the grid size %d: %v", rep.Total, seen)
	}
	for i := 1; i < len(seen); i++ {
		if seen[i] <= seen[i-1] {
			t.Fatalf("progress not monotone: %v", seen)
		}
	}
}
