package fault

import (
	"encoding/binary"
	"fmt"
	"math"

	"medsec/internal/coproc"
	"medsec/internal/trace"
)

// Binary codecs for the sweep tallies, sharing the trace package's
// frame envelope (version byte, kind byte, length prefix, CRC-32) so a
// checkpoint file is one uniform sequence of frames regardless of
// which campaign produced it. Kinds 16/17 are from the non-trace
// range the envelope reserves for other packages.

// Frame kinds used by this package (see trace.EncodeFrame).
const (
	KindTally       byte = 16
	KindSweepReport byte = 17
)

// MarshalBinary serializes the benign/detected/escaped triple.
func (t *Tally) MarshalBinary() ([]byte, error) {
	p := make([]byte, 0, 24)
	p = appendTally(p, *t)
	return trace.EncodeFrame(KindTally, p), nil
}

// UnmarshalBinary restores the triple from MarshalBinary output.
// Corrupt input returns an error wrapping trace.ErrCodec.
func (t *Tally) UnmarshalBinary(data []byte) error {
	payload, err := trace.DecodeFrame(data, KindTally)
	if err != nil {
		return err
	}
	if len(payload) != 24 {
		return fmt.Errorf("%w: tally payload is %d bytes, want 24", trace.ErrCodec, len(payload))
	}
	got, err := readTally(payload)
	if err != nil {
		return err
	}
	*t = got
	return nil
}

// MarshalBinary serializes a full sweep report — tallies, grid
// bounds, per-opcode breakdown and the escape inventory.
func (r *SweepReport) MarshalBinary() ([]byte, error) {
	p := make([]byte, 0, 64+25*len(r.ByOp)+24*len(r.Escapes))
	p = appendTally(p, r.Tally)
	p = binary.LittleEndian.AppendUint64(p, uint64(int64(r.Total)))
	p = binary.LittleEndian.AppendUint64(p, uint64(int64(r.WindowStart)))
	p = binary.LittleEndian.AppendUint64(p, uint64(int64(r.WindowEnd)))
	p = binary.LittleEndian.AppendUint32(p, uint32(len(r.ByOp)))
	for _, ot := range r.ByOp {
		p = append(p, byte(ot.Op))
		p = appendTally(p, ot.Tally)
	}
	p = binary.LittleEndian.AppendUint32(p, uint32(len(r.Escapes)))
	for _, inj := range r.Escapes {
		p = binary.LittleEndian.AppendUint64(p, uint64(int64(inj.Cycle)))
		p = binary.LittleEndian.AppendUint64(p, uint64(int64(inj.Reg)))
		p = binary.LittleEndian.AppendUint64(p, uint64(int64(inj.Bit)))
	}
	return trace.EncodeFrame(KindSweepReport, p), nil
}

// UnmarshalBinary restores a sweep report from MarshalBinary output,
// validating internal consistency (the escape inventory must match
// the escaped count). Corrupt input returns an error wrapping
// trace.ErrCodec.
func (r *SweepReport) UnmarshalBinary(data []byte) error {
	payload, err := trace.DecodeFrame(data, KindSweepReport)
	if err != nil {
		return err
	}
	var next SweepReport
	off := 0
	need := func(n int, what string) error {
		if off+n > len(payload) || n < 0 {
			return fmt.Errorf("%w: truncated %s at offset %d", trace.ErrCodec, what, off)
		}
		return nil
	}
	if err := need(48, "report header"); err != nil {
		return err
	}
	if next.Tally, err = readTally(payload[off:]); err != nil {
		return err
	}
	off += 24
	next.Total = int(int64(binary.LittleEndian.Uint64(payload[off:])))
	next.WindowStart = int(int64(binary.LittleEndian.Uint64(payload[off+8:])))
	next.WindowEnd = int(int64(binary.LittleEndian.Uint64(payload[off+16:])))
	off += 24
	if next.Total < 0 || next.Total > math.MaxInt32 || next.WindowEnd < next.WindowStart {
		return fmt.Errorf("%w: implausible sweep bounds (total %d, window [%d,%d))",
			trace.ErrCodec, next.Total, next.WindowStart, next.WindowEnd)
	}
	if err := need(4, "opcode breakdown length"); err != nil {
		return err
	}
	nOps := int(binary.LittleEndian.Uint32(payload[off:]))
	off += 4
	if err := need(25*nOps, "opcode breakdown"); err != nil {
		return err
	}
	for i := 0; i < nOps; i++ {
		op := coproc.Op(payload[off])
		t, err := readTally(payload[off+1:])
		if err != nil {
			return err
		}
		if i > 0 && op <= next.ByOp[i-1].Op {
			return fmt.Errorf("%w: opcode breakdown not sorted", trace.ErrCodec)
		}
		next.ByOp = append(next.ByOp, OpTally{Op: op, Tally: t})
		off += 25
	}
	if err := need(4, "escape inventory length"); err != nil {
		return err
	}
	nEsc := int(binary.LittleEndian.Uint32(payload[off:]))
	off += 4
	if nEsc != next.Escaped {
		return fmt.Errorf("%w: escape inventory has %d entries, escaped tally is %d",
			trace.ErrCodec, nEsc, next.Escaped)
	}
	if err := need(24*nEsc, "escape inventory"); err != nil {
		return err
	}
	for i := 0; i < nEsc; i++ {
		next.Escapes = append(next.Escapes, Injection{
			Cycle: int(int64(binary.LittleEndian.Uint64(payload[off:]))),
			Reg:   int(int64(binary.LittleEndian.Uint64(payload[off+8:]))),
			Bit:   int(int64(binary.LittleEndian.Uint64(payload[off+16:]))),
		})
		off += 24
	}
	if off != len(payload) {
		return fmt.Errorf("%w: %d trailing payload bytes", trace.ErrCodec, len(payload)-off)
	}
	*r = next
	return nil
}

func appendTally(p []byte, t Tally) []byte {
	p = binary.LittleEndian.AppendUint64(p, uint64(int64(t.Benign)))
	p = binary.LittleEndian.AppendUint64(p, uint64(int64(t.Detected)))
	p = binary.LittleEndian.AppendUint64(p, uint64(int64(t.Escaped)))
	return p
}

// readTally decodes 24 bytes of tally; the caller guarantees length.
func readTally(p []byte) (Tally, error) {
	t := Tally{
		Benign:   int(int64(binary.LittleEndian.Uint64(p))),
		Detected: int(int64(binary.LittleEndian.Uint64(p[8:]))),
		Escaped:  int(int64(binary.LittleEndian.Uint64(p[16:]))),
	}
	if t.Benign < 0 || t.Detected < 0 || t.Escaped < 0 ||
		t.Benign > math.MaxInt32 || t.Detected > math.MaxInt32 || t.Escaped > math.MaxInt32 {
		return Tally{}, fmt.Errorf("%w: implausible tally %+v", trace.ErrCodec, t)
	}
	return t, nil
}
