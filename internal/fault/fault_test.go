package fault

import (
	"testing"

	"medsec/internal/coproc"
	"medsec/internal/ec"
	"medsec/internal/rng"
)

func TestSingleFaultIsCaught(t *testing.T) {
	curve := ec.K163()
	tim := coproc.DefaultTiming()
	d := rng.NewDRBG(1)
	k := curve.Order.RandNonZero(d.Uint64)
	p := curve.RandomPoint(d.Uint64)
	// A fault on X0 at an iteration boundary is certainly live (the
	// next MAdd reads it), must corrupt the result, and must be
	// detected by output validation. (Faults landing on values that
	// are overwritten before use are benign; the campaign test covers
	// the distribution.)
	prog := coproc.BuildLadderProgram(coproc.ProgramOptions{RPC: true})
	start, _ := prog.IterationWindow(tim, 100, 100)
	res, err := RunWithFault(curve, tim, k, p, Injection{Cycle: start, Reg: 0, Bit: 80}, 7)
	if err != nil {
		t.Fatal(err)
	}
	if res != Detected {
		t.Fatalf("mid-ladder fault outcome %v, want detected", res)
	}
}

func TestFaultCampaignNeverEscapes(t *testing.T) {
	// The countermeasure claim: across random single-bit faults, no
	// corrupted result passes validation.
	curve := ec.K163()
	rep, err := Campaign(curve, coproc.DefaultTiming(), 30, 99)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Escaped != 0 {
		t.Fatalf("%d faulty results escaped validation", rep.Escaped)
	}
	if rep.Detected == 0 {
		t.Fatal("campaign detected nothing; injector inert?")
	}
	if rep.Runs != rep.Benign+rep.Detected+rep.Escaped {
		t.Fatal("campaign bookkeeping broken")
	}
}

func TestValidateOutputAcceptsHonestResults(t *testing.T) {
	curve := ec.K163()
	d := rng.NewDRBG(3)
	for i := 0; i < 5; i++ {
		k := curve.Order.RandNonZero(d.Uint64)
		p := curve.RandomPoint(d.Uint64)
		q, err := curve.ScalarMulLadder(k, p, ec.LadderOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if err := ValidateOutput(curve, q); err != nil {
			t.Fatalf("honest result rejected: %v", err)
		}
	}
}

func TestInjectionValidation(t *testing.T) {
	curve := ec.K163()
	tim := coproc.DefaultTiming()
	d := rng.NewDRBG(4)
	k := curve.Order.RandNonZero(d.Uint64)
	p := curve.RandomPoint(d.Uint64)
	if _, err := RunWithFault(curve, tim, k, p, Injection{Cycle: 10, Reg: 9, Bit: 0}, 1); err == nil {
		t.Fatal("out-of-range register accepted")
	}
	if _, err := RunWithFault(curve, tim, k, p, Injection{Cycle: 10, Reg: 0, Bit: 200}, 1); err == nil {
		t.Fatal("out-of-range bit accepted")
	}
	if _, err := RunWithFault(curve, tim, k, p, Injection{Cycle: 1 << 30, Reg: 0, Bit: 0}, 1); err == nil {
		t.Fatal("unreachable cycle accepted")
	}
}

func TestResultString(t *testing.T) {
	for _, r := range []Result{Benign, Detected, Escaped, Result(9)} {
		if r.String() == "" {
			t.Fatal("empty result name")
		}
	}
}
