package fault

import (
	"errors"
	"reflect"
	"testing"

	"medsec/internal/coproc"
	"medsec/internal/ec"
	"medsec/internal/rng"
)

// TestSweepExhaustiveNoEscapes is the countermeasure claim at sweep
// scale: a stratified grid over the final ladder iteration — more than
// ten times the historical 30-sample campaign — classifies every
// injection and none escapes output validation.
func TestSweepExhaustiveNoEscapes(t *testing.T) {
	curve := ec.K163()
	rep, err := Sweep(curve, coproc.DefaultTiming(), SweepConfig{
		FromIter: 0, ToIter: 0, // final iteration
		CycleStride: 29, BitStride: 54,
		Seed: 99,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Runs() != rep.Total || rep.Total < 300 {
		t.Fatalf("sweep covered %d/%d injections, want >= 300", rep.Runs(), rep.Total)
	}
	if rep.Escaped != 0 || len(rep.Escapes) != 0 {
		t.Fatalf("%d faulty results escaped validation: %v", rep.Escaped, rep.Escapes)
	}
	if rep.Detected == 0 {
		t.Fatal("sweep detected nothing; injector inert?")
	}
	if rep.WindowEnd <= rep.WindowStart {
		t.Fatalf("bad window [%d,%d)", rep.WindowStart, rep.WindowEnd)
	}
	// The per-instruction-class breakdown partitions the totals.
	var sum Tally
	for _, ot := range rep.ByOp {
		sum.Benign += ot.Benign
		sum.Detected += ot.Detected
		sum.Escaped += ot.Escaped
	}
	if sum != rep.Tally {
		t.Fatalf("ByOp breakdown %+v does not partition totals %+v", sum, rep.Tally)
	}
	if len(rep.ByOp) < 2 {
		t.Fatalf("only %d instruction classes in a full-iteration window", len(rep.ByOp))
	}
	if rep.String() == "" {
		t.Fatal("empty report rendering")
	}
}

// TestSweepDeterminismAcrossWorkers pins the campaign contract for the
// fault engine: the report — counts, per-class breakdown, escape list
// — is bit-identical for 1, 2 and 7 workers.
func TestSweepDeterminismAcrossWorkers(t *testing.T) {
	curve := ec.K163()
	cfg := SweepConfig{
		FromIter: 0, ToIter: 0,
		CycleStride: 97, BitStride: 81,
		Seed: 7,
	}
	var ref *SweepReport
	for _, w := range []int{1, 2, 7} {
		c := cfg
		c.Workers = w
		rep, err := Sweep(curve, coproc.DefaultTiming(), c)
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		if ref == nil {
			ref = rep
			continue
		}
		if !reflect.DeepEqual(rep, ref) {
			t.Fatalf("workers=%d report diverged:\n%+v\nvs\n%+v", w, rep, ref)
		}
	}
	if ref.Runs() == 0 {
		t.Fatal("empty sweep")
	}
}

// TestSweepMatchesRunWithFault cross-validates the checkpoint/resume
// fast path against the historical full-simulation path: the same
// injections on the same computation must classify identically.
func TestSweepMatchesRunWithFault(t *testing.T) {
	curve := ec.K163()
	tim := coproc.DefaultTiming()
	const seed = 13
	cfg := SweepConfig{
		FromIter: 0, ToIter: 0,
		CycleStride: 241, RegStride: 3, BitStride: 82,
		Seed: seed,
	}
	rep, err := Sweep(curve, tim, cfg)
	if err != nil {
		t.Fatal(err)
	}

	// Replicate the sweep's computation and classify the same grid
	// with RunWithFault (full reference + full faulted run each).
	d := rng.NewDRBG(seed)
	k := curve.Order.RandNonZero(d.Uint64)
	p := curve.RandomPoint(d.Uint64)
	trng := uint64(seed) ^ 0xF1A7_5EED
	var slow Tally
	for c := rep.WindowStart; c < rep.WindowEnd; c += 241 {
		for r := 0; r < coproc.NumRegs; r += 3 {
			for b := 0; b < 163; b += 82 {
				res, err := RunWithFault(curve, tim, k, p, Injection{Cycle: c, Reg: r, Bit: b}, trng)
				if err != nil {
					t.Fatal(err)
				}
				switch res {
				case Benign:
					slow.Benign++
				case Detected:
					slow.Detected++
				case Escaped:
					slow.Escaped++
				}
			}
		}
	}
	if slow != rep.Tally {
		t.Fatalf("resume path %+v != full-simulation path %+v", rep.Tally, slow)
	}
	if slow.Runs() != rep.Total {
		t.Fatalf("grid mismatch: %d vs %d", slow.Runs(), rep.Total)
	}
}

// TestSweepConfigValidation rejects malformed windows and grids.
func TestSweepConfigValidation(t *testing.T) {
	curve := ec.K163()
	tim := coproc.DefaultTiming()
	if _, err := Sweep(curve, tim, SweepConfig{FromIter: 0, ToIter: 5}); err == nil {
		t.Fatal("inverted window accepted")
	}
	if _, err := Sweep(curve, tim, SweepConfig{FromIter: 163}); err == nil {
		t.Fatal("window beyond key length accepted")
	}
	if _, err := Sweep(curve, tim, SweepConfig{ToIter: -1, FromIter: -1}); err == nil {
		t.Fatal("negative window accepted")
	}
}

// TestInjectionErrorTyped pins the satellite contract: invalid
// injections — including negative cycles — surface as *InjectionError.
func TestInjectionErrorTyped(t *testing.T) {
	curve := ec.K163()
	tim := coproc.DefaultTiming()
	d := rng.NewDRBG(4)
	k := curve.Order.RandNonZero(d.Uint64)
	p := curve.RandomPoint(d.Uint64)
	for _, inj := range []Injection{
		{Cycle: -1, Reg: 0, Bit: 0},
		{Cycle: 10, Reg: coproc.NumRegs, Bit: 0},
		{Cycle: 10, Reg: -1, Bit: 0},
		{Cycle: 10, Reg: 0, Bit: 163},
		{Cycle: 10, Reg: 0, Bit: -5},
		{Cycle: 1 << 30, Reg: 0, Bit: 0}, // beyond program end
	} {
		_, err := RunWithFault(curve, tim, k, p, inj, 1)
		var ie *InjectionError
		if !errors.As(err, &ie) {
			t.Fatalf("injection %+v: error %v is not *InjectionError", inj, err)
		}
		if ie.Error() == "" {
			t.Fatal("empty error rendering")
		}
	}
}

// TestCampaignWorkersIdentical pins the rebuilt Campaign: the engine
// version reproduces identical reports for any worker count (and, by
// seed-draw order, the historical serial loop).
func TestCampaignWorkersIdentical(t *testing.T) {
	curve := ec.K163()
	tim := coproc.DefaultTiming()
	var ref *CampaignReport
	for _, w := range []int{1, 2, 7} {
		rep, err := CampaignWorkers(curve, tim, 6, 42, w)
		if err != nil {
			t.Fatal(err)
		}
		if ref == nil {
			ref = rep
			continue
		}
		if *rep != *ref {
			t.Fatalf("workers=%d: %+v != %+v", w, rep, ref)
		}
	}
}

// BenchmarkCampaignPerInjection prices the historical path: one full
// reference run plus one full faulted run per random injection.
func BenchmarkCampaignPerInjection(b *testing.B) {
	curve := ec.K163()
	tim := coproc.DefaultTiming()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep, err := Campaign(curve, tim, 5, uint64(i))
		if err != nil {
			b.Fatal(err)
		}
		if rep.Runs != 5 {
			b.Fatal("short campaign")
		}
	}
	b.ReportMetric(float64(5*b.N)/b.Elapsed().Seconds(), "inj/s")
}

// BenchmarkSweepPerInjection prices the checkpoint/resume path: one
// shared reference run, then suffix-only simulation per injection.
func BenchmarkSweepPerInjection(b *testing.B) {
	curve := ec.K163()
	tim := coproc.DefaultTiming()
	var runs int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep, err := Sweep(curve, tim, SweepConfig{
			FromIter: 0, ToIter: 0,
			CycleStride: 29, BitStride: 54,
			Seed: uint64(i),
		})
		if err != nil {
			b.Fatal(err)
		}
		runs += rep.Runs()
	}
	b.ReportMetric(float64(runs)/b.Elapsed().Seconds(), "inj/s")
}
