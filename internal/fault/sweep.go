package fault

import (
	"context"
	"fmt"
	"sort"

	"medsec/internal/campaign"
	"medsec/internal/coproc"
	"medsec/internal/ec"
	"medsec/internal/obs"
	"medsec/internal/rng"
)

// Sweep is the exhaustive/stratified fault-space map. Where Campaign
// samples random (computation, fault) pairs, Sweep fixes ONE
// computation — one scalar, one base point, one TRNG stream, all
// derived from the seed — and enumerates the (cycle × register × bit)
// grid of single-bit faults over a ladder-iteration window, classifying
// every injection as benign/detected/escaped under output validation.
//
// Two structural optimizations make exhaustive coverage affordable:
//
//   - one shared reference run per sweep (the historical code paid a
//     full fault-free simulation per sample);
//   - checkpoint/resume: the reference run is checkpointed at
//     instruction boundaries (coproc.RunCheckpointed) and every faulted
//     run resumes from the last checkpoint before its injection cycle
//     (coproc.Resume), simulating only the suffix the fault can affect.
//     For the late-iteration windows that matter for Bellcore-style
//     attacks the suffix is a few dozen instructions, not the whole
//     ladder.
//
// Determinism: jobs are enumerated in a fixed grid order and each
// faulted run is a pure function of its injection (fresh CPU, fresh
// TRNG stream fast-forwarded by the checkpoint), so the report is
// bit-identical for any worker count.
type SweepConfig struct {
	// FromIter/ToIter bound the ladder-iteration window swept,
	// numbered in processing order from 162 down to 0; FromIter must
	// be >= ToIter. The zero value sweeps the final iteration — the
	// suffix a Bellcore-style attacker targets and the cheapest to
	// resume.
	FromIter, ToIter int
	// CycleStride/RegStride/BitStride stratify the grid: every Nth
	// cycle of the window, every Nth register, every Nth bit. Values
	// <= 0 mean 1 (exhaustive in that dimension).
	CycleStride, RegStride, BitStride int
	// Workers is the campaign pool size; <= 0 selects GOMAXPROCS.
	Workers int
	// Shards selects the sharded reduction of the sweep tallies: 0
	// selects campaign.DefaultShards, a positive value fixes the shard
	// count (the integer tallies are identical for any value), and a
	// negative value selects the legacy serial consumer. In every mode
	// the report is bit-identical for any worker count; the only
	// shard-dependent detail is nothing at all here — the fold is pure
	// integer counting and escape-list concatenation, so unlike the
	// floating-point campaigns the sweep report does not even vary at
	// the rounding level across shard counts.
	Shards int
	// Seed derives the swept computation: scalar, base point and the
	// device TRNG stream.
	Seed uint64
	// Progress, when non-nil, is called serially after each consumed
	// injection with (done, total).
	Progress func(done, total int)
	// Metrics, when non-nil, receives sweep instrumentation: counters
	// fault_injections (completed faulted runs),
	// fault_checkpoint_resumed_cycles (simulation cycles skipped by
	// resuming from the reference run's checkpoints) and the tally
	// counters fault_benign / fault_detected / fault_escaped, plus a
	// fault_grid_total gauge and the campaign_* engine instruments.
	// Nil (the default) costs nothing; the report is bit-identical
	// either way.
	Metrics *obs.Registry
	// Ctx, when non-nil, makes the sweep interruptible: on cancellation
	// (SIGINT/SIGTERM in the CLIs) the engine drains its worker pool
	// and Sweep returns campaign.ErrInterrupted. A nil Ctx (the
	// default) is never checked.
	Ctx context.Context
}

// Tally is one benign/detected/escaped count triple.
type Tally struct {
	Benign   int
	Detected int
	Escaped  int
}

// Runs returns the total injections behind the tally.
func (t Tally) Runs() int { return t.Benign + t.Detected + t.Escaped }

// OpTally is the per-instruction-class breakdown entry: how faults
// injected while instructions of one opcode were executing fared.
type OpTally struct {
	Op coproc.Op
	Tally
}

// SweepReport aggregates an exhaustive fault-space sweep.
type SweepReport struct {
	Tally
	// Total is the grid size; Runs() == Total unless the sweep was
	// stopped early.
	Total int
	// WindowStart/WindowEnd are the swept cycle interval [start, end).
	WindowStart, WindowEnd int
	// ByOp is the per-instruction-class breakdown, sorted by opcode.
	ByOp []OpTally
	// Escapes lists every injection whose corrupted result passed
	// validation — the countermeasure's failure inventory (empty for a
	// sound implementation).
	Escapes []Injection
}

// String renders the report summary with the per-class breakdown.
func (r *SweepReport) String() string {
	s := fmt.Sprintf("sweep: %d injections over cycles [%d,%d): %d benign, %d detected, %d escaped",
		r.Runs(), r.WindowStart, r.WindowEnd, r.Benign, r.Detected, r.Escaped)
	for _, ot := range r.ByOp {
		s += fmt.Sprintf("\n  %-8v %5d benign %5d detected %5d escaped",
			ot.Op, ot.Benign, ot.Detected, ot.Escaped)
	}
	return s
}

// Sweep runs the exhaustive fault-space map described on SweepConfig.
func Sweep(curve *ec.Curve, tim coproc.Timing, cfg SweepConfig) (*SweepReport, error) {
	if cfg.FromIter < cfg.ToIter || cfg.ToIter < 0 || cfg.FromIter > 162 {
		return nil, fmt.Errorf("fault: iteration window %d..%d invalid", cfg.FromIter, cfg.ToIter)
	}
	strideOr1 := func(s int) int {
		if s <= 0 {
			return 1
		}
		return s
	}
	cs, rs, bs := strideOr1(cfg.CycleStride), strideOr1(cfg.RegStride), strideOr1(cfg.BitStride)

	prog := coproc.BuildLadderProgram(coproc.ProgramOptions{RPC: true})
	start, end := prog.IterationWindow(tim, cfg.FromIter, cfg.ToIter)
	spans := prog.Spans(tim)

	// The swept computation, fixed for the whole grid.
	d := rng.NewDRBG(cfg.Seed)
	k := curve.Order.RandNonZero(d.Uint64)
	p := curve.RandomPoint(d.Uint64)
	trngSeed := cfg.Seed ^ 0xF1A7_5EED

	// One reference run, checkpointed at every instruction boundary up
	// to the window end (later checkpoints can never be resumed from).
	ref := coproc.NewCPU(tim)
	ref.Rand = rng.NewDRBG(trngSeed).Uint64
	ref.SetOperandConstants(p.X, curve.B, p.Y)
	snaps, _, err := ref.RunCheckpointed(prog, k, func(idx, cycle int) bool { return cycle < end })
	if err != nil {
		return nil, err
	}
	want := ec.Point{X: ref.ResultX(prog), Y: ref.ResultY(prog)}

	// Grid enumeration: cycle-major, then register, then bit.
	nCycles := (end - start + cs - 1) / cs
	nRegs := (coproc.NumRegs + rs - 1) / rs
	nBits := (163 + bs - 1) / bs
	total := nCycles * nRegs * nBits
	if total == 0 {
		return nil, fmt.Errorf("fault: empty sweep grid")
	}

	rep := &SweepReport{Total: total, WindowStart: start, WindowEnd: end}
	byOp := map[coproc.Op]*Tally{}

	// Instruments, resolved once per sweep (nil-safe no-ops when
	// cfg.Metrics is nil).
	mInjections := cfg.Metrics.Counter("fault_injections")
	mResumedCycles := cfg.Metrics.Counter("fault_checkpoint_resumed_cycles")
	cfg.Metrics.Gauge("fault_grid_total").Set(float64(total))

	prepare := func(idx int) (Injection, error) {
		c := idx / (nRegs * nBits)
		r := (idx / nBits) % nRegs
		b := idx % nBits
		return Injection{Cycle: start + c*cs, Reg: r * rs, Bit: b * bs}, nil
	}
	acquire := func(worker, idx int, inj Injection) (Result, error) {
		if err := inj.validate(); err != nil {
			return 0, err
		}
		// Resume from the last checkpoint at or before the injection
		// cycle. Checkpoint cycles are strictly increasing instruction
		// starts, so binary search finds it.
		si := sort.Search(len(snaps), func(i int) bool { return snaps[i].Cycle > inj.Cycle }) - 1
		if si < 0 {
			return 0, &InjectionError{Inj: inj, Reason: "cycle before program start"}
		}
		mInjections.Inc()
		// Every cycle before the resumed checkpoint is one the faulted
		// run did not have to re-simulate — the sweep's headline saving.
		mResumedCycles.Add(int64(snaps[si].Cycle))
		cpu := coproc.NewCPU(tim)
		cpu.Rand = rng.NewDRBG(trngSeed).Uint64
		cpu.SetOperandConstants(p.X, curve.B, p.Y)
		injected := false
		cpu.Probe = func(ev *coproc.CycleEvent) {
			if !injected && ev.Cycle == inj.Cycle {
				cpu.Regs[inj.Reg] = cpu.Regs[inj.Reg].SetBit(inj.Bit, cpu.Regs[inj.Reg].Bit(inj.Bit)^1)
				injected = true
			}
		}
		if _, err := cpu.Resume(prog, k, snaps[si]); err != nil {
			return 0, err
		}
		if !injected {
			return 0, &InjectionError{Inj: inj, Reason: "cycle beyond program end"}
		}
		got := ec.Point{X: cpu.ResultX(prog), Y: cpu.ResultY(prog)}
		if got.Equal(want) {
			return Benign, nil
		}
		if err := ValidateOutput(curve, got); err != nil {
			return Detected, nil
		}
		return Escaped, nil
	}
	// tallyIn classifies one injection's result into a tally triple and
	// the per-opcode breakdown — shared by the serial consumer and the
	// per-shard fold.
	tallyIn := func(t *Tally, ops map[coproc.Op]*Tally, escapes *[]Injection, inj Injection, res Result) {
		op := opAtCycle(spans, inj.Cycle)
		ot := ops[op]
		if ot == nil {
			ot = &Tally{}
			ops[op] = ot
		}
		switch res {
		case Benign:
			t.Benign++
			ot.Benign++
		case Detected:
			t.Detected++
			ot.Detected++
		case Escaped:
			t.Escaped++
			ot.Escaped++
			*escapes = append(*escapes, inj)
		}
	}

	if cfg.Shards < 0 {
		// Legacy serial consumer.
		consume := func(idx int, inj Injection, res Result) (bool, error) {
			tallyIn(&rep.Tally, byOp, &rep.Escapes, inj, res)
			if cfg.Progress != nil {
				cfg.Progress(idx+1, total)
			}
			return false, nil
		}
		if _, err := campaign.Run(0, total, campaign.Config{Workers: cfg.Workers, Metrics: cfg.Metrics, Ctx: cfg.Ctx}, prepare, acquire, consume); err != nil {
			return nil, err
		}
	} else {
		// Sharded reduction: per-shard tallies, opcode maps and escape
		// lists fold on the worker goroutines and merge in shard order.
		// Counts add and the escape lists concatenate (each shard's in
		// grid order), so the merged report is bit-identical to the
		// serial consumer's for any worker or shard count.
		type shardTally struct {
			Tally
			byOp    map[coproc.Op]*Tally
			escapes []Injection
		}
		var progress func(done int)
		if cfg.Progress != nil {
			progress = func(done int) { cfg.Progress(done, total) }
		}
		scfg := campaign.ShardedConfig{Workers: cfg.Workers, Shards: cfg.Shards, Progress: progress, Metrics: cfg.Metrics, Ctx: cfg.Ctx}
		_, err := campaign.RunSharded(0, total, scfg, prepare, acquire,
			func(shard int) *shardTally { return &shardTally{byOp: map[coproc.Op]*Tally{}} },
			func(shard int, st *shardTally, idx int, inj Injection, res Result) error {
				tallyIn(&st.Tally, st.byOp, &st.escapes, inj, res)
				return nil
			},
			func(shard int, st *shardTally) error {
				rep.Benign += st.Benign
				rep.Detected += st.Detected
				rep.Escaped += st.Escaped
				for op, t := range st.byOp {
					agg := byOp[op]
					if agg == nil {
						agg = &Tally{}
						byOp[op] = agg
					}
					agg.Benign += t.Benign
					agg.Detected += t.Detected
					agg.Escaped += t.Escaped
				}
				rep.Escapes = append(rep.Escapes, st.escapes...)
				return nil
			})
		if err != nil {
			return nil, err
		}
	}
	for op, t := range byOp {
		rep.ByOp = append(rep.ByOp, OpTally{Op: op, Tally: *t})
	}
	sort.Slice(rep.ByOp, func(i, j int) bool { return rep.ByOp[i].Op < rep.ByOp[j].Op })
	// Outcome tallies (single Add per sweep, after the merge).
	cfg.Metrics.Counter("fault_benign").Add(int64(rep.Benign))
	cfg.Metrics.Counter("fault_detected").Add(int64(rep.Detected))
	cfg.Metrics.Counter("fault_escaped").Add(int64(rep.Escaped))
	return rep, nil
}

// opAtCycle returns the opcode of the instruction executing at the
// given cycle (spans are contiguous and sorted by Start).
func opAtCycle(spans []coproc.InstrSpan, cycle int) coproc.Op {
	i := sort.Search(len(spans), func(i int) bool { return spans[i].End > cycle })
	if i == len(spans) {
		return spans[len(spans)-1].Op
	}
	return spans[i].Op
}
