package fleet

import (
	"testing"

	"medsec/internal/design"
	"medsec/internal/protocol"
	"medsec/internal/rng"
)

// TestLabSteadyStateAllocs gates the pooled session state: re-arming
// a worker lab for the next session — link pair reset, wire rebind —
// must allocate nothing. The protocol run itself still allocates its
// wire messages; the ceiling pins that cost so it cannot silently
// regress (it was ~50 allocations per session when pinned; the bound
// leaves headroom for small protocol changes, not for a leak back to
// per-session pair construction).
func TestLabSteadyStateAllocs(t *testing.T) {
	cfg := testFleet(4)
	cache := design.NewCache()
	noms, err := nominals(cfg, cache)
	if err != nil {
		t.Fatal(err)
	}
	l := newLab(cache)
	dp := cfg.deviceParams(0)
	st, err := cache.Build(dp.point)
	if err != nil {
		t.Fatal(err)
	}
	src := rng.NewDRBG(1).Uint64
	mul := &protocol.SoftwareMultiplier{Curve: st.Curve, Rand: src}
	rdr, err := protocol.NewReader(st.Curve, mul, src)
	if err != nil {
		t.Fatal(err)
	}
	dev, err := protocol.NewTag(st.Curve, mul, src, rdr.Pub)
	if err != nil {
		t.Fatal(err)
	}
	rdr.Register(dev.Pub)

	// The pool-reset path: exactly zero allocations.
	if n := testing.AllocsPerRun(100, func() {
		if err := l.pair.Reset(st.Channel, st.ARQ, 99); err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Fatalf("lab re-arm allocates %v times per session, want 0", n)
	}

	// The full session, on the pooled lab: a pinned ceiling.
	out := deviceOutcome{latencyUS: make([]int64, 0, 64)}
	n := testing.AllocsPerRun(20, func() {
		out.latencyUS = out.latencyUS[:0]
		if err := l.session(st, noms[0], dev, rdr, 12345, false, &out); err != nil {
			t.Fatal(err)
		}
	})
	const ceiling = 64
	if n > ceiling {
		t.Fatalf("session allocates %v times on the pooled lab, ceiling is %d", n, ceiling)
	}
}
