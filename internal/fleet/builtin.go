package fleet

import "medsec/internal/design"

// HospitalFleet returns the built-in heterogeneous fleet cmd/fleetlab
// simulates by default: four cohorts spanning the paper's design
// space — two pacemaker generations on K-163 and B-163, a body-area
// sensor cohort on a wider datapath, and a legacy cohort with the
// unbalanced circuit — with per-device channel jitter and battery-age
// spread. devices is the total population (cohort sizes scale
// proportionally); loss is the nominal ward-channel loss rate.
func HospitalFleet(devices int, loss float64) Config {
	share := func(frac float64) int {
		n := int(float64(devices) * frac)
		if n < 1 {
			n = 1
		}
		return n
	}

	pacemaker := design.Defaults()
	pacemaker.Channel = design.ChannelIID
	pacemaker.Loss = loss

	legacyGen := pacemaker
	legacyGen.Curve = "B-163"
	legacyGen.Channel = design.ChannelBursty

	sensor := pacemaker
	sensor.DigitSize = 8
	sensor.Battery = design.BatteryNone
	sensor.DistanceM = 2

	unbalanced := pacemaker
	unbalanced.BalancedMux = false
	unbalanced.ResidualImbalance = 0.05

	cohorts := []Cohort{
		{
			Name: "pacemaker-r2", Devices: share(0.45), Point: pacemaker,
			SessionsPerDay: 2, BatteryAgeYears: 3, AgeSpreadYears: 2,
			FirmwareRev: "r2", SpecYears: 10,
			LossJitter: loss / 2, DistanceJitterM: 0.4,
		},
		{
			Name: "pacemaker-r1", Devices: share(0.20), Point: legacyGen,
			SessionsPerDay: 2, BatteryAgeYears: 6, AgeSpreadYears: 2,
			FirmwareRev: "r1", SpecYears: 10,
			LossJitter: loss / 2, DistanceJitterM: 0.4,
		},
		{
			Name: "ban-sensor", Devices: share(0.25), Point: sensor,
			SessionsPerDay: 24, FirmwareRev: "r3",
			LossJitter: loss / 2, DistanceJitterM: 0.8,
		},
		{
			Name: "legacy-r0", Devices: share(0.10), Point: unbalanced,
			SessionsPerDay: 1, BatteryAgeYears: 8, AgeSpreadYears: 1,
			FirmwareRev: "r0", SpecYears: 10,
			LossJitter: loss / 2, DistanceJitterM: 0.4,
		},
	}
	// Land the population exactly on devices: the first cohort absorbs
	// the rounding remainder.
	n := 0
	for _, co := range cohorts {
		n += co.Devices
	}
	if diff := devices - n; diff > 0 {
		cohorts[0].Devices += diff
	}

	return Config{
		Cohorts:           cohorts,
		SessionsPerDevice: 3,
		Storm:             &StormConfig{Sessions: 2, LossBoost: 0.2},
		Seed:              1,
	}
}
