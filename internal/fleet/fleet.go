// Package fleet is the population-scale session engine: it simulates
// N heterogeneous implanted devices — cohorts of design.Point variants
// crossed with channel profiles, battery ages and firmware revisions —
// over longitudinal duty cycles, and folds the per-device session
// outcomes into exactly mergeable fleet accumulators.
//
// The paper evaluates its energy/security trade-offs per device; the
// deployment it targets is a hospital network or national fleet of
// pacemakers. This package answers the population questions a single
// run cannot: the p99 authentication latency under 10% loss, the
// fleet-wide security energy budget, the fraction of devices whose
// battery outlives its spec.
//
// # Determinism and merge semantics
//
// Every per-device quantity is a pure function of (Config, device
// index): cohort membership, channel jitter, battery age, all session
// seeds. Quantities that must survive re-partitioning are integers —
// energy is quantized to picojoules, latency to microseconds, battery
// lifetime to centi-years — because integer addition is associative
// and commutative where float addition is not. A fleet report is
// therefore bit-identical for any worker count, any internal shard
// count, and any cross-process shard partition: simulating devices
// [0, N) in one process or merging S disjoint shard checkpoints
// produces byte-identical rendered reports (the CI fleet-smoke job
// diffs them).
//
// # Throughput
//
// Three mechanisms keep a million-device fleet tractable: the
// design.Cache builds each distinct hardware configuration exactly
// once (devices differ per-cohort only in specialization knobs — loss
// jitter, distance, seeds); each worker owns a pooled session lab
// whose link pair is Reset in place instead of reallocated; and
// execution runs on campaign.RunSharded with per-shard accumulators.
package fleet

import (
	"fmt"

	"medsec/internal/design"
	"medsec/internal/rng"
)

// Cohort is one homogeneous slice of the fleet: Devices implants
// sharing a hardware design point, a duty cycle, and a deployment
// vintage. Per-device heterogeneity inside a cohort comes from the
// jitter knobs — all of which are design-cache specialization knobs,
// so a cohort of any size pays exactly one Build().
type Cohort struct {
	// Name labels the cohort in reports (must be unique).
	Name string `json:"name"`
	// Devices is the cohort's population.
	Devices int `json:"devices"`
	// Point is the cohort's hardware/protocol design point. Per-device
	// seeds and channel jitter are applied on top of it.
	Point design.Point `json:"point"`
	// SessionsPerDay is the longitudinal duty cycle the battery model
	// prices (interrogations, telemetry check-ins).
	SessionsPerDay float64 `json:"sessions_per_day"`
	// BatteryAgeYears is the cohort's mean battery age at simulation
	// time; AgeSpreadYears spreads individual devices uniformly in
	// [age-spread, age+spread] (deterministically per device).
	BatteryAgeYears float64 `json:"battery_age_years"`
	AgeSpreadYears  float64 `json:"age_spread_years,omitempty"`
	// FirmwareRev tags the cohort's firmware generation (report label).
	FirmwareRev string `json:"firmware_rev,omitempty"`
	// SpecYears is the device's rated service life; a device "outlives
	// spec" when battery age + remaining security lifetime covers it.
	SpecYears float64 `json:"spec_years"`
	// LossJitter perturbs each device's channel loss uniformly by
	// ±LossJitter (clamped to [0, 1]); DistanceJitterM does the same
	// for link distance. Both are specialization knobs — they never
	// split the build cache.
	LossJitter      float64 `json:"loss_jitter,omitempty"`
	DistanceJitterM float64 `json:"distance_jitter_m,omitempty"`
}

// StormConfig models the re-authentication storm after a reader/
// programmer outage: every device re-authenticates Sessions extra
// times over a channel degraded by LossBoost (congested band, crowded
// ward).
type StormConfig struct {
	Sessions  int     `json:"sessions"`
	LossBoost float64 `json:"loss_boost"`
}

// Config is one fleet experiment. The JSON-visible fields are the
// experiment identity — they are embedded in shard checkpoints and
// compared on merge/resume. Runtime knobs (workers, shards, paths)
// live in RunOptions, never in the identity.
type Config struct {
	Cohorts []Cohort `json:"cohorts"`
	// SessionsPerDevice is the number of nominal-channel sessions each
	// device runs.
	SessionsPerDevice int `json:"sessions_per_device"`
	// Storm, when non-nil, appends a re-auth storm to every device.
	Storm *StormConfig `json:"storm,omitempty"`
	// Seed is the fleet master seed; every per-device stream derives
	// from it.
	Seed uint64 `json:"seed"`
}

// TotalDevices returns the fleet population.
func (c Config) TotalDevices() int {
	n := 0
	for _, co := range c.Cohorts {
		n += co.Devices
	}
	return n
}

// Validate checks the fleet definition and names the offending knob.
func (c Config) Validate() error {
	if len(c.Cohorts) == 0 {
		return fmt.Errorf("fleet: no cohorts")
	}
	seen := map[string]bool{}
	for i, co := range c.Cohorts {
		if co.Name == "" {
			return fmt.Errorf("fleet: cohort %d has no name", i)
		}
		if seen[co.Name] {
			return fmt.Errorf("fleet: duplicate cohort name %q", co.Name)
		}
		seen[co.Name] = true
		if co.Devices < 1 {
			return fmt.Errorf("fleet: cohort %q has %d devices", co.Name, co.Devices)
		}
		if err := co.Point.Validate(); err != nil {
			return fmt.Errorf("fleet: cohort %q: %w", co.Name, err)
		}
		if co.SessionsPerDay < 0 || co.BatteryAgeYears < 0 || co.AgeSpreadYears < 0 ||
			co.SpecYears < 0 || co.LossJitter < 0 || co.DistanceJitterM < 0 {
			return fmt.Errorf("fleet: cohort %q has a negative knob", co.Name)
		}
		if co.LossJitter > 0 && co.Point.Channel == design.ChannelPerfect {
			return fmt.Errorf("fleet: cohort %q jitters loss on a perfect channel", co.Name)
		}
	}
	if c.SessionsPerDevice < 1 {
		return fmt.Errorf("fleet: SessionsPerDevice %d must be at least 1", c.SessionsPerDevice)
	}
	if c.Storm != nil {
		if c.Storm.Sessions < 1 {
			return fmt.Errorf("fleet: storm with %d sessions", c.Storm.Sessions)
		}
		if c.Storm.LossBoost < 0 || c.Storm.LossBoost > 1 {
			return fmt.Errorf("fleet: storm LossBoost %v out of range [0, 1]", c.Storm.LossBoost)
		}
	}
	return nil
}

// cohortOf maps a global device index to its cohort (cumulative-count
// lookup; cohort blocks are contiguous in index space).
func (c Config) cohortOf(idx int) (Cohort, int) {
	for ci, co := range c.Cohorts {
		if idx < co.Devices {
			return co, ci
		}
		idx -= co.Devices
	}
	panic(fmt.Sprintf("fleet: device index %d outside fleet", idx))
}

// Per-device substream tags (design.MixSeed third argument). Session
// streams use 100+rep and stormStream+rep, so tags below 100 are
// reserved for device-level knobs.
const (
	streamKnobs   = 11 // channel jitter, battery age
	streamSeed    = 12 // design point noise seed
	streamTRNG    = 13 // design point TRNG seed
	streamParties = 21 // device/reader key generation + protocol DRBG
	streamSession = 100
	streamStorm   = 1 << 20
)

// u01 maps one DRBG draw to [0, 1).
func u01(d *rng.DRBG) float64 { return float64(d.Uint64()>>11) * (1.0 / (1 << 53)) }

// deviceParams is the fully specialized per-device configuration —
// a pure function of (Config, idx).
type deviceParams struct {
	cohort   int
	point    design.Point
	ageYears float64
}

// deviceParams derives device idx's specialized design point and
// battery age from the per-device knob stream.
func (c Config) deviceParams(idx int) deviceParams {
	co, ci := c.cohortOf(idx)
	p := co.Point
	d := rng.NewDRBG(design.MixSeed(c.Seed, idx, streamKnobs))
	if co.LossJitter > 0 {
		l := p.Loss + (2*u01(d)-1)*co.LossJitter
		if l < 0 {
			l = 0
		}
		if l > 1 {
			l = 1
		}
		p.Loss = l
	}
	if co.DistanceJitterM > 0 {
		dist := p.DistanceM + (2*u01(d)-1)*co.DistanceJitterM
		if dist < 0.1 {
			dist = 0.1
		}
		p.DistanceM = dist
	}
	age := co.BatteryAgeYears
	if co.AgeSpreadYears > 0 {
		age += (2*u01(d) - 1) * co.AgeSpreadYears
		if age < 0 {
			age = 0
		}
	}
	p.Name = co.Name
	p.Seed = design.MixSeed(c.Seed, idx, streamSeed)
	p.TRNGSeed = design.MixSeed(c.Seed, idx, streamTRNG)
	return deviceParams{cohort: ci, point: p, ageYears: age}
}

// stormPoint derives the degraded-channel variant of a device point —
// another specialization of the same build identity (or of the IID
// identity when the base channel is perfect).
func stormPoint(p design.Point, boost float64) design.Point {
	sp := p
	if sp.Channel == design.ChannelPerfect {
		sp.Channel = design.ChannelIID
	}
	sp.Loss += boost
	if sp.Loss > 1 {
		sp.Loss = 1
	}
	return sp
}
