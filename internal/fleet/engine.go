package fleet

import (
	"context"
	"math"

	"medsec/internal/battery"
	"medsec/internal/campaign"
	"medsec/internal/design"
	"medsec/internal/link"
	"medsec/internal/obs"
	"medsec/internal/protocol"
	"medsec/internal/rng"
)

// RunOptions are the runtime knobs of one engine invocation — they
// shape how the work executes, never what it computes, so none of
// them is part of the experiment identity.
type RunOptions struct {
	// Workers is the acquisition pool size (<= 0: GOMAXPROCS).
	Workers int
	// Shards is the internal reduction shard count (<= 0:
	// campaign.DefaultShards). Because the fleet accumulator is
	// integer-exact, results are bit-identical across shard counts,
	// not merely rounding-equal.
	Shards int
	// ShardIndex/ShardCount select a cross-process slice: this
	// invocation simulates the ShardIndex-th of ShardCount contiguous
	// device blocks (0/0 or 0/1 means the whole fleet).
	ShardIndex, ShardCount int
	// Metrics, Ctx, Progress follow campaign.ShardedConfig semantics.
	Metrics  *obs.Registry
	Ctx      context.Context
	Progress func(done int)
	// CheckpointPath + CheckpointEvery enable periodic crash-safe
	// checkpoints; Resume continues from an existing checkpoint file
	// at CheckpointPath.
	CheckpointPath  string
	CheckpointEvery int
	Resume          bool
}

// deviceRange resolves the global device index range this invocation
// owns.
func (o RunOptions) deviceRange(total int) (lo, hi int) {
	if o.ShardCount <= 1 {
		return 0, total
	}
	block := (total + o.ShardCount - 1) / o.ShardCount
	lo = o.ShardIndex * block
	hi = lo + block
	if hi > total {
		hi = total
	}
	if lo > hi {
		lo = hi
	}
	return lo, hi
}

// cohortNominal is a cohort's nominal energy/timing calibration: one
// noise-free point multiplication measured on the cohort's design
// point, priced once and reused for every device in the cohort (the
// per-cohort analogue of designlab's evalPoint pricing).
type cohortNominal struct {
	pmEnergyJ float64
	pmCycles  int
}

// nominals measures each cohort's point-mul cost once, serially, in
// cohort order — a pure function of the config.
func nominals(cfg Config, cache *design.Cache) ([]cohortNominal, error) {
	out := make([]cohortNominal, len(cfg.Cohorts))
	for i, co := range cfg.Cohorts {
		st, err := cache.Build(co.Point)
		if err != nil {
			return nil, err
		}
		key := st.DeviceKey(design.MixSeed(cfg.Seed, i, 7))
		pm, err := st.MeasurePointMul(key, design.MixSeed(cfg.Seed, i, 8))
		if err != nil {
			return nil, err
		}
		out[i] = cohortNominal{pmEnergyJ: pm.EnergyJ, pmCycles: pm.Cycles}
	}
	return out, nil
}

// lab is one worker's pooled session state: a reusable link pair (the
// wire binds its endpoints once — Pair.Reset keeps them stable), so
// steady-state session setup performs zero link/wire allocations.
type lab struct {
	cache *design.Cache
	pair  *link.Pair
	wire  *protocol.Wire
	// stack and storm are the worker's reusable stack buffers: the
	// cache specializes into them (BuildInto) so the steady-state
	// per-device path never allocates a Stack.
	stack design.Stack
	storm design.Stack
}

func newLab(cache *design.Cache) *lab {
	p := link.NewLosslessPair()
	return &lab{cache: cache, pair: p, wire: protocol.NewWire(p)}
}

// session runs one mutual-authentication session for a device over
// the pooled pair and folds it into out. The parties persist across
// the device's sessions (keys are generated once per device, as on a
// real implant); only the channel is reborn per session.
func (l *lab) session(st *design.Stack, nom cohortNominal, dev *protocol.Tag,
	rdr *protocol.Reader, seed uint64, storm bool, out *deviceOutcome) error {
	if err := l.pair.Reset(st.Channel, st.ARQ, seed); err != nil {
		return err
	}
	res, err := protocol.RunMutualAuthSession(dev, rdr, protocol.SessionOptions{
		Wire:        l.wire,
		ServerFirst: true,
	})
	if err != nil {
		return err
	}
	stats := l.pair.A().Stats()
	eJ := st.Radio.TxEnergy(stats.PhyTxBits(), st.Point.DistanceM) +
		st.Radio.RxEnergy(stats.PhyRxBits()) +
		float64(res.DeviceLedger.PointMuls)*nom.pmEnergyJ +
		float64(res.DeviceLedger.ModMuls)*st.Costs.ModMulJ +
		float64(res.DeviceLedger.AESBlocks)*st.Costs.AESBlockJ
	out.energyPJ += int64(math.Round(eJ * 1e12))
	out.retries += int64(stats.Retries)
	if storm {
		out.stormSessions++
	} else {
		out.sessions++
	}
	if res.Completed {
		if storm {
			out.stormCompleted++
		} else {
			out.completed++
		}
		latS := float64(res.DeviceLedger.PointMuls)*float64(nom.pmCycles)/st.Point.ClockHz +
			float64(stats.PhyTxBits()+stats.PhyRxBits())/design.DefaultBitrateBps
		out.latencyUS = append(out.latencyUS, int64(math.Round(latS*1e6)))
	} else if res.AbortStage == protocol.StageLink {
		out.linkAborts++
	} else {
		out.otherAborts++
	}
	return nil
}

// device simulates one device end to end: specialize the design point
// (cache hit for all but the first device of a build identity),
// generate the device's keys once, run the duty-cycle sessions plus
// the re-auth storm, then price the battery.
func (l *lab) device(cfg Config, noms []cohortNominal, idx int) (deviceOutcome, error) {
	dp := cfg.deviceParams(idx)
	if err := l.cache.BuildInto(&l.stack, dp.point); err != nil {
		return deviceOutcome{}, err
	}
	st := &l.stack
	out := deviceOutcome{cohort: dp.cohort}
	nom := noms[dp.cohort]

	src := rng.NewDRBG(design.MixSeed(cfg.Seed, idx, streamParties)).Uint64
	mul := &protocol.SoftwareMultiplier{Curve: st.Curve, Rand: src}
	rdr, err := protocol.NewReader(st.Curve, mul, src)
	if err != nil {
		return deviceOutcome{}, err
	}
	dev, err := protocol.NewTag(st.Curve, mul, src, rdr.Pub)
	if err != nil {
		return deviceOutcome{}, err
	}
	rdr.Register(dev.Pub)

	for rep := 0; rep < cfg.SessionsPerDevice; rep++ {
		seed := design.MixSeed(cfg.Seed, idx, streamSession+rep)
		if err := l.session(st, nom, dev, rdr, seed, false, &out); err != nil {
			return deviceOutcome{}, err
		}
	}
	if cfg.Storm != nil {
		if err := l.cache.BuildInto(&l.storm, stormPoint(dp.point, cfg.Storm.LossBoost)); err != nil {
			return deviceOutcome{}, err
		}
		sst := &l.storm
		for rep := 0; rep < cfg.Storm.Sessions; rep++ {
			seed := design.MixSeed(cfg.Seed, idx, streamStorm+rep)
			if err := l.session(sst, nom, dev, rdr, seed, true, &out); err != nil {
				return deviceOutcome{}, err
			}
		}
	}

	if dp.point.Battery == design.BatteryPacemaker {
		co := cfg.Cohorts[dp.cohort]
		cell := st.Battery
		// Age-derate: self-discharge has already consumed part of the
		// cell (linear model, clamped at 90% depletion).
		derate := 1 - cell.SelfDischargePerYear*dp.ageYears
		if derate < 0.1 {
			derate = 0.1
		}
		cell.CapacityJ *= derate
		total := out.sessions + out.stormSessions
		meanJ := float64(out.energyPJ) / 1e12 / float64(total)
		lt, err := cell.SecurityLifetimeYears(battery.Workload{
			SessionsPerDay: co.SessionsPerDay,
			SessionEnergyJ: meanJ,
		})
		if err != nil {
			return deviceOutcome{}, err
		}
		if lt > lifetimeCapYears {
			lt = lifetimeCapYears
		}
		out.hasBattery = true
		out.lifetimeCY = int64(math.Round(lt * 100))
		out.outlivedSpec = dp.ageYears+lt >= co.SpecYears
	}
	return out, nil
}

// Run simulates this invocation's device range and returns its
// report. The result is bit-identical for any Workers and Shards
// (integer accumulators; campaign.RunSharded index-order folds), and
// a full-fleet report equals the merge of any cross-process shard
// partition byte for byte.
func Run(cfg Config, opt RunOptions) (*Report, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cache := design.NewCache()
	noms, err := nominals(cfg, cache)
	if err != nil {
		return nil, err
	}
	lo, hi := opt.deviceRange(cfg.TotalDevices())

	workers := campaign.Workers(opt.Workers)
	labs := make([]*lab, workers)
	for w := range labs {
		labs[w] = newLab(cache)
	}

	lay := campaign.ShardingFor(lo, hi, opt.Shards)
	accums := make([]*Accum, lay.N)

	scfg := campaign.ShardedConfig{
		Workers:  opt.Workers,
		Shards:   opt.Shards,
		Progress: opt.Progress,
		Metrics:  opt.Metrics,
		Ctx:      opt.Ctx,
	}
	if opt.CheckpointPath != "" && opt.CheckpointEvery > 0 {
		scfg.CheckpointEvery = opt.CheckpointEvery
		scfg.Checkpoint = func(cursors []int) error {
			return writeCheckpoint(opt.CheckpointPath, cfg, opt, lo, hi, lay, cursors, accums, false)
		}
	}
	if opt.Resume {
		cursors, restored, err := readCheckpoint(opt.CheckpointPath, cfg, opt, lo, hi, lay)
		if err != nil {
			return nil, err
		}
		scfg.Resume = cursors
		for s, a := range restored {
			accums[s] = a
		}
	}

	merged := newAccum(cfg)
	_, err = campaign.RunSharded(lo, hi, scfg,
		func(idx int) (int, error) { return idx, nil },
		func(w, idx int, _ int) (deviceOutcome, error) {
			return labs[w].device(cfg, noms, idx)
		},
		func(s int) *Accum {
			if accums[s] == nil {
				accums[s] = newAccum(cfg)
			}
			return accums[s]
		},
		func(_ int, acc *Accum, _ int, _ int, out deviceOutcome) error {
			acc.fold(out)
			return nil
		},
		func(_ int, acc *Accum) error { return merged.Merge(acc) },
	)
	if err != nil {
		return nil, err
	}

	if opt.Metrics != nil {
		cs := cache.Stats()
		opt.Metrics.Counter("fleet_build_cache_hits").Add(cs.Hits)
		opt.Metrics.Counter("fleet_build_cache_misses").Add(cs.Misses)
		opt.Metrics.Gauge("fleet_build_cache_hit_rate").Set(cs.HitRate())
		opt.Metrics.Counter("fleet_devices").Add(int64(hi - lo))
	}
	return &Report{Config: cfg, From: lo, To: hi, Accum: merged, CacheStats: cache.Stats()}, nil
}
