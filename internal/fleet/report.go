package fleet

import (
	"fmt"
	"math"
	"strings"

	"medsec/internal/design"
)

// Report is one invocation's (or one merge's) result: the experiment
// config, the device range covered, and the folded accumulator.
type Report struct {
	Config Config `json:"config"`
	// From/To is the global device range this report covers (the full
	// fleet for a single-process run or a completed merge).
	From int `json:"from"`
	To   int `json:"to"`
	// Accum is the folded fleet state.
	Accum *Accum `json:"accum"`
	// CacheStats reports the design build cache's effectiveness for
	// the producing run (zero value after a merge — merges build
	// nothing). Not part of the rendered report: cache behaviour may
	// legitimately differ across partitions; results may not.
	CacheStats design.CacheStats `json:"cache_stats,omitempty"`
}

// Devices returns the number of devices the report covers.
func (r *Report) Devices() int { return r.To - r.From }

// pct renders a ratio of two exact integers as a percentage.
func pct(num, den int64) string {
	if den == 0 {
		return "    -"
	}
	return fmt.Sprintf("%5.1f", 100*float64(num)/float64(den))
}

// Render formats the fleet report. Every number is derived from
// integer accumulator fields or histogram bucket counts — never from
// a float running sum — so the rendering is byte-identical across
// worker counts, internal shard counts, and cross-process partitions
// of the same fleet.
func (r *Report) Render() string {
	var b strings.Builder
	t := r.Accum.totals()
	fmt.Fprintf(&b, "fleet: %d devices in %d cohorts, seed=%d, %d sessions/device",
		r.Config.TotalDevices(), len(r.Config.Cohorts), r.Config.Seed, r.Config.SessionsPerDevice)
	if r.Config.Storm != nil {
		fmt.Fprintf(&b, " + %d storm sessions (loss +%.2f)", r.Config.Storm.Sessions, r.Config.Storm.LossBoost)
	}
	fmt.Fprintf(&b, "\ndevices [%d, %d)\n\n", r.From, r.To)

	fmt.Fprintf(&b, "%-14s %8s %9s %6s %6s %8s %8s %8s %8s %9s %7s %7s\n",
		"cohort", "devices", "sessions", "ok%", "storm%", "p50 s", "p95 s", "p99 s",
		"uJ/sess", "retries", "life y", "spec%")
	line := func(name string, a *CohortAccum) {
		totalSessions := a.Sessions + a.StormSessions
		uj := "       -"
		if totalSessions > 0 {
			uj = fmt.Sprintf("%8.2f", float64(a.EnergyPJ)/1e6/float64(totalSessions))
		}
		retries := "        -"
		if totalSessions > 0 {
			retries = fmt.Sprintf("%9.3f", float64(a.Retries)/float64(totalSessions))
		}
		life, spec := "      -", "      -"
		if a.BatteryDevices > 0 {
			life = fmt.Sprintf("%7.2f", float64(a.LifetimeCYSum)/100/float64(a.BatteryDevices))
			spec = fmt.Sprintf("%7.1f", 100*float64(a.OutlivedSpec)/float64(a.BatteryDevices))
		}
		fmt.Fprintf(&b, "%-14s %8d %9d %6s %6s %8s %8s %8s %s %s %s %s\n",
			name, a.Devices, totalSessions,
			pct(a.Completed, a.Sessions), pct(a.StormCompleted, a.StormSessions),
			quantS(a, 0.50), quantS(a, 0.95), quantS(a, 0.99),
			uj, retries, life, spec)
	}
	for _, c := range r.Accum.Cohorts {
		line(c.Name, c)
	}
	fmt.Fprintf(&b, "%s\n", strings.Repeat("-", 112))
	line("fleet", t)

	if t.BatteryDevices > 0 && t.MinLifetimeCY != math.MaxInt64 {
		fmt.Fprintf(&b, "\nworst battery: %.2f years of security budget remaining; %s%% of devices outlive spec\n",
			float64(t.MinLifetimeCY)/100, strings.TrimSpace(pct(t.OutlivedSpec, t.BatteryDevices)))
	}
	if t.LinkAborts+t.OtherAborts > 0 {
		fmt.Fprintf(&b, "aborts: %d link-exhausted, %d protocol\n", t.LinkAborts, t.OtherAborts)
	}
	return b.String()
}

// quantS renders a latency quantile (histogram µs buckets) in seconds.
func quantS(a *CohortAccum, q float64) string {
	v := a.Latency.Quantile(q)
	if math.IsNaN(v) {
		return "       -"
	}
	return fmt.Sprintf("%8.3f", v/1e6)
}
