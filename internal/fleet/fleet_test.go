package fleet

import (
	"context"
	"encoding/json"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"medsec/internal/design"
)

// testFleet is a small heterogeneous fleet exercising every moving
// part: multiple cohorts, channel jitter, age spread, a storm, and a
// batteryless cohort.
func testFleet(devices int) Config {
	cfg := HospitalFleet(devices, 0.1)
	cfg.SessionsPerDevice = 2
	cfg.Storm = &StormConfig{Sessions: 1, LossBoost: 0.25}
	cfg.Seed = 42
	return cfg
}

// reports must be compared by rendered bytes AND accumulator state.
func sameReport(t *testing.T, label string, a, b *Report) {
	t.Helper()
	if !reflect.DeepEqual(a.Accum, b.Accum) {
		t.Fatalf("%s: accumulators differ", label)
	}
	if a.Render() != b.Render() {
		t.Fatalf("%s: rendered reports differ", label)
	}
}

// TestDeterminismMatrix pins the engine's core contract across the
// full matrix the issue names: workers {1, 2, 7} × internal shard
// splits {1, 4} all produce byte-identical reports.
func TestDeterminismMatrix(t *testing.T) {
	cfg := testFleet(10)
	ref, err := Run(cfg, RunOptions{Workers: 1, Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 2, 7} {
		for _, shards := range []int{1, 4} {
			rep, err := Run(cfg, RunOptions{Workers: workers, Shards: shards})
			if err != nil {
				t.Fatal(err)
			}
			sameReport(t, "workers/shards variation", ref, rep)
		}
	}
}

// TestCrossProcessMergeByteIdentical pins the scale-out contract: any
// cross-process partition of the device range, merged through shard
// artifacts on disk, reproduces the single-process report byte for
// byte — including uneven 3-way splits.
func TestCrossProcessMergeByteIdentical(t *testing.T) {
	cfg := testFleet(11)
	single, err := Run(cfg, RunOptions{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	for _, shardCount := range []int{2, 3} {
		paths := make([]string, 0, shardCount)
		for s := 0; s < shardCount; s++ {
			rep, err := Run(cfg, RunOptions{
				Workers: 1 + s, Shards: 1 + s, // runtime knobs must not matter
				ShardIndex: s, ShardCount: shardCount,
			})
			if err != nil {
				t.Fatal(err)
			}
			path := filepath.Join(dir, "shard-"+string(rune('a'+s))+".ckpt")
			if err := WriteShard(path, rep, shardCount); err != nil {
				t.Fatal(err)
			}
			paths = append(paths, path)
		}
		// Merge in reversed path order: order independence is part of
		// the contract.
		rev := make([]string, len(paths))
		for i, p := range paths {
			rev[len(paths)-1-i] = p
		}
		merged, err := MergeShards(rev)
		if err != nil {
			t.Fatal(err)
		}
		sameReport(t, "cross-process merge", single, merged)
	}
}

// TestShardRangesAndCoverage pins the shard-partition refusals: gaps,
// overlaps, and config drift are errors, not silent misfolds.
func TestShardRangesAndCoverage(t *testing.T) {
	cfg := testFleet(6)
	dir := t.TempDir()
	write := func(name string, shardIndex, shardCount int, c Config) string {
		rep, err := Run(c, RunOptions{ShardIndex: shardIndex, ShardCount: shardCount})
		if err != nil {
			t.Fatal(err)
		}
		path := filepath.Join(dir, name)
		if err := WriteShard(path, rep, shardCount); err != nil {
			t.Fatal(err)
		}
		return path
	}
	a := write("a.ckpt", 0, 2, cfg)
	b := write("b.ckpt", 1, 2, cfg)
	if _, err := MergeShards([]string{a, b}); err != nil {
		t.Fatalf("clean 2-way merge failed: %v", err)
	}
	if _, err := MergeShards([]string{a}); err == nil {
		t.Fatal("merge accepted incomplete coverage")
	}
	if _, err := MergeShards([]string{a, a}); err == nil {
		t.Fatal("merge accepted overlapping shards")
	}
	drift := cfg
	drift.Seed = 43
	c := write("c.ckpt", 1, 2, drift)
	if _, err := MergeShards([]string{a, c}); err == nil {
		t.Fatal("merge accepted shards from different configs")
	}
}

// TestMergeRefusalsNameFileAndField pins the diagnostics of every
// MergeShards refusal: each error must name the offending shard
// file(s), the device interval in dispute, and — for config drift —
// the differing config field. A bare "gap or overlap" costs the
// operator of a 40-shard campaign an afternoon of header dumps.
func TestMergeRefusalsNameFileAndField(t *testing.T) {
	cfg := testFleet(6)
	dir := t.TempDir()
	write := func(name string, shardIndex, shardCount int, c Config) string {
		rep, err := Run(c, RunOptions{ShardIndex: shardIndex, ShardCount: shardCount})
		if err != nil {
			t.Fatal(err)
		}
		path := filepath.Join(dir, name)
		if err := WriteShard(path, rep, shardCount); err != nil {
			t.Fatal(err)
		}
		return path
	}
	// A 3-way partition of the 6-device fleet: [0,2), [2,4), [4,6).
	s0 := write("s0.ckpt", 0, 3, cfg)
	s1 := write("s1.ckpt", 1, 3, cfg)
	s2 := write("s2.ckpt", 2, 3, cfg)
	// And a 2-way partition of the same fleet for overlaps: [0,3).
	h0 := write("h0.ckpt", 0, 2, cfg)

	wantErr := func(what string, paths []string, fragments ...string) {
		t.Helper()
		_, err := MergeShards(paths)
		if err == nil {
			t.Fatalf("%s: merge succeeded", what)
		}
		for _, f := range fragments {
			if !strings.Contains(err.Error(), f) {
				t.Errorf("%s: error %q does not name %q", what, err, f)
			}
		}
	}

	// Overlap: the duplicated shard and the one it collides with are
	// both named, with the colliding range.
	wantErr("duplicate shard", []string{s0, s1, s1, s2}, "s1.ckpt", "overlapping", "[2, 4)")
	// Overlap across partitions: h0 [0,3) collides with s1 [2,4).
	wantErr("cross-partition overlap", []string{s0, s1, s2, h0}, "h0.ckpt", "s0.ckpt", "overlapping")
	// Gap in the middle names the missing interval and the shard that
	// starts after it.
	wantErr("middle gap", []string{s0, s2}, "gap", "[2, 4)", "s2.ckpt")
	// Gap at the tail names the last shard present.
	wantErr("tail gap", []string{s0, s1}, "gap", "[4, 6)", "s1.ckpt")
	// Foreign config names both files and the drifted field.
	drift := cfg
	drift.Seed = 99
	d1 := write("d1.ckpt", 1, 3, drift)
	wantErr("config drift", []string{s0, d1, s2}, "d1.ckpt", "s0.ckpt", `"seed"`, "99")
	// The reference shard is whichever file comes first: drift is
	// symmetric.
	wantErr("config drift reversed", []string{d1, s0, s2}, "s0.ckpt", "d1.ckpt", `"seed"`)
}

// TestAccumMergeAssociativeOrderIndependent pins the algebra the
// shard machinery relies on, directly on accumulators.
func TestAccumMergeAssociativeOrderIndependent(t *testing.T) {
	cfg := testFleet(9)
	parts := make([]*Accum, 3)
	for s := 0; s < 3; s++ {
		rep, err := Run(cfg, RunOptions{ShardIndex: s, ShardCount: 3})
		if err != nil {
			t.Fatal(err)
		}
		parts[s] = rep.Accum
	}
	orders := [][]int{{0, 1, 2}, {2, 0, 1}, {1, 2, 0}}
	var ref *Accum
	for _, ord := range orders {
		m := newAccum(cfg)
		for _, s := range ord {
			if err := m.Merge(parts[s]); err != nil {
				t.Fatal(err)
			}
		}
		if ref == nil {
			ref = m
		} else if !reflect.DeepEqual(stripFloatSums(ref), stripFloatSums(m)) {
			t.Fatalf("merge order %v changed the accumulator", ord)
		}
	}
	// Associativity: (p0 ⊕ p1) ⊕ p2 == p0 ⊕ (p1 ⊕ p2).
	left := newAccum(cfg)
	for _, s := range []int{0, 1} {
		if err := left.Merge(parts[s]); err != nil {
			t.Fatal(err)
		}
	}
	if err := left.Merge(parts[2]); err != nil {
		t.Fatal(err)
	}
	bc := newAccum(cfg)
	for _, s := range []int{1, 2} {
		if err := bc.Merge(parts[s]); err != nil {
			t.Fatal(err)
		}
	}
	right := newAccum(cfg)
	if err := right.Merge(parts[0]); err != nil {
		t.Fatal(err)
	}
	if err := right.Merge(bc); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(stripFloatSums(left), stripFloatSums(right)) {
		t.Fatal("accumulator merge is not associative")
	}
}

// stripFloatSums zeroes the only order-sensitive field (the latency
// histogram's float Sum, which reports never read) so DeepEqual tests
// the exact-merge contract.
func stripFloatSums(a *Accum) *Accum {
	buf, err := json.Marshal(a)
	if err != nil {
		panic(err)
	}
	c := &Accum{}
	if err := json.Unmarshal(buf, c); err != nil {
		panic(err)
	}
	for _, co := range c.Cohorts {
		co.Latency.Sum = 0
	}
	return c
}

// TestKillAndResume interrupts a fleet run mid-flight via context
// cancellation, then resumes from the checkpoint and pins the final
// report byte-identical to an uninterrupted run.
func TestKillAndResume(t *testing.T) {
	cfg := testFleet(10)
	ref, err := Run(cfg, RunOptions{Workers: 2, Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	ckpt := filepath.Join(t.TempDir(), "fleet.ckpt")

	ctx, cancel := context.WithCancel(context.Background())
	devices := 0
	_, err = Run(cfg, RunOptions{
		Workers: 2, Shards: 2,
		Ctx:             ctx,
		CheckpointPath:  ckpt,
		CheckpointEvery: 2,
		Progress: func(done int) {
			devices = done
			if done >= 4 {
				cancel() // kill mid-campaign
			}
		},
	})
	if err == nil {
		t.Fatal("interrupted run returned no error")
	}
	if devices >= 10 {
		t.Fatalf("interrupt landed after the full run (%d devices)", devices)
	}

	resumed, err := Run(cfg, RunOptions{
		Workers: 2, Shards: 2,
		CheckpointPath:  ckpt,
		CheckpointEvery: 2,
		Resume:          true,
	})
	if err != nil {
		t.Fatal(err)
	}
	sameReport(t, "kill-and-resume", ref, resumed)

	// Resuming with a drifted config must be refused.
	drift := cfg
	drift.Seed++
	if _, err := Run(drift, RunOptions{
		Workers: 2, Shards: 2, CheckpointPath: ckpt, CheckpointEvery: 2, Resume: true,
	}); err == nil {
		t.Fatal("resume accepted a checkpoint from a different config")
	}
}

// TestCacheEffectiveness pins the perf core's premise on a real fleet:
// device count scales, distinct builds do not.
func TestCacheEffectiveness(t *testing.T) {
	cfg := testFleet(16)
	rep, err := Run(cfg, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	cs := rep.CacheStats
	// 4 cohorts + storm variants share base identities (loss is a
	// specialization knob), so the distinct builds stay in single
	// digits regardless of fleet size.
	if cs.Size > 8 {
		t.Fatalf("distinct builds = %d for a 4-cohort fleet; cache is not sharing", cs.Size)
	}
	if cs.HitRate() < 0.7 {
		t.Fatalf("cache hit rate %.2f; expected the overwhelming majority of builds to hit", cs.HitRate())
	}
}

// TestConfigValidation covers the refusals.
func TestConfigValidation(t *testing.T) {
	bad := []func(*Config){
		func(c *Config) { c.Cohorts = nil },
		func(c *Config) { c.Cohorts[0].Name = "" },
		func(c *Config) { c.Cohorts[1].Name = c.Cohorts[0].Name },
		func(c *Config) { c.Cohorts[0].Devices = 0 },
		func(c *Config) { c.Cohorts[0].Point.Loss = 3 },
		func(c *Config) { c.Cohorts[0].SpecYears = -1 },
		func(c *Config) { c.SessionsPerDevice = 0 },
		func(c *Config) { c.Storm.Sessions = 0 },
		func(c *Config) { c.Storm.LossBoost = 2 },
		func(c *Config) {
			c.Cohorts[0].Point.Channel = design.ChannelPerfect
			c.Cohorts[0].Point.Loss = 0
			c.Cohorts[0].LossJitter = 0.1
		},
	}
	for i, mut := range bad {
		cfg := testFleet(8)
		mut(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Fatalf("mutation %d validated", i)
		}
	}
	if err := testFleet(8).Validate(); err != nil {
		t.Fatalf("test fleet invalid: %v", err)
	}
}
