package fleet

import (
	"fmt"
	"math"

	"medsec/internal/obs"
)

// latencyBoundsUS are the authentication-latency histogram buckets in
// microseconds (50 ms … 50 s — a software-ladder session at the
// prototype's 847.5 kHz clock takes on the order of seconds). Bucket
// counts are integers, so merged shards reproduce single-stream
// quantiles exactly (obs.HistogramSnapshot.Quantile).
var latencyBoundsUS = []float64{
	5e4, 1e5, 1.5e5, 2e5, 2.5e5, 3e5, 3.5e5, 4e5, 5e5, 6.5e5, 8e5, 1e6,
	1.5e6, 2e6, 3e6, 5e6, 7.5e6, 1e7, 2e7, 5e7,
}

// lifetimeCapYears bounds the battery-lifetime quantization so an
// (effectively) infinite lifetime stays a finite integer.
const lifetimeCapYears = 200

// deviceOutcome is one device's folded result — integers only (plus
// the latency list, quantized to µs), so folding is exactly
// associative across any partition of the index space.
type deviceOutcome struct {
	cohort int

	sessions, completed, linkAborts, otherAborts int64
	stormSessions, stormCompleted                int64
	retries                                      int64
	energyPJ                                     int64
	latencyUS                                    []int64 // completed sessions only

	hasBattery   bool
	lifetimeCY   int64 // remaining security lifetime, centi-years
	outlivedSpec bool
}

// CohortAccum is one cohort's mergeable accumulator. Every field is
// an exact integer except Latency.Sum (unused by reports — means come
// from LatencyUSSum).
type CohortAccum struct {
	Name        string `json:"name"`
	FirmwareRev string `json:"firmware_rev,omitempty"`

	Devices        int64 `json:"devices"`
	Sessions       int64 `json:"sessions"`
	Completed      int64 `json:"completed"`
	LinkAborts     int64 `json:"link_aborts"`
	OtherAborts    int64 `json:"other_aborts"`
	StormSessions  int64 `json:"storm_sessions"`
	StormCompleted int64 `json:"storm_completed"`
	Retries        int64 `json:"retries"`
	EnergyPJ       int64 `json:"energy_pj"`

	LatencyUSSum int64                 `json:"latency_us_sum"`
	Latency      obs.HistogramSnapshot `json:"latency"`

	BatteryDevices int64 `json:"battery_devices"`
	LifetimeCYSum  int64 `json:"lifetime_cy_sum"`
	MinLifetimeCY  int64 `json:"min_lifetime_cy"`
	OutlivedSpec   int64 `json:"outlived_spec"`
}

func newCohortAccum(co Cohort) *CohortAccum {
	return &CohortAccum{
		Name:          co.Name,
		FirmwareRev:   co.FirmwareRev,
		Latency:       obs.NewHistogramSnapshot(latencyBoundsUS),
		MinLifetimeCY: math.MaxInt64,
	}
}

func (a *CohortAccum) fold(out deviceOutcome) {
	a.Devices++
	a.Sessions += out.sessions
	a.Completed += out.completed
	a.LinkAborts += out.linkAborts
	a.OtherAborts += out.otherAborts
	a.StormSessions += out.stormSessions
	a.StormCompleted += out.stormCompleted
	a.Retries += out.retries
	a.EnergyPJ += out.energyPJ
	for _, us := range out.latencyUS {
		a.LatencyUSSum += us
		a.Latency.Observe(float64(us))
	}
	if out.hasBattery {
		a.BatteryDevices++
		a.LifetimeCYSum += out.lifetimeCY
		if out.lifetimeCY < a.MinLifetimeCY {
			a.MinLifetimeCY = out.lifetimeCY
		}
		if out.outlivedSpec {
			a.OutlivedSpec++
		}
	}
}

// merge folds another shard's accumulator for the same cohort into a.
// Min is order-independent; every sum is an exact integer; histogram
// bucket counts add exactly.
func (a *CohortAccum) merge(o *CohortAccum) error {
	if a.Name != o.Name {
		return fmt.Errorf("fleet: merging cohort %q into %q", o.Name, a.Name)
	}
	a.Devices += o.Devices
	a.Sessions += o.Sessions
	a.Completed += o.Completed
	a.LinkAborts += o.LinkAborts
	a.OtherAborts += o.OtherAborts
	a.StormSessions += o.StormSessions
	a.StormCompleted += o.StormCompleted
	a.Retries += o.Retries
	a.EnergyPJ += o.EnergyPJ
	a.LatencyUSSum += o.LatencyUSSum
	if err := a.Latency.Merge(o.Latency); err != nil {
		return fmt.Errorf("fleet: cohort %q: %w", a.Name, err)
	}
	a.BatteryDevices += o.BatteryDevices
	a.LifetimeCYSum += o.LifetimeCYSum
	if o.MinLifetimeCY < a.MinLifetimeCY {
		a.MinLifetimeCY = o.MinLifetimeCY
	}
	a.OutlivedSpec += o.OutlivedSpec
	return nil
}

// Accum is the fleet-wide accumulator: one CohortAccum per configured
// cohort, in configuration order.
type Accum struct {
	Cohorts []*CohortAccum `json:"cohorts"`
}

func newAccum(cfg Config) *Accum {
	a := &Accum{Cohorts: make([]*CohortAccum, len(cfg.Cohorts))}
	for i, co := range cfg.Cohorts {
		a.Cohorts[i] = newCohortAccum(co)
	}
	return a
}

func (a *Accum) fold(out deviceOutcome) {
	a.Cohorts[out.cohort].fold(out)
}

// Merge folds another accumulator (same cohort layout) into a.
func (a *Accum) Merge(o *Accum) error {
	if len(a.Cohorts) != len(o.Cohorts) {
		return fmt.Errorf("fleet: merging %d cohorts into %d", len(o.Cohorts), len(a.Cohorts))
	}
	for i := range a.Cohorts {
		if err := a.Cohorts[i].merge(o.Cohorts[i]); err != nil {
			return err
		}
	}
	return nil
}

// totals sums the cohort accumulators into one fleet-wide view (a
// derived value, recomputed on demand — never merged, so it cannot
// drift from the cohort sums).
func (a *Accum) totals() *CohortAccum {
	t := &CohortAccum{
		Name:          "fleet",
		Latency:       obs.NewHistogramSnapshot(latencyBoundsUS),
		MinLifetimeCY: math.MaxInt64,
	}
	for _, c := range a.Cohorts {
		cc := *c // merge reads, never writes, the source
		cc.Name, cc.FirmwareRev = "fleet", ""
		if err := t.merge(&cc); err != nil {
			panic(err) // identical bounds by construction
		}
	}
	return t
}
