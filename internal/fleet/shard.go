package fleet

import (
	"encoding/json"
	"fmt"
	"sort"

	"medsec/internal/campaign"
	"medsec/internal/obs"
	"medsec/internal/store"
)

// Checkpoint/shard file layout (internal/store codec):
//
//   - a mid-run checkpoint (Kind "fleet", Complete=false) carries the
//     per-internal-shard cursors in Header.Cursors and one accumulator
//     blob per internal shard ("accum-0000", …) — the crash-safe
//     resume state of a single invocation;
//   - a finished shard artifact (Kind "fleet-shard", Complete=true)
//     carries exactly one "accum" blob — the invocation's merged
//     accumulator over its device range [From, To) — plus the fleet
//     config JSON in Header.Point and the cross-process shard count in
//     Header.Shards. MergeShards folds N of these into the full-fleet
//     report.

const (
	toolName     = "fleetlab"
	kindRun      = "fleet"
	kindShard    = "fleet-shard"
	accumBlob    = "accum"
	accumBlobFmt = "accum-%04d"
)

func configJSON(cfg Config) (json.RawMessage, error) {
	buf, err := json.Marshal(cfg)
	if err != nil {
		return nil, err
	}
	return buf, nil
}

// runHeader is the provenance header a mid-run checkpoint carries.
func runHeader(cfg Config, lo, hi int, lay campaign.Sharding, cursors []int, complete bool) (store.Header, error) {
	pt, err := configJSON(cfg)
	if err != nil {
		return store.Header{}, err
	}
	return store.Header{
		Tool:     toolName,
		Kind:     kindRun,
		Seed:     cfg.Seed,
		GitSHA:   obs.GitSHA(),
		Point:    pt,
		Cursors:  cursors,
		From:     lo,
		To:       hi,
		Shards:   lay.N,
		Complete: complete,
	}, nil
}

// writeCheckpoint persists a mid-run snapshot: per-internal-shard
// accumulators at the cursor prefixes, atomically (temp-fsync-rename
// via store.Write).
func writeCheckpoint(path string, cfg Config, _ RunOptions, lo, hi int,
	lay campaign.Sharding, cursors []int, accums []*Accum, complete bool) error {
	hdr, err := runHeader(cfg, lo, hi, lay, cursors, complete)
	if err != nil {
		return err
	}
	ck := &store.Checkpoint{Header: hdr, Blobs: map[string][]byte{}}
	for s, a := range accums {
		if a == nil {
			a = newAccum(cfg)
		}
		buf, err := json.Marshal(a)
		if err != nil {
			return err
		}
		ck.Blobs[fmt.Sprintf(accumBlobFmt, s)] = buf
	}
	return store.Write(path, ck)
}

// readCheckpoint loads and validates a mid-run checkpoint against the
// resuming invocation, returning the per-shard resume cursors and the
// restored per-internal-shard accumulators.
func readCheckpoint(path string, cfg Config, _ RunOptions, lo, hi int,
	lay campaign.Sharding) (cursors []int, accums []*Accum, err error) {
	ck, err := store.Read(path)
	if err != nil {
		return nil, nil, err
	}
	cur, err := runHeader(cfg, lo, hi, lay, nil, false)
	if err != nil {
		return nil, nil, err
	}
	if err := ck.Header.Match(cur); err != nil {
		return nil, nil, fmt.Errorf("fleet: checkpoint %s does not match this run: %w", path, err)
	}
	if ck.Header.Complete {
		return nil, nil, fmt.Errorf("fleet: checkpoint %s is complete; nothing to resume", path)
	}
	if len(ck.Header.Cursors) != lay.N {
		return nil, nil, fmt.Errorf("fleet: checkpoint has %d cursors, layout has %d shards", len(ck.Header.Cursors), lay.N)
	}
	accums = make([]*Accum, lay.N)
	for s := 0; s < lay.N; s++ {
		buf, ok := ck.Blobs[fmt.Sprintf(accumBlobFmt, s)]
		if !ok {
			return nil, nil, fmt.Errorf("fleet: checkpoint missing accumulator for shard %d", s)
		}
		a := &Accum{}
		if err := json.Unmarshal(buf, a); err != nil {
			return nil, nil, fmt.Errorf("fleet: decoding shard %d accumulator: %w", s, err)
		}
		if len(a.Cohorts) != len(cfg.Cohorts) {
			return nil, nil, fmt.Errorf("fleet: shard %d accumulator has %d cohorts, config has %d", s, len(a.Cohorts), len(cfg.Cohorts))
		}
		accums[s] = a
	}
	return ck.Header.Cursors, accums, nil
}

// WriteShard persists a finished invocation's report as a shard
// artifact for MergeShards (and records the cross-process partition
// in the header).
func WriteShard(path string, rep *Report, shardCount int) error {
	pt, err := configJSON(rep.Config)
	if err != nil {
		return err
	}
	buf, err := json.Marshal(rep.Accum)
	if err != nil {
		return err
	}
	return store.Write(path, &store.Checkpoint{
		Header: store.Header{
			Tool:     toolName,
			Kind:     kindShard,
			Seed:     rep.Config.Seed,
			GitSHA:   obs.GitSHA(),
			Point:    pt,
			From:     rep.From,
			To:       rep.To,
			Shards:   shardCount,
			Complete: true,
		},
		Blobs: map[string][]byte{accumBlob: buf},
	})
}

// shardPiece is one loaded shard artifact.
type shardPiece struct {
	path     string
	from, to int
	accum    *Accum
}

// configDiff names the first top-level config field that differs
// between two shard headers' config JSON — the actionable part of a
// foreign-config refusal (a raw "configs differ" sends the operator
// diffing kilobytes of JSON by hand).
func configDiff(got, ref json.RawMessage) string {
	var g, r map[string]json.RawMessage
	if json.Unmarshal(got, &g) != nil || json.Unmarshal(ref, &r) != nil {
		return "config JSON differs"
	}
	keys := make([]string, 0, len(g)+len(r))
	for k := range g {
		keys = append(keys, k)
	}
	for k := range r {
		if _, dup := g[k]; !dup {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	trunc := func(v json.RawMessage, present bool) string {
		if !present {
			return "(absent)"
		}
		s := string(v)
		if len(s) > 48 {
			s = s[:45] + "..."
		}
		return s
	}
	for _, k := range keys {
		gv, gok := g[k]
		rv, rok := r[k]
		if gok != rok || string(gv) != string(rv) {
			return fmt.Sprintf("field %q is %s, reference shard has %s", k, trunc(gv, gok), trunc(rv, rok))
		}
	}
	return "config JSON differs only in formatting"
}

// MergeShards folds N shard artifacts covering disjoint device ranges
// into the full-fleet report. It refuses provenance drift (different
// config, seed, or code), overlaps, and gaps: the shards must tile
// [0, TotalDevices) exactly. Merge order is by device range, so the
// result is independent of the path order given — and, because every
// accumulator field is integer-exact, byte-identical to the
// single-process full-fleet report.
func MergeShards(paths []string) (*Report, error) {
	if len(paths) == 0 {
		return nil, fmt.Errorf("fleet: no shard files to merge")
	}
	var cfg Config
	var refPt, refPath string
	var refRaw json.RawMessage
	pieces := make([]shardPiece, 0, len(paths))
	for i, path := range paths {
		ck, err := store.Read(path)
		if err != nil {
			return nil, err
		}
		if ck.Header.Tool != toolName || ck.Header.Kind != kindShard {
			return nil, fmt.Errorf("fleet: %s is a %s/%s checkpoint, not a fleet shard", path, ck.Header.Tool, ck.Header.Kind)
		}
		if !ck.Header.Complete {
			return nil, fmt.Errorf("fleet: %s is an unfinished shard (resume it first)", path)
		}
		pt := string(ck.Header.Point)
		if i == 0 {
			refPt, refPath, refRaw = pt, path, ck.Header.Point
			if err := json.Unmarshal(ck.Header.Point, &cfg); err != nil {
				return nil, fmt.Errorf("fleet: decoding config from %s: %w", path, err)
			}
			if err := cfg.Validate(); err != nil {
				return nil, fmt.Errorf("fleet: config from %s: %w", path, err)
			}
		} else if pt != refPt {
			return nil, fmt.Errorf("fleet: %s was produced by a different fleet config than %s: %s",
				path, refPath, configDiff(ck.Header.Point, refRaw))
		}
		buf, ok := ck.Blobs[accumBlob]
		if !ok {
			return nil, fmt.Errorf("fleet: %s has no accumulator blob", path)
		}
		a := &Accum{}
		if err := json.Unmarshal(buf, a); err != nil {
			return nil, fmt.Errorf("fleet: decoding accumulator from %s: %w", path, err)
		}
		if len(a.Cohorts) != len(cfg.Cohorts) {
			return nil, fmt.Errorf("fleet: %s accumulator has %d cohorts, config has %d", path, len(a.Cohorts), len(cfg.Cohorts))
		}
		if ck.Header.From < 0 || ck.Header.To < ck.Header.From {
			return nil, fmt.Errorf("fleet: %s declares a malformed device range [%d, %d)", path, ck.Header.From, ck.Header.To)
		}
		pieces = append(pieces, shardPiece{path: path, from: ck.Header.From, to: ck.Header.To, accum: a})
	}

	// Coverage: sorted by range, the pieces must tile [0, total).
	// Overlaps and gaps are distinct operator mistakes (a shard run
	// twice vs a shard never run), so each refusal names the offending
	// file(s) and the exact device interval in dispute.
	sort.Slice(pieces, func(i, j int) bool { return pieces[i].from < pieces[j].from })
	cursor := 0
	prevPath := ""
	for _, p := range pieces {
		switch {
		case p.from < cursor:
			return nil, fmt.Errorf("fleet: %s covers devices [%d, %d), overlapping %s which already covers through device %d",
				p.path, p.from, p.to, prevPath, cursor)
		case p.from > cursor:
			return nil, fmt.Errorf("fleet: coverage gap: devices [%d, %d) are in no shard (%s starts at device %d)",
				cursor, p.from, p.path, p.from)
		}
		cursor, prevPath = p.to, p.path
	}
	total := cfg.TotalDevices()
	if cursor < total {
		return nil, fmt.Errorf("fleet: coverage gap: devices [%d, %d) are in no shard (%s ends at device %d)",
			cursor, total, prevPath, cursor)
	}
	if cursor > total {
		return nil, fmt.Errorf("fleet: %s extends to device %d, beyond the %d-device fleet", prevPath, cursor, total)
	}

	merged := newAccum(cfg)
	for _, p := range pieces {
		if err := merged.Merge(p.accum); err != nil {
			return nil, err
		}
	}
	return &Report{Config: cfg, From: 0, To: total, Accum: merged}, nil
}
