package obs

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestManifestRoundTrip pins the -metrics artifact contract: a written
// manifest reads back with every provenance key intact and validates.
func TestManifestRoundTrip(t *testing.T) {
	r := New()
	r.Counter("traces_acquired").Add(128)
	r.Gauge("traces_per_sec").Set(2500)
	fs := flag.NewFlagSet("tvla", flag.ContinueOnError)
	fs.Int("traces", 64, "")
	fs.Uint64("seed", 1, "")
	if err := fs.Parse([]string{"-traces", "64"}); err != nil {
		t.Fatal(err)
	}
	m := NewManifest("scalab", "tvla", 1, fs, r)
	path := filepath.Join(t.TempDir(), "m.json")
	if err := m.Write(path); err != nil {
		t.Fatal(err)
	}
	got, err := ReadManifest(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Tool != "scalab" || got.Subcommand != "tvla" || got.Seed != 1 {
		t.Fatalf("identity fields corrupted: %+v", got)
	}
	if got.GoVersion == "" || got.GoMaxProcs == 0 || got.NumCPU == 0 || got.GitSHA == "" {
		t.Fatalf("environment stamp incomplete: %+v", got)
	}
	if got.Flags["traces"] != "64" || got.Flags["seed"] != "1" {
		t.Fatalf("flag set not captured: %v", got.Flags)
	}
	if got.Metrics.Counters["traces_acquired"] != 128 {
		t.Fatalf("metric snapshot not round-tripped: %v", got.Metrics.Counters)
	}
	if got.Metrics.Gauges["traces_per_sec"] != 2500 {
		t.Fatalf("gauge not round-tripped: %v", got.Metrics.Gauges)
	}
}

// TestManifestValidateRejectsForeignJSON ensures truncated or foreign
// JSON is rejected rather than silently folded into reports.
func TestManifestValidateRejectsForeignJSON(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bogus.json")
	if err := os.WriteFile(path, []byte(`{"hello":"world"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadManifest(path); err == nil {
		t.Fatal("foreign JSON accepted as manifest")
	} else if !strings.Contains(err.Error(), "missing required keys") {
		t.Fatalf("wrong rejection: %v", err)
	}
	if _, err := ReadManifest(filepath.Join(t.TempDir(), "absent.json")); err == nil {
		t.Fatal("missing file accepted")
	}
}

// TestManifestSmokeFiles is the CI end-to-end gate: point
// OBS_SMOKE_MANIFESTS at comma-separated manifest files written by a
// real instrumented CLI run (e.g. `scalab tvla -traces 64 -metrics f`)
// and this test validates each one — required provenance keys, the
// expected tool identity, and a non-empty acquisition count. Skipped
// when the variable is unset, so `go test ./...` stays hermetic.
func TestManifestSmokeFiles(t *testing.T) {
	spec := os.Getenv("OBS_SMOKE_MANIFESTS")
	if spec == "" {
		t.Skip("OBS_SMOKE_MANIFESTS not set")
	}
	for _, path := range strings.Split(spec, ",") {
		m, err := ReadManifest(path)
		if err != nil {
			t.Fatal(err)
		}
		if m.Tool == "" {
			t.Fatalf("%s: empty tool", path)
		}
		if len(m.Flags) == 0 {
			t.Fatalf("%s: manifest carries no flag set", path)
		}
		var total int64
		for _, v := range m.Metrics.Counters {
			total += v
		}
		if total == 0 {
			t.Fatalf("%s: all counters zero — the run was not instrumented", path)
		}
		if want := os.Getenv("OBS_SMOKE_TRACES"); want != "" {
			if got := fmt.Sprint(m.Metrics.Counters["sca_traces_acquired"]); got != want {
				t.Fatalf("%s: sca_traces_acquired = %s, want %s", path, got, want)
			}
		}
		t.Logf("%s: %s %s seed=%d ok", path, m.Tool, m.Subcommand, m.Seed)
	}
}

// TestManifestNilRegistry: a manifest over a nil registry is still a
// valid provenance record (empty metrics, not null).
func TestManifestNilRegistry(t *testing.T) {
	m := NewManifest("linklab", "", 7, nil, nil)
	if err := m.Validate(); err != nil {
		t.Fatalf("nil-registry manifest invalid: %v", err)
	}
	path := filepath.Join(t.TempDir(), "m.json")
	if err := m.Write(path); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadManifest(path); err != nil {
		t.Fatal(err)
	}
}
