package obs

import (
	"bytes"
	"expvar"
	"strings"
	"sync"
	"testing"
)

// TestCounterGaugeBasics covers the single-threaded contracts.
func TestCounterGaugeBasics(t *testing.T) {
	r := New()
	c := r.Counter("traces")
	c.Inc()
	c.Add(41)
	if got := c.Value(); got != 42 {
		t.Fatalf("counter = %d, want 42", got)
	}
	if r.Counter("traces") != c {
		t.Fatal("second lookup returned a different counter")
	}
	g := r.Gauge("rate")
	g.Set(2.5)
	g.Set(3.25)
	if got := g.Value(); got != 3.25 {
		t.Fatalf("gauge = %v, want 3.25", got)
	}
}

// TestHistogramBuckets pins the bucket boundary convention: v lands in
// the first bucket whose upper bound is >= v, overflow in the +Inf
// bucket.
func TestHistogramBuckets(t *testing.T) {
	h := NewHistogram([]float64{1, 10, 100})
	for _, v := range []float64{0.5, 1, 2, 10, 99, 1000} {
		h.Observe(v)
	}
	// 0.5→b0, 1→b0 (bound inclusive), 2→b1, 10→b1, 99→b2, 1000→+Inf.
	want := []int64{2, 2, 1, 1}
	for i := range h.buckets {
		if got := h.buckets[i].Load(); got != want[i] {
			t.Fatalf("bucket %d = %d, want %d", i, got, want[i])
		}
	}
	if h.Count() != 6 {
		t.Fatalf("count = %d, want 6", h.Count())
	}
	if got, want := h.Sum(), 0.5+1+2+10+99+1000; got != want {
		t.Fatalf("sum = %v, want %v", got, want)
	}
}

// TestNilSafety exercises every instrument method through a nil
// registry and nil instruments — the disabled-instrumentation default
// must be inert, not a panic.
func TestNilSafety(t *testing.T) {
	var r *Registry
	c := r.Counter("x")
	c.Add(5)
	c.Inc()
	if c.Value() != 0 {
		t.Fatal("nil counter holds state")
	}
	g := r.Gauge("y")
	g.Set(1)
	if g.Value() != 0 {
		t.Fatal("nil gauge holds state")
	}
	h := r.Histogram("z", []float64{1})
	h.Observe(3)
	if h.Count() != 0 || h.Sum() != 0 {
		t.Fatal("nil histogram holds state")
	}
	s := r.Snapshot()
	if s.Counters == nil || s.Gauges == nil || s.Histograms == nil {
		t.Fatal("nil registry snapshot has nil maps")
	}
	if _, err := s.JSON(); err != nil {
		t.Fatal(err)
	}
}

// TestNoopZeroAllocs pins the disabled-path allocation budget at
// exactly zero: the acquisition hot loop calls these per trace, and
// "metrics off" must cost nothing on the heap.
func TestNoopZeroAllocs(t *testing.T) {
	var r *Registry
	var c *Counter
	var g *Gauge
	var h *Histogram
	if allocs := testing.AllocsPerRun(200, func() {
		c.Add(1)
		c.Inc()
		g.Set(1)
		h.Observe(1)
		_ = r.Counter("x")
		_ = r.Gauge("y")
	}); allocs != 0 {
		t.Fatalf("disabled instruments allocate %.1f objects/op, want 0", allocs)
	}
}

// TestEnabledHotPathZeroAllocs pins the enabled steady-state path:
// resolving instruments is once-per-campaign, but Add/Set/Observe run
// per trace and must not allocate either.
func TestEnabledHotPathZeroAllocs(t *testing.T) {
	r := New()
	c := r.Counter("x")
	g := r.Gauge("y")
	h := r.Histogram("z", []float64{1, 10, 100, 1000})
	if allocs := testing.AllocsPerRun(200, func() {
		c.Add(3)
		g.Set(2.5)
		h.Observe(42)
	}); allocs != 0 {
		t.Fatalf("enabled instruments allocate %.1f objects/op, want 0", allocs)
	}
}

// TestConcurrentHammer drives counters, gauges and histograms from
// many goroutines (run under -race in CI): the instruments must be
// race-free and the counters exact.
func TestConcurrentHammer(t *testing.T) {
	r := New()
	const workers = 8
	const perWorker = 5000
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			c := r.Counter("hits")
			g := r.Gauge("last")
			h := r.Histogram("dist", []float64{10, 100, 1000})
			for i := 0; i < perWorker; i++ {
				c.Inc()
				g.Set(float64(i))
				h.Observe(float64(i))
			}
		}(w)
	}
	wg.Wait()
	if got := r.Counter("hits").Value(); got != workers*perWorker {
		t.Fatalf("hammered counter = %d, want %d", got, workers*perWorker)
	}
	h := r.Histogram("dist", nil)
	if h.Count() != workers*perWorker {
		t.Fatalf("histogram count = %d, want %d", h.Count(), workers*perWorker)
	}
	// CAS-accumulated sum is exact here: every observation is an
	// integer far below the float64 mantissa.
	wantSum := float64(workers) * float64(perWorker-1) * float64(perWorker) / 2
	if h.Sum() != wantSum {
		t.Fatalf("histogram sum = %v, want %v", h.Sum(), wantSum)
	}
}

// TestSnapshotDeterminism pins the export contract: two registries
// holding equal state serialize to byte-identical JSON (map keys
// sorted by encoding/json), independent of instrument creation order.
func TestSnapshotDeterminism(t *testing.T) {
	build := func(order []string) *Registry {
		r := New()
		for _, name := range order {
			r.Counter(name)
		}
		r.Counter("b").Add(2)
		r.Counter("a").Add(1)
		r.Counter("c").Add(3)
		r.Gauge("g2").Set(2)
		r.Gauge("g1").Set(1)
		r.Histogram("h", []float64{1, 2}).Observe(1.5)
		return r
	}
	j1, err := build([]string{"a", "b", "c"}).Snapshot().JSON()
	if err != nil {
		t.Fatal(err)
	}
	j2, err := build([]string{"c", "b", "a"}).Snapshot().JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(j1, j2) {
		t.Fatalf("snapshot JSON depends on creation order:\n%s\nvs\n%s", j1, j2)
	}
	// Key order inside the serialized form must be sorted.
	ia, ib, ic := bytes.Index(j1, []byte(`"a"`)), bytes.Index(j1, []byte(`"b"`)), bytes.Index(j1, []byte(`"c"`))
	if !(ia < ib && ib < ic) {
		t.Fatalf("counter keys not sorted in JSON:\n%s", j1)
	}
	names := build(nil).Snapshot().CounterNames()
	if strings.Join(names, ",") != "a,b,c" {
		t.Fatalf("CounterNames = %v, want [a b c]", names)
	}
}

// TestExpvarBridge checks the optional expvar export renders the live
// snapshot and tolerates double publication.
func TestExpvarBridge(t *testing.T) {
	r := New()
	r.Counter("bridge_hits").Add(7)
	r.PublishExpvar("obs_test_bridge")
	r.PublishExpvar("obs_test_bridge") // second publish must not panic
	v := expvar.Get("obs_test_bridge")
	if v == nil {
		t.Fatal("expvar variable not published")
	}
	if !strings.Contains(v.String(), "bridge_hits") {
		t.Fatalf("expvar render missing counter: %s", v.String())
	}
}
