package obs

import "expvar"

// PublishExpvar bridges the registry onto the standard expvar surface
// under the given name: the published variable renders the live
// Snapshot as JSON on every read, so any process that already serves
// /debug/vars exposes the campaign metrics with zero extra plumbing.
//
// Publishing the same name twice is a no-op (expvar itself panics on
// duplicates; long-running harnesses re-instrument freely). A nil
// registry publishes an empty snapshot — still valid JSON.
func (r *Registry) PublishExpvar(name string) {
	if expvar.Get(name) != nil {
		return
	}
	expvar.Publish(name, expvar.Func(func() any { return r.Snapshot() }))
}
