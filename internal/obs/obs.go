// Package obs is the repo's low-overhead instrumentation layer: typed
// counters, gauges and fixed-bucket histograms behind a Registry, with
// a snapshot/export surface the lab CLIs use to emit per-run metric
// manifests (-metrics out.json).
//
// The paper's evidence chain is measured — 50.4 µW, 5.1 µJ per point
// multiplication, ~200 traces to DPA disclosure without RPC, 20 000
// traces of failure with it — and the bench "instrument rack" around
// the simulator (campaign engine, ARQ link, fault sweep) deserves the
// same treatment: unified counters instead of ad-hoc prints, so that
// throughput regressions and behavioural drift are visible in every
// run, not only when someone remembers to run cmd/benchlab.
//
// # Design constraints
//
//  1. Deterministic-safe: metrics observe the simulation, they never
//     perturb it. Nothing in this package draws randomness, reorders
//     work, or feeds values back into the system under test. Every
//     golden trace hash and determinism test passes unchanged whether
//     a Registry is attached or not.
//  2. Nil-safe no-op default: a nil *Registry hands out nil typed
//     instruments, and every instrument method on a nil receiver is a
//     no-op. Call sites therefore instrument unconditionally —
//     c := reg.Counter("x"); c.Add(1) — and pay one predictable
//     branch, zero heap allocations, when instrumentation is disabled
//     (pinned by AllocsPerRun tests).
//  3. Race-free under concurrency: instruments are plain atomics, so
//     worker goroutines of the campaign engine update them without
//     locks and without changing fold ordering.
//
// # Snapshot determinism
//
// Registry.Snapshot returns plain maps; Snapshot.JSON marshals them
// with encoding/json, which sorts map keys, so two snapshots of equal
// state serialize byte-identically. The manifest layer (manifest.go)
// builds on that to make -metrics output diffable across runs.
package obs

import (
	"encoding/json"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotone event counter. The zero value is ready; a nil
// *Counter is a no-op.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n (no-op on nil).
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one (no-op on nil).
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 on nil).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a last-value-wins float instrument. The zero value is
// ready; a nil *Gauge is a no-op.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v (no-op on nil).
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Value returns the stored value (0 on nil).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram is a fixed-bucket distribution instrument: observation v
// lands in the first bucket whose upper bound is >= v, or in the
// implicit +Inf overflow bucket. Bounds are fixed at construction so
// Observe never allocates; a nil *Histogram is a no-op.
type Histogram struct {
	bounds  []float64
	buckets []atomic.Int64 // len(bounds)+1; last is the +Inf bucket
	count   atomic.Int64
	sumBits atomic.Uint64 // float64 bits, CAS-accumulated
}

// NewHistogram builds a standalone histogram over the given ascending
// upper bounds. Most callers go through Registry.Histogram instead.
func NewHistogram(bounds []float64) *Histogram {
	b := append([]float64(nil), bounds...)
	sort.Float64s(b)
	return &Histogram{bounds: b, buckets: make([]atomic.Int64, len(b)+1)}
}

// Observe records one value (no-op on nil).
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	// Binary search for the first bound >= v; bounds are short (tens),
	// so this is a handful of compares with no allocation.
	lo, hi := 0, len(h.bounds)
	for lo < hi {
		mid := (lo + hi) / 2
		if h.bounds[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	h.buckets[lo].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		nxt := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, nxt) {
			return
		}
	}
}

// Count returns the number of observations (0 on nil).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of observations (0 on nil).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sumBits.Load())
}

// HistogramSnapshot is one histogram's frozen state. Counts has one
// entry per bound plus the trailing +Inf bucket.
type HistogramSnapshot struct {
	Bounds []float64 `json:"bounds"`
	Counts []int64   `json:"counts"`
	Count  int64     `json:"count"`
	Sum    float64   `json:"sum"`
}

// Registry owns a flat namespace of instruments. A nil *Registry is
// the disabled default: it hands out nil instruments and snapshots
// empty. Instrument lookup takes a mutex (do it once per campaign, not
// per sample); the instruments themselves are lock-free.
type Registry struct {
	mu     sync.Mutex
	ctrs   map[string]*Counter
	gauges map[string]*Gauge
	hists  map[string]*Histogram
}

// New returns an empty enabled registry.
func New() *Registry {
	return &Registry{
		ctrs:   map[string]*Counter{},
		gauges: map[string]*Gauge{},
		hists:  map[string]*Histogram{},
	}
}

// Counter returns the named counter, creating it on first use. A nil
// registry returns a nil (no-op) counter.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c := r.ctrs[name]
	if c == nil {
		c = &Counter{}
		r.ctrs[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use. A nil
// registry returns a nil (no-op) gauge.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g := r.gauges[name]
	if g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with the given
// bucket bounds on first use (later calls ignore bounds). A nil
// registry returns a nil (no-op) histogram.
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h := r.hists[name]
	if h == nil {
		h = NewHistogram(bounds)
		r.hists[name] = h
	}
	return h
}

// Snapshot is a frozen, export-ready view of a registry. The maps
// marshal with sorted keys (encoding/json's map contract), so equal
// states serialize byte-identically.
type Snapshot struct {
	Counters   map[string]int64             `json:"counters"`
	Gauges     map[string]float64           `json:"gauges"`
	Histograms map[string]HistogramSnapshot `json:"histograms"`
}

// Snapshot freezes the registry's current state. A nil registry
// snapshots empty (non-nil, zero-length maps, so JSON stays stable).
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{
		Counters:   map[string]int64{},
		Gauges:     map[string]float64{},
		Histograms: map[string]HistogramSnapshot{},
	}
	if r == nil {
		return s
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for name, c := range r.ctrs {
		s.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = g.Value()
	}
	for name, h := range r.hists {
		s.Histograms[name] = h.Snapshot()
	}
	return s
}

// JSON serializes the snapshot with sorted keys and trailing newline —
// the stable wire form the manifest embeds.
func (s Snapshot) JSON() ([]byte, error) {
	buf, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(buf, '\n'), nil
}

// CounterNames returns the sorted counter names — deterministic
// iteration order for report tables.
func (s Snapshot) CounterNames() []string {
	names := make([]string, 0, len(s.Counters))
	for n := range s.Counters {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// GaugeNames returns the sorted gauge names.
func (s Snapshot) GaugeNames() []string {
	names := make([]string, 0, len(s.Gauges))
	for n := range s.Gauges {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
