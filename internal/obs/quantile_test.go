package obs

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
)

var latencyBounds = []float64{1, 2, 5, 10, 20, 50, 100, 200, 500, 1000}

// TestMergedShardsEqualSingleStream pins the fleet contract: split any
// observation stream across any number of shards, merge the shard
// histograms in any order, and the bucket counts — hence every
// quantile — are bit-identical to observing the whole stream into one
// histogram.
func TestMergedShardsEqualSingleStream(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	obsStream := make([]float64, 5000)
	for i := range obsStream {
		obsStream[i] = math.Exp(r.NormFloat64()*1.5 + 2) // heavy-tailed latencies
	}

	single := NewHistogram(latencyBounds)
	for _, v := range obsStream {
		single.Observe(v)
	}
	want := single.Snapshot()

	for _, shards := range []int{1, 3, 7} {
		parts := make([]*Histogram, shards)
		for s := range parts {
			parts[s] = NewHistogram(latencyBounds)
		}
		for i, v := range obsStream {
			parts[i%shards].Observe(v)
		}
		// Merge in a scrambled order to pin order independence.
		order := r.Perm(shards)
		merged := NewHistogram(latencyBounds)
		for _, s := range order {
			if err := merged.Merge(parts[s]); err != nil {
				t.Fatal(err)
			}
		}
		got := merged.Snapshot()
		if !reflect.DeepEqual(got.Counts, want.Counts) || got.Count != want.Count {
			t.Fatalf("shards=%d: merged counts differ from single stream", shards)
		}
		for _, q := range []float64{0, 0.5, 0.95, 0.99, 1} {
			if g, w := got.Quantile(q), want.Quantile(q); g != w {
				t.Fatalf("shards=%d: q%.2f = %v merged vs %v single", shards, q, g, w)
			}
		}
	}
}

// TestMergeAssociative pins (a ⊕ b) ⊕ c == a ⊕ (b ⊕ c) on counts.
func TestMergeAssociative(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	mk := func() *Histogram {
		h := NewHistogram(latencyBounds)
		for i := 0; i < 500; i++ {
			h.Observe(r.Float64() * 1200)
		}
		return h
	}
	a, b, c := mk(), mk(), mk()

	left := NewHistogram(latencyBounds)
	for _, h := range []*Histogram{a, b} {
		if err := left.Merge(h); err != nil {
			t.Fatal(err)
		}
	}
	if err := left.Merge(c); err != nil {
		t.Fatal(err)
	}

	bc := NewHistogram(latencyBounds)
	for _, h := range []*Histogram{b, c} {
		if err := bc.Merge(h); err != nil {
			t.Fatal(err)
		}
	}
	right := NewHistogram(latencyBounds)
	if err := right.Merge(a); err != nil {
		t.Fatal(err)
	}
	if err := right.Merge(bc); err != nil {
		t.Fatal(err)
	}

	ls, rs := left.Snapshot(), right.Snapshot()
	if !reflect.DeepEqual(ls.Counts, rs.Counts) || ls.Count != rs.Count {
		t.Fatal("merge is not associative on bucket counts")
	}
}

// TestMergeRejectsBoundMismatch pins that incompatible histograms
// refuse to merge instead of silently misbinning.
func TestMergeRejectsBoundMismatch(t *testing.T) {
	a := NewHistogram([]float64{1, 2, 3})
	b := NewHistogram([]float64{1, 2, 4})
	if err := a.Merge(b); err == nil {
		t.Fatal("merge accepted mismatched bounds")
	}
	c := NewHistogram([]float64{1, 2})
	if err := a.Merge(c); err == nil {
		t.Fatal("merge accepted different bound counts")
	}
	if err := a.MergeSnapshot(HistogramSnapshot{Bounds: []float64{1, 2, 3}, Counts: []int64{1, 0, 0}, Count: 2}); err == nil {
		t.Fatal("merge accepted a snapshot whose counts do not sum to Count")
	}
}

// TestSnapshotRoundTrip pins NewHistogramFromSnapshot as the exact
// inverse of Snapshot, including continued observation afterwards.
func TestSnapshotRoundTrip(t *testing.T) {
	h := NewHistogram(latencyBounds)
	for i := 0; i < 100; i++ {
		h.Observe(float64(i * 13 % 700))
	}
	hs := h.Snapshot()
	restored, err := NewHistogramFromSnapshot(hs)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(restored.Snapshot(), hs) {
		t.Fatal("restore is not the inverse of snapshot")
	}
	h.Observe(42)
	restored.Observe(42)
	a, b := h.Snapshot(), restored.Snapshot()
	if !reflect.DeepEqual(a.Counts, b.Counts) || a.Count != b.Count {
		t.Fatal("restored histogram diverges on continued observation")
	}
	if _, err := NewHistogramFromSnapshot(HistogramSnapshot{Bounds: []float64{1}, Counts: []int64{1}}); err == nil {
		t.Fatal("restore accepted a malformed snapshot")
	}
}

// TestSnapshotObserveMatchesLive pins that the offline snapshot form
// bins exactly like the live atomic histogram, and that
// snapshot-to-snapshot Merge agrees with the live merge.
func TestSnapshotObserveMatchesLive(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	live := NewHistogram(latencyBounds)
	off := NewHistogramSnapshot(latencyBounds)
	for i := 0; i < 2000; i++ {
		v := r.Float64() * 1500
		live.Observe(v)
		off.Observe(v)
	}
	ls := live.Snapshot()
	if !reflect.DeepEqual(ls.Counts, off.Counts) || ls.Count != off.Count {
		t.Fatal("offline snapshot bins differently from live histogram")
	}
	other := NewHistogramSnapshot(latencyBounds)
	for i := 0; i < 500; i++ {
		other.Observe(r.Float64() * 1500)
	}
	merged := NewHistogramSnapshot(latencyBounds)
	if err := merged.Merge(off); err != nil {
		t.Fatal(err)
	}
	if err := merged.Merge(other); err != nil {
		t.Fatal(err)
	}
	if merged.Count != off.Count+other.Count {
		t.Fatal("snapshot merge lost observations")
	}
	bad := NewHistogramSnapshot([]float64{1, 2})
	if err := merged.Merge(bad); err == nil {
		t.Fatal("snapshot merge accepted mismatched bounds")
	}
}

// TestQuantileEstimator pins the estimator's anchor points on a known
// distribution: uniform counts over [0, 100) in 10 buckets.
func TestQuantileEstimator(t *testing.T) {
	bounds := []float64{10, 20, 30, 40, 50, 60, 70, 80, 90, 100}
	h := NewHistogram(bounds)
	for i := 0; i < 1000; i++ {
		h.Observe(float64(i) / 10) // 0.0 .. 99.9 uniformly
	}
	cases := []struct{ q, want, tol float64 }{
		{0.5, 50, 1.0},
		{0.95, 95, 1.0},
		{0.99, 99, 1.0},
		{1.0, 100, 0},
	}
	for _, c := range cases {
		got := h.Quantile(c.q)
		if math.Abs(got-c.want) > c.tol {
			t.Fatalf("q%.2f = %v, want %v ± %v", c.q, got, c.want, c.tol)
		}
	}
	if !math.IsNaN(NewHistogram(bounds).Quantile(0.5)) {
		t.Fatal("empty histogram must estimate NaN")
	}
	var nilH *Histogram
	if !math.IsNaN(nilH.Quantile(0.5)) {
		t.Fatal("nil histogram must estimate NaN")
	}
	// Overflow observations clamp to the largest finite bound.
	h.Observe(1e9)
	if got := h.Quantile(1); got != 100 {
		t.Fatalf("overflow quantile = %v, want clamp to 100", got)
	}
}
