package obs

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
)

var latencyBounds = []float64{1, 2, 5, 10, 20, 50, 100, 200, 500, 1000}

// TestMergedShardsEqualSingleStream pins the fleet contract: split any
// observation stream across any number of shards, merge the shard
// histograms in any order, and the bucket counts — hence every
// quantile — are bit-identical to observing the whole stream into one
// histogram.
func TestMergedShardsEqualSingleStream(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	obsStream := make([]float64, 5000)
	for i := range obsStream {
		obsStream[i] = math.Exp(r.NormFloat64()*1.5 + 2) // heavy-tailed latencies
	}

	single := NewHistogram(latencyBounds)
	for _, v := range obsStream {
		single.Observe(v)
	}
	want := single.Snapshot()

	for _, shards := range []int{1, 3, 7} {
		parts := make([]*Histogram, shards)
		for s := range parts {
			parts[s] = NewHistogram(latencyBounds)
		}
		for i, v := range obsStream {
			parts[i%shards].Observe(v)
		}
		// Merge in a scrambled order to pin order independence.
		order := r.Perm(shards)
		merged := NewHistogram(latencyBounds)
		for _, s := range order {
			if err := merged.Merge(parts[s]); err != nil {
				t.Fatal(err)
			}
		}
		got := merged.Snapshot()
		if !reflect.DeepEqual(got.Counts, want.Counts) || got.Count != want.Count {
			t.Fatalf("shards=%d: merged counts differ from single stream", shards)
		}
		for _, q := range []float64{0, 0.5, 0.95, 0.99, 1} {
			if g, w := got.Quantile(q), want.Quantile(q); g != w {
				t.Fatalf("shards=%d: q%.2f = %v merged vs %v single", shards, q, g, w)
			}
		}
	}
}

// TestMergeAssociative pins (a ⊕ b) ⊕ c == a ⊕ (b ⊕ c) on counts.
func TestMergeAssociative(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	mk := func() *Histogram {
		h := NewHistogram(latencyBounds)
		for i := 0; i < 500; i++ {
			h.Observe(r.Float64() * 1200)
		}
		return h
	}
	a, b, c := mk(), mk(), mk()

	left := NewHistogram(latencyBounds)
	for _, h := range []*Histogram{a, b} {
		if err := left.Merge(h); err != nil {
			t.Fatal(err)
		}
	}
	if err := left.Merge(c); err != nil {
		t.Fatal(err)
	}

	bc := NewHistogram(latencyBounds)
	for _, h := range []*Histogram{b, c} {
		if err := bc.Merge(h); err != nil {
			t.Fatal(err)
		}
	}
	right := NewHistogram(latencyBounds)
	if err := right.Merge(a); err != nil {
		t.Fatal(err)
	}
	if err := right.Merge(bc); err != nil {
		t.Fatal(err)
	}

	ls, rs := left.Snapshot(), right.Snapshot()
	if !reflect.DeepEqual(ls.Counts, rs.Counts) || ls.Count != rs.Count {
		t.Fatal("merge is not associative on bucket counts")
	}
}

// TestMergeRejectsBoundMismatch pins that incompatible histograms
// refuse to merge instead of silently misbinning.
func TestMergeRejectsBoundMismatch(t *testing.T) {
	a := NewHistogram([]float64{1, 2, 3})
	b := NewHistogram([]float64{1, 2, 4})
	if err := a.Merge(b); err == nil {
		t.Fatal("merge accepted mismatched bounds")
	}
	c := NewHistogram([]float64{1, 2})
	if err := a.Merge(c); err == nil {
		t.Fatal("merge accepted different bound counts")
	}
	if err := a.MergeSnapshot(HistogramSnapshot{Bounds: []float64{1, 2, 3}, Counts: []int64{1, 0, 0}, Count: 2}); err == nil {
		t.Fatal("merge accepted a snapshot whose counts do not sum to Count")
	}
}

// TestSnapshotRoundTrip pins NewHistogramFromSnapshot as the exact
// inverse of Snapshot, including continued observation afterwards.
func TestSnapshotRoundTrip(t *testing.T) {
	h := NewHistogram(latencyBounds)
	for i := 0; i < 100; i++ {
		h.Observe(float64(i * 13 % 700))
	}
	hs := h.Snapshot()
	restored, err := NewHistogramFromSnapshot(hs)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(restored.Snapshot(), hs) {
		t.Fatal("restore is not the inverse of snapshot")
	}
	h.Observe(42)
	restored.Observe(42)
	a, b := h.Snapshot(), restored.Snapshot()
	if !reflect.DeepEqual(a.Counts, b.Counts) || a.Count != b.Count {
		t.Fatal("restored histogram diverges on continued observation")
	}
	if _, err := NewHistogramFromSnapshot(HistogramSnapshot{Bounds: []float64{1}, Counts: []int64{1}}); err == nil {
		t.Fatal("restore accepted a malformed snapshot")
	}
}

// TestSnapshotObserveMatchesLive pins that the offline snapshot form
// bins exactly like the live atomic histogram, and that
// snapshot-to-snapshot Merge agrees with the live merge.
func TestSnapshotObserveMatchesLive(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	live := NewHistogram(latencyBounds)
	off := NewHistogramSnapshot(latencyBounds)
	for i := 0; i < 2000; i++ {
		v := r.Float64() * 1500
		live.Observe(v)
		off.Observe(v)
	}
	ls := live.Snapshot()
	if !reflect.DeepEqual(ls.Counts, off.Counts) || ls.Count != off.Count {
		t.Fatal("offline snapshot bins differently from live histogram")
	}
	other := NewHistogramSnapshot(latencyBounds)
	for i := 0; i < 500; i++ {
		other.Observe(r.Float64() * 1500)
	}
	merged := NewHistogramSnapshot(latencyBounds)
	if err := merged.Merge(off); err != nil {
		t.Fatal(err)
	}
	if err := merged.Merge(other); err != nil {
		t.Fatal(err)
	}
	if merged.Count != off.Count+other.Count {
		t.Fatal("snapshot merge lost observations")
	}
	bad := NewHistogramSnapshot([]float64{1, 2})
	if err := merged.Merge(bad); err == nil {
		t.Fatal("snapshot merge accepted mismatched bounds")
	}
}

// TestQuantileEdgeCases is the boundary table: empty snapshots, all
// mass in the overflow bucket, the q=0/q=1 anchors, out-of-range and
// NaN q, and first buckets with non-positive upper edges (where the
// naive zero anchor used to interpolate downward, handing out
// non-monotone quantiles).
func TestQuantileEdgeCases(t *testing.T) {
	fill := func(bounds []float64, vals ...float64) HistogramSnapshot {
		hs := NewHistogramSnapshot(bounds)
		for _, v := range vals {
			hs.Observe(v)
		}
		return hs
	}
	posB := []float64{10, 20, 30}
	negB := []float64{-10, -5, 5}
	cases := []struct {
		name string
		hs   HistogramSnapshot
		q    float64
		want float64 // NaN means "must be NaN"
	}{
		{"empty/q0", NewHistogramSnapshot(posB), 0, math.NaN()},
		{"empty/q0.5", NewHistogramSnapshot(posB), 0.5, math.NaN()},
		{"empty/q1", NewHistogramSnapshot(posB), 1, math.NaN()},
		{"zero-value snapshot", HistogramSnapshot{}, 0.5, math.NaN()},
		{"nan q", fill(posB, 15), math.NaN(), math.NaN()},

		// All mass in the overflow bucket clamps to the largest finite
		// bound at every q, including the anchors.
		{"overflow-only/q0", fill(posB, 1e9, 2e9), 0, 30},
		{"overflow-only/q0.5", fill(posB, 1e9, 2e9), 0.5, 30},
		{"overflow-only/q1", fill(posB, 1e9, 2e9), 1, 30},

		// q=0 anchors at the lower edge of the first occupied bucket,
		// q=1 at the upper edge of the last occupied one.
		{"anchors/q0", fill(posB, 15, 15, 25), 0, 10},
		{"anchors/q1", fill(posB, 15, 15, 25), 1, 30},
		{"first-bucket/q0", fill(posB, 5, 15), 0, 0},
		{"last-finite/q1", fill(posB, 5, 15), 1, 20},

		// Out-of-range q clamps to the anchors.
		{"q below range", fill(posB, 15), -0.5, 10},
		{"q above range", fill(posB, 15), 2, 20},

		// Non-positive first bound: clamp to the edge, never
		// interpolate away from it.
		{"negative/q0", fill(negB, -20, -20), 0, -10},
		{"negative/q0.5", fill(negB, -20, -20), 0.5, -10},
		{"negative/q1", fill(negB, -20, -20), 1, -10},
	}
	for _, c := range cases {
		got := c.hs.Quantile(c.q)
		if math.IsNaN(c.want) {
			if !math.IsNaN(got) {
				t.Errorf("%s: got %v, want NaN", c.name, got)
			}
		} else if got != c.want {
			t.Errorf("%s: got %v, want %v", c.name, got, c.want)
		}
	}

	// Monotonicity across the negative-bound histogram: the old zero
	// anchor made q=1 sort below q=0 when mass sat in a (-inf, b<=0]
	// bucket.
	mixed := fill(negB, -20, -7, -7, 0, 0, 10)
	prev := math.Inf(-1)
	for _, q := range []float64{0, 0.1, 0.25, 0.5, 0.75, 0.9, 1} {
		v := mixed.Quantile(q)
		if v < prev {
			t.Fatalf("quantiles not monotone: q%.2f = %v after %v", q, v, prev)
		}
		prev = v
	}
}

// TestQuantileMergedShardEdges pins that the boundary quantiles of a
// merged set of shards — including empty shards and shards whose mass
// is entirely in the overflow bucket — are bit-identical to the
// single-stream histogram over the same observations.
func TestQuantileMergedShardEdges(t *testing.T) {
	bounds := []float64{1, 2, 5, 10}
	streams := [][]float64{
		{},                  // an idle shard
		{1e9, 1e9, 1e9},     // overflow only
		{0.5, 3, 3, 7, 1e9}, // mixed
		{10, 10},            // exactly on the last finite edge
	}
	single := NewHistogramSnapshot(bounds)
	merged := NewHistogramSnapshot(bounds)
	for _, st := range streams {
		shard := NewHistogramSnapshot(bounds)
		for _, v := range st {
			single.Observe(v)
			shard.Observe(v)
		}
		if err := merged.Merge(shard); err != nil {
			t.Fatal(err)
		}
	}
	for _, q := range []float64{0, 0.25, 0.5, 0.75, 0.95, 1} {
		if g, w := merged.Quantile(q), single.Quantile(q); g != w {
			t.Fatalf("q%.2f: merged %v vs single %v", q, g, w)
		}
	}
}

// TestQuantileEstimator pins the estimator's anchor points on a known
// distribution: uniform counts over [0, 100) in 10 buckets.
func TestQuantileEstimator(t *testing.T) {
	bounds := []float64{10, 20, 30, 40, 50, 60, 70, 80, 90, 100}
	h := NewHistogram(bounds)
	for i := 0; i < 1000; i++ {
		h.Observe(float64(i) / 10) // 0.0 .. 99.9 uniformly
	}
	cases := []struct{ q, want, tol float64 }{
		{0.5, 50, 1.0},
		{0.95, 95, 1.0},
		{0.99, 99, 1.0},
		{1.0, 100, 0},
	}
	for _, c := range cases {
		got := h.Quantile(c.q)
		if math.Abs(got-c.want) > c.tol {
			t.Fatalf("q%.2f = %v, want %v ± %v", c.q, got, c.want, c.tol)
		}
	}
	if !math.IsNaN(NewHistogram(bounds).Quantile(0.5)) {
		t.Fatal("empty histogram must estimate NaN")
	}
	var nilH *Histogram
	if !math.IsNaN(nilH.Quantile(0.5)) {
		t.Fatal("nil histogram must estimate NaN")
	}
	// Overflow observations clamp to the largest finite bound.
	h.Observe(1e9)
	if got := h.Quantile(1); got != 100 {
		t.Fatalf("overflow quantile = %v, want clamp to 100", got)
	}
}
