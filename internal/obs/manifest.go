package obs

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"runtime"
	"strings"
)

// Manifest is the per-run provenance record every lab CLI emits with
// -metrics out.json: enough environment to interpret (or distrust) the
// numbers, the exact flag set of the run, and the final metric
// snapshot. REPORT.md tables are folded from these by cmd/reportgen.
type Manifest struct {
	// Tool and Subcommand identify the producing binary ("scalab",
	// "tvla").
	Tool       string `json:"tool"`
	Subcommand string `json:"subcommand,omitempty"`
	// Seed is the experiment seed: the run replays bit-identically
	// from it (for any worker count), so the manifest doubles as a
	// reproduction recipe.
	Seed uint64 `json:"seed"`
	// Environment stamp.
	GitSHA     string `json:"git_sha"`
	GoVersion  string `json:"go_version"`
	GOOS       string `json:"goos"`
	GOARCH     string `json:"goarch"`
	GoMaxProcs int    `json:"gomaxprocs"`
	NumCPU     int    `json:"num_cpu"`
	// Flags is the full resolved flag set of the run (defaults
	// included), name → rendered value.
	Flags map[string]string `json:"flags,omitempty"`
	// Metrics is the registry snapshot at exit.
	Metrics Snapshot `json:"metrics"`
}

// NewManifest stamps a manifest for one CLI run: environment, the
// resolved flag set (fs may be nil), and the registry snapshot (reg
// may be nil — the manifest then records empty metrics, which is still
// a valid provenance record).
func NewManifest(tool, subcommand string, seed uint64, fs *flag.FlagSet, reg *Registry) Manifest {
	m := Manifest{
		Tool:       tool,
		Subcommand: subcommand,
		Seed:       seed,
		GitSHA:     GitSHA(),
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		GoMaxProcs: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		Metrics:    reg.Snapshot(),
	}
	if fs != nil {
		m.Flags = map[string]string{}
		fs.VisitAll(func(f *flag.Flag) {
			m.Flags[f.Name] = f.Value.String()
		})
	}
	return m
}

// Write serializes the manifest (stable, sorted-key JSON) to path.
func (m Manifest) Write(path string) error {
	buf, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return fmt.Errorf("obs: marshal manifest: %w", err)
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		return fmt.Errorf("obs: write manifest: %w", err)
	}
	return nil
}

// ReadManifest loads and validates a manifest written by Write. It
// rejects files missing the required provenance keys so downstream
// folding (cmd/reportgen) fails loudly on truncated or foreign JSON.
func ReadManifest(path string) (*Manifest, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("obs: read manifest: %w", err)
	}
	var m Manifest
	if err := json.Unmarshal(buf, &m); err != nil {
		return nil, fmt.Errorf("obs: parse manifest %s: %w", path, err)
	}
	if err := m.Validate(); err != nil {
		return nil, fmt.Errorf("obs: manifest %s: %w", path, err)
	}
	return &m, nil
}

// Validate checks the required manifest keys are present.
func (m *Manifest) Validate() error {
	var missing []string
	if m.Tool == "" {
		missing = append(missing, "tool")
	}
	if m.GoVersion == "" {
		missing = append(missing, "go_version")
	}
	if m.GitSHA == "" {
		missing = append(missing, "git_sha")
	}
	if m.GoMaxProcs == 0 {
		missing = append(missing, "gomaxprocs")
	}
	if m.Metrics.Counters == nil && m.Metrics.Gauges == nil && m.Metrics.Histograms == nil {
		missing = append(missing, "metrics")
	}
	if len(missing) > 0 {
		return fmt.Errorf("missing required keys: %s", strings.Join(missing, ", "))
	}
	return nil
}

// GitSHA best-effort stamps the working-tree revision: the short HEAD
// SHA, "-dirty" suffixed when uncommitted changes are present, or
// "unknown" outside a git checkout. (Shared by cmd/benchlab's report
// header and every manifest.)
func GitSHA() string {
	out, err := exec.Command("git", "rev-parse", "--short=12", "HEAD").Output()
	if err != nil {
		return "unknown"
	}
	sha := strings.TrimSpace(string(out))
	if err := exec.Command("git", "diff", "--quiet", "HEAD").Run(); err != nil {
		sha += "-dirty"
	}
	return sha
}
