package obs

import (
	"fmt"
	"math"
	"sort"
)

// Snapshot freezes one histogram's state (zero snapshot on nil).
func (h *Histogram) Snapshot() HistogramSnapshot {
	if h == nil {
		return HistogramSnapshot{}
	}
	hs := HistogramSnapshot{
		Bounds: append([]float64(nil), h.bounds...),
		Counts: make([]int64, len(h.buckets)),
		Count:  h.Count(),
		Sum:    h.Sum(),
	}
	for i := range h.buckets {
		hs.Counts[i] = h.buckets[i].Load()
	}
	return hs
}

// boundsEqual reports whether two bound slices are element-wise
// identical — the precondition for a meaningful merge.
func boundsEqual(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// validate checks a snapshot's internal shape: one count per bound
// plus the +Inf bucket, bucket counts summing to Count.
func (hs HistogramSnapshot) validate() error {
	if len(hs.Counts) != len(hs.Bounds)+1 {
		return fmt.Errorf("obs: histogram snapshot has %d counts for %d bounds (want %d)",
			len(hs.Counts), len(hs.Bounds), len(hs.Bounds)+1)
	}
	var total int64
	for i, c := range hs.Counts {
		if c < 0 {
			return fmt.Errorf("obs: histogram snapshot bucket %d has negative count %d", i, c)
		}
		total += c
	}
	if total != hs.Count {
		return fmt.Errorf("obs: histogram snapshot bucket counts sum to %d, Count says %d", total, hs.Count)
	}
	return nil
}

// NewHistogramFromSnapshot reconstructs a live histogram from a frozen
// snapshot (the shard-resume path: a restored histogram continues
// observing exactly where the checkpoint stopped).
func NewHistogramFromSnapshot(hs HistogramSnapshot) (*Histogram, error) {
	if err := hs.validate(); err != nil {
		return nil, err
	}
	h := NewHistogram(hs.Bounds)
	for i, c := range hs.Counts {
		h.buckets[i].Store(c)
	}
	h.count.Store(hs.Count)
	h.sumBits.Store(math.Float64bits(hs.Sum))
	return h, nil
}

// MergeSnapshot folds a frozen shard histogram into h. Bucket counts
// and Count add exactly (integers), so any merge order and any
// partition of the observation stream produce identical counts — the
// property the fleet shard-merge tests pin. Sum is a float
// accumulation and is therefore only order-independent up to rounding;
// derived reports that must be byte-stable under re-sharding use
// bucket counts, never Sum.
func (h *Histogram) MergeSnapshot(hs HistogramSnapshot) error {
	if h == nil {
		return fmt.Errorf("obs: MergeSnapshot on nil histogram")
	}
	if err := hs.validate(); err != nil {
		return err
	}
	if !boundsEqual(h.bounds, hs.Bounds) {
		return fmt.Errorf("obs: histogram bounds mismatch: %v vs %v", h.bounds, hs.Bounds)
	}
	for i, c := range hs.Counts {
		h.buckets[i].Add(c)
	}
	h.count.Add(hs.Count)
	for {
		old := h.sumBits.Load()
		nxt := math.Float64bits(math.Float64frombits(old) + hs.Sum)
		if h.sumBits.CompareAndSwap(old, nxt) {
			break
		}
	}
	return nil
}

// Merge folds another live histogram into h (bounds must match).
func (h *Histogram) Merge(o *Histogram) error {
	if o == nil {
		return nil
	}
	return h.MergeSnapshot(o.Snapshot())
}

// NewHistogramSnapshot returns an empty snapshot over the given
// ascending bounds — the offline (single-goroutine) histogram form
// accumulator structs embed directly: Observe/Merge on a snapshot
// need no atomics, so a fold loop that is already serialized (e.g. a
// campaign shard fold) pays plain integer increments.
func NewHistogramSnapshot(bounds []float64) HistogramSnapshot {
	b := append([]float64(nil), bounds...)
	sort.Float64s(b)
	return HistogramSnapshot{Bounds: b, Counts: make([]int64, len(b)+1)}
}

// Observe records one value into the snapshot. Not safe for
// concurrent use — the caller provides the serialization.
func (hs *HistogramSnapshot) Observe(v float64) {
	lo, hi := 0, len(hs.Bounds)
	for lo < hi {
		mid := (lo + hi) / 2
		if hs.Bounds[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	hs.Counts[lo]++
	hs.Count++
	hs.Sum += v
}

// Merge folds another snapshot into hs (bounds must match). Counts
// add exactly; Sum is float and order-independent only to rounding.
func (hs *HistogramSnapshot) Merge(o HistogramSnapshot) error {
	if err := o.validate(); err != nil {
		return err
	}
	if err := hs.validate(); err != nil {
		return err
	}
	if !boundsEqual(hs.Bounds, o.Bounds) {
		return fmt.Errorf("obs: histogram bounds mismatch: %v vs %v", hs.Bounds, o.Bounds)
	}
	for i, c := range o.Counts {
		hs.Counts[i] += c
	}
	hs.Count += o.Count
	hs.Sum += o.Sum
	return nil
}

// Quantile estimates the q-quantile (q in [0, 1]) by linear
// interpolation inside the bucket containing rank q·Count, the
// standard fixed-bucket estimator: exact at bucket boundaries,
// interpolated within. Values landing in the +Inf overflow bucket
// clamp to the largest finite bound. Returns NaN on an empty
// histogram. Because the estimate is a pure function of (Bounds,
// Counts), merged shards yield bit-identical quantiles to the
// single-stream run.
func (hs HistogramSnapshot) Quantile(q float64) float64 {
	if hs.Count == 0 || len(hs.Counts) != len(hs.Bounds)+1 || math.IsNaN(q) {
		return math.NaN()
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(hs.Count)
	cum := 0.0
	for i, c := range hs.Counts {
		prev := cum
		cum += float64(c)
		if cum < rank || c == 0 {
			continue
		}
		if i == len(hs.Bounds) {
			break // overflow bucket: clamp below
		}
		hi := hs.Bounds[i]
		lo := 0.0
		if i > 0 {
			lo = hs.Bounds[i-1]
		} else if hi <= 0 {
			// The first bucket spans (-inf, Bounds[0]]. The zero anchor
			// only makes sense for nonnegative data; with a non-positive
			// upper edge it would interpolate DOWNWARD as q grows
			// (non-monotone quantiles), so clamp to the edge instead.
			return hi
		}
		return lo + (hi-lo)*((rank-prev)/float64(c))
	}
	if len(hs.Bounds) == 0 {
		return math.NaN()
	}
	return hs.Bounds[len(hs.Bounds)-1]
}

// Quantile estimates the q-quantile of the live histogram (NaN on nil
// or empty).
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil {
		return math.NaN()
	}
	return h.Snapshot().Quantile(q)
}
