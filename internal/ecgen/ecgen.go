// Package ecgen implements binary Weierstrass curves over generic
// GF(2^m) fields (gf2m.Field), used by the security-level sweep
// experiments: the introduction's "longer key length translates in a
// larger computational load" is measured here with real arithmetic at
// m = 131…283, not just a cycle formula. Synthetic curves (random b,
// point found by solving the curve equation) exercise the exact same
// code paths as standardized ones; group-order knowledge is not needed
// for ladder-cost measurements.
package ecgen

import (
	"errors"

	"medsec/internal/gf2m"
	"medsec/internal/modn"
)

// Curve is y² + xy = x³ + ax² + b over a generic binary field.
type Curve struct {
	F    *gf2m.Field
	A, B gf2m.FE
}

// Point is an affine point.
type Point struct {
	X, Y gf2m.FE
	Inf  bool
}

// NewCurve builds a curve; b must be nonzero (nonsingularity).
func NewCurve(f *gf2m.Field, a, b gf2m.FE) (*Curve, error) {
	if f == nil {
		return nil, errors.New("ecgen: nil field")
	}
	if f.IsZero(b) {
		return nil, errors.New("ecgen: b must be nonzero")
	}
	return &Curve{F: f, A: f.Copy(a), B: f.Copy(b)}, nil
}

// SyntheticCurve builds a random curve with a = 1 over GF(2^m) (m odd,
// for the half-trace solver) plus a point on it.
func SyntheticCurve(m int, poly []int, src func() uint64) (*Curve, Point, error) {
	if m%2 == 0 {
		return nil, Point{}, errors.New("ecgen: synthetic curves need odd m")
	}
	f, err := gf2m.NewField(m, poly)
	if err != nil {
		return nil, Point{}, err
	}
	var b gf2m.FE
	for {
		b = f.Rand(src)
		if !f.IsZero(b) {
			break
		}
	}
	c, err := NewCurve(f, f.One(), b)
	if err != nil {
		return nil, Point{}, err
	}
	p, err := c.RandomPoint(src)
	if err != nil {
		return nil, Point{}, err
	}
	return c, p, nil
}

// Infinity returns the identity.
func Infinity() Point { return Point{Inf: true} }

// Equal reports point equality.
func (c *Curve) Equal(p, q Point) bool {
	if p.Inf || q.Inf {
		return p.Inf == q.Inf
	}
	return c.F.Equal(p.X, q.X) && c.F.Equal(p.Y, q.Y)
}

// OnCurve checks the curve equation.
func (c *Curve) OnCurve(p Point) bool {
	if p.Inf {
		return true
	}
	f := c.F
	lhs := f.Add(f.Sqr(p.Y), f.Mul(p.X, p.Y))
	x2 := f.Sqr(p.X)
	rhs := f.Add(f.Add(f.Mul(x2, p.X), f.Mul(c.A, x2)), c.B)
	return f.Equal(lhs, rhs)
}

// Neg returns -p.
func (c *Curve) Neg(p Point) Point {
	if p.Inf {
		return p
	}
	return Point{X: c.F.Copy(p.X), Y: c.F.Add(p.X, p.Y)}
}

// Add is the affine group law.
func (c *Curve) Add(p, q Point) Point {
	if p.Inf {
		return q
	}
	if q.Inf {
		return p
	}
	f := c.F
	if f.Equal(p.X, q.X) {
		if f.Equal(p.Y, q.Y) {
			return c.Double(p)
		}
		return Infinity()
	}
	lambda := f.Div(f.Add(p.Y, q.Y), f.Add(p.X, q.X))
	x3 := f.Add(f.Add(f.Add(f.Sqr(lambda), lambda), f.Add(p.X, q.X)), c.A)
	y3 := f.Add(f.Add(f.Mul(lambda, f.Add(p.X, x3)), x3), p.Y)
	return Point{X: x3, Y: y3}
}

// Double returns 2p.
func (c *Curve) Double(p Point) Point {
	if p.Inf || c.F.IsZero(p.X) {
		return Infinity()
	}
	f := c.F
	lambda := f.Add(p.X, f.Div(p.Y, p.X))
	x3 := f.Add(f.Add(f.Sqr(lambda), lambda), c.A)
	y3 := f.Add(f.Sqr(p.X), f.Mul(f.Add(lambda, f.One()), x3))
	return Point{X: x3, Y: y3}
}

// ScalarMulDoubleAndAdd is the reference scalar multiplication.
func (c *Curve) ScalarMulDoubleAndAdd(k modn.Scalar, p Point) Point {
	r := Infinity()
	for i := k.BitLen() - 1; i >= 0; i-- {
		r = c.Double(r)
		if k.Bit(i) == 1 {
			r = c.Add(r, p)
		}
	}
	return r
}

// RandomPoint finds a random affine point by solving the quadratic
// (half-trace; m must be odd), cofactor-uncleaned (fine for cost
// measurements and group-law tests).
func (c *Curve) RandomPoint(src func() uint64) (Point, error) {
	f := c.F
	for tries := 0; tries < 1000; tries++ {
		x := f.Rand(src)
		if f.IsZero(x) {
			continue
		}
		// z² + z = x + a + b/x².
		rhs := f.Add(f.Add(x, c.A), f.Div(c.B, f.Sqr(x)))
		if f.Trace(rhs) != 0 {
			continue
		}
		z := f.HalfTrace(rhs)
		y := f.Mul(x, z)
		p := Point{X: x, Y: y}
		if !c.OnCurve(p) {
			return Point{}, errors.New("ecgen: solver produced off-curve point")
		}
		return p, nil
	}
	return Point{}, errors.New("ecgen: no point found")
}

// MAdd / MDouble: x-only ladder formulas over the generic field.
func (c *Curve) mAdd(xa, za, xb, zb, x gf2m.FE) (gf2m.FE, gf2m.FE) {
	f := c.F
	t1 := f.Mul(xa, zb)
	t2 := f.Mul(xb, za)
	z3 := f.Sqr(f.Add(t1, t2))
	x3 := f.Add(f.Mul(x, z3), f.Mul(t1, t2))
	return x3, z3
}

func (c *Curve) mDouble(x, z gf2m.FE) (gf2m.FE, gf2m.FE) {
	f := c.F
	xx := f.Sqr(x)
	zz := f.Sqr(z)
	z2 := f.Mul(xx, zz)
	x2 := f.Add(f.Sqr(xx), f.Mul(c.B, f.Sqr(zz)))
	return x2, z2
}

// LadderOptions mirrors ec.LadderOptions for the generic curve.
type LadderOptions struct {
	// Rand enables randomized projective coordinates.
	Rand func() uint64
}

// ScalarMulLadder computes k*P with the complete x-only Montgomery
// ladder over m+1 fixed iterations, with y-recovery.
func (c *Curve) ScalarMulLadder(k modn.Scalar, p Point, opt LadderOptions) (Point, error) {
	if p.Inf || c.F.IsZero(p.X) {
		return Point{}, errors.New("ecgen: ladder requires finite point with x != 0")
	}
	f := c.F
	bits := c.F.M + 1
	if k.BitLen() > bits {
		return Point{}, errors.New("ecgen: scalar too long for this field")
	}
	// (X0:Z0) = O, (X1:Z1) = P, optionally randomized.
	x0, z0 := f.One(), f.Zero()
	x1, z1 := f.Copy(p.X), f.One()
	if opt.Rand != nil {
		lam := f.Rand(opt.Rand)
		for f.IsZero(lam) {
			lam = f.Rand(opt.Rand)
		}
		mu := f.Rand(opt.Rand)
		for f.IsZero(mu) {
			mu = f.Rand(opt.Rand)
		}
		x0 = lam
		x1 = f.Mul(x1, mu)
		z1 = mu
	}
	for i := bits - 1; i >= 0; i-- {
		if k.Bit(i) == 1 {
			x0, z0 = c.mAdd(x0, z0, x1, z1, p.X)
			x1, z1 = c.mDouble(x1, z1)
		} else {
			x1, z1 = c.mAdd(x0, z0, x1, z1, p.X)
			x0, z0 = c.mDouble(x0, z0)
		}
	}
	switch {
	case f.IsZero(z0):
		return Infinity(), nil
	case f.IsZero(z1):
		return c.Neg(p), nil
	}
	ax0 := f.Div(x0, z0)
	ax1 := f.Div(x1, z1)
	// López–Dahab y-recovery.
	t0 := f.Add(ax0, p.X)
	t1 := f.Add(ax1, p.X)
	acc := f.Add(f.Mul(t0, t1), f.Add(f.Sqr(p.X), p.Y))
	y0 := f.Add(f.Div(f.Mul(t0, acc), p.X), p.Y)
	return Point{X: ax0, Y: y0}, nil
}
