package ecgen

import (
	"testing"

	"medsec/internal/ec"
	"medsec/internal/gf2m"
	"medsec/internal/modn"
	"medsec/internal/rng"
)

// sweepFields are the odd-degree fields of the security-level sweep.
func sweepFields() []struct {
	m    int
	poly []int
} {
	return []struct {
		m    int
		poly []int
	}{
		{131, []int{8, 3, 2, 0}},
		{163, []int{7, 6, 3, 0}},
		{233, []int{74, 0}},
		{283, []int{12, 7, 5, 0}},
	}
}

func TestSyntheticCurveBasics(t *testing.T) {
	for _, fc := range sweepFields() {
		src := rng.NewDRBG(uint64(fc.m)).Uint64
		c, p, err := SyntheticCurve(fc.m, fc.poly, src)
		if err != nil {
			t.Fatalf("m=%d: %v", fc.m, err)
		}
		if !c.OnCurve(p) {
			t.Fatalf("m=%d: generated point off curve", fc.m)
		}
		if !c.OnCurve(Infinity()) {
			t.Fatal("O not on curve")
		}
		// Group-law sanity.
		if !c.Equal(c.Add(p, Infinity()), p) {
			t.Fatalf("m=%d: identity broken", fc.m)
		}
		if !c.Add(p, c.Neg(p)).Inf {
			t.Fatalf("m=%d: inverse broken", fc.m)
		}
		d := c.Double(p)
		if !c.OnCurve(d) {
			t.Fatalf("m=%d: doubling leaves curve", fc.m)
		}
		if !c.Equal(c.Add(p, p), d) {
			t.Fatalf("m=%d: Add(p,p) != Double(p)", fc.m)
		}
		q, err := c.RandomPoint(src)
		if err != nil {
			t.Fatal(err)
		}
		if !c.Equal(c.Add(p, q), c.Add(q, p)) {
			t.Fatalf("m=%d: addition not commutative", fc.m)
		}
		s := c.Add(c.Add(p, q), d)
		s2 := c.Add(p, c.Add(q, d))
		if !c.Equal(s, s2) {
			t.Fatalf("m=%d: addition not associative", fc.m)
		}
	}
}

func TestGenericLadderMatchesDoubleAndAdd(t *testing.T) {
	for _, fc := range sweepFields() {
		src := rng.NewDRBG(uint64(fc.m) + 7).Uint64
		c, p, err := SyntheticCurve(fc.m, fc.poly, src)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 3; i++ {
			// Random scalar below min(2^m, 2^250): no order knowledge
			// needed, and modn.Scalar caps at 256 bits.
			maxBits := fc.m
			if maxBits > 250 {
				maxBits = 250
			}
			var k modn.Scalar
			for w := 0; w*64 < maxBits; w++ {
				k[w] = src()
			}
			if r := uint(maxBits) % 64; r != 0 {
				k[(maxBits-1)/64] &= 1<<r - 1
			}
			want := c.ScalarMulDoubleAndAdd(k, p)
			got, err := c.ScalarMulLadder(k, p, LadderOptions{})
			if err != nil {
				t.Fatal(err)
			}
			if !c.Equal(got, want) {
				t.Fatalf("m=%d: ladder disagrees with double-and-add", fc.m)
			}
			// RPC invariance.
			masked, err := c.ScalarMulLadder(k, p, LadderOptions{Rand: src})
			if err != nil {
				t.Fatal(err)
			}
			if !c.Equal(masked, want) {
				t.Fatalf("m=%d: RPC changed the result", fc.m)
			}
		}
	}
}

func TestGenericLadderAgreesWithFixedK163(t *testing.T) {
	// The generic machinery at m=163 on the real K-163 parameters must
	// agree with the optimized internal/ec path.
	f := gf2m.NISTK163Field()
	k163 := ec.K163()
	c, err := NewCurve(f, f.FromElement(k163.A), f.FromElement(k163.B))
	if err != nil {
		t.Fatal(err)
	}
	src := rng.NewDRBG(42).Uint64
	g := Point{X: f.FromElement(k163.Gx), Y: f.FromElement(k163.Gy)}
	if !c.OnCurve(g) {
		t.Fatal("K-163 generator rejected by generic curve")
	}
	for i := 0; i < 3; i++ {
		k := k163.Order.RandNonZero(src)
		want, err := k163.ScalarMulLadder(k, k163.Generator(), ec.LadderOptions{})
		if err != nil {
			t.Fatal(err)
		}
		got, err := c.ScalarMulLadder(k, g, LadderOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if got.Inf || !f.ToElement(got.X).Equal(want.X) || !f.ToElement(got.Y).Equal(want.Y) {
			t.Fatal("generic and fixed-path K-163 disagree")
		}
	}
}

func TestValidationAndEdges(t *testing.T) {
	f := gf2m.NISTK163Field()
	if _, err := NewCurve(nil, nil, nil); err == nil {
		t.Fatal("nil field accepted")
	}
	if _, err := NewCurve(f, f.One(), f.Zero()); err == nil {
		t.Fatal("singular curve accepted")
	}
	c, _ := NewCurve(f, f.One(), f.One())
	if _, err := c.ScalarMulLadder(modn.One(), Infinity(), LadderOptions{}); err == nil {
		t.Fatal("ladder accepted O")
	}
	if _, _, err := SyntheticCurve(8, []int{4, 3, 1, 0}, rng.NewDRBG(1).Uint64); err == nil {
		t.Fatal("even-degree synthetic curve accepted")
	}
	// k = 0 -> O; k near 2^(m+1) rejected.
	src := rng.NewDRBG(2).Uint64
	cc, p, err := SyntheticCurve(131, []int{8, 3, 2, 0}, src)
	if err != nil {
		t.Fatal(err)
	}
	if q, err := cc.ScalarMulLadder(modn.Zero(), p, LadderOptions{}); err != nil || !q.Inf {
		t.Fatalf("0*P: %v %v", q, err)
	}
	var huge modn.Scalar
	huge[3] = 1 << 63
	if _, err := cc.ScalarMulLadder(huge, p, LadderOptions{}); err == nil {
		t.Fatal("oversized scalar accepted")
	}
}

func BenchmarkGenericLadderByFieldSize(b *testing.B) {
	// E13 with real arithmetic: wall time per point multiplication as
	// the field grows.
	for _, fc := range sweepFields() {
		b.Run(formatM(fc.m), func(b *testing.B) {
			src := rng.NewDRBG(uint64(fc.m)).Uint64
			c, p, err := SyntheticCurve(fc.m, fc.poly, src)
			if err != nil {
				b.Fatal(err)
			}
			var k modn.Scalar
			k[0] = src() | 1
			k[1] = src()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := c.ScalarMulLadder(k, p, LadderOptions{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func formatM(m int) string {
	return "m=" + string(rune('0'+m/100)) + string(rune('0'+m/10%10)) + string(rune('0'+m%10))
}
