// Package core integrates the paper's contribution: a low-energy,
// side-channel-protected elliptic-curve public-key co-processor for
// medical devices. It stacks the security pyramid of Fig. 1 into one
// configuration object —
//
//	protocol level:      Peeters–Hermans identification (internal/protocol)
//	algorithm level:     K-163 Montgomery powering ladder with
//	                     randomized projective coordinates (internal/ec)
//	architecture level:  six-register, digit-serial-MALU microcode with
//	                     constant cycle counts (internal/coproc)
//	circuit level:       logic style, balanced mux encoding, clock
//	                     gating, input isolation, glitches (internal/power)
//
// — and exposes point multiplication with cycle/energy/power
// reporting, protocol hooks, and evaluation hooks for the Fig. 4
// side-channel workflow.
package core

import (
	"errors"

	"medsec/internal/coproc"
	"medsec/internal/ec"
	"medsec/internal/gf2m"
	"medsec/internal/modn"
	"medsec/internal/power"
	"medsec/internal/protocol"
	"medsec/internal/rng"
	"medsec/internal/sca"
)

// Config is the full design point of a co-processor instance.
type Config struct {
	// Curve is the algorithm-level curve choice (default K-163, the
	// paper's 80-bit-security Koblitz curve).
	Curve *ec.Curve
	// Timing is the architecture-level cycle model (default: the
	// calibrated d = 4 MALU).
	Timing coproc.Timing
	// RPC enables randomized projective coordinates (default on; the
	// white-box DPA evaluation switches it off).
	RPC bool
	// Power is the circuit-level model (default: the protected chip).
	Power power.Config
	// TRNGSeed seeds the on-chip mask generator.
	TRNGSeed uint64
}

// DefaultConfig returns the paper's prototype chip: protected CMOS at
// 847.5 kHz / 1 V, d = 4, RPC on.
func DefaultConfig(seed uint64) Config {
	return Config{
		Curve:    ec.K163(),
		Timing:   coproc.DefaultTiming(),
		RPC:      true,
		Power:    power.ProtectedChip(seed),
		TRNGSeed: seed,
	}
}

// Report summarizes one operation on the co-processor.
type Report struct {
	Cycles    int
	EnergyJ   float64
	AvgPowerW float64
	DurationS float64
}

// Coprocessor is a configured co-processor instance. It implements
// protocol.PointMultiplier, so protocol parties can run directly on
// the simulated hardware with energy accounting.
type Coprocessor struct {
	cfg      Config
	progFull *coproc.Program
	progX    *coproc.Program
	trng     *rng.DRBG
	run      uint64

	// Total accumulates over the instance lifetime.
	Total Report
	// Last holds the most recent operation's report.
	Last Report
}

// New builds a co-processor. Zero-value config fields receive the
// paper defaults.
func New(cfg Config) (*Coprocessor, error) {
	if cfg.Curve == nil {
		cfg.Curve = ec.K163()
	}
	if cfg.Timing.DigitSize == 0 {
		cfg.Timing = coproc.DefaultTiming()
	}
	if cfg.Power.ClockHz == 0 {
		def := power.ProtectedChip(cfg.TRNGSeed)
		if cfg.Power == (power.Config{}) {
			cfg.Power = def
		} else {
			cfg.Power.ClockHz = power.DefaultClockHz
		}
	}
	if cfg.Power.Vdd == 0 {
		cfg.Power.Vdd = 1.0
	}
	if cfg.Timing.DigitSize < 1 || cfg.Timing.DigitSize > 61 {
		return nil, errors.New("core: digit size out of range")
	}
	return &Coprocessor{
		cfg:      cfg,
		progFull: coproc.BuildLadderProgram(coproc.ProgramOptions{RPC: cfg.RPC}),
		progX:    coproc.BuildLadderProgram(coproc.ProgramOptions{RPC: cfg.RPC, XOnly: true}),
		trng:     rng.NewDRBG(cfg.TRNGSeed),
	}, nil
}

// Config returns the instance configuration.
func (c *Coprocessor) Config() Config { return c.cfg }

// Curve returns the configured curve.
func (c *Coprocessor) Curve() *ec.Curve { return c.cfg.Curve }

func (c *Coprocessor) execute(prog *coproc.Program, k modn.Scalar, p ec.Point) (*coproc.CPU, error) {
	if p.Inf || p.X.IsZero() {
		return nil, errors.New("core: base point must be finite with x != 0")
	}
	if k.Cmp(c.cfg.Curve.Order.N()) >= 0 {
		return nil, errors.New("core: scalar not reduced")
	}
	cpu := coproc.NewCPU(c.cfg.Timing)
	cpu.Rand = c.trng.Uint64
	pcfg := c.cfg.Power
	pcfg.Seed ^= (c.run + 1) * 0x9e3779b97f4a7c15
	c.run++
	model := power.NewModel(pcfg)
	meter := power.NewMeter(model)
	cpu.Probe = meter.Probe()
	cpu.SetOperandConstants(p.X, c.cfg.Curve.B, p.Y)
	cycles, err := cpu.Run(prog, k)
	if err != nil {
		return nil, err
	}
	c.Last = Report{
		Cycles:    cycles,
		EnergyJ:   meter.EnergyJ(),
		AvgPowerW: meter.AvgPowerW(),
		DurationS: meter.DurationS(),
	}
	c.Total.Cycles += c.Last.Cycles
	c.Total.EnergyJ += c.Last.EnergyJ
	c.Total.DurationS += c.Last.DurationS
	if c.Total.DurationS > 0 {
		c.Total.AvgPowerW = c.Total.EnergyJ / c.Total.DurationS
	}
	return cpu, nil
}

// PointMul computes k*P on the simulated hardware with full
// y-recovery, updating the energy reports.
func (c *Coprocessor) PointMul(k modn.Scalar, p ec.Point) (ec.Point, error) {
	if k.IsZero() {
		return ec.Infinity(), nil
	}
	cpu, err := c.execute(c.progFull, k, p)
	if err != nil {
		return ec.Point{}, err
	}
	return ec.Point{X: cpu.ResultX(c.progFull), Y: cpu.ResultY(c.progFull)}, nil
}

// XOnlyPointMul computes the x-coordinate of k*P (the protocol's
// d = xcoord(r·Y) operation).
func (c *Coprocessor) XOnlyPointMul(k modn.Scalar, p ec.Point) (gf2m.Element, error) {
	if k.IsZero() {
		return gf2m.Element{}, errors.New("core: x-only result would be the point at infinity")
	}
	cpu, err := c.execute(c.progX, k, p)
	if err != nil {
		return gf2m.Element{}, err
	}
	return cpu.ResultX(c.progX), nil
}

// ScalarMul implements protocol.PointMultiplier.
func (c *Coprocessor) ScalarMul(k modn.Scalar, p ec.Point) (ec.Point, error) {
	return c.PointMul(k, p)
}

// XOnlyMul implements protocol.PointMultiplier.
func (c *Coprocessor) XOnlyMul(k modn.Scalar, p ec.Point) (gf2m.Element, error) {
	return c.XOnlyPointMul(k, p)
}

// GenerateScalar draws a private scalar in the Algorithm 1 fixed
// length form the microcode processes.
func (c *Coprocessor) GenerateScalar() modn.Scalar {
	return sca.AlgorithmOneScalar(c.cfg.Curve, c.trng.Uint64)
}

// EvaluationTarget exposes the instance as a device under side-channel
// evaluation (the Fig. 4 workflow) with the given fixed key.
func (c *Coprocessor) EvaluationTarget(key modn.Scalar) *sca.Target {
	return sca.NewTarget(c.cfg.Curve, key,
		coproc.ProgramOptions{RPC: c.cfg.RPC, XOnly: true},
		c.cfg.Timing, c.cfg.Power, c.cfg.TRNGSeed)
}

// ResetMeters clears the accumulated energy accounting.
func (c *Coprocessor) ResetMeters() {
	c.Total = Report{}
	c.Last = Report{}
}

var _ protocol.PointMultiplier = (*Coprocessor)(nil)
