package core

import (
	"math"
	"testing"

	"medsec/internal/ec"
	"medsec/internal/modn"
	"medsec/internal/power"
	"medsec/internal/protocol"
	"medsec/internal/rng"
	"medsec/internal/sca"
)

func newChip(t *testing.T, seed uint64) *Coprocessor {
	t.Helper()
	cfg := DefaultConfig(seed)
	cfg.Power.NoiseSigma = 0 // deterministic energy in unit tests
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestPointMulCorrectness(t *testing.T) {
	chip := newChip(t, 1)
	curve := chip.Curve()
	src := rng.NewDRBG(2).Uint64
	for i := 0; i < 3; i++ {
		k := curve.Order.RandNonZero(src)
		p := curve.RandomPoint(src)
		got, err := chip.PointMul(k, p)
		if err != nil {
			t.Fatal(err)
		}
		want := curve.ScalarMulDoubleAndAdd(k, p)
		if !got.Equal(want) {
			t.Fatalf("hardware PointMul wrong for k=%v", k)
		}
		x, err := chip.XOnlyPointMul(k, p)
		if err != nil {
			t.Fatal(err)
		}
		if !x.Equal(want.X) {
			t.Fatal("XOnlyPointMul wrong")
		}
	}
	// k = 0 conventions.
	if p, err := chip.PointMul(modn.Zero(), curve.Generator()); err != nil || !p.Inf {
		t.Fatalf("0*P: %v %v", p, err)
	}
	if _, err := chip.XOnlyPointMul(modn.Zero(), curve.Generator()); err == nil {
		t.Fatal("x-only of O accepted")
	}
}

func TestChipOperatingPoint(t *testing.T) {
	// E1, end to end through the public API: 5.1 µJ, 50.4 µW,
	// 9.8 PM/s at 847.5 kHz.
	chip := newChip(t, 3)
	curve := chip.Curve()
	k := chip.GenerateScalar()
	if _, err := chip.PointMul(k, curve.Generator()); err != nil {
		t.Fatal(err)
	}
	r := chip.Last
	if math.Abs(r.EnergyJ*1e6-5.1) > 0.15 {
		t.Fatalf("energy %.3f µJ, want ~5.1", r.EnergyJ*1e6)
	}
	if math.Abs(r.AvgPowerW*1e6-50.4) > 0.8 {
		t.Fatalf("power %.2f µW, want ~50.4", r.AvgPowerW*1e6)
	}
	if pmps := 1 / r.DurationS; math.Abs(pmps-9.8) > 0.15 {
		t.Fatalf("throughput %.2f PM/s, want ~9.8", pmps)
	}
	// Totals accumulate.
	if _, err := chip.PointMul(k, curve.Generator()); err != nil {
		t.Fatal(err)
	}
	if chip.Total.Cycles != 2*r.Cycles {
		t.Fatal("Total.Cycles not accumulating")
	}
	chip.ResetMeters()
	if chip.Total.Cycles != 0 || chip.Last.Cycles != 0 {
		t.Fatal("ResetMeters incomplete")
	}
}

func TestProtocolRunsOnHardware(t *testing.T) {
	// The protocol layer driven by the simulated chip end to end,
	// with energy accounting: the tag's session cost must be
	// 2 PMs ≈ 10.2 µJ of computation.
	chip := newChip(t, 4)
	curve := chip.Curve()
	src := rng.NewDRBG(5).Uint64
	sw := &protocol.SoftwareMultiplier{Curve: curve, Rand: src} // reader side in software
	rdr, err := protocol.NewReader(curve, sw, src)
	if err != nil {
		t.Fatal(err)
	}
	tag, err := protocol.NewTag(curve, chip, src, rdr.Pub)
	if err != nil {
		t.Fatal(err)
	}
	rdr.Register(tag.Pub)
	chip.ResetMeters() // discard key-generation energy
	tag.Ledger = protocol.Ledger{}
	idx, err := protocol.RunIdentification(tag, rdr)
	if err != nil {
		t.Fatal(err)
	}
	if idx != 0 {
		t.Fatalf("identified %d", idx)
	}
	if tag.Ledger.PointMuls != 2 {
		t.Fatalf("tag did %d PMs", tag.Ledger.PointMuls)
	}
	if e := chip.Total.EnergyJ * 1e6; math.Abs(e-10.2) > 0.4 {
		t.Fatalf("tag session computation energy %.2f µJ, want ~10.2 (2 x 5.1)", e)
	}
}

func TestEvaluationTargetWorkflow(t *testing.T) {
	// The Fig. 4 hook: a quick CPA against the chip's own target must
	// behave per §7 (succeeds when RPC is off).
	cfg := DefaultConfig(6)
	cfg.RPC = false
	cfg.Power.NoiseSigma = sca.LabNoiseSigma
	chip, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	key := chip.GenerateScalar()
	tgt := chip.EvaluationTarget(key)
	camp, err := tgt.AcquireCampaign(600, 160, 157, rng.NewDRBG(7).Uint64)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sca.CPA(camp, sca.CPAOptions{Bits: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Success() {
		t.Fatalf("CPA through the core API failed: %v vs %v", res.Recovered, res.True)
	}
}

func TestConfigDefaultsAndValidation(t *testing.T) {
	c, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	if c.Curve().Name != "K-163" {
		t.Fatal("default curve not K-163")
	}
	if c.Config().Timing.DigitSize != 4 {
		t.Fatal("default digit size not 4")
	}
	if c.Config().Power.ClockHz != power.DefaultClockHz {
		t.Fatal("default clock not applied")
	}
	bad := DefaultConfig(1)
	bad.Timing.DigitSize = 99
	if _, err := New(bad); err == nil {
		t.Fatal("digit size 99 accepted")
	}
}

func TestInputValidation(t *testing.T) {
	chip := newChip(t, 8)
	curve := chip.Curve()
	if _, err := chip.PointMul(modn.One(), ec.Infinity()); err == nil {
		t.Fatal("O accepted as base point")
	}
	if _, err := chip.PointMul(curve.Order.N(), curve.Generator()); err == nil {
		t.Fatal("unreduced scalar accepted")
	}
}

func TestGenerateScalarForm(t *testing.T) {
	chip := newChip(t, 9)
	for i := 0; i < 20; i++ {
		k := chip.GenerateScalar()
		if k.Bit(162) != 0 || k.Bit(161) != 1 {
			t.Fatalf("scalar %v not in Algorithm 1 form", k)
		}
		if k.Cmp(chip.Curve().Order.N()) >= 0 {
			t.Fatal("scalar not reduced")
		}
	}
}

func TestDigitSizeAffectsThroughput(t *testing.T) {
	// Architecture-level knob exposed end to end: a d = 16 chip must
	// be faster and higher-power than the d = 4 chip.
	cfg4 := DefaultConfig(10)
	cfg4.Power.NoiseSigma = 0
	chip4, _ := New(cfg4)
	cfg16 := DefaultConfig(10)
	cfg16.Power.NoiseSigma = 0
	cfg16.Timing.DigitSize = 16
	chip16, _ := New(cfg16)
	k := chip4.GenerateScalar()
	g := chip4.Curve().Generator()
	if _, err := chip4.PointMul(k, g); err != nil {
		t.Fatal(err)
	}
	if _, err := chip16.PointMul(k, g); err != nil {
		t.Fatal(err)
	}
	if chip16.Last.Cycles >= chip4.Last.Cycles {
		t.Fatal("d=16 not faster than d=4")
	}
}
