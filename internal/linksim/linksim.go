// Package linksim sweeps mutual-authentication sessions across a
// (loss rate × distance) grid of lossy wireless channels and reports,
// per grid cell, what the paper's protocol-level energy rule actually
// costs on an imperfect link: completion probability, where aborted
// sessions died, the retry distribution, and the device-side energy —
// both the protocol ledger (payload bits, computation) and the full
// physical radio cost including framing, acknowledgements and every
// retransmission.
//
// The sweep runs on the deterministic campaign engine: each session's
// channel randomness derives from (seed, cell, repetition) alone, so a
// whole grid is bit-identical for any worker count and replayable from
// the seed printed by cmd/linklab.
package linksim

import (
	"context"
	"errors"
	"fmt"
	"sort"

	"medsec/internal/campaign"
	"medsec/internal/design"
	"medsec/internal/obs"
	"medsec/internal/protocol"
)

// GridConfig parametrizes one sweep.
type GridConfig struct {
	// LossRates are the channel loss probabilities swept (one grid
	// column per value).
	LossRates []float64
	// Distances are the TX distances in meters (one grid row per
	// value) — the amplifier term of the radio model scales with d².
	Distances []float64
	// Reps is the number of sessions simulated per cell.
	Reps int
	// Point is the base design point every cell builds on: channel
	// kind (iid or bursty), ARQ policy, curve, radio model. Loss and
	// DistanceM are overridden per cell from the grid axes. The zero
	// value selects design.Defaults() on an iid channel.
	Point design.Point
	// Workers is the campaign pool size; <= 0 selects GOMAXPROCS.
	Workers int
	// Seed drives every per-session substream.
	Seed uint64
	// Progress, when non-nil, is called serially after each consumed
	// session with (done, total).
	Progress func(done, total int)
	// Ctx, when non-nil, makes the sweep interruptible: on
	// cancellation Run drains in-flight sessions and returns
	// campaign.ErrInterrupted.
	Ctx context.Context
	// Metrics, when non-nil, receives sweep instrumentation: counters
	// linksim_sessions / linksim_completed / linksim_aborts, the
	// link_* ARQ counters aggregated across every simulated session
	// (each per-session Pair is Instrumented with this registry), and
	// the campaign_* engine instruments. The nil default costs
	// nothing and the sweep results are bit-identical either way.
	Metrics *obs.Registry
}

// CellReport aggregates the sessions of one (loss, distance) cell.
type CellReport struct {
	Loss     float64
	Distance float64
	Sessions int
	// Completed counts sessions that established a key; the rest
	// aborted at AbortsByStage.
	Completed     int
	AbortsByStage map[string]int
	// RetryP50/RetryP99 are percentiles of the device's per-session
	// retransmission count.
	RetryP50, RetryP99 int
	// MeanLedgerJ is the mean device energy priced from the protocol
	// Ledger (payload bits at distance + computation). MeanPhyJ adds
	// the physical link overhead: framing, ACKs, and is therefore the
	// number the battery actually pays.
	MeanLedgerJ, MeanPhyJ float64
}

// CompletionRate returns the fraction of sessions that completed.
func (c *CellReport) CompletionRate() float64 {
	if c.Sessions == 0 {
		return 0
	}
	return float64(c.Completed) / float64(c.Sessions)
}

// GridReport is the full sweep outcome, cells in row-major
// (distance-major, then loss) order.
type GridReport struct {
	Cells []CellReport
	// Sessions is the total session count across the grid.
	Sessions int
}

// Run executes the sweep.
func Run(cfg GridConfig) (*GridReport, error) {
	if len(cfg.LossRates) == 0 || len(cfg.Distances) == 0 || cfg.Reps <= 0 {
		return nil, errors.New("linksim: empty grid")
	}
	base := cfg.Point
	if base == (design.Point{}) {
		base = design.Defaults()
		base.Channel = design.ChannelIID
	}
	nCells := len(cfg.Distances) * len(cfg.LossRates)
	total := nCells * cfg.Reps

	type job struct {
		cell, rep int
	}
	// Per-cell accumulators, filled in consume (serial, index order),
	// plus one built stack per cell (loss/distance overridden from the
	// grid axes; everything else from the base point).
	cells := make([]CellReport, nCells)
	stacks := make([]*design.Stack, nCells)
	retries := make([][]int, nCells)
	for i := range cells {
		di, li := i/len(cfg.LossRates), i%len(cfg.LossRates)
		pt := base
		pt.Loss = cfg.LossRates[li]
		pt.DistanceM = cfg.Distances[di]
		st, err := pt.Build()
		if err != nil {
			return nil, err
		}
		stacks[i] = st
		cells[i] = CellReport{
			Loss:          pt.Loss,
			Distance:      pt.DistanceM,
			AbortsByStage: map[string]int{},
		}
	}
	model := stacks[0].Radio
	costs := stacks[0].Costs

	prepare := func(idx int) (job, error) {
		return job{cell: idx / cfg.Reps, rep: idx % cfg.Reps}, nil
	}
	acquire := func(worker, idx int, j job) (design.SessionOutcome, error) {
		// One fresh pair + party set per session, a pure function of
		// (seed, cell, rep); the sweep registry aggregates the ARQ
		// counters of every session (atomic adds commute, so the
		// totals are deterministic for any worker count).
		return stacks[j.cell].RunAuthSession(design.MixSeed(cfg.Seed, j.cell, j.rep), cfg.Metrics)
	}
	mSessions := cfg.Metrics.Counter("linksim_sessions")
	mCompleted := cfg.Metrics.Counter("linksim_completed")
	mAborts := cfg.Metrics.Counter("linksim_aborts")
	consume := func(idx int, j job, out design.SessionOutcome) (bool, error) {
		c := &cells[j.cell]
		c.Sessions++
		mSessions.Inc()
		if out.Completed {
			c.Completed++
			mCompleted.Inc()
		} else {
			c.AbortsByStage[out.Stage]++
			mAborts.Inc()
		}
		retries[j.cell] = append(retries[j.cell], out.Retries)
		c.MeanLedgerJ += model.LedgerEnergy(out.Ledger, c.Distance, costs)
		// Physical cost: every bit the device radio moved (payload +
		// framing + ACKs) plus the same computation.
		c.MeanPhyJ += model.TxEnergy(out.PhyTxBits, c.Distance) + model.RxEnergy(out.PhyRxBits) +
			float64(out.Ledger.PointMuls)*costs.PointMulJ +
			float64(out.Ledger.ModMuls)*costs.ModMulJ +
			float64(out.Ledger.AESBlocks)*costs.AESBlockJ
		if cfg.Progress != nil {
			cfg.Progress(idx+1, total)
		}
		return false, nil
	}

	if _, err := campaign.Run(0, total, campaign.Config{Workers: cfg.Workers, Metrics: cfg.Metrics, Ctx: cfg.Ctx}, prepare, acquire, consume); err != nil {
		return nil, err
	}

	rep := &GridReport{Sessions: total}
	for i := range cells {
		c := &cells[i]
		if c.Sessions > 0 {
			c.MeanLedgerJ /= float64(c.Sessions)
			c.MeanPhyJ /= float64(c.Sessions)
		}
		sort.Ints(retries[i])
		c.RetryP50 = percentile(retries[i], 50)
		c.RetryP99 = percentile(retries[i], 99)
	}
	rep.Cells = cells
	return rep, nil
}

// percentile returns the nearest-rank p-th percentile of sorted xs.
func percentile(xs []int, p int) int {
	if len(xs) == 0 {
		return 0
	}
	rank := (p*len(xs) + 99) / 100
	if rank < 1 {
		rank = 1
	}
	if rank > len(xs) {
		rank = len(xs)
	}
	return xs[rank-1]
}

// Render formats the grid as an aligned table, one row per cell.
func (r *GridReport) Render() string {
	s := fmt.Sprintf("%8s %7s %9s %8s %8s %12s %12s  %s\n",
		"loss", "dist(m)", "complete", "retryP50", "retryP99", "ledger(uJ)", "phy(uJ)", "aborts")
	for i := range r.Cells {
		c := &r.Cells[i]
		aborts := ""
		for _, st := range []string{protocol.StageServerAuth, protocol.StageIdentification, protocol.StageLink} {
			if n := c.AbortsByStage[st]; n > 0 {
				aborts += fmt.Sprintf("%s:%d ", st, n)
			}
		}
		if aborts == "" {
			aborts = "-"
		}
		s += fmt.Sprintf("%8.3f %7.1f %8.1f%% %8d %8d %12.2f %12.2f  %s\n",
			c.Loss, c.Distance, 100*c.CompletionRate(), c.RetryP50, c.RetryP99,
			c.MeanLedgerJ*1e6, c.MeanPhyJ*1e6, aborts)
	}
	return s
}
