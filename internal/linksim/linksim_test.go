package linksim

import (
	"reflect"
	"strings"
	"testing"

	"medsec/internal/design"
	"medsec/internal/protocol"
)

// TestGridDeterminismAcrossWorkers pins the campaign contract for the
// link sweep: the full grid report — completion counts, abort stages,
// retry percentiles, energy means — is bit-identical for 1, 2 and 7
// workers.
func TestGridDeterminismAcrossWorkers(t *testing.T) {
	cfg := GridConfig{
		LossRates: []float64{0, 0.3},
		Distances: []float64{2},
		Reps:      4,
		Seed:      5,
	}
	var ref *GridReport
	for _, w := range []int{1, 2, 7} {
		c := cfg
		c.Workers = w
		rep, err := Run(c)
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		if ref == nil {
			ref = rep
			continue
		}
		if !reflect.DeepEqual(rep, ref) {
			t.Fatalf("workers=%d report diverged:\n%+v\nvs\n%+v", w, rep, ref)
		}
	}
}

// TestGridSemantics checks the physics of the sweep: a lossless cell
// completes every session with zero retries and a ledger equal to the
// perfect-channel baseline; a dead channel completes nothing and
// labels every abort as link exhaustion; loss can only add energy.
func TestGridSemantics(t *testing.T) {
	pt := design.Defaults()
	pt.Channel = design.ChannelIID
	pt.ARQMaxTries = 4
	pt.ARQRetryBudget = 8
	rep, err := Run(GridConfig{
		LossRates: []float64{0, 0.99},
		Distances: []float64{1, 10},
		Reps:      3,
		Point:     pt,
		Seed:      11,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Cells) != 4 || rep.Sessions != 12 {
		t.Fatalf("grid shape wrong: %d cells, %d sessions", len(rep.Cells), rep.Sessions)
	}
	byKey := map[[2]float64]*CellReport{}
	for i := range rep.Cells {
		c := &rep.Cells[i]
		byKey[[2]float64{c.Loss, c.Distance}] = c
	}
	clean := byKey[[2]float64{0, 1}]
	if clean.Completed != clean.Sessions || clean.RetryP99 != 0 {
		t.Fatalf("lossless cell imperfect: %+v", clean)
	}
	dead := byKey[[2]float64{0.99, 1}]
	if dead.Completed != 0 {
		t.Fatalf("99%% loss cell completed sessions under a tiny retry budget: %+v", dead)
	}
	if dead.AbortsByStage[protocol.StageLink] != dead.Sessions {
		t.Fatalf("dead-cell aborts not labeled link-exhausted: %+v", dead.AbortsByStage)
	}
	if dead.RetryP50 == 0 {
		t.Fatalf("dead cell shows no retries: %+v", dead)
	}
	// Physical cost always dominates the payload-only ledger cost
	// (framing + ACKs are never free), and distance raises energy.
	for _, c := range rep.Cells {
		if c.Sessions > 0 && c.MeanPhyJ <= c.MeanLedgerJ && c.MeanLedgerJ > 0 {
			t.Fatalf("phy energy %g not above ledger energy %g at loss=%g", c.MeanPhyJ, c.MeanLedgerJ, c.Loss)
		}
	}
	if far, near := byKey[[2]float64{0, 10}], clean; far.MeanLedgerJ <= near.MeanLedgerJ {
		t.Fatalf("distance does not raise energy: %g vs %g", far.MeanLedgerJ, near.MeanLedgerJ)
	}
	out := rep.Render()
	if !strings.Contains(out, "loss") || !strings.Contains(out, protocol.StageLink) {
		t.Fatalf("render missing columns:\n%s", out)
	}
}

// TestGridValidation rejects degenerate configurations.
func TestGridValidation(t *testing.T) {
	if _, err := Run(GridConfig{}); err == nil {
		t.Fatal("empty grid accepted")
	}
	if _, err := Run(GridConfig{LossRates: []float64{0}, Distances: []float64{1}}); err == nil {
		t.Fatal("zero reps accepted")
	}
	if _, err := Run(GridConfig{LossRates: []float64{2}, Distances: []float64{1}, Reps: 1}); err == nil {
		t.Fatal("out-of-range loss accepted")
	}
}

// TestPercentile pins the nearest-rank definition.
func TestPercentile(t *testing.T) {
	xs := []int{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	if p := percentile(xs, 50); p != 5 {
		t.Fatalf("p50 = %d", p)
	}
	if p := percentile(xs, 99); p != 10 {
		t.Fatalf("p99 = %d", p)
	}
	if p := percentile(nil, 50); p != 0 {
		t.Fatalf("empty percentile = %d", p)
	}
}
