// Package threshold implements Shamir secret sharing over the curve's
// scalar field — the paper's pointer to threshold cryptography for
// lightweight devices ("options … based on threshold cryptography
// [18]: sharing a secret with devices that cannot store shares"): a
// tag's long-term key can be split so that no single storage location
// (device NVM, backend record, clinician token) holds it entirely.
package threshold

import (
	"errors"
	"fmt"

	"medsec/internal/modn"
)

// Share is one point (x, y) on the sharing polynomial; X is the
// share index (never zero — index zero is the secret itself).
type Share struct {
	X uint64
	Y modn.Scalar
}

// Split shares secret into n shares with reconstruction threshold t
// (any t of the n shares recover the secret; t-1 reveal nothing,
// information-theoretically).
func Split(secret modn.Scalar, m *modn.Modulus, t, n int, src func() uint64) ([]Share, error) {
	if t < 1 || n < t {
		return nil, errors.New("threshold: need 1 <= t <= n")
	}
	if uint64(n) >= 1<<32 {
		return nil, errors.New("threshold: too many shares")
	}
	// The share indices 1..n must stay distinct and nonzero mod n(m);
	// otherwise two shares would sit on the same polynomial point and
	// Combine's Lagrange denominators would vanish. Curve orders dwarf
	// 2^32, but the modulus is caller-supplied, so close the hole.
	if modn.FromUint64(uint64(n)).Cmp(m.N()) >= 0 {
		return nil, errors.New("threshold: share count not below the modulus")
	}
	if secret.Cmp(m.N()) >= 0 {
		return nil, errors.New("threshold: secret not reduced")
	}
	// Polynomial f(x) = secret + c1 x + ... + c_{t-1} x^{t-1}.
	coeffs := make([]modn.Scalar, t)
	coeffs[0] = secret
	for i := 1; i < t; i++ {
		coeffs[i] = m.Rand(src)
	}
	shares := make([]Share, n)
	for i := 0; i < n; i++ {
		x := uint64(i + 1)
		// Horner evaluation at x.
		y := modn.Zero()
		xs := modn.FromUint64(x)
		for j := t - 1; j >= 0; j-- {
			y = m.Add(m.Mul(y, xs), coeffs[j])
		}
		shares[i] = Share{X: x, Y: y}
	}
	return shares, nil
}

// Combine reconstructs the secret from exactly t distinct shares via
// Lagrange interpolation at zero.
func Combine(shares []Share, m *modn.Modulus) (modn.Scalar, error) {
	if len(shares) == 0 {
		return modn.Scalar{}, errors.New("threshold: no shares")
	}
	// Interpolation nodes live in the scalar field, so collisions are
	// collisions of X mod n — not of the raw uint64. Two indices that
	// are distinct as integers but congruent mod n put both shares on
	// the same polynomial point: the Lagrange denominator vanishes and
	// Inv(0) = 0 would silently fold a wrong term into the secret.
	// Likewise an index that is a nonzero multiple of n IS index zero
	// in the field (its share equals the secret's node). Both are
	// detected on the reduced values.
	xs := make([]modn.Scalar, len(shares))
	seen := map[modn.Scalar]uint64{}
	for i, s := range shares {
		xs[i] = m.Reduce(modn.FromUint64(s.X))
		if xs[i].IsZero() {
			return modn.Scalar{}, fmt.Errorf("threshold: share index %d is zero mod n", s.X)
		}
		if prev, dup := seen[xs[i]]; dup {
			return modn.Scalar{}, fmt.Errorf("threshold: share indices %d and %d collide mod n", prev, s.X)
		}
		seen[xs[i]] = s.X
	}
	secret := modn.Zero()
	for i, si := range shares {
		// lambda_i = prod_{j != i} x_j / (x_j - x_i)  evaluated mod n.
		num := modn.One()
		den := modn.One()
		for j := range shares {
			if i == j {
				continue
			}
			num = m.Mul(num, xs[j])
			den = m.Mul(den, m.Sub(xs[j], xs[i]))
		}
		lambda := m.Mul(num, m.Inv(den))
		secret = m.Add(secret, m.Mul(si.Y, lambda))
	}
	return secret, nil
}
