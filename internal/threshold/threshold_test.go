package threshold

import (
	"testing"

	"medsec/internal/ec"
	"medsec/internal/modn"
	"medsec/internal/rng"
)

func TestSplitCombineRoundTrip(t *testing.T) {
	m := ec.K163().Order
	d := rng.NewDRBG(1)
	for _, cfg := range []struct{ t, n int }{{1, 1}, {2, 3}, {3, 5}, {5, 8}} {
		secret := m.Rand(d.Uint64)
		shares, err := Split(secret, m, cfg.t, cfg.n, d.Uint64)
		if err != nil {
			t.Fatal(err)
		}
		if len(shares) != cfg.n {
			t.Fatalf("got %d shares", len(shares))
		}
		got, err := Combine(shares[:cfg.t], m)
		if err != nil {
			t.Fatal(err)
		}
		if !got.Equal(secret) {
			t.Fatalf("(%d,%d): reconstruction failed", cfg.t, cfg.n)
		}
	}
}

func TestAnySubsetOfSizeTWorks(t *testing.T) {
	m := ec.K163().Order
	d := rng.NewDRBG(2)
	secret := m.Rand(d.Uint64)
	shares, err := Split(secret, m, 3, 6, d.Uint64)
	if err != nil {
		t.Fatal(err)
	}
	subsets := [][]int{{0, 1, 2}, {3, 4, 5}, {0, 2, 4}, {1, 3, 5}, {0, 4, 5}}
	for _, idx := range subsets {
		sel := []Share{shares[idx[0]], shares[idx[1]], shares[idx[2]]}
		got, err := Combine(sel, m)
		if err != nil {
			t.Fatal(err)
		}
		if !got.Equal(secret) {
			t.Fatalf("subset %v failed", idx)
		}
	}
}

func TestInsufficientSharesRevealNothing(t *testing.T) {
	// With t-1 shares, interpolation yields a value that differs from
	// the secret (and in fact every candidate secret is equally
	// consistent; here we just check the direct combine is wrong).
	m := ec.K163().Order
	d := rng.NewDRBG(3)
	secret := m.Rand(d.Uint64)
	shares, err := Split(secret, m, 3, 5, d.Uint64)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Combine(shares[:2], m)
	if err != nil {
		t.Fatal(err)
	}
	if got.Equal(secret) {
		t.Fatal("2 of 3 shares reconstructed the secret")
	}
}

func TestValidation(t *testing.T) {
	m := ec.K163().Order
	d := rng.NewDRBG(4)
	secret := m.Rand(d.Uint64)
	if _, err := Split(secret, m, 0, 3, d.Uint64); err == nil {
		t.Fatal("t=0 accepted")
	}
	if _, err := Split(secret, m, 4, 3, d.Uint64); err == nil {
		t.Fatal("t>n accepted")
	}
	if _, err := Split(m.N(), m, 2, 3, d.Uint64); err == nil {
		t.Fatal("unreduced secret accepted")
	}
	if _, err := Combine(nil, m); err == nil {
		t.Fatal("empty share set accepted")
	}
	shares, _ := Split(secret, m, 2, 3, d.Uint64)
	if _, err := Combine([]Share{shares[0], shares[0]}, m); err == nil {
		t.Fatal("duplicate shares accepted")
	}
	if _, err := Combine([]Share{{X: 0, Y: modn.One()}}, m); err == nil {
		t.Fatal("index-zero share accepted")
	}
}

func TestSharesLookRandom(t *testing.T) {
	// A fixed secret's shares should vary across splits (fresh
	// polynomial coefficients).
	m := ec.K163().Order
	d := rng.NewDRBG(5)
	secret := modn.FromUint64(42)
	s1, _ := Split(secret, m, 2, 2, d.Uint64)
	s2, _ := Split(secret, m, 2, 2, d.Uint64)
	if s1[0].Y.Equal(s2[0].Y) {
		t.Fatal("two splits produced identical shares")
	}
}
