package threshold

import (
	"strings"
	"testing"

	"medsec/internal/ec"
	"medsec/internal/modn"
	"medsec/internal/rng"
)

func TestSplitCombineRoundTrip(t *testing.T) {
	m := ec.K163().Order
	d := rng.NewDRBG(1)
	for _, cfg := range []struct{ t, n int }{{1, 1}, {2, 3}, {3, 5}, {5, 8}} {
		secret := m.Rand(d.Uint64)
		shares, err := Split(secret, m, cfg.t, cfg.n, d.Uint64)
		if err != nil {
			t.Fatal(err)
		}
		if len(shares) != cfg.n {
			t.Fatalf("got %d shares", len(shares))
		}
		got, err := Combine(shares[:cfg.t], m)
		if err != nil {
			t.Fatal(err)
		}
		if !got.Equal(secret) {
			t.Fatalf("(%d,%d): reconstruction failed", cfg.t, cfg.n)
		}
	}
}

func TestAnySubsetOfSizeTWorks(t *testing.T) {
	m := ec.K163().Order
	d := rng.NewDRBG(2)
	secret := m.Rand(d.Uint64)
	shares, err := Split(secret, m, 3, 6, d.Uint64)
	if err != nil {
		t.Fatal(err)
	}
	subsets := [][]int{{0, 1, 2}, {3, 4, 5}, {0, 2, 4}, {1, 3, 5}, {0, 4, 5}}
	for _, idx := range subsets {
		sel := []Share{shares[idx[0]], shares[idx[1]], shares[idx[2]]}
		got, err := Combine(sel, m)
		if err != nil {
			t.Fatal(err)
		}
		if !got.Equal(secret) {
			t.Fatalf("subset %v failed", idx)
		}
	}
}

func TestInsufficientSharesRevealNothing(t *testing.T) {
	// With t-1 shares, interpolation yields a value that differs from
	// the secret (and in fact every candidate secret is equally
	// consistent; here we just check the direct combine is wrong).
	m := ec.K163().Order
	d := rng.NewDRBG(3)
	secret := m.Rand(d.Uint64)
	shares, err := Split(secret, m, 3, 5, d.Uint64)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Combine(shares[:2], m)
	if err != nil {
		t.Fatal(err)
	}
	if got.Equal(secret) {
		t.Fatal("2 of 3 shares reconstructed the secret")
	}
}

func TestValidation(t *testing.T) {
	m := ec.K163().Order
	d := rng.NewDRBG(4)
	secret := m.Rand(d.Uint64)
	if _, err := Split(secret, m, 0, 3, d.Uint64); err == nil {
		t.Fatal("t=0 accepted")
	}
	if _, err := Split(secret, m, 4, 3, d.Uint64); err == nil {
		t.Fatal("t>n accepted")
	}
	if _, err := Split(m.N(), m, 2, 3, d.Uint64); err == nil {
		t.Fatal("unreduced secret accepted")
	}
	if _, err := Combine(nil, m); err == nil {
		t.Fatal("empty share set accepted")
	}
	shares, _ := Split(secret, m, 2, 3, d.Uint64)
	if _, err := Combine([]Share{shares[0], shares[0]}, m); err == nil {
		t.Fatal("duplicate shares accepted")
	}
	if _, err := Combine([]Share{{X: 0, Y: modn.One()}}, m); err == nil {
		t.Fatal("index-zero share accepted")
	}
}

func TestXCollisionModN(t *testing.T) {
	// The interpolation nodes live in the scalar field: indices that
	// are distinct as uint64 but congruent mod n sit on the same
	// polynomial point. Before the reduced-value check, Combine fed the
	// vanishing Lagrange denominator to Inv(0) = 0 and returned a
	// silently wrong secret. A small prime modulus makes the wrap
	// reachable (curve orders exceed 2^64, so raw uint64 indices can
	// never collide there).
	m := modn.MustModulusFromHex("3f1") // 1009, prime
	d := rng.NewDRBG(6)
	secret := modn.FromUint64(123)
	shares, err := Split(secret, m, 2, 3, d.Uint64)
	if err != nil {
		t.Fatal(err)
	}
	// X = 1010 ≡ 1 (mod 1009) collides with share index 1.
	forged := Share{X: 1010, Y: shares[1].Y}
	if _, err := Combine([]Share{shares[0], forged}, m); err == nil ||
		!strings.Contains(err.Error(), "collide") {
		t.Fatalf("colliding indices accepted (err=%v)", err)
	}
	// X = 2018 = 2·1009 ≡ 0 (mod 1009) is index zero in the field even
	// though the raw uint64 is nonzero.
	zeroish := Share{X: 2018, Y: shares[0].Y}
	if _, err := Combine([]Share{shares[0], zeroish}, m); err == nil ||
		!strings.Contains(err.Error(), "zero") {
		t.Fatalf("index ≡ 0 mod n accepted (err=%v)", err)
	}
	// Distinct mod n still works: indices 1 and 2 reconstruct.
	got, err := Combine(shares[:2], m)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(secret) {
		t.Fatal("reconstruction failed over the small modulus")
	}
	// Split refuses a share count that would wrap the index space.
	if _, err := Split(secret, m, 2, 1009, d.Uint64); err == nil {
		t.Fatal("Split accepted n >= modulus")
	}
}

func TestTMinusOneSharesConsistentWithAnySecret(t *testing.T) {
	// Perfect secrecy, constructively: given t-1 shares, EVERY candidate
	// secret admits a completing polynomial. For each candidate s' we
	// interpolate the degree-(t-1) polynomial through (0, s') and the
	// two known shares, mint the missing third share from it, and watch
	// Combine accept the triple as a sharing of s'. An attacker holding
	// t-1 shares therefore cannot distinguish any two secrets.
	m := ec.K163().Order
	d := rng.NewDRBG(7)
	secret := m.Rand(d.Uint64)
	shares, err := Split(secret, m, 3, 5, d.Uint64)
	if err != nil {
		t.Fatal(err)
	}
	known := shares[:2] // the attacker's t-1 = 2 shares
	const forgedX = 40  // any index distinct from the known ones
	for _, candidate := range []modn.Scalar{
		modn.Zero(), modn.One(), modn.FromUint64(0xDEAD), m.Rand(d.Uint64),
	} {
		// Lagrange-evaluate the polynomial through (0, candidate),
		// (x1, y1), (x2, y2) at forgedX.
		nodes := []Share{{X: 0, Y: candidate}, known[0], known[1]}
		y := modn.Zero()
		fx := modn.FromUint64(forgedX)
		for i, ni := range nodes {
			num, den := modn.One(), modn.One()
			xi := modn.FromUint64(ni.X)
			for j, nj := range nodes {
				if i == j {
					continue
				}
				xj := modn.FromUint64(nj.X)
				num = m.Mul(num, m.Sub(fx, xj))
				den = m.Mul(den, m.Sub(xi, xj))
			}
			y = m.Add(y, m.Mul(ni.Y, m.Mul(num, m.Inv(den))))
		}
		got, err := Combine([]Share{known[0], known[1], {X: forgedX, Y: y}}, m)
		if err != nil {
			t.Fatal(err)
		}
		if !got.Equal(candidate) {
			t.Fatalf("candidate %v not consistent with the t-1 shares", candidate)
		}
	}
}

func TestSharesLookRandom(t *testing.T) {
	// A fixed secret's shares should vary across splits (fresh
	// polynomial coefficients).
	m := ec.K163().Order
	d := rng.NewDRBG(5)
	secret := modn.FromUint64(42)
	s1, _ := Split(secret, m, 2, 2, d.Uint64)
	s2, _ := Split(secret, m, 2, 2, d.Uint64)
	if s1[0].Y.Equal(s2[0].Y) {
		t.Fatal("two splits produced identical shares")
	}
}
