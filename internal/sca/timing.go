package sca

import (
	"math"

	"medsec/internal/coproc"
	"medsec/internal/ec"
	"medsec/internal/modn"
	"medsec/internal/trace"
)

// TimingReport compares the execution-time key dependence of the
// constant-time Montgomery powering ladder against the textbook
// double-and-add baseline (paper §7: "the prototype co-processor is
// intrinsically resistant to timing attacks ... the computation time
// of a point multiplication is the same for different key values").
type TimingReport struct {
	// Keys is the number of random keys measured.
	Keys int
	// LadderCycles is the (single) ladder cycle count; the ladder
	// produces the same value for every key.
	LadderCycles int
	// LadderVariance is the observed variance of the ladder cycle
	// count across keys (must be 0).
	LadderVariance float64
	// DAMinCycles/DAMaxCycles bound the double-and-add latencies.
	DAMinCycles, DAMaxCycles int
	// DAHWCorrelation is the Pearson correlation between the
	// double-and-add latency and the key's Hamming weight — the
	// quantity a timing attacker estimates.
	DAHWCorrelation float64
	// DARecoveredHWError is the mean absolute error of the attacker's
	// Hamming-weight estimate derived from latency alone.
	DARecoveredHWError float64
}

// DoubleAndAddCycleModel returns the cycle costs of one affine point
// doubling and one affine addition on the same co-processor (each
// needs a field inversion — an Itoh–Tsujii chain of 9 MUL + 162 SQR —
// plus 2 MUL, 1 SQR and bookkeeping).
func DoubleAndAddCycleModel(t coproc.Timing) (doubleCycles, addCycles int) {
	malu := t.InstrCycles(coproc.OpMul)
	inv := (9+162)*malu + 10*t.SingleCycle
	op := inv + 2*malu + malu + 6*t.SingleCycle
	return op, op
}

// TimingAttack measures both implementations over nKeys random keys.
func TimingAttack(curve *ec.Curve, tim coproc.Timing, nKeys int, src func() uint64) *TimingReport {
	prog := coproc.BuildLadderProgram(coproc.ProgramOptions{RPC: true})
	ladder := prog.CycleCount(tim)
	cDbl, cAdd := DoubleAndAddCycleModel(tim)

	rep := &TimingReport{Keys: nKeys, LadderCycles: ladder}
	var daCycles, hw []float64
	rep.DAMinCycles = math.MaxInt
	for i := 0; i < nKeys; i++ {
		k := curve.Order.RandNonZero(src)
		doubles, adds := ec.DoubleAndAddOpCount(k)
		cycles := doubles*cDbl + adds*cAdd
		if cycles < rep.DAMinCycles {
			rep.DAMinCycles = cycles
		}
		if cycles > rep.DAMaxCycles {
			rep.DAMaxCycles = cycles
		}
		daCycles = append(daCycles, float64(cycles))
		hw = append(hw, float64(k.Weight()))
	}
	rep.DAHWCorrelation = pearsonScalar(daCycles, hw)

	// The attacker inverts the latency model to estimate HW(k):
	// latency = bits*cDbl + HW*cAdd, with bits read off the latency
	// itself is not separable, so estimate assuming full-length keys
	// (bitlen 162, the overwhelmingly likely case).
	var errSum float64
	for i := range daCycles {
		est := (daCycles[i] - 162*float64(cDbl)) / float64(cAdd)
		errSum += math.Abs(est - hw[i])
	}
	rep.DARecoveredHWError = errSum / float64(len(daCycles))

	// Ladder variance across keys is structurally zero; record the
	// measured value anyway (CycleCount is key-independent).
	var lv []float64
	for i := 0; i < nKeys; i++ {
		lv = append(lv, float64(ladder))
	}
	rep.LadderVariance = trace.StdDev(lv) * trace.StdDev(lv)
	return rep
}

func pearsonScalar(a, b []float64) float64 {
	n := float64(len(a))
	if n == 0 {
		return 0
	}
	ma, mb := trace.Mean(a), trace.Mean(b)
	var cov, va, vb float64
	for i := range a {
		da, db := a[i]-ma, b[i]-mb
		cov += da * db
		va += da * da
		vb += db * db
	}
	if va == 0 || vb == 0 {
		return 0
	}
	return cov / math.Sqrt(va*vb)
}

// VerifyConstantTime runs the ladder program on the simulator for the
// given keys and returns the set of distinct cycle counts observed
// (length 1 = constant time). Unlike TimingAttack, which uses the
// static model, this measures the executed instruction stream.
func VerifyConstantTime(t *Target, keys []modn.Scalar, p ec.Point) ([]int, error) {
	distinct := map[int]bool{}
	for i, k := range keys {
		cpu := coproc.NewCPU(t.Timing)
		cpu.Rand = func() uint64 { return 0xabcdef123456789 ^ uint64(i) | 1 }
		cpu.SetOperandConstants(p.X, t.Curve.B, p.Y)
		cycles, err := cpu.Run(t.prog, k)
		if err != nil {
			return nil, err
		}
		distinct[cycles] = true
	}
	out := make([]int, 0, len(distinct))
	for c := range distinct {
		out = append(out, c)
	}
	return out, nil
}
