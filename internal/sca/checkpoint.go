package sca

import (
	"fmt"
	"os"

	"medsec/internal/campaign"
	"medsec/internal/store"
)

// CampaignCheckpoint configures durable crash-safe checkpointing for
// the checkpoint-aware campaigns (TVLA / TVLAUntil and the
// TracesToSuccess search). Set it on Target.Ckpt; a nil value (the
// default) disables checkpointing entirely.
//
// The campaign writes a store.Checkpoint to Path whenever its folded
// watermark crosses an Every multiple and once more when the run is
// interrupted via Target.Ctx, so a killed process loses at most Every
// traces of work. With Resume set, the campaign first loads Path (a
// missing file is a clean start, not an error), refuses it unless the
// provenance header matches the current run — same tool, kind, seed,
// git SHA, design point and index range — and then continues from the
// stored watermark. Resumed campaigns are bit-identical to
// uninterrupted ones: the engine replays the prepare stream over the
// already-folded prefix so shared RNG streams advance exactly as they
// did the first time (see campaign.Config.ResumeFrom).
type CampaignCheckpoint struct {
	// Path is the checkpoint file. Writes are atomic (temp + fsync +
	// rename), so the file is always either the previous checkpoint or
	// the new one, never a torn mix.
	Path string
	// Every is the folded-trace interval between periodic checkpoint
	// writes; <= 0 writes only the interrupt-path and completion
	// checkpoints.
	Every int
	// Header carries the provenance the checkpoint is chained to:
	// Tool, Kind, Seed, GitSHA and the resolved design Point. The
	// campaign fills the range fields (From/To/Shards/Watermark/
	// Cursors/Complete) itself.
	Header store.Header
	// Resume asks the campaign to continue from Path if it exists.
	Resume bool
}

// enabled reports whether checkpoint writes are configured (nil-safe).
func (c *CampaignCheckpoint) enabled() bool { return c != nil && c.Path != "" }

// campHeader binds the provenance header to a campaign's index range.
func (c *CampaignCheckpoint) campHeader(from, to, shards int) store.Header {
	h := c.Header
	h.From, h.To, h.Shards = from, to, shards
	h.Watermark, h.Cursors, h.Complete = 0, nil, false
	return h
}

// load reads and validates the checkpoint when Resume is set. A
// missing file — the first run of a campaign that will be checkpointed
// — returns (nil, nil).
func (c *CampaignCheckpoint) load(from, to, shards int) (*store.Checkpoint, error) {
	if !c.enabled() || !c.Resume {
		return nil, nil
	}
	ck, err := store.Read(c.Path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, err
	}
	if err := ck.Header.Match(c.campHeader(from, to, shards)); err != nil {
		return nil, fmt.Errorf("sca: checkpoint %s does not belong to this campaign: %w", c.Path, err)
	}
	return ck, nil
}

// write persists one checkpoint atomically.
func (c *CampaignCheckpoint) write(h store.Header, blobs map[string][]byte) error {
	return store.Write(c.Path, &store.Checkpoint{Header: h, Blobs: blobs})
}

// tvlaSerial runs the serial-consumer TVLA engine leg with optional
// checkpoint/resume and returns the total folded trace count,
// including any prefix restored from a checkpoint. blobKey names the
// accumulator's checkpoint blob ("welch" for the first-order campaign,
// "welch2" for the second-order one), so a checkpoint written by one
// statistical order can never silently seed the other.
func tvlaSerial[W welchStat[W]](t *Target, w W, blobKey string, to, checkEvery int, plan *acqPlan, prepare campaign.PrepareFunc[acqJob]) (int, error) {
	ck := t.Ckpt
	resumed := 0
	prev, err := ck.load(0, to, 0)
	if err != nil {
		return 0, err
	}
	if prev != nil {
		if err := w.UnmarshalBinary(prev.Blobs[blobKey]); err != nil {
			return 0, fmt.Errorf("sca: checkpoint %s %s blob: %w", ck.Path, blobKey, err)
		}
		if prev.Header.Complete && (prev.Header.Watermark < prev.Header.To || prev.Header.To == to) {
			// A finished campaign: either it early-stopped (the verdict
			// stands regardless of the requested budget) or it covered
			// exactly this range. The engine has nothing to add.
			return prev.Header.Watermark, nil
		}
		// Complete checkpoints of a SMALLER full campaign fall through:
		// that is the cross-process extension case — the serial fold
		// continues from the stored watermark up to the new budget.
		resumed = prev.Header.Watermark
	}
	cfg := t.engineConfig()
	writeAt := func(mark int, complete bool) error {
		blob, err := w.MarshalBinary()
		if err != nil {
			return err
		}
		h := ck.campHeader(0, to, 0)
		h.Watermark, h.Complete = mark, complete
		return ck.write(h, map[string][]byte{blobKey: blob})
	}
	if ck.enabled() {
		cfg.ResumeFrom = resumed
		cfg.CheckpointEvery = ck.Every
		// The hook runs on the consuming goroutine: w is exactly the
		// folded prefix [0, mark) when it fires.
		cfg.Checkpoint = func(mark int) error { return writeAt(mark, false) }
	}
	consumed, err := t.runPlanned(0, to, cfg, plan, prepare,
		welchConsume(w, checkEvery, 10, t.Metrics.Counter("sca_earlystop_checks")))
	total := consumed + resumed
	if err != nil {
		return total, err
	}
	if ck.enabled() {
		if err := writeAt(total, true); err != nil {
			return total, err
		}
	}
	return total, nil
}

// tvlaSharded runs the sharded-reduction TVLA engine leg with optional
// checkpoint/resume and returns the total folded trace count,
// including any prefix restored from a checkpoint. Periodic
// checkpoints store the per-shard accumulators plus the per-shard
// cursors; the completion checkpoint stores the merged accumulator.
// mk constructs an empty accumulator of the campaign's statistical
// order; blobKey namespaces the checkpoint blobs exactly as in
// tvlaSerial (per-shard blobs are "<blobKey>.<shard>").
func tvlaSharded[W welchStat[W]](t *Target, w W, blobKey string, mk func() W, to int, plan *acqPlan, prepare campaign.PrepareFunc[acqJob]) (int, error) {
	ck := t.Ckpt
	lay := campaign.ShardingFor(0, to, t.Shards)
	prev, err := ck.load(0, to, lay.N)
	if err != nil {
		return 0, err
	}
	resumed := 0
	var restored []W
	if prev != nil {
		if prev.Header.Complete {
			if err := w.UnmarshalBinary(prev.Blobs[blobKey]); err != nil {
				return 0, fmt.Errorf("sca: checkpoint %s %s blob: %w", ck.Path, blobKey, err)
			}
			return prev.Header.Watermark, nil
		}
		if len(prev.Header.Cursors) != lay.N {
			return 0, fmt.Errorf("sca: checkpoint %s has %d shard cursors, campaign has %d shards",
				ck.Path, len(prev.Header.Cursors), lay.N)
		}
		restored = make([]W, lay.N)
		for s := range restored {
			acc := mk()
			if err := acc.UnmarshalBinary(prev.Blobs[fmt.Sprintf("%s.%d", blobKey, s)]); err != nil {
				return 0, fmt.Errorf("sca: checkpoint %s shard %d blob: %w", ck.Path, s, err)
			}
			restored[s] = acc
		}
		resumed = prev.Header.Watermark
	}
	scfg := t.shardedConfig()
	// The shard bank is retained so the checkpoint hook — which runs
	// holding every shard lock (campaign.ShardedConfig.Checkpoint) —
	// can snapshot accumulators consistent with the cursor vector.
	accs := make([]W, lay.N)
	newShard := func(s int) W {
		acc := mk()
		if restored != nil {
			acc = restored[s]
		}
		accs[s] = acc
		return acc
	}
	if ck.enabled() {
		if prev != nil {
			scfg.Resume = prev.Header.Cursors
		}
		scfg.CheckpointEvery = ck.Every
		scfg.Checkpoint = func(cursors []int) error {
			blobs := make(map[string][]byte, lay.N)
			mark := 0
			for s, acc := range accs {
				blob, err := acc.MarshalBinary()
				if err != nil {
					return err
				}
				blobs[fmt.Sprintf("%s.%d", blobKey, s)] = blob
				lo, _ := lay.Bounds(s)
				mark += cursors[s] - lo
			}
			h := ck.campHeader(0, to, lay.N)
			h.Watermark, h.Cursors = mark, cursors
			return ck.write(h, blobs)
		}
	}
	folded, err := runShardedPlanned(t, 0, to, scfg, plan, prepare,
		newShard, welchShardFold[W], welchShardMerge(w))
	total := folded + resumed
	if err != nil {
		return total, err
	}
	if ck.enabled() {
		blob, err := w.MarshalBinary()
		if err != nil {
			return total, err
		}
		h := ck.campHeader(0, to, lay.N)
		h.Watermark, h.Complete = total, true
		h.Cursors = make([]int, lay.N)
		for s := range h.Cursors {
			_, h.Cursors[s] = lay.Bounds(s)
		}
		if err := ck.write(h, map[string][]byte{blobKey: blob}); err != nil {
			return total, err
		}
	}
	return total, nil
}
