package sca

import (
	"math"
	"reflect"
	"testing"

	"medsec/internal/modn"
	"medsec/internal/rng"
)

// PR 4 determinism pins: the sharded reduction must be bit-identical
// across worker counts at a fixed shard count, reproduce the legacy
// serial consumer exactly at S=1, and agree across shard counts to
// floating-point rounding; the checkpointed/quiet acquisition prologue
// must leave every recorded sample bit-identical to the historical
// full-pipeline path.

func tvlaWith(t *testing.T, workers, shards int, noSkip bool, firstIter, lastIter int) *TVLAResult {
	t.Helper()
	tgt := newDPATarget(t, false, 91)
	tgt.Workers = workers
	tgt.Shards = shards
	tgt.NoPrologueSkip = noSkip
	src := rng.NewDRBG(14).Uint64
	randKey := func() modn.Scalar { return AlgorithmOneScalar(tgt.Curve, src) }
	res, err := TVLA(tgt, FixedPoint(tgt.Curve), 20, firstIter, lastIter, randKey)
	if err != nil {
		t.Fatalf("workers=%d shards=%d: %v", workers, shards, err)
	}
	return res
}

func TestTVLAShardedDeterminismAcrossWorkers(t *testing.T) {
	for _, shards := range []int{1, 4, 16} {
		base := tvlaWith(t, 1, shards, false, 159, 157)
		for _, w := range determinismWorkers[1:] {
			res := tvlaWith(t, w, shards, false, 159, 157)
			if !reflect.DeepEqual(res.TCurve, base.TCurve) {
				t.Errorf("shards=%d workers=%d: t-curve differs bit-for-bit from single-worker run", shards, w)
			}
		}
	}
}

// TestTVLAShardedSingleShardDeterminismMatchesLegacy pins that one
// shard reproduces the legacy serial consumer (Shards < 0) bit for
// bit: both fold every trace in global index order into one Welch
// accumulator.
func TestTVLAShardedSingleShardDeterminismMatchesLegacy(t *testing.T) {
	legacy := tvlaWith(t, 3, -1, false, 159, 157)
	oneShard := tvlaWith(t, 3, 1, false, 159, 157)
	if !reflect.DeepEqual(oneShard.TCurve, legacy.TCurve) {
		t.Fatal("Shards=1 t-curve differs from the legacy serial consumer")
	}
	if oneShard.TracesPerSet != legacy.TracesPerSet {
		t.Fatalf("trace counts differ: %d vs %d", oneShard.TracesPerSet, legacy.TracesPerSet)
	}
}

// TestTVLAShardCountAgreementToRounding pins the cross-shard-count
// contract: different S reassociate the reduction, so t-curves agree
// to ~1e-12 relative, not bit-for-bit.
func TestTVLAShardCountAgreementToRounding(t *testing.T) {
	base := tvlaWith(t, 2, 1, false, 159, 157)
	for _, shards := range []int{4, 16} {
		res := tvlaWith(t, 2, shards, false, 159, 157)
		if len(res.TCurve) != len(base.TCurve) {
			t.Fatalf("shards=%d: curve length %d vs %d", shards, len(res.TCurve), len(base.TCurve))
		}
		for i := range base.TCurve {
			d := math.Abs(res.TCurve[i] - base.TCurve[i])
			tol := 1e-9 * math.Max(1, math.Abs(base.TCurve[i]))
			if d > tol {
				t.Fatalf("shards=%d: t[%d] = %.17g vs %.17g (diff %g beyond rounding)", shards, i, res.TCurve[i], base.TCurve[i], d)
			}
		}
	}
}

// TestPrologueSkipDeterminismBitIdentical pins the acquisition-plan
// contract: the quiet prologue and the prefix checkpoint change HOW
// the pre-window cycles are simulated, never WHAT the window records.
// Campaign traces, TVLA t-curves and SPA features must be
// bit-identical with the planner enabled and disabled, for both the
// protected (RPC, quiet-only) and unprotected (checkpointable)
// microcode — including a deep window where fixed-key traces resume
// from the checkpoint while random-key traces fall back to the quiet
// full run.
func TestPrologueSkipDeterminismBitIdentical(t *testing.T) {
	for _, rpc := range []bool{false, true} {
		// Campaign acquisition (random base points, quiet-only plan).
		camp := func(noSkip bool) *Campaign {
			tgt := newDPATarget(t, rpc, 92)
			tgt.Shards = -1 // isolate the prologue: identical serial consumer
			tgt.NoPrologueSkip = noSkip
			c, err := tgt.AcquireCampaign(12, 158, 156, rng.NewDRBG(21).Uint64)
			if err != nil {
				t.Fatalf("rpc=%v noSkip=%v: %v", rpc, noSkip, err)
			}
			return c
		}
		ref := camp(true)
		opt := camp(false)
		if !reflect.DeepEqual(campaignFingerprint(opt), campaignFingerprint(ref)) {
			t.Errorf("rpc=%v: campaign traces differ between planned and full-pipeline acquisition", rpc)
		}
		if skipped := opt.PrologueCyclesSkipped(); skipped <= 0 {
			t.Errorf("rpc=%v: planner skipped %d prologue cycles, want > 0", rpc, skipped)
		}

		// TVLA over a deep window (fixed point: checkpoint eligible on
		// the non-RPC program, quiet-only on RPC).
		tvla := func(noSkip bool) *TVLAResult {
			tgt := newDPATarget(t, rpc, 93)
			tgt.Shards = -1
			tgt.NoPrologueSkip = noSkip
			src := rng.NewDRBG(22).Uint64
			randKey := func() modn.Scalar { return AlgorithmOneScalar(tgt.Curve, src) }
			res, err := TVLA(tgt, FixedPoint(tgt.Curve), 15, 156, 154, randKey)
			if err != nil {
				t.Fatalf("rpc=%v noSkip=%v: %v", rpc, noSkip, err)
			}
			return res
		}
		tRef := tvla(true)
		tOpt := tvla(false)
		if !reflect.DeepEqual(tOpt.TCurve, tRef.TCurve) {
			t.Errorf("rpc=%v: TVLA t-curve differs between planned and full-pipeline acquisition", rpc)
		}
		if tRef.PrologueCyclesSkipped != 0 {
			t.Errorf("rpc=%v: NoPrologueSkip run reports %d skipped cycles", rpc, tRef.PrologueCyclesSkipped)
		}
		if tOpt.PrologueCyclesSkipped <= 0 {
			t.Errorf("rpc=%v: planned TVLA reports %d skipped cycles, want > 0", rpc, tOpt.PrologueCyclesSkipped)
		}

		// SPA full-ladder averaging (short prologue, fixed key).
		spa := func(noSkip bool) *SPAResult {
			tgt := newDPATarget(t, rpc, 94)
			tgt.Shards = -1
			tgt.NoPrologueSkip = noSkip
			p := tgt.Curve.RandomPoint(rng.NewDRBG(23).Uint64)
			res, err := SPAProfiled(tgt, p, 6)
			if err != nil {
				t.Fatalf("rpc=%v noSkip=%v: %v", rpc, noSkip, err)
			}
			return res
		}
		sRef := spa(true)
		sOpt := spa(false)
		if !reflect.DeepEqual(sOpt.Features, sRef.Features) {
			t.Errorf("rpc=%v: SPA features differ between planned and full-pipeline acquisition", rpc)
		}
	}
}

// TestShardedCampaignDeterminismAcrossWorkers pins the positional-write
// campaign reduction: under the sharded engine the retained trace set
// is identical for any worker count and identical to the legacy
// serial-consumer path.
func TestShardedCampaignDeterminismAcrossWorkers(t *testing.T) {
	acquire := func(workers, shards int) *Campaign {
		tgt := newDPATarget(t, false, 95)
		tgt.Workers = workers
		tgt.Shards = shards
		c, err := tgt.AcquireCampaign(30, 160, 157, rng.NewDRBG(31).Uint64)
		if err != nil {
			t.Fatalf("workers=%d shards=%d: %v", workers, shards, err)
		}
		return c
	}
	legacy := acquire(1, -1)
	want := campaignFingerprint(legacy)
	for _, w := range determinismWorkers {
		for _, shards := range []int{1, 4} {
			c := acquire(w, shards)
			if !reflect.DeepEqual(campaignFingerprint(c), want) {
				t.Errorf("workers=%d shards=%d: campaign traces differ from legacy serial acquisition", w, shards)
			}
			if !reflect.DeepEqual(c.Points, legacy.Points) {
				t.Errorf("workers=%d shards=%d: campaign points differ from legacy serial acquisition", w, shards)
			}
		}
	}
}

// TestTemplateShardedDeterminismMatchesLegacy pins that the sharded
// template build (append-only features, concatenated in shard order)
// reproduces the legacy serial template bit for bit.
func TestTemplateShardedDeterminismMatchesLegacy(t *testing.T) {
	build := func(workers, shards int) *Template {
		tgt := newDPATarget(t, false, 96)
		tgt.Workers = workers
		tgt.Shards = shards
		p := tgt.Curve.RandomPoint(rng.NewDRBG(41).Uint64)
		tm, err := BuildTemplate(tgt, p, 6)
		if err != nil {
			t.Fatalf("workers=%d shards=%d: %v", workers, shards, err)
		}
		return tm
	}
	legacy := build(1, -1)
	for _, w := range determinismWorkers {
		for _, shards := range []int{1, 4} {
			tm := build(w, shards)
			if *tm != *legacy {
				t.Errorf("workers=%d shards=%d: template %+v differs from legacy serial %+v", w, shards, tm, legacy)
			}
		}
	}
}
