package sca

import (
	"errors"
	"sort"

	"medsec/internal/coproc"
	"medsec/internal/ec"
	"medsec/internal/modn"
	"medsec/internal/trace"
)

// LeakPoint is one cycle whose power depends significantly on the key,
// attributed back to the instruction executing at that cycle — the
// white-box methodology with which the paper's evaluation localized
// its residual SPA leak ("one of the causes of this SPA leakage might
// be that ... slight unbalances are still present in the layout").
type LeakPoint struct {
	Cycle     int
	TStat     float64
	InstrIdx  int
	Op        coproc.Op
	Iteration int
	KeyBit    int
}

// LeakMap is the per-cycle leakage assessment of a window, with every
// significant point attributed to its instruction.
type LeakMap struct {
	// Points holds the leaky cycles, strongest first.
	Points []LeakPoint
	// Threshold is the |t| significance bound used.
	Threshold float64
	// Samples is the number of cycles assessed.
	Samples int
	// MaxT is the largest |t| observed (even if below threshold).
	MaxT float64
}

// LeakageMap runs a fixed-vs-random-key t-test over the given ladder
// iteration window and attributes each significant cycle to the
// microcode instruction executing there. Like TVLA it streams the
// campaign through the parallel engine into an online Welch
// accumulator — no trace set is retained.
func LeakageMap(t *Target, p ec.Point, nPerSet, firstIter, lastIter int, randKey func() modn.Scalar) (*LeakMap, error) {
	if nPerSet < 10 {
		return nil, errors.New("sca: leakage map needs at least 10 traces per set")
	}
	start, end := t.prog.IterationWindow(t.Timing, firstIter, lastIter)
	plan, err := t.planFixedPoint(p, t.Key, start, end)
	if err != nil {
		return nil, err
	}
	w := trace.NewOnlineWelch()
	if t.useSharded() {
		// Same sharded Welch reduction as the full-budget TVLA: fold
		// per shard on the workers, merge in shard order.
		_, err = runShardedPlanned(t, 0, 2*nPerSet, t.shardedConfig(), plan,
			t.fixedRandomPrepare(p, randKey),
			func(shard int) *trace.OnlineWelch { return trace.NewOnlineWelch() },
			welchShardFold[*trace.OnlineWelch], welchShardMerge(w))
	} else {
		_, err = t.runPlanned(0, 2*nPerSet, t.engineConfig(), plan,
			t.fixedRandomPrepare(p, randKey),
			welchConsume(w, 0, 0, nil))
	}
	if err != nil {
		return nil, err
	}
	ts, err := w.T()
	if err != nil {
		return nil, err
	}

	// Cycle -> instruction attribution from the static plan.
	spans := t.prog.Spans(t.Timing)
	m := &LeakMap{Threshold: TVLAThreshold, Samples: len(ts)}
	for i, v := range ts {
		a := v
		if a < 0 {
			a = -a
		}
		if a > m.MaxT {
			m.MaxT = a
		}
		if a <= TVLAThreshold {
			continue
		}
		cycle := start + i
		sp := findSpan(spans, cycle)
		lp := LeakPoint{Cycle: cycle, TStat: v, InstrIdx: -1, Iteration: -1, KeyBit: -1}
		if sp != nil {
			lp.InstrIdx = sp.Index
			lp.Op = sp.Op
			lp.Iteration = sp.Iteration
			lp.KeyBit = sp.KeyBit
		}
		m.Points = append(m.Points, lp)
	}
	sort.Slice(m.Points, func(i, j int) bool {
		ai, aj := m.Points[i].TStat, m.Points[j].TStat
		if ai < 0 {
			ai = -ai
		}
		if aj < 0 {
			aj = -aj
		}
		return ai > aj
	})
	return m, nil
}

func findSpan(spans []coproc.InstrSpan, cycle int) *coproc.InstrSpan {
	lo, hi := 0, len(spans)
	for lo < hi {
		mid := (lo + hi) / 2
		switch {
		case cycle < spans[mid].Start:
			hi = mid
		case cycle >= spans[mid].End:
			lo = mid + 1
		default:
			return &spans[mid]
		}
	}
	return nil
}

// ByOp aggregates the leaky cycles per opcode — the designer's view of
// *which circuit block* leaks.
func (m *LeakMap) ByOp() map[string]int {
	out := map[string]int{}
	for _, p := range m.Points {
		out[p.Op.String()]++
	}
	return out
}

// Leaks reports whether any point exceeded the threshold.
func (m *LeakMap) Leaks() bool { return len(m.Points) > 0 }

// FixedPointForMap is a convenience re-export so callers don't need
// the ec import just for the default point.
func FixedPointForMap(c *ec.Curve) ec.Point { return FixedPoint(c) }
