package sca

import (
	"context"
	"encoding/json"
	"errors"
	"path/filepath"
	"reflect"
	"testing"

	"medsec/internal/campaign"
	"medsec/internal/modn"
	"medsec/internal/rng"
	"medsec/internal/store"
)

// The checkpoint/resume contract these tests pin: a campaign killed
// mid-run (context cancellation — the CLIs' SIGINT path) and resumed
// by a fresh process produces results bit-identical to an
// uninterrupted run, for serial and sharded reductions and across
// worker counts.

func ckptHeader(seed uint64) store.Header {
	return store.Header{
		Tool: "scalab", Kind: "tvla", Seed: seed, GitSHA: "testsha",
		Point: json.RawMessage(`{"fixture":"checkpoint_test"}`),
	}
}

// tvlaCkpt runs one TVLA campaign with a fresh key stream derived from
// keySeed, under the given engine shape and checkpoint config.
func tvlaCkpt(t *testing.T, seed, keySeed uint64, workers, shards, nPerSet int,
	ctx context.Context, ck *CampaignCheckpoint, progress func(done int)) (*TVLAResult, error) {
	t.Helper()
	tgt := newDPATarget(t, false, seed)
	tgt.Workers = workers
	tgt.Shards = shards
	tgt.Ctx = ctx
	tgt.Ckpt = ck
	tgt.Progress = progress
	src := rng.NewDRBG(keySeed).Uint64
	randKey := func() modn.Scalar { return AlgorithmOneScalar(tgt.Curve, src) }
	return TVLA(tgt, FixedPoint(tgt.Curve), nPerSet, 160, 158, randKey)
}

func sameTVLA(t *testing.T, label string, got, want *TVLAResult) {
	t.Helper()
	if got.TracesPerSet != want.TracesPerSet {
		t.Errorf("%s: %d traces/set, want %d", label, got.TracesPerSet, want.TracesPerSet)
	}
	if got.EarlyStopped != want.EarlyStopped {
		t.Errorf("%s: EarlyStopped=%v, want %v", label, got.EarlyStopped, want.EarlyStopped)
	}
	if !reflect.DeepEqual(got.TCurve, want.TCurve) {
		t.Errorf("%s: t-curve differs bit-for-bit from the uninterrupted run", label)
	}
}

// TestTVLAKillResumeMatchesUninterrupted: interrupt a TVLA campaign
// mid-run, then resume it from the checkpoint — possibly at a
// different worker count, as a fresh process would — and require the
// final result bit-identical to an uninterrupted campaign.
func TestTVLAKillResumeMatchesUninterrupted(t *testing.T) {
	const nPerSet = 14
	cases := []struct {
		name           string
		shards         int
		killW, resumeW int
		cancelAt       int
	}{
		{"serial", -1, 1, 7, 9},
		{"serial-wide-kill", -1, 7, 1, 9},
		{"sharded-1", 1, 1, 7, 9},
		{"sharded-4", 4, 7, 1, 9},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			seed := uint64(79)
			ref, err := tvlaCkpt(t, seed, 8, tc.resumeW, tc.shards, nPerSet, nil, nil, nil)
			if err != nil {
				t.Fatal(err)
			}

			path := filepath.Join(t.TempDir(), "tvla.ckpt")
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			ck := &CampaignCheckpoint{Path: path, Every: 4, Header: ckptHeader(seed)}
			_, err = tvlaCkpt(t, seed, 8, tc.killW, tc.shards, nPerSet, ctx, ck,
				func(done int) {
					if done >= tc.cancelAt {
						cancel()
					}
				})
			if !errors.Is(err, campaign.ErrInterrupted) {
				t.Fatalf("interrupted campaign returned %v, want campaign.ErrInterrupted", err)
			}
			prev, err := store.Read(path)
			if err != nil {
				t.Fatalf("no checkpoint after interrupt: %v", err)
			}
			if prev.Header.Complete {
				t.Fatal("interrupt checkpoint marked Complete")
			}

			rck := &CampaignCheckpoint{Path: path, Every: 4, Header: ckptHeader(seed), Resume: true}
			res, err := tvlaCkpt(t, seed, 8, tc.resumeW, tc.shards, nPerSet, nil, rck, nil)
			if err != nil {
				t.Fatal(err)
			}
			sameTVLA(t, tc.name, res, ref)

			// The completion checkpoint short-circuits a re-run: same
			// result, engine never started (Progress never fires).
			res2, err := tvlaCkpt(t, seed, 8, tc.resumeW, tc.shards, nPerSet, nil, rck,
				func(done int) { t.Errorf("engine ran on a Complete checkpoint (done=%d)", done) })
			if err != nil {
				t.Fatal(err)
			}
			sameTVLA(t, tc.name+"/short-circuit", res2, ref)
		})
	}
}

// TestTVLAUntilKillResumeMatchesUninterrupted covers the early-stop
// (serial-consumer) leg: the resumed campaign must stop at exactly the
// same pair as the uninterrupted one.
func TestTVLAUntilKillResumeMatchesUninterrupted(t *testing.T) {
	run := func(ctx context.Context, ck *CampaignCheckpoint, progress func(int)) (*TVLAResult, error) {
		tgt := newDPATarget(t, false, 80)
		tgt.Workers = 3
		tgt.Ctx = ctx
		tgt.Ckpt = ck
		tgt.Progress = progress
		src := rng.NewDRBG(9).Uint64
		randKey := func() modn.Scalar { return AlgorithmOneScalar(tgt.Curve, src) }
		return TVLAUntil(tgt, FixedPoint(tgt.Curve), 120, 5, 160, 158, randKey)
	}
	ref, err := run(nil, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !ref.EarlyStopped {
		t.Fatalf("fixture did not early-stop (maxT=%g)", ref.MaxT)
	}

	hdr := ckptHeader(80)
	hdr.Kind = "tvla-until"
	path := filepath.Join(t.TempDir(), "until.ckpt")
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	ck := &CampaignCheckpoint{Path: path, Every: 6, Header: hdr}
	cancelAt := ref.TracesPerSet // half the consumed count at the natural stop
	if _, err := run(ctx, ck, func(done int) {
		if done >= cancelAt {
			cancel()
		}
	}); !errors.Is(err, campaign.ErrInterrupted) {
		t.Fatalf("interrupted campaign returned %v, want campaign.ErrInterrupted", err)
	}

	rck := &CampaignCheckpoint{Path: path, Every: 6, Header: hdr, Resume: true}
	res, err := run(nil, rck, nil)
	if err != nil {
		t.Fatal(err)
	}
	sameTVLA(t, "until-resume", res, ref)

	// The early-stopped completion checkpoint short-circuits re-runs.
	res2, err := run(nil, rck, func(done int) { t.Errorf("engine ran on a Complete checkpoint (done=%d)", done) })
	if err != nil {
		t.Fatal(err)
	}
	sameTVLA(t, "until-short-circuit", res2, ref)
}

// TestTVLASerialCrossProcessExtend: a Complete serial checkpoint at a
// smaller budget seeds a larger campaign — the cross-process extension
// case — and the extended result is bit-identical to a single
// uninterrupted run at the larger budget.
func TestTVLASerialCrossProcessExtend(t *testing.T) {
	ref, err := tvlaCkpt(t, 79, 8, 3, -1, 14, nil, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "extend.ckpt")
	ck := &CampaignCheckpoint{Path: path, Every: 5, Header: ckptHeader(79)}
	if _, err := tvlaCkpt(t, 79, 8, 3, -1, 10, nil, ck, nil); err != nil {
		t.Fatal(err)
	}
	rck := &CampaignCheckpoint{Path: path, Every: 5, Header: ckptHeader(79), Resume: true}
	res, err := tvlaCkpt(t, 79, 8, 3, -1, 14, nil, rck, nil)
	if err != nil {
		t.Fatal(err)
	}
	sameTVLA(t, "extend", res, ref)
}

// TestTVLACheckpointProvenanceMismatchRefused: resuming under a
// different seed, git SHA or design point must fail with a typed
// mismatch naming the offending field, not silently merge foreign
// statistics.
func TestTVLACheckpointProvenanceMismatchRefused(t *testing.T) {
	path := filepath.Join(t.TempDir(), "tvla.ckpt")
	ck := &CampaignCheckpoint{Path: path, Every: 5, Header: ckptHeader(79)}
	if _, err := tvlaCkpt(t, 79, 8, 2, -1, 10, nil, ck, nil); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		field string
		mut   func(*store.Header)
	}{
		{"seed", func(h *store.Header) { h.Seed = 123 }},
		{"git SHA", func(h *store.Header) { h.GitSHA = "othersha" }},
		{"design point", func(h *store.Header) { h.Point = json.RawMessage(`{"fixture":"drifted"}`) }},
		{"kind", func(h *store.Header) { h.Kind = "dpa" }},
	}
	for _, tc := range cases {
		hdr := ckptHeader(79)
		tc.mut(&hdr)
		rck := &CampaignCheckpoint{Path: path, Every: 5, Header: hdr, Resume: true}
		_, err := tvlaCkpt(t, 79, 8, 2, -1, 10, nil, rck, nil)
		var me *store.MismatchError
		if !errors.As(err, &me) {
			t.Fatalf("%s drift returned %v, want *store.MismatchError", tc.field, err)
		}
		if me.Field != tc.field {
			t.Errorf("mismatch named %q, want %q", me.Field, tc.field)
		}
	}
	// Shard-shape drift: a serial checkpoint refused by a sharded run.
	rck := &CampaignCheckpoint{Path: path, Every: 5, Header: ckptHeader(79), Resume: true}
	tgt := newDPATarget(t, false, 79)
	tgt.Shards = 4
	tgt.Ckpt = rck
	src := rng.NewDRBG(8).Uint64
	_, err := TVLA(tgt, FixedPoint(tgt.Curve), 10, 160, 158,
		func() modn.Scalar { return AlgorithmOneScalar(tgt.Curve, src) })
	var me *store.MismatchError
	if !errors.As(err, &me) || me.Field != "shard count" {
		t.Fatalf("shard-shape drift returned %v, want shard-count mismatch", err)
	}
}

// TestTracesToSuccessKillResume: interrupt the CPA traces-to-success
// search mid-acquisition, resume it in a "fresh process" (new Target,
// replayed point stream) and require the same verdict and scores as an
// uninterrupted search; a Complete checkpoint then answers re-runs
// without acquiring anything.
func TestTracesToSuccessKillResume(t *testing.T) {
	sizes := []int{12, 24}
	const bits = 2
	hdr := ckptHeader(8)
	hdr.Kind = "dpa"
	run := func(ctx context.Context, ck *CampaignCheckpoint, progress func(int)) (int, *CPAResult, error) {
		tgt := newDPATarget(t, false, 8)
		tgt.Workers = 3
		tgt.Shards = -1 // serial consumer: deterministic interrupt point
		tgt.Ctx = ctx
		tgt.Ckpt = ck
		tgt.Progress = progress
		return TracesToSuccess(tgt, sizes, bits, CPAOptions{}, rng.NewDRBG(9).Uint64)
	}
	refN, refRes, err := run(nil, nil, nil)
	if err != nil {
		t.Fatal(err)
	}

	path := filepath.Join(t.TempDir(), "dpa.ckpt")
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	ck := &CampaignCheckpoint{Path: path, Header: hdr}
	// Cancel during the second extension (sizes[0] < 16 < sizes[1]), so
	// the checkpoint on disk is the size-12 boundary.
	if _, _, err := run(ctx, ck, func(done int) {
		if done >= 16 {
			cancel()
		}
	}); !errors.Is(err, campaign.ErrInterrupted) {
		t.Fatalf("interrupted search returned %v, want campaign.ErrInterrupted", err)
	}
	prev, err := store.Read(path)
	if err != nil {
		t.Fatalf("no checkpoint after interrupt: %v", err)
	}
	if prev.Header.Watermark != sizes[0] || prev.Header.Complete {
		t.Fatalf("interrupt left watermark=%d complete=%v, want boundary %d",
			prev.Header.Watermark, prev.Header.Complete, sizes[0])
	}

	rck := &CampaignCheckpoint{Path: path, Header: hdr, Resume: true}
	n, res, err := run(nil, rck, nil)
	if err != nil {
		t.Fatal(err)
	}
	if n != refN {
		t.Fatalf("resumed search answered %d, uninterrupted answered %d", n, refN)
	}
	if !reflect.DeepEqual(res.Recovered, refRes.Recovered) || !reflect.DeepEqual(res.Scores, refRes.Scores) {
		t.Fatal("resumed search's CPA result differs from the uninterrupted run")
	}

	// Complete short-circuit: the stored set answers without acquiring.
	n2, res2, err := run(nil, rck, func(done int) { t.Errorf("engine ran on a Complete checkpoint (done=%d)", done) })
	if err != nil {
		t.Fatal(err)
	}
	if n2 != refN || !reflect.DeepEqual(res2.Recovered, refRes.Recovered) {
		t.Fatal("Complete-checkpoint re-evaluation drifted from the uninterrupted run")
	}
}
