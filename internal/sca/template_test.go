package sca

import (
	"testing"

	"medsec/internal/coproc"
	"medsec/internal/ec"
	"medsec/internal/power"
	"medsec/internal/rng"
)

func TestTemplateAttackOnResidualImbalance(t *testing.T) {
	if testing.Short() {
		t.Skip("long campaign; skipped in -short mode")
	}
	// The §7 scenario: the profiled attack extracts the key from the
	// protected chip's residual layout imbalance.
	curve := ec.K163()
	victimKey := generateKey(curve, rng.NewDRBG(71).Uint64)
	cfg := power.ProtectedChip(71) // balanced muxes, residual imbalance present
	profiler := NewTarget(curve, generateKey(curve, rng.NewDRBG(72).Uint64),
		coproc.ProgramOptions{RPC: true, XOnly: true}, coproc.DefaultTiming(), cfg, 7171)
	victim := NewTarget(curve, victimKey,
		coproc.ProgramOptions{RPC: true, XOnly: true}, coproc.DefaultTiming(), cfg, 7272)

	tm, err := BuildTemplate(profiler, curve.Generator(), 4)
	if err != nil {
		t.Fatal(err)
	}
	// The template must see the imbalance: class means differ, and
	// averaging enough victim traces separates them.
	if tm.Mean1 <= tm.Mean0 {
		t.Fatalf("template classes inverted or merged: %v vs %v", tm.Mean0, tm.Mean1)
	}
	if tm.Separation(200) < 3 {
		t.Fatalf("separation at 200 averages only %.2f sigma; leak model too weak", tm.Separation(200))
	}
	res, err := TemplateAttack(tm, victim, curve.Generator(), 200)
	if err != nil {
		t.Fatal(err)
	}
	if res.Accuracy() < 0.97 {
		t.Fatalf("template attack accuracy %.3f; the §7 profiled attack should recover the key", res.Accuracy())
	}
}

func TestTemplateAttackFailsWithoutImbalance(t *testing.T) {
	if testing.Short() {
		t.Skip("long campaign; skipped in -short mode")
	}
	curve := ec.K163()
	cfg := power.ProtectedChip(73)
	cfg.ResidualImbalance = 0
	profiler := NewTarget(curve, generateKey(curve, rng.NewDRBG(74).Uint64),
		coproc.ProgramOptions{RPC: true, XOnly: true}, coproc.DefaultTiming(), cfg, 7373)
	victim := NewTarget(curve, generateKey(curve, rng.NewDRBG(75).Uint64),
		coproc.ProgramOptions{RPC: true, XOnly: true}, coproc.DefaultTiming(), cfg, 7474)
	tm, err := BuildTemplate(profiler, curve.Generator(), 4)
	if err != nil {
		t.Fatal(err)
	}
	res, err := TemplateAttack(tm, victim, curve.Generator(), 100)
	if err != nil {
		t.Fatal(err)
	}
	if res.Accuracy() > 0.75 {
		t.Fatalf("template attack succeeded (%.3f) with zero imbalance", res.Accuracy())
	}
}

func TestTemplateValidation(t *testing.T) {
	curve := ec.K163()
	tgt := newDPATarget(t, true, 76)
	if _, err := BuildTemplate(tgt, curve.Generator(), 1); err == nil {
		t.Fatal("single-trace profiling accepted")
	}
	tm := &Template{Mean0: 0, Mean1: 1, Sigma: 0}
	if sep := tm.Separation(10); sep != sepInf() {
		t.Fatal("zero-sigma separation should be +Inf")
	}
	if _, err := TemplateAttack(tm, tgt, curve.Generator(), 0); err == nil {
		t.Fatal("zero victim traces accepted")
	}
}

func sepInf() float64 { return (&Template{Mean0: 0, Mean1: 1}).Separation(1) }
