package sca

import (
	"context"
	"errors"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"medsec/internal/campaign"
	"medsec/internal/coproc"
	"medsec/internal/ec"
	"medsec/internal/modn"
	"medsec/internal/power"
	"medsec/internal/rng"
)

// maskedLab is the power configuration of the masked-scenario
// evaluations: the protected chip at its intrinsic noise floor
// (NoiseSigma 0.03, not the oscilloscope-limited LabNoiseSigma) with
// the residual layout imbalance zeroed. Both choices isolate the
// question the masking countermeasure answers — datapath leakage:
//
//   - at the scope's noise floor the per-sample noise variance (~80²
//     toggle units) buries the mask-induced variance (~60 units) that
//     the second-order statistic estimates, so neither order would see
//     anything and the comparison would be vacuous;
//   - the residual CSWAP-select imbalance is a *control-path* leak that
//     Boolean masking of the datapath cannot cover (and at the chip
//     noise floor it convicts the first order on its own) — it is its
//     own countermeasure axis (power.Config.ResidualImbalance),
//     evaluated by the SPA/leakage-map tests.
func maskedLab(seed uint64) power.Config {
	cfg := power.ProtectedChip(seed)
	cfg.ResidualImbalance = 0
	return cfg
}

// newMaskedTarget builds the masked-scenario device: non-RPC x-only
// ladder microcode (the white-box datapath the CPA tests attack) on
// the maskedLab chip, with first-order Boolean masking switched by
// masked.
func newMaskedTarget(t *testing.T, seed uint64, masked bool) *Target {
	t.Helper()
	curve := ec.K163()
	key := generateKey(curve, rng.NewDRBG(seed).Uint64)
	tgt := NewTarget(curve, key,
		coproc.ProgramOptions{RPC: false, XOnly: true},
		coproc.DefaultTiming(), maskedLab(seed), seed+7777)
	tgt.Masked = masked
	tgt.Lanes = 8
	return tgt
}

func algKeyStream(curve *ec.Curve, seed uint64) func() modn.Scalar {
	src := rng.NewDRBG(seed).Uint64
	return func() modn.Scalar { return AlgorithmOneScalar(curve, src) }
}

// TestMaskedSecondOrderSeparation is the headline statistical claim of
// the masking countermeasure, pinned end to end on the campaign
// engine: on the masked target the first-order fixed-vs-random t-test
// stays below the 4.5 evidence threshold over a 2000-trace-per-set
// budget, while the second-order (centered-product) test convicts the
// same device — and the unmasked baseline is convicted by the first
// order immediately.
func TestMaskedSecondOrderSeparation(t *testing.T) {
	const nPerSet = 2000
	p := FixedPoint(ec.K163())

	// Masked, first order: flat. Full budget — flatness is a statement
	// about the whole campaign, not an early-stopped prefix.
	tgt := newMaskedTarget(t, 900, true)
	r1, err := TVLA(tgt, p, nPerSet, 160, 158, algKeyStream(tgt.Curve, 77))
	if err != nil {
		t.Fatal(err)
	}
	if r1.Order != 1 {
		t.Fatalf("TVLA reported order %d", r1.Order)
	}
	if r1.MaxT >= TVLAThreshold {
		t.Fatalf("masked first-order TVLA convicts: max|t|=%.2f at %d traces/set",
			r1.MaxT, r1.TracesPerSet)
	}

	// Masked, second order: convicts (early-stop leg — the conviction
	// threshold is crossed well before the budget).
	tgt = newMaskedTarget(t, 900, true)
	r2, err := TVLA2Until(tgt, p, nPerSet, 100, 160, 158, algKeyStream(tgt.Curve, 77))
	if err != nil {
		t.Fatal(err)
	}
	if r2.Order != 2 {
		t.Fatalf("TVLA2 reported order %d", r2.Order)
	}
	if r2.MaxT <= TVLAThreshold {
		t.Fatalf("masked second-order TVLA stays flat: max|t|=%.2f at %d traces/set",
			r2.MaxT, r2.TracesPerSet)
	}

	// Unmasked baseline, first order: convicted in tens of pairs.
	tgt = newMaskedTarget(t, 900, false)
	u1, err := TVLAUntil(tgt, p, nPerSet, 25, 160, 158, algKeyStream(tgt.Curve, 77))
	if err != nil {
		t.Fatal(err)
	}
	if u1.MaxT <= TVLAThreshold {
		t.Fatalf("unmasked first-order TVLA stays flat: max|t|=%.2f", u1.MaxT)
	}
}

// TestMaskedCenteredProductCPA: against the masked target the raw
// first-order CPA degenerates to guessing, while the centered-product
// (second-order) CPA with Hamming-distance predictions recovers every
// targeted bit from the same 500-trace campaign.
func TestMaskedCenteredProductCPA(t *testing.T) {
	tgt := newMaskedTarget(t, 901, true)
	camp, err := tgt.AcquireCampaign(500, 160, 157, rng.NewDRBG(5).Uint64)
	if err != nil {
		t.Fatal(err)
	}
	first, err := CPA(camp, CPAOptions{Bits: 4})
	if err != nil {
		t.Fatal(err)
	}
	second, err := CPA(camp, CPAOptions{Bits: 4, Preprocess: PreprocessCenteredProduct})
	if err != nil {
		t.Fatal(err)
	}
	if !second.Success() {
		t.Fatalf("centered-product CPA failed on the masked target: recovered %v, true %v, scores %v",
			second.Recovered, second.True, second.Scores)
	}
	if first.Success() {
		t.Fatalf("raw first-order CPA recovered a masked key (scores %v) — masking is not masking",
			first.Scores)
	}
}

func TestCPARejectsUnknownPreprocess(t *testing.T) {
	tgt := newMaskedTarget(t, 902, true)
	camp, err := tgt.AcquireCampaign(4, 160, 159, rng.NewDRBG(6).Uint64)
	if err != nil {
		t.Fatal(err)
	}
	_, err = CPA(camp, CPAOptions{Bits: 1, Preprocess: "fourier"})
	if err == nil || !strings.Contains(err.Error(), "fourier") {
		t.Fatalf("unknown preprocess accepted (err=%v)", err)
	}
}

// TestMaskedTVLADeterminismMatrix pins the bit-identical contract on
// the masked acquisition path for both statistical orders: at a fixed
// shard count, every worker-count × lane-count combination reproduces
// the reference t-curve byte for byte, and the quiet-prologue plan
// matches the full evented pipeline.
func TestMaskedTVLADeterminismMatrix(t *testing.T) {
	const nPerSet = 25
	run := func(order, workers, shards, lanes int, noSkip bool) *TVLAResult {
		t.Helper()
		tgt := newMaskedTarget(t, 903, true)
		tgt.Workers = workers
		tgt.Shards = shards
		tgt.Lanes = lanes
		tgt.NoPrologueSkip = noSkip
		randKey := algKeyStream(tgt.Curve, 11)
		var res *TVLAResult
		var err error
		if order == 1 {
			res, err = TVLA(tgt, FixedPoint(tgt.Curve), nPerSet, 160, 158, randKey)
		} else {
			res, err = TVLA2(tgt, FixedPoint(tgt.Curve), nPerSet, 160, 158, randKey)
		}
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	for _, order := range []int{1, 2} {
		for _, shards := range []int{1, 4} {
			ref := run(order, 1, shards, 1, false)
			for _, workers := range []int{2, 7} {
				for _, lanes := range []int{1, 4, 8} {
					got := run(order, workers, shards, lanes, false)
					if !reflect.DeepEqual(got.TCurve, ref.TCurve) {
						t.Errorf("order=%d shards=%d: workers=%d lanes=%d t-curve differs from workers=1 lanes=1",
							order, shards, workers, lanes)
					}
				}
			}
			// The quiet-prologue plan must reproduce the full evented
			// pipeline bit for bit on the masked path too (per-trace mask
			// draws are replayed, never snapshotted).
			noskip := run(order, 2, shards, 4, true)
			if !reflect.DeepEqual(noskip.TCurve, ref.TCurve) {
				t.Errorf("order=%d shards=%d: NoPrologueSkip t-curve differs — masked quiet prologue drifts", order, shards)
			}
		}
	}
}

// TestMaskedCPADeterminismMatrix: the masked retained-set campaign and
// both CPA preprocessing modes are byte-identical across worker and
// lane counts.
func TestMaskedCPADeterminismMatrix(t *testing.T) {
	run := func(workers, lanes int) (*CPAResult, *CPAResult) {
		t.Helper()
		tgt := newMaskedTarget(t, 904, true)
		tgt.Workers = workers
		tgt.Lanes = lanes
		camp, err := tgt.AcquireCampaign(60, 160, 158, rng.NewDRBG(12).Uint64)
		if err != nil {
			t.Fatal(err)
		}
		first, err := CPA(camp, CPAOptions{Bits: 3})
		if err != nil {
			t.Fatal(err)
		}
		second, err := CPA(camp, CPAOptions{Bits: 3, Preprocess: PreprocessCenteredProduct})
		if err != nil {
			t.Fatal(err)
		}
		return first, second
	}
	ref1, ref2 := run(1, 1)
	for _, workers := range []int{2, 7} {
		for _, lanes := range []int{1, 4, 8} {
			got1, got2 := run(workers, lanes)
			if !reflect.DeepEqual(got1.Scores, ref1.Scores) || !reflect.DeepEqual(got1.Recovered, ref1.Recovered) {
				t.Errorf("workers=%d lanes=%d: first-order CPA differs from serial reference", workers, lanes)
			}
			if !reflect.DeepEqual(got2.Scores, ref2.Scores) || !reflect.DeepEqual(got2.Recovered, ref2.Recovered) {
				t.Errorf("workers=%d lanes=%d: centered-product CPA differs from serial reference", workers, lanes)
			}
		}
	}
}

// TestMaskedTVLA2KillResume: interrupt a masked second-order campaign
// mid-run and resume it from the checkpoint — at a different worker
// count, as a fresh process would — for both the serial and sharded
// engine legs; the result must be bit-identical to an uninterrupted
// run, and the welch2 blob namespace must reject a first-order
// checkpoint.
func TestMaskedTVLA2KillResume(t *testing.T) {
	const nPerSet = 14
	hdr := ckptHeader(905)
	hdr.Kind = "tvla2"
	run := func(workers, shards int, ctx context.Context, ck *CampaignCheckpoint, progress func(int)) (*TVLAResult, error) {
		tgt := newMaskedTarget(t, 905, true)
		tgt.Workers = workers
		tgt.Shards = shards
		tgt.Lanes = 4
		tgt.Ctx = ctx
		tgt.Ckpt = ck
		tgt.Progress = progress
		return TVLA2(tgt, FixedPoint(tgt.Curve), nPerSet, 160, 158, algKeyStream(tgt.Curve, 13))
	}
	for _, tc := range []struct {
		name   string
		shards int
	}{
		{"serial", -1},
		{"sharded-4", 4},
	} {
		t.Run(tc.name, func(t *testing.T) {
			ref, err := run(7, tc.shards, nil, nil, nil)
			if err != nil {
				t.Fatal(err)
			}
			path := filepath.Join(t.TempDir(), "tvla2.ckpt")
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			ck := &CampaignCheckpoint{Path: path, Every: 4, Header: hdr}
			if _, err := run(1, tc.shards, ctx, ck, func(done int) {
				if done >= 9 {
					cancel()
				}
			}); !errors.Is(err, campaign.ErrInterrupted) {
				t.Fatalf("interrupted campaign returned %v, want campaign.ErrInterrupted", err)
			}
			rck := &CampaignCheckpoint{Path: path, Every: 4, Header: hdr, Resume: true}
			res, err := run(7, tc.shards, nil, rck, nil)
			if err != nil {
				t.Fatal(err)
			}
			sameTVLA(t, tc.name, res, ref)
		})
	}

	// Cross-order checkpoint refusal: a first-order checkpoint under the
	// same header must not seed a second-order campaign — the welch2
	// blob is absent and the resume fails loudly.
	path := filepath.Join(t.TempDir(), "order1.ckpt")
	ck := &CampaignCheckpoint{Path: path, Every: 4, Header: hdr}
	tgt := newMaskedTarget(t, 905, true)
	tgt.Shards = -1
	tgt.Ckpt = ck
	if _, err := TVLA(tgt, FixedPoint(tgt.Curve), nPerSet, 160, 158, algKeyStream(tgt.Curve, 13)); err != nil {
		t.Fatal(err)
	}
	rck := &CampaignCheckpoint{Path: path, Every: 4, Header: hdr, Resume: true}
	if _, err := run(1, -1, nil, rck, nil); err == nil || !strings.Contains(err.Error(), "welch2") {
		t.Fatalf("second-order campaign resumed from a first-order checkpoint (err=%v)", err)
	}
}

// TestMaskedTracesToSuccessKillResume exercises the retained-set
// checkpoint flow on the masked path with the centered-product attack:
// the resumed search reproduces the uninterrupted verdict bit for bit.
func TestMaskedTracesToSuccessKillResume(t *testing.T) {
	sizes := []int{24, 64}
	const bits = 2
	hdr := ckptHeader(906)
	hdr.Kind = "dpa2"
	run := func(ctx context.Context, ck *CampaignCheckpoint, progress func(int)) (int, *CPAResult, error) {
		tgt := newMaskedTarget(t, 906, true)
		tgt.Workers = 3
		tgt.Shards = -1 // serial consumer: deterministic interrupt point
		tgt.Ctx = ctx
		tgt.Ckpt = ck
		tgt.Progress = progress
		return TracesToSuccess(tgt, sizes, bits,
			CPAOptions{Preprocess: PreprocessCenteredProduct}, rng.NewDRBG(14).Uint64)
	}
	refN, refRes, err := run(nil, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "dpa2.ckpt")
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	ck := &CampaignCheckpoint{Path: path, Header: hdr}
	// Cancel during the second extension (sizes[0] < 32 < sizes[1]), so
	// the checkpoint on disk is the first size boundary.
	if _, _, err := run(ctx, ck, func(done int) {
		if done >= 32 {
			cancel()
		}
	}); !errors.Is(err, campaign.ErrInterrupted) {
		t.Fatalf("interrupted search returned %v, want campaign.ErrInterrupted", err)
	}
	rck := &CampaignCheckpoint{Path: path, Header: hdr, Resume: true}
	n, res, err := run(nil, rck, nil)
	if err != nil {
		t.Fatal(err)
	}
	if n != refN {
		t.Fatalf("resumed search answered %d, uninterrupted answered %d", n, refN)
	}
	if !reflect.DeepEqual(res.Recovered, refRes.Recovered) || !reflect.DeepEqual(res.Scores, refRes.Scores) {
		t.Fatal("resumed masked search's CPA result differs from the uninterrupted run")
	}
}
