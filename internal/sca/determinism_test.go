package sca

import (
	"reflect"
	"testing"

	"medsec/internal/modn"
	"medsec/internal/rng"
)

// The campaign engine's determinism contract (internal/campaign): a
// campaign is bit-identical for any worker count. These tests pin that
// contract at the attack level — same recovered bits, same t-curves,
// same trace counts whether acquisition ran serially or fanned out.

var determinismWorkers = []int{1, 2, 7}

// campaignFingerprint flattens a campaign into a comparable value.
func campaignFingerprint(c *Campaign) [][]float64 {
	out := make([][]float64, c.Set.Len())
	for i := range out {
		out[i] = c.Set.Traces[i].Samples
	}
	return out
}

func TestCampaignDeterministicAcrossWorkers(t *testing.T) {
	acquire := func(workers int) *Campaign {
		tgt := newDPATarget(t, false, 77)
		tgt.Workers = workers
		camp, err := tgt.AcquireCampaign(40, 160, 157, rng.NewDRBG(3).Uint64)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		return camp
	}
	base := acquire(1)
	want := campaignFingerprint(base)
	for _, w := range determinismWorkers[1:] {
		camp := acquire(w)
		if got := campaignFingerprint(camp); !reflect.DeepEqual(got, want) {
			t.Errorf("workers=%d: campaign traces differ from serial acquisition", w)
		}
		if !reflect.DeepEqual(camp.Points, base.Points) {
			t.Errorf("workers=%d: campaign points differ from serial acquisition", w)
		}
	}
}

func TestCPADeterministicAcrossWorkers(t *testing.T) {
	run := func(workers int) *CPAResult {
		tgt := newDPATarget(t, false, 78)
		tgt.Workers = workers
		camp, err := tgt.AcquireCampaign(80, 160, 156, rng.NewDRBG(5).Uint64)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		res, err := CPA(camp, CPAOptions{Bits: 5})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		return res
	}
	base := run(1)
	for _, w := range determinismWorkers[1:] {
		res := run(w)
		if !reflect.DeepEqual(res.Recovered, base.Recovered) {
			t.Errorf("workers=%d: recovered bits differ: %v vs %v", w, res.Recovered, base.Recovered)
		}
		if !reflect.DeepEqual(res.Scores, base.Scores) {
			t.Errorf("workers=%d: per-bit scores differ from serial run", w)
		}
	}
}

func TestTVLADeterministicAcrossWorkers(t *testing.T) {
	run := func(workers int) *TVLAResult {
		tgt := newDPATarget(t, false, 79)
		tgt.Workers = workers
		src := rng.NewDRBG(8).Uint64
		randKey := func() modn.Scalar { return AlgorithmOneScalar(tgt.Curve, src) }
		res, err := TVLA(tgt, FixedPoint(tgt.Curve), 25, 160, 158, randKey)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		return res
	}
	base := run(1)
	for _, w := range determinismWorkers[1:] {
		res := run(w)
		if res.TracesPerSet != base.TracesPerSet {
			t.Errorf("workers=%d: trace count %d, serial %d", w, res.TracesPerSet, base.TracesPerSet)
		}
		if !reflect.DeepEqual(res.TCurve, base.TCurve) {
			t.Errorf("workers=%d: t-curve differs bit-for-bit from serial run", w)
		}
	}
}

func TestTVLAEarlyStopDeterministicAcrossWorkers(t *testing.T) {
	run := func(workers int) *TVLAResult {
		tgt := newDPATarget(t, false, 80)
		tgt.Workers = workers
		src := rng.NewDRBG(9).Uint64
		randKey := func() modn.Scalar { return AlgorithmOneScalar(tgt.Curve, src) }
		res, err := TVLAUntil(tgt, FixedPoint(tgt.Curve), 120, 5, 160, 158, randKey)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		return res
	}
	base := run(1)
	if !base.EarlyStopped {
		t.Fatalf("expected the unprotected-configuration TVLA to early-stop (got %d traces/set, maxT=%g)",
			base.TracesPerSet, base.MaxT)
	}
	for _, w := range determinismWorkers[1:] {
		res := run(w)
		if res.TracesPerSet != base.TracesPerSet {
			t.Errorf("workers=%d: stopped at %d traces/set, serial stopped at %d", w, res.TracesPerSet, base.TracesPerSet)
		}
		if !reflect.DeepEqual(res.TCurve, base.TCurve) {
			t.Errorf("workers=%d: early-stopped t-curve differs from serial run", w)
		}
	}
}

func TestSPAProfiledDeterministicAcrossWorkers(t *testing.T) {
	run := func(workers int) *SPAResult {
		tgt := newDPATarget(t, false, 81)
		tgt.Workers = workers
		p := tgt.Curve.RandomPoint(rng.NewDRBG(10).Uint64)
		res, err := SPAProfiled(tgt, p, 12)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		return res
	}
	base := run(1)
	for _, w := range determinismWorkers[1:] {
		res := run(w)
		if !reflect.DeepEqual(res.Features, base.Features) {
			t.Errorf("workers=%d: averaged SPA features differ from serial run", w)
		}
		if !reflect.DeepEqual(res.Recovered, base.Recovered) {
			t.Errorf("workers=%d: SPA classification differs from serial run", w)
		}
	}
}

func TestTemplateDeterministicAcrossWorkers(t *testing.T) {
	run := func(workers int) *Template {
		tgt := newDPATarget(t, false, 82)
		tgt.Workers = workers
		p := tgt.Curve.RandomPoint(rng.NewDRBG(11).Uint64)
		tm, err := BuildTemplate(tgt, p, 6)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		return tm
	}
	base := run(1)
	for _, w := range determinismWorkers[1:] {
		tm := run(w)
		if *tm != *base {
			t.Errorf("workers=%d: template %+v differs from serial %+v", w, tm, base)
		}
	}
}
