package sca

import (
	"testing"

	"medsec/internal/ec"
	"medsec/internal/rng"
)

// TestAcquireSteadyStateAllocs pins the campaign hot path's allocation
// budget: with worker-owned scratch state (re-seeded DRBG, re-inited
// power model, pooled collector buffers, pre-bound probe closures), a
// steady-state acquisition must not allocate beyond the two small
// pool-header boxes Release pays when recycling the sample buffers.
// This is the "cut steady-state allocations to ~zero per trace"
// acceptance criterion; before the scratch rework the same loop cost
// ~35 heap objects (CPU probes, fresh DRBG + model + collector and
// growing sample slices per trace).
func TestAcquireSteadyStateAllocs(t *testing.T) {
	tgt := newDPATarget(t, true, 9)
	p := tgt.Curve.RandomPoint(rng.NewDRBG(3).Uint64)
	start, end := tgt.Window(162, 159) // small early window: fast runs
	s := tgt.newScratch()
	acquireRelease := func(idx uint64) {
		tr, err := tgt.acquireOn(s, tgt.Key, p, start, end, idx)
		if err != nil {
			t.Fatal(err)
		}
		if len(tr.Samples) == 0 {
			t.Fatal("empty acquisition")
		}
		tr.Release()
	}
	// Warm the pools and the scratch state.
	for i := uint64(0); i < 3; i++ {
		acquireRelease(i)
	}
	idx := uint64(100)
	allocs := testing.AllocsPerRun(20, func() {
		acquireRelease(idx)
		idx++
	})
	if allocs > 4 {
		t.Fatalf("steady-state acquisition allocates %.1f objects per trace, want <= 4", allocs)
	}
}

// TestAcquireScratchReuseBitIdentical pins that one scratch state
// reused across many traces reproduces exactly what fresh per-trace
// state produces — the equivalence the allocation win rests on.
func TestAcquireScratchReuseBitIdentical(t *testing.T) {
	tgt := newDPATarget(t, true, 4)
	p := tgt.Curve.RandomPoint(rng.NewDRBG(8).Uint64)
	start, end := tgt.Window(162, 160)
	s := tgt.newScratch()
	for idx := uint64(0); idx < 6; idx++ {
		reused, err := tgt.acquireOn(s, tgt.Key, p, start, end, idx)
		if err != nil {
			t.Fatal(err)
		}
		fresh, err := tgt.AcquireWithKey(tgt.Key, ec.Point{X: p.X, Y: p.Y}, start, end, idx)
		if err != nil {
			t.Fatal(err)
		}
		if len(reused.Samples) != len(fresh.Samples) || len(reused.Samples) == 0 {
			t.Fatalf("idx %d: shape %d != %d", idx, len(reused.Samples), len(fresh.Samples))
		}
		for i := range fresh.Samples {
			if reused.Samples[i] != fresh.Samples[i] {
				t.Fatalf("idx %d sample %d: reused scratch %.18g != fresh %.18g",
					idx, i, reused.Samples[i], fresh.Samples[i])
			}
		}
		reused.Release()
		fresh.Release()
	}
}
