package sca

import (
	"errors"

	"medsec/internal/campaign"
	"medsec/internal/coproc"
	"medsec/internal/ec"
	"medsec/internal/modn"
	"medsec/internal/trace"
)

// Acquisition plans — the checkpointed/quiet prologue.
//
// A windowed acquisition records cycles [start, end), yet the old path
// event-simulated every cycle from 0: the ladder prologue and all
// iterations above the window ran through the full pipeline (cycle
// events, power-model evaluation, noise draws) only for the collector
// to discard them. An acqPlan removes that work in two layers while
// keeping the recorded samples bit-identical:
//
//   - quiet prefix: cycles [0, start) execute architecturally but emit
//     no events (coproc.CPU.QuietCycles). The field values are exactly
//     the evented pipeline's; only the per-cycle bookkeeping and the
//     power evaluation disappear. The measurement-noise stream is
//     re-aligned with power.Model.SkipCycles, which replays the
//     skipped draws' consumption pattern exactly;
//   - checkpoint: for a campaign over a FIXED base point, the longest
//     prefix that draws no TRNG words (Program.PrefixBoundary) is
//     simulated once per campaign with a reference key and captured as
//     a coproc.Snapshot. Every acquisition whose key agrees with the
//     reference on the prefix's CSWAP bits Resumes from the snapshot —
//     those cycles are not simulated at all, the hardware analogy
//     being a scan-chain preload of the datapath state. Keys that
//     disagree (TVLA's random set below the shared Algorithm 1 bits)
//     fall back to the quiet full run, so the check is per trace and
//     exact.
//
// Snapshot state depends on the base point (operand constants), so
// campaigns with per-trace random points (CPA) get quiet-only plans.
// Target.NoPrologueSkip disables both layers for A/B benchmarking and
// paranoid re-verification.

// acqPlan is one campaign's acquisition plan over a fixed cycle
// window.
type acqPlan struct {
	start, end int
	// quiet is the cycle boundary below which the CPU executes without
	// event bookkeeping; equal to start when the plan skips the
	// prologue, 0 otherwise.
	quiet int
	// snap, when non-nil, is the checkpoint at the end of the longest
	// TRNG-independent instruction prefix, captured with the plan's
	// fixed base point and reference key.
	snap *coproc.Snapshot
	// keyBits are the scalar bit indices the prefix's CSWAPs consulted;
	// refBits are the reference key's values there. A per-trace key may
	// use snap iff it matches refBits exactly.
	keyBits []int
	refBits []uint
	// met is the campaign's acquisition-counter bundle, resolved once
	// at plan construction (zero value when Target.Metrics is nil —
	// fully inert).
	met acqMetrics
}

// planWindow builds the point-independent plan for window [start, end):
// quiet prologue only, no checkpoint. This is the plan for campaigns
// whose base point varies per trace.
func (t *Target) planWindow(start, end int) *acqPlan {
	p := &acqPlan{start: start, end: end, met: t.acqMetrics()}
	if !t.NoPrologueSkip && start > 0 {
		p.quiet = start
	}
	return p
}

// planFixedPoint builds the plan for a fixed-base-point campaign,
// adding the prologue checkpoint when the program admits one (non-RPC
// microcode; RPC draws TRNG masks in its first instruction, so its
// TRNG-independent prefix is empty and the quiet layer does all the
// work).
func (t *Target) planFixedPoint(pt ec.Point, refKey modn.Scalar, start, end int) (*acqPlan, error) {
	plan := t.planWindow(start, end)
	if plan.quiet == 0 {
		return plan, nil
	}
	if t.Masked {
		// The Boolean-masking share refresh draws from a per-trace mask
		// substream starting at cycle 0, so no two traces agree on the
		// prefix state even under the same key and point — a shared
		// snapshot would freeze one trace's masks into every resume and
		// break bit-identity with the quiet path. The quiet layer still
		// applies: it re-executes the prefix per trace, drawing that
		// trace's own masks (coproc replays the draw schedule exactly).
		return plan, nil
	}
	nInstr, cycle, keyBits := t.prog.PrefixBoundary(t.Timing, start)
	if cycle == 0 {
		return plan, nil
	}
	cpu := coproc.NewCPU(t.Timing)
	cpu.SetOperandConstants(pt.X, t.Curve.B, pt.Y)
	snap, err := cpu.SnapshotPrefix(t.prog, refKey, nInstr)
	if err != nil {
		return nil, err
	}
	plan.snap = &snap
	plan.keyBits = keyBits
	plan.refBits = make([]uint, len(keyBits))
	for i, kb := range keyBits {
		plan.refBits[i] = refKey.Bit(kb)
	}
	return plan, nil
}

// usable reports whether the checkpoint applies to an acquisition with
// the given key: every CSWAP decision inside the snapshotted prefix
// must match the reference run bit for bit.
func (p *acqPlan) usable(key modn.Scalar) bool {
	if p.snap == nil {
		return false
	}
	for i, kb := range p.keyBits {
		if key.Bit(kb) != p.refBits[i] {
			return false
		}
	}
	return true
}

// skippedCycles reports how many leading cycles per trace the plan
// removes from the evented simulation pipeline (whether
// checkpoint-restored or quietly executed).
func (p *acqPlan) skippedCycles() int { return p.quiet }

// acquirePlanned runs one acquisition under a plan on the given
// scratch state. With a zero-skip plan it is behaviorally identical to
// the historical full-pipeline path; with skipping enabled the
// recorded window is still bit-identical (the coproc and sca test
// suites pin sample equality against full runs).
func (t *Target) acquirePlanned(s *acqScratch, key modn.Scalar, p ec.Point, plan *acqPlan, idx uint64) (trace.Trace, error) {
	cpu := s.cpu
	cpu.Reset()
	cpu.Timing = t.Timing
	s.drbg.Reseed(t.traceSeed(idx))
	cpu.Rand = s.randFn
	if t.Masked {
		s.maskDrbg.Reseed(t.maskSeed(idx))
		cpu.Masked = true
		cpu.MaskRand = s.maskFn
	}
	pcfg := t.Power
	pcfg.Seed ^= (idx + 1) * 0xbf58476d1ce4e5b9
	s.model.Reinit(pcfg)
	s.col.Start, s.col.End = plan.start, plan.end
	s.col.Begin()
	cpu.Batch = s.batchFn
	cpu.SetOperandConstants(p.X, t.Curve.B, p.Y)
	if plan.end > 0 {
		cpu.MaxCycles = plan.end
	}
	cpu.QuietCycles = plan.quiet
	// The skipped prefix emits no cycle events, so the noise stream
	// must be advanced past the draws those events would have consumed
	// to keep the window bit-identical to a full evented run.
	s.model.SkipCycles(plan.quiet)
	var err error
	if plan.usable(key) {
		plan.met.checkpointResumes.Inc()
		_, err = cpu.Resume(t.prog, key, *plan.snap)
	} else {
		if plan.quiet > 0 {
			plan.met.quietRuns.Inc()
		}
		_, err = cpu.Run(t.prog, key)
	}
	if err != nil && !errors.Is(err, coproc.ErrStopped) {
		return trace.Trace{}, err
	}
	plan.met.traces.Inc()
	plan.met.prologueSkipped.Add(int64(plan.quiet))
	return s.col.Take(), nil
}

// plannedAcquirerPool returns the engine acquire callback executing a
// plan: a pool of worker-owned scratch states, lazily constructed,
// each re-initialized per trace.
func (t *Target) plannedAcquirerPool(plan *acqPlan) campaign.AcquireFunc[acqJob, trace.Trace] {
	scratch := make([]*acqScratch, campaign.Workers(t.Workers))
	return func(worker, idx int, j acqJob) (trace.Trace, error) {
		s := scratch[worker]
		if s == nil {
			s = t.newScratch()
			scratch[worker] = s
		}
		return t.acquirePlanned(s, j.key, j.point, plan, j.dev)
	}
}

// shardedConfig builds the campaign.ShardedConfig for this target.
func (t *Target) shardedConfig() campaign.ShardedConfig {
	return campaign.ShardedConfig{Workers: t.Workers, Shards: t.Shards, Progress: t.Progress, Metrics: t.Metrics, Ctx: t.Ctx}
}

// useSharded reports whether bounded statistics campaigns reduce
// through the sharded engine (Target.Shards >= 0) or the legacy serial
// consumer (negative Shards — kept for A/B benchmarking and bit-exact
// reproduction of pre-sharding campaign results).
func (t *Target) useSharded() bool { return t.Shards >= 0 }
