package sca

import (
	"medsec/internal/campaign"
	"medsec/internal/coproc"
	"medsec/internal/ec"
	"medsec/internal/modn"
	"medsec/internal/obs"
	"medsec/internal/power"
	"medsec/internal/rng"
	"medsec/internal/trace"
)

// This file glues the target device onto the parallel campaign engine
// (internal/campaign). The engine's determinism contract maps onto the
// acquisition model like this:
//
//   - everything a trace depends on besides its index is packed into
//     an acqJob by a prepare callback that runs serially in index
//     order — so shared attacker streams (point selection, random TVLA
//     keys) are drawn in exactly the order the old serial loops drew
//     them;
//   - the device-side randomness (TRNG masks, measurement noise) never
//     depended on acquisition order to begin with: Target derives both
//     purely from the trace index (traceSeed / Power.Seed mixing), the
//     same derivation the serial path used;
//   - each worker owns one coproc.CPU, Reset before every trace; the
//     power.Model and collector are instantiated per trace because the
//     noise DRBG is part of the per-trace substream.
//
// Consequently a campaign is bit-identical for any worker count.

// acqJob is one prepared acquisition: the scalar, the base point, and
// the device/trace index dev that selects the TRNG and noise
// substreams (it can differ from the engine index, e.g. TVLA
// interleaves fixed/random acquisitions and SPA offsets the victim's
// stream).
type acqJob struct {
	key   modn.Scalar
	point ec.Point
	dev   uint64
}

// engineConfig builds the campaign.Config for this target.
func (t *Target) engineConfig() campaign.Config {
	return campaign.Config{Workers: t.Workers, Progress: t.Progress, Metrics: t.Metrics, Ctx: t.Ctx}
}

// acqMetrics is the per-campaign bundle of acquisition counters,
// resolved once from Target.Metrics when a plan is built. The zero
// value (nil counters, the Metrics == nil default) is fully inert:
// every obs method is a nil-safe no-op costing zero allocations, so
// the steady-state acquisition loop stays on its pinned alloc budget.
type acqMetrics struct {
	// traces counts completed acquisitions (fan-in over all workers).
	traces *obs.Counter
	// prologueSkipped accumulates the leading cycles per trace removed
	// from the evented pipeline (quiet-executed or checkpoint-restored).
	prologueSkipped *obs.Counter
	// checkpointResumes / quietRuns split the prologue strategy per
	// trace: resumed from a prefix snapshot vs quiet-executed from 0.
	checkpointResumes *obs.Counter
	quietRuns         *obs.Counter
}

func (t *Target) acqMetrics() acqMetrics {
	return acqMetrics{
		traces:            t.Metrics.Counter("sca_traces_acquired"),
		prologueSkipped:   t.Metrics.Counter("sca_prologue_cycles_skipped"),
		checkpointResumes: t.Metrics.Counter("sca_checkpoint_resumes"),
		quietRuns:         t.Metrics.Counter("sca_quiet_runs"),
	}
}

// acqScratch is one worker's reusable acquisition state: a CPU, a
// device-TRNG DRBG, a power model, and a batch collector, all re-seeded
// / re-initialized in place per trace. The two func fields are bound
// once at construction (binding a method value or building a probe
// closure allocates; copying an existing func value does not), so the
// steady-state acquisition loop performs zero heap allocations per
// trace — the gain the campaign AllocsPerRun test pins.
type acqScratch struct {
	cpu      *coproc.CPU
	drbg     *rng.DRBG
	maskDrbg *rng.DRBG
	model    *power.Model
	col      *trace.Collector
	randFn   func() uint64
	maskFn   func() uint64
	batchFn  coproc.BatchProbe
}

func (t *Target) newScratch() *acqScratch {
	s := &acqScratch{
		cpu:      coproc.NewCPU(t.Timing),
		drbg:     rng.NewDRBG(0),
		maskDrbg: rng.NewDRBG(0),
		model:    power.NewModel(t.Power),
	}
	s.col = trace.NewCollector(s.model, 0, 0)
	s.randFn = s.drbg.Uint64
	s.maskFn = s.maskDrbg.Uint64
	s.batchFn = s.col.BatchProbe()
	return s
}

// acquirerPool returns the engine's acquire callback over cycle window
// [start, end): a pool of worker-owned scratch states, lazily
// constructed, each re-initialized per trace.
func (t *Target) acquirerPool(start, end int) campaign.AcquireFunc[acqJob, trace.Trace] {
	scratch := make([]*acqScratch, campaign.Workers(t.Workers))
	return func(worker, idx int, j acqJob) (trace.Trace, error) {
		s := scratch[worker]
		if s == nil {
			s = t.newScratch()
			scratch[worker] = s
		}
		return t.acquireOn(s, j.key, j.point, start, end, j.dev)
	}
}

// fixedRandomPrepare builds the alternating fixed-key/random-key job
// stream the TVLA-style campaigns use: even engine indices acquire
// under the target's key, odd ones under a fresh scalar from randKey —
// the same interleaving (and the same randKey call order) as the old
// serial loops, so the key stream is reproduced exactly.
func (t *Target) fixedRandomPrepare(p ec.Point, randKey func() modn.Scalar) campaign.PrepareFunc[acqJob] {
	return func(idx int) (acqJob, error) {
		j := acqJob{point: p, dev: uint64(idx)}
		if idx%2 == 0 {
			j.key = t.Key
		} else {
			j.key = randKey()
		}
		return j, nil
	}
}

// welchStat abstracts the two streaming fixed-vs-random accumulators —
// first-order trace.OnlineWelch and second-order trace.OnlineWelch2 —
// so the TVLA campaign legs (serial early-stop fold, sharded
// reduction, checkpoint marshal/restore) are written once and
// instantiated per statistical order. The self-referential constraint
// (W appears in its own Merge parameter) is the usual Go shape for
// "pointer type with these methods".
type welchStat[W any] interface {
	AddA(samples []float64) error
	AddB(samples []float64) error
	Merge(other W) error
	T() ([]float64, error)
	MaxT() (float64, int)
	MarshalBinary() ([]byte, error)
	UnmarshalBinary(data []byte) error
}

// welchShardFold is the sharded counterpart of welchConsume: it folds
// the alternating fixed/random stream into a per-shard Welch
// accumulator on the worker goroutines. There is no early-stop
// variant — that is precisely what the sharded reduction gives up.
func welchShardFold[W welchStat[W]](shard int, acc W, idx int, j acqJob, tr trace.Trace) error {
	var err error
	if idx%2 == 0 {
		err = acc.AddA(tr.Samples)
	} else {
		err = acc.AddB(tr.Samples)
	}
	tr.Release()
	return err
}

// welchShardMerge folds the per-shard accumulators into w in shard
// order — the campaign's final reduction.
func welchShardMerge[W welchStat[W]](w W) func(shard int, acc W) error {
	return func(shard int, acc W) error { return w.Merge(acc) }
}

// welchConsume feeds the alternating fixed/random stream into a
// streaming Welch accumulator. checkEvery > 0 enables the early-stop
// predicate: after every checkEvery-th completed pair (but not before
// minPairs pairs), the running t-curve is evaluated and the campaign
// stops as soon as |t| exceeds TVLAThreshold. checks (nil-safe) counts
// the predicate evaluations — how many rounds an early-stopped
// campaign needed.
func welchConsume[W welchStat[W]](w W, checkEvery, minPairs int, checks *obs.Counter) campaign.ConsumeFunc[acqJob, trace.Trace] {
	return func(idx int, j acqJob, tr trace.Trace) (bool, error) {
		// The accumulator folds the samples immediately; the trace is
		// not retained, so its pooled buffers go back for reuse.
		if idx%2 == 0 {
			err := w.AddA(tr.Samples)
			tr.Release()
			return false, err
		}
		err := w.AddB(tr.Samples)
		tr.Release()
		if err != nil {
			return false, err
		}
		if checkEvery > 0 {
			pairs := idx/2 + 1
			if pairs >= minPairs && pairs%checkEvery == 0 {
				checks.Inc()
				if mx, _ := w.MaxT(); mx > TVLAThreshold {
					return true, nil
				}
			}
		}
		return false, nil
	}
}
