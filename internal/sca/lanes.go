package sca

import (
	"errors"

	"medsec/internal/campaign"
	"medsec/internal/coproc"
	"medsec/internal/power"
	"medsec/internal/rng"
	"medsec/internal/trace"
)

// Lane-batched acquisition: one decoded instruction stream driving N
// traces at once (coproc.LaneCPU), amortizing the interpreter's decode
// and dispatch across the batch. Each lane still owns the full
// per-trace device state — TRNG DRBG, power model with its noise
// substream, collector — re-seeded per trace exactly like the serial
// scratch, so a lane's recorded trace is bit-identical to the serial
// path's for the same index. The campaign engine's batch legs
// (campaign.RunBatch / RunShardedBatch) preserve the consumption order
// and checkpoint semantics of the serial legs, so every campaign
// statistic is bit-identical at any lane count; Target.Lanes merely
// selects the throughput trade-off.

// laneSlot is one lane's reusable per-trace device state: the
// counterpart of acqScratch minus the CPU (the LaneCPU is shared by
// the whole batch). Both func fields are bound once at construction so
// the steady-state batch loop allocates nothing per trace.
type laneSlot struct {
	drbg     *rng.DRBG
	maskDrbg *rng.DRBG
	model    *power.Model
	col      *trace.Collector
	randFn   func() uint64
	maskFn   func() uint64
	sinkFn   coproc.Probe
}

func (t *Target) newLaneSlot() *laneSlot {
	s := &laneSlot{
		drbg:     rng.NewDRBG(0),
		maskDrbg: rng.NewDRBG(0),
		model:    power.NewModel(t.Power),
	}
	s.col = trace.NewCollector(s.model, 0, 0)
	s.randFn = s.drbg.Uint64
	s.maskFn = s.maskDrbg.Uint64
	s.sinkFn = s.col.LaneSink()
	return s
}

// laneScratch is one worker's batched acquisition state: a shared
// LaneCPU plus one laneSlot per lane.
type laneScratch struct {
	lc    *coproc.LaneCPU
	slots []*laneSlot
	runs  []coproc.LaneRun
}

func (t *Target) newLaneScratch(lanes int) *laneScratch {
	s := &laneScratch{
		lc:    coproc.NewLaneCPU(t.Timing),
		slots: make([]*laneSlot, lanes),
		runs:  make([]coproc.LaneRun, lanes),
	}
	for i := range s.slots {
		s.slots[i] = t.newLaneSlot()
	}
	return s
}

// acquireBatchPlanned is acquirePlanned lifted to a batch: per lane the
// same per-trace re-seeding, window setup, noise-stream alignment and
// checkpoint-vs-quiet decision as the serial path, then one LaneCPU
// run retires the whole batch in lockstep.
func (t *Target) acquireBatchPlanned(s *laneScratch, plan *acqPlan, jobs []acqJob, out []trace.Trace) error {
	n := len(jobs)
	for i := 0; i < n; i++ {
		j := &jobs[i]
		sl := s.slots[i]
		sl.drbg.Reseed(t.traceSeed(j.dev))
		pcfg := t.Power
		pcfg.Seed ^= (j.dev + 1) * 0xbf58476d1ce4e5b9
		sl.model.Reinit(pcfg)
		sl.col.Start, sl.col.End = plan.start, plan.end
		sl.col.Begin()
		// The skipped prefix emits no cycle events, so each lane's noise
		// stream must be advanced past the draws those events would have
		// consumed (same alignment as acquirePlanned).
		sl.model.SkipCycles(plan.quiet)
		r := &s.runs[i]
		*r = coproc.LaneRun{Key: j.key, Rand: sl.randFn, Sink: sl.sinkFn}
		if t.Masked {
			sl.maskDrbg.Reseed(t.maskSeed(j.dev))
			r.MaskRand = sl.maskFn
		}
		if plan.usable(j.key) {
			plan.met.checkpointResumes.Inc()
			r.Resume = plan.snap
		} else {
			if plan.quiet > 0 {
				plan.met.quietRuns.Inc()
			}
			r.Consts = coproc.OperandConstants(j.point.X, t.Curve.B, j.point.Y)
		}
	}
	lc := s.lc
	lc.Timing = t.Timing
	lc.Masked = t.Masked
	lc.MaxCycles = 0
	if plan.end > 0 {
		lc.MaxCycles = plan.end
	}
	lc.QuietCycles = plan.quiet
	if _, err := lc.Run(t.prog, s.runs[:n]); err != nil && !errors.Is(err, coproc.ErrStopped) {
		return err
	}
	for i := 0; i < n; i++ {
		plan.met.traces.Inc()
		plan.met.prologueSkipped.Add(int64(plan.quiet))
		out[i] = s.slots[i].col.Take()
	}
	return nil
}

// plannedBatchAcquirerPool is plannedAcquirerPool's batch counterpart:
// a pool of worker-owned lane scratch states, lazily constructed.
func (t *Target) plannedBatchAcquirerPool(plan *acqPlan, lanes int) campaign.AcquireBatchFunc[acqJob, trace.Trace] {
	scratch := make([]*laneScratch, campaign.Workers(t.Workers))
	return func(worker, start int, jobs []acqJob, out []trace.Trace) error {
		s := scratch[worker]
		if s == nil {
			s = t.newLaneScratch(lanes)
			scratch[worker] = s
		}
		return t.acquireBatchPlanned(s, plan, jobs, out)
	}
}

// laneCount resolves Target.Lanes (<= 1 selects the serial per-trace
// path).
func (t *Target) laneCount() int { return campaign.Lanes(t.Lanes) }

// runPlanned dispatches a serial-consumer campaign leg over a plan:
// the lane-batched engine when Target.Lanes > 1, the per-trace engine
// otherwise. Results are bit-identical either way (the lane and batch
// test suites pin this); only throughput differs.
func (t *Target) runPlanned(from, to int, cfg campaign.Config, plan *acqPlan,
	prepare campaign.PrepareFunc[acqJob], consume campaign.ConsumeFunc[acqJob, trace.Trace]) (int, error) {
	if lanes := t.laneCount(); lanes > 1 {
		return campaign.RunBatch(from, to, lanes, cfg, prepare, t.plannedBatchAcquirerPool(plan, lanes), consume)
	}
	return campaign.Run(from, to, cfg, prepare, t.plannedAcquirerPool(plan), consume)
}

// runShardedPlanned is runPlanned for the sharded-reduction legs. (A
// free function because Go methods cannot take the accumulator type
// parameter.)
func runShardedPlanned[A any](t *Target, from, to int, cfg campaign.ShardedConfig, plan *acqPlan,
	prepare campaign.PrepareFunc[acqJob],
	newShard func(shard int) A,
	fold func(shard int, acc A, idx int, job acqJob, out trace.Trace) error,
	merge func(shard int, acc A) error) (int, error) {
	if lanes := t.laneCount(); lanes > 1 {
		return campaign.RunShardedBatch(from, to, lanes, cfg, prepare, t.plannedBatchAcquirerPool(plan, lanes), newShard, fold, merge)
	}
	return campaign.RunSharded(from, to, cfg, prepare, t.plannedAcquirerPool(plan), newShard, fold, merge)
}
