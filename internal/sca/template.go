package sca

import (
	"errors"
	"math"

	"medsec/internal/ec"
	"medsec/internal/trace"
)

// Template attack — the §7 scenario made concrete: "in order for the
// attacker to exploit it, he has to perform a complex profiling phase
// with an identical device that is under his total control". The
// attacker first characterizes the CSWAP-cycle power on a profiling
// device with *known* keys (building Gaussian templates for the
// bit = 0 and bit = 1 classes), then classifies the victim's
// iterations by likelihood. Unlike blind clustering, the calibrated
// decision threshold works even for skewed keys and sub-sigma leaks.

// Template is the per-class Gaussian model of the CSWAP feature.
type Template struct {
	Mean0, Mean1 float64
	// Sigma is the pooled per-feature standard deviation for a single
	// (unaveraged) trace.
	Sigma float64
	// Profiled is the number of (iteration, trace) feature samples
	// per class.
	Profiled int
}

// Separation returns the class distance in sigmas for n-trace
// averaging — the attack's expected strength.
func (tm *Template) Separation(nAvg int) float64 {
	if tm.Sigma == 0 {
		return math.Inf(1)
	}
	return math.Abs(tm.Mean1-tm.Mean0) / (tm.Sigma / math.Sqrt(float64(nAvg)))
}

// BuildTemplate profiles a device with known keys: nProfile full
// acquisitions, each under a fresh known key, yield labeled
// CSWAP-cycle features for both classes.
func BuildTemplate(profiler *Target, p ec.Point, nProfile int) (*Template, error) {
	if nProfile < 2 {
		return nil, errors.New("sca: need at least two profiling traces")
	}
	start, end := profiler.prog.IterationWindow(profiler.Timing, 162, 0)
	cswaps := cswapSampleIndices(profiler, start)
	// The profiling keys share only the public Algorithm 1 bits, and
	// the full-ladder prefix before iteration 162 consults no key bits
	// at all — so the prologue checkpoint (when the program admits
	// one) applies to every profiling trace.
	plan, err := profiler.planFixedPoint(p, profiler.Key, start, end)
	if err != nil {
		return nil, err
	}
	// Profiling acquisitions fan out over the campaign engine; the
	// labeled features are appended in index order. Sharded mode
	// appends into per-shard slices and concatenates them in shard
	// order — since every feature is appended, not summed, the sharded
	// template is bit-identical to the serial one. Each job carries its
	// known profiling key so the fold can label the features without
	// re-deriving the key stream.
	var f0, f1 []float64
	extract := func(j acqJob, tr trace.Trace, f0, f1 *[]float64) {
		for iter := 162; iter >= 0; iter-- {
			idxs := cswaps[iter]
			var v float64
			for _, s := range idxs {
				v += tr.Samples[s]
			}
			v /= float64(len(idxs))
			if j.key.Bit(iter) == 1 {
				*f1 = append(*f1, v)
			} else {
				*f0 = append(*f0, v)
			}
		}
	}
	prepare := func(i int) (acqJob, error) {
		// The profiling device is under the attacker's total control:
		// fresh known key per acquisition. The key stream derives purely
		// from the index, matching the old serial derivation.
		k := AlgorithmOneScalar(profiler.Curve, rngSourceFor(profiler, uint64(i)))
		return acqJob{key: k, point: p, dev: uint64(1000 + i)}, nil
	}
	if profiler.useSharded() {
		type classes struct{ f0, f1 []float64 }
		_, err = runShardedPlanned(profiler, 0, nProfile, profiler.shardedConfig(), plan, prepare,
			func(shard int) *classes { return &classes{} },
			func(shard int, cl *classes, i int, j acqJob, tr trace.Trace) error {
				extract(j, tr, &cl.f0, &cl.f1)
				tr.Release() // folded, not retained
				return nil
			},
			func(shard int, cl *classes) error {
				f0 = append(f0, cl.f0...)
				f1 = append(f1, cl.f1...)
				return nil
			})
	} else {
		consume := func(i int, j acqJob, tr trace.Trace) (bool, error) {
			extract(j, tr, &f0, &f1)
			tr.Release() // folded, not retained
			return false, nil
		}
		_, err = profiler.runPlanned(0, nProfile, profiler.engineConfig(), plan, prepare, consume)
	}
	if err != nil {
		return nil, err
	}
	if len(f0) == 0 || len(f1) == 0 {
		return nil, errors.New("sca: profiling produced a single class")
	}
	m0, m1 := trace.Mean(f0), trace.Mean(f1)
	s0, s1 := trace.StdDev(f0), trace.StdDev(f1)
	return &Template{
		Mean0:    m0,
		Mean1:    m1,
		Sigma:    math.Sqrt((s0*s0 + s1*s1) / 2),
		Profiled: len(f0) + len(f1),
	}, nil
}

// rngSourceFor derives a deterministic profiling-key stream.
func rngSourceFor(t *Target, i uint64) func() uint64 {
	seed := t.TRNGSeed ^ 0xABCD ^ (i+1)*0x2545F4914F6CDD1D
	x := seed
	return func() uint64 {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		return x
	}
}

// TemplateAttack classifies the victim's key bits by averaging nAvg
// victim traces (same key; RPC does not randomize the control-network
// leak) and comparing each iteration's feature to the calibrated
// midpoint.
func TemplateAttack(tm *Template, victim *Target, p ec.Point, nAvg int) (*SPAResult, error) {
	if nAvg < 1 {
		return nil, errors.New("sca: need at least one victim trace")
	}
	res, err := spaAveraged(victim, p, 5000, nAvg)
	if err != nil {
		return nil, err
	}
	// Re-classify with the calibrated threshold instead of clustering.
	mid := (tm.Mean0 + tm.Mean1) / 2
	oneIsHigh := tm.Mean1 > tm.Mean0
	for i, f := range res.Features {
		bit := uint(0)
		if (f > mid) == oneIsHigh {
			bit = 1
		}
		res.Recovered[i] = bit
	}
	return res, nil
}
