package sca

import (
	"errors"

	"medsec/internal/ec"
	"medsec/internal/modn"
	"medsec/internal/trace"
)

// TVLAThreshold is the customary |t| > 4.5 evidence-of-leakage bound.
const TVLAThreshold = 4.5

// TVLAResult reports a fixed-vs-random-key Welch t-test campaign.
type TVLAResult struct {
	// TracesPerSet is the number of traces in each of the two sets.
	TracesPerSet int
	// MaxT is the largest absolute t-statistic over the window.
	MaxT float64
	// MaxTSample is the sample index of MaxT.
	MaxTSample int
	// LeakyPoints counts samples exceeding the threshold.
	LeakyPoints int
	// Leaks reports whether any point exceeded the threshold.
	Leaks bool
}

// TVLA runs the fixed-vs-random-scalar leakage assessment over the
// given ladder iteration window: one set uses the target's fixed key,
// the other a fresh random key per trace; both use the same public
// base point, so any significant difference is key-dependent leakage.
//
// randKey must draw scalars in the same fixed-length form the device
// uses (paper Algorithm 1 writes k = (1, k_{t-2}, ..., k_0): the
// leading one is part of the scalar encoding). Comparing fixed-form
// against free-form scalars would flag the — public — position of the
// leading one bit rather than genuine key leakage.
func TVLA(t *Target, p ec.Point, nPerSet int, firstIter, lastIter int, randKey func() modn.Scalar) (*TVLAResult, error) {
	if nPerSet < 10 {
		return nil, errors.New("sca: TVLA needs at least 10 traces per set")
	}
	start, end := t.prog.IterationWindow(t.Timing, firstIter, lastIter)
	fixed := &trace.Set{}
	random := &trace.Set{}
	for i := 0; i < nPerSet; i++ {
		trF, err := t.AcquireWithKey(t.Key, p, start, end, uint64(2*i))
		if err != nil {
			return nil, err
		}
		fixed.Add(trF)
		trR, err := t.AcquireWithKey(randKey(), p, start, end, uint64(2*i+1))
		if err != nil {
			return nil, err
		}
		random.Add(trR)
	}
	ts, err := trace.WelchT(fixed, random)
	if err != nil {
		return nil, err
	}
	res := &TVLAResult{TracesPerSet: nPerSet}
	res.MaxT, res.MaxTSample = trace.MaxAbs(ts)
	for _, v := range ts {
		if v > TVLAThreshold || v < -TVLAThreshold {
			res.LeakyPoints++
		}
	}
	res.Leaks = res.LeakyPoints > 0
	return res, nil
}

// FixedPoint returns a deterministic base point for TVLA campaigns.
func FixedPoint(c *ec.Curve) ec.Point { return c.Generator() }
