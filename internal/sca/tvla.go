package sca

import (
	"errors"
	"fmt"

	"medsec/internal/campaign"
	"medsec/internal/ec"
	"medsec/internal/modn"
	"medsec/internal/trace"
)

// TVLAThreshold is the customary |t| > 4.5 evidence-of-leakage bound.
const TVLAThreshold = 4.5

// TVLAResult reports a fixed-vs-random-key Welch t-test campaign.
type TVLAResult struct {
	// TracesPerSet is the number of traces in each of the two sets
	// (the actually acquired count when early stopping fired).
	TracesPerSet int
	// MaxT is the largest absolute t-statistic over the window.
	MaxT float64
	// MaxTSample is the sample index of MaxT.
	MaxTSample int
	// LeakyPoints counts samples exceeding the threshold.
	LeakyPoints int
	// Leaks reports whether any point exceeded the threshold.
	Leaks bool
	// TCurve is the full per-sample t-statistic curve — O(window), kept
	// even though the campaign itself streams (determinism tests
	// compare it bit for bit across worker counts).
	TCurve []float64
	// CyclesPerTrace is the number of simulator cycles each acquisition
	// ran — campaign throughput accounting.
	CyclesPerTrace int
	// EarlyStopped reports that the early-stop predicate ended the
	// campaign before the requested trace count.
	EarlyStopped bool
	// PrologueCyclesSkipped is the number of leading cycles per trace
	// the acquisition plan removed from the evented simulation
	// pipeline — checkpoint-restored or quietly executed (see
	// Target.NoPrologueSkip).
	PrologueCyclesSkipped int
	// Order is the statistical order of the t-test: 1 for the plain
	// Welch test on the samples, 2 for the centered-product
	// (Schneider–Moradi) test that convicts first-order-masked designs.
	Order int
}

// TVLA runs the fixed-vs-random-scalar leakage assessment over the
// given ladder iteration window: one set uses the target's fixed key,
// the other a fresh random key per trace; both use the same public
// base point, so any significant difference is key-dependent leakage.
//
// The campaign streams through the parallel acquisition engine into a
// trace.OnlineWelch accumulator: memory is O(window) regardless of the
// trace count, acquisition fans out over t.Workers simulator
// instances, and the result is bit-identical for any worker count.
//
// randKey must draw scalars in the same fixed-length form the device
// uses (paper Algorithm 1 writes k = (1, k_{t-2}, ..., k_0): the
// leading one is part of the scalar encoding). Comparing fixed-form
// against free-form scalars would flag the — public — position of the
// leading one bit rather than genuine key leakage.
func TVLA(t *Target, p ec.Point, nPerSet int, firstIter, lastIter int, randKey func() modn.Scalar) (*TVLAResult, error) {
	return tvlaRun(t, p, nPerSet, 0, firstIter, lastIter, 1, randKey)
}

// TVLA2 is the second-order (centered-product) fixed-vs-random
// campaign: Welch's t on the centered-squared traces, streamed through
// trace.OnlineWelch2 so memory stays O(window) and the result is
// bit-identical for any worker count. This is the statistic that
// convicts a first-order-masked target (Target.Masked): masking pins
// every sample's mean but the share-summed activity's *variance* still
// follows the data, and the centered product is exactly the sample's
// second central moment. Checkpoints written by TVLA2 use the "welch2"
// blob namespace and are rejected by the first-order campaign (and
// vice versa).
func TVLA2(t *Target, p ec.Point, nPerSet int, firstIter, lastIter int, randKey func() modn.Scalar) (*TVLAResult, error) {
	return tvlaRun(t, p, nPerSet, 0, firstIter, lastIter, 2, randKey)
}

// TVLA2Until is TVLA2 with the early-stop predicate of TVLAUntil (same
// threshold, same pair cadence, same caveat about randKey's stream
// advancing by a bounded scheduling-dependent amount on early stop).
func TVLA2Until(t *Target, p ec.Point, maxPerSet, checkEvery int, firstIter, lastIter int, randKey func() modn.Scalar) (*TVLAResult, error) {
	if checkEvery < 1 {
		return nil, errors.New("sca: TVLA2Until needs a positive check interval")
	}
	return tvlaRun(t, p, maxPerSet, checkEvery, firstIter, lastIter, 2, randKey)
}

// TVLAUntil is TVLA with the engine's early-stop predicate enabled: it
// evaluates the streaming t-curve after every checkEvery-th completed
// fixed/random pair (starting at the 10-pair minimum) and ends the
// campaign as soon as |t| > TVLAThreshold — leaky designs are
// convicted in tens of traces instead of the full budget. The stopping
// point is deterministic for any worker count. Because the engine may
// prepare a few indices past the stop, randKey's stream is advanced by
// a bounded, scheduling-dependent amount once the campaign stops; do
// not share randKey's source with a later campaign after an
// early-stopped run.
func TVLAUntil(t *Target, p ec.Point, maxPerSet, checkEvery int, firstIter, lastIter int, randKey func() modn.Scalar) (*TVLAResult, error) {
	if checkEvery < 1 {
		return nil, errors.New("sca: TVLAUntil needs a positive check interval")
	}
	return tvlaRun(t, p, maxPerSet, checkEvery, firstIter, lastIter, 1, randKey)
}

// tvlaLeg dispatches one order's campaign between the sharded and
// serial engine legs — the generic core shared by both statistical
// orders (blobKey namespaces the checkpoint blobs per order).
func tvlaLeg[W welchStat[W]](t *Target, w W, blobKey string, mk func() W, nPerSet, checkEvery int, plan *acqPlan, prepare campaign.PrepareFunc[acqJob]) (int, []float64, error) {
	var total int
	var err error
	if checkEvery == 0 && t.useSharded() {
		// Full-budget campaign: reduce through per-shard Welch
		// accumulators folded on the worker goroutines and merged in
		// shard order (campaign.RunSharded's determinism argument).
		total, err = tvlaSharded(t, w, blobKey, mk, 2*nPerSet, plan, prepare)
	} else {
		// Early-stop campaigns stay on the serial consumer: "stop once
		// |t| exceeds the threshold after pair k" needs a single
		// in-order fold, which is exactly what sharding gives up.
		total, err = tvlaSerial(t, w, blobKey, 2*nPerSet, checkEvery, plan, prepare)
	}
	if err != nil {
		return total, nil, err
	}
	ts, err := w.T()
	return total, ts, err
}

func tvlaRun(t *Target, p ec.Point, nPerSet, checkEvery int, firstIter, lastIter, order int, randKey func() modn.Scalar) (*TVLAResult, error) {
	if nPerSet < 10 {
		return nil, errors.New("sca: TVLA needs at least 10 traces per set")
	}
	start, end := t.prog.IterationWindow(t.Timing, firstIter, lastIter)
	// The checkpoint is built against the fixed set's key; random-set
	// traces whose prefix CSWAP bits differ fall back to the quiet
	// full run per trace (plan.go).
	plan, err := t.planFixedPoint(p, t.Key, start, end)
	if err != nil {
		return nil, err
	}
	prepare := t.fixedRandomPrepare(p, randKey)
	// total counts every folded trace, including a prefix restored from
	// a checkpoint (Target.Ckpt) — the count an uninterrupted run of
	// the same campaign would have reached.
	var total int
	var ts []float64
	switch order {
	case 1:
		total, ts, err = tvlaLeg(t, trace.NewOnlineWelch(), "welch", trace.NewOnlineWelch, nPerSet, checkEvery, plan, prepare)
	case 2:
		total, ts, err = tvlaLeg(t, trace.NewOnlineWelch2(), "welch2", trace.NewOnlineWelch2, nPerSet, checkEvery, plan, prepare)
	default:
		return nil, fmt.Errorf("sca: unsupported TVLA order %d (want 1 or 2)", order)
	}
	if err != nil {
		return nil, err
	}
	res := &TVLAResult{
		TracesPerSet:          total / 2,
		TCurve:                ts,
		CyclesPerTrace:        end,
		EarlyStopped:          total < 2*nPerSet,
		PrologueCyclesSkipped: plan.skippedCycles(),
		Order:                 order,
	}
	res.MaxT, res.MaxTSample = trace.MaxAbs(ts)
	for _, v := range ts {
		if v > TVLAThreshold || v < -TVLAThreshold {
			res.LeakyPoints++
		}
	}
	res.Leaks = res.LeakyPoints > 0
	// Campaign-level gauges: the analysis outcome alongside the
	// per-trace counters (all nil-safe when t.Metrics is nil).
	t.Metrics.Gauge("sca_tvla_pairs").Set(float64(res.TracesPerSet))
	t.Metrics.Gauge("sca_tvla_max_t").Set(res.MaxT)
	if res.EarlyStopped {
		t.Metrics.Gauge("sca_tvla_early_stopped").Set(1)
	} else {
		t.Metrics.Gauge("sca_tvla_early_stopped").Set(0)
	}
	return res, nil
}

// FixedPoint returns a deterministic base point for TVLA campaigns.
func FixedPoint(c *ec.Curve) ec.Point { return c.Generator() }
