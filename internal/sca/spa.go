package sca

import (
	"errors"

	"medsec/internal/coproc"
	"medsec/internal/ec"
	"medsec/internal/trace"
)

// SPAResult reports a simple power analysis attempt: per-iteration
// key-bit classification from the conditional-swap power signature.
type SPAResult struct {
	// Recovered holds the classified bits, iteration 162 first.
	Recovered []uint
	// True holds the device's actual key bits.
	True []uint
	// Features holds the per-iteration CSWAP power feature (for
	// diagnostics and plots).
	Features []float64
}

// Accuracy is the fraction of correctly classified bits. 1.0 means
// full key recovery from the trace; ~0.5 means the trace carries no
// usable SPA information.
func (r *SPAResult) Accuracy() float64 {
	if len(r.Recovered) == 0 {
		return 0
	}
	n := 0
	for i := range r.Recovered {
		if r.Recovered[i] == r.True[i] {
			n++
		}
	}
	return float64(n) / float64(len(r.Recovered))
}

// cswapSampleIndex returns, per ladder iteration, the within-window
// sample indices of the CSWAP cycles.
func cswapSampleIndices(t *Target, windowStart int) map[int][]int {
	out := map[int][]int{}
	for _, sp := range t.prog.Spans(t.Timing) {
		if sp.Op == coproc.OpCSwap && sp.Iteration >= 0 {
			for cyc := sp.Start; cyc < sp.End; cyc++ {
				out[sp.Iteration] = append(out[sp.Iteration], cyc-windowStart)
			}
		}
	}
	return out
}

// classify thresholds the per-iteration features with 2-means
// clustering, mapping the higher-power cluster to bit 1 (every leak in
// the model draws extra current when the swap fires).
func classify(features []float64) []uint {
	lo, hi := features[0], features[0]
	for _, f := range features {
		if f < lo {
			lo = f
		}
		if f > hi {
			hi = f
		}
	}
	c0, c1 := lo, hi
	for round := 0; round < 16; round++ {
		var s0, s1 float64
		var n0, n1 int
		for _, f := range features {
			if f-c0 <= c1-f {
				s0 += f
				n0++
			} else {
				s1 += f
				n1++
			}
		}
		if n0 == 0 || n1 == 0 {
			break
		}
		c0, c1 = s0/float64(n0), s1/float64(n1)
	}
	bits := make([]uint, len(features))
	for i, f := range features {
		if f-c0 > c1-f {
			bits[i] = 1
		}
	}
	return bits
}

// SPA mounts the single-trace simple power analysis of §6/§7: acquire
// one trace of the full ladder, extract each iteration's CSWAP-cycle
// power, and classify the 163 key bits by clustering. Against the
// unbalanced mux encoding or data-dependent clock gating this recovers
// the key from one trace; against the balanced design it degrades to
// coin flipping.
func SPA(t *Target, p ec.Point, idx uint64) (*SPAResult, error) {
	return spaAveraged(t, p, idx, 1)
}

// SPAProfiled averages n traces with the same key before classifying —
// the "complex profiling phase" of §7 that exploits the residual
// layout imbalance the single-trace attack cannot see.
func SPAProfiled(t *Target, p ec.Point, n int) (*SPAResult, error) {
	return spaAveraged(t, p, 0, n)
}

func spaAveraged(t *Target, p ec.Point, idx uint64, n int) (*SPAResult, error) {
	if n < 1 {
		return nil, errors.New("sca: need at least one trace")
	}
	start, end := t.prog.IterationWindow(t.Timing, 162, 0)
	// The full-ladder window still has a (short) prologue before
	// iteration 162; the plan skips it. The base point and key are
	// fixed, so the prefix checkpoint applies when the program admits
	// one.
	plan, err := t.planFixedPoint(p, t.Key, start, end)
	if err != nil {
		return nil, err
	}
	// Average through the campaign engine. Sharded mode sums per shard
	// on the worker goroutines and adds the shard sums in shard order;
	// serial mode sums in index order (bit-identical to the historical
	// loop). The two agree to floating-point rounding.
	var acc []float64
	addInto := func(dst *[]float64, samples []float64) error {
		if *dst == nil {
			*dst = make([]float64, len(samples))
		}
		if len(samples) != len(*dst) {
			return trace.ErrSampleMismatch
		}
		for s, v := range samples {
			(*dst)[s] += v
		}
		return nil
	}
	prepare := func(i int) (acqJob, error) {
		return acqJob{key: t.Key, point: p, dev: idx + uint64(i)}, nil
	}
	if t.useSharded() {
		_, err = runShardedPlanned(t, 0, n, t.shardedConfig(), plan, prepare,
			func(shard int) *[]float64 { return new([]float64) },
			func(shard int, sum *[]float64, i int, j acqJob, tr trace.Trace) error {
				err := addInto(sum, tr.Samples)
				tr.Release() // folded, not retained
				return err
			},
			func(shard int, sum *[]float64) error {
				if *sum == nil {
					return nil
				}
				return addInto(&acc, *sum)
			})
	} else {
		consume := func(i int, j acqJob, tr trace.Trace) (bool, error) {
			err := addInto(&acc, tr.Samples)
			tr.Release() // folded, not retained
			return false, err
		}
		_, err = t.runPlanned(0, n, t.engineConfig(), plan, prepare, consume)
	}
	if err != nil {
		return nil, err
	}
	inv := 1 / float64(n)
	for j := range acc {
		acc[j] *= inv
	}

	cswaps := cswapSampleIndices(t, start)
	res := &SPAResult{}
	for iter := 162; iter >= 0; iter-- {
		idxs := cswaps[iter]
		if len(idxs) == 0 {
			return nil, errors.New("sca: iteration without CSWAP cycles")
		}
		var f float64
		for _, s := range idxs {
			f += acc[s]
		}
		res.Features = append(res.Features, f/float64(len(idxs)))
		res.True = append(res.True, t.Key.Bit(iter))
	}
	res.Recovered = classify(res.Features)
	return res, nil
}

// MeanAbsFeatureGap returns the separation between the two classified
// clusters in multiples of the within-cluster spread — an SNR-style
// diagnostic for how visible the swap is in the trace.
func (r *SPAResult) MeanAbsFeatureGap() float64 {
	var s0, s1 []float64
	for i, b := range r.Recovered {
		if b == 1 {
			s1 = append(s1, r.Features[i])
		} else {
			s0 = append(s0, r.Features[i])
		}
	}
	if len(s0) == 0 || len(s1) == 0 {
		return 0
	}
	gap := trace.Mean(s1) - trace.Mean(s0)
	spread := (trace.StdDev(s0) + trace.StdDev(s1)) / 2
	if spread == 0 {
		return 0
	}
	return gap / spread
}
