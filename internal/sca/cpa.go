package sca

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"medsec/internal/coproc"
	"medsec/internal/ec"
	"medsec/internal/gf2m"
	"medsec/internal/rng"
	"medsec/internal/trace"
)

// CPAOptions configures the correlation power attack of §7: a
// white-box evaluation in which the attacker knows the microcode and
// the leakage model and predicts every register write of a ladder
// iteration under both key-bit guesses.
type CPAOptions struct {
	// Bits is the number of scalar bits to recover.
	Bits int
	// KnownMasks grants the attacker the device's RPC randomness —
	// the §7 "countermeasure enabled but the randomness is known"
	// white-box mode.
	KnownMasks bool
	// KnownPrefix is the scalar-bit prefix (from bit 162 downward) the
	// attacker assumes. Paper Algorithm 1 writes the scalar as
	// k = (1, k_{t-2}, ..., k_0): the leading one is a public
	// convention, so the default prefix is {0, 1} (bit 162 of a
	// reduced scalar is zero, bit 161 is the conventional leading 1).
	KnownPrefix []uint
	// Preprocess selects the trace preprocessing applied before
	// correlation. The default ("" / PreprocessNone) correlates the raw
	// samples — the first-order attack. PreprocessCenteredProduct
	// replaces each sample by its centered square (x−µ)² with µ the
	// per-column campaign mean (trace.CenterSquare), the univariate
	// second-order attack against a Boolean-masked target: masking pins
	// each write's mean activity but its variance still follows
	// HD(old, new), so the centered products are correlated against
	// Hamming-distance predictions instead of 0→1 counts.
	Preprocess string
}

// Preprocessing modes for CPAOptions.Preprocess.
const (
	PreprocessNone            = ""
	PreprocessCenteredProduct = "centered-product"
)

// DefaultKnownPrefix is the Algorithm 1 scalar convention.
func DefaultKnownPrefix() []uint { return []uint{0, 1} }

// CPAResult reports a correlation power attack.
type CPAResult struct {
	// FirstIter is the first attacked ladder iteration.
	FirstIter int
	// Recovered holds the recovered bits, most significant first.
	Recovered []uint
	// True holds the device's actual key bits at the same positions.
	True []uint
	// Scores holds, per bit, the winning and losing mean |rho|.
	Scores [][2]float64
}

// CorrectBits counts positions where the recovered bit matches.
func (r *CPAResult) CorrectBits() int {
	n := 0
	for i := range r.Recovered {
		if r.Recovered[i] == r.True[i] {
			n++
		}
	}
	return n
}

// CorrectPrefix counts leading correct bits before the first error.
func (r *CPAResult) CorrectPrefix() int {
	n := 0
	for i := range r.Recovered {
		if r.Recovered[i] != r.True[i] {
			break
		}
		n++
	}
	return n
}

// BitAccuracy is the fraction of recovered bits that are correct.
func (r *CPAResult) BitAccuracy() float64 {
	if len(r.Recovered) == 0 {
		return 0
	}
	return float64(r.CorrectBits()) / float64(len(r.Recovered))
}

// Success reports whether every targeted bit was recovered.
func (r *CPAResult) Success() bool {
	return len(r.Recovered) > 0 && r.CorrectBits() == len(r.Recovered)
}

// mirror is the attacker's value-level model of the co-processor's six
// working registers. The white-box attacker knows the microcode, so it
// can replay every register write of a ladder iteration and predict
// the write's 0->1 transition count exactly.
type mirror struct {
	r [6]gf2m.Element // X0, Z0, X1, Z1, T0, T1 — same allocation as the microcode
}

// newMirror reproduces the microcode initialization. lambda/mu are the
// RPC masks (zero values => unmasked model).
func newMirror(x, lambda, mu gf2m.Element, rpc bool) mirror {
	var m mirror
	if rpc && !lambda.IsZero() && !mu.IsZero() {
		m.r[0] = lambda
		m.r[1] = gf2m.Zero()
		m.r[4] = mu
		m.r[2] = gf2m.Mul(x, mu)
		m.r[3] = mu
	} else {
		m.r[0] = gf2m.One()
		m.r[1] = gf2m.Zero()
		m.r[2] = x
		m.r[3] = gf2m.One()
	}
	return m
}

func zeroToOne(old, new gf2m.Element) float64 {
	d := gf2m.Add(old, new)
	// Positions flipping 0->1 are flips AND new.
	n := 0
	for i := 0; i < gf2m.Words; i++ {
		n += popcount(d[i] & new[i])
	}
	return float64(n)
}

func popcount(v uint64) int {
	n := 0
	for v != 0 {
		v &= v - 1
		n++
	}
	return n
}

// writePred is one predicted register write: the instruction offset
// within the iteration's microcode, the predicted 0->1 count (the
// first-order model) and the predicted Hamming distance (the
// second-order model — under Boolean masking the write's variance,
// which the centered product estimates, is an affine function of
// HD(old, new)).
type writePred struct {
	offset int
	w01    float64
	hd     float64
}

// step advances the mirror through one ladder iteration with the given
// key-bit guess, reporting each writing instruction's offset and
// predicted 0->1 transitions. The instruction sequence mirrors
// BuildLadderProgram exactly (asserted by tests against the real
// microcode).
func (m *mirror) step(bit uint, x, b gf2m.Element, collect func(writePred)) {
	wr := func(offset int, dst int, v gf2m.Element) {
		if collect != nil {
			collect(writePred{
				offset: offset,
				w01:    zeroToOne(m.r[dst], v),
				hd:     float64(gf2m.HammingDistance(m.r[dst], v)),
			})
		}
		m.r[dst] = v
	}
	// 0,1: CSWAP (renaming; no write power in the protected design).
	if bit == 1 {
		m.r[0], m.r[2] = m.r[2], m.r[0]
		m.r[1], m.r[3] = m.r[3], m.r[1]
	}
	// 2: MUL T0 = X0*Z1
	wr(2, 4, gf2m.Mul(m.r[0], m.r[3]))
	// 3: MUL T1 = X1*Z0
	wr(3, 5, gf2m.Mul(m.r[2], m.r[1]))
	// 4: ADD Z1 = T0+T1
	wr(4, 3, gf2m.Add(m.r[4], m.r[5]))
	// 5: SQR Z1 = Z1^2
	wr(5, 3, gf2m.Sqr(m.r[3]))
	// 6: MUL T0 = T0*T1
	wr(6, 4, gf2m.Mul(m.r[4], m.r[5]))
	// 7: MUL X1 = x*Z1
	wr(7, 2, gf2m.Mul(x, m.r[3]))
	// 8: ADD X1 = X1+T0
	wr(8, 2, gf2m.Add(m.r[2], m.r[4]))
	// 9: SQR X0 = X0^2
	wr(9, 0, gf2m.Sqr(m.r[0]))
	// 10: SQR Z0 = Z0^2
	wr(10, 1, gf2m.Sqr(m.r[1]))
	// 11: MUL T1 = X0*Z0
	wr(11, 5, gf2m.Mul(m.r[0], m.r[1]))
	// 12: SQR X0 = X0^2
	wr(12, 0, gf2m.Sqr(m.r[0]))
	// 13: SQR Z0 = Z0^2
	wr(13, 1, gf2m.Sqr(m.r[1]))
	// 14: MUL Z0 = b*Z0
	wr(14, 1, gf2m.Mul(b, m.r[1]))
	// 15: ADD X0 = X0+Z0
	wr(15, 0, gf2m.Add(m.r[0], m.r[1]))
	// 16: MOVE Z0 = T1
	wr(16, 1, m.r[5])
	// 17,18: CSWAP out.
	if bit == 1 {
		m.r[0], m.r[2] = m.r[2], m.r[0]
		m.r[1], m.r[3] = m.r[3], m.r[1]
	}
}

// iterWriteSamples returns, for one ladder iteration, the within-trace
// sample index of each writing instruction's writeback cycle, indexed
// by instruction offset within the iteration.
func (c *Campaign) iterWriteSamples(iter int) map[int]int {
	out := map[int]int{}
	spans := c.Target.prog.Spans(c.Target.Timing)
	// Locate the iteration's first instruction index.
	first := -1
	for _, sp := range spans {
		if sp.Iteration == iter {
			first = sp.Index
			break
		}
	}
	if first < 0 {
		return out
	}
	for _, sp := range spans[first:] {
		if sp.Iteration != iter {
			break
		}
		offset := sp.Index - first
		switch sp.Op {
		case coproc.OpMul, coproc.OpSqr, coproc.OpAdd, coproc.OpMove:
			out[offset] = sp.End - 1 - c.Start
		}
	}
	return out
}

// CPA runs the iterative white-box correlation attack: per attacked
// bit, it replays the iteration's microcode under both guesses,
// predicts each register write's 0->1 transitions, correlates each
// prediction with the measured power at that write's exact cycle, and
// keeps the guess with the higher mean |rho|. One point
// multiplication's worth of leading bits pins down the whole scalar in
// practice; recovering a handful of bits per campaign is the standard
// evaluation shortcut.
//
// CPA is one of the attacks that genuinely needs a retained trace.Set:
// recovering bit b requires re-correlating every trace after the bit
// b-1 decision, so the statistic is inherently multi-pass and cannot
// stream the traces away. Acquisition still fans out through the
// parallel engine (AcquireCampaign); only the analysis is batch.
func CPA(c *Campaign, opt CPAOptions) (*CPAResult, error) {
	if opt.Bits <= 0 {
		return nil, errors.New("sca: CPA needs a positive bit count")
	}
	if opt.KnownPrefix == nil {
		opt.KnownPrefix = DefaultKnownPrefix()
	}
	if opt.Preprocess != PreprocessNone && opt.Preprocess != PreprocessCenteredProduct {
		return nil, fmt.Errorf("sca: unknown CPA preprocess %q (want %q or %q)",
			opt.Preprocess, PreprocessNone, PreprocessCenteredProduct)
	}
	firstAttacked := 162 - len(opt.KnownPrefix)
	if c.FirstIter < firstAttacked || firstAttacked-opt.Bits+1 < c.LastIter {
		return nil, fmt.Errorf("sca: campaign window (iters %d..%d) does not cover attacked bits %d..%d",
			c.FirstIter, c.LastIter, firstAttacked, firstAttacked-opt.Bits+1)
	}
	n := c.Set.Len()
	if n < 2 {
		return nil, errors.New("sca: need at least two traces")
	}
	curve := c.Target.Curve

	// Verify the known prefix actually matches the device key — the
	// evaluation harness generates keys under the Algorithm 1
	// convention, and a silent mismatch would invalidate the result.
	for i, pb := range opt.KnownPrefix {
		if c.Target.Key.Bit(162-i) != pb {
			return nil, fmt.Errorf("sca: device key violates the assumed prefix at bit %d", 162-i)
		}
	}

	// Attacker mirrors per trace, advanced through the known prefix.
	mirrors := make([]mirror, n)
	for i := range mirrors {
		var lambda, mu gf2m.Element
		if c.Target.prog.RPC && opt.KnownMasks {
			lambda, mu = c.Target.Masks(uint64(i))
		}
		mirrors[i] = newMirror(c.Points[i].X, lambda, mu, c.Target.prog.RPC)
		for _, pb := range opt.KnownPrefix {
			mirrors[i].step(pb, c.Points[i].X, curve.B, nil)
		}
	}

	// Centered-product preprocessing: per-column campaign means once,
	// then memoized centered-square columns ((x−µ)², trace.CenterSquare
	// applied column-wise) materialized only for the write cycles the
	// attack actually correlates.
	centered := opt.Preprocess == PreprocessCenteredProduct
	var colMean []float64
	zCols := map[int][]float64{}
	if centered {
		colMean = make([]float64, c.Set.SampleLen())
		for _, tr := range c.Set.Traces {
			for i, v := range tr.Samples {
				colMean[i] += v
			}
		}
		inv := 1 / float64(n)
		for i := range colMean {
			colMean[i] *= inv
		}
	}
	zCol := func(col int) []float64 {
		if z, ok := zCols[col]; ok {
			return z
		}
		z := make([]float64, n)
		for i, tr := range c.Set.Traces {
			d := tr.Samples[col] - colMean[col]
			z[i] = d * d
		}
		zCols[col] = z
		return z
	}

	res := &CPAResult{FirstIter: firstAttacked}
	for b := 0; b < opt.Bits; b++ {
		iter := firstAttacked - b
		writeSamples := c.iterWriteSamples(iter)

		var scores [2]float64
		states := [2][]mirror{}
		for guess := uint(0); guess <= 1; guess++ {
			// Per-write hypothesis vectors.
			preds := map[int][]float64{}
			next := make([]mirror, n)
			for i := range mirrors {
				next[i] = mirrors[i]
				next[i].step(guess, c.Points[i].X, curve.B, func(w writePred) {
					h := w.w01
					if centered {
						h = w.hd
					}
					preds[w.offset] = append(preds[w.offset], h)
				})
			}
			states[guess] = next
			var sum float64
			var cnt int
			// Iterate the offsets in instruction order: map iteration
			// order would vary the floating-point summation order from
			// run to run, breaking the bit-for-bit determinism contract.
			offsets := make([]int, 0, len(preds))
			for offset := range preds {
				offsets = append(offsets, offset)
			}
			sort.Ints(offsets)
			for _, offset := range offsets {
				h := preds[offset]
				col, ok := writeSamples[offset]
				if !ok || col < 0 || col >= c.Set.SampleLen() {
					continue
				}
				var rho float64
				var err error
				if centered {
					rho = pearsonScalar(h, zCol(col))
				} else {
					rho, err = trace.PearsonAt(c.Set, h, col)
					if err != nil {
						return nil, err
					}
				}
				sum += math.Abs(rho)
				cnt++
			}
			if cnt > 0 {
				scores[guess] = sum / float64(cnt)
			}
		}
		bit := uint(0)
		if scores[1] > scores[0] {
			bit = 1
		}
		res.Recovered = append(res.Recovered, bit)
		res.True = append(res.True, c.Target.Key.Bit(iter))
		res.Scores = append(res.Scores, [2]float64{scores[bit], scores[1-bit]})
		mirrors = states[bit]
	}
	return res, nil
}

// SuccessRatePoint is one point of a success-rate curve.
type SuccessRatePoint struct {
	Traces      int
	SuccessRate float64
}

// SuccessRateCurve estimates the DPA success rate (fraction of
// independent trials recovering all targeted bits) at each campaign
// size — the standard evaluation figure of the SCA literature. Each
// trial uses an independent key and acquisition campaign.
func SuccessRateCurve(mk func(trial uint64) *Target, sizes []int, bits, trials int, opt CPAOptions, pointSeed uint64) ([]SuccessRatePoint, error) {
	if trials < 1 || len(sizes) == 0 {
		return nil, errors.New("sca: need trials and sizes")
	}
	if opt.KnownPrefix == nil {
		opt.KnownPrefix = DefaultKnownPrefix()
	}
	opt.Bits = bits
	wins := make([]int, len(sizes))
	maxN := sizes[len(sizes)-1]
	firstIter := 162 - len(opt.KnownPrefix)
	lastIter := firstIter - bits + 1
	for trial := 0; trial < trials; trial++ {
		t := mk(uint64(trial))
		// Per-trial independent point stream.
		d := rng.NewDRBG(pointSeed ^ (uint64(trial)+1)*0x9e3779b97f4a7c15)
		full, err := t.AcquireCampaign(maxN, firstIter, lastIter, d.Uint64)
		if err != nil {
			return nil, err
		}
		for si, n := range sizes {
			res, err := CPA(full.Prefix(n), opt)
			if err != nil {
				return nil, err
			}
			if res.Success() {
				wins[si]++
			}
		}
	}
	out := make([]SuccessRatePoint, len(sizes))
	for i, n := range sizes {
		out[i] = SuccessRatePoint{Traces: n, SuccessRate: float64(wins[i]) / float64(trials)}
	}
	return out, nil
}

// TracesToSuccess evaluates the CPA at increasing campaign sizes and
// returns the smallest size at which all targeted bits are recovered,
// or -1 (plus the largest campaign's result) if even the largest
// fails — the outcome the paper reports for the protected chip at
// 20 000 traces.
//
// The search is an early-stop campaign: it acquires (in parallel)
// only up to the checkpoint that succeeds rather than the maximum
// size up front. Because trace i is a pure function of index i, the
// incrementally extended campaign is identical to a prefix of the
// full one, so the returned result matches the over-acquiring
// implementation exactly — it just stops simulating sooner.
//
// With Target.Ckpt configured, the search persists the acquired trace
// set after every evaluated size — so a killed process loses at most
// one size step of acquisition — and, with Resume set, continues a
// previous process's search: the stored set is restored and the
// attacker's point stream is re-derived by replaying pointSrc over the
// restored prefix, which also positions the stream for further
// extension. A Complete checkpoint (the search finished) skips
// acquisition entirely and re-evaluates the analysis at the stored
// watermark.
func TracesToSuccess(t *Target, sizes []int, bits int, opt CPAOptions, pointSrc func() uint64) (int, *CPAResult, error) {
	if len(sizes) == 0 {
		return -1, nil, errors.New("sca: no campaign sizes given")
	}
	if opt.KnownPrefix == nil {
		opt.KnownPrefix = DefaultKnownPrefix()
	}
	opt.Bits = bits
	firstIter := 162 - len(opt.KnownPrefix)
	lastIter := firstIter - bits + 1
	camp := t.NewCampaign(firstIter, lastIter)

	ck := t.Ckpt
	maxN := sizes[len(sizes)-1]
	resumedN := 0
	complete := false
	prev, err := ck.load(0, maxN, 0)
	if err != nil {
		return -1, nil, err
	}
	if prev != nil {
		if err := camp.Set.UnmarshalBinary(prev.Blobs["set"]); err != nil {
			return -1, nil, fmt.Errorf("sca: checkpoint %s trace set: %w", ck.Path, err)
		}
		if camp.Set.Len() != prev.Header.Watermark {
			return -1, nil, fmt.Errorf("sca: checkpoint %s trace set holds %d traces, watermark says %d",
				ck.Path, camp.Set.Len(), prev.Header.Watermark)
		}
		// Re-derive the attacker's point stream: points are drawn
		// serially in index order (one RandomPoint call per trace), so
		// replaying the source over the restored prefix regenerates
		// Points exactly and leaves pointSrc positioned for the next
		// extension.
		camp.Points = make([]ec.Point, prev.Header.Watermark)
		for i := range camp.Points {
			camp.Points[i] = t.Curve.RandomPoint(pointSrc)
		}
		resumedN = prev.Header.Watermark
		complete = prev.Header.Complete
	}
	writeAt := func(n int, done bool) error {
		if !ck.enabled() {
			return nil
		}
		blob, err := camp.Set.Prefix(n).MarshalBinary()
		if err != nil {
			return err
		}
		h := ck.campHeader(0, maxN, 0)
		h.Watermark, h.Complete = n, done
		return ck.write(h, map[string][]byte{"set": blob})
	}
	if complete {
		// A finished search: success at the watermark reproduces the
		// successful size, failure reproduces the exhausted search —
		// either way no acquisition is needed.
		res, err := CPA(camp.Prefix(resumedN), opt)
		if err != nil {
			return -1, nil, err
		}
		if res.Success() {
			return resumedN, res, nil
		}
		return -1, res, nil
	}
	var last *CPAResult
	for _, n := range sizes {
		if n < resumedN {
			// A non-Complete checkpoint at watermark w means every size
			// <= w was already evaluated (and failed) by the previous
			// process. The watermark size itself is re-evaluated — the
			// analysis is deterministic, so this merely reproduces the
			// stored failure (and keeps `last` populated) without
			// re-acquiring anything (ExtendCampaign to <= Len is a
			// no-op).
			continue
		}
		if err := t.ExtendCampaign(camp, n, pointSrc); err != nil {
			return -1, nil, err
		}
		res, err := CPA(camp.Prefix(n), opt)
		if err != nil {
			return -1, nil, err
		}
		last = res
		if res.Success() {
			if err := writeAt(n, true); err != nil {
				return -1, nil, err
			}
			return n, res, nil
		}
		if err := writeAt(n, false); err != nil {
			return -1, nil, err
		}
	}
	if err := writeAt(camp.Set.Len(), true); err != nil {
		return -1, nil, err
	}
	return -1, last, nil
}
