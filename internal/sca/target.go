// Package sca implements the side-channel evaluation workflow of the
// paper's Fig. 4 — chip under study → instantaneous power acquisition
// → statistical analysis → key recovery — against the co-processor
// simulator:
//
//   - CPA/DPA (§7): iterative key-bit recovery from first-order
//     correlation between predicted ladder intermediates and measured
//     power, in the three settings the paper evaluates (no RPC;
//     RPC with attacker-known randomness; RPC with secret randomness);
//   - SPA (§6/§7): single-trace classification of the conditional-swap
//     control activity, with and without the circuit-level
//     countermeasures, plus the profiled variant that exploits the
//     residual layout imbalance;
//   - timing analysis (§7): cycle-count key dependence of the constant
//     ladder vs the double-and-add baseline;
//   - TVLA: fixed-vs-random Welch t-test leakage assessment.
package sca

import (
	"context"

	"medsec/internal/coproc"
	"medsec/internal/ec"
	"medsec/internal/gf2m"
	"medsec/internal/modn"
	"medsec/internal/obs"
	"medsec/internal/power"
	"medsec/internal/rng"
	"medsec/internal/trace"
)

// LabNoiseSigma is the measurement-noise floor (as a fraction of the
// nominal 59.47 pJ cycle energy) of the Fig. 4 acquisition setup. It
// is calibrated so that the CPA against the RPC-disabled configuration
// needs on the order of 200 traces, the figure the paper reports.
const LabNoiseSigma = 1.0

// AlgorithmOneScalar draws a uniform scalar in the fixed-length form
// of the paper's Algorithm 1, k = (1, k_{t-2}, ..., k_0): bit 162
// clear (every reduced scalar's is) and bit 161 — the conventional
// leading one — set. Devices process scalars in this form so that the
// position of the leading one, which the complete ladder would
// otherwise expose through its degenerate (O, P) prefix state, is
// public by construction.
func AlgorithmOneScalar(curve *ec.Curve, src func() uint64) modn.Scalar {
	for {
		k := curve.Order.Rand(src)
		if k.Bit(162) == 1 {
			continue
		}
		k[161>>6] |= 1 << (161 & 63)
		if !k.IsZero() && k.Cmp(curve.Order.N()) < 0 {
			return k
		}
	}
}

// Target is the device under attack: a co-processor with a fixed
// secret scalar, a microcode variant, and a circuit configuration.
type Target struct {
	Curve  *ec.Curve
	Key    modn.Scalar
	Opts   coproc.ProgramOptions
	Timing coproc.Timing
	Power  power.Config
	// TRNGSeed seeds the device-internal mask generator. Each trace
	// uses an independent per-trace substream.
	TRNGSeed uint64
	// Masked runs the co-processor with the first-order Boolean masking
	// countermeasure enabled (coproc.CPU.Masked): every register and
	// RAM word is carried as two shares refreshed from a dedicated TRNG
	// substream, so single-sample (first-order) statistics go flat and
	// the evaluation must move to the second-order attacks (TVLA2,
	// CPAOptions.Preprocess). The mask stream is derived per trace from
	// TRNGSeed with a mixing constant distinct from the device-data
	// stream's (maskSeed vs traceSeed), so enabling masking changes
	// neither the RPC masks Masks replays nor any architectural value.
	Masked bool
	// Workers sets the acquisition parallelism: campaigns fan
	// simulator passes over this many workers (<= 0 selects
	// GOMAXPROCS, capped at campaign.MaxWorkers). Results are
	// bit-identical for any value — per-trace randomness derives from
	// the trace index, and statistics consume traces in index order.
	Workers int
	// Lanes selects lane-batched acquisition: campaigns execute this
	// many traces per interpreter pass (coproc.LaneCPU), amortizing
	// microcode decode and dispatch across the batch. <= 1 selects the
	// serial per-trace path; design.DefaultLanes is the stack default.
	// Campaign results are bit-identical for any lane count — batching
	// changes only which interpreter retires a trace's cycles, never
	// the per-trace data streams or the statistics' fold order.
	Lanes int
	// Shards selects the reduction sharding of the bounded statistics
	// campaigns (TVLA, leakage maps, SPA averaging, template
	// profiling, campaign acquisition): 0 selects
	// campaign.DefaultShards; a positive value is part of the
	// experiment definition (statistics agree across shard counts only
	// to floating-point rounding, though never across worker counts,
	// which are always bit-identical at fixed Shards); a negative
	// value selects the legacy serial consumer, which reproduces
	// pre-sharding results bit for bit. Early-stop campaigns
	// (TVLAUntil, traces-to-success searches) always use the serial
	// consumer regardless of this field.
	Shards int
	// NoPrologueSkip disables the checkpointed/quiet acquisition
	// prologue (see plan.go): every campaign trace then re-simulates
	// all cycles before its window through the full evented pipeline,
	// as the historical path did. The recorded samples are
	// bit-identical either way; the knob exists for A/B benchmarking
	// and re-verification.
	NoPrologueSkip bool
	// Progress, when non-nil, is invoked after each consumed campaign
	// trace with the cumulative trace count — wire it to a progress
	// reporter for the long acquisitions.
	Progress func(done int)
	// Metrics, when non-nil, receives acquisition instrumentation:
	// counters sca_traces_acquired / sca_prologue_cycles_skipped /
	// sca_checkpoint_resumes / sca_quiet_runs /
	// sca_earlystop_checks, TVLA gauges (sca_tvla_pairs,
	// sca_tvla_max_t, sca_tvla_early_stopped), plus the campaign_*
	// engine instruments (the registry is forwarded into
	// campaign.Config / ShardedConfig). Metrics observe, never
	// perturb: acquisitions are bit-identical with or without a
	// registry, and the nil default costs zero allocations per trace
	// (the campaign AllocsPerRun pin covers this path).
	Metrics *obs.Registry
	// Ctx, when non-nil, makes every campaign over this target
	// interruptible: on cancellation (SIGINT/SIGTERM in the CLIs) the
	// engine drains its worker pool, writes a final checkpoint if Ckpt
	// is configured, and the campaign returns campaign.ErrInterrupted.
	// A nil Ctx (the default) is never checked.
	Ctx context.Context
	// Ckpt, when non-nil, enables durable checkpoint/resume for the
	// checkpoint-aware campaigns (TVLA / TVLAUntil, TracesToSuccess).
	// See CampaignCheckpoint.
	Ckpt *CampaignCheckpoint

	prog *coproc.Program
}

// NewTarget builds a target device.
func NewTarget(curve *ec.Curve, key modn.Scalar, opts coproc.ProgramOptions, tim coproc.Timing, pcfg power.Config, trngSeed uint64) *Target {
	return &Target{
		Curve:    curve,
		Key:      key,
		Opts:     opts,
		Timing:   tim,
		Power:    pcfg,
		TRNGSeed: trngSeed,
		prog:     coproc.BuildLadderProgram(opts),
	}
}

// Program returns the target's microcode.
func (t *Target) Program() *coproc.Program { return t.prog }

func (t *Target) traceSeed(idx uint64) uint64 {
	return t.TRNGSeed ^ (idx+1)*0x9e3779b97f4a7c15
}

// maskSeed derives trace idx's Boolean-masking TRNG substream. The
// mixing constant differs from traceSeed's so the share refresh stream
// is independent of the device-data stream: a masked run draws exactly
// the same RPC masks and points as the unmasked run of the same index.
func (t *Target) maskSeed(idx uint64) uint64 {
	return t.TRNGSeed ^ 0xd1342543de82ef95 ^ (idx+1)*0x94d049bb133111eb
}

// Masks replays the device TRNG for trace idx and returns the RPC
// masks (λ, µ) it loaded — the "countermeasure enabled but the
// randomness is known" white-box mode of §7. Meaningless when the
// program does not use RPC.
func (t *Target) Masks(idx uint64) (lambda, mu gf2m.Element) {
	d := rng.NewDRBG(t.traceSeed(idx))
	lambda = coproc.RandNonZeroElement(d.Uint64)
	mu = coproc.RandNonZeroElement(d.Uint64)
	return lambda, mu
}

// Acquire runs one point multiplication on base point p and records
// the power over cycle window [start, end) (end <= 0: full run).
// idx individualizes the device TRNG stream and the measurement
// noise, as consecutive oscilloscope captures would.
func (t *Target) Acquire(p ec.Point, start, end int, idx uint64) (trace.Trace, error) {
	return t.AcquireWithKey(t.Key, p, start, end, idx)
}

// AcquireWithKey acquires with an explicit scalar — the TVLA
// fixed-vs-random-key campaign needs per-trace keys.
func (t *Target) AcquireWithKey(key modn.Scalar, p ec.Point, start, end int, idx uint64) (trace.Trace, error) {
	return t.acquireOn(t.newScratch(), key, p, start, end, idx)
}

// acquireOn runs one acquisition on the given scratch state (reset in
// place first, so a worker-owned scratch behaves exactly like freshly
// constructed per-trace state). The device TRNG stream, the power
// model and its noise DRBG are re-derived per trace purely from idx,
// which is what makes parallel campaigns bit-identical to serial ones;
// the re-derivation is in-place re-seeding (rng.DRBG.Reseed,
// power.Model.Reinit), which is what makes the steady-state loop
// allocation-free. Events reach the collector through the coproc batch
// probe — one callback per retired instruction instead of one per
// cycle — and samples land in pooled buffers (trace.Collector.Begin).
// Every pre-window cycle runs through the full evented pipeline — the
// reference behavior the planned acquisition paths (plan.go) must
// reproduce bit for bit.
func (t *Target) acquireOn(s *acqScratch, key modn.Scalar, p ec.Point, start, end int, idx uint64) (trace.Trace, error) {
	return t.acquirePlanned(s, key, p, &acqPlan{start: start, end: end, met: t.acqMetrics()}, idx)
}

// Window exposes the acquisition cycle window covering ladder
// iterations firstIter..lastIter — callers use it to convert trace
// counts into simulated-cycle throughput figures.
func (t *Target) Window(firstIter, lastIter int) (start, end int) {
	return t.prog.IterationWindow(t.Timing, firstIter, lastIter)
}

// Campaign is an acquisition campaign: N traces over a fixed cycle
// window with known (attacker-chosen or at least attacker-visible)
// input points.
type Campaign struct {
	Target *Target
	Set    *trace.Set
	Points []ec.Point
	// Start/End are the acquisition cycle window.
	Start, End int
	// FirstIter/LastIter are the ladder iterations the window covers
	// (FirstIter is processed first, i.e. the larger index).
	FirstIter, LastIter int
}

// NewCampaign returns an empty campaign over the given ladder
// iteration window; grow it with ExtendCampaign.
func (t *Target) NewCampaign(firstIter, lastIter int) *Campaign {
	start, end := t.prog.IterationWindow(t.Timing, firstIter, lastIter)
	return &Campaign{
		Target:    t,
		Set:       &trace.Set{},
		Start:     start,
		End:       end,
		FirstIter: firstIter,
		LastIter:  lastIter,
	}
}

// AcquireCampaign collects n traces with fresh random base points,
// windowed to ladder iterations firstIter..lastIter (inclusive,
// firstIter >= lastIter). pointSrc drives the attacker's point
// selection. Acquisition fans out over Target.Workers simulator
// instances; the resulting campaign is bit-identical for any worker
// count (see internal/campaign's determinism contract).
func (t *Target) AcquireCampaign(n int, firstIter, lastIter int, pointSrc func() uint64) (*Campaign, error) {
	c := t.NewCampaign(firstIter, lastIter)
	if err := t.ExtendCampaign(c, n, pointSrc); err != nil {
		return nil, err
	}
	return c, nil
}

// ExtendCampaign grows c to n traces total, drawing the additional
// base points from where pointSrc left off. The traces-to-success
// searches use this to acquire incrementally up to each checkpoint
// size instead of over-acquiring the maximum campaign up front;
// because trace i is a pure function of index i, the extended campaign
// is identical to one acquired at size n in a single call.
//
// The campaign retains every trace, so the "reduction" is a positional
// write: under the sharded engine (Target.Shards >= 0) each completed
// acquisition lands directly in its own slot of the preallocated set
// from the worker goroutine — trivially order-independent — instead of
// filing through the serial reorder consumer. The base points vary per
// trace, so the acquisition plan is quiet-prologue only (no
// checkpoint; see plan.go).
func (t *Target) ExtendCampaign(c *Campaign, n int, pointSrc func() uint64) error {
	from := c.Set.Len()
	if n <= from {
		return nil
	}
	plan := t.planWindow(c.Start, c.End)
	prepare := func(idx int) (acqJob, error) {
		return acqJob{key: t.Key, point: t.Curve.RandomPoint(pointSrc), dev: uint64(idx)}, nil
	}
	if !t.useSharded() {
		consume := func(idx int, j acqJob, tr trace.Trace) (bool, error) {
			c.Set.Add(tr)
			c.Points = append(c.Points, j.point)
			return false, nil
		}
		if _, err := t.runPlanned(from, n, t.engineConfig(), plan, prepare, consume); err != nil {
			// Leave the campaign exactly as it was before the failed
			// (or interrupted) extension; the consumed partial prefix
			// is dropped — extensions checkpoint only at size
			// boundaries (TracesToSuccess).
			c.Set.Traces = c.Set.Traces[:from]
			c.Points = c.Points[:from]
			return err
		}
		return nil
	}
	c.Set.Traces = append(c.Set.Traces, make([]trace.Trace, n-from)...)
	c.Points = append(c.Points, make([]ec.Point, n-from)...)
	_, err := runShardedPlanned(t, from, n, t.shardedConfig(), plan, prepare,
		func(shard int) struct{} { return struct{}{} },
		func(shard int, _ struct{}, idx int, j acqJob, tr trace.Trace) error {
			c.Set.Traces[idx] = tr
			c.Points[idx] = j.point
			return nil
		},
		func(shard int, _ struct{}) error { return nil })
	if err != nil {
		// Leave the campaign exactly as it was before the failed
		// extension; partially filled slots are dropped.
		c.Set.Traces = c.Set.Traces[:from]
		c.Points = c.Points[:from]
		return err
	}
	return nil
}

// PrologueCyclesSkipped reports how many leading cycles per trace the
// campaign's acquisition plan removes from the evented simulation
// pipeline (0 when Target.NoPrologueSkip is set or the window starts
// at cycle 0) — campaign throughput accounting for progress headers.
func (c *Campaign) PrologueCyclesSkipped() int {
	return c.Target.planWindow(c.Start, c.End).skippedCycles()
}

// Prefix returns a view of the campaign's first n traces — the
// sub-campaign evaluated at a traces-to-success checkpoint. The view
// shares trace storage with the parent (see trace.Set.Prefix for the
// aliasing contract).
func (c *Campaign) Prefix(n int) *Campaign {
	if n > len(c.Points) {
		n = len(c.Points)
	}
	return &Campaign{
		Target:    c.Target,
		Set:       c.Set.Prefix(n),
		Points:    c.Points[:n:n],
		Start:     c.Start,
		End:       c.End,
		FirstIter: c.FirstIter,
		LastIter:  c.LastIter,
	}
}
