// Package sca implements the side-channel evaluation workflow of the
// paper's Fig. 4 — chip under study → instantaneous power acquisition
// → statistical analysis → key recovery — against the co-processor
// simulator:
//
//   - CPA/DPA (§7): iterative key-bit recovery from first-order
//     correlation between predicted ladder intermediates and measured
//     power, in the three settings the paper evaluates (no RPC;
//     RPC with attacker-known randomness; RPC with secret randomness);
//   - SPA (§6/§7): single-trace classification of the conditional-swap
//     control activity, with and without the circuit-level
//     countermeasures, plus the profiled variant that exploits the
//     residual layout imbalance;
//   - timing analysis (§7): cycle-count key dependence of the constant
//     ladder vs the double-and-add baseline;
//   - TVLA: fixed-vs-random Welch t-test leakage assessment.
package sca

import (
	"errors"

	"medsec/internal/coproc"
	"medsec/internal/ec"
	"medsec/internal/gf2m"
	"medsec/internal/modn"
	"medsec/internal/power"
	"medsec/internal/rng"
	"medsec/internal/trace"
)

// LabNoiseSigma is the measurement-noise floor (as a fraction of the
// nominal 59.47 pJ cycle energy) of the Fig. 4 acquisition setup. It
// is calibrated so that the CPA against the RPC-disabled configuration
// needs on the order of 200 traces, the figure the paper reports.
const LabNoiseSigma = 1.0

// AlgorithmOneScalar draws a uniform scalar in the fixed-length form
// of the paper's Algorithm 1, k = (1, k_{t-2}, ..., k_0): bit 162
// clear (every reduced scalar's is) and bit 161 — the conventional
// leading one — set. Devices process scalars in this form so that the
// position of the leading one, which the complete ladder would
// otherwise expose through its degenerate (O, P) prefix state, is
// public by construction.
func AlgorithmOneScalar(curve *ec.Curve, src func() uint64) modn.Scalar {
	for {
		k := curve.Order.Rand(src)
		if k.Bit(162) == 1 {
			continue
		}
		k[161>>6] |= 1 << (161 & 63)
		if !k.IsZero() && k.Cmp(curve.Order.N()) < 0 {
			return k
		}
	}
}

// Target is the device under attack: a co-processor with a fixed
// secret scalar, a microcode variant, and a circuit configuration.
type Target struct {
	Curve  *ec.Curve
	Key    modn.Scalar
	Opts   coproc.ProgramOptions
	Timing coproc.Timing
	Power  power.Config
	// TRNGSeed seeds the device-internal mask generator. Each trace
	// uses an independent per-trace substream.
	TRNGSeed uint64

	prog *coproc.Program
}

// NewTarget builds a target device.
func NewTarget(curve *ec.Curve, key modn.Scalar, opts coproc.ProgramOptions, tim coproc.Timing, pcfg power.Config, trngSeed uint64) *Target {
	return &Target{
		Curve:    curve,
		Key:      key,
		Opts:     opts,
		Timing:   tim,
		Power:    pcfg,
		TRNGSeed: trngSeed,
		prog:     coproc.BuildLadderProgram(opts),
	}
}

// Program returns the target's microcode.
func (t *Target) Program() *coproc.Program { return t.prog }

func (t *Target) traceSeed(idx uint64) uint64 {
	return t.TRNGSeed ^ (idx+1)*0x9e3779b97f4a7c15
}

// Masks replays the device TRNG for trace idx and returns the RPC
// masks (λ, µ) it loaded — the "countermeasure enabled but the
// randomness is known" white-box mode of §7. Meaningless when the
// program does not use RPC.
func (t *Target) Masks(idx uint64) (lambda, mu gf2m.Element) {
	d := rng.NewDRBG(t.traceSeed(idx))
	lambda = coproc.RandNonZeroElement(d.Uint64)
	mu = coproc.RandNonZeroElement(d.Uint64)
	return lambda, mu
}

// Acquire runs one point multiplication on base point p and records
// the power over cycle window [start, end) (end <= 0: full run).
// idx individualizes the device TRNG stream and the measurement
// noise, as consecutive oscilloscope captures would.
func (t *Target) Acquire(p ec.Point, start, end int, idx uint64) (trace.Trace, error) {
	return t.AcquireWithKey(t.Key, p, start, end, idx)
}

// AcquireWithKey acquires with an explicit scalar — the TVLA
// fixed-vs-random-key campaign needs per-trace keys.
func (t *Target) AcquireWithKey(key modn.Scalar, p ec.Point, start, end int, idx uint64) (trace.Trace, error) {
	cpu := coproc.NewCPU(t.Timing)
	cpu.Rand = rng.NewDRBG(t.traceSeed(idx)).Uint64
	pcfg := t.Power
	pcfg.Seed ^= (idx + 1) * 0xbf58476d1ce4e5b9
	model := power.NewModel(pcfg)
	col := trace.NewCollector(model, start, end)
	cpu.Probe = col.Probe()
	cpu.SetOperandConstants(p.X, t.Curve.B, p.Y)
	if end > 0 {
		cpu.MaxCycles = end
	}
	_, err := cpu.Run(t.prog, key)
	if err != nil && !errors.Is(err, coproc.ErrStopped) {
		return trace.Trace{}, err
	}
	return col.Take(), nil
}

// Campaign is an acquisition campaign: N traces over a fixed cycle
// window with known (attacker-chosen or at least attacker-visible)
// input points.
type Campaign struct {
	Target *Target
	Set    *trace.Set
	Points []ec.Point
	// Start/End are the acquisition cycle window.
	Start, End int
	// FirstIter/LastIter are the ladder iterations the window covers
	// (FirstIter is processed first, i.e. the larger index).
	FirstIter, LastIter int
}

// AcquireCampaign collects n traces with fresh random base points,
// windowed to ladder iterations firstIter..lastIter (inclusive,
// firstIter >= lastIter). pointSrc drives the attacker's point
// selection.
func (t *Target) AcquireCampaign(n int, firstIter, lastIter int, pointSrc func() uint64) (*Campaign, error) {
	start, end := t.prog.IterationWindow(t.Timing, firstIter, lastIter)
	c := &Campaign{
		Target:    t,
		Set:       &trace.Set{},
		Start:     start,
		End:       end,
		FirstIter: firstIter,
		LastIter:  lastIter,
	}
	for i := 0; i < n; i++ {
		p := t.Curve.RandomPoint(pointSrc)
		tr, err := t.Acquire(p, start, end, uint64(i))
		if err != nil {
			return nil, err
		}
		c.Set.Add(tr)
		c.Points = append(c.Points, p)
	}
	return c, nil
}

// iterationSampleRange maps ladder iteration iter to the sample index
// range [a, b) within this campaign's traces.
func (c *Campaign) iterationSampleRange(iter int) (int, int) {
	s, e := c.Target.prog.IterationWindow(c.Target.Timing, iter, iter)
	return s - c.Start, e - c.Start
}

// subSet returns a view of the campaign's traces restricted to sample
// range [a, b) (slices share backing arrays; cheap).
func (c *Campaign) subSet(a, b int) *trace.Set {
	out := &trace.Set{}
	for _, tr := range c.Set.Traces {
		out.Add(trace.Trace{Samples: tr.Samples[a:b], Iter: tr.Iter[a:b]})
	}
	return out
}
