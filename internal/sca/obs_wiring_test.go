package sca

import (
	"reflect"
	"testing"

	"medsec/internal/modn"
	"medsec/internal/obs"
	"medsec/internal/rng"
)

// TestMetricsObserveNeverPerturb is the tentpole invariant at the sca
// level: running the same TVLA campaign with and without a live
// registry yields a bit-identical t-curve, and the instrumented run's
// counters account for every acquisition exactly.
func TestMetricsObserveNeverPerturb(t *testing.T) {
	const nPerSet = 15
	run := func(reg *obs.Registry) *TVLAResult {
		tgt := newDPATarget(t, false, 91)
		tgt.Workers = 3
		tgt.Metrics = reg
		src := rng.NewDRBG(13).Uint64
		randKey := func() modn.Scalar { return AlgorithmOneScalar(tgt.Curve, src) }
		res, err := TVLA(tgt, FixedPoint(tgt.Curve), nPerSet, 160, 158, randKey)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}

	bare := run(nil)
	reg := obs.New()
	inst := run(reg)

	if !reflect.DeepEqual(bare.TCurve, inst.TCurve) {
		t.Fatal("metrics perturbed the campaign: t-curves differ")
	}
	if bare.MaxT != inst.MaxT || bare.TracesPerSet != inst.TracesPerSet {
		t.Fatalf("metrics perturbed results: %+v vs %+v", bare, inst)
	}

	total := int64(2 * nPerSet)
	if got := reg.Counter("sca_traces_acquired").Value(); got != total {
		t.Fatalf("sca_traces_acquired = %d, want %d", got, total)
	}
	// Every trace took exactly one prologue strategy: checkpoint resume
	// (prefix CSWAP bits match the fixed key) or quiet run.
	resumes := reg.Counter("sca_checkpoint_resumes").Value()
	quiet := reg.Counter("sca_quiet_runs").Value()
	if resumes+quiet != total {
		t.Fatalf("prologue split %d+%d != %d traces", resumes, quiet, total)
	}
	// Fixed-set traces always match the reference key, so at least
	// nPerSet resumes.
	if resumes < nPerSet {
		t.Fatalf("checkpoint resumes = %d, want >= %d (fixed set)", resumes, nPerSet)
	}
	if inst.PrologueCyclesSkipped > 0 {
		want := int64(inst.PrologueCyclesSkipped) * total
		if got := reg.Counter("sca_prologue_cycles_skipped").Value(); got != want {
			t.Fatalf("sca_prologue_cycles_skipped = %d, want %d", got, want)
		}
	}
	// Engine-level accounting rode along on the same registry.
	if got := reg.Counter("campaign_acquired").Value(); got != total {
		t.Fatalf("campaign_acquired = %d, want %d", got, total)
	}
	if got := reg.Gauge("sca_tvla_pairs").Value(); got != float64(inst.TracesPerSet) {
		t.Fatalf("sca_tvla_pairs = %v, want %d", got, inst.TracesPerSet)
	}
	if got := reg.Gauge("sca_tvla_max_t").Value(); got != inst.MaxT {
		t.Fatalf("sca_tvla_max_t = %v, want %v", got, inst.MaxT)
	}
}

// TestLaneBatchMetrics pins the lane-batched campaign's
// instrumentation: the campaign_lanes gauge reports the configured
// lane count, the batch-fill histogram accounts every dispatched
// batch (including the final underfilled one when lanes does not
// divide the trace count), and the sca acquisition counters stay
// exact — all without perturbing the statistics.
func TestLaneBatchMetrics(t *testing.T) {
	const nPerSet = 15 // 30 traces: 7 full batches of 4 + 1 batch of 2
	run := func(lanes int, reg *obs.Registry) *TVLAResult {
		tgt := newDPATarget(t, false, 91)
		tgt.Workers = 3
		tgt.Shards = -1
		tgt.Lanes = lanes
		tgt.Metrics = reg
		src := rng.NewDRBG(13).Uint64
		randKey := func() modn.Scalar { return AlgorithmOneScalar(tgt.Curve, src) }
		res, err := TVLA(tgt, FixedPoint(tgt.Curve), nPerSet, 160, 158, randKey)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}

	bare := run(4, nil)
	reg := obs.New()
	inst := run(4, reg)
	if !reflect.DeepEqual(bare.TCurve, inst.TCurve) {
		t.Fatal("lane metrics perturbed the campaign: t-curves differ")
	}

	if got := reg.Gauge("campaign_lanes").Value(); got != 4 {
		t.Fatalf("campaign_lanes = %v, want 4", got)
	}
	total := int64(2 * nPerSet)
	if got := reg.Counter("sca_traces_acquired").Value(); got != total {
		t.Fatalf("sca_traces_acquired = %d, want %d", got, total)
	}
	fill := reg.Histogram("campaign_batch_fill", nil)
	if got := fill.Count(); got != 8 {
		t.Fatalf("campaign_batch_fill count = %d, want 8 batches", got)
	}
	if got := fill.Sum(); got != float64(total) {
		t.Fatalf("campaign_batch_fill sum = %v, want %d traces", got, total)
	}
	if got := reg.Counter("campaign_batch_underfill").Value(); got != 1 {
		t.Fatalf("campaign_batch_underfill = %d, want 1 (30 %% 4 != 0)", got)
	}
}

// TestEarlyStopCheckCounter: TVLAUntil accounts its predicate
// evaluations, and an early-stopped run flags the gauge.
func TestEarlyStopCheckCounter(t *testing.T) {
	tgt := newDPATarget(t, false, 92)
	tgt.Workers = 2
	tgt.Metrics = obs.New()
	src := rng.NewDRBG(14).Uint64
	randKey := func() modn.Scalar { return AlgorithmOneScalar(tgt.Curve, src) }
	// The unprotected target leaks hard; a generous budget early-stops.
	res, err := TVLAUntil(tgt, FixedPoint(tgt.Curve), 400, 5, 160, 158, randKey)
	if err != nil {
		t.Fatal(err)
	}
	checks := tgt.Metrics.Counter("sca_earlystop_checks").Value()
	if checks < 1 {
		t.Fatalf("sca_earlystop_checks = %d, want >= 1", checks)
	}
	if res.EarlyStopped {
		if got := tgt.Metrics.Gauge("sca_tvla_early_stopped").Value(); got != 1 {
			t.Fatalf("sca_tvla_early_stopped = %v, want 1", got)
		}
		// One check per 5 pairs past the 10-pair minimum: the stopping
		// pair count bounds the number of evaluations.
		maxChecks := int64(res.TracesPerSet/5) + 1
		if checks > maxChecks {
			t.Fatalf("checks = %d, want <= %d for %d pairs", checks, maxChecks, res.TracesPerSet)
		}
	}
}
