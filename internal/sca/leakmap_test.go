package sca

import (
	"testing"

	"medsec/internal/coproc"
	"medsec/internal/ec"
	"medsec/internal/modn"
	"medsec/internal/power"
	"medsec/internal/rng"
)

func leakTarget(t *testing.T, mut func(*power.Config)) (*Target, *ec.Curve, func() modn.Scalar) {
	t.Helper()
	curve := ec.K163()
	key := generateKey(curve, rng.NewDRBG(51).Uint64)
	cfg := power.ProtectedChip(51)
	cfg.NoiseSigma = 0.05
	if mut != nil {
		mut(&cfg)
	}
	tgt := NewTarget(curve, key, coproc.ProgramOptions{RPC: true, XOnly: true},
		coproc.DefaultTiming(), cfg, 5151)
	src := rng.NewDRBG(52).Uint64
	gen := func() modn.Scalar { return generateKey(curve, src) }
	return tgt, curve, gen
}

func TestLeakageMapAttributesUnbalancedMuxToCSwap(t *testing.T) {
	tgt, curve, gen := leakTarget(t, func(c *power.Config) { c.BalancedMux = false })
	m, err := LeakageMap(tgt, FixedPoint(curve), 60, 160, 157, gen)
	if err != nil {
		t.Fatal(err)
	}
	if !m.Leaks() {
		t.Fatal("unbalanced mux design shows no leakage")
	}
	byOp := m.ByOp()
	if byOp["CSWAP"] == 0 {
		t.Fatalf("leak not attributed to the swap muxes: %v", byOp)
	}
	// The strongest point must be a key-controlled CSWAP cycle.
	top := m.Points[0]
	if top.Op != coproc.OpCSwap || top.KeyBit < 0 {
		t.Fatalf("strongest leak at %v (op %v), expected a CSWAP cycle", top.Cycle, top.Op)
	}
}

func TestLeakageMapCleanOnProtectedDesign(t *testing.T) {
	tgt, curve, gen := leakTarget(t, func(c *power.Config) { c.ResidualImbalance = 0 })
	m, err := LeakageMap(tgt, FixedPoint(curve), 60, 160, 157, gen)
	if err != nil {
		t.Fatal(err)
	}
	if m.Leaks() {
		t.Fatalf("protected design leaks at %d cycles (max |t| %.2f, top op %v)",
			len(m.Points), m.MaxT, m.Points[0].Op)
	}
	if m.Samples == 0 {
		t.Fatal("no samples assessed")
	}
}

func TestLeakageMapGatingAttribution(t *testing.T) {
	tgt, curve, gen := leakTarget(t, func(c *power.Config) { c.DataDepClockGating = true })
	m, err := LeakageMap(tgt, FixedPoint(curve), 60, 160, 157, gen)
	if err != nil {
		t.Fatal(err)
	}
	if !m.Leaks() {
		t.Fatal("data-dependent clock gating shows no leakage")
	}
	if m.ByOp()["CSWAP"] == 0 {
		t.Fatal("gating leak not attributed to the gated swap cycles")
	}
}

func TestLeakageMapValidation(t *testing.T) {
	tgt, curve, gen := leakTarget(t, nil)
	if _, err := LeakageMap(tgt, FixedPoint(curve), 2, 160, 157, gen); err == nil {
		t.Fatal("tiny campaign accepted")
	}
}
