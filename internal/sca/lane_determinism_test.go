package sca

import (
	"context"
	"errors"
	"path/filepath"
	"reflect"
	"testing"

	"medsec/internal/campaign"
	"medsec/internal/modn"
	"medsec/internal/rng"
	"medsec/internal/store"
)

// Lane-batch determinism pins: Target.Lanes selects how many traces
// one interpreter pass retires, and nothing else. Every campaign
// statistic must be bit-identical across lane counts — including lane
// counts that do not divide the trace count, mixed
// checkpoint-resume/quiet-run batches (TVLA's fixed/random
// interleaving), every worker/shard shape, and a campaign killed under
// one lane count and resumed under another.

var determinismLanes = []int{1, 4, 8}

func tvlaLanes(t *testing.T, workers, shards, lanes int) *TVLAResult {
	t.Helper()
	tgt := newDPATarget(t, false, 91)
	tgt.Workers = workers
	tgt.Shards = shards
	tgt.Lanes = lanes
	src := rng.NewDRBG(14).Uint64
	randKey := func() modn.Scalar { return AlgorithmOneScalar(tgt.Curve, src) }
	res, err := TVLA(tgt, FixedPoint(tgt.Curve), 20, 159, 157, randKey)
	if err != nil {
		t.Fatalf("workers=%d shards=%d lanes=%d: %v", workers, shards, lanes, err)
	}
	return res
}

// TestTVLALaneDeterminism pins the tentpole contract over the full
// engine-shape grid: lanes x workers x shards (legacy serial consumer
// included), all bit-identical to the serial per-trace path. The TVLA
// job stream interleaves fixed and random keys, so batches mix
// snapshot-resumed and quiet-run lanes.
func TestTVLALaneDeterminism(t *testing.T) {
	for _, shards := range []int{-1, 1, 4} {
		base := tvlaLanes(t, 1, shards, 0)
		for _, lanes := range determinismLanes {
			for _, w := range determinismWorkers {
				res := tvlaLanes(t, w, shards, lanes)
				if res.TracesPerSet != base.TracesPerSet {
					t.Errorf("shards=%d lanes=%d workers=%d: %d traces/set, serial %d",
						shards, lanes, w, res.TracesPerSet, base.TracesPerSet)
				}
				if !reflect.DeepEqual(res.TCurve, base.TCurve) {
					t.Errorf("shards=%d lanes=%d workers=%d: t-curve differs bit-for-bit from the serial per-trace path",
						shards, lanes, w)
				}
			}
		}
	}
}

// TestCampaignLaneDeterminism pins lane batching over per-trace random
// base points (quiet-only plan, per-lane operand constants): the
// retained trace set and point stream are bit-identical to the serial
// path, for the serial consumer and the positional sharded reduction.
func TestCampaignLaneDeterminism(t *testing.T) {
	acquire := func(shards, lanes int) *Campaign {
		tgt := newDPATarget(t, false, 95)
		tgt.Workers = 3
		tgt.Shards = shards
		tgt.Lanes = lanes
		c, err := tgt.AcquireCampaign(30, 160, 157, rng.NewDRBG(31).Uint64)
		if err != nil {
			t.Fatalf("shards=%d lanes=%d: %v", shards, lanes, err)
		}
		return c
	}
	for _, shards := range []int{-1, 4} {
		base := acquire(shards, 0)
		want := campaignFingerprint(base)
		for _, lanes := range determinismLanes[1:] {
			c := acquire(shards, lanes)
			if !reflect.DeepEqual(campaignFingerprint(c), want) {
				t.Errorf("shards=%d lanes=%d: campaign traces differ from the serial per-trace path", shards, lanes)
			}
			if !reflect.DeepEqual(c.Points, base.Points) {
				t.Errorf("shards=%d lanes=%d: campaign points differ from the serial per-trace path", shards, lanes)
			}
		}
	}
}

// TestTVLAEarlyStopLaneDeterminism pins the early-stop leg: the
// stopping pair is decided per consumed sample, so a lane-batched
// campaign must stop at exactly the serial path's pair even when the
// stop lands mid-batch.
func TestTVLAEarlyStopLaneDeterminism(t *testing.T) {
	run := func(lanes int) *TVLAResult {
		tgt := newDPATarget(t, false, 80)
		tgt.Workers = 3
		tgt.Lanes = lanes
		src := rng.NewDRBG(9).Uint64
		randKey := func() modn.Scalar { return AlgorithmOneScalar(tgt.Curve, src) }
		res, err := TVLAUntil(tgt, FixedPoint(tgt.Curve), 120, 5, 160, 158, randKey)
		if err != nil {
			t.Fatalf("lanes=%d: %v", lanes, err)
		}
		return res
	}
	base := run(0)
	if !base.EarlyStopped {
		t.Fatalf("fixture did not early-stop (maxT=%g)", base.MaxT)
	}
	for _, lanes := range determinismLanes {
		res := run(lanes)
		if res.TracesPerSet != base.TracesPerSet {
			t.Errorf("lanes=%d: stopped at %d traces/set, serial stopped at %d", lanes, res.TracesPerSet, base.TracesPerSet)
		}
		if !reflect.DeepEqual(res.TCurve, base.TCurve) {
			t.Errorf("lanes=%d: early-stopped t-curve differs from the serial path", lanes)
		}
	}
}

// TestSPAProfiledLaneDeterminism pins a sum reduction (order-sensitive
// float fold) across lane counts.
func TestSPAProfiledLaneDeterminism(t *testing.T) {
	run := func(lanes int) *SPAResult {
		tgt := newDPATarget(t, false, 81)
		tgt.Workers = 2
		tgt.Lanes = lanes
		p := tgt.Curve.RandomPoint(rng.NewDRBG(10).Uint64)
		res, err := SPAProfiled(tgt, p, 12)
		if err != nil {
			t.Fatalf("lanes=%d: %v", lanes, err)
		}
		return res
	}
	base := run(0)
	for _, lanes := range determinismLanes[1:] {
		res := run(lanes)
		if !reflect.DeepEqual(res.Features, base.Features) {
			t.Errorf("lanes=%d: averaged SPA features differ from the serial path", lanes)
		}
	}
}

// TestTVLALaneKillResume pins checkpoint/resume under lane variation: a
// campaign killed mid-run at one lane count and resumed at another —
// batch boundaries shift arbitrarily across the cut — must be
// bit-identical to an uninterrupted serial run, for both engine legs.
func TestTVLALaneKillResume(t *testing.T) {
	const nPerSet = 14
	cases := []struct {
		name                string
		shards              int
		killLanes, resLanes int
		killW, resumeW      int
		cancelAt            int
	}{
		{"serial-lanes4-to-1", -1, 4, 1, 3, 2, 9},
		{"serial-lanes1-to-8", -1, 1, 8, 1, 7, 9},
		{"sharded4-lanes8-to-4", 4, 8, 4, 7, 2, 9},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			seed := uint64(79)
			ref, err := tvlaCkpt(t, seed, 8, 1, tc.shards, nPerSet, nil, nil, nil)
			if err != nil {
				t.Fatal(err)
			}

			run := func(lanes, workers int, ctx context.Context, ck *CampaignCheckpoint, progress func(int)) (*TVLAResult, error) {
				tgt := newDPATarget(t, false, seed)
				tgt.Workers = workers
				tgt.Shards = tc.shards
				tgt.Lanes = lanes
				tgt.Ctx = ctx
				tgt.Ckpt = ck
				tgt.Progress = progress
				src := rng.NewDRBG(8).Uint64
				randKey := func() modn.Scalar { return AlgorithmOneScalar(tgt.Curve, src) }
				return TVLA(tgt, FixedPoint(tgt.Curve), nPerSet, 160, 158, randKey)
			}

			path := filepath.Join(t.TempDir(), "tvla.ckpt")
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			ck := &CampaignCheckpoint{Path: path, Every: 4, Header: ckptHeader(seed)}
			_, err = run(tc.killLanes, tc.killW, ctx, ck, func(done int) {
				if done >= tc.cancelAt {
					cancel()
				}
			})
			if !errors.Is(err, campaign.ErrInterrupted) {
				t.Fatalf("interrupted campaign returned %v, want campaign.ErrInterrupted", err)
			}
			if _, err := store.Read(path); err != nil {
				t.Fatalf("no checkpoint after interrupt: %v", err)
			}

			rck := &CampaignCheckpoint{Path: path, Every: 4, Header: ckptHeader(seed), Resume: true}
			res, err := run(tc.resLanes, tc.resumeW, nil, rck, nil)
			if err != nil {
				t.Fatal(err)
			}
			sameTVLA(t, tc.name, res, ref)
		})
	}
}
