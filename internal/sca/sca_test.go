package sca

import (
	"testing"

	"medsec/internal/coproc"
	"medsec/internal/ec"
	"medsec/internal/gf2m"
	"medsec/internal/modn"
	"medsec/internal/power"
	"medsec/internal/rng"
)

func generateKey(curve *ec.Curve, src func() uint64) modn.Scalar {
	return AlgorithmOneScalar(curve, src)
}

// labPower is the Fig. 4 measurement setup: protected circuit plus the
// oscilloscope noise floor calibrated so the unprotected-algorithm DPA
// needs on the order of 200 traces (paper §7).
func labPower(seed uint64) power.Config {
	cfg := power.ProtectedChip(seed)
	cfg.NoiseSigma = LabNoiseSigma
	return cfg
}

func newDPATarget(t *testing.T, rpc bool, seed uint64) *Target {
	t.Helper()
	curve := ec.K163()
	key := generateKey(curve, rng.NewDRBG(seed).Uint64)
	return NewTarget(curve, key,
		coproc.ProgramOptions{RPC: rpc, XOnly: true},
		coproc.DefaultTiming(), labPower(seed), seed+7777)
}

func TestMirrorTracksMicrocodeRegisters(t *testing.T) {
	// The attacker's value-level model must agree with the simulator's
	// register file after every iteration, in all mask settings.
	curve := ec.K163()
	for _, rpc := range []bool{false, true} {
		tgt := newDPATarget(t, rpc, 42)
		p := curve.RandomPoint(rng.NewDRBG(1).Uint64)

		var lambda, mu gf2m.Element
		if rpc {
			lambda, mu = tgt.Masks(5)
		}
		m := newMirror(p.X, lambda, mu, rpc)
		for i := 162; i >= 0; i-- {
			m.step(tgt.Key.Bit(i), p.X, curve.B, nil)
		}

		cpu := coproc.NewCPU(tgt.Timing)
		cpu.Rand = rng.NewDRBG(tgt.traceSeed(5)).Uint64
		cpu.SetOperandConstants(p.X, curve.B, p.Y)
		// Snapshot the ladder state registers at the first
		// post-ladder cycle (before post-processing clobbers them).
		var snap [4]gf2m.Element
		taken := false
		sawLadder := false
		cpu.Probe = func(ev *coproc.CycleEvent) {
			if ev.Iteration >= 0 {
				sawLadder = true
				return
			}
			if sawLadder && !taken {
				copy(snap[:], cpu.Regs[:4])
				taken = true
			}
		}
		if _, err := cpu.Run(tgt.Program(), tgt.Key); err != nil {
			t.Fatal(err)
		}
		if !taken {
			t.Fatal("never reached post-processing")
		}
		for ri := 0; ri < 4; ri++ {
			if !m.r[ri].Equal(snap[ri]) {
				t.Fatalf("rpc=%v: mirror register %d diverged from the register file", rpc, ri)
			}
		}
	}
}

func TestCPARecoversKeyWithoutRPC(t *testing.T) {
	// Paper §7: "When the countermeasure is disabled, a DPA attack
	// succeeds with as low as 200 traces."
	tgt := newDPATarget(t, false, 1)
	camp, err := tgt.AcquireCampaign(300, 160, 153, rng.NewDRBG(2).Uint64)
	if err != nil {
		t.Fatal(err)
	}
	res, err := CPA(camp, CPAOptions{Bits: 8})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Success() {
		t.Fatalf("CPA without RPC failed: recovered %v, true %v, scores %v",
			res.Recovered, res.True, res.Scores)
	}
}

func TestCPASucceedsWithKnownRandomness(t *testing.T) {
	// Paper §7: "When the countermeasure is enabled, but the
	// randomness is known, the attack also succeeds. ... The fact that
	// the attack works in this lab setting provides confidence on the
	// soundness of the attack."
	tgt := newDPATarget(t, true, 3)
	camp, err := tgt.AcquireCampaign(300, 160, 153, rng.NewDRBG(4).Uint64)
	if err != nil {
		t.Fatal(err)
	}
	res, err := CPA(camp, CPAOptions{Bits: 8, KnownMasks: true})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Success() {
		t.Fatalf("white-box CPA with known masks failed: %v vs %v", res.Recovered, res.True)
	}
}

func TestCPAFailsWithSecretRandomness(t *testing.T) {
	if testing.Short() {
		t.Skip("long campaign; skipped in -short mode")
	}
	// Paper §7: "When the countermeasure is enabled, and the
	// randomness is unknown, the attack does not succeed." The test
	// uses 1 500 traces; the benchmark harness pushes to 20 000.
	tgt := newDPATarget(t, true, 5)
	camp, err := tgt.AcquireCampaign(1500, 160, 153, rng.NewDRBG(6).Uint64)
	if err != nil {
		t.Fatal(err)
	}
	res, err := CPA(camp, CPAOptions{Bits: 8})
	if err != nil {
		t.Fatal(err)
	}
	if res.Success() {
		t.Fatal("CPA succeeded against enabled RPC with secret randomness")
	}
	// The recovered bits should be near coin-flipping, certainly not
	// systematically correct.
	if res.BitAccuracy() > 0.90 {
		t.Fatalf("CPA against RPC achieved %.0f%% bit accuracy; countermeasure ineffective",
			res.BitAccuracy()*100)
	}
}

func TestTracesToSuccessOrdering(t *testing.T) {
	if testing.Short() {
		t.Skip("long campaign; skipped in -short mode")
	}
	// The unprotected configuration must need more than a handful of
	// traces (the noise floor is real) but succeed within a few
	// hundred (the paper's ~200).
	tgt := newDPATarget(t, false, 8)
	sizes := []int{8, 50, 150, 300, 600}
	n, res, err := TracesToSuccess(tgt, sizes, 6, CPAOptions{}, rng.NewDRBG(9).Uint64)
	if err != nil {
		t.Fatal(err)
	}
	if n < 0 {
		t.Fatalf("DPA never succeeded; last result %v vs %v", res.Recovered, res.True)
	}
	if n > 600 {
		t.Fatalf("DPA needed %d traces; calibration drifted from the paper's ~200", n)
	}
}

func TestSPAUnbalancedMuxRecoversFullKey(t *testing.T) {
	// Paper §6: without balanced encoding, the 164-mux control network
	// paints the key bit into every iteration's power signature.
	curve := ec.K163()
	key := generateKey(curve, rng.NewDRBG(11).Uint64)
	cfg := power.ProtectedChip(11)
	cfg.BalancedMux = false
	tgt := NewTarget(curve, key, coproc.ProgramOptions{RPC: true, XOnly: true},
		coproc.DefaultTiming(), cfg, 1111)
	res, err := SPA(tgt, curve.Generator(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Accuracy() != 1.0 {
		t.Fatalf("single-trace SPA against unbalanced muxes: accuracy %.3f, want 1.0", res.Accuracy())
	}
}

func TestSPADataDependentClockGatingRecoversFullKey(t *testing.T) {
	// Paper §6: "overly aggressive clock gating ... thereby enabling
	// an SPA."
	curve := ec.K163()
	key := generateKey(curve, rng.NewDRBG(12).Uint64)
	cfg := power.ProtectedChip(12)
	cfg.DataDepClockGating = true
	tgt := NewTarget(curve, key, coproc.ProgramOptions{RPC: true, XOnly: true},
		coproc.DefaultTiming(), cfg, 2222)
	res, err := SPA(tgt, curve.Generator(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Accuracy() != 1.0 {
		t.Fatalf("SPA against data-dependent clock gating: accuracy %.3f, want 1.0", res.Accuracy())
	}
}

func TestSPABalancedDesignResists(t *testing.T) {
	// The protected design: single-trace SPA must be near coin
	// flipping.
	curve := ec.K163()
	key := generateKey(curve, rng.NewDRBG(13).Uint64)
	tgt := NewTarget(curve, key, coproc.ProgramOptions{RPC: true, XOnly: true},
		coproc.DefaultTiming(), power.ProtectedChip(13), 3333)
	res, err := SPA(tgt, curve.Generator(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Accuracy() > 0.75 {
		t.Fatalf("single-trace SPA against the protected design: accuracy %.3f", res.Accuracy())
	}
}

func TestSPAProfilingExploitsResidualImbalance(t *testing.T) {
	if testing.Short() {
		t.Skip("long campaign; skipped in -short mode")
	}
	// Paper §7: "We identified a complex attack that could extract the
	// key since a small source of SPA leakage was detected ... he has
	// to perform a complex profiling phase." Averaging traces defeats
	// the noise and exposes the residual layout imbalance.
	curve := ec.K163()
	key := generateKey(curve, rng.NewDRBG(14).Uint64)
	tgt := NewTarget(curve, key, coproc.ProgramOptions{RPC: true, XOnly: true},
		coproc.DefaultTiming(), power.ProtectedChip(14), 4444)
	res, err := SPAProfiled(tgt, curve.Generator(), 400)
	if err != nil {
		t.Fatal(err)
	}
	if res.Accuracy() < 0.95 {
		t.Fatalf("profiled SPA on residual imbalance: accuracy %.3f, want >= 0.95", res.Accuracy())
	}
	// With the imbalance engineered away, even profiling fails.
	clean := power.ProtectedChip(15)
	clean.ResidualImbalance = 0
	tgt2 := NewTarget(curve, key, coproc.ProgramOptions{RPC: true, XOnly: true},
		coproc.DefaultTiming(), clean, 5555)
	res2, err := SPAProfiled(tgt2, curve.Generator(), 400)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Accuracy() > 0.75 {
		t.Fatalf("profiled SPA succeeded (%.3f) without any imbalance", res2.Accuracy())
	}
}

func TestTimingAttack(t *testing.T) {
	curve := ec.K163()
	rep := TimingAttack(curve, coproc.DefaultTiming(), 200, rng.NewDRBG(16).Uint64)
	if rep.LadderVariance != 0 {
		t.Fatalf("ladder cycle variance %v, want 0", rep.LadderVariance)
	}
	// The correlation is below 1 only because the bit length of the
	// scalar varies a little too; 0.95+ still pins the Hamming weight.
	if rep.DAHWCorrelation < 0.95 {
		t.Fatalf("double-and-add latency/HW correlation %.3f; the baseline must leak", rep.DAHWCorrelation)
	}
	if rep.DARecoveredHWError > 2.0 {
		t.Fatalf("timing attacker's HW estimate off by %.2f bits on average", rep.DARecoveredHWError)
	}
	if rep.DAMinCycles >= rep.DAMaxCycles {
		t.Fatal("double-and-add latency shows no spread")
	}
}

func TestVerifyConstantTimeOnSimulator(t *testing.T) {
	curve := ec.K163()
	tgt := newDPATarget(t, true, 17)
	src := rng.NewDRBG(18).Uint64
	keys := []modn.Scalar{modn.FromUint64(1)}
	for i := 0; i < 5; i++ {
		keys = append(keys, curve.Order.RandNonZero(src))
	}
	distinct, err := VerifyConstantTime(tgt, keys, curve.Generator())
	if err != nil {
		t.Fatal(err)
	}
	if len(distinct) != 1 {
		t.Fatalf("observed %d distinct cycle counts %v, want 1", len(distinct), distinct)
	}
}

func TestTVLAUnprotectedLeaks(t *testing.T) {
	curve := ec.K163()
	key := generateKey(curve, rng.NewDRBG(19).Uint64)
	tgt := NewTarget(curve, key, coproc.ProgramOptions{RPC: false, XOnly: true},
		coproc.DefaultTiming(), labPower(19), 6666)
	src := rng.NewDRBG(20).Uint64
	res, err := TVLA(tgt, FixedPoint(curve), 200, 160, 157, func() modn.Scalar { return generateKey(curve, src) })
	if err != nil {
		t.Fatal(err)
	}
	if !res.Leaks {
		t.Fatalf("TVLA found no leakage in the unprotected design (max |t| = %.2f)", res.MaxT)
	}
	if res.MaxT < 6 {
		t.Fatalf("unprotected max |t| = %.2f suspiciously low", res.MaxT)
	}
}

func TestTVLAProtectedPasses(t *testing.T) {
	curve := ec.K163()
	key := generateKey(curve, rng.NewDRBG(21).Uint64)
	tgt := NewTarget(curve, key, coproc.ProgramOptions{RPC: true, XOnly: true},
		coproc.DefaultTiming(), labPower(21), 7777)
	src := rng.NewDRBG(22).Uint64
	res, err := TVLA(tgt, FixedPoint(curve), 200, 160, 157, func() modn.Scalar { return generateKey(curve, src) })
	if err != nil {
		t.Fatal(err)
	}
	if res.Leaks {
		t.Fatalf("protected design leaks: max |t| = %.2f at sample %d (%d points)",
			res.MaxT, res.MaxTSample, res.LeakyPoints)
	}
}

func TestCPAInputValidation(t *testing.T) {
	tgt := newDPATarget(t, false, 23)
	camp, err := tgt.AcquireCampaign(4, 160, 159, rng.NewDRBG(24).Uint64)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := CPA(camp, CPAOptions{Bits: 0}); err == nil {
		t.Fatal("Bits=0 accepted")
	}
	if _, err := CPA(camp, CPAOptions{Bits: 50}); err == nil {
		t.Fatal("window too small accepted")
	}
	// Wrong prefix must be rejected, not silently mis-attacked.
	if _, err := CPA(camp, CPAOptions{Bits: 1, KnownPrefix: []uint{1, 1}}); err == nil {
		t.Fatal("wrong key prefix accepted")
	}
}

func TestMasksAreReproducibleAndPerTrace(t *testing.T) {
	tgt := newDPATarget(t, true, 25)
	l1, m1 := tgt.Masks(0)
	l1b, m1b := tgt.Masks(0)
	if !l1.Equal(l1b) || !m1.Equal(m1b) {
		t.Fatal("mask replay not deterministic")
	}
	l2, m2 := tgt.Masks(1)
	if l1.Equal(l2) && m1.Equal(m2) {
		t.Fatal("masks identical across traces")
	}
	if l1.IsZero() || m1.IsZero() {
		t.Fatal("zero mask drawn")
	}
}

func TestSuccessRateCurveMonotoneIsh(t *testing.T) {
	// The success rate must rise from ~0 at tiny campaigns to 1 at
	// large ones for the unprotected configuration — the standard
	// DPA evaluation figure.
	mk := func(trial uint64) *Target { return newDPATarget(t, false, 100+trial) }
	curve, err := SuccessRateCurve(mk, []int{10, 400}, 4, 3, CPAOptions{}, 55)
	if err != nil {
		t.Fatal(err)
	}
	if len(curve) != 2 {
		t.Fatalf("got %d points", len(curve))
	}
	if curve[1].SuccessRate < curve[0].SuccessRate {
		t.Fatalf("success rate fell with more traces: %+v", curve)
	}
	if curve[1].SuccessRate < 0.66 {
		t.Fatalf("400-trace success rate %.2f too low", curve[1].SuccessRate)
	}
	if _, err := SuccessRateCurve(mk, nil, 4, 3, CPAOptions{}, 1); err == nil {
		t.Fatal("empty sizes accepted")
	}
}
