package campaign_test

import (
	"reflect"
	"testing"
	"time"

	. "medsec/internal/campaign"
	"medsec/internal/trace"
)

// fakeAcquireBatch is fakeAcquire lifted to the batch contract: each
// lane's result is still a pure function of its index and job.
func fakeAcquireBatch(shake bool) AcquireBatchFunc[uint64, trace.Trace] {
	serial := fakeAcquire(shake)
	return func(worker, start int, jobs []uint64, out []trace.Trace) error {
		for i := range jobs {
			tr, err := serial(worker, start+i, jobs[i])
			if err != nil {
				return err
			}
			out[i] = tr
		}
		return nil
	}
}

func batchPrepare() PrepareFunc[uint64] {
	stream := uint64(7)
	return func(idx int) (uint64, error) {
		stream = stream*6364136223846793005 + 1442695040888963407
		return stream % 97, nil
	}
}

// runAllBatch collects the consumed (idx, job, sample0) sequence
// through RunBatch.
func runAllBatch(t *testing.T, workers, lanes, from, to, resume int) [][3]float64 {
	t.Helper()
	var seq [][3]float64
	consume := func(idx int, job uint64, tr trace.Trace) (bool, error) {
		seq = append(seq, [3]float64{float64(idx), float64(job), tr.Samples[0]})
		return false, nil
	}
	n, err := RunBatch(from, to, lanes, Config{Workers: workers, ResumeFrom: resume},
		batchPrepare(), fakeAcquireBatch(workers > 1), consume)
	if err != nil {
		t.Fatal(err)
	}
	if n != to-from-resume {
		t.Fatalf("consumed %d, want %d", n, to-from-resume)
	}
	return seq
}

// TestRunBatchMatchesRunAcrossLanes pins the batched engine's
// determinism contract: the consumed sequence is identical to Run's
// for every lanes x workers combination, including lane counts that do
// not divide the trace count.
func TestRunBatchMatchesRunAcrossLanes(t *testing.T) {
	want := runAll(t, 1, 0, 64, false)
	for _, lanes := range []int{1, 2, 3, 4, 8} {
		for _, w := range []int{1, 2, 7} {
			got := runAllBatch(t, w, lanes, 0, 64, 0)
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("lanes=%d workers=%d: consumed sequence diverged from serial Run", lanes, w)
			}
		}
	}
}

// TestRunBatchResumeRegroups pins resume safety: resuming mid-range —
// at an offset that is not a multiple of the lane count, so every
// batch boundary shifts — consumes exactly the suffix of the
// uninterrupted sequence.
func TestRunBatchResumeRegroups(t *testing.T) {
	want := runAll(t, 1, 0, 64, false)
	for _, resume := range []int{1, 7, 33} {
		got := runAllBatch(t, 3, 4, 0, 64, resume)
		if !reflect.DeepEqual(got, want[resume:]) {
			t.Fatalf("resume=%d: suffix diverged", resume)
		}
	}
}

// TestRunBatchEarlyStop pins per-sample early stop: the consumed
// prefix ends exactly at the stop index even when the stop lands
// mid-batch.
func TestRunBatchEarlyStop(t *testing.T) {
	const stopAt = 23
	for _, lanes := range []int{1, 4, 8} {
		var consumed []int
		consume := func(idx int, job uint64, tr trace.Trace) (bool, error) {
			consumed = append(consumed, idx)
			return idx == stopAt, nil
		}
		n, err := RunBatch(0, 64, lanes, Config{Workers: 3},
			batchPrepare(), fakeAcquireBatch(true), consume)
		if err != nil {
			t.Fatal(err)
		}
		if n != stopAt+1 || len(consumed) != stopAt+1 || consumed[len(consumed)-1] != stopAt {
			t.Fatalf("lanes=%d: stopped after %d consumed (last %d), want %d", lanes, n, consumed[len(consumed)-1], stopAt+1)
		}
	}
}

// shardedFold runs a sum-reduction over the fake acquisition through
// either RunSharded or RunShardedBatch and returns the merged
// per-shard sums (shard order).
func shardedFold(t *testing.T, workers, shards, lanes, from, to int, resume []int, init []float64, batched bool) []float64 {
	t.Helper()
	lay := ShardingFor(from, to, shards)
	sums := make([]float64, lay.N)
	var merged []float64
	newShard := func(s int) *float64 {
		if init != nil {
			// Restore the checkpointed accumulator state, as a real
			// resume does before folding the remaining indices.
			sums[s] = init[s]
		}
		return &sums[s]
	}
	fold := func(s int, acc *float64, idx int, job uint64, tr trace.Trace) error {
		*acc += tr.Samples[0] * float64(idx+1)
		if idx%3 == 0 {
			time.Sleep(50 * time.Microsecond)
		}
		return nil
	}
	merge := func(s int, acc *float64) error {
		merged = append(merged, *acc)
		return nil
	}
	cfg := ShardedConfig{Workers: workers, Shards: shards, Resume: resume}
	var err error
	if batched {
		_, err = RunShardedBatch(from, to, lanes, cfg, batchPrepare(), fakeAcquireBatch(false), newShard, fold, merge)
	} else {
		_, err = RunSharded(from, to, cfg, batchPrepare(), fakeAcquire(false), newShard, fold, merge)
	}
	if err != nil {
		t.Fatal(err)
	}
	return merged
}

// TestRunShardedBatchMatchesRunSharded pins the sharded batch path:
// merged per-shard reductions are bit-identical to RunSharded's for
// every lanes x workers x shards combination (same shard blocks, same
// in-shard fold order).
func TestRunShardedBatchMatchesRunSharded(t *testing.T) {
	for _, shards := range []int{1, 4} {
		want := shardedFold(t, 1, shards, 0, 0, 61, nil, nil, false)
		for _, lanes := range []int{1, 3, 8} {
			for _, w := range []int{1, 2, 7} {
				got := shardedFold(t, w, shards, lanes, 0, 61, nil, nil, true)
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("shards=%d lanes=%d workers=%d: merged reduction diverged", shards, lanes, w)
				}
			}
		}
	}
}

// TestRunShardedBatchResume pins mid-shard resume: cursors at
// arbitrary offsets inside each block (not lane-aligned) restore the
// checkpointed accumulator state, regroup the remaining indices, and
// still merge bit-identically to the uninterrupted run.
func TestRunShardedBatchResume(t *testing.T) {
	const from, to, shards = 0, 61, 4
	want := shardedFold(t, 1, shards, 0, from, to, nil, nil, false)
	lay := ShardingFor(from, to, shards)
	resume := make([]int, lay.N)
	for s := range resume {
		lo, hi := lay.Bounds(s)
		resume[s] = lo + (s*3+1)%(hi-lo)
	}
	// Compute the checkpointed accumulator state: the fold of each
	// shard's already-consumed prefix, in index order — what a real
	// checkpoint blob would restore.
	prefix := make([]float64, lay.N)
	serial := fakeAcquire(false)
	prep := batchPrepare()
	for idx := from; idx < to; idx++ {
		job, _ := prep(idx)
		if s := lay.Shard(idx); idx < resume[s] {
			tr, _ := serial(0, idx, job)
			prefix[s] += tr.Samples[0] * float64(idx+1)
		}
	}
	got := shardedFold(t, 3, shards, 4, from, to, resume, prefix, true)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("resumed merge diverged: got %v want %v", got, want)
	}
}
